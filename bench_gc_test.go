// GC/allocation regression harness: TestGCBenchRegression measures the
// serving steady state on two levels and writes BENCH_gc.json at the repo
// root. The API section uses testing.AllocsPerRun on the three hot
// operations the zero-allocation work targets — a session /slacks read into
// a reused buffer, an ECO preview re-propagating an overlay cone, and an
// incremental forward re-propagation on the base engine — and must read
// (approximately) zero once warm. The HTTP section drives a closed request
// loop against the full insta-served stack and reports allocation rate,
// worst-case GC pause (from the /gc/pauses:seconds histogram) and
// p50/p99/p999 request latency; the HTTP numbers are dominated by net/http
// per-request machinery, so their gates are deliberately generous — the
// regression signal is the trend in the JSON, the gate only catches
// order-of-magnitude breakage. ci.sh runs this with INSTA_GC_GATE=1, which
// arms the hard limits; ad-hoc runs get loose noise guards only.
package insta

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/refsta"
	"insta/internal/server"
)

// gcAPIReport is the allocs/op verdict on the session/engine API hot paths,
// measured without any HTTP machinery in the loop.
type gcAPIReport struct {
	SlacksReadAllocsPerOp  float64 `json:"slacks_read_allocs_per_op"`
	ECOPreviewAllocsPerOp  float64 `json:"eco_preview_allocs_per_op"`
	IncrementalAllocsPerOp float64 `json:"incremental_allocs_per_op"`
}

// arcDeltasAt builds a scattered small-cone arc perturbation: arcs ≡ start
// (mod stride) with their nominal delays scaled by meanScale.
func arcDeltasAt(e *core.Engine, start, stride int32, meanScale float64) []refsta.ArcDelta {
	var out []refsta.ArcDelta
	for arc := start; arc < int32(e.NumArcs()); arc += stride {
		var dl refsta.ArcDelta
		dl.ArcID = arc
		for rf := 0; rf < 2; rf++ {
			d := e.ArcDelay(arc, rf)
			d.Mean *= meanScale
			dl.Delay[rf] = d
		}
		out = append(out, dl)
	}
	return out
}

type gcBenchReport struct {
	NumCPU     int            `json:"numcpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Preset     string         `json:"preset"`
	API        gcAPIReport    `json:"api"`
	HTTP       bench.GCReport `json:"http_closed_loop"`
}

func TestGCBenchRegression(t *testing.T) {
	const preset = "block-2"
	spec, err := bench.BlockSpec(preset)
	if err != nil {
		t.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(s.Tab, core.Options{TopK: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mgr := server.NewManager(e, s.Ref, server.Options{MaxSessions: 4})

	report := gcBenchReport{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Preset:     preset,
	}

	// --- API section: allocs/op on the warm hot paths, no HTTP ---

	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	deltas := arcDeltasAt(e, 3, int32(e.NumArcs()/16), 1.03)
	if _, err := sess.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}
	var buf []float64
	if buf, err = sess.SlacksInto(buf); err != nil {
		t.Fatal(err)
	}
	report.API.SlacksReadAllocsPerOp = testing.AllocsPerRun(50, func() {
		buf, err = sess.SlacksInto(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})

	ov := core.NewOverlay(e)
	preview := func() {
		for _, dl := range deltas {
			ov.SetArcDelay(dl.ArcID, 0, dl.Delay[0])
			ov.SetArcDelay(dl.ArcID, 1, dl.Delay[1])
		}
		ov.Propagate()
		_ = ov.WNS()
	}
	preview() // warm: populates the overlay's pin set and scratch
	report.API.ECOPreviewAllocsPerOp = testing.AllocsPerRun(50, preview)

	// Incremental re-prop on a private engine (mutating the served base
	// outside Exclusive would break the manager's epoch contract). The two
	// annotations alternate so every op walks a real changed cone.
	e2, err := core.NewEngine(s.Tab, core.Options{TopK: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e2.Run()
	incArc := deltas[0].ArcID
	incArcs := []int32{incArc}
	d0 := e2.ArcDelay(incArc, 0)
	d1 := d0
	d1.Mean *= 1.05
	flip := false
	incremental := func() {
		d := d0
		if flip {
			d = d1
		}
		flip = !flip
		e2.SetArcDelay(incArc, 0, d)
		e2.PropagateIncremental(incArcs)
	}
	incremental()
	incremental() // warm both cone shapes
	report.API.IncrementalAllocsPerOp = testing.AllocsPerRun(50, incremental)

	// --- HTTP section: closed-loop load over the full serving stack ---

	srv := httptest.NewServer(server.New(mgr, preset).Handler())
	defer srv.Close()
	client := srv.Client()

	var sid struct {
		ID string `json:"id"`
	}
	resp, err := client.Post(srv.URL+"/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sid); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := serveECOBody(t, e, 1, int32(e.NumArcs()/16))

	do := func(method, url string, reqBody []byte) time.Duration {
		var rd io.Reader
		if reqBody != nil {
			rd = bytes.NewReader(reqBody)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(t0)
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: status %d", method, url, resp.StatusCode)
		}
		return d
	}
	ecoURL := srv.URL + "/session/" + sid.ID + "/eco"
	slacksURL := srv.URL + "/session/" + sid.ID + "/slacks"
	for i := 0; i < 5; i++ { // warm connections, pools, overlay cones
		do(http.MethodPost, ecoURL, body)
		do(http.MethodGet, slacksURL, nil)
	}

	const iters = 100
	lat := bench.NewLatencyRecorder(2 * iters)
	probe := bench.StartGCProbe()
	for i := 0; i < iters; i++ {
		lat.Record(do(http.MethodPost, ecoURL, body))
		lat.Record(do(http.MethodGet, slacksURL, nil))
		if (i+1)%25 == 0 {
			// Charge the loop for real collections even if the pacer never
			// fires on its own — the pause figure must come from somewhere.
			probe.ForceGC()
		}
	}
	report.HTTP = probe.Report(2*iters, lat)

	t.Logf("%s api allocs/op: slacks=%.1f preview=%.1f incremental=%.1f",
		preset, report.API.SlacksReadAllocsPerOp,
		report.API.ECOPreviewAllocsPerOp, report.API.IncrementalAllocsPerOp)
	t.Logf("%s http: %.0f ops/s, %.1f allocs/op, %.2f MB/s alloc rate, %d GC (%d forced), max pause %.0fus, p50=%dus p99=%dus p999=%dus",
		preset, report.HTTP.OpsPerSec, report.HTTP.AllocsPerOp,
		report.HTTP.AllocRateMBps, report.HTTP.NumGC, report.HTTP.ForcedGC,
		report.HTTP.MaxPauseUs, report.HTTP.P50Us, report.HTTP.P99Us, report.HTTP.P999Us)

	// Gates. INSTA_GC_GATE=1 (ci.sh) arms the real limits; otherwise only
	// catastrophic breakage fails, so a loaded ad-hoc machine stays green.
	gate := os.Getenv("INSTA_GC_GATE") == "1"
	apiLimit, pauseLimitUs, allocLimit := 64.0, 250_000.0, 10_000.0
	if gate {
		// The API paths are designed to be allocation-free; a small epsilon
		// absorbs one-off growth (a map rehash, a freelist refill) without
		// letting a per-op allocation back in.
		apiLimit = 2.0
		// Worst-case GC pause: generous for a 1-CPU CI box, but an engine
		// that re-allocates its tensors per op blows through it easily.
		pauseLimitUs = 25_000.0
		// net/http costs ~tens of allocations per request; the engine side
		// must not add materially to that.
		allocLimit = 1_000.0
	}
	if a := report.API.SlacksReadAllocsPerOp; a > apiLimit {
		t.Errorf("session slacks read: %.1f allocs/op > %.1f", a, apiLimit)
	}
	if a := report.API.ECOPreviewAllocsPerOp; a > apiLimit {
		t.Errorf("eco preview: %.1f allocs/op > %.1f", a, apiLimit)
	}
	if a := report.API.IncrementalAllocsPerOp; a > apiLimit {
		t.Errorf("incremental re-prop: %.1f allocs/op > %.1f", a, apiLimit)
	}
	if p := report.HTTP.MaxPauseUs; p > pauseLimitUs {
		t.Errorf("max GC pause %.0fus > %.0fus", p, pauseLimitUs)
	}
	if a := report.HTTP.AllocsPerOp; a > allocLimit {
		t.Errorf("http loop: %.1f allocs/op > %.1f", a, allocLimit)
	}

	buf2, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_gc.json", append(buf2, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
