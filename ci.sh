#!/bin/sh
# ci.sh — the checks a PR must pass, in the order a failure is cheapest:
#
#   1. go vet        — static analysis over every package
#   2. go build      — everything compiles, including cmd/ and examples/
#   3. go test       — full suite (unit + determinism + differential + bench
#                      regression smoke, which rewrites BENCH_sched.json)
#   4. go test -race — short-mode race check of the scheduler and the engine
#                      kernels that run on it (the concurrency surface)
#
# Run from the repo root: ./ci.sh
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sched + core, short) =="
go test -race -short ./internal/sched/... ./internal/core/...

echo "ci.sh: all checks passed"
