#!/bin/sh
# ci.sh — the checks a PR must pass, in the order a failure is cheapest:
#
#   1. go vet        — static analysis over every package
#   2. go build      — everything compiles, including cmd/ and examples/
#   3. go test       — full suite (unit + determinism + differential + bench
#                      regression smoke, which rewrites BENCH_sched.json,
#                      BENCH_serve.json, and BENCH_batch.json — the last
#                      gates the scenario-batched subsystem at >= 2x the
#                      per-corner rebuild loop at S=3)
#   4. go test -race — short-mode race check of the scheduler, the engine
#                      kernels that run on it, the scenario-batched engine,
#                      the serving layer's session manager, and the telemetry
#                      layer (tracer/registry, the concurrency surface)
#   5. load smoke    — 100 concurrent ECO requests against the HTTP serving
#                      surface under -race must complete with zero errors
#   6. obs gate      — the disabled-tracer overhead bench re-runs with the
#                      strict < 1% bound (INSTA_OBS_GATE=1), rewriting
#                      BENCH_obs.json
#
# Run from the repo root: ./ci.sh
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sched + core + batch + server + obs, short) =="
go test -race -short ./internal/sched/... ./internal/core/... ./internal/batch/... ./internal/server/... ./internal/obs/...

echo "== serve load smoke (-race, 100 concurrent ECO requests) =="
go test -race -run 'TestServeLoadSmoke|TestServeConcurrentSessionsBitIdentical' ./internal/server/

echo "== obs overhead gate (disabled tracer < 1%) =="
INSTA_OBS_GATE=1 go test -run TestObsBenchRegression .

echo "ci.sh: all checks passed"
