#!/bin/sh
# ci.sh — the checks a PR must pass, in the order a failure is cheapest:
#
#   1. go vet        — static analysis over every package
#   2. go build      — everything compiles, including cmd/ and examples/
#   3. go test       — full suite (unit + determinism + differential + bench
#                      regression smoke, which rewrites BENCH_sched.json,
#                      BENCH_serve.json, BENCH_batch.json, and
#                      BENCH_snap.json — BENCH_batch gates the
#                      scenario-batched subsystem at >= 2x the per-corner
#                      rebuild loop at S=3, and BENCH_snap gates warm
#                      snapshot boot (snap.Open) at >= 10x faster than the
#                      cold parse+signoff+extract+compile build)
#   4. go test -race — short-mode race check of the scheduler, the engine
#                      kernels that run on it, the scenario-batched engine
#                      (including the pooled-scratch overlay-reuse
#                      differential under 8 concurrent sessions), the serving
#                      layer's session manager, the telemetry layer (tracer /
#                      registry / flight recorder / SLO tracker), the
#                      snapshot codec/cache, and the fleet router — including
#                      the hedge-race trace test, where the losing attempt's
#                      span ends concurrently with the request's root span
#   5. load smoke    — 100 concurrent ECO requests against the HTTP serving
#                      surface under -race must complete with zero errors
#   6. obs gate      — the disabled-tracer overhead bench re-runs with the
#                      strict < 1% bound (INSTA_OBS_GATE=1), rewriting
#                      BENCH_obs.json; the same run asserts the per-request
#                      flight-recorder and SLO burn-rate bookkeeping is
#                      allocation-free (0 allocs/op) and checks the burn-rate
#                      arithmetic fixture
#   7. sched gate    — the scheduler bench re-runs with the hard parallel
#                      parity bound armed (INSTA_SCHED_GATE=1): pool_w4 must
#                      not lose to pool_w1 on block-1 (speedup >= 1.0),
#                      rewriting BENCH_sched.json
#   8. gc gate       — the GC/allocation harness re-runs with the hard
#                      limits armed (INSTA_GC_GATE=1): ~0 allocs/op on the
#                      session-read / ECO-preview / incremental hot paths,
#                      bounded worst-case GC pause and per-request allocation
#                      count under closed-loop HTTP load, rewriting
#                      BENCH_gc.json
#   9. fleet gate    — the fleet bench re-runs with the latency bounds armed
#                      (INSTA_FLEET_GATE=1): fleet-of-4 p99 <= single-daemon
#                      p99 on the heavy-tailed closed-loop workload, hedged
#                      base-read p99 < unhedged against a straggler replica,
#                      plus the unconditional gates (zero errors, zero
#                      dropped sessions through a rolling snapshot swap, and
#                      well-formed trace IDs on the slowest-request list),
#                      rewriting BENCH_fleet.json
#  10. topo gate     — the structural-ECO bench re-runs with the tentpole
#                      bound armed (INSTA_TOPO_GATE=1): a steady-state
#                      incremental edit batch (buffer insertions + patched
#                      recompile + in-place reseed) must beat the cold
#                      compile-and-propagate rebuild of the edited block-1
#                      netlist by >= 10x, bit-identical to it, rewriting
#                      BENCH_topo.json
#  11. hier gate     — the hierarchical bench re-runs with the tentpole
#                      bounds armed (INSTA_HIER_GATE=1): on every stitched
#                      chip preset the hierarchical WNS/TNS and recovered
#                      per-endpoint slacks must land inside the documented
#                      model-error bound of the flattened ground truth, and
#                      composed analysis must beat flat compile+propagate by
#                      >= 10x at chip-16x, rewriting BENCH_hier.json
#
# Run from the repo root: ./ci.sh
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sched + core + batch + topo + server + obs + snap + fleet + hier, short) =="
go test -race -short ./internal/sched/... ./internal/core/... ./internal/batch/... ./internal/topo/... ./internal/server/... ./internal/obs/... ./internal/snap/... ./internal/fleet/... ./internal/hier/...

echo "== serve load smoke (-race, 100 concurrent ECO requests) =="
go test -race -run 'TestServeLoadSmoke|TestServeConcurrentSessionsBitIdentical' ./internal/server/

echo "== obs overhead gate (disabled tracer < 1%) =="
INSTA_OBS_GATE=1 go test -run TestObsBenchRegression .

echo "== sched parallel parity gate (pool_w4 >= pool_w1 on block-1) =="
INSTA_SCHED_GATE=1 go test -run TestSchedBenchRegression .

echo "== gc/alloc gate (zero-alloc hot paths, bounded pauses) =="
INSTA_GC_GATE=1 go test -run TestGCBenchRegression .

echo "== fleet gate (fleet p99 <= single p99, hedged reads, zero-drop rolling swap) =="
INSTA_FLEET_GATE=1 go test -run TestFleetBenchRegression .

echo "== topo gate (incremental structural edit >= 10x cold rebuild) =="
INSTA_TOPO_GATE=1 go test -run TestTopoBenchRegression .

echo "== hier gate (composed analysis >= 10x flat at chip-16x, within model-error bound) =="
INSTA_HIER_GATE=1 go test -run TestHierBenchRegression .

echo "ci.sh: all checks passed"
