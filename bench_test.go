// Package insta's top-level benchmarks regenerate the runtime columns of
// every table and figure in the paper's evaluation:
//
//	BenchmarkTableI_*    — INSTA full-graph propagation per block (Table I)
//	BenchmarkFig6_*      — the Top-K runtime trade-off (Fig. 6)
//	BenchmarkFig7_*      — one sizing iteration per engine (Fig. 7)
//	BenchmarkTableII_*   — the backward kernel (bRT) and the sizing flows
//	BenchmarkTableIII_*  — one timing-refresh placement iteration (Fig. 9)
//	BenchmarkAblation_*  — design-choice ablations called out in DESIGN.md
//
// Run with: go test -bench=. -benchmem .
package insta

import (
	"runtime"
	"testing"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/place"
	"insta/internal/refsta"
	"insta/internal/sizing"
)

// buildBlock generates a block preset and its reference engine + extraction,
// failing the benchmark on error.
func buildBlock(b *testing.B, name string) *exp.Setup {
	b.Helper()
	spec, err := bench.BlockSpec(name)
	if err != nil {
		b.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func newInsta(b *testing.B, s *exp.Setup, topK int, tau float64) *core.Engine {
	b.Helper()
	e, err := core.NewEngine(s.Tab, core.Options{TopK: topK, Tau: tau, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// --- Table I: full-graph propagation runtime per block at TopK=32 ---

func benchPropagate(b *testing.B, block string, topK int) {
	s := buildBlock(b, block)
	e := newInsta(b, s, topK, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run()
	}
	b.ReportMetric(float64(s.B.D.NumPins()), "pins")
	b.ReportMetric(float64(e.NumLevels()), "levels")
}

func BenchmarkTableI_Block1_Propagate(b *testing.B) { benchPropagate(b, "block-1", 32) }
func BenchmarkTableI_Block2_Propagate(b *testing.B) { benchPropagate(b, "block-2", 32) }

// BenchmarkTableI_Block2_PropagateMT is the Table I row with the scheduler
// pool at full machine width (Workers = NumCPU) instead of the serial path.
func BenchmarkTableI_Block2_PropagateMT(b *testing.B) {
	s := buildBlock(b, "block-2")
	e, err := core.NewEngine(s.Tab, core.Options{TopK: 32, Tau: 0.01, Workers: runtime.NumCPU()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run()
	}
	b.ReportMetric(float64(s.B.D.NumPins()), "pins")
	b.ReportMetric(float64(e.NumLevels()), "levels")
}
func BenchmarkTableI_Block3_Propagate(b *testing.B) { benchPropagate(b, "block-3", 32) }
func BenchmarkTableI_Block4_Propagate(b *testing.B) { benchPropagate(b, "block-4", 32) }
func BenchmarkTableI_Block5_Propagate(b *testing.B) { benchPropagate(b, "block-5", 32) }

// BenchmarkTableI_ReferenceUpdateTiming is the UT column: a full
// update_timing of the reference signoff engine on block-2.
func BenchmarkTableI_ReferenceUpdateTiming(b *testing.B) {
	s := buildBlock(b, "block-2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ref.UpdateTimingFull()
	}
}

// --- Fig. 6: Top-K trade-off on block-1 ---

func BenchmarkFig6_TopK1(b *testing.B)   { benchPropagate(b, "block-1", 1) }
func BenchmarkFig6_TopK32(b *testing.B)  { benchPropagate(b, "block-1", 32) }
func BenchmarkFig6_TopK128(b *testing.B) { benchPropagate(b, "block-1", 128) }

// --- Fig. 7: one sizing iteration (batch of 120 resizes) per engine ---

func fig7Setup(b *testing.B) (*exp.Setup, []bench.Batch) {
	s := buildBlock(b, "block-2")
	spec, _ := bench.BlockSpec("block-2")
	batches := bench.BatchedChangelist(s.B, spec.Seed+77, 64, 120)
	if len(batches) == 0 {
		b.Fatal("empty changelist")
	}
	return s, batches
}

func BenchmarkFig7_InhouseFullSTA(b *testing.B) {
	s, batches := fig7Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rz := range batches[i%len(batches)] {
			if _, err := s.Ref.ResizeCell(rz.Cell, rz.NewLib); err != nil {
				b.Fatal(err)
			}
		}
		s.Ref.UpdateTimingFull()
	}
}

func BenchmarkFig7_ReferenceIncremental(b *testing.B) {
	s, batches := fig7Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rz := range batches[i%len(batches)] {
			if _, err := s.Ref.ResizeCell(rz.Cell, rz.NewLib); err != nil {
				b.Fatal(err)
			}
		}
		s.Ref.UpdateTimingIncremental()
	}
}

func BenchmarkFig7_InstaEstimateAndPropagate(b *testing.B) {
	s, batches := fig7Setup(b)
	e := newInsta(b, s, 32, 0.01)
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rz := range batches[i%len(batches)] {
			deltas, err := s.Ref.EstimateECO(rz.Cell, rz.NewLib)
			if err != nil {
				b.Fatal(err)
			}
			for _, dl := range deltas {
				e.SetArcDelay(dl.ArcID, 0, dl.Delay[0])
				e.SetArcDelay(dl.ArcID, 1, dl.Delay[1])
			}
		}
		e.Run()
	}
}

// --- Table II: the backward kernel (bRT column) and the sizing flows ---

func benchBackward(b *testing.B, design string) {
	spec, err := bench.IWLSSpec(design)
	if err != nil {
		b.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	e := newInsta(b, s, 4, 0.01)
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Backward()
	}
}

func BenchmarkTableII_BackwardKernel_AesCore(b *testing.B)   { benchBackward(b, "aes_core") }
func BenchmarkTableII_BackwardKernel_CipherTop(b *testing.B) { benchBackward(b, "cipher_top") }
func BenchmarkTableII_BackwardKernel_Des(b *testing.B)       { benchBackward(b, "des") }
func BenchmarkTableII_BackwardKernel_McTop(b *testing.B)     { benchBackward(b, "mc_top") }

func BenchmarkTableII_InstaSize_Des(b *testing.B) {
	spec, err := bench.IWLSSpec("des")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := exp.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		e := newInsta(b, s, 4, 0.01)
		b.StartTimer()
		sizing.InstaSize(s.Ref, e, sizing.DefaultConfig())
	}
}

func BenchmarkTableII_BaselineSize_Des(b *testing.B) {
	spec, err := bench.IWLSSpec("des")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := exp.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		sizing.BaselineSize(s.Ref, sizing.DefaultBaselineConfig())
	}
}

// --- Table III / Fig. 9: one timing-refresh placement iteration ---

func benchPlacementIteration(b *testing.B, mode place.Mode) {
	spec, err := bench.SuperblueSpec("superblue10")
	if err != nil {
		b.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	var eng *core.Engine
	if mode == place.ModeInsta {
		eng = newInsta(b, s, 2, 60)
	}
	p, err := place.New(s.Ref, eng, place.DefaultConfig(mode))
	if err != nil {
		b.Fatal(err)
	}
	// Warm the placement a little so the measured iteration is typical.
	for it := 0; it < 30; it++ {
		p.Step(it)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RefreshTiming()
		p.Step(30 + i%100)
	}
}

func BenchmarkTableIII_Fig9_NetWeightIteration(b *testing.B) {
	benchPlacementIteration(b, place.ModeNetWeight)
}

func BenchmarkTableIII_Fig9_InstaPlaceIteration(b *testing.B) {
	benchPlacementIteration(b, place.ModeInsta)
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblation_Workers compares the level-parallel kernel at different
// worker-pool sizes (the paper's GPU parallelism axis), and the persistent
// chunk-claiming pool against the seed's spawn-per-level strategy at the same
// worker count (the internal/sched tentpole).
func BenchmarkAblation_Workers1(b *testing.B)      { benchWorkers(b, 1, false) }
func BenchmarkAblation_Workers4(b *testing.B)      { benchWorkers(b, 4, false) }
func BenchmarkAblation_SpawnWorkers4(b *testing.B) { benchWorkers(b, 4, true) }

func benchWorkers(b *testing.B, workers int, legacySpawn bool) {
	s := buildBlock(b, "block-1")
	e, err := core.NewEngine(s.Tab, core.Options{TopK: 32, Workers: workers, LegacySpawn: legacySpawn})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run()
	}
}

// BenchmarkAblation_BackwardTau measures the backward kernel across LSE
// temperatures: hotter softmax touches more arcs.
func BenchmarkAblation_BackwardTauCold(b *testing.B) { benchTau(b, 0.01) }
func BenchmarkAblation_BackwardTauHot(b *testing.B)  { benchTau(b, 60) }

func benchTau(b *testing.B, tau float64) {
	s := buildBlock(b, "block-5")
	e := newInsta(b, s, 1, tau)
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Backward()
	}
}

// BenchmarkAblation_ExactCPPRReference measures the map-merge exact engine
// against INSTA's fixed-K propagation on the same design (the accuracy/
// runtime trade the paper's Top-K design buys).
func BenchmarkAblation_ExactCPPRReference(b *testing.B) {
	s := buildBlock(b, "block-5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ref.UpdateTimingFull()
	}
}

// BenchmarkExtraction measures the one-time circuitops extraction
// (the paper's "~10 minutes on million-gate designs" step).
func BenchmarkExtraction(b *testing.B) {
	s := buildBlock(b, "block-2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		circuitops.Extract(s.Ref)
	}
}

// BenchmarkInitialization measures INSTA engine construction from tables
// (graph build + levelization).
func BenchmarkInitialization(b *testing.B) {
	s := buildBlock(b, "block-2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewEngine(s.Tab, core.Options{TopK: 32, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Incremental* compares the paper's always-full-propagate
// design against the CPU-oriented cone-limited incremental mode after one
// estimate_eco batch (see internal/core/incremental.go).
func BenchmarkAblation_FullPropagateAfterECO(b *testing.B) {
	s, batches := fig7Setup(b)
	e := newInsta(b, s, 32, 0.01)
	e.Run()
	deltas := ecoDeltas(b, s, batches[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dl := range deltas {
			e.SetArcDelay(dl.ArcID, 0, dl.Delay[0])
			e.SetArcDelay(dl.ArcID, 1, dl.Delay[1])
		}
		e.Propagate()
	}
}

func BenchmarkAblation_IncrementalPropagateAfterECO(b *testing.B) {
	s, batches := fig7Setup(b)
	e := newInsta(b, s, 32, 0.01)
	e.Run()
	deltas := ecoDeltas(b, s, batches[0])
	arcs := make([]int32, len(deltas))
	for i, dl := range deltas {
		arcs[i] = dl.ArcID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dl := range deltas {
			e.SetArcDelay(dl.ArcID, 0, dl.Delay[0])
			e.SetArcDelay(dl.ArcID, 1, dl.Delay[1])
		}
		e.PropagateIncremental(arcs)
	}
}

func ecoDeltas(b *testing.B, s *exp.Setup, batch bench.Batch) []refsta.ArcDelta {
	b.Helper()
	var deltas []refsta.ArcDelta
	for _, rz := range batch {
		ds, err := s.Ref.EstimateECO(rz.Cell, rz.NewLib)
		if err != nil {
			b.Fatal(err)
		}
		deltas = append(deltas, ds...)
	}
	return deltas
}
