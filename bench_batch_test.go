// Multi-corner bench regression harness: TestBatchBenchRegression times the
// scenario-batched subsystem (internal/batch) against the legacy per-corner
// loop it replaced — per corner: scale the library and parasitics, rebuild
// the reference timer, re-extract, build an engine, propagate — and writes
// BENCH_batch.json at the repo root. The batched path builds the nominal
// reference once and carries every corner through one traversal, so the
// speedup is an amortization ledger, not a parallelism artifact (it holds at
// Workers=1 on a single-CPU machine). The S=3 subsystem speedup is gated at
// >= 2x (the PR 3 acceptance bar); the engine-only and steady-state ratios
// are recorded ungated as diagnostics.
package insta

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/corners"
	"insta/internal/exp"
	"insta/internal/refsta"
)

// batchBenchRow is one (preset, S) row in BENCH_batch.json.
type batchBenchRow struct {
	Name      string `json:"name"`
	Pins      int    `json:"pins"`
	Endpoints int    `json:"endpoints"`
	Scenarios int    `json:"scenarios"`
	TopK      int    `json:"top_k"`

	// Full-subsystem wall time: everything a caller pays from "I have a
	// design" to "I have slacks in every corner".
	SubsystemLoopNs    int64   `json:"subsystem_loop_ns"`
	SubsystemBatchedNs int64   `json:"subsystem_batched_ns"`
	SubsystemSpeedup   float64 `json:"subsystem_speedup"`

	// Engine-only (construction + one Run over pre-extracted tables).
	EngineLoopNs    int64   `json:"engine_loop_ns"`
	EngineBatchedNs int64   `json:"engine_batched_ns"`
	EngineSpeedup   float64 `json:"engine_speedup"`

	// Steady-state batched re-evaluation throughput.
	RunNs           int64   `json:"run_ns"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
}

type batchBenchReport struct {
	NumCPU     int             `json:"numcpu"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Workers    int             `json:"workers"`
	Rows       []batchBenchRow `json:"rows"`
}

// medianNs reports the median wall time of fn over n runs.
func medianNs(n int, fn func()) int64 {
	ns := make([]int64, n)
	for i := range ns {
		start := time.Now()
		fn()
		ns[i] = time.Since(start).Nanoseconds()
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[n/2]
}

// pairedMinNs times two alternatives interleaved — a[0], b[0], a[1], b[1], …
// — with a forced GC before every sample, and reports each side's minimum.
// Interleaving exposes both sides to the same background state (GC pacing,
// page cache, suite load on a 1-CPU machine) and min-of-n discards the
// samples an interruption landed on; back-to-back medians were observed to
// swing the ratio by 2x across otherwise identical runs.
func pairedMinNs(n int, a, b func()) (minA, minB int64) {
	one := func(fn func()) int64 {
		runtime.GC()
		start := time.Now()
		fn()
		return time.Since(start).Nanoseconds()
	}
	minA, minB = one(a), one(b)
	for i := 1; i < n; i++ {
		if ns := one(a); ns < minA {
			minA = ns
		}
		if ns := one(b); ns < minB {
			minB = ns
		}
	}
	return minA, minB
}

// eightScenarios extends the default trio to S=8 with derates in the same
// plausible PVT envelope.
func eightScenarios(t *testing.T) []batch.Scenario {
	extra, err := batch.ParseScenarios(
		"hot:1.31/1.07/0.97,cold:0.92/1.12/1.04,ssg:1.26/1.35/1.15,ffg:0.80/0.85/0.88,wc_rc:1.05/1.00/1.30")
	if err != nil {
		t.Fatal(err)
	}
	return append(batch.DefaultScenarios(), extra...)
}

func TestBatchBenchRegression(t *testing.T) {
	const preset = "block-1"
	const topK = 8
	spec, err := bench.BlockSpec(preset)
	if err != nil {
		t.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	b := s.B
	opt := core.Options{TopK: topK, Workers: 1}
	report := batchBenchReport{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Workers: 1}

	cases := []struct {
		scns    []batch.Scenario
		samples int // subsystem timing is seconds-scale; S=8 gets one sample
	}{
		{batch.DefaultScenarios(), 3},
		{eightScenarios(t), 1},
	}
	for _, tc := range cases {
		crns := corners.FromScenarios(tc.scns)
		row := batchBenchRow{
			Name: preset, Pins: b.D.NumPins(), Scenarios: len(tc.scns), TopK: topK,
		}

		// Full-subsystem comparison, interleaved. Loop side is what the old
		// corners.New paid per corner; batched side builds the nominal
		// reference once and one engine for all S.
		row.SubsystemLoopNs, row.SubsystemBatchedNs = pairedMinNs(tc.samples,
			func() {
				for _, c := range crns {
					ref, err := refsta.New(b.D, corners.ScaleLibrary(b.Lib, c), b.Con,
						corners.ScaleParasitics(b.Par, c.RCScale), refsta.DefaultConfig())
					if err != nil {
						t.Fatal(err)
					}
					e, err := core.NewEngine(circuitops.Extract(ref), opt)
					if err != nil {
						t.Fatal(err)
					}
					e.Run()
					e.Close()
				}
			},
			func() {
				ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				be, err := batch.New(circuitops.Extract(ref), tc.scns, opt)
				if err != nil {
					t.Fatal(err)
				}
				be.Run()
				be.Close()
			})
		row.SubsystemSpeedup = float64(row.SubsystemLoopNs) / float64(row.SubsystemBatchedNs)

		// Engine-only comparison (construction + one Run over pre-extracted
		// tables), interleaved the same way.
		row.EngineLoopNs, row.EngineBatchedNs = pairedMinNs(tc.samples,
			func() {
				for _, scn := range tc.scns {
					e, err := core.NewEngine(batch.ScaleTables(s.Tab, scn), opt)
					if err != nil {
						t.Fatal(err)
					}
					e.Run()
					e.Close()
				}
			},
			func() {
				e2, err := batch.New(s.Tab, tc.scns, opt)
				if err != nil {
					t.Fatal(err)
				}
				e2.Run()
				e2.Close()
			})
		row.EngineSpeedup = float64(row.EngineLoopNs) / float64(row.EngineBatchedNs)

		be, err := batch.New(s.Tab, tc.scns, opt)
		if err != nil {
			t.Fatal(err)
		}
		row.Endpoints = len(be.Endpoints())
		be.Run() // warm queues before the steady-state samples

		// Steady-state batched throughput (warm queues).
		row.RunNs = medianNs(3, func() { be.Run() })
		row.ScenariosPerSec = float64(len(tc.scns)) / (float64(row.RunNs) / 1e9)
		be.Close()

		t.Logf("%s S=%d: subsystem %.2fx (loop %v, batched %v) | engine %.2fx | %.1f scenarios/sec",
			preset, len(tc.scns), row.SubsystemSpeedup,
			time.Duration(row.SubsystemLoopNs), time.Duration(row.SubsystemBatchedNs),
			row.EngineSpeedup, row.ScenariosPerSec)

		// Acceptance gate: at S=3 the batched subsystem must be at least 2x
		// the per-corner rebuild loop. The margin comes from amortizing S
		// reference builds and extractions, so it holds on a single CPU.
		if len(tc.scns) == 3 && row.SubsystemSpeedup < 2.0 {
			t.Errorf("S=3 batched subsystem speedup %.2fx < 2x gate (loop %v, batched %v)",
				row.SubsystemSpeedup, time.Duration(row.SubsystemLoopNs), time.Duration(row.SubsystemBatchedNs))
		}
		report.Rows = append(report.Rows, row)
	}

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_batch.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
