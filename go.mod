module insta

go 1.22
