// Structural-ECO regression harness: TestTopoBenchRegression measures one
// topo-session edit batch (buffer insertions + an annotation, localized
// re-levelization + seeded cone re-propagation) against the cold alternative
// (core.Compile of the edited tables + a fresh engine + full propagation) on
// block-1, pins the two bit-identical, and writes BENCH_topo.json at the repo
// root. The bit-identity check is unconditional; the speedup gate — the
// tentpole claim that an incremental structural edit beats a rebuild by an
// order of magnitude — is armed by INSTA_TOPO_GATE=1 (ci.sh), with only a
// loose noise guard otherwise so ad-hoc runs on loaded machines stay green.
package insta

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/num"
	"insta/internal/topo"
)

type topoBenchReport struct {
	NumCPU        int     `json:"numcpu"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	Preset        string  `json:"preset"`
	Arcs          int     `json:"arcs"`
	EditOps       int     `json:"edit_ops"`
	IncrementalNs int64   `json:"incremental_ns"`
	ColdNs        int64   `json:"cold_ns"`
	Speedup       float64 `json:"speedup"`
	RelevelLevels int     `json:"relevel_levels"`
	RelevelRegion int     `json:"relevel_region"`
}

func TestTopoBenchRegression(t *testing.T) {
	const preset = "block-1"
	spec, err := bench.BlockSpec(preset)
	if err != nil {
		t.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{TopK: 8, Workers: 4}
	e, err := core.NewEngineFromState(s.State, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	if e.HoldEnabled() {
		e.EvalHoldSlacks()
	}

	// The edit batch: buffers spliced into two distinct net arcs plus one
	// cell-arc re-annotation — the shape one optimizer step produces. The
	// targets are drawn from the deeper half of the level schedule, where
	// endpoint-driven sizing candidates actually live; an edit at the design
	// input boundary would re-level (correctly, but unrepresentatively) the
	// entire downstream quarter of the design.
	deep := func(kind uint8, frac float64) int32 {
		want := int32(float64(s.State.NumLevels) * frac)
		best, bestLv := int32(-1), int32(-1)
		for i := range s.Tab.Arcs {
			isNet := s.Tab.Arcs[i].Kind == 1
			if isNet != (kind == 1) {
				continue
			}
			lv := s.State.LvLevel[s.Tab.Arcs[i].To]
			if lv <= want && lv > bestLv {
				best, bestLv = int32(i), lv
			}
		}
		return best
	}
	netA, netB, cellArc := deep(1, 0.60), deep(1, 0.75), deep(0, 0.70)
	if netA < 0 || netB < 0 || netA == netB || cellArc < 0 {
		t.Fatalf("no suitable edit targets (net %d/%d, cell %d)", netA, netB, cellArc)
	}
	bufD := [2]num.Dist{{Mean: 5, Std: 0.5}, {Mean: 5.25, Std: 0.5}}
	annD := [2]num.Dist{e.ArcDelay(cellArc, 0), e.ArcDelay(cellArc, 1)}
	annD[0].Mean *= 1.05
	annD[1].Mean *= 1.05
	ops := []topo.Op{
		topo.InsertBuffer(netA, -1, bufD, 0.5),
		topo.InsertBuffer(netB, -1, bufD, 0.4),
		topo.Annotate(cellArc, annD),
	}

	sess, err := topo.NewSession(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Correctness first, unconditionally: the incremental working engine must
	// be bit-identical to a cold compile + full propagation of the edited
	// tables.
	res, err := sess.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	editedTab := res.Tables
	report := topoBenchReport{
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Preset:        preset,
		Arcs:          e.NumArcs(),
		EditOps:       len(ops),
		RelevelLevels: sess.Stats().Relevel.LevelsSpan,
		RelevelRegion: sess.Stats().Relevel.Region,
	}
	coldEval := func() *core.Engine {
		st, err := core.Compile(editedTab)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := core.NewEngineFromState(st, opt)
		if err != nil {
			t.Fatal(err)
		}
		ce.Run()
		if ce.HoldEnabled() {
			ce.EvalHoldSlacks()
		}
		return ce
	}
	want := coldEval()
	gs, ws := sess.Engine().Slacks(), want.Slacks()
	if len(gs) != len(ws) {
		t.Fatalf("incremental %d endpoints != cold %d", len(gs), len(ws))
	}
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("ep %d: incremental slack %v != cold %v", i, gs[i], ws[i])
		}
	}
	if sess.Engine().WNS() != want.WNS() || sess.Engine().TNS() != want.TNS() {
		t.Fatalf("WNS/TNS %v/%v != cold %v/%v",
			sess.Engine().WNS(), sess.Engine().TNS(), want.WNS(), want.TNS())
	}
	want.Close()
	sess.Reset()

	// Timing: steady-state previews — successive Apply batches on a warmed
	// session, the shape an optimizer loop produces (InstaBuffer previews
	// hundreds of candidates against one session). The first Apply after a
	// reset pays a one-time seeded tensor allocation and is warmed out of the
	// loop; every timed Apply is then edit + patched recompile + in-place
	// reseed, against the cold alternative of compiling and fully propagating
	// the edited netlist from scratch. Each timed Apply splices fresh buffers
	// (arc ids stay valid — insert-only batches never renumber), so the
	// session keeps growing exactly as a real optimizer's would.
	if _, err := sess.Apply(ops); err != nil {
		t.Fatal(err)
	}
	report.IncrementalNs, report.ColdNs = pairedMinNs(7,
		func() {
			if _, err := sess.Apply(ops); err != nil {
				t.Fatal(err)
			}
		},
		func() { coldEval().Close() },
	)
	report.Speedup = float64(report.ColdNs) / float64(report.IncrementalNs)
	t.Logf("%s: incremental %.2fms vs cold %.2fms — %.1fx (relevel %d levels, region %d of %d arcs)",
		preset, float64(report.IncrementalNs)/1e6, float64(report.ColdNs)/1e6,
		report.Speedup, report.RelevelLevels, report.RelevelRegion, report.Arcs)

	// INSTA_TOPO_GATE=1 (ci.sh) arms the tentpole claim; ad-hoc runs only
	// catch a collapse to parity.
	limit := 2.0
	if os.Getenv("INSTA_TOPO_GATE") == "1" {
		limit = 10.0
	}
	if report.Speedup < limit {
		t.Errorf("incremental structural edit only %.1fx faster than cold rebuild (limit %.0fx)",
			report.Speedup, limit)
	}

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_topo.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
