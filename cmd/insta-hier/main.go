// Command insta-hier runs the hierarchical flow over a stitched chip preset:
// boot each unique block, extract (or cache-load) its interface timing
// model, compose the top graph, and analyze every corner — then, unless
// -flat=false, flatten the same chip and report per-corner WNS/TNS deltas,
// per-endpoint recovery accuracy against the model-error bound, and the
// composed-vs-flat speedup.
package main

import (
	"flag"
	"fmt"
	"os"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/hier"
	"insta/internal/obs"
)

func main() {
	chip := flag.String("chip", "chip-4x", "stitched chip preset (chip-2x, chip-4x, chip-16x)")
	topK := flag.Int("topk", 16, "Top-K entries per pin (extraction and analysis)")
	flat := flag.Bool("flat", true, "also run the flattened chip and report deltas")
	co := cmdutil.CornersFlag()
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()
	tr := ob.Setup("insta-hier")

	opt := sf.Options()
	opt.TopK = *topK
	opt.Tracer = tr

	spec, err := bench.ChipSpecByName(*chip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var scns []batch.Scenario
	if co.Enabled() {
		if scns, err = co.Scenarios(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	boot := func(name string) (*core.State, error) {
		bspec, err := bench.ChipBlockSpec(name)
		if err != nil {
			return nil, err
		}
		bt, err := sn.BootPreset(bspec, tr)
		if err != nil {
			return nil, err
		}
		return bt.State, nil
	}
	run, err := hier.BuildChip(spec, boot, scns, opt, sn.Cache())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d instances, %d wires — models: %d extracted (%.1f ms), %d cached\n",
		spec.Name, len(spec.Blocks), len(spec.Wires),
		run.Extracted, float64(run.ExtractNs)/1e6, run.CacheHits)

	var cmp *hier.Compare
	if *flat {
		if cmp, err = run.CompareFlat(opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("flat %d pins vs composed top %d pins\n\n", cmp.FlatPins, cmp.TopPins)
		fmt.Printf("%-10s %12s %12s %12s %12s %12s %12s %10s %10s\n",
			"corner", "flatWNS", "hierWNS", "recWNS", "flatTNS", "recTNS", "maxΔslack", "q99Δ", "bound")
		for _, s := range cmp.Scen {
			fmt.Printf("%-10s %12.2f %12.2f %12.2f %12.1f %12.1f %12.4g %10.4g %10.4g\n",
				s.Name, s.FlatWNS, s.HierWNS, s.RecWNS, s.FlatTNS, s.RecTNS,
				s.Deltas.Max, s.Deltas.Q99, s.Bound)
		}
		speedup := float64(cmp.FlatNs) / float64(cmp.AnalyzeNs)
		fmt.Printf("\nflat %.1f ms, hier analyze %.2f ms (%.0fx), recovery %.1f ms\n",
			float64(cmp.FlatNs)/1e6, float64(cmp.AnalyzeNs)/1e6, speedup,
			float64(cmp.RecoverNs)/1e6)
	} else {
		a, err := hier.Analyze(run.Chip, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer a.Close()
		fmt.Printf("%-10s %12s %12s\n", "corner", "hierWNS", "hierTNS")
		for _, sr := range a.Scen {
			fmt.Printf("%-10s %12.2f %12.1f\n", sr.Scenario.Name, sr.WNS, sr.TNS)
		}
	}

	defer ob.Finish(func(m *obs.Manifest) {
		m.Design = spec.Name
		m.TopK, m.Workers, m.Grain = *topK, sf.Workers, sf.Grain
		m.AddExtra("hier_chip", spec.Name)
		m.AddExtra("hier_instances", len(spec.Blocks))
		m.AddExtra("hier_cache_hits", run.CacheHits)
		m.AddExtra("hier_cache_misses", run.CacheMisses)
		m.AddExtra("hier_extract_ms", float64(run.ExtractNs)/1e6)
		if cmp != nil {
			m.AddExtra("hier_analyze_ms", float64(cmp.AnalyzeNs)/1e6)
			m.AddExtra("hier_flat_ms", float64(cmp.FlatNs)/1e6)
			m.AddExtra("hier_recover_ms", float64(cmp.RecoverNs)/1e6)
			if cmp.AnalyzeNs > 0 {
				m.AddExtra("hier_speedup", float64(cmp.FlatNs)/float64(cmp.AnalyzeNs))
			}
			if len(cmp.Scen) > 0 {
				m.WNSAfter, m.TNSAfter = cmp.Scen[0].FlatWNS, cmp.Scen[0].FlatTNS
			}
		}
	})
}
