// Command insta-incremental regenerates Figure 7 (incremental STA runtime
// per sizing iteration across an in-house full engine, the reference
// incremental engine, and INSTA with estimate_eco re-annotation) and
// Figure 8 (INSTA correlation before/after the flow without
// re-synchronization).
package main

import (
	"flag"
	"fmt"
	"os"

	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/exp"
	"insta/internal/obs"
)

func main() {
	block := flag.String("block", "block-2", "block preset (the paper uses block-2)")
	n := flag.Int("n", 30, "sizing iterations")
	batch := flag.Int("batch", 120, "cells resized per iteration")
	topK := flag.Int("topk", 32, "INSTA Top-K")
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()

	spec, err := bench.BlockSpec(*block)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt := sf.Options()
	opt.TopK = *topK
	opt.Tracer = ob.Setup("insta-incremental")
	if c := sn.Cache(); c != nil {
		exp.UseSnapshots(c)
	}
	defer ob.Finish(func(m *obs.Manifest) {
		m.Design = spec.Name
		m.TopK, m.Workers, m.Grain = *topK, sf.Workers, sf.Grain
		m.AddExtra("iterations", *n)
		m.AddExtra("batch", *batch)
	})
	f7, f8, err := exp.Incremental(spec, *n, *batch, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exp.PrintFig7(os.Stdout, f7)
	fmt.Println()
	exp.PrintFig8(os.Stdout, f8)
}
