// Command insta-incremental regenerates Figure 7 (incremental STA runtime
// per sizing iteration across an in-house full engine, the reference
// incremental engine, and INSTA with estimate_eco re-annotation) and
// Figure 8 (INSTA correlation before/after the flow without
// re-synchronization).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/obs"
	"insta/internal/server"
)

func main() {
	block := flag.String("block", "block-2", "block preset (the paper uses block-2)")
	n := flag.Int("n", 30, "sizing iterations")
	batch := flag.Int("batch", 120, "cells resized per iteration")
	topK := flag.Int("topk", 32, "INSTA Top-K")
	ops := flag.String("ops", "", "structural-ECO ablation: comma-separated ops "+
		"(buffer:ARC[:CELL[:FRAC]] | unbuffer:ARC | repower:CELL:LIB | move:CELL:X:Y), "+
		"each previewed in one topo-session batch, then committed together")
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()

	spec, err := bench.BlockSpec(*block)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt := sf.Options()
	opt.TopK = *topK
	opt.Tracer = ob.Setup("insta-incremental")
	if c := sn.Cache(); c != nil {
		exp.UseSnapshots(c)
	}
	defer ob.Finish(func(m *obs.Manifest) {
		m.Design = spec.Name
		m.TopK, m.Workers, m.Grain = *topK, sf.Workers, sf.Grain
		m.AddExtra("iterations", *n)
		m.AddExtra("batch", *batch)
		if *ops != "" {
			m.AddExtra("ops", *ops)
		}
	})
	if *ops != "" {
		if err := runOps(spec, opt, *ops); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	f7, f8, err := exp.Incremental(spec, *n, *batch, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exp.PrintFig7(os.Stdout, f7)
	fmt.Println()
	exp.PrintFig8(os.Stdout, f8)
}

// parseOp turns one colon-separated spec into a server TopoOp.
func parseOp(spec string) (server.TopoOp, error) {
	f := strings.Split(spec, ":")
	bad := func() (server.TopoOp, error) {
		return server.TopoOp{}, fmt.Errorf("insta-incremental: bad op %q", spec)
	}
	switch f[0] {
	case "buffer":
		if len(f) < 2 || len(f) > 4 {
			return bad()
		}
		arc, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return bad()
		}
		op := server.TopoOp{Op: "buffer", Arc: int32(arc)}
		if len(f) >= 3 {
			op.Lib = f[2]
		}
		if len(f) == 4 {
			if op.Frac, err = strconv.ParseFloat(f[3], 64); err != nil {
				return bad()
			}
		}
		return op, nil
	case "unbuffer":
		if len(f) != 2 {
			return bad()
		}
		arc, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return bad()
		}
		return server.TopoOp{Op: "unbuffer", Arc: int32(arc)}, nil
	case "repower":
		if len(f) != 3 {
			return bad()
		}
		return server.TopoOp{Op: "repower", Cell: f[1], Lib: f[2]}, nil
	case "move":
		if len(f) != 4 {
			return bad()
		}
		x, errX := strconv.ParseFloat(f[2], 64)
		y, errY := strconv.ParseFloat(f[3], 64)
		if errX != nil || errY != nil {
			return bad()
		}
		return server.TopoOp{Op: "move", Cell: f[1], X: x, Y: y}, nil
	}
	return bad()
}

// runOps is the structural-ECO ablation path: each -ops entry is previewed as
// its own single-op topo-session batch (separate batches keep two edits of
// one net from claiming the same driver arcs), printed, and the whole session
// committed at the end — one engine swap, zero rebuilds.
func runOps(spec bench.Spec, opt core.Options, opsArg string) error {
	s, err := exp.Build(spec)
	if err != nil {
		return err
	}
	e, err := core.NewEngineFromState(s.State, opt)
	if err != nil {
		return err
	}
	mgr := server.NewManager(e, s.Ref, server.Options{MaxSessions: 1})
	defer mgr.Close()
	sess, err := mgr.Create()
	if err != nil {
		return err
	}
	defer sess.Close()

	fmt.Printf("structural-ECO ablation on %s (base WNS=%.2f TNS=%.2f, %d arcs)\n",
		spec.Name, mgr.BaseWNS(), mgr.BaseTNS(), e.NumArcs())
	fmt.Printf("%-28s %10s %14s %8s %8s %9s\n",
		"op", "WNS(ps)", "TNS(ps)", "levels", "region", "new arcs")
	for _, one := range strings.Split(opsArg, ",") {
		op, err := parseOp(strings.TrimSpace(one))
		if err != nil {
			return err
		}
		res, err := sess.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{op}})
		if err != nil {
			return fmt.Errorf("insta-incremental: op %q: %w", one, err)
		}
		newArcs := ""
		if res.NewArcs[1] > res.NewArcs[0] {
			newArcs = fmt.Sprintf("[%d,%d)", res.NewArcs[0], res.NewArcs[1])
		}
		fmt.Printf("%-28s %10.2f %14.2f %8d %8d %9s\n",
			one, res.View.WNS, res.View.TNS, res.RelevelLevels, res.RelevelRegion, newArcs)
	}
	view, err := sess.Commit()
	if err != nil {
		return fmt.Errorf("insta-incremental: commit: %w", err)
	}
	fmt.Printf("committed: WNS=%.2f TNS=%.2f (epoch %d, %d arcs)\n",
		view.WNS, view.TNS, mgr.Epoch(), mgr.Engine().NumArcs())
	return nil
}
