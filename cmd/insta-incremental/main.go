// Command insta-incremental regenerates Figure 7 (incremental STA runtime
// per sizing iteration across an in-house full engine, the reference
// incremental engine, and INSTA with estimate_eco re-annotation) and
// Figure 8 (INSTA correlation before/after the flow without
// re-synchronization).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"insta/internal/bench"
	"insta/internal/exp"
)

func main() {
	block := flag.String("block", "block-2", "block preset (the paper uses block-2)")
	n := flag.Int("n", 30, "sizing iterations")
	batch := flag.Int("batch", 120, "cells resized per iteration")
	topK := flag.Int("topk", 32, "INSTA Top-K")
	workers := flag.Int("workers", runtime.NumCPU(), "forward-kernel goroutines")
	flag.Parse()

	spec, err := bench.BlockSpec(*block)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f7, f8, err := exp.Incremental(spec, *n, *batch, *topK, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exp.PrintFig7(os.Stdout, f7)
	fmt.Println()
	exp.PrintFig8(os.Stdout, f8)
}
