// Command insta-place regenerates Table III (INSTA-Place vs plain DREAMPlace
// and DP4.0-style net weighting on the superblue-like suite, post
// legalization) and Figure 9 (timing-update iteration runtime breakdown).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/exp"
	"insta/internal/obs"
)

func main() {
	designs := flag.String("designs", strings.Join(bench.SuperblueNames(), ","), "comma-separated superblue presets")
	iters := flag.Int("iters", 0, "placement iterations (0 = mode default)")
	fig9 := flag.Bool("fig9", true, "also run the Figure 9 breakdown")
	fig9Design := flag.String("fig9-design", "superblue10", "benchmark for Figure 9")
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()

	opt := sf.Options()
	opt.Tracer = ob.Setup("insta-place")
	if c := sn.Cache(); c != nil {
		exp.UseSnapshots(c)
	}
	defer ob.Finish(func(m *obs.Manifest) {
		m.Workers, m.Grain = sf.Workers, sf.Grain
		m.AddExtra("designs", *designs)
	})
	if _, err := exp.TableIII(os.Stdout, strings.Split(*designs, ","), *iters, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *fig9 {
		fmt.Println()
		if _, err := exp.Fig9(os.Stdout, *fig9Design, *iters, opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
