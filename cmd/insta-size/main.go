// Command insta-size regenerates Table II: INSTA-Size (gradient-ranked
// sizing with estimate_eco) against the reference-tool-style slack-driven
// baseline on the IWLS-like suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/obs"
	"insta/internal/server"
	"insta/internal/sizing"
)

func main() {
	designs := flag.String("designs", strings.Join(bench.IWLSNames(), ","), "comma-separated IWLS presets")
	topK := flag.Int("topk", 4, "INSTA Top-K during sizing evaluation")
	buffer := flag.Bool("buffer", false, "run INSTA-Buffer (structural-session buffer insertion) instead of the sizing table")
	bufMax := flag.Int("buffer-max", 40, "with -buffer: insertion budget")
	bufCell := flag.String("buffer-cell", "BUF_X4", "with -buffer: buffer library cell")
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()

	opt := sf.Options()
	opt.TopK = *topK
	opt.Tracer = ob.Setup("insta-size")
	if c := sn.Cache(); c != nil {
		exp.UseSnapshots(c)
	}
	defer ob.Finish(func(m *obs.Manifest) {
		m.TopK, m.Workers, m.Grain = *topK, sf.Workers, sf.Grain
		m.AddExtra("designs", *designs)
		if *buffer {
			m.AddExtra("mode", "buffer")
		}
	})
	if *buffer {
		if err := runBuffer(strings.Split(*designs, ","), opt, *bufMax, *bufCell); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if _, err := exp.TableII(os.Stdout, strings.Split(*designs, ","), opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runBuffer drives the gradient-guided buffering flow end-to-end through the
// serving layer's structural sessions: every insertion is previewed in a topo
// session (localized re-levelization + cone re-propagation) and committed by
// an engine swap, never a rebuild.
func runBuffer(names []string, opt core.Options, budget int, cell string) error {
	fmt.Printf("INSTA-Buffer: structural-session buffer insertion\n")
	fmt.Printf("%-12s %10s %14s %14s %9s %9s %10s\n",
		"design", "WNS(ps)", "TNS before", "TNS after", "inserted", "previewed", "runtime")
	for _, name := range names {
		spec, err := bench.IWLSSpec(name)
		if err != nil {
			return err
		}
		s, err := exp.Build(spec)
		if err != nil {
			return fmt.Errorf("insta-size: %s: %w", name, err)
		}
		e, err := core.NewEngineFromState(s.State, opt)
		if err != nil {
			return fmt.Errorf("insta-size: %s: %w", name, err)
		}
		mgr := server.NewManager(e, s.Ref, server.Options{MaxSessions: 2})
		before := mgr.BaseTNS()
		cfg := sizing.DefaultBufferConfig()
		cfg.MaxBuffers = budget
		cfg.BufCell = cell
		res := sizing.InstaBuffer(mgr, cfg)
		mgr.Close()
		fmt.Printf("%-12s %10.2f %14.2f %14.2f %9d %9d %10s\n",
			name, res.WNS, before, res.TNS, res.Inserted, res.Previewed, res.Runtime.Round(time.Microsecond))
	}
	return nil
}
