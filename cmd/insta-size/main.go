// Command insta-size regenerates Table II: INSTA-Size (gradient-ranked
// sizing with estimate_eco) against the reference-tool-style slack-driven
// baseline on the IWLS-like suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/exp"
	"insta/internal/obs"
)

func main() {
	designs := flag.String("designs", strings.Join(bench.IWLSNames(), ","), "comma-separated IWLS presets")
	topK := flag.Int("topk", 4, "INSTA Top-K during sizing evaluation")
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()

	opt := sf.Options()
	opt.TopK = *topK
	opt.Tracer = ob.Setup("insta-size")
	if c := sn.Cache(); c != nil {
		exp.UseSnapshots(c)
	}
	defer ob.Finish(func(m *obs.Manifest) {
		m.TopK, m.Workers, m.Grain = *topK, sf.Workers, sf.Grain
		m.AddExtra("designs", *designs)
	})
	if _, err := exp.TableII(os.Stdout, strings.Split(*designs, ","), opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
