// Command insta-size regenerates Table II: INSTA-Size (gradient-ranked
// sizing with estimate_eco) against the reference-tool-style slack-driven
// baseline on the IWLS-like suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/exp"
)

func main() {
	designs := flag.String("designs", strings.Join(bench.IWLSNames(), ","), "comma-separated IWLS presets")
	topK := flag.Int("topk", 4, "INSTA Top-K during sizing evaluation")
	sf := cmdutil.SchedFlags()
	flag.Parse()

	opt := sf.Options()
	opt.TopK = *topK
	if _, err := exp.TableII(os.Stdout, strings.Split(*designs, ","), opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
