// Command insta-extract generates a design preset, runs the reference
// signoff engine, and dumps the CircuitOps-style initialization tables that
// INSTA consumes — the paper's one-time extraction step (Fig. 2) as a
// standalone artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"insta/internal/batch"
	"insta/internal/cmdutil"
	"insta/internal/hier"
	"insta/internal/obs"
)

func main() {
	name := flag.String("design", "block-2", "block, IWLS or superblue preset name")
	out := flag.String("o", "", "output path (default stdout)")
	blockModel := flag.String("block-model", "",
		"also extract the design's interface timing model (internal/hier) and write it, as a snap container, to this path")
	modelTopK := flag.Int("model-topk", 16, "Top-K for -block-model extraction")
	co := cmdutil.CornersFlag()
	// Extraction itself is sequential; the flags are accepted so every tool
	// shares one CLI surface.
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()
	tr := ob.Setup("insta-extract")

	spec, err := cmdutil.SpecByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Warm boots reconstruct the tables from the cached compiled state — the
	// serialization is a lossless inverse — without generating the design or
	// running the reference engine.
	bt, err := sn.BootPreset(spec, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tab := bt.Tables()
	var modelMS float64
	var modelHash string
	defer ob.Finish(func(m *obs.Manifest) {
		m.Design = spec.Name
		m.Pins, m.Arcs, m.Endpoints = tab.NumPins, len(tab.Arcs), len(tab.EPs)
		if bt.Ref != nil {
			m.WNSAfter, m.TNSAfter = bt.Ref.WNS(), bt.Ref.TNS()
		}
		if modelHash != "" {
			m.AddExtra("hier_model_hash", modelHash)
			m.AddExtra("hier_extract_ms", modelMS)
		}
		bt.FillManifest(m)
	})

	if *blockModel != "" {
		var scns []batch.Scenario
		if co.Enabled() {
			if scns, err = co.Scenarios(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		opt := sf.Options()
		opt.TopK = *modelTopK
		opt.Tracer = tr
		msp := tr.Start("extract-model")
		t0 := time.Now()
		mdl, err := hier.Extract(bt.State, scns, opt)
		if err != nil {
			msp.End()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		modelMS = float64(time.Since(t0).Nanoseconds()) / 1e6
		msp.End()
		modelHash = mdl.Hash
		buf := hier.ModelContainer(mdl)
		if err := os.WriteFile(*blockModel, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "block model %s: %d ins, %d outs, %d scenarios, hash %.12s → %s (%d bytes, %.1f ms)\n",
			spec.Name, len(mdl.Ins), len(mdl.Outs), len(mdl.Scen), mdl.Hash, *blockModel, len(buf), modelMS)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	wsp := tr.Start("write")
	if err := tab.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wsp.End()
	if bt.Warm {
		fmt.Fprintf(os.Stderr, "extracted %s (warm, snapshot %.12s): %d pins, %d arcs, %d SPs, %d EPs\n",
			spec.Name, bt.Key, tab.NumPins, len(tab.Arcs), len(tab.SPs), len(tab.EPs))
	} else {
		fmt.Fprintf(os.Stderr, "extracted %s: %d pins, %d arcs, %d SPs, %d EPs, WNS=%.1f TNS=%.1f\n",
			spec.Name, tab.NumPins, len(tab.Arcs), len(tab.SPs), len(tab.EPs), bt.Ref.WNS(), bt.Ref.TNS())
	}
}
