// Command insta-extract generates a design preset, runs the reference
// signoff engine, and dumps the CircuitOps-style initialization tables that
// INSTA consumes — the paper's one-time extraction step (Fig. 2) as a
// standalone artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"insta/internal/cmdutil"
	"insta/internal/obs"
)

func main() {
	name := flag.String("design", "block-2", "block, IWLS or superblue preset name")
	out := flag.String("o", "", "output path (default stdout)")
	// Extraction itself is sequential; the flags are accepted so every tool
	// shares one CLI surface.
	cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()
	tr := ob.Setup("insta-extract")

	spec, err := cmdutil.SpecByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Warm boots reconstruct the tables from the cached compiled state — the
	// serialization is a lossless inverse — without generating the design or
	// running the reference engine.
	bt, err := sn.BootPreset(spec, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tab := bt.Tables()
	defer ob.Finish(func(m *obs.Manifest) {
		m.Design = spec.Name
		m.Pins, m.Arcs, m.Endpoints = tab.NumPins, len(tab.Arcs), len(tab.EPs)
		if bt.Ref != nil {
			m.WNSAfter, m.TNSAfter = bt.Ref.WNS(), bt.Ref.TNS()
		}
		bt.FillManifest(m)
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	wsp := tr.Start("write")
	if err := tab.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wsp.End()
	if bt.Warm {
		fmt.Fprintf(os.Stderr, "extracted %s (warm, snapshot %.12s): %d pins, %d arcs, %d SPs, %d EPs\n",
			spec.Name, bt.Key, tab.NumPins, len(tab.Arcs), len(tab.SPs), len(tab.EPs))
	} else {
		fmt.Fprintf(os.Stderr, "extracted %s: %d pins, %d arcs, %d SPs, %d EPs, WNS=%.1f TNS=%.1f\n",
			spec.Name, tab.NumPins, len(tab.Arcs), len(tab.SPs), len(tab.EPs), bt.Ref.WNS(), bt.Ref.TNS())
	}
}
