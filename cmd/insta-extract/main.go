// Command insta-extract generates a design preset, runs the reference
// signoff engine, and dumps the CircuitOps-style initialization tables that
// INSTA consumes — the paper's one-time extraction step (Fig. 2) as a
// standalone artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/cmdutil"
	"insta/internal/refsta"
)

func main() {
	name := flag.String("design", "block-2", "block, IWLS or superblue preset name")
	out := flag.String("o", "", "output path (default stdout)")
	// Extraction itself is sequential; the flags are accepted so every tool
	// shares one CLI surface.
	cmdutil.SchedFlags()
	flag.Parse()

	spec, err := cmdutil.SpecByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b, err := bench.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tab := circuitops.Extract(ref)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tab.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "extracted %s: %d pins, %d arcs, %d SPs, %d EPs, WNS=%.1f TNS=%.1f\n",
		spec.Name, tab.NumPins, len(tab.Arcs), len(tab.SPs), len(tab.EPs), ref.WNS(), ref.TNS())
}
