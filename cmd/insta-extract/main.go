// Command insta-extract generates a design preset, runs the reference
// signoff engine, and dumps the CircuitOps-style initialization tables that
// INSTA consumes — the paper's one-time extraction step (Fig. 2) as a
// standalone artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/cmdutil"
	"insta/internal/obs"
	"insta/internal/refsta"
)

func main() {
	name := flag.String("design", "block-2", "block, IWLS or superblue preset name")
	out := flag.String("o", "", "output path (default stdout)")
	// Extraction itself is sequential; the flags are accepted so every tool
	// shares one CLI surface.
	cmdutil.SchedFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()
	tr := ob.Setup("insta-extract")

	spec, err := cmdutil.SpecByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gsp := tr.Start("generate")
	b, err := bench.Generate(spec)
	gsp.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rsp := tr.Start("refsta")
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	rsp.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	xsp := tr.Start("extract")
	tab := circuitops.Extract(ref)
	xsp.End()
	defer ob.Finish(func(m *obs.Manifest) {
		m.Design = spec.Name
		m.Pins, m.Arcs, m.Endpoints = tab.NumPins, len(tab.Arcs), len(tab.EPs)
		m.WNSAfter, m.TNSAfter = ref.WNS(), ref.TNS()
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	wsp := tr.Start("write")
	if err := tab.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wsp.End()
	fmt.Fprintf(os.Stderr, "extracted %s: %d pins, %d arcs, %d SPs, %d EPs, WNS=%.1f TNS=%.1f\n",
		spec.Name, tab.NumPins, len(tab.Arcs), len(tab.SPs), len(tab.EPs), ref.WNS(), ref.TNS())
}
