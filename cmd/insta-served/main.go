// Command insta-served is the serving daemon over one design: it runs the
// one-time initialization (reference signoff + INSTA extraction + full
// propagation) at startup, then serves concurrent what-if timing queries
// over HTTP/JSON through copy-on-write ECO sessions (see internal/server and
// DESIGN.md §8).
//
//	insta-served -design block-2 -addr :8080
//	insta-served -dir /path/to/design -topk 16
//	insta-served -design block-2 -corners ss,tt,ff
//	insta-served -design block-2 -snapshot-dir ~/.cache/insta
//
// With -snapshot-dir the daemon boots through the content-addressed snapshot
// cache (internal/snap): the first start cold-builds and writes a compiled
// snapshot back; every later start with the same inputs decodes it from disk
// in milliseconds, skipping the reference signoff entirely (warm boots serve
// without a reference engine — resize-form ECOs answer 501 until a cold
// start). POST /admin/snapshot persists the current committed base — after a
// session of committed ECOs, the next boot warm-starts into the ECO'd state.
// /healthz reports the boot mode, snapshot key and load/build wall time.
//
// Endpoints: POST /session, POST /session/{id}/eco, POST
// /session/{id}/commit, POST /session/{id}/rollback, GET/DELETE
// /session/{id}, GET /session/{id}/slacks, GET /slacks, GET /gradients, GET
// /healthz, GET /metrics, plus the debug surface: GET /debug/pprof/*, GET
// /debug/trace?dur= (windowed Chrome trace capture) and GET
// /debug/flightrecorder (the always-on request ring with pinned anomalies;
// -flight-size/-flight-pin tune it, -slo-objective/-slo-budget set the
// burn-rate objective surfaced on /healthz and /metrics). SIGINT/SIGTERM
// drains in-flight requests before exiting — and, with -snapshot-dir, saves
// the committed base back to the cache so the next boot warm-starts into it;
// idle sessions are evicted past -ttl.
//
// With -corners the daemon also stands up one scenario-batched engine
// (internal/batch) over the same extraction; every session then prices its
// what-ifs in all corners with a single cone re-propagation, ECO previews and
// commits carry per-scenario and merged ΔWNS/ΔTNS, and ?scenario=<name|merged>
// selects a corner on the slack endpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insta/internal/batch"
	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/obs"
	"insta/internal/server"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	design := flag.String("design", "", "serve a built-in preset (block-*/IWLS/superblue name)")
	dir := flag.String("dir", "", "serve a design directory (design.lib/.v/.sdc/.spef)")
	tech := flag.String("tech", "", "fallback library when design.lib is absent: n3 or asap7")
	topK := flag.Int("topk", 32, "INSTA Top-K")
	addr := flag.String("addr", ":8080", "listen address")
	maxSessions := flag.Int("max-sessions", 64, "admission cap on live sessions")
	ttl := flag.Duration("ttl", 5*time.Minute, "idle session lifetime")
	sweepEvery := flag.Duration("sweep", 30*time.Second, "eviction sweep interval")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	flightSize := flag.Int("flight-size", 4096, "request flight-recorder ring entries (negative disables)")
	flightPin := flag.Duration("flight-pin", 250*time.Millisecond, "latency at which a request pins as an anomaly")
	sloObjective := flag.Duration("slo-objective", 100*time.Millisecond, "request latency SLO objective")
	sloBudget := flag.Float64("slo-budget", 0.01, "SLO error budget fraction")
	sf := cmdutil.SchedFlags()
	cf := cmdutil.CornersFlag()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()
	tr := ob.Setup("insta-served")
	if tr == nil {
		// No always-on capture requested: keep a disabled tracer around anyway
		// so /debug/trace?dur= can open capture windows on demand at zero
		// steady-state cost.
		tr = obs.NewTracer()
		tr.Disable()
	}

	t0 := time.Now()
	var (
		bt  *cmdutil.Boot
		err error
	)
	switch {
	case *design != "" && *dir != "":
		fatalf("pass -design or -dir, not both")
	case *design != "":
		spec, sErr := cmdutil.SpecByName(*design)
		if sErr != nil {
			fatalf("%v", sErr)
		}
		if bt, err = sn.BootPreset(spec, tr); err != nil {
			fatalf("generate: %v", err)
		}
		bt.Design = spec.Name
	case *dir != "":
		if bt, err = sn.BootDir(*dir, *tech, tr); err != nil {
			fatalf("load %s: %v", *dir, err)
		}
	default:
		fatalf("pass -design <preset> or -dir <design directory>")
	}
	name := bt.Design

	opt := sf.Options()
	opt.TopK = *topK
	opt.Tracer = tr
	e, err := core.NewEngineFromState(bt.State, opt)
	if err != nil {
		fatalf("insta: %v", err)
	}
	defer e.Close()
	e.EnableKernelStats()

	srvOpt := server.Options{MaxSessions: *maxSessions, TTL: *ttl, Design: name}
	srvOpt.Boot = &server.BootInfo{
		Mode:        bt.Mode(),
		SnapshotKey: bt.Key,
		SnapLoadMS:  float64(bt.Load.Nanoseconds()) / 1e6,
		ColdBuildMS: float64(bt.Build.Nanoseconds()) / 1e6,
	}
	srvOpt.Snapshots = bt.Cache
	if ob.Manifest {
		// Per-commit manifests: every session commit writes one JSON record.
		srvOpt.ManifestDir = obs.ManifestDir()
	}
	if cf.Enabled() {
		scns, sErr := cf.Scenarios()
		if sErr != nil {
			fatalf("corners: %v", sErr)
		}
		be, bErr := batch.NewFromState(bt.State, scns, opt)
		if bErr != nil {
			fatalf("corners: %v", bErr)
		}
		defer be.Close()
		srvOpt.Batch = be
	}
	// Warm boots run without the reference engine: resize-form ECOs and pin
	// names answer 501/blank until a cold start rebuilds it.
	mgr := server.NewManager(e, bt.Ref, srvOpt)
	defer ob.Finish(func(m *obs.Manifest) {
		m.Design = name
		m.Pins, m.Arcs, m.Endpoints, m.Levels = e.NumPins(), e.NumArcs(), len(e.Endpoints()), e.NumLevels()
		m.TopK, m.Workers, m.Grain = *topK, sf.Workers, sf.Grain
		m.WNSAfter, m.TNSAfter = mgr.BaseWNS(), mgr.BaseTNS()
		bt.FillManifest(m)
	})
	slog.Info("ready", "design", name, "boot", bt.Mode(), "init", time.Since(t0).Round(time.Millisecond).String(),
		"pins", e.NumPins(), "arcs", e.NumArcs(), "endpoints", len(e.Endpoints()),
		"wns_ps", mgr.BaseWNS(), "tns_ps", mgr.BaseTNS(), "topk", *topK, "workers", e.Pool().Workers())
	if bt.Warm {
		slog.Info("warm boot: reference engine disabled (resize ECOs answer 501; POST /admin/snapshot persists the current base)")
	}
	if be := mgr.Batch(); be != nil {
		slog.Info("multi-corner", "scenarios", be.NumScenarios(),
			"mem_mb", float64(be.MemoryBytes())/1e6)
	}

	srv := server.New(mgr, name)
	// Request observability (DESIGN.md §15): trace identity on every request
	// (joined from the router's Traceparent or minted locally), the always-on
	// flight recorder with anomaly pinning, and SLO burn-rate gauges.
	srv.EnableTracing(tr)
	if *flightSize >= 0 {
		srv.EnableFlightRecorder(obs.NewFlightRecorder(obs.FlightRecorderOptions{
			Size: *flightSize, PinThreshold: *flightPin, Tracer: tr,
		}))
	}
	srv.EnableSLO(obs.NewSLOTracker(obs.SLOOptions{Objective: *sloObjective, ErrorBudget: *sloBudget}))
	srv.EnableDebug(tr) // /debug/pprof/*, windowed /debug/trace?dur=, /debug/flightrecorder
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Eviction sweep: abandoned sessions age out so their overlays free up.
	go func() {
		tick := time.NewTicker(*sweepEvery)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-tick.C:
				if n := mgr.Sweep(now); n > 0 {
					slog.Info("evicted idle sessions", "count", n)
				}
			}
		}
	}()

	errc := make(chan error, 1)
	go func() {
		slog.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		// Graceful drain: stop accepting, finish in-flight requests, persist
		// the committed base through the snapshot cache (when configured),
		// then release the sessions.
		slog.Info("draining", "budget", drain.String())
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		_ = server.Drain(sctx, httpSrv, mgr, slog.Default())
		slog.Info("bye")
	}
}
