// Command insta-validate brute-force-checks the POCV statistical model:
// Monte Carlo sampling of the extracted arc delay distributions against the
// analytic corner arrivals INSTA propagates (see internal/mc). Run it on any
// design preset to quantify the POCV approximation error commercial signoff
// accepts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"insta/internal/cmdutil"
	"insta/internal/exp"
	"insta/internal/mc"
	"insta/internal/obs"
)

func main() {
	designs := flag.String("designs", "block-5,block-2", "comma-separated presets")
	samples := flag.Int("samples", 500, "Monte Carlo trials")
	seed := flag.Int64("seed", 1, "sampling seed")
	// Monte Carlo runs single-threaded for reproducibility; the flags are
	// accepted so every tool shares one CLI surface.
	cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()
	tr := ob.Setup("insta-validate")
	if c := sn.Cache(); c != nil {
		exp.UseSnapshots(c)
	}
	defer ob.Finish(func(m *obs.Manifest) {
		m.AddExtra("designs", *designs)
		m.AddExtra("samples", *samples)
	})

	fmt.Printf("POCV validation: empirical 3-sigma quantile vs analytic corner (%d samples)\n", *samples)
	fmt.Printf("%-12s %10s %12s %22s %12s\n", "design", "#eps", "corr", "rel err (avg, wst)", "bias(ps)")
	for _, name := range strings.Split(*designs, ",") {
		spec, err := cmdutil.SpecByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dsp := tr.Start("validate-" + name)
		s, err := exp.Build(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := mc.ValidatePOCV(s.Tab, *samples, *seed)
		dsp.End()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s %10d %12.6f       (%.4f, %.4f) %12.2f\n",
			name, res.Endpoints, res.Corr, res.RelErr.Avg, res.RelErr.Worst, res.Bias)
	}
}
