// Command insta-sta is a standalone timing shell over the repository's file
// formats: it reads a structural Verilog netlist, an SDC constraint file and
// SPEF-style parasitics, runs the reference signoff engine and INSTA, and
// reports correlation plus the worst timing paths.
//
// With -gen it first materializes one of the built-in design presets to the
// three files, so a complete session is:
//
//	insta-sta -gen block-5 -dir /tmp/b5
//	insta-sta -dir /tmp/b5 -paths 3 -hold
package main

import (
	"flag"
	"fmt"
	"os"

	"insta/internal/circuitops"
	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/refsta"
	"insta/internal/sched"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	gen := flag.String("gen", "", "generate a preset (block-*/IWLS/superblue name) into -dir and exit")
	dir := flag.String("dir", ".", "directory holding design.lib, design.v, design.sdc, design.spef")
	tech := flag.String("tech", "", "fallback library when design.lib is absent: n3 or asap7")
	topK := flag.Int("topk", 32, "INSTA Top-K")
	paths := flag.Int("paths", 3, "worst paths to report")
	hold := flag.Bool("hold", false, "also run hold analysis")
	profile := flag.Bool("profile", false, "print per-kernel scheduler telemetry")
	sf := cmdutil.SchedFlags()
	flag.Parse()

	if *gen != "" {
		spec, err := cmdutil.SpecByName(*gen)
		if err != nil {
			fatalf("%v", err)
		}
		b, err := cmdutil.GenerateDir(*dir, spec)
		if err != nil {
			fatalf("generate: %v", err)
		}
		fmt.Printf("wrote design.lib, design.v, design.sdc, design.spef under %s (%d cells, %d pins; tech %s)\n",
			*dir, b.D.NumCells(), b.D.NumPins(), spec.Tech.Name)
		return
	}

	b, err := cmdutil.LoadDir(*dir, *tech)
	if err != nil {
		fatalf("load %s: %v", *dir, err)
	}

	// Reference signoff.
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		fatalf("refsta: %v", err)
	}
	if *hold {
		ref.EnableHoldAnalysis()
	}
	fmt.Printf("%s: %d cells, %d pins, %d arcs, %d endpoints\n",
		b.D.Name, b.D.NumCells(), b.D.NumPins(), ref.NumArcs(), len(ref.Endpoints()))
	fmt.Printf("reference: WNS %.2f ps, TNS %.2f ps, %d violations\n",
		ref.WNS(), ref.TNS(), ref.NumViolations())

	// INSTA.
	tab := circuitops.Extract(ref)
	opt := sf.Options()
	opt.TopK, opt.Hold = *topK, *hold
	e, err := core.NewEngine(tab, opt)
	if err != nil {
		fatalf("insta: %v", err)
	}
	defer e.Close()
	if *profile {
		e.EnableKernelStats()
	}
	slacks := e.Run()
	r, ms, n, dis, err := exp.Correlate(ref.EndpointSlacks(), slacks)
	if err != nil {
		fatalf("correlate: %v", err)
	}
	fmt.Printf("INSTA(K=%d): WNS %.2f ps, TNS %.2f ps | corr %.6f over %d eps (mismatch avg %.2e, wst %.2f ps, %d disagree)\n",
		*topK, e.WNS(), e.TNS(), r, n, ms.Avg, ms.Worst, dis)
	if *hold {
		e.EvalHoldSlacks()
		fmt.Printf("hold: reference WNS %.2f / TNS %.2f ps | INSTA WNS %.2f / TNS %.2f ps\n",
			ref.HoldWNS(), ref.HoldTNS(), e.HoldWNS(), e.HoldTNS())
	}

	if *profile {
		e.Backward() // include the backward kernel in the profile
		fmt.Printf("\nkernel profile (workers=%d grain=%d levels=%d):\n",
			sf.Workers, e.Pool().Grain(), e.NumLevels())
		sched.WriteTable(os.Stdout, e.KernelStats(), 3)
	}

	fmt.Println()
	ref.SlackHistogram(os.Stdout, 16)
	fmt.Println()
	ref.ReportTiming(os.Stdout, *paths)
}
