// Command insta-sta is a standalone timing shell over the repository's file
// formats: it reads a structural Verilog netlist, an SDC constraint file and
// SPEF-style parasitics, runs the reference signoff engine and INSTA, and
// reports correlation plus the worst timing paths.
//
// With -gen it first materializes one of the built-in design presets to the
// three files, so a complete session is:
//
//	insta-sta -gen block-5 -dir /tmp/b5
//	insta-sta -dir /tmp/b5 -paths 3 -hold
//
// With -snapshot-dir the compiled timing state is cached content-addressed
// (internal/snap): the first run cold-builds and writes a snapshot keyed by
// the input file contents; later runs over unchanged inputs warm-start from
// it in milliseconds, skipping the parser and the reference engine (and with
// them the correlation and path-report sections, which need the reference).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"insta/internal/batch"
	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/obs"
	"insta/internal/sched"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	gen := flag.String("gen", "", "generate a preset (block-*/IWLS/superblue name) into -dir and exit")
	dir := flag.String("dir", ".", "directory holding design.lib, design.v, design.sdc, design.spef")
	tech := flag.String("tech", "", "fallback library when design.lib is absent: n3 or asap7")
	topK := flag.Int("topk", 32, "INSTA Top-K")
	paths := flag.Int("paths", 3, "worst paths to report")
	hold := flag.Bool("hold", false, "also run hold analysis")
	profile := flag.Bool("profile", false, "print per-kernel scheduler telemetry")
	sf := cmdutil.SchedFlags()
	cf := cmdutil.CornersFlag()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()
	tr := ob.Setup("insta-sta")
	man := &obs.Manifest{TopK: *topK, Workers: sf.Workers, Grain: sf.Grain}
	defer ob.Finish(func(m *obs.Manifest) {
		man.Tool, man.StartedAt, man.WallMS, man.Phases = m.Tool, m.StartedAt, m.WallMS, m.Phases
		*m = *man
	})

	if *gen != "" {
		spec, err := cmdutil.SpecByName(*gen)
		if err != nil {
			fatalf("%v", err)
		}
		b, err := cmdutil.GenerateDir(*dir, spec)
		if err != nil {
			fatalf("generate: %v", err)
		}
		fmt.Printf("wrote design.lib, design.v, design.sdc, design.spef under %s (%d cells, %d pins; tech %s)\n",
			*dir, b.D.NumCells(), b.D.NumPins(), spec.Tech.Name)
		return
	}

	// Boot: warm from a -snapshot-dir cache hit (no parsing, no reference
	// engine), cold otherwise (parse, signoff, extract, compile, write-back).
	bt, err := sn.BootDir(*dir, *tech, tr)
	if err != nil {
		fatalf("load %s: %v", *dir, err)
	}
	man.Design = bt.Design
	bt.FillManifest(man)
	ref := bt.Ref // nil on warm boots
	if ref != nil {
		if *hold {
			ref.EnableHoldAnalysis()
		}
		fmt.Printf("%s: %d cells, %d pins, %d arcs, %d endpoints\n",
			bt.Design, bt.B.D.NumCells(), bt.B.D.NumPins(), ref.NumArcs(), len(ref.Endpoints()))
		fmt.Printf("reference: WNS %.2f ps, TNS %.2f ps, %d violations\n",
			ref.WNS(), ref.TNS(), ref.NumViolations())
	}

	// INSTA.
	opt := sf.Options()
	opt.TopK, opt.Hold = *topK, *hold
	opt.Tracer = tr
	e, err := core.NewEngineFromState(bt.State, opt)
	if err != nil {
		fatalf("insta: %v", err)
	}
	defer e.Close()
	if *profile {
		e.EnableKernelStats()
	}
	slacks := e.Run()
	man.Pins, man.Arcs, man.Endpoints, man.Levels = e.NumPins(), e.NumArcs(), len(e.Endpoints()), e.NumLevels()
	man.WNSAfter, man.TNSAfter = e.WNS(), e.TNS()
	if bt.Warm {
		fmt.Printf("%s: warm start from snapshot %.12s in %s (%d pins, %d arcs, %d endpoints)\n",
			bt.Design, bt.Key, bt.Load.Round(time.Microsecond), e.NumPins(), e.NumArcs(), len(e.Endpoints()))
		fmt.Printf("INSTA(K=%d): WNS %.2f ps, TNS %.2f ps\n", *topK, e.WNS(), e.TNS())
	} else {
		r, ms, n, dis, err := exp.Correlate(ref.EndpointSlacks(), slacks)
		if err != nil {
			fatalf("correlate: %v", err)
		}
		man.AddExtra("corr", r)
		fmt.Printf("INSTA(K=%d): WNS %.2f ps, TNS %.2f ps | corr %.6f over %d eps (mismatch avg %.2e, wst %.2f ps, %d disagree)\n",
			*topK, e.WNS(), e.TNS(), r, n, ms.Avg, ms.Worst, dis)
	}
	if *hold {
		e.EvalHoldSlacks()
		if ref != nil {
			fmt.Printf("hold: reference WNS %.2f / TNS %.2f ps | INSTA WNS %.2f / TNS %.2f ps\n",
				ref.HoldWNS(), ref.HoldTNS(), e.HoldWNS(), e.HoldTNS())
		} else {
			fmt.Printf("hold: INSTA WNS %.2f / TNS %.2f ps\n", e.HoldWNS(), e.HoldTNS())
		}
	}

	if cf.Enabled() {
		scns, err := cf.Scenarios()
		if err != nil {
			fatalf("corners: %v", err)
		}
		for _, s := range scns {
			man.Scenarios = append(man.Scenarios, s.Name)
		}
		reportCorners(bt.State, scns, opt, *hold)
	}

	if *profile {
		e.Backward() // include the backward kernel in the profile
		fmt.Printf("\nkernel profile (workers=%d grain=%d levels=%d):\n",
			sf.Workers, e.Pool().Grain(), e.NumLevels())
		sched.WriteTable(os.Stdout, e.KernelStats(), 3)
	}

	// The slack histogram and path report come from the reference engine, so
	// warm starts skip them (a warm boot has no reference engine by design).
	if ref != nil {
		psp := tr.Start("report")
		fmt.Println()
		ref.SlackHistogram(os.Stdout, 16)
		fmt.Println()
		ref.ReportTiming(os.Stdout, *paths)
		psp.End()
	}
}

// reportCorners runs the scenario-batched engine over the compiled state —
// one traversal for every corner, warm or cold — and prints per-corner and
// merged metrics plus the worst-corner-per-endpoint breakdown.
func reportCorners(st *core.State, scns []batch.Scenario, opt core.Options, hold bool) {
	opt.Hold = hold
	be, err := batch.NewFromState(st, scns, opt)
	if err != nil {
		fatalf("corners: %v", err)
	}
	defer be.Close()
	be.Run()

	v := be.Merged()
	fmt.Printf("\nmulti-corner (%d scenarios, one batched traversal, %.1f MB):\n",
		be.NumScenarios(), float64(be.MemoryBytes())/1e6)
	for s, m := range v.PerScenario {
		line := fmt.Sprintf("  %-8s delay x%.2f sigma x%.2f rc x%.2f | WNS %8.2f ps, TNS %10.2f ps, %d violations",
			m.Name, scns[s].DelayScale, scns[s].SigmaScale, scns[s].RCScale, m.WNS, m.TNS, m.Violations)
		if hold {
			line += fmt.Sprintf(" | hold WNS %.2f TNS %.2f", be.HoldWNS(s), be.HoldTNS(s))
		}
		fmt.Println(line)
	}
	fmt.Printf("  %-8s %-33s | WNS %8.2f ps, TNS %10.2f ps, %d violations\n",
		"merged", "worst corner per endpoint", v.WNS, v.TNS, v.Violations)

	// Which corner dominates: endpoints per worst corner, worst first.
	counts := map[string]int{}
	for i := range v.WorstOf {
		if n := v.WorstName(scns, i); n != "" {
			counts[n]++
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return counts[names[i]] > counts[names[j]] })
	fmt.Printf("  dominant corners:")
	for _, n := range names {
		fmt.Printf(" %s=%d eps", n, counts[n])
	}
	fmt.Println()
}
