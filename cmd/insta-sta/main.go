// Command insta-sta is a standalone timing shell over the repository's file
// formats: it reads a structural Verilog netlist, an SDC constraint file and
// SPEF-style parasitics, runs the reference signoff engine and INSTA, and
// reports correlation plus the worst timing paths.
//
// With -gen it first materializes one of the built-in design presets to the
// three files, so a complete session is:
//
//	insta-sta -gen block-5 -dir /tmp/b5
//	insta-sta -dir /tmp/b5 -paths 3 -hold
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/liberty"
	"insta/internal/libertyio"
	"insta/internal/refsta"
	"insta/internal/sched"
	"insta/internal/sdcio"
	"insta/internal/spef"
	"insta/internal/vlog"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	gen := flag.String("gen", "", "generate a preset (block-*/IWLS/superblue name) into -dir and exit")
	dir := flag.String("dir", ".", "directory holding design.lib, design.v, design.sdc, design.spef")
	tech := flag.String("tech", "", "fallback library when design.lib is absent: n3 or asap7")
	topK := flag.Int("topk", 32, "INSTA Top-K")
	paths := flag.Int("paths", 3, "worst paths to report")
	hold := flag.Bool("hold", false, "also run hold analysis")
	workers := flag.Int("workers", runtime.NumCPU(), "scheduler pool participants")
	grain := flag.Int("grain", 0, "scheduler chunk size in pins (0 = default)")
	profile := flag.Bool("profile", false, "print per-kernel scheduler telemetry")
	flag.Parse()

	vPath := filepath.Join(*dir, "design.v")
	sdcPath := filepath.Join(*dir, "design.sdc")
	spefPath := filepath.Join(*dir, "design.spef")
	libPath := filepath.Join(*dir, "design.lib")

	if *gen != "" {
		spec, err := bench.BlockSpec(*gen)
		if err != nil {
			if spec, err = bench.IWLSSpec(*gen); err != nil {
				if spec, err = bench.SuperblueSpec(*gen); err != nil {
					fatalf("unknown preset %q", *gen)
				}
			}
		}
		b, err := bench.Generate(spec)
		if err != nil {
			fatalf("generate: %v", err)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatalf("%v", err)
		}
		writeFile(libPath, func(f *os.File) error { return libertyio.Write(f, b.Lib) })
		writeFile(vPath, func(f *os.File) error { return vlog.Write(f, b.D, b.Lib) })
		writeFile(sdcPath, func(f *os.File) error { return sdcio.Write(f, b.Con, b.D) })
		writeFile(spefPath, func(f *os.File) error { return spef.Write(f, b.Par, b.D) })
		fmt.Printf("wrote %s, %s, %s, %s (%d cells, %d pins; tech %s)\n",
			libPath, vPath, sdcPath, spefPath, b.D.NumCells(), b.D.NumPins(), spec.Tech.Name)
		return
	}

	// Library: prefer design.lib, fall back to a synthetic tech.
	var lib *liberty.Library
	if fl, err := os.Open(libPath); err == nil {
		lib, err = libertyio.Read(fl)
		fl.Close()
		if err != nil {
			fatalf("read %s: %v", libPath, err)
		}
	} else {
		switch *tech {
		case "asap7":
			lib = liberty.NewSynthetic(liberty.TechASAP7())
		case "n3", "":
			lib = liberty.NewSynthetic(liberty.TechN3())
		default:
			fatalf("unknown -tech %q", *tech)
		}
	}

	// Load the three files.
	fv, err := os.Open(vPath)
	if err != nil {
		fatalf("%v", err)
	}
	d, err := vlog.Read(fv, lib)
	fv.Close()
	if err != nil {
		fatalf("read %s: %v", vPath, err)
	}
	fs, err := os.Open(sdcPath)
	if err != nil {
		fatalf("%v", err)
	}
	con, err := sdcio.Read(fs, d)
	fs.Close()
	if err != nil {
		fatalf("read %s: %v", sdcPath, err)
	}
	fp, err := os.Open(spefPath)
	if err != nil {
		fatalf("%v", err)
	}
	par, err := spef.Read(fp, d)
	fp.Close()
	if err != nil {
		fatalf("read %s: %v", spefPath, err)
	}

	// Reference signoff.
	ref, err := refsta.New(d, lib, con, par, refsta.DefaultConfig())
	if err != nil {
		fatalf("refsta: %v", err)
	}
	if *hold {
		ref.EnableHoldAnalysis()
	}
	fmt.Printf("%s: %d cells, %d pins, %d arcs, %d endpoints\n",
		d.Name, d.NumCells(), d.NumPins(), ref.NumArcs(), len(ref.Endpoints()))
	fmt.Printf("reference: WNS %.2f ps, TNS %.2f ps, %d violations\n",
		ref.WNS(), ref.TNS(), ref.NumViolations())

	// INSTA.
	tab := circuitops.Extract(ref)
	e, err := core.NewEngine(tab, core.Options{
		TopK: *topK, Hold: *hold, Workers: *workers, Grain: *grain,
	})
	if err != nil {
		fatalf("insta: %v", err)
	}
	if *profile {
		e.EnableKernelStats()
	}
	slacks := e.Run()
	r, ms, n, dis, err := exp.Correlate(ref.EndpointSlacks(), slacks)
	if err != nil {
		fatalf("correlate: %v", err)
	}
	fmt.Printf("INSTA(K=%d): WNS %.2f ps, TNS %.2f ps | corr %.6f over %d eps (mismatch avg %.2e, wst %.2f ps, %d disagree)\n",
		*topK, e.WNS(), e.TNS(), r, n, ms.Avg, ms.Worst, dis)
	if *hold {
		e.EvalHoldSlacks()
		fmt.Printf("hold: reference WNS %.2f / TNS %.2f ps | INSTA WNS %.2f / TNS %.2f ps\n",
			ref.HoldWNS(), ref.HoldTNS(), e.HoldWNS(), e.HoldTNS())
	}

	if *profile {
		e.Backward() // include the backward kernel in the profile
		fmt.Printf("\nkernel profile (workers=%d grain=%d levels=%d):\n",
			*workers, e.Pool().Grain(), e.NumLevels())
		sched.WriteTable(os.Stdout, e.KernelStats(), 3)
	}

	fmt.Println()
	ref.SlackHistogram(os.Stdout, 16)
	fmt.Println()
	ref.ReportTiming(os.Stdout, *paths)
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatalf("write %s: %v", path, err)
	}
}
