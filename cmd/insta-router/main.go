// Command insta-router fronts a fleet of insta-served replicas with one
// HTTP endpoint (internal/fleet, DESIGN.md §13): consistent-hash routing of
// stateful ECO sessions to their home replica, health-checked membership,
// per-replica and fleet-wide in-flight admission control, hedged idempotent
// base reads, and rolling snapshot-swap deploys with zero dropped sessions.
// The routed surface is identical to a single daemon's, so clients only see
// a different session-ID shape ("<key>.<localID>").
//
//	insta-router -design block-2 -replicas 4                 # in-process fleet
//	insta-router -mode spawn -design block-2 -replicas 4 \
//	    -served-bin ./insta-served -snapshot-dir ~/.cache/insta
//	insta-router -mode attach -attach http://h1:8080,http://h2:8080
//
// Modes:
//
//   - inproc (default): boots the design once, then stands up -replicas
//     engines from the shared compiled state inside this process — each on
//     its own loopback listener with its own session manager. The cheapest
//     way to run a fleet on one machine: one cold build, warm replicas.
//   - spawn: execs -replicas insta-served children on consecutive ports.
//     With -snapshot-dir the first child cold-builds and writes the
//     snapshot; the rest (and every rolling-swap respawn) boot warm from it.
//   - attach: joins daemons already running elsewhere; the router adds
//     routing, health, admission and hedging but owns no lifecycle, so
//     POST /admin/swap answers 501.
//
// Endpoints are the daemon's plus POST /admin/swap (rolling snapshot-swap;
// inproc and spawn modes). GET /healthz aggregates per-replica state; GET
// /metrics exposes the fleet counters (per-replica requests, hedge
// fires/wins, retries, unready transitions, admission timeouts) and the SLO
// burn-rate gauges. Every routed request carries a W3C traceparent (minted
// here or joined from the caller) that the replicas' serve spans attach to:
// GET /debug/trace/{traceid} exports one request's stitched router+replica
// Chrome trace (full tree in inproc mode), GET /debug/flightrecorder dumps
// the always-on request ring with pinned anomalies, and GET /debug/fleet is
// the operator view — a live scrape of every replica with session/epoch skew
// and burn rates (-flight-size/-flight-pin/-slo-objective/-slo-budget tune
// these; -trace/-manifest/-log-level as in the other tools). SIGTERM
// drains: new work is refused with 503 + Retry-After, in-flight requests
// finish, then children (spawn) or managers (inproc) shut down — each
// persisting its committed base when a snapshot cache is configured.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/fleet"
	"insta/internal/obs"
	"insta/internal/server"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8090", "router listen address")
	mode := flag.String("mode", "inproc", "fleet backend: inproc, spawn or attach")
	replicas := flag.Int("replicas", 4, "replica count (inproc/spawn modes)")
	attach := flag.String("attach", "", "comma-separated replica base URLs (attach mode)")
	servedBin := flag.String("served-bin", "insta-served", "insta-served binary (spawn mode)")
	basePort := flag.Int("base-port", 18080, "first replica port, consecutive from here (spawn mode)")

	design := flag.String("design", "", "serve a built-in preset (block-*/IWLS/superblue name)")
	dir := flag.String("dir", "", "serve a design directory (design.lib/.v/.sdc/.spef)")
	tech := flag.String("tech", "", "fallback library when design.lib is absent: n3 or asap7")
	topK := flag.Int("topk", 32, "INSTA Top-K")
	maxSessions := flag.Int("max-sessions", 64, "per-replica admission cap on live sessions")
	ttl := flag.Duration("ttl", 5*time.Minute, "per-replica idle session lifetime")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")

	globalInflight := flag.Int("global-inflight", 0, "fleet-wide in-flight cap on session-scoped requests (0 = unlimited)")
	replicaInflight := flag.Int("replica-inflight", 0, "per-replica in-flight cap on session-scoped requests (0 = unlimited)")
	admissionWait := flag.Duration("admission-wait", 2*time.Second, "max admission queue wait before 503")
	noHedge := flag.Bool("no-hedge", false, "disable hedged base reads")
	healthEvery := flag.Duration("health-interval", 500*time.Millisecond, "replica health probe period")
	flightSize := flag.Int("flight-size", 4096, "request flight-recorder ring entries (negative disables)")
	flightPin := flag.Duration("flight-pin", 250*time.Millisecond, "latency at which a routed request pins as an anomaly")
	sloObjective := flag.Duration("slo-objective", 100*time.Millisecond, "routed-request latency SLO objective")
	sloBudget := flag.Float64("slo-budget", 0.01, "SLO error budget fraction")

	sf := cmdutil.SchedFlags() // -workers is per replica in inproc mode
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()
	tr := ob.Setup("insta-router")
	if tr == nil {
		// Always keep a live router tracer: request spans are cheap, and the
		// stitched /debug/trace/{trace} export needs them to reconstruct a
		// slow request after the fact.
		tr = obs.NewTracer()
	}

	fopt := fleet.Options{
		HealthInterval:     *healthEvery,
		PerReplicaInflight: *replicaInflight,
		GlobalInflight:     *globalInflight,
		AdmissionWait:      *admissionWait,
		DisableHedge:       *noHedge,
		Tracer:             tr,
		FlightRecorderSize: *flightSize,
		PinThreshold:       *flightPin,
		SLOObjective:       *sloObjective,
		SLOErrorBudget:     *sloBudget,
	}

	var (
		urls       []string
		cleanup    func(grace time.Duration)
		repTracers []*obs.Tracer
	)
	switch *mode {
	case "inproc":
		urls, repTracers, fopt.Swap, cleanup = bootInproc(sf, sn, *design, *dir, *tech, *topK, *maxSessions, *ttl, *replicas)
	case "spawn":
		urls, fopt.Swap, cleanup = bootSpawn(sf, sn, *servedBin, *design, *dir, *tech, *topK, *maxSessions, *basePort, *replicas)
	case "attach":
		for _, u := range strings.Split(*attach, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimSuffix(u, "/"))
			}
		}
		if len(urls) == 0 {
			fatalf("attach mode needs -attach url[,url...]")
		}
		cleanup = func(time.Duration) {}
	default:
		fatalf("unknown -mode %q (want inproc, spawn or attach)", *mode)
	}

	pool, err := fleet.New(urls, fopt)
	if err != nil {
		fatalf("fleet: %v", err)
	}
	// In inproc mode every replica's span stream lives in this process, so
	// GET /debug/trace/{trace} exports the full router+replica tree for one
	// request as a single stitched Chrome trace file.
	for i, rtr := range repTracers {
		pool.AddTraceStream(fmt.Sprintf("replica-%d", i), rtr)
	}
	pool.EnableDebug() // /debug/pprof/*
	defer ob.Finish(func(m *obs.Manifest) {
		m.Design = *design
		if m.Design == "" {
			m.Design = *dir
		}
		m.Workers = sf.Workers
		m.TopK = *topK
		m.Extra = map[string]any{"mode": *mode, "replicas": len(urls)}
	})
	ready := 0
	for _, r := range pool.Replicas() {
		if r.Ready() {
			ready++
		}
	}
	slog.Info("fleet up", "mode", *mode, "replicas", len(urls), "ready", ready, "addr", *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: pool.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		slog.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		slog.Info("draining", "budget", drain.String())
		pool.SetDraining(true)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		_ = httpSrv.Shutdown(sctx)
		cancel()
		pool.Close()
		cleanup(*drain)
		slog.Info("bye")
	}
}

// bootInproc builds the design once and stands up n replicas inside this
// process, each with its own engine over the shared compiled state and its
// own span tracer (returned for the router's stitched trace export). The
// returned swap function rebuilds one replica's engine from the latest
// committed snapshot (when a cache is configured) behind the same URL.
func bootInproc(sf *cmdutil.Sched, sn *cmdutil.Snap, design, dir, tech string, topK, maxSessions int, ttl time.Duration, n int) ([]string, []*obs.Tracer, func(context.Context, *fleet.Replica) error, func(time.Duration)) {
	if n <= 0 {
		fatalf("-replicas must be positive")
	}
	bt := boot(sn, design, dir, tech)
	name := bt.Design
	opt := sf.Options()
	opt.TopK = topK

	tracers := make([]*obs.Tracer, n)
	mkManager := func(st *core.State, tr *obs.Tracer) (*server.Manager, *core.Engine) {
		o := opt
		o.Tracer = tr
		e, err := core.NewEngineFromState(st, o)
		if err != nil {
			fatalf("insta: %v", err)
		}
		srvOpt := server.Options{MaxSessions: maxSessions, TTL: ttl, Design: name, Snapshots: bt.Cache}
		srvOpt.Boot = &server.BootInfo{Mode: bt.Mode(), SnapshotKey: bt.Key}
		return server.NewManager(e, bt.Ref, srvOpt), e
	}
	// Each replica serves with the daemon's full observability stack so a
	// routed request's serve spans join the router's trace (DESIGN.md §15).
	mkHandler := func(mgr *server.Manager, tr *obs.Tracer) http.Handler {
		srv := server.New(mgr, name)
		srv.EnableTracing(tr)
		srv.EnableFlightRecorder(obs.NewFlightRecorder(obs.FlightRecorderOptions{Tracer: tr}))
		srv.EnableSLO(obs.NewSLOTracker(obs.SLOOptions{}))
		return srv.Handler()
	}

	var mu sync.Mutex // guards managers/engines against swap vs sweeper races
	managers := make([]*server.Manager, n)
	engines := make([]*core.Engine, n)
	locals := make([]*fleet.LocalReplica, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		tracers[i] = obs.NewTracer()
		managers[i], engines[i] = mkManager(bt.State, tracers[i])
		lr, err := fleet.NewLocalReplica(mkHandler(managers[i], tracers[i]))
		if err != nil {
			fatalf("fleet: %v", err)
		}
		locals[i] = lr
		urls[i] = lr.URL()
	}

	// Eviction sweep across all replicas: abandoned sessions must age out or
	// they would wedge a rolling swap's drain forever (insta-served runs the
	// same sweep per daemon).
	sweepStop := make(chan struct{})
	go func() {
		tick := time.NewTicker(30 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-sweepStop:
				return
			case now := <-tick.C:
				mu.Lock()
				for i, mgr := range managers {
					if cnt := mgr.Sweep(now); cnt > 0 {
						slog.Info("evicted idle sessions", "replica", i, "count", cnt)
					}
				}
				mu.Unlock()
			}
		}
	}()
	slog.Info("inproc fleet ready", "design", name, "boot", bt.Mode(), "replicas", n,
		"pins", engines[0].NumPins(), "workers_per_replica", engines[0].Pool().Workers())

	swap := func(ctx context.Context, r *fleet.Replica) error {
		i := r.ID
		mu.Lock()
		defer mu.Unlock()
		old, oldEngine := managers[i], engines[i]
		st := bt.State
		if bt.Cache != nil && bt.Key != "" {
			// Persist the drained replica's committed base, then rebuild from
			// whatever the cache now holds — the fleet-wide latest commit.
			if _, _, _, err := old.SaveSnapshot(); err != nil {
				slog.Warn("swap: snapshot save failed", "replica", i, "err", err)
			}
			if snp, err := bt.Cache.Load(bt.Key); err == nil && snp != nil {
				st = snp.State
			}
		}
		// The replacement keeps the replica's tracer, so the router's stitched
		// export stays wired across swaps.
		mgr, e := mkManager(st, tracers[i])
		locals[i].SetHandler(mkHandler(mgr, tracers[i]))
		managers[i], engines[i] = mgr, e
		old.CloseAll()
		oldEngine.Close()
		return nil
	}

	cleanup := func(time.Duration) {
		close(sweepStop)
		mu.Lock()
		defer mu.Unlock()
		for i := range locals {
			_ = locals[i].Close()
			managers[i].CloseAll()
			engines[i].Close()
		}
	}
	return urls, tracers, swap, cleanup
}

// bootSpawn execs n insta-served children on consecutive loopback ports,
// passing the design and snapshot flags through. The swap function restarts
// one child in place (SIGTERM → its drain persists the committed base →
// respawn warm-boots from the shared snapshot cache).
func bootSpawn(sf *cmdutil.Sched, sn *cmdutil.Snap, bin, design, dir, tech string, topK, maxSessions, basePort, n int) ([]string, func(context.Context, *fleet.Replica) error, func(time.Duration)) {
	if n <= 0 {
		fatalf("-replicas must be positive")
	}
	if design == "" && dir == "" {
		fatalf("pass -design <preset> or -dir <design directory>")
	}
	args := []string{"-topk", fmt.Sprint(topK), "-max-sessions", fmt.Sprint(maxSessions), "-workers", fmt.Sprint(sf.Workers)}
	if design != "" {
		args = append(args, "-design", design)
	}
	if dir != "" {
		args = append(args, "-dir", dir)
	}
	if tech != "" {
		args = append(args, "-tech", tech)
	}
	if sn.Dir != "" {
		args = append(args, "-snapshot-dir", sn.Dir)
	}

	procs := make([]*fleet.Proc, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		pAddr := fmt.Sprintf("127.0.0.1:%d", basePort+i)
		full := append(append([]string{}, args...), "-addr", pAddr)
		// 10 min ready budget: the first child may cold-build; later ones
		// warm-boot in milliseconds from the shared cache.
		pr, err := fleet.SpawnProc(context.Background(), bin, full, pAddr, 10*time.Minute)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = procs[j].Stop(0)
			}
			fatalf("spawn replica %d: %v", i, err)
		}
		procs[i] = pr
		urls[i] = pr.URL()
		slog.Info("spawned replica", "replica", i, "addr", pAddr)
	}

	swap := func(ctx context.Context, r *fleet.Replica) error {
		return procs[r.ID].Restart(ctx, 30*time.Second, 10*time.Minute)
	}
	cleanup := func(grace time.Duration) {
		for _, pr := range procs {
			_ = pr.Stop(grace)
		}
	}
	return urls, swap, cleanup
}

func boot(sn *cmdutil.Snap, design, dir, tech string) *cmdutil.Boot {
	var (
		bt  *cmdutil.Boot
		err error
	)
	switch {
	case design != "" && dir != "":
		fatalf("pass -design or -dir, not both")
	case design != "":
		spec, sErr := cmdutil.SpecByName(design)
		if sErr != nil {
			fatalf("%v", sErr)
		}
		if bt, err = sn.BootPreset(spec, nil); err != nil {
			fatalf("generate: %v", err)
		}
		bt.Design = spec.Name
	case dir != "":
		if bt, err = sn.BootDir(dir, tech, nil); err != nil {
			fatalf("load %s: %v", dir, err)
		}
	default:
		fatalf("pass -design <preset> or -dir <design directory>")
	}
	return bt
}
