// Command insta-correlate regenerates the paper's correlation study:
// Table I (five blocks, TopK=32) and Figure 6 (TopK=1 vs TopK=128 on
// block-1), printing the same rows the paper reports.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/exp"
	"insta/internal/obs"
)

func main() {
	topK := flag.Int("topk", 32, "Top-K entries per pin for Table I")
	fig6 := flag.Bool("fig6", true, "also run the Figure 6 Top-K trade-off")
	fig6Block := flag.String("fig6-block", "block-1", "block used for Figure 6")
	fig6Ks := flag.String("fig6-ks", "1,128", "comma-separated Top-K values for Figure 6")
	scatterPath := flag.String("scatter", "", "optional CSV path for the Figure 6 scatter data")
	blocks := flag.String("blocks", strings.Join(bench.BlockNames(), ","), "comma-separated block presets")
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()

	opt := sf.Options()
	opt.TopK = *topK
	opt.Tracer = ob.Setup("insta-correlate")
	if c := sn.Cache(); c != nil {
		exp.UseSnapshots(c)
	}
	defer ob.Finish(func(m *obs.Manifest) {
		m.TopK, m.Workers, m.Grain = *topK, sf.Workers, sf.Grain
		m.AddExtra("blocks", *blocks)
	})
	names := strings.Split(*blocks, ",")
	if _, err := exp.TableI(os.Stdout, names, opt); err != nil {
		fmt.Fprintln(os.Stderr, "table I:", err)
		os.Exit(1)
	}
	if !*fig6 {
		return
	}
	var ks []int
	for _, f := range strings.Split(*fig6Ks, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -fig6-ks:", err)
			os.Exit(1)
		}
		ks = append(ks, v)
	}
	var scatter io.Writer
	if *scatterPath != "" {
		f, err := os.Create(*scatterPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scatter:", err)
			os.Exit(1)
		}
		defer f.Close()
		scatter = f
	}
	fmt.Println()
	if _, err := exp.Fig6(os.Stdout, *fig6Block, ks, opt, scatter); err != nil {
		fmt.Fprintln(os.Stderr, "figure 6:", err)
		os.Exit(1)
	}
}
