// Command insta-correlate regenerates the paper's correlation study:
// Table I (five blocks, TopK=32) and Figure 6 (TopK=1 vs TopK=128 on
// block-1), printing the same rows the paper reports.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"insta/internal/bench"
	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/hier"
	"insta/internal/obs"
)

func main() {
	topK := flag.Int("topk", 32, "Top-K entries per pin for Table I")
	fig6 := flag.Bool("fig6", true, "also run the Figure 6 Top-K trade-off")
	fig6Block := flag.String("fig6-block", "block-1", "block used for Figure 6")
	fig6Ks := flag.String("fig6-ks", "1,128", "comma-separated Top-K values for Figure 6")
	scatterPath := flag.String("scatter", "", "optional CSV path for the Figure 6 scatter data")
	blocks := flag.String("blocks", strings.Join(bench.BlockNames(), ","), "comma-separated block presets")
	hierChip := flag.String("hier", "",
		"also correlate hierarchical against flat analysis over this stitched chip preset (chip-2x, chip-4x, chip-16x)")
	sf := cmdutil.SchedFlags()
	sn := cmdutil.SnapFlags()
	ob := cmdutil.ObsFlags()
	flag.Parse()

	opt := sf.Options()
	opt.TopK = *topK
	tr := ob.Setup("insta-correlate")
	opt.Tracer = tr
	if c := sn.Cache(); c != nil {
		exp.UseSnapshots(c)
	}
	var hierRun *hier.ChipRun
	var hierCmp *hier.Compare
	defer ob.Finish(func(m *obs.Manifest) {
		m.TopK, m.Workers, m.Grain = *topK, sf.Workers, sf.Grain
		m.AddExtra("blocks", *blocks)
		if hierRun != nil {
			m.AddExtra("hier_chip", *hierChip)
			m.AddExtra("hier_cache_hits", hierRun.CacheHits)
			m.AddExtra("hier_cache_misses", hierRun.CacheMisses)
			m.AddExtra("hier_extract_ms", float64(hierRun.ExtractNs)/1e6)
		}
		if hierCmp != nil {
			m.AddExtra("hier_analyze_ms", float64(hierCmp.AnalyzeNs)/1e6)
			m.AddExtra("hier_flat_ms", float64(hierCmp.FlatNs)/1e6)
			m.AddExtra("hier_recover_ms", float64(hierCmp.RecoverNs)/1e6)
			for _, s := range hierCmp.Scen {
				m.AddExtra("hier_max_delta_"+s.Name, s.Deltas.Max)
			}
		}
	})
	names := strings.Split(*blocks, ",")
	if _, err := exp.TableI(os.Stdout, names, opt); err != nil {
		fmt.Fprintln(os.Stderr, "table I:", err)
		os.Exit(1)
	}
	if *hierChip != "" {
		spec, err := bench.ChipSpecByName(*hierChip)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hier:", err)
			os.Exit(1)
		}
		boot := func(name string) (*core.State, error) {
			bspec, err := bench.ChipBlockSpec(name)
			if err != nil {
				return nil, err
			}
			bt, err := sn.BootPreset(bspec, tr)
			if err != nil {
				return nil, err
			}
			return bt.State, nil
		}
		if hierRun, err = hier.BuildChip(spec, boot, nil, opt, sn.Cache()); err != nil {
			fmt.Fprintln(os.Stderr, "hier:", err)
			os.Exit(1)
		}
		if hierCmp, err = hierRun.CompareFlat(opt); err != nil {
			fmt.Fprintln(os.Stderr, "hier:", err)
			os.Exit(1)
		}
		fmt.Printf("\nHierarchical vs flat (%s: %d instances, flat %d pins, top %d pins)\n",
			spec.Name, len(spec.Blocks), hierCmp.FlatPins, hierCmp.TopPins)
		fmt.Printf("%-10s %10s %12s %12s %12s %12s %12s %9s %10s\n",
			"corner", "endpoints", "maxΔ", "meanΔ", "q50Δ", "q95Δ", "q99Δ", "disagree", "bound")
		for _, s := range hierCmp.Scen {
			d := s.Deltas
			fmt.Printf("%-10s %10d %12.4g %12.4g %12.4g %12.4g %12.4g %9d %10.4g\n",
				s.Name, d.N, d.Max, d.Mean, d.Q50, d.Q95, d.Q99, d.Disagree, s.Bound)
		}
		fmt.Printf("extract %.1f ms, hier analyze %.2f ms, flat %.1f ms (%.0fx), recovery %.1f ms\n",
			float64(hierRun.ExtractNs)/1e6, float64(hierCmp.AnalyzeNs)/1e6,
			float64(hierCmp.FlatNs)/1e6, float64(hierCmp.FlatNs)/float64(hierCmp.AnalyzeNs),
			float64(hierCmp.RecoverNs)/1e6)
	}
	if !*fig6 {
		return
	}
	var ks []int
	for _, f := range strings.Split(*fig6Ks, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -fig6-ks:", err)
			os.Exit(1)
		}
		ks = append(ks, v)
	}
	var scatter io.Writer
	if *scatterPath != "" {
		f, err := os.Create(*scatterPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scatter:", err)
			os.Exit(1)
		}
		defer f.Close()
		scatter = f
	}
	fmt.Println()
	if _, err := exp.Fig6(os.Stdout, *fig6Block, ks, opt, scatter); err != nil {
		fmt.Fprintln(os.Stderr, "figure 6:", err)
		os.Exit(1)
	}
}
