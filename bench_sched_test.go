// Scheduler bench regression harness: TestSchedBenchRegression times the
// forward propagate kernel under four scheduler configurations per preset and
// writes BENCH_sched.json at the repo root, so successive PRs can diff the
// pool against the seed's spawn-per-level strategy without re-deriving the
// numbers. It runs in -short mode by design — this is the smoke that proves
// the pool path is not a regression, with the actual ratios recorded in the
// JSON rather than asserted tightly (single-CPU CI machines make hard
// speedup gates flaky).
package insta

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
)

// schedBenchConfig is one scheduler setup to time.
type schedBenchConfig struct {
	key         string
	workers     int
	legacySpawn bool
}

// schedPresetResult is one preset's row in BENCH_sched.json.
type schedPresetResult struct {
	Name    string           `json:"name"`
	Pins    int              `json:"pins"`
	Levels  int              `json:"levels"`
	TopK    int              `json:"top_k"`
	NsPerOp map[string]int64 `json:"ns_per_op"`
}

type schedBenchReport struct {
	NumCPU     int                 `json:"numcpu"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Presets    []schedPresetResult `json:"presets"`
}

// medianPropagateNs runs a warmup pass then five timed samples of e.Run()
// and returns the median ns per run — a hand-rolled benchmark so the harness
// stays a regular test (runnable by ci.sh without -bench plumbing).
func medianPropagateNs(e *core.Engine) int64 {
	e.Run() // warmup: faults pages, fills queues once
	const samples = 5
	ns := make([]int64, samples)
	for i := range ns {
		start := time.Now()
		e.Run()
		ns[i] = time.Since(start).Nanoseconds()
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[samples/2]
}

func TestSchedBenchRegression(t *testing.T) {
	presets := []string{"block-1", "block-2"}
	configs := []schedBenchConfig{
		{"pool_w1", 1, false},
		{"pool_wN", runtime.NumCPU(), false},
		{"spawn_w4", 4, true},
		{"pool_w4", 4, false},
	}

	report := schedBenchReport{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, name := range presets {
		spec, err := bench.BlockSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := exp.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		row := schedPresetResult{
			Name: name, Pins: s.B.D.NumPins(), TopK: 32,
			NsPerOp: make(map[string]int64, len(configs)),
		}
		for _, cfg := range configs {
			e, err := core.NewEngine(s.Tab, core.Options{
				TopK: 32, Workers: cfg.workers, LegacySpawn: cfg.legacySpawn,
			})
			if err != nil {
				t.Fatal(err)
			}
			row.Levels = e.NumLevels()
			row.NsPerOp[cfg.key] = medianPropagateNs(e)
		}
		t.Logf("%s (%d pins, %d levels): pool_w1=%dns pool_wN=%dns spawn_w4=%dns pool_w4=%dns",
			name, row.Pins, row.Levels,
			row.NsPerOp["pool_w1"], row.NsPerOp["pool_wN"],
			row.NsPerOp["spawn_w4"], row.NsPerOp["pool_w4"])

		// Weak regression gate: at the same worker count, the persistent pool
		// must not be grossly slower than the per-level spawn path. The real
		// comparison lives in the JSON; the 1.5x slack absorbs scheduler noise
		// on small shared CI machines.
		if pool, spawn := row.NsPerOp["pool_w4"], row.NsPerOp["spawn_w4"]; pool > spawn+spawn/2 {
			t.Errorf("%s: pool at 4 workers (%dns) is >1.5x the spawn path (%dns)", name, pool, spawn)
		}
		report.Presets = append(report.Presets, row)
	}

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sched.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
