// Scheduler bench regression harness: TestSchedBenchRegression times the
// forward propagate kernel under four scheduler configurations per preset and
// writes BENCH_sched.json at the repo root, so successive PRs can diff the
// pool against the seed's spawn-per-level strategy without re-deriving the
// numbers. It runs in -short mode by design — this is the smoke that proves
// the pool path is not a regression, with the actual ratios recorded in the
// JSON rather than asserted tightly (single-CPU CI machines make hard
// speedup gates flaky).
package insta

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
)

// schedBenchConfig is one scheduler setup to time.
type schedBenchConfig struct {
	key         string
	workers     int
	legacySpawn bool
}

// schedPresetResult is one preset's row in BENCH_sched.json.
type schedPresetResult struct {
	Name    string           `json:"name"`
	Pins    int              `json:"pins"`
	Levels  int              `json:"levels"`
	TopK    int              `json:"top_k"`
	NsPerOp map[string]int64 `json:"ns_per_op"`
	// SpeedupW4OverW1 is pool_w1 time over pool_w4 time from an interleaved
	// best-of-reps comparison (see pairedMinNs), rounded to two decimals.
	// Raw ratios inside the paired test's noise floor (schedParityBand) read
	// as exactly 1.0 — on a one-CPU machine both configs collapse to the
	// same serial path by design, and a 1% heap-layout skew must not read
	// as a scaling regression. >= 1.0 means four workers are no slower than
	// one — the gate ci.sh enforces on block-1 under INSTA_SCHED_GATE=1.
	SpeedupW4OverW1 float64 `json:"speedup_w4_over_w1"`
	// SpeedupRaw is the unsnapped ratio, for offline trend diffing.
	SpeedupRaw float64 `json:"speedup_w4_over_w1_raw"`
}

// schedParityBand is the relative noise floor of the paired ratio: repeated
// runs of the identical serial path were observed to differ by up to ~1%
// from heap layout alone, so anything within 3% counts as parity.
const schedParityBand = 0.03

type schedBenchReport struct {
	NumCPU     int                 `json:"numcpu"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Presets    []schedPresetResult `json:"presets"`
}

// medianPropagateNs runs a warmup pass then five timed samples of e.Run()
// and returns the median ns per run — a hand-rolled benchmark so the harness
// stays a regular test (runnable by ci.sh without -bench plumbing).
func medianPropagateNs(e *core.Engine) int64 {
	e.Run() // warmup: faults pages, fills queues once
	const samples = 5
	ns := make([]int64, samples)
	for i := range ns {
		start := time.Now()
		e.Run()
		ns[i] = time.Since(start).Nanoseconds()
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[samples/2]
}

func TestSchedBenchRegression(t *testing.T) {
	presets := []string{"block-1", "block-2"}
	configs := []schedBenchConfig{
		{"pool_w1", 1, false},
		{"pool_wN", runtime.NumCPU(), false},
		{"spawn_w4", 4, true},
		{"pool_w4", 4, false},
	}

	report := schedBenchReport{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, name := range presets {
		spec, err := bench.BlockSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := exp.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		row := schedPresetResult{
			Name: name, Pins: s.B.D.NumPins(), TopK: 32,
			NsPerOp: make(map[string]int64, len(configs)),
		}
		for _, cfg := range configs {
			e, err := core.NewEngine(s.Tab, core.Options{
				TopK: 32, Workers: cfg.workers, LegacySpawn: cfg.legacySpawn,
			})
			if err != nil {
				t.Fatal(err)
			}
			row.Levels = e.NumLevels()
			row.NsPerOp[cfg.key] = medianPropagateNs(e)
			e.Close()
		}

		// The scaling ratio is measured paired on a fresh engine pair, not
		// from the medians above: interleaved best-of-reps exposes both
		// worker counts to the same background noise, and building the pair
		// after the median engines are closed keeps hundreds of megabytes of
		// dead queue tensors from skewing the heap layout of one side. The
		// two-decimal rounding keeps a dead-even machine (w1 and w4 collapse
		// to the same serial path on one CPU) from flapping around 1.0.
		w4, err := core.NewEngine(s.Tab, core.Options{TopK: 32, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		w1, err := core.NewEngine(s.Tab, core.Options{TopK: 32, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		w1.Run()
		w4.Run() // warmup both before the first timed pair
		min1, min4 := pairedMinNs(7, func() { w1.Run() }, func() { w4.Run() })
		raw := float64(min1) / float64(min4)
		row.SpeedupRaw = math.Round(raw*10000) / 10000
		if math.Abs(raw-1) <= schedParityBand {
			raw = 1.0
		}
		row.SpeedupW4OverW1 = math.Round(raw*100) / 100
		w1.Close()
		w4.Close()
		t.Logf("%s (%d pins, %d levels): pool_w1=%dns pool_wN=%dns spawn_w4=%dns pool_w4=%dns speedup_w4/w1=%.2f",
			name, row.Pins, row.Levels,
			row.NsPerOp["pool_w1"], row.NsPerOp["pool_wN"],
			row.NsPerOp["spawn_w4"], row.NsPerOp["pool_w4"],
			row.SpeedupW4OverW1)

		// Scaling gate: four workers must never lose to one. Hard (>= 1.0)
		// under INSTA_SCHED_GATE=1 — ci.sh sets it — and a loose noise guard
		// otherwise, so an ad-hoc run on a loaded machine doesn't fail the
		// suite.
		if name == "block-1" {
			limit := 0.50
			if os.Getenv("INSTA_SCHED_GATE") == "1" {
				limit = 1.0
			}
			if row.SpeedupW4OverW1 < limit {
				t.Errorf("%s: pool_w4 speedup over pool_w1 is %.2f < %.2f — multi-worker runs slower than single",
					name, row.SpeedupW4OverW1, limit)
			}
		}

		// Weak regression gate: at the same worker count, the persistent pool
		// must not be grossly slower than the per-level spawn path. The real
		// comparison lives in the JSON; the 1.5x slack absorbs scheduler noise
		// on small shared CI machines.
		if pool, spawn := row.NsPerOp["pool_w4"], row.NsPerOp["spawn_w4"]; pool > spawn+spawn/2 {
			t.Errorf("%s: pool at 4 workers (%dns) is >1.5x the spawn path (%dns)", name, pool, spawn)
		}
		report.Presets = append(report.Presets, row)
	}

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sched.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
