// Serving bench regression harness: TestServeBenchRegression drives the
// insta-served HTTP surface over one engine and times the same ECO request
// stream two ways — fanned out across concurrent copy-on-write sessions and
// serialized through a single session — writing BENCH_serve.json at the repo
// root (requests/sec plus p50/p99 latency per mode). Like BENCH_sched.json,
// the ratio is recorded rather than gated tightly: single-CPU CI machines make
// hard speedup assertions flaky. The hard gate is correctness-side: every
// request must return 200.
package insta

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/server"
)

// serveModeResult is one request-scheduling mode's row in BENCH_serve.json.
type serveModeResult struct {
	Requests  int     `json:"requests"`
	Sessions  int     `json:"sessions"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Us     int64   `json:"p50_us"`
	P99Us     int64   `json:"p99_us"`
}

type serveBenchReport struct {
	NumCPU     int             `json:"numcpu"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Preset     string          `json:"preset"`
	Parallel   serveModeResult `json:"session_parallel"`
	Serialized serveModeResult `json:"serialized"`
}

// serveECOBody builds the arc-form ECO JSON for one residue class: every
// class perturbs a disjoint arc set, so concurrent sessions never contend on
// annotations while their fan-out cones still overlap.
func serveECOBody(t *testing.T, e *core.Engine, class, stride int32) []byte {
	t.Helper()
	var req server.ECORequest
	for arc := class; arc < int32(e.NumArcs()) && len(req.Arcs) < 16; arc += stride {
		rise, fall := e.ArcDelay(arc, 0), e.ArcDelay(arc, 1)
		rise.Mean *= 1.02
		fall.Mean *= 1.02
		req.Arcs = append(req.Arcs, server.ArcECO{Arc: arc, Rise: rise, Fall: fall})
	}
	if len(req.Arcs) == 0 {
		t.Fatalf("residue class %d mod %d has no arcs", class, stride)
	}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// percentileUs picks the q-th latency (upper rank) in microseconds.
func percentileUs(lat []time.Duration, q float64) int64 {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	i := int(q * float64(len(lat)))
	if i >= len(lat) {
		i = len(lat) - 1
	}
	return lat[i].Microseconds()
}

func TestServeBenchRegression(t *testing.T) {
	const (
		preset     = "block-5"
		nSessions  = 8
		reqPerSess = 10
	)
	spec, err := bench.BlockSpec(preset)
	if err != nil {
		t.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(s.Tab, core.Options{TopK: 8, Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mgr := server.NewManager(e, s.Ref, server.Options{MaxSessions: nSessions + 1})
	srv := httptest.NewServer(server.New(mgr, preset).Handler())
	defer srv.Close()
	client := srv.Client()

	newSession := func() string {
		resp, err := client.Post(srv.URL+"/session", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated || out.ID == "" {
			t.Fatalf("session create: status %d id %q", resp.StatusCode, out.ID)
		}
		return out.ID
	}
	closeSession := func(id string) {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/session/"+id, nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	post := func(url string, body []byte) (int, time.Duration) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(t0)
		resp.Body.Close()
		return resp.StatusCode, d
	}

	// One request body per (session, request) slot; residue classes are
	// disjoint across all slots. Both modes replay the identical stream.
	const stride = nSessions * reqPerSess
	bodies := make([][]byte, stride)
	for i := range bodies {
		bodies[i] = serveECOBody(t, e, int32(i), stride)
	}

	// Session-parallel: each session's requests run sequentially in its own
	// goroutine; sessions overlap, sharing the frozen base under read locks.
	parallel := serveModeResult{Requests: stride, Sessions: nSessions}
	{
		ids := make([]string, nSessions)
		for g := range ids {
			ids[g] = newSession()
		}
		lat := make([]time.Duration, stride)
		var bad sync.Map
		var wg sync.WaitGroup
		t0 := time.Now()
		for g := 0; g < nSessions; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := 0; j < reqPerSess; j++ {
					slot := g*reqPerSess + j
					code, d := post(srv.URL+"/session/"+ids[g]+"/eco", bodies[slot])
					lat[slot] = d
					if code != http.StatusOK {
						bad.Store(slot, code)
					}
				}
			}(g)
		}
		wg.Wait()
		wall := time.Since(t0)
		bad.Range(func(k, v any) bool {
			t.Errorf("parallel request %v returned %v", k, v)
			return true
		})
		parallel.ReqPerSec = float64(stride) / wall.Seconds()
		parallel.P50Us = percentileUs(lat, 0.50)
		parallel.P99Us = percentileUs(lat, 0.99)
		for _, id := range ids {
			closeSession(id)
		}
	}

	// Serialized: the same stream through one session, one request at a time.
	serialized := serveModeResult{Requests: stride, Sessions: 1}
	{
		id := newSession()
		lat := make([]time.Duration, stride)
		t0 := time.Now()
		for slot := range bodies {
			code, d := post(srv.URL+"/session/"+id+"/eco", bodies[slot])
			lat[slot] = d
			if code != http.StatusOK {
				t.Errorf("serialized request %d returned %d", slot, code)
			}
		}
		wall := time.Since(t0)
		serialized.ReqPerSec = float64(stride) / wall.Seconds()
		serialized.P50Us = percentileUs(lat, 0.50)
		serialized.P99Us = percentileUs(lat, 0.99)
		closeSession(id)
	}

	t.Logf("%s: parallel %d sess %.0f req/s (p50 %dus p99 %dus) | serialized %.0f req/s (p50 %dus p99 %dus)",
		preset, nSessions, parallel.ReqPerSec, parallel.P50Us, parallel.P99Us,
		serialized.ReqPerSec, serialized.P50Us, serialized.P99Us)

	report := serveBenchReport{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Preset:     preset,
		Parallel:   parallel,
		Serialized: serialized,
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
