// Observability overhead harness: TestObsBenchRegression times the core
// engine's steady-state Run with no tracer, with a disabled tracer attached,
// and with an enabled tracer, and writes BENCH_obs.json at the repo root.
// The disabled-tracer case is the one every production caller pays — the
// spans compile down to a nil check per phase/level — so its overhead is
// gated at < 1% when INSTA_OBS_GATE=1 (ci.sh sets it); ad-hoc runs only get
// a loose noise guard so a loaded laptop doesn't fail the suite. The
// enabled-tracer ratio is recorded ungated as a diagnostic of what a capture
// window costs. The same report also covers the per-request observability hot
// path added in PR 9 — FlightRecorder.Record and SLOTracker.Record ns/op with
// unconditional zero-allocation gates, plus a deterministic burn-rate
// arithmetic fixture.
package insta

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/obs"
)

type obsBenchReport struct {
	NumCPU     int     `json:"numcpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Name       string  `json:"name"`
	Pins       int     `json:"pins"`
	TopK       int     `json:"top_k"`
	Samples    int     `json:"samples"`
	BaselineNs int64   `json:"run_baseline_ns"`
	DisabledNs int64   `json:"run_disabled_ns"`
	// DisabledOverheadPct can dip negative in the noise floor; the gate only
	// bounds it from above.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	EnabledNs           int64   `json:"run_enabled_ns"`
	EnabledOverheadPct  float64 `json:"enabled_overhead_pct"`
	SpansPerRun         int     `json:"spans_per_run"`
	// Per-request observability hot path (DESIGN.md §15): the flight recorder
	// and SLO tracker sit on every served request, so both Record calls must
	// stay allocation-free — the allocs fields are asserted to be exactly 0
	// (allocation counts are deterministic, so this holds gated or not).
	RecorderRecordNs     int64   `json:"recorder_record_ns"`
	RecorderRecordAllocs float64 `json:"recorder_record_allocs"`
	SLORecordNs          int64   `json:"slo_record_ns"`
	SLORecordAllocs      float64 `json:"slo_record_allocs"`
	// BurnFixture is a deterministic burn-rate arithmetic check: 900 good +
	// 50 slow + 50 failed requests against a 10% error budget must read back
	// as bad_fraction 0.1 and burn_rate 1.0 exactly.
	BurnFixture obs.BurnRate `json:"burn_fixture"`
}

func TestObsBenchRegression(t *testing.T) {
	const preset = "block-2"
	const topK = 8
	const samples = 9
	spec, err := bench.BlockSpec(preset)
	if err != nil {
		t.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	opt := core.Options{TopK: topK, Workers: 1}
	base, err := core.NewEngine(s.Tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	tr := obs.NewTracer()
	tr.Disable()
	optTr := opt
	optTr.Tracer = tr
	traced, err := core.NewEngine(s.Tab, optTr)
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()
	tr.Reset() // drop the (disabled, hence empty) build window

	base.Run()
	traced.Run() // warm both engines' queues before sampling

	rep := obsBenchReport{
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Workers: 1,
		Name: preset, Pins: s.B.D.NumPins(), TopK: topK, Samples: samples,
	}
	// Each sample times a burst of Runs: one Run is ~10ms on block-2, close
	// enough to the timer/GC noise floor that a 1% bound needs amortizing.
	// The whole interleaved-min measurement then repeats, and the gate takes
	// the best repetition: the disabled path adds a handful of nil checks per
	// run, so any repetition that escapes background load shows ~0%, while a
	// real regression (an allocation leaking into the hot path) inflates
	// every repetition and still trips the bound.
	const burst = 5
	const reps = 3
	for r := 0; r < reps; r++ {
		b, d := pairedMinNs(samples,
			func() {
				for i := 0; i < burst; i++ {
					base.Run()
				}
			},
			func() {
				for i := 0; i < burst; i++ {
					traced.Run()
				}
			})
		pct := 100 * (float64(d) - float64(b)) / float64(b)
		if r == 0 || pct < rep.DisabledOverheadPct {
			rep.BaselineNs, rep.DisabledNs = b/burst, d/burst
			rep.DisabledOverheadPct = pct
		}
	}

	tr.Enable()
	rep.EnabledNs = medianNs(3, func() {
		tr.Reset()
		for i := 0; i < burst; i++ {
			traced.Run()
		}
	}) / burst
	rep.SpansPerRun = tr.NumSpans() / burst
	tr.Disable()
	rep.EnabledOverheadPct = 100 * (float64(rep.EnabledNs) - float64(rep.BaselineNs)) / float64(rep.BaselineNs)

	// Flight-recorder + SLO hot path. A pin threshold of an hour keeps the
	// anomaly path (which snapshots span trees, and may allocate) out of the
	// steady-state measurement — the served path only pins on breach.
	fr := obs.NewFlightRecorder(obs.FlightRecorderOptions{Size: 4096, PinThreshold: time.Hour})
	slo := obs.NewSLOTracker(obs.SLOOptions{Objective: 100 * time.Millisecond, ErrorBudget: 0.01})
	now := time.Unix(1_700_000_000, 0) // fixed clock: bucket math without wall-time jitter
	reqRec := obs.ReqRecord{
		Trace: obs.NewTraceID(), Route: "eco", Shard: "s-1", Replica: 1,
		Status: 200, QueueNs: 1_000, ServeNs: 2_000_000, TotalNs: 2_001_000,
		Unix: now.UnixNano(),
	}
	rep.RecorderRecordAllocs = testing.AllocsPerRun(1024, func() { fr.Record(reqRec) })
	rep.SLORecordAllocs = testing.AllocsPerRun(1024, func() { slo.Record(2*time.Millisecond, false, now) })
	const hotN = 1 << 16
	rep.RecorderRecordNs = medianNs(3, func() {
		for i := 0; i < hotN; i++ {
			fr.Record(reqRec)
		}
	}) / hotN
	rep.SLORecordNs = medianNs(3, func() {
		for i := 0; i < hotN; i++ {
			slo.Record(2*time.Millisecond, false, now)
		}
	}) / hotN

	// Burn-rate arithmetic fixture: 1000 requests in one 5m window — 900
	// inside the objective, 50 over it, 50 failed outright — against a 10%
	// budget is exactly a 1.0x burn (spending the budget exactly as allowed).
	fix := obs.NewSLOTracker(obs.SLOOptions{Objective: 10 * time.Millisecond, ErrorBudget: 0.1})
	for i := 0; i < 900; i++ {
		fix.Record(time.Millisecond, false, now)
	}
	for i := 0; i < 50; i++ {
		fix.Record(50*time.Millisecond, false, now) // slow: breaches the objective
	}
	for i := 0; i < 50; i++ {
		fix.Record(time.Millisecond, true, now) // fast but failed
	}
	rep.BurnFixture = fix.Burn(5*time.Minute, now.Add(time.Second))

	t.Logf("%s: baseline %v, disabled-tracer %v (%+.2f%%), enabled %v (%+.2f%%, %d spans/run); recorder %dns/op (%.0f allocs), slo %dns/op (%.0f allocs), burn fixture %.3f",
		preset, time.Duration(rep.BaselineNs), time.Duration(rep.DisabledNs), rep.DisabledOverheadPct,
		time.Duration(rep.EnabledNs), rep.EnabledOverheadPct, rep.SpansPerRun,
		rep.RecorderRecordNs, rep.RecorderRecordAllocs, rep.SLORecordNs, rep.SLORecordAllocs, rep.BurnFixture.Burn)

	// Gate. The strict 1% bound is the ISSUE acceptance bar; it needs the
	// quiet interleaved-min conditions ci.sh provides, so casual runs get a
	// loose guard that still catches a hot-path span leaking allocation.
	limit := 25.0
	if os.Getenv("INSTA_OBS_GATE") == "1" {
		limit = 1.0
	}
	if rep.DisabledOverheadPct >= limit {
		t.Errorf("disabled-tracer overhead %.2f%% >= %.1f%% gate (baseline %v, disabled %v)",
			rep.DisabledOverheadPct, limit, time.Duration(rep.BaselineNs), time.Duration(rep.DisabledNs))
	}
	if rep.SpansPerRun == 0 {
		t.Error("enabled tracer recorded no spans — the engine hot paths lost their instrumentation")
	}
	// Zero-alloc and arithmetic gates are unconditional: neither depends on
	// machine load, so a failure here is a real regression, not CI noise.
	if rep.RecorderRecordAllocs != 0 {
		t.Errorf("FlightRecorder.Record allocates %.1f/op, want 0 — the per-request ring must stay allocation-free", rep.RecorderRecordAllocs)
	}
	if rep.SLORecordAllocs != 0 {
		t.Errorf("SLOTracker.Record allocates %.1f/op, want 0 — burn-rate bookkeeping must stay allocation-free", rep.SLORecordAllocs)
	}
	fx := rep.BurnFixture
	if fx.Total != 1000 || fx.Bad != 100 ||
		math.Abs(fx.BadFraction-0.1) > 1e-12 || math.Abs(fx.Burn-1.0) > 1e-12 {
		t.Errorf("burn fixture: got total=%d bad=%d bad_fraction=%g burn=%g, want 1000/100/0.1/1.0", fx.Total, fx.Bad, fx.BadFraction, fx.Burn)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
