// Observability overhead harness: TestObsBenchRegression times the core
// engine's steady-state Run with no tracer, with a disabled tracer attached,
// and with an enabled tracer, and writes BENCH_obs.json at the repo root.
// The disabled-tracer case is the one every production caller pays — the
// spans compile down to a nil check per phase/level — so its overhead is
// gated at < 1% when INSTA_OBS_GATE=1 (ci.sh sets it); ad-hoc runs only get
// a loose noise guard so a loaded laptop doesn't fail the suite. The
// enabled-tracer ratio is recorded ungated as a diagnostic of what a capture
// window costs.
package insta

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/obs"
)

type obsBenchReport struct {
	NumCPU     int     `json:"numcpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Name       string  `json:"name"`
	Pins       int     `json:"pins"`
	TopK       int     `json:"top_k"`
	Samples    int     `json:"samples"`
	BaselineNs int64   `json:"run_baseline_ns"`
	DisabledNs int64   `json:"run_disabled_ns"`
	// DisabledOverheadPct can dip negative in the noise floor; the gate only
	// bounds it from above.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	EnabledNs           int64   `json:"run_enabled_ns"`
	EnabledOverheadPct  float64 `json:"enabled_overhead_pct"`
	SpansPerRun         int     `json:"spans_per_run"`
}

func TestObsBenchRegression(t *testing.T) {
	const preset = "block-2"
	const topK = 8
	const samples = 9
	spec, err := bench.BlockSpec(preset)
	if err != nil {
		t.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	opt := core.Options{TopK: topK, Workers: 1}
	base, err := core.NewEngine(s.Tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	tr := obs.NewTracer()
	tr.Disable()
	optTr := opt
	optTr.Tracer = tr
	traced, err := core.NewEngine(s.Tab, optTr)
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()
	tr.Reset() // drop the (disabled, hence empty) build window

	base.Run()
	traced.Run() // warm both engines' queues before sampling

	rep := obsBenchReport{
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Workers: 1,
		Name: preset, Pins: s.B.D.NumPins(), TopK: topK, Samples: samples,
	}
	// Each sample times a burst of Runs: one Run is ~10ms on block-2, close
	// enough to the timer/GC noise floor that a 1% bound needs amortizing.
	// The whole interleaved-min measurement then repeats, and the gate takes
	// the best repetition: the disabled path adds a handful of nil checks per
	// run, so any repetition that escapes background load shows ~0%, while a
	// real regression (an allocation leaking into the hot path) inflates
	// every repetition and still trips the bound.
	const burst = 5
	const reps = 3
	for r := 0; r < reps; r++ {
		b, d := pairedMinNs(samples,
			func() {
				for i := 0; i < burst; i++ {
					base.Run()
				}
			},
			func() {
				for i := 0; i < burst; i++ {
					traced.Run()
				}
			})
		pct := 100 * (float64(d) - float64(b)) / float64(b)
		if r == 0 || pct < rep.DisabledOverheadPct {
			rep.BaselineNs, rep.DisabledNs = b/burst, d/burst
			rep.DisabledOverheadPct = pct
		}
	}

	tr.Enable()
	rep.EnabledNs = medianNs(3, func() {
		tr.Reset()
		for i := 0; i < burst; i++ {
			traced.Run()
		}
	}) / burst
	rep.SpansPerRun = tr.NumSpans() / burst
	tr.Disable()
	rep.EnabledOverheadPct = 100 * (float64(rep.EnabledNs) - float64(rep.BaselineNs)) / float64(rep.BaselineNs)

	t.Logf("%s: baseline %v, disabled-tracer %v (%+.2f%%), enabled %v (%+.2f%%, %d spans/run)",
		preset, time.Duration(rep.BaselineNs), time.Duration(rep.DisabledNs), rep.DisabledOverheadPct,
		time.Duration(rep.EnabledNs), rep.EnabledOverheadPct, rep.SpansPerRun)

	// Gate. The strict 1% bound is the ISSUE acceptance bar; it needs the
	// quiet interleaved-min conditions ci.sh provides, so casual runs get a
	// loose guard that still catches a hot-path span leaking allocation.
	limit := 25.0
	if os.Getenv("INSTA_OBS_GATE") == "1" {
		limit = 1.0
	}
	if rep.DisabledOverheadPct >= limit {
		t.Errorf("disabled-tracer overhead %.2f%% >= %.1f%% gate (baseline %v, disabled %v)",
			rep.DisabledOverheadPct, limit, time.Duration(rep.BaselineNs), time.Duration(rep.DisabledNs))
	}
	if rep.SpansPerRun == 0 {
		t.Error("enabled tracer recorded no spans — the engine hot paths lost their instrumentation")
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
