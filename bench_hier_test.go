// Hierarchical-analysis regression harness: TestHierBenchRegression runs the
// stitched chip presets through both paths — flattened (scale + compile +
// full propagation) and hierarchical (compose the block models' top graph +
// compile + propagate) — pins the hierarchical result inside the documented
// model-error bound of flat on every preset, and writes BENCH_hier.json at
// the repo root. Accuracy is checked unconditionally; the speedup gate — the
// tentpole claim that composed analysis beats flat by an order of magnitude
// at the largest preset — is armed by INSTA_HIER_GATE=1 (ci.sh), with only a
// loose noise guard otherwise so ad-hoc runs on loaded machines stay green.
package insta

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/hier"
)

type hierBenchRow struct {
	Preset    string  `json:"preset"`
	Scenarios int     `json:"scenarios"`
	Instances int     `json:"instances"`
	FlatPins  int     `json:"flat_pins"`
	TopPins   int     `json:"top_pins"`
	Endpoints int     `json:"endpoints"`
	ExtractNs int64   `json:"extract_ns"`
	HierNs    int64   `json:"hier_ns"`
	FlatNs    int64   `json:"flat_ns"`
	Speedup   float64 `json:"speedup"`
	MaxDelta  float64 `json:"max_delta"`
	Bound     float64 `json:"bound"`
}

type hierBenchReport struct {
	NumCPU     int            `json:"numcpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Rows       []hierBenchRow `json:"rows"`
}

func TestHierBenchRegression(t *testing.T) {
	gate := os.Getenv("INSTA_HIER_GATE") == "1"
	cases := []struct {
		preset  string
		scns    []batch.Scenario
		samples int
		gated   bool // the order-of-magnitude claim is pinned here
	}{
		{"chip-2x", batch.DefaultScenarios(), 5, false},
		{"chip-4x", nil, 5, false},
		{"chip-16x", nil, 3, true},
	}
	opt := core.Options{TopK: 16, Workers: 4}

	// Unique block presets compile once across all chip presets.
	states := map[string]*core.State{}
	boot := func(name string) (*core.State, error) {
		if st, ok := states[name]; ok {
			return st, nil
		}
		spec, err := bench.ChipBlockSpec(name)
		if err != nil {
			return nil, err
		}
		s, err := exp.Build(spec)
		if err != nil {
			return nil, err
		}
		states[name] = s.State
		return s.State, nil
	}

	report := hierBenchReport{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		spec, err := bench.ChipSpecByName(tc.preset)
		if err != nil {
			t.Fatal(err)
		}
		run, err := hier.BuildChip(spec, boot, tc.scns, opt, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Accuracy first, unconditionally: recovered per-endpoint slacks and
		// the fast WNS summary must land inside the model-error bound of the
		// flattened ground truth on every scenario.
		cmp, err := run.CompareFlat(opt)
		if err != nil {
			t.Fatal(err)
		}
		row := hierBenchRow{
			Preset:    tc.preset,
			Scenarios: len(cmp.Scen),
			Instances: len(spec.Blocks),
			FlatPins:  cmp.FlatPins,
			TopPins:   cmp.TopPins,
			ExtractNs: run.ExtractNs,
		}
		for _, s := range cmp.Scen {
			bound := s.Bound + 1e-6
			if s.Deltas.Max > bound {
				t.Errorf("%s/%s: recovered slack delta %.6g exceeds model bound %.6g",
					tc.preset, s.Name, s.Deltas.Max, bound)
			}
			if diff := math.Abs(s.RecWNS - s.FlatWNS); diff > bound {
				t.Errorf("%s/%s: recovered WNS %.6g vs flat %.6g exceeds bound %.6g",
					tc.preset, s.Name, s.RecWNS, s.FlatWNS, bound)
			}
			if diff := math.Abs(s.HierWNS - s.FlatWNS); diff > bound {
				t.Errorf("%s/%s: fast WNS %.6g vs flat %.6g exceeds bound %.6g",
					tc.preset, s.Name, s.HierWNS, s.FlatWNS, bound)
			}
			row.Endpoints += s.Deltas.N
			if s.Deltas.Max > row.MaxDelta {
				row.MaxDelta = s.Deltas.Max
			}
			if s.Bound > row.Bound {
				row.Bound = s.Bound
			}
		}

		// Timing: the composed path (compose + compile + propagate every
		// scenario over the top graph) against the flat path (scale + compile
		// + propagate every scenario over the full chip). Flattening itself
		// is untimed on both sides — the flat tables stand in for a loaded
		// netlist, and the models are extracted once ahead of the loop.
		flatTab, _, err := hier.ComposeFlat(spec.Name, run.States, spec.Wires)
		if err != nil {
			t.Fatal(err)
		}
		scns := hier.NormScenarios(tc.scns)
		row.HierNs, row.FlatNs = pairedMinNs(tc.samples,
			func() {
				a, err := hier.Analyze(run.Chip, opt)
				if err != nil {
					t.Fatal(err)
				}
				a.Close()
			},
			func() {
				for _, scn := range scns {
					st, err := core.Compile(batch.ScaleTables(flatTab, scn))
					if err != nil {
						t.Fatal(err)
					}
					e, err := core.NewEngineFromState(st, opt)
					if err != nil {
						t.Fatal(err)
					}
					e.Run()
					e.WNS()
					e.Close()
				}
			},
		)
		row.Speedup = float64(row.FlatNs) / float64(row.HierNs)
		t.Logf("%s: hier %.2fms vs flat %.1fms — %.0fx (flat %d pins, top %d; maxΔ %.3g, bound %.3g)",
			tc.preset, float64(row.HierNs)/1e6, float64(row.FlatNs)/1e6, row.Speedup,
			row.FlatPins, row.TopPins, row.MaxDelta, row.Bound)

		if tc.gated {
			limit := 2.0
			if gate {
				limit = 10.0
			}
			if row.Speedup < limit {
				t.Errorf("%s: composed analysis %.1fx flat, below the %.0fx floor",
					tc.preset, row.Speedup, limit)
			}
		}
		report.Rows = append(report.Rows, row)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_hier.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
