// Incremental evaluation example: use INSTA as the fast timing evaluator in
// a sizing loop (the paper's first application, Figs. 7-8). Each iteration
// commits a batch of gate resizes; INSTA re-annotates the affected arcs via
// estimate_eco and re-propagates the full graph, while the reference engine
// runs incremental update_timing as the accuracy anchor.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
)

func main() {
	spec, err := bench.BlockSpec("block-5")
	if err != nil {
		log.Fatal(err)
	}
	pt, err := exp.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	e, err := core.NewEngine(pt.Tab, core.Options{TopK: 32, Workers: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	e.Run()
	fmt.Printf("%s: %d pins; initial TNS %.1f ps (INSTA) vs %.1f ps (reference)\n",
		spec.Name, pt.B.D.NumPins(), e.TNS(), pt.Ref.TNS())

	for iter, batch := range bench.BatchedChangelist(pt.B, 9, 6, 60) {
		// estimate_eco for the whole batch against pre-commit state.
		t0 := time.Now()
		for _, rz := range batch {
			deltas, err := pt.Ref.EstimateECO(rz.Cell, rz.NewLib)
			if err != nil {
				log.Fatal(err)
			}
			for _, dl := range deltas {
				e.SetArcDelay(dl.ArcID, 0, dl.Delay[0])
				e.SetArcDelay(dl.ArcID, 1, dl.Delay[1])
			}
		}
		tAnnotate := time.Since(t0)

		// INSTA full-graph evaluation.
		t0 = time.Now()
		e.Run()
		tInsta := time.Since(t0)

		// Commit to the reference engine and compare.
		for _, rz := range batch {
			if _, err := pt.Ref.ResizeCell(rz.Cell, rz.NewLib); err != nil {
				log.Fatal(err)
			}
		}
		t0 = time.Now()
		pt.Ref.UpdateTimingIncremental()
		tRef := time.Since(t0)

		r, ms, _, _, err := exp.Correlate(pt.Ref.EndpointSlacks(), e.Slacks())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iter %d: INSTA %7v (annotate %6v) vs reference incremental %8v | corr %.6f worst drift %.2f ps\n",
			iter, tInsta.Round(time.Microsecond), tAnnotate.Round(time.Microsecond),
			tRef.Round(time.Microsecond), r, ms.Worst)
	}
	fmt.Println("\ndrift stays bounded; a full re-extraction (exp.SyncDelays) resets it to zero at any point")
}
