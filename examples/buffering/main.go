// Buffering example: INSTA-Buffer, a prototype of the paper's stated future
// work (§V). Timing gradients from INSTA's backward kernel rank the
// interconnect arcs hurting TNS the most; long critical branches get a
// buffer at the wire midpoint, and the reference engine verifies each round
// at signoff.
package main

import (
	"fmt"
	"log"
	"time"

	"insta/internal/bench"
	"insta/internal/buffering"
	"insta/internal/liberty"
	"insta/internal/rc"
)

func main() {
	// A wire-dominated design: heavy RC and a spread-out random placement,
	// so long unbuffered branches carry most of the violation.
	wire := rc.DefaultParams()
	wire.RPerUnit, wire.CPerUnit = 0.15, 0.15
	b, err := bench.Generate(bench.Spec{
		Name: "buffering-demo", Seed: 11, Tech: liberty.TechN3(),
		Groups: 3, FFsPerGroup: 16, Layers: 5, Width: 16,
		CrossFrac: 0.12, NumPIs: 6, NumPOs: 6,
		Period: 1, Uncertainty: 10, Die: 260, Wire: &wire,
		VioFrac: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d cells, %d nets, die %.0f sites\n",
		b.D.NumCells(), len(b.D.Nets), 260.0)

	ref, res, err := buffering.Run(b.D, b.Lib, b.Con, b.Par, buffering.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: WNS %9.2f ps  TNS %12.2f ps\n", res.WNSBefore, res.TNSBefore)
	fmt.Printf("after:  WNS %9.2f ps  TNS %12.2f ps\n", res.WNSAfter, res.TNSAfter)
	fmt.Printf("inserted %d buffers over %d gradient rounds in %v\n",
		res.BuffersInserted, res.Rounds, res.Runtime.Round(time.Millisecond))
	fmt.Printf("final design: %d cells (%d added), signoff violations: %d\n",
		b.D.NumCells(), res.BuffersInserted, ref.NumViolations())
}
