// Timing-driven placement example: place the same design three ways — plain
// wirelength+density, slack-driven net weighting, and INSTA-Place's
// arc-gradient objective — and compare post-legalization HPWL and TNS
// (the paper's Table III contrast).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/place"
)

func main() {
	spec, err := bench.SuperblueSpec("superblue18")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchmark: superblue18 preset (smallest of the Table III suite)")

	for _, mode := range []place.Mode{place.ModePlain, place.ModeNetWeight, place.ModeInsta} {
		// Fresh identical design and random initial placement per flow.
		s, err := exp.Build(spec)
		if err != nil {
			log.Fatal(err)
		}
		var eng *core.Engine
		if mode == place.ModeInsta {
			eng, err = core.NewEngine(s.Tab, core.Options{TopK: 2, Tau: 60, Workers: runtime.NumCPU()})
			if err != nil {
				log.Fatal(err)
			}
		}
		p, err := place.New(s.Ref, eng, place.DefaultConfig(mode))
		if err != nil {
			log.Fatal(err)
		}
		before := p.HPWL()
		res := p.Run()
		fmt.Printf("%-12s HPWL %9.0f -> %9.0f | TNS %12.1f WNS %9.1f | %v\n",
			mode, before, res.HPWL, res.TNS, res.WNS, res.Runtime.Round(time.Millisecond))
		if mode == place.ModeInsta {
			bd := res.LastBreakdown
			fmt.Printf("  last timing-refresh iteration: timer %v, transfer %v, gradients %v, step %v\n",
				bd.Timer.Round(time.Microsecond), bd.Transfer.Round(time.Microsecond),
				bd.Weights.Round(time.Microsecond), bd.Step.Round(time.Microsecond))
		}
		if eng != nil {
			eng.Close()
		}
	}
}
