// Gate sizing example: run INSTA-Size (gradient-ranked sizing with
// estimate_eco, commit/rollback, and 3-hop blocking) against the
// slack-driven baseline on the same design, the paper's Table II contrast.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/refsta"
	"insta/internal/sizing"
)

func buildDesign() (*bench.Design, *refsta.Engine) {
	spec := bench.Spec{
		Name: "sizing-demo", Seed: 7, Tech: liberty.TechASAP7(),
		Groups: 3, FFsPerGroup: 20, Layers: 8, Width: 20,
		CrossFrac: 0.1, NumPIs: 8, NumPOs: 8,
		Period: 1000, Uncertainty: 12, Die: 150,
		VioFrac: 0.1, ExtraTight: 250,
	}
	b, err := bench.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	return b, ref
}

func main() {
	// Two identical copies of the design: one per sizing flow.
	_, refBase := buildDesign()
	b, refInsta := buildDesign()

	fmt.Printf("initial state: WNS=%.2f ps, TNS=%.2f ps, %d violations\n",
		refInsta.WNS(), refInsta.TNS(), refInsta.NumViolations())

	// Baseline: slack-driven worst-path upsizing, the reference tool's
	// default engine style.
	t0 := time.Now()
	resBase := sizing.BaselineSize(refBase, sizing.DefaultBaselineConfig())
	fmt.Printf("\nbaseline sizer:   WNS=%9.2f TNS=%12.2f vio=%4d cells sized=%4d (%v)\n",
		resBase.WNS, resBase.TNS, resBase.NumViolations, resBase.CellsSized,
		time.Since(t0).Round(time.Millisecond))

	// INSTA-Size: initialize INSTA once, then let timing gradients pinpoint
	// the stages worth touching.
	tab := circuitops.Extract(refInsta)
	e, err := core.NewEngine(tab, core.Options{TopK: 4, Tau: 0.01, Workers: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	t0 = time.Now()
	resInsta := sizing.InstaSize(refInsta, e, sizing.DefaultConfig())
	fmt.Printf("INSTA-Size:       WNS=%9.2f TNS=%12.2f vio=%4d cells sized=%4d (%v, backward kernel %v)\n",
		resInsta.WNS, resInsta.TNS, resInsta.NumViolations, resInsta.CellsSized,
		time.Since(t0).Round(time.Millisecond), resInsta.BackwardTime.Round(time.Microsecond))

	if resBase.CellsSized > 0 {
		fmt.Printf("\nINSTA-Size touched %.0f%% fewer cells than the baseline\n",
			100*(1-float64(resInsta.CellsSized)/float64(resBase.CellsSized)))
	}
	_ = b
}
