// Quickstart: build a small design, run the reference signoff engine,
// initialize INSTA from its extraction, and compare endpoint timing — the
// whole Fig. 1 pipeline in one file.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/liberty"
	"insta/internal/refsta"
)

func main() {
	// 1. A deterministic synthetic design: 3 clock groups, 6-deep datapath
	//    cones, a few timing exceptions — standing in for a real netlist.
	spec := bench.Spec{
		Name: "quickstart", Seed: 42, Tech: liberty.TechN3(),
		Groups: 3, FFsPerGroup: 16, Layers: 6, Width: 16,
		CrossFrac: 0.1, NumPIs: 8, NumPOs: 8,
		Period: 1000, Uncertainty: 10,
		FalsePaths: 4, Multicycles: 2, Die: 120,
		VioFrac: 0.08, // calibrate the clock so ~8% of endpoints violate
	}
	b, err := bench.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %q: %d cells, %d pins, %d nets\n",
		b.D.Name, b.D.NumCells(), b.D.NumPins(), len(b.D.Nets))

	// 2. The reference signoff engine (the PrimeTime role): full delay
	//    calculation, statistical propagation, exact CPPR.
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference:  WNS=%8.2f ps  TNS=%10.2f ps  violations=%d/%d\n",
		ref.WNS(), ref.TNS(), ref.NumViolations(), len(ref.Endpoints()))

	// 3. One-time initialization: extract arc delay distributions, SP/EP
	//    attributes, the clock network table and exceptions...
	tab := circuitops.Extract(ref)
	fmt.Printf("extraction: %d arcs, %d startpoints, %d endpoints, %d clock nodes\n",
		len(tab.Arcs), len(tab.SPs), len(tab.EPs), len(tab.ClockNodes))

	// ...and build INSTA on the tables.
	e, err := core.NewEngine(tab, core.Options{TopK: 32, Workers: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	// 4. Full-graph Top-K statistical propagation + slack evaluation.
	t0 := time.Now()
	slacks := e.Run()
	fmt.Printf("INSTA:      WNS=%8.2f ps  TNS=%10.2f ps  (%d levels, %v)\n",
		e.WNS(), e.TNS(), e.NumLevels(), time.Since(t0).Round(time.Microsecond))

	// 5. Correlate against the reference, Table I style.
	r, ms, n, _, err := exp.Correlate(ref.EndpointSlacks(), slacks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation over %d endpoints: %.6f (mismatch avg %.2e ps, worst %.2f ps)\n",
		n, r, ms.Avg, ms.Worst)

	// 6. The differentiable part: backpropagate TNS and show the five most
	//    timing-critical stages by |timing gradient|.
	e.Backward()
	stages := e.StageGradients()
	fmt.Printf("\ntiming gradients flow through %d stages; most critical:\n", len(stages))
	worst := topStages(stages, 5)
	for _, st := range worst {
		fmt.Printf("  cell %-14s dTNS/d(stage delay) = %8.3f\n",
			b.D.Cells[st.Cell].Name, st.Grad)
	}
}

func topStages(stages []core.StageGradient, n int) []core.StageGradient {
	for i := 0; i < n && i < len(stages); i++ {
		min := i
		for j := i + 1; j < len(stages); j++ {
			if stages[j].Grad < stages[min].Grad {
				min = j
			}
		}
		stages[i], stages[min] = stages[min], stages[i]
	}
	if n > len(stages) {
		n = len(stages)
	}
	return stages[:n]
}
