// Fleet bench regression harness: TestFleetBenchRegression drives the same
// closed-loop workload (internal/fleet/loadgen) against one insta-served
// daemon and against a 4-replica fleet behind the router, then exercises the
// two fleet-specific latency mechanisms — hedged base reads against a
// deliberate straggler replica, and a rolling snapshot swap under live
// session churn — writing BENCH_fleet.json at the repo root.
//
// Why the fleet wins p99 on a few-core host: one daemon admits every session
// request immediately, so N concurrent ECO previews timeshare the CPU and
// *all* of them finish late (processor-sharing queueing — BENCH_serve.json's
// session_parallel p99 is ~5x its serialized p99 on one core). The fleet's
// global in-flight cap (GOMAXPROCS) queues the same requests at the router
// and runs them back to back, so most finish at serialized speed and only
// the queue tail is slow. Correctness is gated unconditionally (zero errors,
// zero dropped sessions through a rolling swap); the latency bounds —
// fleet p99 <= single-daemon p99 and hedged read p999 < unhedged — are armed
// by INSTA_FLEET_GATE=1 (ci.sh step 9), since wall-clock comparisons on a
// loaded CI box are otherwise flaky.
package insta

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/fleet"
	"insta/internal/fleet/loadgen"
	"insta/internal/refsta"
	"insta/internal/server"
)

// fleetPhase is one load phase's row in BENCH_fleet.json.
type fleetPhase struct {
	Replicas int `json:"replicas"`
	loadgen.Report
}

// hedgePhase compares base-read tails with the hedge off and on while one of
// two replicas straggles.
type hedgePhase struct {
	StragglerMS    float64 `json:"straggler_ms"`
	UnhedgedP99Us  int64   `json:"unhedged_p99_us"`
	UnhedgedP999Us int64   `json:"unhedged_p999_us"`
	HedgedP99Us    int64   `json:"hedged_p99_us"`
	HedgedP999Us   int64   `json:"hedged_p999_us"`
	HedgeFires     int64   `json:"hedge_fires"`
	HedgeWins      int64   `json:"hedge_wins"`
}

// swapPhase is the rolling-swap-under-load outcome; DroppedSessions is the
// unconditional zero gate.
type swapPhase struct {
	Replicas        int     `json:"replicas"`
	Swapped         int     `json:"swapped"`
	TotalMS         float64 `json:"total_ms"`
	Ops             int     `json:"ops"`
	Errors          int     `json:"errors"`
	DroppedSessions int     `json:"dropped_sessions"`
	SessionsCreated int     `json:"sessions_created"`
}

type fleetBenchReport struct {
	NumCPU     int        `json:"numcpu"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Preset     string     `json:"preset"`
	Gated      bool       `json:"gated"`
	Single     fleetPhase `json:"single_daemon"`
	Fleet      fleetPhase `json:"fleet_of_4"`
	Hedge      hedgePhase `json:"hedged_reads"`
	Swap       swapPhase  `json:"rolling_swap"`
}

// fleetBenchRig owns the compiled state plus every engine/manager/listener
// built on it, torn down in reverse order at the end of the test.
type fleetBenchRig struct {
	t       *testing.T
	st      *core.State
	ref     *refsta.Engine
	preset  string
	mu      sync.Mutex
	engines []*core.Engine
	mgrs    []*server.Manager
}

func (rig *fleetBenchRig) newBackend(workers, maxSessions int) http.Handler {
	rig.t.Helper()
	e, err := core.NewEngineFromState(rig.st, core.Options{TopK: 8, Workers: workers})
	if err != nil {
		rig.t.Fatal(err)
	}
	mgr := server.NewManager(e, rig.ref, server.Options{MaxSessions: maxSessions})
	rig.mu.Lock()
	rig.engines = append(rig.engines, e)
	rig.mgrs = append(rig.mgrs, mgr)
	rig.mu.Unlock()
	return server.New(mgr, rig.preset).Handler()
}

func (rig *fleetBenchRig) close() {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	for _, m := range rig.mgrs {
		m.CloseAll()
	}
	for _, e := range rig.engines {
		e.Close()
	}
	rig.mgrs, rig.engines = nil, nil
}

// fleetECOBody is serveECOBody with a caller-chosen arc budget, so the body
// set can span small-to-large previews over disjoint residue classes.
func fleetECOBody(t *testing.T, e *core.Engine, class, stride int32, maxArcs int) []byte {
	t.Helper()
	var req server.ECORequest
	for arc := class; arc < int32(e.NumArcs()) && len(req.Arcs) < maxArcs; arc += stride {
		rise, fall := e.ArcDelay(arc, 0), e.ArcDelay(arc, 1)
		rise.Mean *= 1.02
		fall.Mean *= 1.02
		req.Arcs = append(req.Arcs, server.ArcECO{Arc: arc, Rise: rise, Fall: fall})
	}
	if len(req.Arcs) != maxArcs {
		t.Fatalf("residue class %d mod %d yields %d arcs, want %d", class, stride, len(req.Arcs), maxArcs)
	}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// counterValue scrapes one plain (unlabeled) counter off the router's
// /metrics exposition.
func counterValue(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return int64(v)
		}
	}
	return 0
}

func TestFleetBenchRegression(t *testing.T) {
	const (
		preset      = "block-5"
		concurrency = 8
		totalOps    = 480
		nFleet      = 4
	)
	gated := os.Getenv("INSTA_FLEET_GATE") == "1"

	spec, err := bench.BlockSpec(preset)
	if err != nil {
		t.Fatal(err)
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Compile(s.Tab)
	if err != nil {
		t.Fatal(err)
	}
	rig := &fleetBenchRig{t: t, st: st, ref: s.Ref, preset: preset}
	defer rig.close()

	// ECO bodies over disjoint arc residue classes, replayed identically by
	// both load phases (arc delays come from an engine; any engine over st
	// sees the same arcs). Arc counts are deliberately heavy-tailed — mostly
	// small previews with an occasional large one — because service-time
	// variability is where the queueing disciplines separate: under
	// processor sharing a large ECO is stretched by the full
	// multiprogramming level for its whole (long) residence, while FIFO
	// charges it the mean queue plus itself. Near-deterministic sizes would
	// give both disciplines the same closed-loop p99 and the comparison
	// would measure only proxy overhead.
	bodyEngine, err := core.NewEngineFromState(st, core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	arcBudgets := []int{1, 2, 1, 4, 2, 8, 1, 2, 4, 1, 16, 2, 1, 4, 2, 512}
	bodies := make([][]byte, len(arcBudgets))
	for i := range bodies {
		bodies[i] = fleetECOBody(t, bodyEngine, int32(i), int32(len(arcBudgets)), arcBudgets[i])
	}
	bodyEngine.Close()

	workload := loadgen.Options{
		Concurrency: concurrency,
		Ops:         totalOps,
		SessionOps:  10,
		Mix:         loadgen.Mix{ECO: 8, SessionRead: 1, BaseRead: 1},
		Bodies:      bodies,
	}

	// Phase 1 — single daemon, all cores, no admission control: the
	// processor-sharing baseline.
	single := fleetPhase{Replicas: 1}
	{
		lr, err := fleet.NewLocalReplica(rig.newBackend(runtime.NumCPU(), 64))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := loadgen.Run(context.Background(), lr.URL(), workload)
		lr.Close()
		if err != nil {
			t.Fatal(err)
		}
		single.Report = *rep
	}

	// Phase 2 — the same workload through a 4-replica fleet with the global
	// in-flight cap at GOMAXPROCS: FIFO-like queueing at the router.
	fleet4 := fleetPhase{Replicas: nFleet}
	{
		var urls []string
		var lrs []*fleet.LocalReplica
		perReplica := runtime.NumCPU() / nFleet
		if perReplica < 1 {
			perReplica = 1
		}
		for i := 0; i < nFleet; i++ {
			lr, err := fleet.NewLocalReplica(rig.newBackend(perReplica, 32))
			if err != nil {
				t.Fatal(err)
			}
			lrs = append(lrs, lr)
			urls = append(urls, lr.URL())
		}
		// Hedging is off here: it trades duplicate read work for tail
		// latency, which only pays when there is spare capacity — this phase
		// deliberately saturates the host, and phase 3 measures hedging on
		// its own terms.
		pool, err := fleet.New(urls, fleet.Options{
			HealthInterval: 50 * time.Millisecond,
			GlobalInflight: runtime.GOMAXPROCS(0),
			AdmissionWait:  30 * time.Second,
			DisableHedge:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		router := httptest.NewServer(pool.Handler())
		rep, err := loadgen.Run(context.Background(), router.URL, workload)
		router.Close()
		pool.Close()
		for _, lr := range lrs {
			lr.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
		fleet4.Report = *rep
	}

	// Correctness is unconditional for both load phases.
	for _, ph := range []struct {
		name string
		p    fleetPhase
	}{{"single_daemon", single}, {"fleet_of_4", fleet4}} {
		if ph.p.Errors != 0 || ph.p.DroppedSessions != 0 {
			t.Errorf("%s: errors=%d dropped_sessions=%d, want 0/0",
				ph.name, ph.p.Errors, ph.p.DroppedSessions)
		}
	}
	if gated && fleet4.P99Us > single.P99Us {
		t.Errorf("fleet p99 %dus exceeds single-daemon p99 %dus under INSTA_FLEET_GATE",
			fleet4.P99Us, single.P99Us)
	}

	// The fleet phase runs behind the router, which stamps every response with
	// a Traceparent echo even with the span tracer off — so the report's
	// slowest-request list must carry well-formed trace IDs, the handles a
	// debugging session would feed to GET /debug/trace/{trace}.
	if len(fleet4.Slowest) == 0 {
		t.Error("fleet_of_4: loadgen captured no slowest-request traces behind the router")
	}
	for i, s := range fleet4.Slowest {
		if len(s.Trace) != 32 || s.Us <= 0 || s.Route == "" {
			t.Errorf("fleet_of_4 slowest[%d] malformed: %+v", i, s)
		}
		if i > 0 && s.Us > fleet4.Slowest[i-1].Us {
			t.Errorf("fleet_of_4 slowest not sorted descending at %d: %+v", i, fleet4.Slowest)
		}
	}

	// Phase 3 — hedged reads: two replicas, one straggling 10ms on every base
	// read. Unhedged, round-robin parks half the reads behind the straggler;
	// hedged, a second attempt fires after the p95-derived delay (clamped to
	// 2ms here) and the fast replica's response wins. One closed-loop reader:
	// hedging trades duplicate work for tail latency, so the win shows where
	// there is spare capacity for the duplicate — with several readers
	// saturating this one-core host, queueing noise would swamp the straggler
	// signal the phase exists to measure. The armed bound compares p99 (500
	// samples, so ~5 outliers tolerated) rather than p999: at 1-in-1000, the
	// quantile is the sample max, and one scheduler stall on a shared
	// one-core CI host is indistinguishable from a straggler there. p999 is
	// still recorded in the report for both runs.
	const stragglerDelay = 10 * time.Millisecond
	hedge := hedgePhase{StragglerMS: float64(stragglerDelay.Nanoseconds()) / 1e6}
	{
		straggle := func(h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/slacks" {
					time.Sleep(stragglerDelay)
				}
				h.ServeHTTP(w, r)
			})
		}
		var urls []string
		var lrs []*fleet.LocalReplica
		for i := 0; i < 2; i++ {
			h := rig.newBackend(1, 8)
			if i == 0 {
				h = straggle(h)
			}
			lr, err := fleet.NewLocalReplica(h)
			if err != nil {
				t.Fatal(err)
			}
			lrs = append(lrs, lr)
			urls = append(urls, lr.URL())
		}
		readLoad := loadgen.Options{
			Concurrency: 1,
			Ops:         500,
			Mix:         loadgen.Mix{BaseRead: 1},
		}
		runReads := func(opt fleet.Options) (*loadgen.Report, string, func()) {
			pool, err := fleet.New(urls, opt)
			if err != nil {
				t.Fatal(err)
			}
			router := httptest.NewServer(pool.Handler())
			rep, err := loadgen.Run(context.Background(), router.URL, readLoad)
			if err != nil {
				t.Fatal(err)
			}
			return rep, router.URL, func() { router.Close(); pool.Close() }
		}
		unhedged, _, closeA := runReads(fleet.Options{
			HealthInterval: 50 * time.Millisecond,
			DisableHedge:   true,
		})
		closeA()
		hedged, routerURL, closeB := runReads(fleet.Options{
			HealthInterval: 50 * time.Millisecond,
			HedgeMin:       time.Millisecond,
			HedgeMax:       2 * time.Millisecond,
		})
		hedge.UnhedgedP99Us = unhedged.ReadP99Us
		hedge.UnhedgedP999Us = unhedged.ReadP999Us
		hedge.HedgedP99Us = hedged.ReadP99Us
		hedge.HedgedP999Us = hedged.ReadP999Us
		hedge.HedgeFires = counterValue(t, routerURL, "fleet_hedge_fires_total")
		hedge.HedgeWins = counterValue(t, routerURL, "fleet_hedge_wins_total")
		closeB()
		for _, lr := range lrs {
			lr.Close()
		}
		if unhedged.Errors != 0 || hedged.Errors != 0 {
			t.Errorf("hedge phase errors: unhedged=%d hedged=%d", unhedged.Errors, hedged.Errors)
		}
		if hedge.HedgeFires == 0 {
			t.Error("hedge phase: no hedges fired against a 5ms straggler")
		}
		if gated && hedge.HedgedP99Us >= hedge.UnhedgedP99Us {
			t.Errorf("hedged read p99 %dus not below unhedged %dus under INSTA_FLEET_GATE",
				hedge.HedgedP99Us, hedge.UnhedgedP99Us)
		}
	}

	// Phase 4 — rolling swap under live session churn. The swap function
	// replaces a drained replica's backend with a fresh manager over the same
	// compiled state (the in-process analogue of a snapshot-cache reboot).
	// Zero dropped sessions is the point of the drain protocol and is gated
	// unconditionally.
	swap := swapPhase{Replicas: 2}
	{
		var lrs []*fleet.LocalReplica
		var urls []string
		for i := 0; i < 2; i++ {
			lr, err := fleet.NewLocalReplica(rig.newBackend(1, 16))
			if err != nil {
				t.Fatal(err)
			}
			lrs = append(lrs, lr)
			urls = append(urls, lr.URL())
		}
		pool, err := fleet.New(urls, fleet.Options{
			HealthInterval: 20 * time.Millisecond,
			DrainPoll:      5 * time.Millisecond,
			Swap: func(ctx context.Context, r *fleet.Replica) error {
				lrs[r.ID].SetHandler(rig.newBackend(1, 16))
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		router := httptest.NewServer(pool.Handler())

		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan *loadgen.Report, 1)
		go func() {
			rep, err := loadgen.Run(ctx, router.URL, loadgen.Options{
				Concurrency: 4,
				Ops:         1 << 20, // bounded by ctx, not the op budget
				SessionOps:  5,
				Mix:         loadgen.Mix{ECO: 4, SessionRead: 1, BaseRead: 1},
				Bodies:      bodies,
			})
			if err != nil {
				t.Error(err)
			}
			done <- rep
		}()
		time.Sleep(150 * time.Millisecond) // let sessions populate first
		sr, err := pool.RollingSwap(context.Background())
		cancel()
		rep := <-done
		router.Close()
		pool.Close()
		for _, lr := range lrs {
			lr.Close()
		}
		if err != nil {
			t.Fatalf("rolling swap: %v (report %+v)", err, sr)
		}
		swap.Swapped = sr.Swapped
		swap.TotalMS = sr.TotalMS
		if rep != nil {
			swap.Ops = rep.Ops
			swap.Errors = rep.Errors
			swap.DroppedSessions = rep.DroppedSessions
			swap.SessionsCreated = rep.SessionsCreated
		}
		if swap.Swapped != swap.Replicas {
			t.Errorf("rolling swap replaced %d of %d replicas", swap.Swapped, swap.Replicas)
		}
		if swap.DroppedSessions != 0 || swap.Errors != 0 {
			t.Errorf("rolling swap under load: errors=%d dropped_sessions=%d, want 0/0",
				swap.Errors, swap.DroppedSessions)
		}
		if swap.Ops == 0 {
			t.Error("rolling swap phase completed no ops — swap was not under load")
		}
	}

	t.Logf("%s: single p99 %dus | fleet-of-%d p99 %dus | reads p99 unhedged %dus hedged %dus (%d fires, %d wins) | swap %d/%d in %.1fms over %d ops",
		preset, single.P99Us, nFleet, fleet4.P99Us,
		hedge.UnhedgedP99Us, hedge.HedgedP99Us, hedge.HedgeFires, hedge.HedgeWins,
		swap.Swapped, swap.Replicas, swap.TotalMS, swap.Ops)

	report := fleetBenchReport{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Preset:     preset,
		Gated:      gated,
		Single:     single,
		Fleet:      fleet4,
		Hedge:      hedge,
		Swap:       swap,
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
