// Warm-start bench regression harness: TestSnapBenchRegression times booting
// the engine from a content-addressed snapshot (internal/snap) against the
// cold path it replaces — parse design.lib/.v/.sdc/.spef, run the reference
// signoff engine, extract the CircuitOps tables, compile — on the largest
// block preset, and writes BENCH_snap.json at the repo root. The snapshot
// decode is a CRC check plus one memcpy per slab, so the warm/cold ratio is
// structural, not a parallelism artifact, and snap.Open is GATED at >= 10x
// faster than the cold build (the PR 5 acceptance bar). The full warm engine
// boot (decode + engine restore) is recorded ungated as a diagnostic, and the
// harness asserts the warm engine reproduces the cold WNS/TNS bit-exactly.
package insta

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/cmdutil"
	"insta/internal/core"
	"insta/internal/refsta"
	"insta/internal/snap"
)

type snapBenchReport struct {
	NumCPU     int    `json:"numcpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Preset     string `json:"preset"`
	Pins       int    `json:"pins"`
	Arcs       int    `json:"arcs"`

	SnapshotBytes int64 `json:"snapshot_bytes"`

	// Cold: LoadDir + refsta + Extract + Compile. Warm: snap.Open. The gate
	// is on this pair; WarmEngineNs adds NewEngineFromState on top.
	ColdBuildNs  int64   `json:"cold_build_ns"`
	WarmOpenNs   int64   `json:"warm_open_ns"`
	Speedup      float64 `json:"speedup"`
	WarmEngineNs int64   `json:"warm_engine_ns"`
}

func TestSnapBenchRegression(t *testing.T) {
	const preset = "block-1"
	spec, err := bench.BlockSpec(preset)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := cmdutil.GenerateDir(dir, spec); err != nil {
		t.Fatal(err)
	}

	// Seed the cache exactly as the tools do: one cold boot with write-back.
	sn := &cmdutil.Snap{Dir: t.TempDir()}
	seed, err := sn.BootDir(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if seed.Warm {
		t.Fatal("first boot cannot be warm")
	}
	path := seed.Cache.Path(seed.Key)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("write-back missing: %v", err)
	}

	var (
		coldState *core.State
		warmSnap  *snap.Snapshot
	)
	coldBuild := func() {
		b, err := cmdutil.LoadDir(dir, "")
		if err != nil {
			t.Error(err)
			return
		}
		ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		if coldState, err = core.Compile(circuitops.Extract(ref)); err != nil {
			t.Error(err)
		}
	}
	warmOpen := func() {
		var err error
		if warmSnap, err = snap.Open(path); err != nil {
			t.Error(err)
		}
	}
	warmNs, coldNs := pairedMinNs(5, warmOpen, coldBuild)
	if t.Failed() {
		t.FailNow()
	}

	// Full warm engine boot, and the bit-identity check that makes the
	// speedup trustworthy: same slabs, same numbers.
	opt := core.Options{TopK: 8, Workers: runtime.NumCPU()}
	var warmEngineNs int64
	{
		we, ce := mustEngine(t, warmSnap.State, opt), mustEngine(t, coldState, opt)
		we.Run()
		ce.Run()
		if we.WNS() != ce.WNS() || we.TNS() != ce.TNS() {
			t.Fatalf("warm boot diverged: warm WNS/TNS %v/%v, cold %v/%v",
				we.WNS(), we.TNS(), ce.WNS(), ce.TNS())
		}
		we.Close()
		ce.Close()
		warmEngineNs, _ = pairedMinNs(3, func() {
			s, err := snap.Open(path)
			if err != nil {
				t.Error(err)
				return
			}
			e, err := core.NewEngineFromState(s.State, opt)
			if err != nil {
				t.Error(err)
				return
			}
			e.Close()
		}, func() {})
	}

	rep := snapBenchReport{
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Preset:        preset,
		Pins:          seed.State.NumPins,
		Arcs:          len(seed.State.ArcKind),
		SnapshotBytes: info.Size(),
		ColdBuildNs:   coldNs,
		WarmOpenNs:    warmNs,
		Speedup:       float64(coldNs) / float64(warmNs),
		WarmEngineNs:  warmEngineNs,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_snap.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: cold build %.1fms, warm open %.3fms (%.0fx), warm engine %.1fms, snapshot %.1f MB",
		preset, float64(coldNs)/1e6, float64(warmNs)/1e6, rep.Speedup,
		float64(warmEngineNs)/1e6, float64(info.Size())/1e6)

	// The acceptance gate: booting from a snapshot must beat re-deriving the
	// state from sources by an order of magnitude.
	if rep.Speedup < 10 {
		t.Fatalf("warm start regression: snap.Open only %.1fx faster than cold build (gate: 10x)", rep.Speedup)
	}
}

func mustEngine(t *testing.T, st *core.State, opt core.Options) *core.Engine {
	t.Helper()
	e, err := core.NewEngineFromState(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
