package spef

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"insta/internal/bench"
	"insta/internal/liberty"
)

func genDesign(t testing.TB) *bench.Design {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "speftest", Seed: 3, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 4, Layers: 3, Width: 5,
		CrossFrac: 0.1, NumPIs: 2, NumPOs: 2,
		Period: 800, Uncertainty: 10, Die: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	b := genDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, b.Par, b.D); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), b.D)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params != b.Par.Params {
		t.Errorf("params %+v != %+v", got.Params, b.Par.Params)
	}
	for i := range b.Par.Nets {
		if !reflect.DeepEqual(got.Nets[i].Branch, b.Par.Nets[i].Branch) {
			t.Fatalf("net %d branches differ", i)
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	b := genDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, b.Par, b.D); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"wrong design":  strings.Replace(good, "*DESIGN speftest", "*DESIGN other", 1),
		"unknown net":   strings.Replace(good, "*D_NET ", "*D_NET ghost_", 1),
		"orphan branch": "*SPEF insta v1\n*DESIGN speftest\n*PARAMS 1 1 1 1 1\n*BRANCH 0 1 1 1\n",
		"bad dialect":   strings.Replace(good, "insta v1", "ieee", 1),
		"truncated":     good[:len(good)/2],
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc), b.D); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadRejectsMissingNets(t *testing.T) {
	b := genDesign(t)
	doc := "*SPEF insta v1\n*DESIGN speftest\n*PARAMS 1 1 1 1 1\n*END\n"
	if _, err := Read(strings.NewReader(doc), b.D); err == nil {
		t.Error("file without nets accepted")
	}
}
