// Package spef reads and writes a SPEF-flavoured exchange format for the
// star-topology parasitics this reproduction uses: per net, one branch per
// sink with its routed length, resistance and capacitance, plus the wire
// technology constants. It plays the role of the extracted-parasitics file
// a signoff flow would read.
package spef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"insta/internal/netlist"
	"insta/internal/rc"
)

// Write emits parasitics for design d.
func Write(w io.Writer, par *rc.Parasitics, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "*SPEF insta v1\n")
	fmt.Fprintf(bw, "*DESIGN %s\n", d.Name)
	p := par.Params
	fmt.Fprintf(bw, "*PARAMS %.17g %.17g %.17g %.17g %.17g\n",
		p.RPerUnit, p.CPerUnit, p.MinLen, p.WireSigmaFrac, p.SlewDegrade)
	for ni := range d.Nets {
		net := &d.Nets[ni]
		// Nets are keyed by their driver pin's name, which is stable across
		// netlist round-trips (net names are not).
		fmt.Fprintf(bw, "*D_NET %s %d\n", d.Pins[net.Driver].Name, len(par.Nets[ni].Branch))
		for si, b := range par.Nets[ni].Branch {
			fmt.Fprintf(bw, "*BRANCH %d %.17g %.17g %.17g\n", si, b.Len, b.R, b.C)
		}
	}
	fmt.Fprintf(bw, "*END\n")
	return bw.Flush()
}

// Read parses parasitics written by Write back against design d (nets are
// matched by name and must cover the whole design).
func Read(r io.Reader, d *netlist.Design) (*rc.Parasitics, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	netByName := make(map[string]netlist.NetID, len(d.Nets))
	for i := range d.Nets {
		netByName[d.Pins[d.Nets[i].Driver].Name] = netlist.NetID(i)
	}

	par := &rc.Parasitics{Nets: make([]rc.Net, len(d.Nets))}
	seen := make([]bool, len(d.Nets))
	var cur netlist.NetID = -1
	expectBranches := 0
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "*END":
			continue
		case strings.HasPrefix(line, "*SPEF"):
			if !strings.Contains(line, "insta v1") {
				return nil, fmt.Errorf("spef: line %d: unsupported dialect %q", lineNo, line)
			}
		case strings.HasPrefix(line, "*DESIGN "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "*DESIGN "))
			if name != d.Name {
				return nil, fmt.Errorf("spef: design %q does not match netlist %q", name, d.Name)
			}
		case strings.HasPrefix(line, "*PARAMS "):
			f := strings.Fields(strings.TrimPrefix(line, "*PARAMS "))
			if len(f) != 5 {
				return nil, fmt.Errorf("spef: line %d: bad PARAMS", lineNo)
			}
			vals := make([]float64, 5)
			for i, s := range f {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
				}
				vals[i] = v
			}
			par.Params = rc.Params{
				RPerUnit: vals[0], CPerUnit: vals[1], MinLen: vals[2],
				WireSigmaFrac: vals[3], SlewDegrade: vals[4],
			}
		case strings.HasPrefix(line, "*D_NET "):
			f := strings.Fields(strings.TrimPrefix(line, "*D_NET "))
			if len(f) != 2 {
				return nil, fmt.Errorf("spef: line %d: bad D_NET", lineNo)
			}
			id, ok := netByName[f[0]]
			if !ok {
				return nil, fmt.Errorf("spef: line %d: unknown net %q", lineNo, f[0])
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("spef: line %d: bad branch count %q", lineNo, f[1])
			}
			if n != len(d.Nets[id].Sinks) {
				return nil, fmt.Errorf("spef: line %d: net of %q has %d branches for %d sinks",
					lineNo, f[0], n, len(d.Nets[id].Sinks))
			}
			cur = id
			seen[id] = true
			expectBranches = n
			if n > 0 {
				par.Nets[id].Branch = make([]rc.Branch, 0, n)
			}
		case strings.HasPrefix(line, "*BRANCH "):
			if cur < 0 || expectBranches == 0 {
				return nil, fmt.Errorf("spef: line %d: BRANCH outside D_NET", lineNo)
			}
			f := strings.Fields(strings.TrimPrefix(line, "*BRANCH "))
			if len(f) != 4 {
				return nil, fmt.Errorf("spef: line %d: bad BRANCH", lineNo)
			}
			var b rc.Branch
			var err error
			if b.Len, err = strconv.ParseFloat(f[1], 64); err != nil {
				return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
			}
			if b.R, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
			}
			if b.C, err = strconv.ParseFloat(f[3], 64); err != nil {
				return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
			}
			par.Nets[cur].Branch = append(par.Nets[cur].Branch, b)
			expectBranches--
		default:
			return nil, fmt.Errorf("spef: line %d: unrecognized %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("spef: net of %q missing from file", d.Pins[d.Nets[i].Driver].Name)
		}
	}
	if err := par.Validate(d); err != nil {
		return nil, err
	}
	return par, nil
}
