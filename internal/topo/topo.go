// Package topo implements topology-mutating ECO operations over the
// extraction tables: buffer insertion and removal splice pins and arcs into
// the timing graph, and annotation ops (the table-level form of repower and
// move) rewrite arc delays in place. It is the structural layer under the
// serving stack's /session/{id}/topo endpoint and the InstaBuffer client —
// today's overlay sessions can only re-annotate a frozen graph; this package
// edits the graph itself and, through Session, re-levelizes and re-propagates
// only the region downstream of the edit.
//
// Edits follow two global invariants that keep incremental recompilation
// exact and cheap:
//
//   - Pin ids are append-only. InsertBuffer appends the buffer's input and
//     output pins at the end of the pin space; RemoveBuffer leaves the
//     buffer's pins in place as floating level-0 nodes. No surviving pin is
//     ever renumbered, so a previous engine's per-pin tensors remain valid
//     arrival state for every pin outside the edit's fan-out cone
//     (core.NewEngineSeeded's contract).
//   - Arc ids are stable except under removal. Insert-only batches append
//     arcs and return a nil remap (identity); batches that remove arcs
//     compact the arc table and return an old→new remap with -1 for removed
//     ids, which sessions compose across edits so annotation ECOs addressed
//     in the original id space keep resolving.
//
// Application is batch-atomic: every op is validated against a claim-tracked
// snapshot before anything is written, and the edit is built on a clone of
// the tables — a failed batch leaves the input tables (and everything
// downstream: compiled state, engines, freelists) untouched.
package topo

import (
	"fmt"
	"math"
	"slices"

	"insta/internal/circuitops"
	"insta/internal/liberty"
	"insta/internal/num"
)

// OpKind discriminates structural ops.
type OpKind uint8

const (
	// OpInsertBuffer splices a buffer into a net arc u→v: the arc becomes
	// u→x (the driver-side wire), a new cell arc x→y (the buffer) and a new
	// net arc y→v (the sink-side wire), with pins x, y appended.
	OpInsertBuffer OpKind = iota
	// OpRemoveBuffer undoes the shape InsertBuffer creates: the buffer's
	// cell arc x→y plus its single input wire u→x are deleted, every output
	// wire y→v is rewritten to a direct u→v with the composed delay, and
	// pins x, y go floating.
	OpRemoveBuffer
	// OpAnnotate rewrites one arc's delay distributions in place — the
	// table-level form of repower (cell arcs re-characterized for a new
	// drive) and move (net arcs re-derived from new RC). No topology change.
	OpAnnotate
)

// String names the op kind for diagnostics and metrics.
func (k OpKind) String() string {
	switch k {
	case OpInsertBuffer:
		return "insert-buffer"
	case OpRemoveBuffer:
		return "remove-buffer"
	case OpAnnotate:
		return "annotate"
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Op is one structural edit. Arc ids address the tables as they are at the
// start of the batch; each op claims the arcs it touches and two ops may not
// claim the same arc (the batch would not be order-independent).
type Op struct {
	Kind OpKind

	// Arc is the target: the net arc to split (InsertBuffer), the buffer's
	// cell arc (RemoveBuffer), or the arc to re-annotate (Annotate).
	Arc int32

	// Cell is the liberty cell id recorded on the inserted buffer arc
	// (InsertBuffer only; -1 when untracked — gradients skip cell-less arcs).
	Cell int32

	// Delay is the new delay per output transition: the buffer cell arc's
	// delay (InsertBuffer) or the replacement annotation (Annotate).
	Delay [2]num.Dist

	// DriverFrac is the fraction of the split net arc's delay kept on the
	// driver side u→x (InsertBuffer only); 0 means the default 0.5.
	DriverFrac float64
}

// InsertBuffer builds an insert-buffer op: splice a buffer (liberty cell
// cell, gate delay d) into net arc arc, keeping frac of the wire delay on
// the driver side (0 = half).
func InsertBuffer(arc, cell int32, d [2]num.Dist, frac float64) Op {
	return Op{Kind: OpInsertBuffer, Arc: arc, Cell: cell, Delay: d, DriverFrac: frac}
}

// RemoveBuffer builds a remove-buffer op for the buffer whose cell arc is
// cellArc.
func RemoveBuffer(cellArc int32) Op {
	return Op{Kind: OpRemoveBuffer, Arc: cellArc}
}

// Annotate builds an annotation op: rewrite arc's delay to d. Repower and
// move reach the tables as batches of these (see refsta.EstimateECO,
// refsta.EstimateBuffer and refsta.EstimateMove for the delay derivations).
func Annotate(arc int32, d [2]num.Dist) Op {
	return Op{Kind: OpAnnotate, Arc: arc, Delay: d}
}

// Result is one applied batch: the edited tables (via Apply, a clone — the
// input is never mutated; sessions edit their private tables in place), the
// arc id remap, and the re-propagation seeds.
type Result struct {
	Tables *circuitops.Tables

	// Remap maps input arc ids to output arc ids, -1 for removed arcs. nil
	// means identity: the batch only appended and rewrote in place.
	Remap []int32

	// Seeds are the pins whose fan-in set changed (including appended pins),
	// sorted — exactly the seed set core.CompileIncremental and
	// core.NewEngineSeeded require.
	Seeds []int32

	// Changed lists every arc id (in the output id space) whose row differs
	// from the input tables — rewritten in place or appended — when Remap is
	// nil; it is the change set core.CompileIncrementalPatched patches. Nil
	// when the batch removed arcs (Remap != nil): compaction renumbers the
	// tail, so the patched fast path does not apply.
	Changed []int32

	// NewPins counts pins appended by the batch.
	NewPins int

	// Inserted, Removed, Annotated count applied ops by kind.
	Inserted, Removed, Annotated int
}

// Apply validates and applies a batch of structural ops to t, returning the
// edited clone. Validation is strict and happens entirely before the first
// write: any error leaves t untouched and returns no partial result.
func Apply(t *circuitops.Tables, ops []Op) (*Result, error) {
	return applyOps(t, ops, false)
}

// applyOps is Apply with an ownership flag: inPlace=true edits t directly —
// no arc-table clone — which Session uses once its working tables are
// private (every preview after the first). Safe because validation is
// complete before the first write, so the no-partial-edit guarantee holds
// either way; batches containing a removal still clone (the compaction +
// re-validate path reads pre-edit rows throughout).
func applyOps(t *circuitops.Tables, ops []Op, inPlace bool) (*Result, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("topo: empty op batch")
	}
	nArcs := len(t.Arcs)

	// Batch-start adjacency (CSR, not maps — this runs per preview on the
	// optimizer hot path) and endpoint-pin snapshot. Only buffer removal
	// validates against graph structure, so insert/annotate-only batches —
	// the overwhelming steady state — skip the O(design) build entirely.
	var fanin, fanout csr
	var timed []bool // pins that must not go floating
	for oi := range ops {
		if ops[oi].Kind != OpRemoveBuffer {
			continue
		}
		fanin = newCSR(t.NumPins, t.Arcs, func(a *circuitops.ArcRow) int32 { return a.To })
		fanout = newCSR(t.NumPins, t.Arcs, func(a *circuitops.ArcRow) int32 { return a.From })
		timed = make([]bool, t.NumPins)
		for _, s := range t.SPs {
			timed[s.Pin] = true
		}
		for _, ep := range t.EPs {
			timed[ep.Pin] = true
		}
		break
	}

	// Validate every op against the snapshot, claiming arcs as we go.
	claimed := make(map[int32]string)
	claim := func(arc int32, op string) error {
		if arc < 0 || int(arc) >= nArcs {
			return fmt.Errorf("topo: %s: arc %d out of range [0,%d)", op, arc, nArcs)
		}
		if prev, ok := claimed[arc]; ok {
			return fmt.Errorf("topo: %s: arc %d already claimed by %s", op, arc, prev)
		}
		claimed[arc] = op
		return nil
	}
	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case OpInsertBuffer:
			if err := claim(op.Arc, op.Kind.String()); err != nil {
				return nil, err
			}
			a := &t.Arcs[op.Arc]
			if a.Kind != 1 {
				return nil, fmt.Errorf("topo: insert-buffer: arc %d is not a net arc", op.Arc)
			}
			if liberty.Unate(a.Sense) != liberty.PositiveUnate {
				return nil, fmt.Errorf("topo: insert-buffer: net arc %d is not positive-unate", op.Arc)
			}
			if f := op.DriverFrac; f < 0 || f > 1 {
				return nil, fmt.Errorf("topo: insert-buffer: driver fraction %g outside [0,1]", f)
			}
			for rf := 0; rf < 2; rf++ {
				if op.Delay[rf].Std < 0 {
					return nil, fmt.Errorf("topo: insert-buffer: negative sigma on arc %d", op.Arc)
				}
			}
		case OpRemoveBuffer:
			if err := claim(op.Arc, op.Kind.String()); err != nil {
				return nil, err
			}
			ca := &t.Arcs[op.Arc]
			if ca.Kind != 0 {
				return nil, fmt.Errorf("topo: remove-buffer: arc %d is not a cell arc", op.Arc)
			}
			if liberty.Unate(ca.Sense) != liberty.PositiveUnate {
				return nil, fmt.Errorf("topo: remove-buffer: cell arc %d is not positive-unate (not a buffer)", op.Arc)
			}
			x, y := ca.From, ca.To
			if timed[x] || timed[y] {
				return nil, fmt.Errorf("topo: remove-buffer: buffer pins %d/%d are timing start/endpoints", x, y)
			}
			if len(fanout.at(x)) != 1 || len(fanin.at(y)) != 1 {
				return nil, fmt.Errorf("topo: remove-buffer: pins %d/%d have side fanout/fanin, not a buffer", x, y)
			}
			ins := fanin.at(x)
			if len(ins) != 1 {
				return nil, fmt.Errorf("topo: remove-buffer: buffer input pin %d has %d fan-in arcs, want 1", x, len(ins))
			}
			uin := &t.Arcs[ins[0]]
			if uin.Kind != 1 || liberty.Unate(uin.Sense) != liberty.PositiveUnate {
				return nil, fmt.Errorf("topo: remove-buffer: input arc %d of pin %d is not a net arc", ins[0], x)
			}
			outs := fanout.at(y)
			if len(outs) == 0 {
				return nil, fmt.Errorf("topo: remove-buffer: buffer output pin %d drives nothing", y)
			}
			for _, o := range outs {
				oa := &t.Arcs[o]
				if oa.Kind != 1 || liberty.Unate(oa.Sense) != liberty.PositiveUnate {
					return nil, fmt.Errorf("topo: remove-buffer: output arc %d of pin %d is not a net arc", o, y)
				}
			}
			if err := claim(ins[0], op.Kind.String()); err != nil {
				return nil, err
			}
			for _, o := range outs {
				if err := claim(o, op.Kind.String()); err != nil {
					return nil, err
				}
			}
		case OpAnnotate:
			if err := claim(op.Arc, op.Kind.String()); err != nil {
				return nil, err
			}
			for rf := 0; rf < 2; rf++ {
				if op.Delay[rf].Std < 0 {
					return nil, fmt.Errorf("topo: annotate: negative sigma on arc %d", op.Arc)
				}
			}
		default:
			return nil, fmt.Errorf("topo: unknown op kind %d", op.Kind)
		}
	}

	// Apply on a clone — shallow struct copy (SP/EP/clock/exception rows are
	// shared, never mutated by structural edits) with a fresh arc slice — or
	// directly on t when the caller owns it and no op removes arcs. The
	// removal path composes delays from pre-edit rows and re-validates, so it
	// always works on a clone.
	out := t
	if !inPlace || timed != nil {
		c := *t
		c.Arcs = append(make([]circuitops.ArcRow, 0, nArcs+2*len(ops)), t.Arcs...)
		out = &c
	}
	res := &Result{Tables: out}
	seeds := make(map[int32]bool)
	var deleted []int32

	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case OpInsertBuffer:
			frac := op.DriverFrac
			if frac == 0 {
				frac = 0.5
			}
			// Pre-edit row captured by value: the in-place path has no
			// pristine t to read back from, and the appends below may move
			// the arc backing anyway.
			orig := out.Arcs[op.Arc]
			v := orig.To
			x := int32(out.NumPins)
			y := x + 1
			out.NumPins += 2
			res.NewPins += 2
			// u→v becomes u→x with the driver-side share of the wire delay.
			a := &out.Arcs[op.Arc]
			a.To = x
			a.MeanRise *= frac
			a.StdRise *= frac
			a.MeanFall *= frac
			a.StdFall *= frac
			// x→y: the buffer's gate arc.
			out.Arcs = append(out.Arcs, circuitops.ArcRow{
				From: x, To: y, Kind: 0, Sense: uint8(liberty.PositiveUnate),
				Cell: op.Cell, Net: -1,
				MeanRise: op.Delay[liberty.Rise].Mean, StdRise: op.Delay[liberty.Rise].Std,
				MeanFall: op.Delay[liberty.Fall].Mean, StdFall: op.Delay[liberty.Fall].Std,
			})
			// y→v: the sink-side share of the wire.
			out.Arcs = append(out.Arcs, circuitops.ArcRow{
				From: y, To: v, Kind: 1, Sense: uint8(liberty.PositiveUnate),
				Cell: -1, Net: orig.Net,
				MeanRise: orig.MeanRise * (1 - frac), StdRise: orig.StdRise * (1 - frac),
				MeanFall: orig.MeanFall * (1 - frac), StdFall: orig.StdFall * (1 - frac),
			})
			seeds[x] = true
			seeds[y] = true
			seeds[v] = true
			res.Changed = append(res.Changed, op.Arc, int32(len(out.Arcs)-2), int32(len(out.Arcs)-1))
			res.Inserted++
		case OpRemoveBuffer:
			ca := t.Arcs[op.Arc]
			x, y := ca.From, ca.To
			in := fanin.at(x)[0]
			uin := t.Arcs[in]
			for _, o := range fanout.at(y) {
				oa := &out.Arcs[o]
				// u→v replaces u→x→y→v: means add, sigmas RSS (independent
				// stage variations, the same composition the extraction uses
				// along a path).
				oa.From = uin.From
				oa.Net = uin.Net
				oa.MeanRise = uin.MeanRise + ca.MeanRise + t.Arcs[o].MeanRise
				oa.StdRise = math.Sqrt(uin.StdRise*uin.StdRise + ca.StdRise*ca.StdRise + t.Arcs[o].StdRise*t.Arcs[o].StdRise)
				oa.MeanFall = uin.MeanFall + ca.MeanFall + t.Arcs[o].MeanFall
				oa.StdFall = math.Sqrt(uin.StdFall*uin.StdFall + ca.StdFall*ca.StdFall + t.Arcs[o].StdFall*t.Arcs[o].StdFall)
				seeds[t.Arcs[o].To] = true
			}
			deleted = append(deleted, in, op.Arc)
			// x and y keep their ids but lose all fan-in: they become
			// floating level-0 pins and must be re-propagated to empty.
			seeds[x] = true
			seeds[y] = true
			res.Removed++
		case OpAnnotate:
			a := &out.Arcs[op.Arc]
			a.MeanRise = op.Delay[liberty.Rise].Mean
			a.StdRise = op.Delay[liberty.Rise].Std
			a.MeanFall = op.Delay[liberty.Fall].Mean
			a.StdFall = op.Delay[liberty.Fall].Std
			seeds[a.To] = true
			res.Changed = append(res.Changed, op.Arc)
			res.Annotated++
		}
	}

	// Compact deleted arcs and build the remap. Insert-only batches keep a
	// nil remap: every surviving id is unchanged. Compaction renumbers the
	// tail wholesale, so the per-arc change set is meaningless there.
	if len(deleted) > 0 {
		res.Changed = nil
		del := make(map[int32]bool, len(deleted))
		for _, d := range deleted {
			del[d] = true
		}
		remap := make([]int32, nArcs)
		kept := out.Arcs[:0]
		next := int32(0)
		for i := range out.Arcs {
			if i < nArcs && del[int32(i)] {
				remap[i] = -1
				continue
			}
			if i < nArcs {
				remap[i] = next
			}
			kept = append(kept, out.Arcs[i])
			next++
		}
		out.Arcs = kept
		res.Remap = remap
	}

	res.Seeds = make([]int32, 0, len(seeds))
	for p := range seeds {
		res.Seeds = append(res.Seeds, p)
	}
	slices.Sort(res.Seeds)

	// Removal batches rewrote graph structure wholesale; re-validate the
	// result. Insert/annotate batches only append well-formed rows and scale
	// delays in place, every one individually range-checked above — skipping
	// the O(arcs) Validate keeps the optimizer-loop preview cost proportional
	// to the edit (the differential suite still compares against a cold
	// compile, which validates).
	if res.Remap != nil {
		if err := out.Validate(); err != nil {
			return nil, fmt.Errorf("topo: edited tables invalid: %w", err)
		}
	}
	return res, nil
}

// csr is a compact adjacency index over the arc table: at(p) lists the arc
// ids keyed to pin p. Built with two counting passes — no per-pin slice
// headers, no map overhead — because Apply may run per candidate preview in
// an optimizer loop.
type csr struct {
	start []int32
	arc   []int32
}

func (c csr) at(p int32) []int32 { return c.arc[c.start[p]:c.start[p+1]] }

func newCSR(nPins int, arcs []circuitops.ArcRow, key func(*circuitops.ArcRow) int32) csr {
	start := make([]int32, nPins+1)
	for i := range arcs {
		start[key(&arcs[i])+1]++
	}
	for p := 0; p < nPins; p++ {
		start[p+1] += start[p]
	}
	out := make([]int32, len(arcs))
	cursor := make([]int32, nPins)
	for i := range arcs {
		p := key(&arcs[i])
		out[start[p]+cursor[p]] = int32(i)
		cursor[p]++
	}
	return csr{start: start, arc: out}
}
