package topo

// Differential suite for structural ECOs. The correctness contract: a
// session's working engine after any sequence of Apply/Annotate batches is
// *bit-identical* — endpoint slacks, hold slacks, WNS/TNS, Top-K queues,
// timing gradients — to a cold core.Compile + NewEngineFromState + Run over
// the session's working tables, at any worker count (ci.sh runs this package
// under -race as well). The batched working engine is held to the same
// standard against a cold batch.New per scenario.

import (
	"testing"

	"insta/internal/bench"
	"insta/internal/batch"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/num"
	"insta/internal/refsta"
)

func buildTables(t testing.TB, seed int64) *circuitops.Tables {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "topotest", Seed: seed, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 8, Layers: 4, Width: 8,
		CrossFrac: 0.1, NumPIs: 3, NumPOs: 3,
		Period: 1, Uncertainty: 10, Die: 80, VioFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return circuitops.Extract(ref)
}

// netArcs returns the ids of positive-unate net arcs, the insertion targets.
func netArcs(tab *circuitops.Tables) []int32 {
	var out []int32
	for i := range tab.Arcs {
		if tab.Arcs[i].Kind == 1 {
			out = append(out, int32(i))
		}
	}
	return out
}

// mustEngine builds and fully evaluates a cold engine over tab.
func mustEngine(t *testing.T, tab *circuitops.Tables, opt core.Options) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if e.HoldEnabled() {
		e.EvalHoldSlacks()
	}
	return e
}

// assertEnginesIdentical compares got against a cold oracle over tab:
// slacks, hold slacks, WNS/TNS, every endpoint's Top-K queues, and the
// backward pass's per-arc timing gradients.
func assertEnginesIdentical(t *testing.T, tag string, got *core.Engine, tab *circuitops.Tables, opt core.Options) {
	t.Helper()
	want := mustEngine(t, tab, opt)
	defer want.Close()

	gs, ws := got.Slacks(), want.Slacks()
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d endpoints != cold %d", tag, len(gs), len(ws))
	}
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("%s: ep %d slack %v != cold %v", tag, i, gs[i], ws[i])
		}
	}
	if got.WNS() != want.WNS() || got.TNS() != want.TNS() {
		t.Fatalf("%s: WNS/TNS %v/%v != cold %v/%v", tag, got.WNS(), got.TNS(), want.WNS(), want.TNS())
	}
	if want.HoldEnabled() {
		gh, wh := got.EvalHoldSlacks(), want.EvalHoldSlacks()
		for i := range wh {
			if gh[i] != wh[i] {
				t.Fatalf("%s: ep %d hold slack %v != cold %v", tag, i, gh[i], wh[i])
			}
		}
	}
	for _, p := range want.Endpoints() {
		for rf := 0; rf < 2; rf++ {
			ga, gm, gsd, gsp := got.TopEntries(rf, p)
			wa, wm, wsd, wsp := want.TopEntries(rf, p)
			for kk := range wa {
				if ga[kk] != wa[kk] || gm[kk] != wm[kk] || gsd[kk] != wsd[kk] || gsp[kk] != wsp[kk] {
					t.Fatalf("%s: pin %d rf %d slot %d: queue mismatch", tag, p, rf, kk)
				}
			}
		}
	}
	got.Backward()
	want.Backward()
	for a := 0; a < want.NumArcs(); a++ {
		if gg, wg := got.TimingGradient(int32(a)), want.TimingGradient(int32(a)); gg != wg {
			t.Fatalf("%s: arc %d gradient %v != cold %v", tag, a, gg, wg)
		}
	}
}

func bufDelay(m, s float64) [2]num.Dist {
	return [2]num.Dist{{Mean: m, Std: s}, {Mean: m * 1.05, Std: s}}
}

func TestInsertBufferDifferential(t *testing.T) {
	tab := buildTables(t, 31)
	for _, workers := range []int{1, 2, 4} {
		opt := core.Options{TopK: 8, Hold: true, Workers: workers}
		base := mustEngine(t, tab, opt)
		s, err := NewSession(base, nil)
		if err != nil {
			t.Fatal(err)
		}
		nets := netArcs(tab)
		ops := []Op{
			InsertBuffer(nets[0], 7, bufDelay(3, 0.2), 0),
			InsertBuffer(nets[len(nets)/2], 7, bufDelay(2.5, 0.15), 0.3),
			InsertBuffer(nets[len(nets)-1], -1, bufDelay(4, 0.3), 0.7),
		}
		res, err := s.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		if res.Remap != nil {
			t.Fatalf("insert-only batch produced a remap")
		}
		if res.NewPins != 6 || res.Inserted != 3 {
			t.Fatalf("unexpected result %+v", res)
		}
		if st := s.Stats(); st.Relevel.Region <= 0 || st.Relevel.Region >= tab.NumPins {
			t.Fatalf("re-levelized region %d not localized (pins %d)", st.Relevel.Region, tab.NumPins)
		}
		assertEnginesIdentical(t, "insert", s.Engine(), s.Tables(), opt)
		s.Close()
		base.Close()
	}
}

func TestRemoveBufferDifferential(t *testing.T) {
	tab := buildTables(t, 32)
	opt := core.Options{TopK: 8, Hold: true, Workers: 2}
	base := mustEngine(t, tab, opt)
	defer base.Close()
	s, err := NewSession(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Insert a buffer, then remove it in a second batch: the remove batch
	// must produce a compaction remap and a graph that cold-compiles to the
	// same bits as the session's preview.
	target := netArcs(tab)[2]
	if _, err := s.Apply([]Op{InsertBuffer(target, 7, bufDelay(3, 0.2), 0)}); err != nil {
		t.Fatal(err)
	}
	// The inserted buffer's cell arc is the second-to-last arc.
	cellArc := int32(len(s.Tables().Arcs) - 2)
	if s.Tables().Arcs[cellArc].Kind != 0 {
		t.Fatalf("arc %d is not the inserted cell arc", cellArc)
	}
	res, err := s.Apply([]Op{RemoveBuffer(cellArc)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remap == nil {
		t.Fatal("removal batch returned no remap")
	}
	if res.Remap[target] != -1 {
		t.Fatalf("split driver arc %d should be removed, remap says %d", target, res.Remap[target])
	}
	if s.Remap() == nil {
		t.Fatal("session remap not composed")
	}
	assertEnginesIdentical(t, "remove", s.Engine(), s.Tables(), opt)

	// Pin count never shrinks; the buffer pins are floating now.
	if s.Tables().NumPins != tab.NumPins+2 {
		t.Fatalf("pin count %d, want %d", s.Tables().NumPins, tab.NumPins+2)
	}
}

func TestAnnotateOnStructuralSessionDifferential(t *testing.T) {
	tab := buildTables(t, 33)
	opt := core.Options{TopK: 8, Hold: true, Workers: 2}
	base := mustEngine(t, tab, opt)
	defer base.Close()
	s, err := NewSession(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Annotate([]Delta{{Arc: 0, Delay: bufDelay(9, 0.5)}}); err == nil {
		t.Fatal("annotate before any structural edit must be rejected")
	}
	if _, err := s.Apply([]Op{InsertBuffer(netArcs(tab)[0], 7, bufDelay(3, 0.2), 0)}); err != nil {
		t.Fatal(err)
	}
	// Annotate a few arcs, including one appended by the insert.
	newArc := int32(len(s.Tables().Arcs) - 1)
	deltas := []Delta{
		{Arc: 5, Delay: bufDelay(7, 0.4)},
		{Arc: newArc, Delay: bufDelay(1.5, 0.1)},
	}
	if err := s.Annotate(deltas); err != nil {
		t.Fatal(err)
	}
	assertEnginesIdentical(t, "annotate", s.Engine(), s.Tables(), opt)
}

func TestMixedBatchWithAnnotateOps(t *testing.T) {
	tab := buildTables(t, 34)
	opt := core.Options{TopK: 8, Workers: 2}
	base := mustEngine(t, tab, opt)
	defer base.Close()
	s, err := NewSession(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	nets := netArcs(tab)
	ops := []Op{
		InsertBuffer(nets[1], 7, bufDelay(2, 0.1), 0),
		Annotate(nets[3], bufDelay(6, 0.3)),
		Annotate(0, bufDelay(4, 0.2)),
	}
	if _, err := s.Apply(ops); err != nil {
		t.Fatal(err)
	}
	assertEnginesIdentical(t, "mixed", s.Engine(), s.Tables(), opt)
}

func TestBatchedEngineDifferential(t *testing.T) {
	tab := buildTables(t, 35)
	scns := batch.DefaultScenarios()
	for _, workers := range []int{1, 4} {
		opt := core.Options{TopK: 8, Hold: true, Workers: workers}
		base := mustEngine(t, tab, opt)
		bbase, err := batch.New(tab, scns, opt)
		if err != nil {
			t.Fatal(err)
		}
		bbase.Run()
		s, err := NewSession(base, bbase)
		if err != nil {
			t.Fatal(err)
		}
		nets := netArcs(tab)
		if _, err := s.Apply([]Op{
			InsertBuffer(nets[0], 7, bufDelay(3, 0.2), 0),
			InsertBuffer(nets[4], 7, bufDelay(2, 0.1), 0.4),
		}); err != nil {
			t.Fatal(err)
		}
		cellArc := int32(len(s.Tables().Arcs) - 2)
		if s.Tables().Arcs[cellArc].Kind != 0 {
			t.Fatalf("arc %d is not a cell arc", cellArc)
		}
		if _, err := s.Apply([]Op{RemoveBuffer(cellArc)}); err != nil {
			t.Fatal(err)
		}

		// Per-scenario bit-identity against a cold batched engine over the
		// session's working tables.
		cold, err := batch.New(s.Tables(), scns, opt)
		if err != nil {
			t.Fatal(err)
		}
		cold.Run()
		got := s.Batch()
		for sc := range scns {
			gs, ws := got.Slacks(sc), cold.Slacks(sc)
			for i := range ws {
				if gs[i] != ws[i] {
					t.Fatalf("workers=%d scenario %d ep %d: %v != cold %v", workers, sc, i, gs[i], ws[i])
				}
			}
			gh, wh := got.HoldSlacks(sc), cold.HoldSlacks(sc)
			for i := range wh {
				if gh[i] != wh[i] {
					t.Fatalf("workers=%d scenario %d ep %d: hold %v != cold %v", workers, sc, i, gh[i], wh[i])
				}
			}
		}
		cold.Close()
		s.Close()
		bbase.Close()
		base.Close()
	}
}

func TestApplyAtomicOnInvalidBatch(t *testing.T) {
	tab := buildTables(t, 36)
	opt := core.Options{TopK: 8, Workers: 2}
	base := mustEngine(t, tab, opt)
	defer base.Close()
	s, err := NewSession(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	nets := netArcs(tab)
	before := s.Tables()
	beforeEng := s.Engine()
	// Valid insert + claim conflict on the same arc: whole batch rejected.
	bad := []Op{
		InsertBuffer(nets[0], 7, bufDelay(3, 0.2), 0),
		Annotate(nets[0], bufDelay(1, 0.1)),
	}
	if _, err := s.Apply(bad); err == nil {
		t.Fatal("conflicting batch accepted")
	}
	if s.Tables() != before || s.Engine() != beforeEng || s.Edited() {
		t.Fatal("failed batch mutated the session")
	}
	// Bad arc id, bad fraction, wrong arc kind, cell arc removal shape.
	for _, ops := range [][]Op{
		{InsertBuffer(int32(len(tab.Arcs)), 7, bufDelay(1, 0.1), 0)},
		{InsertBuffer(nets[0], 7, bufDelay(1, 0.1), 1.5)},
		{RemoveBuffer(nets[0])},
		{Annotate(-1, bufDelay(1, 0.1))},
		{},
	} {
		if _, err := s.Apply(ops); err == nil {
			t.Fatalf("invalid batch %+v accepted", ops)
		}
	}
	if s.Edited() {
		t.Fatal("rejected batches left the session edited")
	}
}

func TestResetRestoresBase(t *testing.T) {
	tab := buildTables(t, 37)
	opt := core.Options{TopK: 8, Workers: 2}
	base := mustEngine(t, tab, opt)
	defer base.Close()
	baseWNS := base.WNS()
	s, err := NewSession(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Apply([]Op{InsertBuffer(netArcs(tab)[0], 7, bufDelay(30, 1), 0)}); err != nil {
		t.Fatal(err)
	}
	if s.Engine() == base {
		t.Fatal("apply did not create a working engine")
	}
	s.Reset()
	if s.Engine() != base || s.Edited() || s.Remap() != nil {
		t.Fatal("reset did not restore the base")
	}
	if base.WNS() != baseWNS {
		t.Fatalf("base WNS moved across preview+reset: %v != %v", base.WNS(), baseWNS)
	}
}

func TestDetachTransfersOwnership(t *testing.T) {
	tab := buildTables(t, 38)
	opt := core.Options{TopK: 8, Workers: 2}
	base := mustEngine(t, tab, opt)
	defer base.Close()
	s, err := NewSession(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detach(); err == nil {
		t.Fatal("detach with no edits accepted")
	}
	if _, err := s.Apply([]Op{InsertBuffer(netArcs(tab)[0], 7, bufDelay(3, 0.2), 0)}); err != nil {
		t.Fatal(err)
	}
	d, err := s.Detach()
	if err != nil {
		t.Fatal(err)
	}
	if d.Engine == base || d.Tables == nil || d.State == nil {
		t.Fatal("detached set incomplete")
	}
	// Close after detach must not kill the detached engine.
	s.Close()
	if got := d.Engine.WNS(); got != d.Engine.WNS() {
		t.Fatal("detached engine unusable after session close")
	}
	assertEnginesIdentical(t, "detached", d.Engine, d.Tables, opt)
	d.Engine.Close()
}

func TestRepeatedEditsStayIdentical(t *testing.T) {
	// A chain of structural batches — insert, annotate, insert, remove —
	// must stay bit-identical to the cold oracle at every step.
	tab := buildTables(t, 39)
	opt := core.Options{TopK: 8, Hold: true, Workers: 4}
	base := mustEngine(t, tab, opt)
	defer base.Close()
	s, err := NewSession(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	nets := netArcs(tab)
	if _, err := s.Apply([]Op{InsertBuffer(nets[0], 7, bufDelay(3, 0.2), 0)}); err != nil {
		t.Fatal(err)
	}
	assertEnginesIdentical(t, "step1", s.Engine(), s.Tables(), opt)

	if err := s.Annotate([]Delta{{Arc: nets[1], Delay: bufDelay(5, 0.25)}}); err != nil {
		t.Fatal(err)
	}
	assertEnginesIdentical(t, "step2", s.Engine(), s.Tables(), opt)

	if _, err := s.Apply([]Op{InsertBuffer(nets[2], 7, bufDelay(2, 0.1), 0.25)}); err != nil {
		t.Fatal(err)
	}
	assertEnginesIdentical(t, "step3", s.Engine(), s.Tables(), opt)

	cellArc := int32(len(s.Tables().Arcs) - 2)
	if _, err := s.Apply([]Op{RemoveBuffer(cellArc)}); err != nil {
		t.Fatal(err)
	}
	assertEnginesIdentical(t, "step4", s.Engine(), s.Tables(), opt)
}
