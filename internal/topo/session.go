package topo

// Structural ECO sessions: a working clone of the extraction tables plus
// fully evaluated working engines (single-corner and, when serving corners,
// scenario-batched), rebuilt incrementally per edit batch. The session is
// the preview/commit/rollback unit the serving layer wraps:
//
//	preview  = Apply/Annotate against the working set; the base engines
//	           stay frozen and shared with concurrent annotation sessions
//	commit   = Detach hands the working set to the owner, which swaps it in
//	           as the new base
//	rollback = Reset closes the working engines and points the session back
//	           at the base
//
// Each Apply recompiles the edited tables with core.CompileIncremental
// (localized re-levelization) and stands up the next working engines with
// core.NewEngineSeeded / batch.NewSeeded (cone-limited re-propagation), so
// the cost of an edit scales with its fan-out cone, not the design — while
// staying bit-identical to a cold compile + full propagation of the edited
// netlist (the differential tests in this package pin that down).

import (
	"fmt"

	"insta/internal/batch"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/levelize"
	"insta/internal/num"
	"insta/internal/obs"
)

// Delta is one annotation in the session's *current* arc id space (after any
// structural remaps), used by Annotate.
type Delta struct {
	Arc   int32
	Delay [2]num.Dist
}

// SessionStats accumulates what a session's edits did, for metrics.
type SessionStats struct {
	Edits     int // structural Apply batches
	Inserted  int // buffers spliced in
	Removed   int // buffers removed
	Annotated int // arcs rewritten via structural batches
	NewPins   int // pins appended
	Relevel   levelize.IncStats
}

// Session is one structural ECO session over a frozen base.
//
// Concurrency contract: a Session is single-threaded. Apply and Annotate
// read the base engines' tensors (seeded construction), so the base must be
// frozen for the duration of the call — the serving layer holds its engine
// read lock. Reset, Detach and Close touch only session-owned state.
type Session struct {
	baseTab   *circuitops.Tables
	baseState *core.State
	baseEng   *core.Engine
	baseBatch *batch.Engine

	tab   *circuitops.Tables
	state *core.State
	eng   *core.Engine
	beng  *batch.Engine

	remap    []int32 // base arc id -> current arc id; nil = identity
	stats    SessionStats
	detached bool
	closed   bool
	tracer   *obs.Tracer // optional; nil-safe span annotations on Apply/Detach
}

// SetTracer attaches a span tracer: each Apply and the final Detach emit
// spans ("topo-apply" with recompile/reseed children, "topo-detach"), so
// structural commits show up in request traces and /debug/trace captures.
// Nil (the default) and disabled tracers cost one branch.
func (s *Session) SetTracer(t *obs.Tracer) { s.tracer = t }

// NewSession opens a structural session over base engine e (which must be
// fully evaluated — Run, or a previous structural commit) and, optionally,
// the scenario-batched engine be kept delay-synchronized with e. The base
// tables are reconstructed from the engine's current state, so annotation
// ECOs committed before the session opened are already folded in.
func NewSession(e *core.Engine, be *batch.Engine) (*Session, error) {
	if e == nil {
		return nil, fmt.Errorf("topo: nil base engine")
	}
	st := e.ExportState()
	s := &Session{
		baseTab:   st.Tables(),
		baseState: st,
		baseEng:   e,
		baseBatch: be,
	}
	s.tab, s.state, s.eng, s.beng = s.baseTab, s.baseState, s.baseEng, s.baseBatch
	return s, nil
}

// Engine returns the session's current working engine: the base engine until
// the first Apply, the latest seeded engine after. Read-only for callers.
func (s *Session) Engine() *core.Engine { return s.eng }

// Batch returns the working scenario-batched engine (nil when the session
// was opened without one).
func (s *Session) Batch() *batch.Engine { return s.beng }

// Tables returns the session's current working tables. Callers must not
// mutate them; a cold core.Compile of this value is the session's
// bit-identity oracle.
func (s *Session) Tables() *circuitops.Tables { return s.tab }

// Remap returns the composed base→current arc id remap (-1 = removed), or
// nil when every base arc id is still valid. The returned slice is owned by
// the session.
func (s *Session) Remap() []int32 { return s.remap }

// Stats returns the session's cumulative edit statistics; Relevel reflects
// the most recent Apply.
func (s *Session) Stats() SessionStats { return s.stats }

// Edited reports whether the session holds uncommitted structural edits.
func (s *Session) Edited() bool { return s.stats.Edits > 0 }

// Apply validates and applies one structural op batch, recompiles the edited
// tables with localized re-levelization, and stands up fresh working engines
// seeded from the current ones. On any error the session — tables, compiled
// state, engines, remap — is left exactly as it was (the op batch itself is
// validate-then-apply on a clone, and engine construction failures discard
// the partial objects before the swap).
func (s *Session) Apply(ops []Op) (*Result, error) {
	if s.detached || s.closed {
		return nil, fmt.Errorf("topo: session is no longer active")
	}
	sp := s.tracer.StartArg("topo-apply", "ops", int64(len(ops)))
	defer sp.End()
	// Once the working tables are session-private (after the first edit) the
	// batch applies in place — the arc-table clone, like the slab rebuild and
	// the tensor allocation below, drops out of the steady-state preview.
	res, err := applyOps(s.tab, ops, s.tab != s.baseTab)
	if err != nil {
		return nil, err
	}
	// Recompile: append/rewrite batches (nil remap) patch the previous
	// compiled state — cannibalizing it in place once it is session-private —
	// instead of rebuilding every O(arcs) slab; removal batches and any
	// unpatchable shape take the slow slab rebuild. Both are bit-identical
	// to a cold Compile of the edited tables.
	csp := sp.Child("topo-recompile")
	var st *core.State
	var inc levelize.IncStats
	if res.Remap == nil {
		st, inc, err = core.CompileIncrementalPatched(res.Tables, s.state, res.Seeds, res.Changed, s.state != s.baseState)
		if err != nil {
			st = nil
		}
	}
	if st == nil {
		st, inc, err = core.CompileIncremental(res.Tables, s.state, res.Seeds)
		if err != nil {
			csp.End()
			return nil, err
		}
	}
	csp.End()
	// Stand up the working engines. The scenario-batched engine (if any) is
	// built first so its failure leaves the session untouched; the
	// single-corner engine is then either seeded fresh off the base (first
	// edit) or reseeded in place (session-private already — the steady state,
	// where an edit costs no tensor allocation at all).
	rsp := sp.ChildArg("topo-reseed", "seeds", int64(len(res.Seeds)))
	defer rsp.End()
	var beng *batch.Engine
	if s.beng != nil {
		beng, err = batch.NewSeeded(st, s.beng, res.Seeds, s.beng.Scenarios(), s.beng.Options())
		if err != nil {
			return nil, err
		}
	}
	eng := s.eng
	if s.eng == s.baseEng {
		eng, err = core.NewEngineSeeded(st, s.eng, res.Seeds, s.eng.Options())
		if err != nil {
			if beng != nil {
				beng.Close()
			}
			return nil, err
		}
	} else if err := s.eng.ReseedStructural(st, res.Seeds); err != nil {
		if beng != nil {
			beng.Close()
		}
		return nil, err
	}

	if s.beng != nil && s.beng != s.baseBatch {
		s.beng.Close()
	}
	s.tab, s.state, s.eng, s.beng = res.Tables, st, eng, beng
	s.remap = composeRemap(s.remap, res.Remap, len(s.baseTab.Arcs))
	s.stats.Edits++
	s.stats.Inserted += res.Inserted
	s.stats.Removed += res.Removed
	s.stats.Annotated += res.Annotated
	s.stats.NewPins += res.NewPins
	s.stats.Relevel = inc
	return res, nil
}

// Annotate rewrites arc delays in the session's current arc id space —
// annotation ECOs arriving on a session that already holds structural edits
// fold in here, keeping the working tables and engines delay-synchronized so
// the cold-compile oracle stays exact. Only legal after the first Apply: the
// working set before that IS the shared base, which a session must never
// mutate (pre-structural annotations belong in the serving overlay).
func (s *Session) Annotate(deltas []Delta) error {
	if s.detached || s.closed {
		return fmt.Errorf("topo: session is no longer active")
	}
	if s.stats.Edits == 0 {
		return fmt.Errorf("topo: no structural edits; annotate through the overlay")
	}
	for _, d := range deltas {
		if d.Arc < 0 || int(d.Arc) >= len(s.tab.Arcs) {
			return fmt.Errorf("topo: annotate: arc %d out of range [0,%d)", d.Arc, len(s.tab.Arcs))
		}
		for rf := 0; rf < 2; rf++ {
			if d.Delay[rf].Std < 0 {
				return fmt.Errorf("topo: annotate: negative sigma on arc %d", d.Arc)
			}
		}
	}
	arcs := make([]int32, 0, len(deltas))
	for _, d := range deltas {
		a := &s.tab.Arcs[d.Arc]
		a.MeanRise, a.StdRise = d.Delay[0].Mean, d.Delay[0].Std
		a.MeanFall, a.StdFall = d.Delay[1].Mean, d.Delay[1].Std
		for rf := 0; rf < 2; rf++ {
			s.eng.SetArcDelay(d.Arc, rf, d.Delay[rf])
			if s.beng != nil {
				s.beng.SetArcDelay(d.Arc, rf, d.Delay[rf].Mean, d.Delay[rf].Std)
			}
			// The session-private compiled state is the `prev` of the next
			// patched recompile, whose unchanged rows are taken on faith —
			// keep its annotation slabs coherent with the tables. (After an
			// in-place reseed the engine aliases these slabs and the write
			// above already landed here; this is then a harmless re-store.)
			s.state.ArcMean[rf][d.Arc] = d.Delay[rf].Mean
			s.state.ArcStd[rf][d.Arc] = d.Delay[rf].Std
		}
		arcs = append(arcs, d.Arc)
	}
	s.eng.PropagateIncremental(arcs)
	s.eng.EvalSlacks()
	if s.eng.HoldEnabled() {
		s.eng.EvalHoldSlacks()
	}
	if s.beng != nil {
		s.beng.PropagateIncremental(arcs)
		s.beng.EvalSlacks()
		if s.beng.HoldEnabled() {
			s.beng.EvalHoldSlacks()
		}
	}
	return nil
}

// Reset rolls every structural edit back: the working engines are closed and
// the session points at the untouched base again.
func (s *Session) Reset() {
	if s.detached || s.closed {
		return
	}
	if s.eng != s.baseEng {
		s.eng.Close()
	}
	if s.beng != nil && s.beng != s.baseBatch {
		s.beng.Close()
	}
	s.tab, s.state, s.eng, s.beng = s.baseTab, s.baseState, s.baseEng, s.baseBatch
	s.remap = nil
	s.stats = SessionStats{}
}

// Detached is the working set a commit takes over from a session.
type Detached struct {
	Tables *circuitops.Tables
	State  *core.State
	Engine *core.Engine
	Batch  *batch.Engine
	Remap  []int32 // base→current arc remap, nil = identity
	Stats  SessionStats
}

// Detach hands the session's working set to the caller — the commit path:
// the caller becomes the owner of the engines (and their Close), and the
// session deactivates without touching them. Fails when there is nothing to
// commit.
func (s *Session) Detach() (*Detached, error) {
	if s.detached || s.closed {
		return nil, fmt.Errorf("topo: session is no longer active")
	}
	if s.stats.Edits == 0 {
		return nil, fmt.Errorf("topo: no structural edits to commit")
	}
	dsp := s.tracer.StartArg("topo-detach", "edits", int64(s.stats.Edits))
	defer dsp.End()
	d := &Detached{
		Tables: s.tab,
		State:  s.state,
		Engine: s.eng,
		Batch:  s.beng,
		Remap:  s.remap,
		Stats:  s.stats,
	}
	s.detached = true
	return d, nil
}

// Close releases the session's working engines unless they were detached (or
// are the shared base). Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	if !s.detached {
		if s.eng != nil && s.eng != s.baseEng {
			s.eng.Close()
		}
		if s.beng != nil && s.beng != s.baseBatch {
			s.beng.Close()
		}
	}
	s.closed = true
}

// composeRemap folds the latest batch remap (pre-edit current ids → new ids,
// nil = identity) into the session's cumulative base→current remap.
func composeRemap(prev, next []int32, baseArcs int) []int32 {
	if next == nil {
		return prev
	}
	if prev == nil {
		prev = make([]int32, baseArcs)
		for i := range prev {
			prev[i] = int32(i)
		}
	}
	for i, cur := range prev {
		if cur >= 0 {
			prev[i] = next[cur]
		}
	}
	return prev
}
