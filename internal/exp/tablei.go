package exp

import (
	"fmt"
	"io"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/num"
)

// TableIRow is one line of the Table I correlation study.
type TableIRow struct {
	Design    string
	Cells     int
	Pins      int
	Levels    int
	Endpoints int

	UT       time.Duration // reference-engine full update_timing
	Corr     float64       // endpoint slack Pearson correlation
	InstaRun time.Duration // INSTA full propagation + slack evaluation
	MemoryGB float64       // INSTA state footprint
	Mismatch num.MismatchStats
	TimedEPs int
	Disagree int // endpoints untimed on one side only (Top-K truncation)
}

// TableI runs the correlation study over the named block presets. opt carries
// the Top-K (the paper uses 32) and the scheduler knobs.
func TableI(w io.Writer, names []string, opt core.Options) ([]TableIRow, error) {
	fprintf(w, "TABLE I: INSTA vs reference signoff engine (TopK=%d)\n", opt.TopK)
	fprintf(w, "%-10s %10s %10s %8s %10s %14s %12s %9s %18s\n",
		"design", "#cells", "#pins", "UT", "ep corr.", "INSTA runtime", "memory(GB)", "levels", "ep mismatch(avg,wst)ps")
	var rows []TableIRow
	for _, name := range names {
		spec, err := bench.BlockSpec(name)
		if err != nil {
			return nil, err
		}
		row, err := tableIRow(spec, opt)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", name, err)
		}
		rows = append(rows, row)
		fprintf(w, "%-10s %10d %10d %8s %10.5f %14s %12.3f %9d      (%.1e, %.1f)\n",
			row.Design, row.Cells, row.Pins, row.UT.Round(time.Millisecond),
			row.Corr, row.InstaRun.Round(time.Microsecond), row.MemoryGB, row.Levels,
			row.Mismatch.Avg, row.Mismatch.Worst)
	}
	return rows, nil
}

func tableIRow(spec bench.Spec, opt core.Options) (TableIRow, error) {
	s, err := Build(spec)
	if err != nil {
		return TableIRow{}, err
	}
	// Reference full update_timing runtime (the UT column).
	ut := timeIt(s.Ref.UpdateTimingFull)
	refSlacks := s.Ref.EndpointSlacks()

	e, err := core.NewEngineFromState(s.State, opt)
	if err != nil {
		return TableIRow{}, err
	}
	defer e.Close()
	var got []float64
	instaRun := timeIt(func() { got = e.Run() })

	r, ms, n, dis, err := Correlate(refSlacks, got)
	if err != nil {
		return TableIRow{}, err
	}
	return TableIRow{
		Disagree:  dis,
		Design:    spec.Name,
		Cells:     s.B.D.NumCells(),
		Pins:      s.B.D.NumPins(),
		Levels:    e.NumLevels(),
		Endpoints: len(refSlacks),
		UT:        ut,
		Corr:      r,
		InstaRun:  instaRun,
		MemoryGB:  float64(e.MemoryBytes()) / (1 << 30),
		Mismatch:  ms,
		TimedEPs:  n,
	}, nil
}
