// Package exp contains the harnesses that regenerate every table and figure
// of the paper's evaluation (§IV) on the synthetic design suite:
//
//	Table I  — INSTA vs reference-engine correlation on five blocks
//	Fig. 6   — Top-K=1 vs Top-K=128 endpoint-slack scatter on block-1
//	Fig. 7   — incremental STA runtime per sizing iteration (3 engines)
//	Fig. 8   — correlation before/after a sizing flow with estimate_eco only
//	Table II — INSTA-Size vs baseline sizer on the IWLS-like suite
//	Table III— INSTA-Place vs DP vs DP4.0 net weighting on superblue-like suite
//	Fig. 9   — runtime breakdown of one timing-refresh placement iteration
//
// Each harness returns structured results (consumed by the benchmarks in
// bench_test.go and by tests) and can render the paper-style table to a
// writer (consumed by the cmd/ tools).
package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/num"
	"insta/internal/refsta"
	"insta/internal/snap"
)

// Setup bundles one generated design with its initialized reference engine
// and the compiled INSTA state the harnesses build engines from.
type Setup struct {
	B     *bench.Design
	Ref   *refsta.Engine
	Tab   *circuitops.Tables
	State *core.State
}

// snapCache, when set via UseSnapshots, short-circuits the extraction +
// compile half of Build through the content-addressed snapshot store.
var snapCache *snap.Cache

// UseSnapshots routes Build's extraction/compile through a snapshot cache:
// on a hit the compiled state is decoded from disk (and the tables
// reconstructed from it) instead of re-extracted; on a miss the freshly
// compiled state is written back. Call once at tool startup, before any
// Build. The reference engine is always built — every harness correlates
// against it.
func UseSnapshots(c *snap.Cache) { snapCache = c }

// Build generates a design and initializes the reference engine, the
// extraction tables, and the compiled state (the one-time initialization of
// Fig. 2). With UseSnapshots, repeated Builds of one spec — within a run
// (Table II builds each design three times) or across tool invocations —
// compile once and warm-start after.
func Build(spec bench.Spec) (*Setup, error) {
	b, err := bench.Generate(spec)
	if err != nil {
		return nil, err
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s := &Setup{B: b, Ref: ref}
	if c := snapCache; c != nil {
		key := snap.KeyForPreset(spec)
		if snp, lerr := c.Load(key); lerr == nil && snp != nil {
			s.State = snp.State
			s.Tab = snp.State.Tables()
			return s, nil
		}
		s.Tab = circuitops.Extract(ref)
		if s.State, err = core.Compile(s.Tab); err != nil {
			return nil, err
		}
		c.Store(key, s.State, nil) // best-effort write-back
		return s, nil
	}
	s.Tab = circuitops.Extract(ref)
	if s.State, err = core.Compile(s.Tab); err != nil {
		return nil, err
	}
	return s, nil
}

// Correlate compares INSTA endpoint slacks against the reference engine's.
// Endpoints both sides agree are untimed (+Inf, fully false-pathed) are
// skipped; endpoints where exactly one side is untimed — a Top-K truncation
// dropping the only timed startpoint — are excluded from the statistics but
// counted in disagree.
func Correlate(ref, got []float64) (r float64, ms num.MismatchStats, n, disagree int, err error) {
	var a, b []float64
	for i := range ref {
		ri, gi := math.IsInf(ref[i], 0), math.IsInf(got[i], 0)
		switch {
		case ri && gi:
			continue
		case ri != gi:
			disagree++
			continue
		}
		a = append(a, ref[i])
		b = append(b, got[i])
	}
	if r, err = num.Pearson(a, b); err != nil {
		return 0, ms, 0, disagree, err
	}
	ms, err = num.Mismatch(a, b)
	return r, ms, len(a), disagree, err
}

// SyncDelays clones the reference engine's current arc annotations into
// INSTA (the full re-synchronization path of Fig. 2).
func SyncDelays(ref *refsta.Engine, e *core.Engine) {
	for i := range ref.Arcs {
		a := &ref.Arcs[i]
		e.SetArcDelay(int32(i), 0, a.Delay[0])
		e.SetArcDelay(int32(i), 1, a.Delay[1])
	}
}

// timeIt runs fn and returns its wall-clock duration.
func timeIt(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
