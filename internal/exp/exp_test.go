package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/num"
)

func TestCorrelate(t *testing.T) {
	inf := math.Inf(1)
	ref := []float64{1, 2, inf, 4, inf}
	got := []float64{1, 2.5, inf, 4, 9}
	r, ms, n, dis, err := Correlate(ref, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	if dis != 1 {
		t.Errorf("disagree = %d, want 1", dis)
	}
	if ms.Worst != 0.5 {
		t.Errorf("worst = %v, want 0.5", ms.Worst)
	}
	if r < 0.9 {
		t.Errorf("corr = %v unexpectedly low", r)
	}
}

func TestBuildProducesConsistentSetup(t *testing.T) {
	spec, err := bench.BlockSpec("block-5")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tab.EPs) != len(s.Ref.Endpoints()) {
		t.Error("extraction EP count mismatch")
	}
	if s.Ref.NumViolations() == 0 {
		t.Error("calibrated block should have violations")
	}
	frac := float64(s.Ref.NumViolations()) / float64(len(s.Ref.Endpoints()))
	if frac < 0.01 || frac > 0.25 {
		t.Errorf("violation fraction %v outside calibrated band", frac)
	}
}

func TestTableISmoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := TableI(&buf, []string{"block-5"}, core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Corr < 0.999 {
		t.Errorf("correlation %v below 0.999", r.Corr)
	}
	if r.InstaRun <= 0 || r.UT <= 0 || r.MemoryGB <= 0 {
		t.Errorf("missing measurements: %+v", r)
	}
	if !strings.Contains(buf.String(), "block-5") {
		t.Error("table output missing design name")
	}
	if _, err := TableI(nil, []string{"no-such"}, core.Options{TopK: 8, Workers: 1}); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestFig6Smoke(t *testing.T) {
	var buf, scatter bytes.Buffer
	res, err := Fig6(&buf, "block-5", []int{1, 16}, core.Options{Workers: 1}, &scatter)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	// More K must not hurt the worst mismatch.
	if res[1].Mismatch.Worst > res[0].Mismatch.Worst+1e-9 {
		t.Errorf("K=16 worst %v exceeds K=1 worst %v", res[1].Mismatch.Worst, res[0].Mismatch.Worst)
	}
	if res[1].MemoryGB <= res[0].MemoryGB {
		t.Error("bigger K should use more memory")
	}
	if !strings.Contains(scatter.String(), "topk=1") {
		t.Error("scatter CSV missing header")
	}
	if len(strings.Split(scatter.String(), "\n")) < 10 {
		t.Error("scatter CSV suspiciously short")
	}
}

func TestIncrementalSmoke(t *testing.T) {
	spec, err := bench.BlockSpec("block-5")
	if err != nil {
		t.Fatal(err)
	}
	f7, f8, err := Incremental(spec, 3, 40, core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 3 {
		t.Fatalf("rows = %d", len(f7.Rows))
	}
	for _, r := range f7.Rows {
		if r.Inhouse <= 0 || r.PT <= 0 || r.Insta() <= 0 {
			t.Errorf("iteration %d missing timings: %+v", r.Iter, r)
		}
	}
	if f8.Before.Corr < 0.99999 {
		t.Errorf("pre-flow correlation %v should be ~1", f8.Before.Corr)
	}
	if f8.After.Mismatch.Avg < f8.Before.Mismatch.Avg {
		t.Error("estimate_eco drift should not reduce mismatch")
	}
	var buf bytes.Buffer
	PrintFig7(&buf, f7)
	PrintFig8(&buf, f8)
	if !strings.Contains(buf.String(), "FIGURE 7") || !strings.Contains(buf.String(), "FIGURE 8") {
		t.Error("printers missing headers")
	}
}

func TestTableIISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sizing flow skipped in -short mode")
	}
	var buf bytes.Buffer
	rows, err := TableII(&buf, []string{"des"}, core.Options{TopK: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Initial.NumViolations == 0 {
		t.Error("initial state has no violations")
	}
	if r.Insta.TNS < r.Initial.TNS || r.Baseline.TNS < r.Initial.TNS {
		t.Error("sizing made TNS worse than the initial state on both flows")
	}
	if r.BRT <= 0 {
		t.Error("backward runtime missing")
	}
	if r.Insta.CellsSized == 0 {
		t.Error("INSTA-Size sized nothing")
	}
}

func TestTableIIIAndFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("placement flows skipped in -short mode")
	}
	var buf bytes.Buffer
	rows, err := TableIII(&buf, []string{"superblue18"}, 120, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.DP.HPWL <= 0 || r.NW.HPWL <= 0 || r.Insta.HPWL <= 0 {
		t.Fatalf("missing HPWL: %+v", r)
	}
	// All flows share the density/wirelength engine; results must be within
	// a sane band of each other.
	if r.Insta.HPWL > 1.3*r.DP.HPWL {
		t.Errorf("INSTA-Place HPWL %v wildly above DP %v", r.Insta.HPWL, r.DP.HPWL)
	}
	f9, err := Fig9(&buf, "superblue18", 60, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f9.Insta.Transfer <= 0 || f9.NW.Timer <= 0 {
		t.Errorf("breakdown missing phases: %+v", f9)
	}
	_ = num.MismatchStats{}
}
