package exp

import (
	"fmt"
	"io"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/sizing"
)

// TableIIRow is one design's sizing comparison.
type TableIIRow struct {
	Design string
	Pins   int

	Initial  sizing.Result // WNS/TNS/#vio of the untouched design
	Baseline sizing.Result // reference-tool-style slack-driven sizer
	Insta    sizing.Result // INSTA-Size

	BRT          time.Duration // INSTA backward runtime (bRT column)
	SizedReduced float64       // fraction fewer cells sized vs baseline
}

// TableII runs the sizing study over the named IWLS-like presets. Each flow
// starts from an identical freshly generated design.
func TableII(w io.Writer, names []string, opt core.Options) ([]TableIIRow, error) {
	fprintf(w, "TABLE II: gate sizing for timing optimization (INSTA-Size vs baseline)\n")
	fprintf(w, "%-12s %8s  %-10s %10s %14s %7s %12s\n",
		"design", "#pins", "method", "WNS(ps)", "TNS(ps)", "#vio", "#cells sized")
	var rows []TableIIRow
	for _, name := range names {
		spec, err := bench.IWLSSpec(name)
		if err != nil {
			return nil, err
		}
		row, err := tableIIRow(spec, opt)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", name, err)
		}
		rows = append(rows, row)
		printTIILine(w, row.Design, row.Pins, "initial", row.Initial, "")
		printTIILine(w, "", 0, "baseline", row.Baseline, "")
		printTIILine(w, "", 0, "INSTA-Size", row.Insta,
			fmt.Sprintf("(%+.0f%%)  bRT=%s", -100*row.SizedReduced, row.BRT.Round(time.Microsecond)))
	}
	return rows, nil
}

func printTIILine(w io.Writer, design string, pins int, method string, r sizing.Result, extra string) {
	pinsStr := ""
	if pins > 0 {
		pinsStr = fmt.Sprintf("%d", pins)
	}
	sized := ""
	if method != "initial" {
		sized = fmt.Sprintf("%d", r.CellsSized)
	} else {
		sized = "-"
	}
	fprintf(w, "%-12s %8s  %-10s %10.2f %14.2f %7d %12s %s\n",
		design, pinsStr, method, r.WNS, r.TNS, r.NumViolations, sized, extra)
}

func tableIIRow(spec bench.Spec, opt core.Options) (TableIIRow, error) {
	// Initial state.
	s0, err := Build(spec)
	if err != nil {
		return TableIIRow{}, err
	}
	row := TableIIRow{
		Design: spec.Name,
		Pins:   s0.B.D.NumPins(),
		Initial: sizing.Result{
			WNS: s0.Ref.WNS(), TNS: s0.Ref.TNS(), NumViolations: s0.Ref.NumViolations(),
		},
	}

	// Baseline on a fresh copy.
	sb, err := Build(spec)
	if err != nil {
		return TableIIRow{}, err
	}
	row.Baseline = sizing.BaselineSize(sb.Ref, sizing.DefaultBaselineConfig())

	// INSTA-Size on another fresh copy.
	si, err := Build(spec)
	if err != nil {
		return TableIIRow{}, err
	}
	// Sizing pinpoints the steepest cell, so the LSE temperature stays cold
	// regardless of the caller's analysis settings.
	sOpt := opt
	sOpt.Tau = 0.01
	e, err := core.NewEngineFromState(si.State, sOpt)
	if err != nil {
		return TableIIRow{}, err
	}
	defer e.Close()
	row.Insta = sizing.InstaSize(si.Ref, e, sizing.DefaultConfig())
	row.BRT = row.Insta.BackwardTime
	if row.Baseline.CellsSized > 0 {
		row.SizedReduced = 1 - float64(row.Insta.CellsSized)/float64(row.Baseline.CellsSized)
	}
	return row, nil
}
