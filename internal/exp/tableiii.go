package exp

import (
	"fmt"
	"io"
	"time"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/place"
)

// TableIIIRow is one placement benchmark's three-flow comparison.
type TableIIIRow struct {
	Design string
	Cells  int
	Pins   int

	DP    place.Result // wirelength+density only
	NW    place.Result // DP4.0-style net weighting
	Insta place.Result // INSTA-Place

	HPWLvsNW float64 // (Insta.HPWL - NW.HPWL) / NW.HPWL
	TNSvsNW  float64 // TNS improvement fraction vs NW (positive = better)
}

// TableIII runs the placement study over the named superblue-like presets.
// Each flow starts from an identical freshly generated design and random
// initial placement.
func TableIII(w io.Writer, names []string, iterations int, opt core.Options) ([]TableIIIRow, error) {
	fprintf(w, "TABLE III: timing-driven placement after legalization\n")
	fprintf(w, "%-12s %8s | %10s %12s | %10s %12s | %10s %12s %18s\n",
		"benchmark", "#cells", "DP HPWL", "DP TNS", "NW HPWL", "NW TNS", "IP HPWL", "IP TNS", "IP vs NW (HPWL,TNS)")
	var rows []TableIIIRow
	var sumH, sumT float64
	for _, name := range names {
		spec, err := bench.SuperblueSpec(name)
		if err != nil {
			return nil, err
		}
		row, err := tableIIIRow(spec, iterations, opt)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", name, err)
		}
		rows = append(rows, row)
		sumH += row.HPWLvsNW
		sumT += row.TNSvsNW
		fprintf(w, "%-12s %8d | %10.0f %12.1f | %10.0f %12.1f | %10.0f %12.1f   (%+5.1f%%, %+5.1f%%)\n",
			row.Design, row.Cells,
			row.DP.HPWL, row.DP.TNS, row.NW.HPWL, row.NW.TNS,
			row.Insta.HPWL, row.Insta.TNS, 100*row.HPWLvsNW, -100*row.TNSvsNW)
	}
	if len(rows) > 0 {
		fprintf(w, "avg INSTA-Place vs net weighting: HPWL %+0.1f%%, TNS %+0.1f%%\n",
			100*sumH/float64(len(rows)), -100*sumT/float64(len(rows)))
	}
	return rows, nil
}

func tableIIIRow(spec bench.Spec, iterations int, opt core.Options) (TableIIIRow, error) {
	runMode := func(mode place.Mode) (place.Result, error) {
		s, err := Build(spec)
		if err != nil {
			return place.Result{}, err
		}
		var eng *core.Engine
		if mode == place.ModeInsta {
			// Placement uses a hot LSE temperature so gradient spreads over
			// the whole violating cone (sizing uses tau=0.01 for pinpointing;
			// placement wants coverage, see DESIGN.md).
			pOpt := opt
			pOpt.TopK, pOpt.Tau = 2, 60
			eng, err = core.NewEngineFromState(s.State, pOpt)
			if err != nil {
				return place.Result{}, err
			}
			defer eng.Close()
		}
		cfg := place.DefaultConfig(mode)
		if iterations > 0 {
			cfg.Iterations = iterations
		}
		p, err := place.New(s.Ref, eng, cfg)
		if err != nil {
			return place.Result{}, err
		}
		return p.Run(), nil
	}

	row := TableIIIRow{Design: spec.Name}
	s, err := bench.Generate(spec)
	if err != nil {
		return row, err
	}
	row.Cells = s.D.NumCells()
	row.Pins = s.D.NumPins()

	if row.DP, err = runMode(place.ModePlain); err != nil {
		return row, err
	}
	if row.NW, err = runMode(place.ModeNetWeight); err != nil {
		return row, err
	}
	if row.Insta, err = runMode(place.ModeInsta); err != nil {
		return row, err
	}
	if row.NW.HPWL > 0 {
		row.HPWLvsNW = (row.Insta.HPWL - row.NW.HPWL) / row.NW.HPWL
	}
	if row.NW.TNS < 0 {
		row.TNSvsNW = (row.Insta.TNS - row.NW.TNS) / -row.NW.TNS
	} else if row.Insta.TNS >= row.NW.TNS {
		row.TNSvsNW = 0
	}
	return row, nil
}

// Fig9Result is the per-phase runtime breakdown of one timing-refresh
// placement iteration for the two timing-driven flows.
type Fig9Result struct {
	Design string
	NW     place.Breakdown
	Insta  place.Breakdown
}

// Fig9 measures the Fig. 9 breakdown on the named benchmark (the paper uses
// superblue10, the largest).
func Fig9(w io.Writer, name string, iterations int, opt core.Options) (*Fig9Result, error) {
	spec, err := bench.SuperblueSpec(name)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Design: name}

	run := func(mode place.Mode) (place.Breakdown, error) {
		s, err := Build(spec)
		if err != nil {
			return place.Breakdown{}, err
		}
		var eng *core.Engine
		if mode == place.ModeInsta {
			tab := circuitops.Extract(s.Ref)
			pOpt := opt
			pOpt.TopK, pOpt.Tau = 2, 60
			eng, err = core.NewEngine(tab, pOpt)
			if err != nil {
				return place.Breakdown{}, err
			}
			defer eng.Close()
		}
		cfg := place.DefaultConfig(mode)
		if iterations > 0 {
			cfg.Iterations = iterations
		}
		p, err := place.New(s.Ref, eng, cfg)
		if err != nil {
			return place.Breakdown{}, err
		}
		return p.Run().LastBreakdown, nil
	}
	if res.NW, err = run(place.ModeNetWeight); err != nil {
		return nil, err
	}
	if res.Insta, err = run(place.ModeInsta); err != nil {
		return nil, err
	}

	fprintf(w, "FIGURE 9: timing-update iteration breakdown on %s\n", name)
	fprintf(w, "%-12s %12s %12s %12s %12s %12s\n", "flow", "timer", "transfer", "weights", "step", "total")
	for _, row := range []struct {
		name string
		b    place.Breakdown
	}{{"net-weight", res.NW}, {"INSTA-Place", res.Insta}} {
		fprintf(w, "%-12s %12s %12s %12s %12s %12s\n", row.name,
			row.b.Timer.Round(time.Microsecond), row.b.Transfer.Round(time.Microsecond),
			row.b.Weights.Round(time.Microsecond), row.b.Step.Round(time.Microsecond),
			row.b.Total().Round(time.Microsecond))
	}
	if res.NW.Total() > 0 {
		fprintf(w, "INSTA-Place iteration overhead vs net weighting: %.0f%%\n",
			100*(float64(res.Insta.Total())/float64(res.NW.Total())-1))
	}
	return res, nil
}
