package exp

import (
	"fmt"
	"io"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/num"
)

// Fig6Result is the Top-K trade-off on one design at one K.
type Fig6Result struct {
	TopK     int
	Corr     float64
	Mismatch num.MismatchStats
	MemoryGB float64
	Disagree int // endpoints untimed by INSTA but timed by the reference
}

// Fig6 reproduces the Fig. 6 study: endpoint slack correlation on the named
// block without CPPR resolution (Top-K=1) and with it (Top-K=128). When
// scatter is non-nil, a CSV of (refSlack, instaSlack, endpointLevel) rows is
// written per K for plotting the paper's scatter panels.
func Fig6(w io.Writer, blockName string, ks []int, opt core.Options, scatter io.Writer) ([]Fig6Result, error) {
	spec, err := bench.BlockSpec(blockName)
	if err != nil {
		return nil, err
	}
	s, err := Build(spec)
	if err != nil {
		return nil, err
	}
	refSlacks := s.Ref.EndpointSlacks()
	fprintf(w, "FIGURE 6: Top-K trade-off on %s (%d endpoints)\n", blockName, len(refSlacks))
	fprintf(w, "%6s %12s %22s %12s %10s\n", "TopK", "ep corr.", "mismatch(avg,wst) ps", "memory(GB)", "disagree")

	var out []Fig6Result
	for _, k := range ks {
		kOpt := opt
		kOpt.TopK = k
		e, err := core.NewEngineFromState(s.State, kOpt)
		if err != nil {
			return nil, err
		}
		got := e.Run()
		r, ms, _, dis, err := Correlate(refSlacks, got)
		if err != nil {
			e.Close()
			return nil, err
		}
		res := Fig6Result{TopK: k, Corr: r, Mismatch: ms, MemoryGB: float64(e.MemoryBytes()) / (1 << 30), Disagree: dis}
		out = append(out, res)
		fprintf(w, "%6d %12.6f       (%.2e, %6.2f) %12.3f %10d\n", k, r, ms.Avg, ms.Worst, res.MemoryGB, dis)
		if scatter != nil {
			fmt.Fprintf(scatter, "# topk=%d columns: ref_slack insta_slack ep_level\n", k)
			eps := e.Endpoints()
			for i, rs := range refSlacks {
				if isInfOrNaN(rs) || isInfOrNaN(got[i]) {
					continue
				}
				fmt.Fprintf(scatter, "%.6f,%.6f,%d\n", rs, got[i], e.Level(eps[i]))
			}
		}
		e.Close()
	}
	return out, nil
}

func isInfOrNaN(x float64) bool {
	return x != x || x > 1e300 || x < -1e300
}
