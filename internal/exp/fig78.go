package exp

import (
	"io"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/num"
	"insta/internal/refsta"
)

// Fig7Row is one sizing iteration's incremental STA runtime across the three
// engines of the paper's Fig. 7 comparison.
type Fig7Row struct {
	Iter           int
	Inhouse        time.Duration // in-house CPU engine: full re-propagation
	PT             time.Duration // reference engine: incremental update_timing
	InstaEstimate  time.Duration // estimate_eco re-annotation
	InstaPropagate time.Duration // INSTA full-graph propagation + slacks
}

// Insta returns the complete INSTA evaluation time for the iteration (the
// paper counts estimate_eco plus propagation).
func (r Fig7Row) Insta() time.Duration { return r.InstaEstimate + r.InstaPropagate }

// Fig7Result is the aggregated incremental-evaluation comparison.
type Fig7Result struct {
	Rows                          []Fig7Row
	AvgInhouse, AvgPT, AvgInsta   time.Duration
	SpeedupVsInhouse, SpeedupVsPT float64
}

// CorrSnapshot is one side of the Fig. 8 before/after correlation.
type CorrSnapshot struct {
	Corr     float64
	Mismatch num.MismatchStats
}

// Fig8Result is the correlation impact of driving INSTA with estimate_eco
// re-annotation only (no re-synchronization) through a whole sizing flow.
type Fig8Result struct {
	Before, After CorrSnapshot
}

// Incremental runs the Fig. 7 / Fig. 8 experiment: the same batched
// changelist of gate resizes (each batch is one power-recovery sizing
// iteration touching many cells) is evaluated by (a) an in-house CPU engine
// doing full re-propagation, (b) the reference engine in incremental mode,
// and (c) INSTA re-annotated via estimate_eco. INSTA is never
// re-synchronized, so the final correlation shows the accumulated
// estimate_eco drift (Fig. 8).
func Incremental(spec bench.Spec, iterations, batch int, opt core.Options) (*Fig7Result, *Fig8Result, error) {
	// Two independent reference instances: the "in-house" full engine and
	// the incremental signoff engine INSTA piggybacks on.
	inhouse, err := Build(spec)
	if err != nil {
		return nil, nil, err
	}
	pt, err := Build(spec)
	if err != nil {
		return nil, nil, err
	}
	e, err := core.NewEngineFromState(pt.State, opt)
	if err != nil {
		return nil, nil, err
	}
	defer e.Close()

	f8 := &Fig8Result{}
	got := e.Run()
	r, ms, _, _, err := Correlate(pt.Ref.EndpointSlacks(), got)
	if err != nil {
		return nil, nil, err
	}
	f8.Before = CorrSnapshot{Corr: r, Mismatch: ms}

	cl := bench.BatchedChangelist(pt.B, spec.Seed+77, iterations, batch)
	f7 := &Fig7Result{}
	for i, bt := range cl {
		var row Fig7Row
		row.Iter = i

		// (c) INSTA: estimate_eco for every change in the batch against the
		// signoff engine's pre-commit state, re-annotate, one full-graph
		// propagation.
		var deltas []refsta.ArcDelta
		row.InstaEstimate = timeIt(func() {
			for _, rz := range bt {
				ds, eErr := pt.Ref.EstimateECO(rz.Cell, rz.NewLib)
				if eErr != nil {
					err = eErr
					return
				}
				deltas = append(deltas, ds...)
			}
		})
		if err != nil {
			return nil, nil, err
		}
		row.InstaPropagate = timeIt(func() {
			for _, dl := range deltas {
				e.SetArcDelay(dl.ArcID, 0, dl.Delay[0])
				e.SetArcDelay(dl.ArcID, 1, dl.Delay[1])
			}
			e.Run()
		})

		// (b) reference engine: commit the batch, one incremental update.
		for _, rz := range bt {
			if _, err = pt.Ref.ResizeCell(rz.Cell, rz.NewLib); err != nil {
				return nil, nil, err
			}
		}
		row.PT = timeIt(pt.Ref.UpdateTimingIncremental)

		// (a) in-house engine: full re-propagation each iteration.
		for _, rz := range bt {
			if _, err = inhouse.Ref.ResizeCell(rz.Cell, rz.NewLib); err != nil {
				return nil, nil, err
			}
		}
		row.Inhouse = timeIt(inhouse.Ref.UpdateTimingFull)

		f7.Rows = append(f7.Rows, row)
		f7.AvgInhouse += row.Inhouse
		f7.AvgPT += row.PT
		f7.AvgInsta += row.Insta()
	}
	n := time.Duration(len(f7.Rows))
	if n > 0 {
		f7.AvgInhouse /= n
		f7.AvgPT /= n
		f7.AvgInsta /= n
		if f7.AvgInsta > 0 {
			f7.SpeedupVsInhouse = float64(f7.AvgInhouse) / float64(f7.AvgInsta)
			f7.SpeedupVsPT = float64(f7.AvgPT) / float64(f7.AvgInsta)
		}
	}

	got = e.Run()
	r, ms, _, _, err = Correlate(pt.Ref.EndpointSlacks(), got)
	if err != nil {
		return nil, nil, err
	}
	f8.After = CorrSnapshot{Corr: r, Mismatch: ms}
	return f7, f8, nil
}

// PrintFig7 renders the per-iteration runtimes and the paper's speedup
// summary.
func PrintFig7(w io.Writer, res *Fig7Result) {
	fprintf(w, "FIGURE 7: incremental STA runtime per sizing iteration\n")
	fprintf(w, "%5s %14s %14s %14s %14s\n", "iter", "in-house", "reference-incr", "INSTA(est)", "INSTA(prop)")
	for _, r := range res.Rows {
		fprintf(w, "%5d %14s %14s %14s %14s\n", r.Iter,
			r.Inhouse.Round(time.Microsecond), r.PT.Round(time.Microsecond),
			r.InstaEstimate.Round(time.Microsecond), r.InstaPropagate.Round(time.Microsecond))
	}
	fprintf(w, "avg: in-house %s, reference-incr %s, INSTA %s  =>  %.1fx vs in-house, %.1fx vs reference\n",
		res.AvgInhouse.Round(time.Microsecond), res.AvgPT.Round(time.Microsecond),
		res.AvgInsta.Round(time.Microsecond), res.SpeedupVsInhouse, res.SpeedupVsPT)
}

// PrintFig8 renders the before/after correlation impact.
func PrintFig8(w io.Writer, res *Fig8Result) {
	fprintf(w, "FIGURE 8: INSTA correlation with estimate_eco-only re-annotation\n")
	fprintf(w, "before sizing flow: corr=%.6f mismatch(avg,wst)=(%.2e, %.2f) ps\n",
		res.Before.Corr, res.Before.Mismatch.Avg, res.Before.Mismatch.Worst)
	fprintf(w, "after  sizing flow: corr=%.6f mismatch(avg,wst)=(%.2e, %.2f) ps\n",
		res.After.Corr, res.After.Mismatch.Avg, res.After.Mismatch.Worst)
}
