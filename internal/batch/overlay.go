package batch

// Copy-on-write what-if evaluation over a scenario-batched base, the
// multi-corner analogue of core.Overlay: a serving session re-annotates a
// handful of arcs in nominal units and reads the resulting slacks in every
// scenario — one cone re-propagation carries all corners, instead of S
// per-corner overlays each walking the cone.
//
// The base engine's batched propagated state is the immutable snapshot; the
// overlay holds sparse deltas (nominal arc re-annotations, recomputed
// per-scenario pin queues over the reached cone, per-scenario slacks of the
// endpoints inside it). Reads fall through to the base wherever the overlay
// has no entry. Commit folds the nominal deltas into the base with a batched
// incremental propagation, which makes committed state bit-identical to the
// overlay's preview (same merge arithmetic, same order, same equality stop).
//
// Concurrency contract: an Overlay is single-threaded, but any number of
// overlays may evaluate in parallel over one frozen base as long as nothing
// mutates that base — the serving layer enforces this with its
// reader/writer lock around commits, exactly as for core.Overlay.

import (
	"math"
	"slices"

	"insta/internal/core"
	"insta/internal/liberty"
)

// Overlay is a copy-on-write what-if view over a propagated batched engine.
//
// Allocation discipline matches core.Overlay (DESIGN.md §12): Reset and
// Rebase clear the sparse maps in place and recycle pin-queue and slack
// storage through freelists, so a session's steady-state
// apply→propagate→read loop settles at zero allocations per operation.
type Overlay struct {
	e *Engine

	// Sparse nominal arc-delay overlay: arc id -> per-rf (mean, std).
	arcDelta map[int32]*[2][2]float64
	touched  []int32
	pending  []int32
	distFree []*[2][2]float64

	// Sparse pin-queue overlay: recomputed queues for every scenario,
	// flattened (rf*S+s)*K + k.
	pinQ map[int32]*pinOverlay
	free []*pinOverlay // released queue storage, reused before allocating

	// Per-scenario slacks of re-evaluated endpoints (len S per entry), the
	// endpoints whose pins changed but are not yet re-evaluated, and the
	// sorted set of all endpoints ever re-evaluated.
	epSlack    map[int32][]float64
	slackFree  [][]float64
	dirty      []int32
	changedEPs []int32
	epOut      []float64 // slack kernel output scratch

	scratch *propScratch // wavefront state, reused across Propagate calls

	// Persistent kernel bindings: the closures are created once and read
	// their per-launch state through the fields above, so a level launch or
	// slack evaluation does not allocate (a closure literal per call would
	// escape into the pool's job slot).
	kernBucket []int32
	kernFn     func(id, lo, hi int)
	slackFn    func(id, lo, hi int)
}

// pinOverlay holds one pin's recomputed queues across all scenarios.
type pinOverlay struct {
	arr, mean, std []float64
	sp             []int32
}

// NewOverlay creates an empty overlay over e. The base must be fully
// propagated and slack-evaluated (Run) and stay frozen while the overlay
// evaluates.
func NewOverlay(e *Engine) *Overlay {
	return &Overlay{
		e:        e,
		arcDelta: make(map[int32]*[2][2]float64),
		pinQ:     make(map[int32]*pinOverlay),
		epSlack:  make(map[int32][]float64),
	}
}

// getPinOverlay returns queue storage for one pin, from the freelist when
// possible. The three float planes share one backing slab.
func (o *Overlay) getPinOverlay() *pinOverlay {
	if n := len(o.free); n > 0 {
		q := o.free[n-1]
		o.free = o.free[:n-1]
		return q
	}
	qlen := 2 * len(o.e.scns) * o.e.opt.TopK
	buf := make([]float64, 3*qlen)
	return &pinOverlay{
		arr:  buf[0:qlen:qlen],
		mean: buf[qlen : 2*qlen : 2*qlen],
		std:  buf[2*qlen : 3*qlen : 3*qlen],
		sp:   make([]int32, qlen),
	}
}

// seededPinOverlay returns queue storage for pin p preloaded with the base's
// queues across every scenario. recomputePin's change detection compares
// against the previously *visible* queues, and a pin touched for the first
// time this Propagate was showing the base's — recycled freelist storage (or
// fresh zeroed storage) must not stand in for them, or a wavefront could stop
// early when stale content happens to match the recomputed result (a Reset
// followed by reapplying identical deltas often hands pins back their own
// old storage).
func (o *Overlay) seededPinOverlay(p int32) *pinOverlay {
	q := o.getPinOverlay()
	e := o.e
	span := len(e.scns) * e.opt.TopK // scenario blocks are contiguous per rf
	for rf := 0; rf < 2; rf++ {
		b := e.qbase(rf, p, 0)
		d := rf * span
		copy(q.arr[d:d+span], e.topArr[b:b+span])
		copy(q.mean[d:d+span], e.topMean[b:b+span])
		copy(q.std[d:d+span], e.topStd[b:b+span])
		copy(q.sp[d:d+span], e.topSP[b:b+span])
	}
	return q
}

// releasePins returns every overlaid pin queue to the freelist and empties
// the pin map in place.
func (o *Overlay) releasePins() {
	for _, q := range o.pinQ {
		o.free = append(o.free, q)
	}
	clear(o.pinQ)
}

// Base returns the batched engine this overlay shadows.
func (o *Overlay) Base() *Engine { return o.e }

// SetArcDelay annotates one arc's *nominal* delay for output transition rf
// in the overlay only; every scenario sees it through its scale factors.
// Call Propagate after a batch.
func (o *Overlay) SetArcDelay(arc int32, rf int, mean, std float64) {
	od := o.arcDelta[arc]
	if od == nil {
		if n := len(o.distFree); n > 0 {
			od = o.distFree[n-1]
			o.distFree = o.distFree[:n-1]
		} else {
			od = new([2][2]float64)
		}
		od[0] = [2]float64{o.e.arcMean[0][arc], o.e.arcStd[0][arc]}
		od[1] = [2]float64{o.e.arcMean[1][arc], o.e.arcStd[1][arc]}
		o.arcDelta[arc] = od
		o.touched = append(o.touched, arc)
	}
	od[rf] = [2]float64{mean, std}
	for _, a := range o.pending {
		if a == arc {
			return
		}
	}
	o.pending = append(o.pending, arc)
}

// arcDelay returns the nominal annotation of arc for rf as seen through the
// overlay.
func (o *Overlay) arcDelay(rf int, arc int32) (mean, std float64) {
	if od := o.arcDelta[arc]; od != nil {
		return od[rf][0], od[rf][1]
	}
	return o.e.arcMean[rf][arc], o.e.arcStd[rf][arc]
}

// queues returns pin p's Top-K queue slices for (rf, scenario s) as seen
// through the overlay.
func (o *Overlay) queues(rf, s int, p int32) (arr, mean, std []float64, sps []int32) {
	k := o.e.opt.TopK
	if q := o.pinQ[p]; q != nil {
		b := (rf*len(o.e.scns) + s) * k
		return q.arr[b : b+k], q.mean[b : b+k], q.std[b : b+k], q.sp[b : b+k]
	}
	b := o.e.qbase(rf, p, s)
	return o.e.topArr[b : b+k], o.e.topMean[b : b+k], o.e.topStd[b : b+k], o.e.topSP[b : b+k]
}

// Propagate re-propagates the fan-out cone of every arc annotated since the
// last call, across all scenarios at once, writing recomputed queues into
// the overlay only. The wavefront walks the shared level schedule exactly
// like the base's PropagateIncremental and stops where every scenario's
// queues converge, so the preview is bit-identical to committing the same
// deltas.
func (o *Overlay) Propagate() {
	arcs := o.pending
	o.pending = o.pending[:0]
	if len(arcs) == 0 {
		return
	}
	e := o.e
	sp := e.tracer.StartArg(KernelOverlay, "arcs", int64(len(arcs)))
	defer sp.End()
	foStart, foAdj := e.foStart, e.foAdj

	// Wavefront state is per-overlay (concurrent overlays share one frozen
	// base but never scratch), reused allocation-free across Propagate calls.
	if o.scratch == nil {
		o.scratch = e.newPropScratch()
	}
	sc := o.scratch
	sc.reset()
	buckets, queued := sc.buckets, sc.queued
	push := func(p int32) {
		if !queued[p] {
			queued[p] = true
			buckets[e.lv.Level[p]] = append(buckets[e.lv.Level[p]], p)
		}
	}
	for _, a := range arcs {
		push(e.arcTo[a])
	}

	for l := 0; l < len(buckets); l++ {
		bucket := buckets[l]
		if len(bucket) == 0 {
			continue
		}
		// Startpoint pins reseed constants and never change; stop there.
		live := bucket[:0]
		for _, p := range bucket {
			if e.spOfPin[p] < 0 {
				live = append(live, p)
			}
		}
		bucket = live
		if len(bucket) == 0 {
			continue
		}
		// Overlay queue storage is bound serially: map writes must not
		// run inside the kernel (lower-level parents are read concurrently
		// through the same map).
		for _, p := range bucket {
			if o.pinQ[p] == nil {
				o.pinQ[p] = o.seededPinOverlay(p)
			}
		}
		if cap(sc.changed) < len(bucket) {
			sc.changed = make([]bool, len(bucket))
		}
		sc.changed = sc.changed[:len(bucket)]
		changed := sc.changed
		if o.kernFn == nil {
			o.kernFn = func(id, lo, hi int) {
				snap := o.scratch.snaps[id]
				b, ch := o.kernBucket, o.scratch.changed
				for i := lo; i < hi; i++ {
					ch[i] = o.recomputePin(b[i], snap)
				}
			}
		}
		o.kernBucket = bucket
		e.kernIndexed(KernelOverlay, l, len(bucket), o.kernFn)
		for i, p := range bucket {
			if !changed[i] {
				continue
			}
			// Each pin enters at most one bucket per Propagate and maps to at
			// most one endpoint, so dirty never holds duplicates per call.
			if ep := e.epOfPin[p]; ep >= 0 {
				o.dirty = append(o.dirty, ep)
			}
			for _, to := range foAdj[foStart[p]:foStart[p+1]] {
				push(to)
			}
		}
	}
	o.evalDirtyEndpoints()
}

// recomputePin rebuilds pin p's queues for every scenario inside the
// overlay from its fan-in as seen through the overlay, and reports whether
// any scenario's result differs from the previously visible queues. The
// merge is the general path of the batched forward kernel; for single-fan-in
// pins it produces the same bits as the shiftCopy fast path, as in core.
func (o *Overlay) recomputePin(p int32, snap *snapshotBuf) bool {
	e := o.e
	k := e.opt.TopK
	S := len(e.scns)
	for rf := 0; rf < 2; rf++ {
		for s := 0; s < S; s++ {
			arr, mean, std, sps := o.queues(rf, s, p)
			d := (rf*S + s) * k
			copy(snap.arr[d:d+k], arr)
			copy(snap.mean[d:d+k], mean)
			copy(snap.std[d:d+k], std)
			copy(snap.sp[d:d+k], sps)
		}
	}

	q := o.pinQ[p]
	lo, hi := e.faninStart[p], e.faninStart[p+1]
	for rf := 0; rf < 2; rf++ {
		clearQueues(q.arr[rf*S*k:(rf+1)*S*k], q.sp[rf*S*k:(rf+1)*S*k])
		for pos := lo; pos < hi; pos++ {
			arc := e.faninArc[pos]
			parent := e.faninFrom[pos]
			kind := e.arcKind[arc]
			am0, as0 := o.arcDelay(rf, arc)
			inRFs, n := liberty.Unate(e.faninSense[pos]).InRFs(rf)
			for ri := 0; ri < n; ri++ {
				for s := 0; s < S; s++ {
					am := am0 * e.scaleMean[kind][s]
					as := as0 * e.scaleStd[kind][s]
					b := (rf*S + s) * k
					arr := q.arr[b : b+k]
					mean := q.mean[b : b+k]
					std := q.std[b : b+k]
					sps := q.sp[b : b+k]
					_, pmean, pstd, psps := o.queues(inRFs[ri], s, parent)
					for kk := 0; kk < k; kk++ {
						psp := psps[kk]
						if psp == noSP {
							break
						}
						m := pmean[kk] + am
						ps := pstd[kk]
						if m+e.nSigma*(ps+as) <= arr[k-1] {
							continue
						}
						sg := math.Sqrt(ps*ps + as*as)
						core.InsertTopK(arr, mean, std, sps, m+e.nSigma*sg, m, sg, psp)
					}
				}
			}
		}
	}
	for i := 0; i < 2*S*k; i++ {
		if q.sp[i] != snap.sp[i] || q.arr[i] != snap.arr[i] ||
			q.mean[i] != snap.mean[i] || q.std[i] != snap.std[i] {
			return true
		}
	}
	return false
}

// evalDirtyEndpoints re-evaluates every dirty endpoint's slack in every
// scenario through the pool, in sorted endpoint order so the state is
// independent of map iteration order.
func (o *Overlay) evalDirtyEndpoints() {
	if len(o.dirty) == 0 {
		return
	}
	e := o.e
	dirty := o.dirty
	slices.Sort(dirty)
	ssp := e.tracer.StartArg(KernelOverlaySlack, "endpoints", int64(len(dirty)))
	defer ssp.End()
	S := len(e.scns)
	if cap(o.epOut) < len(dirty)*S {
		o.epOut = make([]float64, len(dirty)*S)
	}
	o.epOut = o.epOut[:len(dirty)*S]
	out := o.epOut
	if o.slackFn == nil {
		o.slackFn = func(id, lo, hi int) {
			e := o.e
			S := len(e.scns)
			k := e.opt.TopK
			dirty, out := o.dirty, o.epOut
			for i := lo; i < hi; i++ {
				ep := dirty[i]
				p := e.epPin[ep]
				for s := 0; s < S; s++ {
					best := math.Inf(1)
					for rf := 0; rf < 2; rf++ {
						arr, _, _, sps := o.queues(rf, s, p)
						for kk := 0; kk < k; kk++ {
							sp := sps[kk]
							if sp == noSP {
								break
							}
							adj := e.excLookup(e.spPin[sp], p)
							if adj.False {
								continue
							}
							req := e.epBase[rf][ep] +
								float64(adj.CycleCount()-1)*e.period +
								e.credit(e.spNode[sp], e.epNode[ep])
							if sl := req - arr[kk]; sl < best {
								best = sl
							}
						}
					}
					out[i*S+s] = best
				}
			}
		}
	}
	e.kernIndexed(KernelOverlaySlack, -1, len(dirty), o.slackFn)
	grew := false
	for i, ep := range dirty {
		sl := o.epSlack[ep]
		if sl == nil {
			if n := len(o.slackFree); n > 0 {
				sl = o.slackFree[n-1]
				o.slackFree = o.slackFree[:n-1]
			} else {
				sl = make([]float64, S)
			}
			o.changedEPs = append(o.changedEPs, ep)
			grew = true
		}
		copy(sl, out[i*S:(i+1)*S])
		o.epSlack[ep] = sl
	}
	if grew {
		slices.Sort(o.changedEPs)
	}
	o.dirty = o.dirty[:0]
}

// Slack returns endpoint i's slack in scenario s as seen through the
// overlay.
func (o *Overlay) Slack(s int, i int32) float64 {
	if sl, ok := o.epSlack[i]; ok {
		return sl[s]
	}
	return o.e.slack(s, i)
}

// MergedSlack returns endpoint i's worst slack across scenarios as seen
// through the overlay.
func (o *Overlay) MergedSlack(i int32) float64 {
	best := math.Inf(1)
	for s := range o.e.scns {
		if sl := o.Slack(s, i); sl < best {
			best = sl
		}
	}
	return best
}

// WNS returns scenario s's worst negative slack under the overlay, scanning
// endpoints in index order like the base engine.
func (o *Overlay) WNS(s int) float64 {
	w := 0.0
	for i := range o.e.epPin {
		if sl := o.Slack(s, int32(i)); sl < w {
			w = sl
		}
	}
	return w
}

// TNS returns scenario s's total negative slack under the overlay.
func (o *Overlay) TNS(s int) float64 {
	t := 0.0
	for i := range o.e.epPin {
		if sl := o.Slack(s, int32(i)); sl < 0 {
			t += sl
		}
	}
	return t
}

// MergedWNS returns the merged (per-endpoint worst scenario) WNS under the
// overlay.
func (o *Overlay) MergedWNS() float64 {
	w := 0.0
	for i := range o.e.epPin {
		if sl := o.MergedSlack(int32(i)); sl < w {
			w = sl
		}
	}
	return w
}

// MergedTNS returns the merged TNS under the overlay.
func (o *Overlay) MergedTNS() float64 {
	t := 0.0
	for i := range o.e.epPin {
		if sl := o.MergedSlack(int32(i)); sl < 0 {
			t += sl
		}
	}
	return t
}

// ChangedEndpoints returns the sorted indices of endpoints whose slacks the
// overlay re-evaluated. The returned slice is a fresh copy; hot paths use
// ChangedEndpointsView.
func (o *Overlay) ChangedEndpoints() []int32 {
	return append([]int32(nil), o.changedEPs...)
}

// ChangedEndpointsView is ChangedEndpoints without the copy: the returned
// slice is owned by the overlay, stays sorted, and is valid until the next
// Propagate, Reset or Rebase. Callers must not mutate or retain it.
func (o *Overlay) ChangedEndpointsView() []int32 { return o.changedEPs }

// TouchedArcs returns the overlaid arc ids in first-annotation order.
func (o *Overlay) TouchedArcs() []int32 {
	return append([]int32(nil), o.touched...)
}

// OverlayStats summarizes the overlay's sparse footprint.
type OverlayStats struct {
	TouchedArcs int
	OverlayPins int
	ChangedEPs  int
}

// Stats reports the overlay's current sparse footprint.
func (o *Overlay) Stats() OverlayStats {
	return OverlayStats{
		TouchedArcs: len(o.arcDelta),
		OverlayPins: len(o.pinQ),
		ChangedEPs:  len(o.epSlack),
	}
}

// releaseSlacks returns every per-endpoint slack slice to the freelist and
// empties the slack map in place.
func (o *Overlay) releaseSlacks() {
	for _, sl := range o.epSlack {
		o.slackFree = append(o.slackFree, sl)
	}
	clear(o.epSlack)
}

// Reset discards all overlay state — the session rollback. The base is
// untouched. Maps are cleared in place and storage returned to freelists, so
// a reset-and-reapply cycle does not reallocate.
func (o *Overlay) Reset() {
	for _, od := range o.arcDelta {
		o.distFree = append(o.distFree, od)
	}
	clear(o.arcDelta)
	o.touched = o.touched[:0]
	o.pending = o.pending[:0]
	o.releasePins()
	o.releaseSlacks()
	o.dirty = o.dirty[:0]
	o.changedEPs = o.changedEPs[:0]
}

// Rebase invalidates the overlay's derived state while keeping the nominal
// arc deltas, and schedules every touched arc for re-propagation — called
// when another session's commit moved the batched base.
func (o *Overlay) Rebase() {
	o.releasePins()
	o.releaseSlacks()
	o.dirty = o.dirty[:0]
	o.changedEPs = o.changedEPs[:0]
	o.pending = append(o.pending[:0], o.touched...)
}

// RebaseStructural re-targets the overlay at a structurally edited
// replacement of its batched base. remap maps the old engine's arc ids to
// e's (-1 = removed); nil means identity (insert-only edits append arcs
// without renumbering). Nominal deltas on surviving arcs are kept, re-keyed
// and scheduled for re-propagation; deltas on removed arcs are dropped to
// the freelist. Derived state is invalidated like Rebase and the wavefront
// scratch is discarded (the new engine's level count differs). Pin-queue and
// slack freelist storage survives: sizes depend only on TopK and S, which a
// structural edit never changes.
func (o *Overlay) RebaseStructural(e *Engine, remap []int32) {
	o.releasePins()
	o.releaseSlacks()
	o.dirty = o.dirty[:0]
	o.changedEPs = o.changedEPs[:0]
	o.scratch = nil

	// Re-key surviving deltas; old and new id ranges can overlap after a
	// removal compaction, so drain the map first and reinsert.
	oldTouched := append([]int32(nil), o.touched...)
	oldDeltas := make([]*[2][2]float64, len(oldTouched))
	for i, a := range oldTouched {
		oldDeltas[i] = o.arcDelta[a]
	}
	clear(o.arcDelta)
	o.touched = o.touched[:0]
	o.pending = o.pending[:0]
	for i, a := range oldTouched {
		na := a
		if remap != nil {
			na = remap[a]
		}
		if na < 0 {
			o.distFree = append(o.distFree, oldDeltas[i])
			continue
		}
		o.arcDelta[na] = oldDeltas[i]
		o.touched = append(o.touched, na)
		o.pending = append(o.pending, na)
	}
	o.e = e
}

// Commit folds the overlay's nominal arc deltas into the batched base,
// re-propagates the affected cone incrementally across all scenarios,
// re-evaluates every scenario's slacks, and resets the overlay. The caller
// must hold exclusive access to the base.
func (o *Overlay) Commit() {
	if len(o.touched) == 0 {
		return
	}
	e := o.e
	sp := e.tracer.StartArg("batch-overlay-commit", "arcs", int64(len(o.touched)))
	defer sp.End()
	for _, arc := range o.touched {
		od := o.arcDelta[arc]
		for rf := 0; rf < 2; rf++ {
			e.SetArcDelay(arc, rf, od[rf][0], od[rf][1])
		}
	}
	e.PropagateIncremental(o.touched)
	e.EvalSlacks()
	if e.hold != nil {
		e.EvalHoldSlacks()
	}
	o.Reset()
}
