package batch

// Copy-on-write what-if evaluation over a scenario-batched base, the
// multi-corner analogue of core.Overlay: a serving session re-annotates a
// handful of arcs in nominal units and reads the resulting slacks in every
// scenario — one cone re-propagation carries all corners, instead of S
// per-corner overlays each walking the cone.
//
// The base engine's batched propagated state is the immutable snapshot; the
// overlay holds sparse deltas (nominal arc re-annotations, recomputed
// per-scenario pin queues over the reached cone, per-scenario slacks of the
// endpoints inside it). Reads fall through to the base wherever the overlay
// has no entry. Commit folds the nominal deltas into the base with a batched
// incremental propagation, which makes committed state bit-identical to the
// overlay's preview (same merge arithmetic, same order, same equality stop).
//
// Concurrency contract: an Overlay is single-threaded, but any number of
// overlays may evaluate in parallel over one frozen base as long as nothing
// mutates that base — the serving layer enforces this with its
// reader/writer lock around commits, exactly as for core.Overlay.

import (
	"math"
	"sort"

	"insta/internal/core"
	"insta/internal/liberty"
)

// Overlay is a copy-on-write what-if view over a propagated batched engine.
type Overlay struct {
	e *Engine

	// Sparse nominal arc-delay overlay: arc id -> per-rf (mean, std).
	arcDelta map[int32]*[2][2]float64
	touched  []int32
	pending  []int32

	// Sparse pin-queue overlay: recomputed queues for every scenario,
	// flattened (rf*S+s)*K + k.
	pinQ map[int32]*pinOverlay

	// Per-scenario slacks of re-evaluated endpoints (len S per entry), and
	// the endpoints whose pins changed but are not yet re-evaluated.
	epSlack map[int32][]float64
	epDirty map[int32]bool
}

// pinOverlay holds one pin's recomputed queues across all scenarios.
type pinOverlay struct {
	arr, mean, std []float64
	sp             []int32
}

// NewOverlay creates an empty overlay over e. The base must be fully
// propagated and slack-evaluated (Run) and stay frozen while the overlay
// evaluates.
func NewOverlay(e *Engine) *Overlay {
	return &Overlay{
		e:        e,
		arcDelta: make(map[int32]*[2][2]float64),
		pinQ:     make(map[int32]*pinOverlay),
		epSlack:  make(map[int32][]float64),
		epDirty:  make(map[int32]bool),
	}
}

// Base returns the batched engine this overlay shadows.
func (o *Overlay) Base() *Engine { return o.e }

// SetArcDelay annotates one arc's *nominal* delay for output transition rf
// in the overlay only; every scenario sees it through its scale factors.
// Call Propagate after a batch.
func (o *Overlay) SetArcDelay(arc int32, rf int, mean, std float64) {
	od := o.arcDelta[arc]
	if od == nil {
		od = &[2][2]float64{
			{o.e.arcMean[0][arc], o.e.arcStd[0][arc]},
			{o.e.arcMean[1][arc], o.e.arcStd[1][arc]},
		}
		o.arcDelta[arc] = od
		o.touched = append(o.touched, arc)
	}
	od[rf] = [2]float64{mean, std}
	for _, a := range o.pending {
		if a == arc {
			return
		}
	}
	o.pending = append(o.pending, arc)
}

// arcDelay returns the nominal annotation of arc for rf as seen through the
// overlay.
func (o *Overlay) arcDelay(rf int, arc int32) (mean, std float64) {
	if od := o.arcDelta[arc]; od != nil {
		return od[rf][0], od[rf][1]
	}
	return o.e.arcMean[rf][arc], o.e.arcStd[rf][arc]
}

// queues returns pin p's Top-K queue slices for (rf, scenario s) as seen
// through the overlay.
func (o *Overlay) queues(rf, s int, p int32) (arr, mean, std []float64, sps []int32) {
	k := o.e.opt.TopK
	if q := o.pinQ[p]; q != nil {
		b := (rf*len(o.e.scns) + s) * k
		return q.arr[b : b+k], q.mean[b : b+k], q.std[b : b+k], q.sp[b : b+k]
	}
	b := o.e.qbase(rf, p, s)
	return o.e.topArr[b : b+k], o.e.topMean[b : b+k], o.e.topStd[b : b+k], o.e.topSP[b : b+k]
}

// Propagate re-propagates the fan-out cone of every arc annotated since the
// last call, across all scenarios at once, writing recomputed queues into
// the overlay only. The wavefront walks the shared level schedule exactly
// like the base's PropagateIncremental and stops where every scenario's
// queues converge, so the preview is bit-identical to committing the same
// deltas.
func (o *Overlay) Propagate() {
	arcs := o.pending
	o.pending = o.pending[:0]
	if len(arcs) == 0 {
		return
	}
	e := o.e
	sp := e.tracer.StartArg(KernelOverlay, "arcs", int64(len(arcs)))
	defer sp.End()
	foStart, foAdj := e.foStart, e.foAdj

	buckets := make([][]int32, e.lv.NumLevels)
	queued := make(map[int32]bool, len(arcs)*4)
	push := func(p int32) {
		if !queued[p] {
			queued[p] = true
			buckets[e.lv.Level[p]] = append(buckets[e.lv.Level[p]], p)
		}
	}
	for _, a := range arcs {
		push(e.arcTo[a])
	}

	qlen := 2 * len(e.scns) * e.opt.TopK
	var changed []bool
	for l := 0; l < len(buckets); l++ {
		bucket := buckets[l]
		if len(bucket) == 0 {
			continue
		}
		// Startpoint pins reseed constants and never change; stop there.
		live := bucket[:0]
		for _, p := range bucket {
			if e.spOfPin[p] < 0 {
				live = append(live, p)
			}
		}
		bucket = live
		if len(bucket) == 0 {
			continue
		}
		// Overlay queue storage is allocated serially: map writes must not
		// run inside the kernel (lower-level parents are read concurrently
		// through the same map).
		for _, p := range bucket {
			if o.pinQ[p] == nil {
				o.pinQ[p] = &pinOverlay{
					arr:  make([]float64, qlen),
					mean: make([]float64, qlen),
					std:  make([]float64, qlen),
					sp:   make([]int32, qlen),
				}
			}
		}
		if cap(changed) < len(bucket) {
			changed = make([]bool, len(bucket))
		}
		changed = changed[:len(bucket)]
		e.kern(KernelOverlay, l, len(bucket), func(lo, hi int) {
			snap := e.newSnapshotBuf()
			for i := lo; i < hi; i++ {
				changed[i] = o.recomputePin(bucket[i], snap)
			}
		})
		for i, p := range bucket {
			if !changed[i] {
				continue
			}
			if ep := e.epOfPin[p]; ep >= 0 {
				o.epDirty[ep] = true
			}
			for _, to := range foAdj[foStart[p]:foStart[p+1]] {
				push(to)
			}
		}
	}
	o.evalDirtyEndpoints()
}

// recomputePin rebuilds pin p's queues for every scenario inside the
// overlay from its fan-in as seen through the overlay, and reports whether
// any scenario's result differs from the previously visible queues. The
// merge is the general path of the batched forward kernel; for single-fan-in
// pins it produces the same bits as the shiftCopy fast path, as in core.
func (o *Overlay) recomputePin(p int32, snap *snapshotBuf) bool {
	e := o.e
	k := e.opt.TopK
	S := len(e.scns)
	for rf := 0; rf < 2; rf++ {
		for s := 0; s < S; s++ {
			arr, mean, std, sps := o.queues(rf, s, p)
			d := (rf*S + s) * k
			copy(snap.arr[d:d+k], arr)
			copy(snap.mean[d:d+k], mean)
			copy(snap.std[d:d+k], std)
			copy(snap.sp[d:d+k], sps)
		}
	}

	q := o.pinQ[p]
	lo, hi := e.faninStart[p], e.faninStart[p+1]
	for rf := 0; rf < 2; rf++ {
		clearQueues(q.arr[rf*S*k:(rf+1)*S*k], q.sp[rf*S*k:(rf+1)*S*k])
		for pos := lo; pos < hi; pos++ {
			arc := e.faninArc[pos]
			parent := e.faninFrom[pos]
			kind := e.arcKind[arc]
			am0, as0 := o.arcDelay(rf, arc)
			inRFs, n := liberty.Unate(e.faninSense[pos]).InRFs(rf)
			for ri := 0; ri < n; ri++ {
				for s := 0; s < S; s++ {
					am := am0 * e.scaleMean[kind][s]
					as := as0 * e.scaleStd[kind][s]
					b := (rf*S + s) * k
					arr := q.arr[b : b+k]
					mean := q.mean[b : b+k]
					std := q.std[b : b+k]
					sps := q.sp[b : b+k]
					_, pmean, pstd, psps := o.queues(inRFs[ri], s, parent)
					for kk := 0; kk < k; kk++ {
						psp := psps[kk]
						if psp == noSP {
							break
						}
						m := pmean[kk] + am
						ps := pstd[kk]
						if m+e.nSigma*(ps+as) <= arr[k-1] {
							continue
						}
						sg := math.Sqrt(ps*ps + as*as)
						core.InsertTopK(arr, mean, std, sps, m+e.nSigma*sg, m, sg, psp)
					}
				}
			}
		}
	}
	for i := 0; i < 2*S*k; i++ {
		if q.sp[i] != snap.sp[i] || q.arr[i] != snap.arr[i] ||
			q.mean[i] != snap.mean[i] || q.std[i] != snap.std[i] {
			return true
		}
	}
	return false
}

// evalDirtyEndpoints re-evaluates every dirty endpoint's slack in every
// scenario through the pool, in sorted endpoint order so the state is
// independent of map iteration order.
func (o *Overlay) evalDirtyEndpoints() {
	if len(o.epDirty) == 0 {
		return
	}
	e := o.e
	dirty := make([]int32, 0, len(o.epDirty))
	for ep := range o.epDirty {
		dirty = append(dirty, ep)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	ssp := e.tracer.StartArg(KernelOverlaySlack, "endpoints", int64(len(dirty)))
	defer ssp.End()
	S := len(e.scns)
	k := e.opt.TopK
	out := make([]float64, len(dirty)*S)
	e.kern(KernelOverlaySlack, -1, len(dirty), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ep := dirty[i]
			p := e.epPin[ep]
			for s := 0; s < S; s++ {
				best := math.Inf(1)
				for rf := 0; rf < 2; rf++ {
					arr, _, _, sps := o.queues(rf, s, p)
					for kk := 0; kk < k; kk++ {
						sp := sps[kk]
						if sp == noSP {
							break
						}
						adj := e.excLookup(e.spPin[sp], p)
						if adj.False {
							continue
						}
						req := e.epBase[rf][ep] +
							float64(adj.CycleCount()-1)*e.period +
							e.credit(e.spNode[sp], e.epNode[ep])
						if sl := req - arr[kk]; sl < best {
							best = sl
						}
					}
				}
				out[i*S+s] = best
			}
		}
	})
	for i, ep := range dirty {
		o.epSlack[ep] = append([]float64(nil), out[i*S:(i+1)*S]...)
		delete(o.epDirty, ep)
	}
}

// Slack returns endpoint i's slack in scenario s as seen through the
// overlay.
func (o *Overlay) Slack(s int, i int32) float64 {
	if sl, ok := o.epSlack[i]; ok {
		return sl[s]
	}
	return o.e.slack(s, i)
}

// MergedSlack returns endpoint i's worst slack across scenarios as seen
// through the overlay.
func (o *Overlay) MergedSlack(i int32) float64 {
	best := math.Inf(1)
	for s := range o.e.scns {
		if sl := o.Slack(s, i); sl < best {
			best = sl
		}
	}
	return best
}

// WNS returns scenario s's worst negative slack under the overlay, scanning
// endpoints in index order like the base engine.
func (o *Overlay) WNS(s int) float64 {
	w := 0.0
	for i := range o.e.epPin {
		if sl := o.Slack(s, int32(i)); sl < w {
			w = sl
		}
	}
	return w
}

// TNS returns scenario s's total negative slack under the overlay.
func (o *Overlay) TNS(s int) float64 {
	t := 0.0
	for i := range o.e.epPin {
		if sl := o.Slack(s, int32(i)); sl < 0 {
			t += sl
		}
	}
	return t
}

// MergedWNS returns the merged (per-endpoint worst scenario) WNS under the
// overlay.
func (o *Overlay) MergedWNS() float64 {
	w := 0.0
	for i := range o.e.epPin {
		if sl := o.MergedSlack(int32(i)); sl < w {
			w = sl
		}
	}
	return w
}

// MergedTNS returns the merged TNS under the overlay.
func (o *Overlay) MergedTNS() float64 {
	t := 0.0
	for i := range o.e.epPin {
		if sl := o.MergedSlack(int32(i)); sl < 0 {
			t += sl
		}
	}
	return t
}

// ChangedEndpoints returns the sorted indices of endpoints whose slacks the
// overlay re-evaluated.
func (o *Overlay) ChangedEndpoints() []int32 {
	out := make([]int32, 0, len(o.epSlack))
	for ep := range o.epSlack {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TouchedArcs returns the overlaid arc ids in first-annotation order.
func (o *Overlay) TouchedArcs() []int32 {
	return append([]int32(nil), o.touched...)
}

// OverlayStats summarizes the overlay's sparse footprint.
type OverlayStats struct {
	TouchedArcs int
	OverlayPins int
	ChangedEPs  int
}

// Stats reports the overlay's current sparse footprint.
func (o *Overlay) Stats() OverlayStats {
	return OverlayStats{
		TouchedArcs: len(o.arcDelta),
		OverlayPins: len(o.pinQ),
		ChangedEPs:  len(o.epSlack),
	}
}

// Reset discards all overlay state — the session rollback. The base is
// untouched.
func (o *Overlay) Reset() {
	o.arcDelta = make(map[int32]*[2][2]float64)
	o.touched = o.touched[:0]
	o.pending = o.pending[:0]
	o.pinQ = make(map[int32]*pinOverlay)
	o.epSlack = make(map[int32][]float64)
	o.epDirty = make(map[int32]bool)
}

// Rebase invalidates the overlay's derived state while keeping the nominal
// arc deltas, and schedules every touched arc for re-propagation — called
// when another session's commit moved the batched base.
func (o *Overlay) Rebase() {
	o.pinQ = make(map[int32]*pinOverlay)
	o.epSlack = make(map[int32][]float64)
	o.epDirty = make(map[int32]bool)
	o.pending = append(o.pending[:0], o.touched...)
}

// Commit folds the overlay's nominal arc deltas into the batched base,
// re-propagates the affected cone incrementally across all scenarios,
// re-evaluates every scenario's slacks, and resets the overlay. The caller
// must hold exclusive access to the base.
func (o *Overlay) Commit() {
	if len(o.touched) == 0 {
		return
	}
	e := o.e
	sp := e.tracer.StartArg("batch-overlay-commit", "arcs", int64(len(o.touched)))
	defer sp.End()
	for _, arc := range o.touched {
		od := o.arcDelta[arc]
		for rf := 0; rf < 2; rf++ {
			e.SetArcDelay(arc, rf, od[rf][0], od[rf][1])
		}
	}
	e.PropagateIncremental(o.touched)
	e.EvalSlacks()
	if e.hold != nil {
		e.EvalHoldSlacks()
	}
	o.Reset()
}
