// Package batch is the scenario-batched propagation subsystem: one INSTA
// engine that times S corners/modes in a single levelized traversal.
//
// The single-corner stack (internal/corners before this package existed)
// paid S full refsta builds, S extractions, S engine constructions and S
// propagations for an S-corner analysis. Here the graph topology, fan-in
// CSR, levelization, SP/EP tables, clock network and exception table are
// built once from the nominal extraction, and the per-pin arrival state is
// laid out as structure-of-arrays vectors with the scenario axis innermost:
// for every (transition, pin) the S scenarios' Top-K queues are contiguous,
// so the forward kernel walks the fan-in list once per pin and resolves each
// scenario's arc delay inside the inner loop from two scale factors —
// delay/RC scaling of the arc mean (by arc kind) and sigma scaling of the
// arc spread. Every kernel dispatches over the same internal/sched
// chunk-claiming pool as the single-corner engine, so an S-scenario
// propagation costs one traversal plus S× the queue arithmetic instead of S
// full engines.
//
// The scenario model is the industrial derate form (set_timing_derate):
// scenario s sees cell-arc delays scaled by DelayScale, net-arc delays by
// RCScale and all sigmas by SigmaScale, while launch arrivals, required
// times and the clock network are shared. ScaleTables materializes the same
// model as a standalone extraction, and the differential tests assert that
// every scenario of a batched engine is bit-identical to an independent
// core.Engine built from those scaled tables — at any worker count.
package batch

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"

	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/levelize"
	"insta/internal/netlist"
	"insta/internal/obs"
	"insta/internal/sched"
	"insta/internal/sdc"
)

// Scenario is one timing scenario (corner/mode) expressed as scale factors
// over the nominal characterization.
type Scenario struct {
	Name       string
	DelayScale float64 // cell-arc delay scaling
	SigmaScale float64 // POCV sigma scaling (cell and net arcs)
	RCScale    float64 // net-arc (interconnect) delay scaling
}

// DefaultScenarios returns the usual slow/typical/fast trio, matching the
// historical corners.DefaultCorners factors.
func DefaultScenarios() []Scenario {
	return []Scenario{
		{Name: "ss", DelayScale: 1.18, SigmaScale: 1.25, RCScale: 1.10},
		{Name: "tt", DelayScale: 1.00, SigmaScale: 1.00, RCScale: 1.00},
		{Name: "ff", DelayScale: 0.86, SigmaScale: 0.90, RCScale: 0.92},
	}
}

// ParseScenarios resolves a -corners flag value: a comma-separated list of
// scenario names, each either a DefaultScenarios name ("ss,tt,ff") or an
// explicit override "name:delay/sigma/rc" ("hot:1.3/1.4/1.2"). Names must be
// unique.
func ParseScenarios(spec string) ([]Scenario, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("batch: empty scenario spec")
	}
	known := make(map[string]Scenario)
	for _, s := range DefaultScenarios() {
		known[s.Name] = s
	}
	seen := make(map[string]bool)
	var out []Scenario
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		var scn Scenario
		if name, scales, ok := strings.Cut(field, ":"); ok {
			parts := strings.Split(scales, "/")
			if len(parts) != 3 {
				return nil, fmt.Errorf("batch: scenario %q: want name:delay/sigma/rc", field)
			}
			vals := make([]float64, 3)
			for i, p := range parts {
				v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("batch: scenario %q: bad scale %q", field, p)
				}
				vals[i] = v
			}
			scn = Scenario{Name: name, DelayScale: vals[0], SigmaScale: vals[1], RCScale: vals[2]}
		} else {
			var ok bool
			if scn, ok = known[field]; !ok {
				return nil, fmt.Errorf("batch: unknown scenario %q (defaults: ss, tt, ff; custom: name:delay/sigma/rc)", field)
			}
		}
		if seen[scn.Name] {
			return nil, fmt.Errorf("batch: duplicate scenario %q", scn.Name)
		}
		seen[scn.Name] = true
		out = append(out, scn)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("batch: empty scenario spec")
	}
	return out, nil
}

// ScaleTables returns a copy of t with every arc annotation scaled for one
// scenario — the standalone-extraction form of the derate model, used to
// build the independent single-corner engines the differential tests compare
// against. The multiplications here are the exact operations the batched
// kernel performs inline, so the results are bit-identical.
func ScaleTables(t *circuitops.Tables, scn Scenario) *circuitops.Tables {
	out := *t
	out.Arcs = make([]circuitops.ArcRow, len(t.Arcs))
	for i, a := range t.Arcs {
		ms := scn.DelayScale
		if a.Kind == 1 {
			ms = scn.RCScale
		}
		a.MeanRise *= ms
		a.MeanFall *= ms
		a.StdRise *= scn.SigmaScale
		a.StdFall *= scn.SigmaScale
		out.Arcs[i] = a
	}
	return &out
}

// noSP marks an empty Top-K queue slot (same sentinel as core).
const noSP = int32(-1)

// Kernel tags for scheduler instrumentation.
const (
	kForward     = "batch-forward"
	kHold        = "batch-hold"
	kSlack       = "batch-slack"
	kHoldSlack   = "batch-hold-slack"
	kIncremental = "batch-incremental"
	// KernelOverlay and KernelOverlaySlack are exported so serving tests can
	// assert a scenario-batched session evaluation stayed cone-limited.
	KernelOverlay      = "batch-overlay"
	KernelOverlaySlack = "batch-overlay-slack"
	// KernelForward is the full batched forward tag, exported for the same
	// no-full-propagate assertions.
	KernelForward = kForward
)

// Engine is a scenario-batched INSTA instance: one shared graph, S
// scenarios' arrival state propagated together.
type Engine struct {
	opt     core.Options
	scns    []Scenario
	numPins int
	period  float64
	nSigma  float64

	// Per-kind per-scenario scale factors the inner kernel resolves arc
	// delays through: index [arcKind][scenario].
	scaleMean [2][]float64
	scaleStd  [2][]float64

	// Fan-in CSR over pins (shared across scenarios).
	faninStart []int32
	faninArc   []int32
	faninFrom  []int32
	faninSense []uint8

	// Nominal arc annotations, indexed by arc id, per output rf.
	arcMean [2][]float64
	arcStd  [2][]float64
	arcKind []uint8
	arcFrom []int32
	arcTo   []int32

	lv *levelize.Result

	// Startpoints / endpoints (shared: the derate model does not move launch
	// arrivals or required times).
	spPin   []int32
	spNode  []int32
	spMean  []float64
	spStd   []float64
	spOfPin []int32
	epPin   []int32
	epNode  []int32
	epBase  [2][]float64
	epOfPin []int32

	clkParent []int32
	clkCumVar []float64
	clkDepth  []int32

	exc *sdc.ExceptionTable

	// Top-K state, SoA with the scenario axis innermost-but-one:
	// index (((rf*numPins)+pin)*S + s)*K + k. One pin's S scenario queues
	// are contiguous, so the batched kernel streams them under one fan-in
	// walk.
	topArr  []float64
	topMean []float64
	topStd  []float64
	topSP   []int32

	// Per-scenario endpoint slacks, index s*numEPs + i.
	epSlack []float64

	hold *holdState

	// Fan-out CSR (incremental propagation, overlay wavefronts).
	foStart, foAdj []int32

	pool   *sched.Pool
	tracer *obs.Tracer // phase/level span recording; nil is a free no-op

	inc  *propScratch // reusable incremental-propagation state (lazily built)
	plan []levelGroup // fused-level launch plan (lazily built)
}

// levelGroup is a run of consecutive timing levels dispatched as one kernel
// launch; groups wider than one level fit within the pool's serial cutoff, so
// the fused launch runs inline on the caller in level order — see
// core.Engine.levelPlan for the full argument.
type levelGroup struct {
	lo, hi int // levels [lo, hi)
	spans  int // total pins across the group
}

// levelPlan lazily builds the fused-level launch plan.
func (e *Engine) levelPlan() []levelGroup {
	if e.plan != nil {
		return e.plan
	}
	cutoff := e.pool.SerialCutoff()
	plan := make([]levelGroup, 0, e.lv.NumLevels)
	for l := 0; l < e.lv.NumLevels; l++ {
		n := len(e.lv.Nodes(l))
		if len(plan) > 0 {
			g := &plan[len(plan)-1]
			if g.spans+n <= cutoff {
				g.hi, g.spans = l+1, g.spans+n
				continue
			}
		}
		plan = append(plan, levelGroup{lo: l, hi: l + 1, spans: n})
	}
	e.plan = plan
	return plan
}

// New initializes a scenario-batched engine from the nominal extraction
// tables. opt carries the same knobs as core.Options (TopK, Hold, Workers,
// Grain); LegacySpawn is not supported here — every kernel runs on the
// persistent pool. Like the single-corner NewEngine it is compiled-state
// construction (core.Compile) followed by NewFromState, so warm-started
// batched engines (internal/snap) are bit-identical to cold-built ones.
func New(t *circuitops.Tables, scns []Scenario, opt core.Options) (*Engine, error) {
	if err := validateBatch(scns, opt); err != nil {
		return nil, err
	}
	build := opt.Tracer.StartArg("batch-engine-build", "pins", int64(t.NumPins))
	defer build.End()
	st, err := core.CompileTraced(t, build)
	if err != nil {
		return nil, err
	}
	return newFromState(st, scns, opt)
}

// NewFromState stands up a scenario-batched engine over an already compiled
// state — the warm-start constructor (see core.NewEngineFromState). The
// state's skeleton is shared read-only; the nominal arc annotations are
// copied so SetArcDelay stays private to this engine.
func NewFromState(st *core.State, scns []Scenario, opt core.Options) (*Engine, error) {
	if err := validateBatch(scns, opt); err != nil {
		return nil, err
	}
	sp := opt.Tracer.StartArg("batch-engine-restore", "pins", int64(st.NumPins))
	defer sp.End()
	return newFromState(st, scns, opt)
}

// NewSeeded stands up a batched engine over st — the compiled state of a
// structurally edited netlist — warm-started from prev, a fully evaluated
// batched engine over the pre-edit netlist with the same scenarios, TopK and
// hold setting, by re-propagating only the fan-out cone of the seed pins
// (every pin whose fan-in set changed, including appended pins) in all
// scenarios at once. The result is bit-identical to a cold
// NewFromState(st, scns, opt) + Run(), by the same argument as
// core.NewEngineSeeded: pin ids are stable across structural edits, so
// prev's converged per-scenario planes are valid arrival state outside the
// seeds' cone, and the equality-stopping wavefront recomputes the rest.
func NewSeeded(st *core.State, prev *Engine, seeds []int32, scns []Scenario, opt core.Options) (*Engine, error) {
	if err := validateBatch(scns, opt); err != nil {
		return nil, err
	}
	if prev == nil {
		return nil, fmt.Errorf("batch: NewSeeded requires a previous engine")
	}
	if opt.TopK != prev.opt.TopK {
		return nil, fmt.Errorf("batch: seeded engine TopK %d != previous %d", opt.TopK, prev.opt.TopK)
	}
	if opt.Hold != (prev.hold != nil) {
		return nil, fmt.Errorf("batch: seeded engine hold=%v != previous %v", opt.Hold, prev.hold != nil)
	}
	if len(scns) != len(prev.scns) {
		return nil, fmt.Errorf("batch: seeded engine has %d scenarios, previous %d", len(scns), len(prev.scns))
	}
	for i, s := range scns {
		if s != prev.scns[i] {
			return nil, fmt.Errorf("batch: seeded scenario %d (%q) differs from previous (%q)", i, s.Name, prev.scns[i].Name)
		}
	}
	if st.NumPins < prev.numPins {
		return nil, fmt.Errorf("batch: pin count shrank %d -> %d (pins are append-only)", prev.numPins, st.NumPins)
	}
	sp := opt.Tracer.StartArg("batch-engine-seed", "seeds", int64(len(seeds)))
	defer sp.End()
	e, err := newFromState(st, scns, opt)
	if err != nil {
		return nil, err
	}

	// Per-rf block copy of prev's converged planes: the tensors are rf-major
	// ((((rf*numPins)+pin)*S+s)*K), so each rf block of prev.numPins*S*K
	// entries relocates when numPins grows.
	k, S := opt.TopK, len(scns)
	blk := prev.numPins * S * k
	for rf := 0; rf < 2; rf++ {
		dst, src := rf*st.NumPins*S*k, rf*blk
		copy(e.topArr[dst:dst+blk], prev.topArr[src:src+blk])
		copy(e.topMean[dst:dst+blk], prev.topMean[src:src+blk])
		copy(e.topStd[dst:dst+blk], prev.topStd[src:src+blk])
		copy(e.topSP[dst:dst+blk], prev.topSP[src:src+blk])
		if e.hold != nil {
			copy(e.hold.negArr[dst:dst+blk], prev.hold.negArr[src:src+blk])
			copy(e.hold.mean[dst:dst+blk], prev.hold.mean[src:src+blk])
			copy(e.hold.std[dst:dst+blk], prev.hold.std[src:src+blk])
			copy(e.hold.sp[dst:dst+blk], prev.hold.sp[src:src+blk])
		}
		// Appended pins start with empty queues in every scenario, exactly
		// like a cold engine entering its first propagatePin.
		if st.NumPins > prev.numPins {
			lo := e.qbase(rf, int32(prev.numPins), 0)
			hi := e.qbase(rf, int32(st.NumPins-1), S-1) + k
			clearQueues(e.topArr[lo:hi], e.topSP[lo:hi])
			if e.hold != nil {
				clearQueues(e.hold.negArr[lo:hi], e.hold.sp[lo:hi])
			}
		}
	}

	e.PropagateIncrementalPins(seeds)
	e.EvalSlacks()
	if e.hold != nil {
		e.EvalHoldSlacks()
	}
	return e, nil
}

// validateBatch checks the scenario list and analysis knobs shared by both
// constructors.
func validateBatch(scns []Scenario, opt core.Options) error {
	if len(scns) == 0 {
		return fmt.Errorf("batch: no scenarios given")
	}
	if opt.TopK < 1 {
		return fmt.Errorf("batch: TopK must be >= 1, got %d", opt.TopK)
	}
	for _, s := range scns {
		if s.DelayScale <= 0 || s.SigmaScale <= 0 || s.RCScale <= 0 {
			return fmt.Errorf("batch: scenario %q has non-positive scale", s.Name)
		}
	}
	return nil
}

// newFromState builds the batched engine body over a compiled state; both
// constructors funnel here after validation and span setup.
func newFromState(st *core.State, scns []Scenario, opt core.Options) (*Engine, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.NumCPU()
	}
	e := &Engine{
		opt:     opt,
		scns:    append([]Scenario(nil), scns...),
		numPins: st.NumPins,
		period:  st.Period,
		nSigma:  st.NSigma,
		pool:    sched.New(opt.Workers, opt.Grain),
		tracer:  opt.Tracer,
	}
	S := len(scns)
	for kind := 0; kind < 2; kind++ {
		e.scaleMean[kind] = make([]float64, S)
		e.scaleStd[kind] = make([]float64, S)
	}
	for s, scn := range scns {
		e.scaleMean[0][s] = scn.DelayScale
		e.scaleMean[1][s] = scn.RCScale
		e.scaleStd[0][s] = scn.SigmaScale
		e.scaleStd[1][s] = scn.SigmaScale
	}

	// Shared skeleton: topology, schedule, SP/EP, clock. The nominal arc
	// annotations are copied — SetArcDelay must not leak across engines
	// sharing one compiled state.
	e.faninStart, e.faninArc, e.faninFrom, e.faninSense =
		st.FaninStart, st.FaninArc, st.FaninFrom, st.FaninSense
	for rf := 0; rf < 2; rf++ {
		e.arcMean[rf] = append([]float64(nil), st.ArcMean[rf]...)
		e.arcStd[rf] = append([]float64(nil), st.ArcStd[rf]...)
	}
	e.arcKind, e.arcFrom, e.arcTo = st.ArcKind, st.ArcFrom, st.ArcTo
	e.lv = &levelize.Result{
		Level:      st.LvLevel,
		NumLevels:  st.NumLevels,
		Order:      st.LvOrder,
		LevelStart: st.LvLevelStart,
	}
	e.spPin, e.spNode, e.spMean, e.spStd, e.spOfPin =
		st.SpPin, st.SpNode, st.SpMean, st.SpStd, st.SpOfPin
	e.epPin, e.epNode, e.epBase, e.epOfPin = st.EpPin, st.EpNode, st.EpBase, st.EpOfPin
	e.clkParent, e.clkCumVar, e.clkDepth = st.ClkParent, st.ClkCumVar, st.ClkDepth
	e.foStart, e.foAdj = st.FoStart, st.FoAdj

	var err error
	if e.exc, err = st.CompileExceptions(); err != nil {
		return nil, err
	}

	k := opt.TopK
	sz := 2 * st.NumPins * S * k
	e.topArr = make([]float64, sz)
	e.topMean = make([]float64, sz)
	e.topStd = make([]float64, sz)
	e.topSP = make([]int32, sz)
	e.epSlack = make([]float64, S*len(st.EpPin))
	if opt.Hold {
		e.initHold(st.EpHold[0], st.EpHold[1])
	}
	return e, nil
}

// kern dispatches one kernel launch over [0, n) through the engine's pool.
func (e *Engine) kern(tag string, level, n int, fn func(lo, hi int)) {
	e.pool.RunTagged(tag, level, n, fn)
}

// kernIndexed is kern with participant identity for indexing per-worker
// scratch; ids are dense in [0, Pool().Workers()).
func (e *Engine) kernIndexed(tag string, level, n int, fn func(id, lo, hi int)) {
	e.pool.RunIndexed(tag, level, n, fn)
}

// qbase returns the flat offset of (rf, pin, scenario)'s Top-K block.
func (e *Engine) qbase(rf int, pin int32, s int) int {
	return ((((rf * e.numPins) + int(pin)) * len(e.scns)) + s) * e.opt.TopK
}

// Close releases the engine's worker pool. Idempotent; the engine must not
// be used afterwards.
func (e *Engine) Close() { e.pool.Close() }

// Pool returns the engine's persistent scheduler pool.
func (e *Engine) Pool() *sched.Pool { return e.pool }

// EnableKernelStats attaches a telemetry collector to the pool and returns
// the engine for chaining-free use; see core.Engine.EnableKernelStats.
func (e *Engine) EnableKernelStats() *sched.Stats {
	if e.pool.Stats() == nil {
		e.pool.SetStats(sched.NewStats())
	}
	return e.pool.Stats()
}

// KernelStats snapshots the collected kernel profiles (nil before
// EnableKernelStats).
func (e *Engine) KernelStats() []sched.KernelProfile {
	if s := e.pool.Stats(); s != nil {
		return s.Snapshot()
	}
	return nil
}

// SetTracer attaches (or detaches, with nil) a span tracer recording the
// engine's phase and per-level timings. Safe to call between passes; not
// concurrently with one.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Tracer returns the attached span tracer (nil when none).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Scenarios returns the engine's scenario list in propagation order.
func (e *Engine) Scenarios() []Scenario { return e.scns }

// NumScenarios returns S.
func (e *Engine) NumScenarios() int { return len(e.scns) }

// ScenarioIndex resolves a scenario name, or -1.
func (e *Engine) ScenarioIndex(name string) int {
	for i, s := range e.scns {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// NumPins returns the pin count of the shared graph.
func (e *Engine) NumPins() int { return e.numPins }

// NumArcs returns the arc count of the shared graph.
func (e *Engine) NumArcs() int { return len(e.arcFrom) }

// NumLevels returns the timing level count — unchanged by S: the batched
// traversal visits each level once regardless of scenario count.
func (e *Engine) NumLevels() int { return e.lv.NumLevels }

// TopK returns the configured K.
func (e *Engine) TopK() int { return e.opt.TopK }

// Options returns the engine's construction options (topo sessions use them
// to build seeded engines with the base engine's exact configuration).
func (e *Engine) Options() core.Options { return e.opt }

// HoldEnabled reports whether the engine propagates early arrivals.
func (e *Engine) HoldEnabled() bool { return e.hold != nil }

// Endpoints returns the endpoint pin ids in extraction order.
func (e *Engine) Endpoints() []int32 { return e.epPin }

// ArcKind returns arc's annotation kind (0 = cell arc, 1 = net arc) — the
// axis the per-scenario mean scale factor is selected on.
func (e *Engine) ArcKind(arc int32) uint8 { return e.arcKind[arc] }

// ArcDelayScale returns the mean/std scale factors scenario s applies to
// arc's annotation — the factors the inner kernel resolves.
func (e *Engine) ArcDelayScale(arc int32, s int) (mean, std float64) {
	kind := e.arcKind[arc]
	return e.scaleMean[kind][s], e.scaleStd[kind][s]
}

// SetArcDelay re-annotates one arc's *nominal* delay distribution for output
// transition rf; every scenario sees it through its scale factors. This is
// the ECO re-annotation entry point — deltas stay in nominal units exactly
// like the single-corner engine's.
func (e *Engine) SetArcDelay(arc int32, rf int, mean, std float64) {
	e.arcMean[rf][arc] = mean
	e.arcStd[rf][arc] = std
}

// ArcDelay returns arc's nominal annotation for transition rf.
func (e *Engine) ArcDelay(arc int32, rf int) (mean, std float64) {
	return e.arcMean[rf][arc], e.arcStd[rf][arc]
}

// MemoryBytes returns the resident footprint of the batched tensors and
// shared topology — the amortization ledger: the Top-K tensors grow S×, the
// graph does not.
func (e *Engine) MemoryBytes() int64 {
	var b int64
	b += int64(len(e.topArr)+len(e.topMean)+len(e.topStd)) * 8
	b += int64(len(e.topSP)) * 4
	b += int64(len(e.arcFrom)) * (8*4 + 2*4 + 1)
	b += int64(len(e.faninArc)+len(e.faninFrom)) * 4
	b += int64(len(e.faninSense))
	b += int64(len(e.faninStart)+len(e.spOfPin)+len(e.epOfPin)) * 4
	b += int64(len(e.lv.Order)+len(e.lv.Level)+len(e.lv.LevelStart)) * 4
	b += int64(len(e.foStart)+len(e.foAdj)) * 4
	b += int64(len(e.epSlack)) * 8
	if e.hold != nil {
		b += int64(len(e.hold.negArr)+len(e.hold.mean)+len(e.hold.std)) * 8
		b += int64(len(e.hold.sp)) * 4
	}
	return b
}

// lca returns the lowest common ancestor of two clock nodes.
func (e *Engine) lca(a, b int32) int32 {
	for e.clkDepth[a] > e.clkDepth[b] {
		a = e.clkParent[a]
	}
	for e.clkDepth[b] > e.clkDepth[a] {
		b = e.clkParent[b]
	}
	for a != b {
		a = e.clkParent[a]
		b = e.clkParent[b]
	}
	return a
}

// credit returns the CPPR common-path credit for launch node l and capture
// node c — shared across scenarios (the clock network is not derated).
func (e *Engine) credit(l, c int32) float64 {
	return 2 * e.nSigma * math.Sqrt(e.clkCumVar[e.lca(l, c)])
}

// excLookup adapts the pin-keyed sdc exception table.
func (e *Engine) excLookup(spPin, epPin int32) sdc.Adjust {
	return e.exc.Lookup(netlist.PinID(spPin), netlist.PinID(epPin))
}
