package batch

import "math"

// EvalSlacks computes every endpoint's setup slack in every scenario from
// the propagated batched arrivals, in one endpoint sweep: the per-startpoint
// required times (base requirement + multicycle periods + CPPR credit) are
// resolved once per retained startpoint and shared across the scenario loop,
// since the derate model keeps requirements and the clock network nominal.
// The result for scenario s lands in the s-th stripe of the slack tensor;
// untimed endpoints carry +Inf.
func (e *Engine) EvalSlacks() {
	sp := e.tracer.StartArg(kSlack, "scenarios", int64(len(e.scns)))
	defer sp.End()
	k := e.opt.TopK
	S := len(e.scns)
	nEP := len(e.epPin)
	e.kern(kSlack, -1, nEP, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := e.epPin[i]
			for s := 0; s < S; s++ {
				best := math.Inf(1)
				for rf := 0; rf < 2; rf++ {
					b := e.qbase(rf, p, s)
					for kk := 0; kk < k; kk++ {
						sp := e.topSP[b+kk]
						if sp == noSP {
							break
						}
						adj := e.excLookup(e.spPin[sp], p)
						if adj.False {
							continue
						}
						req := e.epBase[rf][i] +
							float64(adj.CycleCount()-1)*e.period +
							e.credit(e.spNode[sp], e.epNode[i])
						if sl := req - e.topArr[b+kk]; sl < best {
							best = sl
						}
					}
				}
				e.epSlack[s*nEP+i] = best
			}
		}
	})
}

// Run performs a full batched evaluation: Propagate, EvalSlacks and — when
// hold is enabled — EvalHoldSlacks.
func (e *Engine) Run() {
	e.Propagate()
	e.EvalSlacks()
	if e.hold != nil {
		e.EvalHoldSlacks()
	}
}

// Slacks returns a copy of scenario s's endpoint slacks from the last
// evaluation.
func (e *Engine) Slacks(s int) []float64 {
	nEP := len(e.epPin)
	out := make([]float64, nEP)
	copy(out, e.epSlack[s*nEP:(s+1)*nEP])
	return out
}

// SlacksInto copies scenario s's endpoint slacks into dst, growing it only
// when too small, and returns the filled slice — the allocation-free serving
// read (pass dst[:0]-style reusable buffers).
func (e *Engine) SlacksInto(s int, dst []float64) []float64 {
	nEP := len(e.epPin)
	if cap(dst) < nEP {
		dst = make([]float64, nEP)
	}
	dst = dst[:nEP]
	copy(dst, e.epSlack[s*nEP:(s+1)*nEP])
	return dst
}

// MergedSlacksInto writes the per-endpoint worst slack across scenarios into
// dst, growing it only when too small — the allocation-free form of
// Merged().Slacks for serving reads that need no per-scenario attribution.
func (e *Engine) MergedSlacksInto(dst []float64) []float64 {
	nEP := len(e.epPin)
	S := len(e.scns)
	if cap(dst) < nEP {
		dst = make([]float64, nEP)
	}
	dst = dst[:nEP]
	for i := 0; i < nEP; i++ {
		best := e.epSlack[i]
		for s := 1; s < S; s++ {
			if sl := e.epSlack[s*nEP+i]; sl < best {
				best = sl
			}
		}
		dst[i] = best
	}
	return dst
}

// slack returns endpoint i's slack in scenario s without copying.
func (e *Engine) slack(s int, i int32) float64 {
	return e.epSlack[s*len(e.epPin)+int(i)]
}

// WNS returns scenario s's worst negative slack (0 when nothing violates).
func (e *Engine) WNS(s int) float64 {
	w := 0.0
	nEP := len(e.epPin)
	for _, sl := range e.epSlack[s*nEP : (s+1)*nEP] {
		if sl < w {
			w = sl
		}
	}
	return w
}

// TNS returns scenario s's total negative slack.
func (e *Engine) TNS(s int) float64 {
	t := 0.0
	nEP := len(e.epPin)
	for _, sl := range e.epSlack[s*nEP : (s+1)*nEP] {
		if sl < 0 {
			t += sl
		}
	}
	return t
}

// NumViolations counts scenario s's endpoints with negative slack.
func (e *Engine) NumViolations(s int) int {
	n := 0
	nEP := len(e.epPin)
	for _, sl := range e.epSlack[s*nEP : (s+1)*nEP] {
		if sl < 0 {
			n++
		}
	}
	return n
}

// ScenarioMetrics is one scenario's summary line in a merged view.
type ScenarioMetrics struct {
	Name       string
	WNS, TNS   float64
	Violations int
}

// MergedView is the multi-scenario signoff picture: the worst slack per
// endpoint across scenarios, which scenario set it, and WNS/TNS both per
// scenario and merged (per-endpoint worst corner).
type MergedView struct {
	Slacks      []float64 // per endpoint: min over scenarios
	WorstOf     []int     // per endpoint: scenario index of the minimum, -1 if untimed everywhere
	WNS, TNS    float64   // over the merged slacks
	Violations  int
	PerScenario []ScenarioMetrics
}

// WorstName returns the scenario name behind endpoint i's merged slack, or
// "" when the endpoint is untimed in every scenario.
func (v *MergedView) WorstName(names []Scenario, i int) string {
	if v.WorstOf[i] < 0 {
		return ""
	}
	return names[v.WorstOf[i]].Name
}

// Merged builds the merged view from the last evaluation. Ties between
// scenarios resolve to the lowest scenario index, so the view is
// deterministic for any worker count.
func (e *Engine) Merged() *MergedView {
	nEP := len(e.epPin)
	S := len(e.scns)
	v := &MergedView{
		Slacks:  make([]float64, nEP),
		WorstOf: make([]int, nEP),
	}
	for i := 0; i < nEP; i++ {
		best := math.Inf(1)
		worst := -1
		for s := 0; s < S; s++ {
			if sl := e.epSlack[s*nEP+i]; sl < best {
				best = sl
				worst = s
			}
		}
		v.Slacks[i] = best
		v.WorstOf[i] = worst
		if best < 0 {
			v.Violations++
			v.TNS += best
			if best < v.WNS {
				v.WNS = best
			}
		}
	}
	v.PerScenario = make([]ScenarioMetrics, S)
	for s := 0; s < S; s++ {
		v.PerScenario[s] = ScenarioMetrics{
			Name:       e.scns[s].Name,
			WNS:        e.WNS(s),
			TNS:        e.TNS(s),
			Violations: e.NumViolations(s),
		}
	}
	return v
}
