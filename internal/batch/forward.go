package batch

import (
	"math"

	"insta/internal/core"
	"insta/internal/liberty"
)

// Propagate runs the batched forward kernel: one level-synchronous traversal
// carrying every scenario's Top-K arrival state. Pins within a level are
// independent and are distributed over the pool by atomic chunk claiming,
// exactly like the single-corner engine — the level count, the fan-in walks
// and the dispatch are paid once, not S times.
func (e *Engine) Propagate() {
	sp := e.tracer.StartArg(kForward, "scenarios", int64(len(e.scns)))
	for _, g := range e.levelPlan() {
		lsp := sp.ChildArg("level", "level", int64(g.lo))
		if g.hi == g.lo+1 {
			pins := e.lv.Nodes(g.lo)
			e.kern(kForward, g.lo, len(pins), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					e.propagatePin(pins[i])
				}
			})
		} else {
			// Fused narrow levels: g.spans <= the pool's serial cutoff, so
			// this launch is one inline chunk and the level-order walk
			// preserves inter-level dependencies.
			e.kern(kForward, g.lo, g.spans, func(lo, hi int) {
				for l := g.lo; l < g.hi; l++ {
					for _, p := range e.lv.Nodes(l) {
						e.propagatePin(p)
					}
				}
			})
		}
		lsp.End()
	}
	sp.End()
	if e.hold != nil {
		e.propagateHold()
	}
}

// propagatePin recomputes pin p's per-scenario Top-K queues for both
// transitions. The fan-in CSR is walked once per transition; the scenario
// loop sits inside the per-arc contribution, resolving each scenario's arc
// delay from the per-kind scale factors. For a fixed scenario the insertion
// order over (arc position, input transition, parent slot) is identical to
// core.Engine's kernel, which is what makes the per-scenario state
// bit-identical to an independent engine over ScaleTables output.
func (e *Engine) propagatePin(p int32) {
	if sp := e.spOfPin[p]; sp >= 0 {
		e.initStartpoint(p, sp)
		return
	}
	k := e.opt.TopK
	S := len(e.scns)
	lo, hi := e.faninStart[p], e.faninStart[p+1]
	for rf := 0; rf < 2; rf++ {
		qb := e.qbase(rf, p, 0) // scenario 0; blocks for s=1..S-1 follow
		clearQueues(e.topArr[qb:qb+S*k], e.topSP[qb:qb+S*k])

		// Single-fan-in fast path, batched: shift every scenario's parent
		// queue by that scenario's scaled arc delay.
		if hi-lo == 1 && liberty.Unate(e.faninSense[lo]) != liberty.NonUnate {
			for s := 0; s < S; s++ {
				e.shiftCopy(rf, s, lo, p)
			}
			continue
		}

		for pos := lo; pos < hi; pos++ {
			arc := e.faninArc[pos]
			parent := e.faninFrom[pos]
			kind := e.arcKind[arc]
			am0 := e.arcMean[rf][arc]
			as0 := e.arcStd[rf][arc]
			inRFs, n := liberty.Unate(e.faninSense[pos]).InRFs(rf)
			for ri := 0; ri < n; ri++ {
				pb0 := e.qbase(inRFs[ri], parent, 0)
				for s := 0; s < S; s++ {
					am := am0 * e.scaleMean[kind][s]
					as := as0 * e.scaleStd[kind][s]
					pb := pb0 + s*k
					b := qb + s*k
					arr := e.topArr[b : b+k]
					mean := e.topMean[b : b+k]
					std := e.topStd[b : b+k]
					sps := e.topSP[b : b+k]
					for kk := 0; kk < k; kk++ {
						psp := e.topSP[pb+kk]
						if psp == noSP {
							break // queues are packed: empties trail
						}
						m := e.topMean[pb+kk] + am
						pstd := e.topStd[pb+kk]
						if m+e.nSigma*(pstd+as) <= arr[k-1] {
							continue
						}
						sg := math.Sqrt(pstd*pstd + as*as)
						core.InsertTopK(arr, mean, std, sps, m+e.nSigma*sg, m, sg, psp)
					}
				}
			}
		}
	}
}

// initStartpoint seeds a startpoint pin's queues in every scenario with the
// shared launch distribution (scenarios derate arcs, not launches).
func (e *Engine) initStartpoint(p, sp int32) {
	k := e.opt.TopK
	S := len(e.scns)
	for rf := 0; rf < 2; rf++ {
		for s := 0; s < S; s++ {
			b := e.qbase(rf, p, s)
			clearQueues(e.topArr[b:b+k], e.topSP[b:b+k])
			e.topMean[b] = e.spMean[sp]
			e.topStd[b] = e.spStd[sp]
			e.topArr[b] = e.spMean[sp] + e.nSigma*e.spStd[sp]
			e.topSP[b] = sp
		}
	}
}

// shiftCopy is the batched single-parent fast path for one scenario: shift
// the parent's queue by the scenario-scaled arc delay and restore descending
// order with a near-sorted insertion sort — the same arithmetic and stable
// ordering as core.Engine.shiftCopy.
func (e *Engine) shiftCopy(rf, s int, pos, p int32) {
	arc := e.faninArc[pos]
	parent := e.faninFrom[pos]
	inRFs, _ := liberty.Unate(e.faninSense[pos]).InRFs(rf)
	kind := e.arcKind[arc]
	am := e.arcMean[rf][arc] * e.scaleMean[kind][s]
	as := e.arcStd[rf][arc] * e.scaleStd[kind][s]
	pb := e.qbase(inRFs[0], parent, s)
	b := e.qbase(rf, p, s)
	k := e.opt.TopK
	arr := e.topArr[b : b+k]
	mean := e.topMean[b : b+k]
	std := e.topStd[b : b+k]
	sps := e.topSP[b : b+k]
	n := 0
	for kk := 0; kk < k; kk++ {
		psp := e.topSP[pb+kk]
		if psp == noSP {
			break
		}
		m := e.topMean[pb+kk] + am
		sg := math.Sqrt(e.topStd[pb+kk]*e.topStd[pb+kk] + as*as)
		arr[n] = m + e.nSigma*sg
		mean[n] = m
		std[n] = sg
		sps[n] = psp
		n++
	}
	for i := 1; i < n; i++ {
		a, m, sg, sp := arr[i], mean[i], std[i], sps[i]
		j := i - 1
		for j >= 0 && arr[j] < a {
			arr[j+1], mean[j+1], std[j+1], sps[j+1] = arr[j], mean[j], std[j], sps[j]
			j--
		}
		arr[j+1], mean[j+1], std[j+1], sps[j+1] = a, m, sg, sp
	}
}

// clearQueues resets a run of queue slots (possibly several scenarios'
// contiguous blocks at once).
func clearQueues(arr []float64, sps []int32) {
	for i := range arr {
		arr[i] = math.Inf(-1)
		sps[i] = noSP
	}
}

// TopEntries returns pin p's Top-K arrival entries for (transition rf,
// scenario s), for inspection and the differential tests.
func (e *Engine) TopEntries(rf int, p int32, s int) (arr, mean, std []float64, sps []int32) {
	k := e.opt.TopK
	b := e.qbase(rf, p, s)
	return e.topArr[b : b+k], e.topMean[b : b+k], e.topStd[b : b+k], e.topSP[b : b+k]
}
