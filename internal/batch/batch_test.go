package batch

import (
	"math"
	"testing"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/refsta"
)

// buildTables generates a small design and extracts the nominal tables.
func buildTables(t testing.TB, seed int64) *circuitops.Tables {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "batchtest", Seed: seed, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 8, Layers: 4, Width: 8,
		CrossFrac: 0.1, NumPIs: 3, NumPOs: 3,
		Period: 1, Uncertainty: 10, Die: 80, VioFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return circuitops.Extract(ref)
}

func TestParseScenarios(t *testing.T) {
	scns, err := ParseScenarios("ss,tt,ff")
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) != 3 || scns[0].Name != "ss" || scns[1].DelayScale != 1.0 || scns[2].Name != "ff" {
		t.Fatalf("default trio parsed wrong: %+v", scns)
	}
	scns, err = ParseScenarios("tt, hot:1.3/1.4/1.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) != 2 || scns[1].Name != "hot" || scns[1].DelayScale != 1.3 ||
		scns[1].SigmaScale != 1.4 || scns[1].RCScale != 1.2 {
		t.Fatalf("override parsed wrong: %+v", scns)
	}
	for _, bad := range []string{"", "nope", "ss,ss", "x:1.0/2.0", "x:a/b/c", "x:0/1/1", ","} {
		if _, err := ParseScenarios(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestScaleTablesScalesByKind(t *testing.T) {
	tab := buildTables(t, 11)
	scn := Scenario{Name: "x", DelayScale: 1.2, SigmaScale: 1.5, RCScale: 1.1}
	scaled := ScaleTables(tab, scn)
	if len(scaled.Arcs) != len(tab.Arcs) {
		t.Fatal("arc count changed")
	}
	cellSeen, netSeen := false, false
	for i, a := range tab.Arcs {
		sa := scaled.Arcs[i]
		ms := scn.DelayScale
		if a.Kind == 1 {
			ms = scn.RCScale
			netSeen = true
		} else {
			cellSeen = true
		}
		if sa.MeanRise != a.MeanRise*ms || sa.MeanFall != a.MeanFall*ms ||
			sa.StdRise != a.StdRise*scn.SigmaScale || sa.StdFall != a.StdFall*scn.SigmaScale {
			t.Fatalf("arc %d (kind %d) scaled wrong", i, a.Kind)
		}
	}
	if !cellSeen || !netSeen {
		t.Fatal("design has no cell/net arc mix")
	}
	// SP/EP/clock tables are shared, not copied-and-scaled.
	if &scaled.EPs[0] != &tab.EPs[0] || scaled.EPs[0].BaseReqRise != tab.EPs[0].BaseReqRise {
		t.Error("EP table should be shared untouched")
	}
	// Source left intact.
	if tab.Arcs[0].MeanRise == scaled.Arcs[0].MeanRise && scn.DelayScale != 1 && tab.Arcs[0].MeanRise != 0 {
		t.Error("scaling mutated the source tables")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	tab := buildTables(t, 12)
	if _, err := New(tab, nil, core.Options{TopK: 4}); err == nil {
		t.Error("empty scenario list accepted")
	}
	if _, err := New(tab, DefaultScenarios(), core.Options{TopK: 0}); err == nil {
		t.Error("TopK 0 accepted")
	}
	if _, err := New(tab, []Scenario{{Name: "bad"}}, core.Options{TopK: 4}); err == nil {
		t.Error("zero scales accepted")
	}
}

func TestScenarioOrderingSlowToFast(t *testing.T) {
	tab := buildTables(t, 13)
	e, err := New(tab, DefaultScenarios(), core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	ss, tt, ff := e.ScenarioIndex("ss"), e.ScenarioIndex("tt"), e.ScenarioIndex("ff")
	if ss < 0 || tt < 0 || ff < 0 {
		t.Fatal("scenario indices unresolved")
	}
	sSS, sTT, sFF := e.Slacks(ss), e.Slacks(tt), e.Slacks(ff)
	for i := range sTT {
		if math.IsInf(sTT[i], 0) {
			continue
		}
		if sSS[i] > sTT[i]+1e-9 || sTT[i] > sFF[i]+1e-9 {
			t.Fatalf("ep %d: corner ordering broken ss=%v tt=%v ff=%v", i, sSS[i], sTT[i], sFF[i])
		}
	}
	if e.WNS(ss) > e.WNS(tt) || e.TNS(ss) > e.TNS(tt) {
		t.Error("slow corner better than typical")
	}
}

func TestMergedViewSemantics(t *testing.T) {
	tab := buildTables(t, 14)
	e, err := New(tab, DefaultScenarios(), core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	v := e.Merged()
	S := e.NumScenarios()
	for i := range v.Slacks {
		min := math.Inf(1)
		for s := 0; s < S; s++ {
			if sl := e.slack(s, int32(i)); sl < min {
				min = sl
			}
		}
		if v.Slacks[i] != min {
			t.Fatalf("ep %d merged %v != min %v", i, v.Slacks[i], min)
		}
		if !math.IsInf(min, 1) {
			if v.WorstOf[i] < 0 || e.slack(v.WorstOf[i], int32(i)) != min {
				t.Fatalf("ep %d worst-of label wrong", i)
			}
			if v.WorstName(e.Scenarios(), i) == "" {
				t.Fatalf("ep %d has no worst scenario name", i)
			}
		}
	}
	// Merged metrics at least as bad as any scenario's.
	for s := 0; s < S; s++ {
		if v.WNS > e.WNS(s) || v.TNS > e.TNS(s) {
			t.Errorf("merged WNS/TNS better than scenario %d", s)
		}
		if v.PerScenario[s].WNS != e.WNS(s) || v.PerScenario[s].TNS != e.TNS(s) ||
			v.PerScenario[s].Violations != e.NumViolations(s) {
			t.Errorf("per-scenario metrics row %d disagrees with accessors", s)
		}
	}
}

func TestMemoryBytesGrowsWithScenariosNotGraph(t *testing.T) {
	tab := buildTables(t, 15)
	e1, err := New(tab, DefaultScenarios()[:1], core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	e3, err := New(tab, DefaultScenarios(), core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	m1, m3 := e1.MemoryBytes(), e3.MemoryBytes()
	if m3 <= m1 {
		t.Fatalf("S=3 footprint %d not larger than S=1 %d", m3, m1)
	}
	// The batched tensors triple but the shared graph does not, so total is
	// well under 3x.
	if m3 >= 3*m1 {
		t.Fatalf("S=3 footprint %d >= 3x S=1 %d — topology not shared?", m3, m1)
	}
}
