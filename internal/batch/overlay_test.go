package batch

import (
	"math"
	"testing"

	"insta/internal/core"
)

// pickECOArcs selects a deterministic spread of cell arcs to perturb.
func pickECOArcs(e *Engine, n int) []int32 {
	out := make([]int32, 0, n)
	step := e.NumArcs() / n
	if step == 0 {
		step = 1
	}
	for a := 0; a < e.NumArcs() && len(out) < n; a += step {
		out = append(out, int32(a))
	}
	return out
}

func TestOverlayPreviewMatchesCommit(t *testing.T) {
	tab := buildTables(t, 31)
	opt := core.Options{TopK: 8, Hold: true, Workers: 2}
	e, err := New(tab, DefaultScenarios(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()

	ov := NewOverlay(e)
	for _, a := range pickECOArcs(e, 5) {
		for rf := 0; rf < 2; rf++ {
			m, sd := e.ArcDelay(a, rf)
			ov.SetArcDelay(a, rf, m*1.4+2, sd*1.2)
		}
	}
	ov.Propagate()

	S := e.NumScenarios()
	preview := make([][]float64, S)
	for s := 0; s < S; s++ {
		preview[s] = make([]float64, len(e.Endpoints()))
		for i := range e.Endpoints() {
			preview[s][i] = ov.Slack(s, int32(i))
		}
	}
	pWNS := make([]float64, S)
	pTNS := make([]float64, S)
	for s := 0; s < S; s++ {
		pWNS[s], pTNS[s] = ov.WNS(s), ov.TNS(s)
	}
	pmWNS, pmTNS := ov.MergedWNS(), ov.MergedTNS()
	changed := ov.ChangedEndpoints()
	if len(changed) == 0 {
		t.Fatal("ECO touched no endpoints — test design is vacuous")
	}

	ov.Commit()
	if st := ov.Stats(); st.TouchedArcs != 0 || st.OverlayPins != 0 || st.ChangedEPs != 0 {
		t.Fatalf("commit left overlay state behind: %+v", st)
	}
	for s := 0; s < S; s++ {
		got := e.Slacks(s)
		for i := range got {
			if got[i] != preview[s][i] {
				t.Fatalf("scenario %d ep %d: committed %v != preview %v", s, i, got[i], preview[s][i])
			}
		}
		if e.WNS(s) != pWNS[s] || e.TNS(s) != pTNS[s] {
			t.Fatalf("scenario %d: committed WNS/TNS %v/%v != preview %v/%v",
				s, e.WNS(s), e.TNS(s), pWNS[s], pTNS[s])
		}
	}
	m := e.Merged()
	if m.WNS != pmWNS || m.TNS != pmTNS {
		t.Fatalf("merged WNS/TNS %v/%v != preview %v/%v", m.WNS, m.TNS, pmWNS, pmTNS)
	}
}

func TestOverlayMatchesIndependentScaledOverlays(t *testing.T) {
	tab := buildTables(t, 32)
	opt := core.Options{TopK: 8, Workers: 2}
	e, err := New(tab, diffScenarios, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()

	arcs := pickECOArcs(e, 4)
	ov := NewOverlay(e)
	for _, a := range arcs {
		m, sd := e.ArcDelay(a, 0)
		ov.SetArcDelay(a, 0, m*1.3+1, sd)
		m, sd = e.ArcDelay(a, 1)
		ov.SetArcDelay(a, 1, m*1.3+1, sd)
	}
	ov.Propagate()

	// Per scenario, a fresh single-corner engine over the scaled tables with
	// the same ECO applied (in that scenario's units) must agree bit-for-bit.
	for s, scn := range diffScenarios {
		se, err := core.NewEngine(ScaleTables(tab, scn), opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range arcs {
			kind := e.ArcKind(a)
			ms := scn.DelayScale
			if kind == 1 {
				ms = scn.RCScale
			}
			for rf := 0; rf < 2; rf++ {
				nm, nsd := ov.arcDelay(rf, a)
				d := se.ArcDelay(a, rf)
				d.Mean = nm * ms
				d.Std = nsd * scn.SigmaScale
				se.SetArcDelay(a, rf, d)
			}
		}
		want := se.Run()
		for i := range want {
			if got := ov.Slack(s, int32(i)); got != want[i] {
				t.Fatalf("scenario %s ep %d: overlay %v != independent %v", scn.Name, i, got, want[i])
			}
		}
		se.Close()
	}
}

func TestOverlayRollbackAndRebase(t *testing.T) {
	tab := buildTables(t, 33)
	e, err := New(tab, DefaultScenarios(), core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	base0 := e.Slacks(0)

	ov := NewOverlay(e)
	a := pickECOArcs(e, 1)[0]
	m, sd := e.ArcDelay(a, 0)
	ov.SetArcDelay(a, 0, m*2+5, sd)
	ov.Propagate()
	ov.Reset()
	for i := range base0 {
		if got := ov.Slack(0, int32(i)); got != base0[i] {
			t.Fatalf("after rollback ep %d: %v != base %v", i, got, base0[i])
		}
	}

	// Rebase: another writer moves the base; the overlay re-derives its view
	// and must match a fresh overlay with the same deltas.
	ov.SetArcDelay(a, 0, m*2+5, sd)
	ov.Propagate()
	b := pickECOArcs(e, 3)[2]
	for rf := 0; rf < 2; rf++ {
		bm, bsd := e.ArcDelay(b, rf)
		e.SetArcDelay(b, rf, bm*1.5+1, bsd)
	}
	e.PropagateIncremental([]int32{b})
	e.EvalSlacks()
	ov.Rebase()
	ov.Propagate()

	fresh := NewOverlay(e)
	fresh.SetArcDelay(a, 0, m*2+5, sd)
	fresh.Propagate()
	for i := range base0 {
		if g, w := ov.Slack(0, int32(i)), fresh.Slack(0, int32(i)); g != w {
			t.Fatalf("rebased overlay ep %d: %v != fresh overlay %v", i, g, w)
		}
	}
	if !math.IsInf(ov.MergedSlack(int32(0)), 0) && ov.MergedWNS() != fresh.MergedWNS() {
		t.Fatal("rebased merged WNS differs from fresh overlay")
	}
}
