package batch

// Scenario-batched hold (early/min-delay) analysis, mirroring core's hold
// extension: per (pin, transition, scenario) a fixed-size queue of the K
// smallest early-corner arrival distributions with unique startpoints,
// stored negated so core.InsertTopK's descending order yields the earliest
// arrivals. Enabled with Options.Hold; a setup-only engine pays nothing.

import (
	"math"

	"insta/internal/core"
	"insta/internal/liberty"
)

// holdState holds the batched early-arrival buffers.
type holdState struct {
	// Flattened like the late queues: index (((rf*numPins)+pin)*S+s)*K + k.
	negArr []float64
	mean   []float64
	std    []float64
	sp     []int32

	epHold  [2][]float64 // hold requirement (+Inf = unchecked), shared
	epSlack []float64    // per-scenario, index s*numEPs + i
}

// initHold allocates the batched hold buffers.
func (e *Engine) initHold(holdRise, holdFall []float64) {
	k := e.opt.TopK
	sz := 2 * e.numPins * len(e.scns) * k
	e.hold = &holdState{
		negArr:  make([]float64, sz),
		mean:    make([]float64, sz),
		std:     make([]float64, sz),
		sp:      make([]int32, sz),
		epSlack: make([]float64, len(e.scns)*len(e.epPin)),
	}
	e.hold.epHold[0] = holdRise
	e.hold.epHold[1] = holdFall
}

// propagateHold runs the batched early-arrival forward pass; Propagate calls
// it automatically when hold is enabled.
func (e *Engine) propagateHold() {
	sp := e.tracer.StartArg(kHold, "scenarios", int64(len(e.scns)))
	for _, g := range e.levelPlan() {
		lsp := sp.ChildArg("level", "level", int64(g.lo))
		if g.hi == g.lo+1 {
			pins := e.lv.Nodes(g.lo)
			e.kern(kHold, g.lo, len(pins), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					e.propagatePinMin(pins[i])
				}
			})
		} else {
			// Fused narrow levels run as one guaranteed-inline chunk; see
			// Propagate.
			e.kern(kHold, g.lo, g.spans, func(lo, hi int) {
				for l := g.lo; l < g.hi; l++ {
					for _, p := range e.lv.Nodes(l) {
						e.propagatePinMin(p)
					}
				}
			})
		}
		lsp.End()
	}
	sp.End()
}

func (e *Engine) propagatePinMin(p int32) {
	h := e.hold
	k := e.opt.TopK
	S := len(e.scns)
	if sp := e.spOfPin[p]; sp >= 0 {
		for rf := 0; rf < 2; rf++ {
			for s := 0; s < S; s++ {
				b := e.qbase(rf, p, s)
				clearQueues(h.negArr[b:b+k], h.sp[b:b+k])
				h.mean[b] = e.spMean[sp]
				h.std[b] = e.spStd[sp]
				h.negArr[b] = -(e.spMean[sp] - e.nSigma*e.spStd[sp])
				h.sp[b] = sp
			}
		}
		return
	}
	lo, hi := e.faninStart[p], e.faninStart[p+1]
	for rf := 0; rf < 2; rf++ {
		qb := e.qbase(rf, p, 0)
		clearQueues(h.negArr[qb:qb+S*k], h.sp[qb:qb+S*k])
		for pos := lo; pos < hi; pos++ {
			arc := e.faninArc[pos]
			parent := e.faninFrom[pos]
			kind := e.arcKind[arc]
			am0 := e.arcMean[rf][arc]
			as0 := e.arcStd[rf][arc]
			inRFs, n := liberty.Unate(e.faninSense[pos]).InRFs(rf)
			for ri := 0; ri < n; ri++ {
				pb0 := e.qbase(inRFs[ri], parent, 0)
				for s := 0; s < S; s++ {
					am := am0 * e.scaleMean[kind][s]
					as := as0 * e.scaleStd[kind][s]
					pb := pb0 + s*k
					b := qb + s*k
					negArr := h.negArr[b : b+k]
					mean := h.mean[b : b+k]
					std := h.std[b : b+k]
					sps := h.sp[b : b+k]
					for kk := 0; kk < k; kk++ {
						psp := h.sp[pb+kk]
						if psp == noSP {
							break
						}
						m := h.mean[pb+kk] + am
						pstd := h.std[pb+kk]
						sg := math.Sqrt(pstd*pstd + as*as)
						core.InsertTopK(negArr, mean, std, sps, -(m - e.nSigma*sg), m, sg, psp)
					}
				}
			}
		}
	}
}

// EvalHoldSlacks evaluates hold slacks per scenario from the batched early
// arrivals: slack = earlyArrival - holdReq + credit(sp, ep), minimized over
// startpoints and transitions. Unchecked endpoints carry +Inf. Requires
// Options.Hold and a prior Propagate.
func (e *Engine) EvalHoldSlacks() {
	sp := e.tracer.StartArg(kHoldSlack, "scenarios", int64(len(e.scns)))
	defer sp.End()
	h := e.hold
	k := e.opt.TopK
	S := len(e.scns)
	nEP := len(e.epPin)
	e.kern(kHoldSlack, -1, nEP, func(lo, hiI int) {
		for i := lo; i < hiI; i++ {
			p := e.epPin[i]
			for s := 0; s < S; s++ {
				best := math.Inf(1)
				for rf := 0; rf < 2; rf++ {
					req := h.epHold[rf][i]
					if math.IsInf(req, 1) {
						continue
					}
					b := e.qbase(rf, p, s)
					for kk := 0; kk < k; kk++ {
						sp := h.sp[b+kk]
						if sp == noSP {
							break
						}
						adj := e.excLookup(e.spPin[sp], p)
						if adj.False {
							continue
						}
						early := -h.negArr[b+kk]
						if sl := early - req + e.credit(e.spNode[sp], e.epNode[i]); sl < best {
							best = sl
						}
					}
				}
				h.epSlack[s*nEP+i] = best
			}
		}
	})
}

// HoldSlacks returns a copy of scenario s's hold slacks.
func (e *Engine) HoldSlacks(s int) []float64 {
	nEP := len(e.epPin)
	out := make([]float64, nEP)
	copy(out, e.hold.epSlack[s*nEP:(s+1)*nEP])
	return out
}

// HoldWNS returns scenario s's worst negative hold slack.
func (e *Engine) HoldWNS(s int) float64 {
	w := 0.0
	nEP := len(e.epPin)
	for _, sl := range e.hold.epSlack[s*nEP : (s+1)*nEP] {
		if sl < w {
			w = sl
		}
	}
	return w
}

// HoldTNS returns scenario s's total negative hold slack.
func (e *Engine) HoldTNS(s int) float64 {
	t := 0.0
	nEP := len(e.epPin)
	for _, sl := range e.hold.epSlack[s*nEP : (s+1)*nEP] {
		if sl < 0 {
			t += sl
		}
	}
	return t
}
