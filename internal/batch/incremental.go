package batch

// Incremental batched propagation: after a nominal re-annotation of a few
// arcs (an ECO commit), only the fan-out cone of the touched arcs can change
// — in any scenario. The wavefront walks the shared level schedule once,
// recomputes every scenario's queues for the cone pins, and stops where all
// S scenarios' queues come out bit-identical; one traversal folds the ECO
// into all corners.

// fanoutCSR builds the pin fan-out adjacency: slot i of
// [foStart[p], foStart[p+1]) holds destination pin foAdj[i].
func (e *Engine) fanoutCSR() (start, adj []int32) {
	if e.foStart != nil {
		return e.foStart, e.foAdj
	}
	n := e.numPins
	counts := make([]int32, n+1)
	for i := range e.arcFrom {
		counts[e.arcFrom[i]+1]++
	}
	start = make([]int32, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + counts[i+1]
	}
	adj = make([]int32, len(e.arcFrom))
	cursor := make([]int32, n)
	for i := range e.arcFrom {
		f := e.arcFrom[i]
		adj[start[f]+cursor[f]] = e.arcTo[i]
		cursor[f]++
	}
	e.foStart, e.foAdj = start, adj
	return start, adj
}

// PropagateIncremental re-propagates only the fan-out cone of the given
// arcs across all scenarios, assuming every other annotation is unchanged
// since the last Propagate. Each level's bucket runs through the pool; the
// wavefront expansion is serial in bucket order, so the state is
// bit-identical to a full Propagate for any worker count. Hold queues, when
// enabled, are updated over the same cone.
func (e *Engine) PropagateIncremental(arcs []int32) {
	if len(arcs) == 0 {
		return
	}
	sp := e.tracer.StartArg(kIncremental, "arcs", int64(len(arcs)))
	defer sp.End()
	sc := e.incScratch()
	for _, a := range arcs {
		e.incPush(sc, e.arcTo[a])
	}
	e.runIncrementalWave(sc)
}

// PropagateIncrementalPins is PropagateIncremental seeded by pins instead of
// arcs: every listed pin is recomputed from its (possibly restructured)
// fan-in in every scenario and the wavefront expands downstream. This is the
// re-propagation entry point of seeded batched engine construction after a
// structural edit (NewSeeded).
func (e *Engine) PropagateIncrementalPins(pins []int32) {
	if len(pins) == 0 {
		return
	}
	sp := e.tracer.StartArg(kIncremental, "pins", int64(len(pins)))
	defer sp.End()
	sc := e.incScratch()
	for _, p := range pins {
		e.incPush(sc, p)
	}
	e.runIncrementalWave(sc)
}

// incScratch returns the engine's reset incremental-propagation scratch.
// Wavefront state lives in engine-owned scratch: incremental propagation
// mutates base tensors, so calls are exclusive and the scratch is reused
// allocation-free across calls.
func (e *Engine) incScratch() *propScratch {
	if e.inc == nil {
		e.inc = e.newPropScratch()
	}
	e.inc.reset()
	return e.inc
}

// incPush enqueues pin p into its level bucket once.
func (e *Engine) incPush(sc *propScratch, p int32) {
	if !sc.queued[p] {
		sc.queued[p] = true
		sc.buckets[e.lv.Level[p]] = append(sc.buckets[e.lv.Level[p]], p)
	}
}

// runIncrementalWave walks the pre-seeded level buckets in order, recomputing
// each bucket through the pool and expanding wavefronts whose queues changed
// in any scenario.
func (e *Engine) runIncrementalWave(sc *propScratch) {
	foStart, foAdj := e.fanoutCSR()
	for l := 0; l < len(sc.buckets); l++ {
		bucket := sc.buckets[l]
		if len(bucket) == 0 {
			continue
		}
		if cap(sc.changed) < len(bucket) {
			sc.changed = make([]bool, len(bucket))
		}
		sc.changed = sc.changed[:len(bucket)]
		changed := sc.changed
		// The kernel closure is bound once per scratch and reads its
		// per-launch state through sc — a literal here would escape into the
		// pool's job slot and cost one allocation per level.
		if sc.kernFn == nil {
			sc.kernFn = func(id, lo, hi int) {
				snap := sc.snaps[id]
				b, ch := sc.bucket, sc.changed
				for i := lo; i < hi; i++ {
					p := b[i]
					c := false
					e.snapshotPin(p, snap, false)
					e.propagatePin(p)
					if !e.snapshotEqual(p, snap, false) {
						c = true
					}
					if e.hold != nil {
						e.snapshotPin(p, snap, true)
						e.propagatePinMin(p)
						if !e.snapshotEqual(p, snap, true) {
							c = true
						}
					}
					ch[i] = c
				}
			}
		}
		sc.bucket = bucket
		e.kernIndexed(kIncremental, l, len(bucket), sc.kernFn)
		for i, p := range bucket {
			if changed[i] {
				for _, to := range foAdj[foStart[p]:foStart[p+1]] {
					e.incPush(sc, to)
				}
			}
		}
	}
}

// snapshotBuf holds one pin's queues — all transitions and scenarios —
// across a recompute.
type snapshotBuf struct {
	arr, mean, std []float64
	sp             []int32
}

// propScratch is the reusable wavefront state of cone-limited batched
// re-propagation, with one queue snapshot per pool participant (see
// core.propScratch for the ownership rules: the engine owns one for
// PropagateIncremental, each Overlay owns its own).
type propScratch struct {
	buckets [][]int32
	queued  map[int32]bool
	changed []bool
	snaps   []*snapshotBuf

	// Persistent kernel binding (see PropagateIncremental): the closure is
	// created once and reads the current bucket through these fields, so a
	// level launch does not allocate.
	bucket []int32
	kernFn func(id, lo, hi int)
}

func (e *Engine) newPropScratch() *propScratch {
	s := &propScratch{
		buckets: make([][]int32, e.lv.NumLevels),
		queued:  make(map[int32]bool, 64),
		snaps:   make([]*snapshotBuf, e.pool.Workers()),
	}
	for i := range s.snaps {
		s.snaps[i] = e.newSnapshotBuf()
	}
	return s
}

// reset empties the wavefront state for reuse, keeping all capacity.
func (s *propScratch) reset() {
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	clear(s.queued)
}

func (e *Engine) newSnapshotBuf() *snapshotBuf {
	n := 2 * len(e.scns) * e.opt.TopK
	return &snapshotBuf{
		arr:  make([]float64, n),
		mean: make([]float64, n),
		std:  make([]float64, n),
		sp:   make([]int32, n),
	}
}

func (e *Engine) snapshotPin(p int32, s *snapshotBuf, early bool) {
	span := len(e.scns) * e.opt.TopK
	for rf := 0; rf < 2; rf++ {
		b := e.qbase(rf, p, 0)
		dst := rf * span
		if early {
			copy(s.arr[dst:dst+span], e.hold.negArr[b:b+span])
			copy(s.sp[dst:dst+span], e.hold.sp[b:b+span])
			continue
		}
		copy(s.arr[dst:dst+span], e.topArr[b:b+span])
		copy(s.mean[dst:dst+span], e.topMean[b:b+span])
		copy(s.std[dst:dst+span], e.topStd[b:b+span])
		copy(s.sp[dst:dst+span], e.topSP[b:b+span])
	}
}

func (e *Engine) snapshotEqual(p int32, s *snapshotBuf, early bool) bool {
	span := len(e.scns) * e.opt.TopK
	for rf := 0; rf < 2; rf++ {
		b := e.qbase(rf, p, 0)
		src := rf * span
		for i := 0; i < span; i++ {
			if early {
				if e.hold.sp[b+i] != s.sp[src+i] || e.hold.negArr[b+i] != s.arr[src+i] {
					return false
				}
				continue
			}
			if e.topSP[b+i] != s.sp[src+i] || e.topArr[b+i] != s.arr[src+i] ||
				e.topMean[b+i] != s.mean[src+i] || e.topStd[b+i] != s.std[src+i] {
				return false
			}
		}
	}
	return true
}
