package batch

// Differential suite: the correctness contract of the batched subsystem is
// that scenario s of one batched engine is *bit-identical* — queues, setup
// slacks, hold slacks — to an independent single-corner core.Engine built
// from ScaleTables(tab, s), at any worker count. ci.sh runs this package
// under -race as well, so the claim covers concurrent chunk claiming.

import (
	"testing"

	"insta/internal/core"
)

var diffScenarios = []Scenario{
	{Name: "ss", DelayScale: 1.18, SigmaScale: 1.25, RCScale: 1.10},
	{Name: "tt", DelayScale: 1.00, SigmaScale: 1.00, RCScale: 1.00},
	{Name: "ff", DelayScale: 0.86, SigmaScale: 0.90, RCScale: 0.92},
	{Name: "hot", DelayScale: 1.31, SigmaScale: 1.07, RCScale: 0.97},
}

func TestBatchBitIdenticalToIndependentEngines(t *testing.T) {
	tab := buildTables(t, 21)
	for _, workers := range []int{1, 2, 4} {
		opt := core.Options{TopK: 8, Hold: true, Workers: workers}
		be, err := New(tab, diffScenarios, opt)
		if err != nil {
			t.Fatal(err)
		}
		be.Run()
		for s, scn := range diffScenarios {
			se, err := core.NewEngine(ScaleTables(tab, scn), opt)
			if err != nil {
				t.Fatal(err)
			}
			want := se.Run()
			wantHold := se.EvalHoldSlacks()

			got := be.Slacks(s)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d scenario %s ep %d: batched slack %v != independent %v",
						workers, scn.Name, i, got[i], want[i])
				}
			}
			gotHold := be.HoldSlacks(s)
			for i := range wantHold {
				if gotHold[i] != wantHold[i] {
					t.Fatalf("workers=%d scenario %s ep %d: batched hold slack %v != independent %v",
						workers, scn.Name, i, gotHold[i], wantHold[i])
				}
			}
			if bw, hw := be.HoldWNS(s), se.HoldWNS(); bw != hw {
				t.Fatalf("workers=%d scenario %s: hold WNS %v != %v", workers, scn.Name, bw, hw)
			}
			if bw, sw := be.WNS(s), se.WNS(); bw != sw {
				t.Fatalf("workers=%d scenario %s: WNS %v != %v", workers, scn.Name, bw, sw)
			}
			if bt, st := be.TNS(s), se.TNS(); bt != st {
				t.Fatalf("workers=%d scenario %s: TNS %v != %v", workers, scn.Name, bt, st)
			}

			// Queue-level identity on every endpoint pin (the deepest state
			// the slack evaluation reads).
			for _, p := range be.Endpoints() {
				for rf := 0; rf < 2; rf++ {
					ba, bm, bs, bsp := be.TopEntries(rf, p, s)
					sa, sm, ss, ssp := se.TopEntries(rf, p)
					for kk := range ba {
						if ba[kk] != sa[kk] || bm[kk] != sm[kk] || bs[kk] != ss[kk] || bsp[kk] != ssp[kk] {
							t.Fatalf("workers=%d scenario %s pin %d rf %d slot %d: queue mismatch",
								workers, scn.Name, p, rf, kk)
						}
					}
				}
			}
			se.Close()
		}
		be.Close()
	}
}

func TestBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	tab := buildTables(t, 22)
	var ref [][]float64
	for _, workers := range []int{1, 3, 8} {
		be, err := New(tab, diffScenarios, core.Options{TopK: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		be.Run()
		cur := make([][]float64, len(diffScenarios))
		for s := range diffScenarios {
			cur[s] = be.Slacks(s)
		}
		be.Close()
		if ref == nil {
			ref = cur
			continue
		}
		for s := range cur {
			for i := range cur[s] {
				if cur[s][i] != ref[s][i] {
					t.Fatalf("workers=%d scenario %d ep %d: %v != workers=1's %v",
						workers, s, i, cur[s][i], ref[s][i])
				}
			}
		}
	}
}

func TestBatchIncrementalMatchesFullPropagate(t *testing.T) {
	tab := buildTables(t, 23)
	opt := core.Options{TopK: 8, Hold: true, Workers: 2}
	inc, err := New(tab, diffScenarios, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	inc.Run()

	// Perturb a spread of arcs in nominal units.
	touched := []int32{0, int32(inc.NumArcs() / 3), int32(inc.NumArcs() / 2), int32(inc.NumArcs() - 1)}
	for _, a := range touched {
		for rf := 0; rf < 2; rf++ {
			m, sd := inc.ArcDelay(a, rf)
			inc.SetArcDelay(a, rf, m*1.2+1, sd*1.1)
		}
	}
	inc.PropagateIncremental(touched)
	inc.EvalSlacks()
	inc.EvalHoldSlacks()

	full, err := New(tab, diffScenarios, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	for _, a := range touched {
		for rf := 0; rf < 2; rf++ {
			m, sd := inc.ArcDelay(a, rf)
			full.SetArcDelay(a, rf, m, sd)
		}
	}
	full.Run()

	for s := range diffScenarios {
		gi, gf := inc.Slacks(s), full.Slacks(s)
		for i := range gf {
			if gi[i] != gf[i] {
				t.Fatalf("scenario %d ep %d: incremental %v != full %v", s, i, gi[i], gf[i])
			}
		}
		hi, hf := inc.HoldSlacks(s), full.HoldSlacks(s)
		for i := range hf {
			if hi[i] != hf[i] {
				t.Fatalf("scenario %d ep %d: incremental hold %v != full %v", s, i, hi[i], hf[i])
			}
		}
	}
}
