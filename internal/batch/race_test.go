package batch

// Concurrent overlay-reuse differential: eight sessions evaluate reused
// (pooled-scratch, freelist-backed) overlays in parallel over one frozen
// batched base, each repeatedly resetting and reapplying its own deltas, and
// every iteration must reproduce bit-for-bit what a fresh-allocation overlay
// computed serially. Run under -race in ci.sh, this pins down the overlay
// concurrency contract: per-overlay scratch (wavefront buckets, kernel
// snapshot buffers, persistent kernel closures) never leaks across sessions,
// and the shared base plus shared scheduler pool are read-only under
// concurrent Propagate calls.

import (
	"sync"
	"testing"

	"insta/internal/core"
)

func TestOverlayConcurrentReuseMatchesFresh(t *testing.T) {
	tab := buildTables(t, 41)
	e, err := New(tab, DefaultScenarios(), core.Options{TopK: 6, Hold: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()

	const nSess = 8
	const iters = 3
	S := e.NumScenarios()
	nEP := len(e.Endpoints())

	// Session g perturbs arcs ≡ g (mod 8·7): disjoint arc sets whose fan-out
	// cones still overlap heavily, so concurrent wavefronts walk shared
	// levels of the same base.
	apply := func(ov *Overlay, g int) {
		scale := 1.1 + 0.05*float64(g)
		for a := int32(g); a < int32(e.NumArcs()); a += nSess * 7 {
			for rf := 0; rf < 2; rf++ {
				m, sd := e.ArcDelay(a, rf)
				ov.SetArcDelay(a, rf, m*scale, sd)
			}
		}
		ov.Propagate()
	}
	snapshot := func(ov *Overlay, dst []float64) {
		for s := 0; s < S; s++ {
			for i := 0; i < nEP; i++ {
				dst[s*nEP+i] = ov.Slack(s, int32(i))
			}
		}
	}

	// Reference: a fresh overlay per session, evaluated serially.
	want := make([][]float64, nSess)
	for g := 0; g < nSess; g++ {
		ov := NewOverlay(e)
		apply(ov, g)
		want[g] = make([]float64, S*nEP)
		snapshot(ov, want[g])
		if len(ov.ChangedEndpoints()) == 0 {
			t.Fatalf("session %d: deltas changed no endpoints — test is vacuous", g)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < nSess; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ov := NewOverlay(e)
			got := make([]float64, S*nEP)
			for it := 0; it < iters; it++ {
				if it > 0 {
					ov.Reset() // recycle pins/slacks through the freelists
				}
				apply(ov, g)
				snapshot(ov, got)
				for j := range got {
					if got[j] != want[g][j] {
						t.Errorf("session %d iter %d: slack[s=%d,ep=%d] %v != fresh %v",
							g, it, j/nEP, j%nEP, got[j], want[g][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
