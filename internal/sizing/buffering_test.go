package sizing

import (
	"testing"

	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/server"
)

// TestInstaBufferInsertsThroughSessions runs the full buffering flow against a
// live manager: every candidate is previewed in a structural session, and at
// least one must survive the strict TNS-improvement gate and commit — the
// end-to-end proof that EstimateBufferDriver's load shedding makes buffer
// insertion profitable, not just priced.
func TestInstaBufferInsertsThroughSessions(t *testing.T) {
	_, ref := buildSizing(t, 2)
	tab := circuitops.Extract(ref)
	e, err := core.NewEngine(tab, core.Options{TopK: 4, Tau: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	origArcs := e.NumArcs()
	mgr := server.NewManager(e, ref, server.Options{MaxSessions: 2})
	defer mgr.Close()
	initialTNS := mgr.BaseTNS()

	res := InstaBuffer(mgr, DefaultBufferConfig())
	if res.Inserted < 1 {
		t.Fatalf("no buffers inserted (previewed %d over %d rounds): load shedding never improved TNS",
			res.Previewed, res.Rounds)
	}
	if res.Previewed < res.Inserted {
		t.Fatalf("previewed %d < inserted %d", res.Previewed, res.Inserted)
	}
	// Each committed insertion appends exactly two arcs (driver-side wire +
	// buffer cell arc) to the serving engine.
	if got, want := mgr.Engine().NumArcs(), origArcs+2*res.Inserted; got != want {
		t.Fatalf("engine arcs = %d, want %d (orig %d + 2×%d)", got, want, origArcs, res.Inserted)
	}
	if res.TNS <= initialTNS {
		t.Fatalf("committed TNS %v did not improve on initial %v", res.TNS, initialTNS)
	}
	if res.Runtime <= 0 {
		t.Fatal("runtime not recorded")
	}
	t.Logf("TNS %v -> %v, inserted %d (previewed %d, rounds %d)",
		initialTNS, res.TNS, res.Inserted, res.Previewed, res.Rounds)
}
