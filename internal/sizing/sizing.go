// Package sizing implements the paper's gate-sizing application (§III-H,
// Table II): INSTA-Size, a gradient-ranked sizer that uses INSTA's backward
// kernel to pinpoint critical stages and the reference engine's estimate_eco
// to choose drive strengths, with commit/rollback and 3-hop neighbourhood
// blocking; and a PrimeTime-style baseline that fixes worst paths first
// using slack information only.
package sizing

import (
	"sort"
	"time"

	"insta/internal/core"
	"insta/internal/netlist"
	"insta/internal/refsta"
	"insta/internal/server"
)

// Result summarizes one sizing run.
type Result struct {
	WNS           float64 // signoff WNS after the flow (reference engine)
	TNS           float64
	NumViolations int
	CellsSized    int           // distinct cells committed
	BackwardTime  time.Duration // total INSTA backward-kernel time (bRT)
	Runtime       time.Duration // wall-clock of the whole flow
}

// Config tunes INSTA-Size.
type Config struct {
	// GradFrac keeps stages whose |gradient| exceeds GradFrac times the
	// maximum stage |gradient| per round (the paper's "pre-defined
	// threshold").
	GradFrac float64
	// MaxRounds bounds backward/rank/commit rounds.
	MaxRounds int
	// MaxCandidatesPerRound bounds commits attempted per round.
	MaxCandidatesPerRound int
	// BlockHops is the neighbourhood radius blocked around a committed cell
	// (the paper uses 3 to protect estimate_eco's locality assumption).
	BlockHops int
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{GradFrac: 0.02, MaxRounds: 20, MaxCandidatesPerRound: 60, BlockHops: 3}
}

// neighborhood returns all cells within `hops` net-hops of cell c.
func neighborhood(d *netlist.Design, c netlist.CellID, hops int) []netlist.CellID {
	seen := map[netlist.CellID]bool{c: true}
	frontier := []netlist.CellID{c}
	for h := 0; h < hops; h++ {
		var next []netlist.CellID
		for _, cur := range frontier {
			for _, p := range d.Cells[cur].Pins {
				n := d.Pins[p].Net
				if n == netlist.NoNet {
					continue
				}
				visit := func(q netlist.PinID) {
					oc := d.Pins[q].Cell
					if oc == netlist.NoCell || seen[oc] {
						return
					}
					seen[oc] = true
					next = append(next, oc)
				}
				visit(d.Nets[n].Driver)
				for _, s := range d.Nets[n].Sinks {
					visit(s)
				}
			}
		}
		frontier = next
	}
	out := make([]netlist.CellID, 0, len(seen))
	for cc := range seen {
		out = append(out, cc)
	}
	return out
}

// InstaSize runs the INSTA-Size flow: after a one-time initialization
// (ref already extracted into e), each round backpropagates TNS, ranks
// stages by |timing gradient|, and for each candidate stage uses
// estimate_eco to select the drive strength whose predicted INSTA TNS is
// best. The winning swap is committed to the reference engine and INSTA. A
// committed stage blocks its BlockHops-neighbourhood for the round.
//
// The flow is the first in-process client of the serving layer: the engine is
// wrapped in a server.Manager and every candidate is previewed on one
// copy-on-write session (cone-limited overlay propagation) instead of a full
// re-propagation per alternative, with Rollback between alternatives and
// Commit folding the winner into the base. Overlay previews are bit-identical
// to committed state, so the accept/reject decisions are unchanged — a
// degrading candidate is simply never committed.
func InstaSize(ref *refsta.Engine, e *core.Engine, cfg Config) Result {
	start := time.Now()
	var bRT time.Duration
	sized := map[netlist.CellID]bool{}
	d := ref.D
	lib := ref.Lib

	mgr := server.NewManager(e, ref, server.Options{MaxSessions: 1})
	sess, err := mgr.Create()
	if err != nil {
		panic("sizing: " + err.Error()) // cap is 1, first create cannot fail
	}
	defer sess.Close()

	curTNS := mgr.BaseTNS()
	for round := 0; round < cfg.MaxRounds; round++ {
		var stages []core.StageGradient
		t0 := time.Now()
		mgr.Exclusive(func() {
			// Re-synchronize INSTA with the reference engine's current arc
			// delays at each round boundary (the cheap Fig. 2 resync), so
			// estimate_eco drift cannot accumulate across rounds. Arcs are
			// disjoint, so the transfer runs on the engine's scheduler pool.
			e.Pool().RunTagged("size-resync", -1, len(ref.Arcs), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a := &ref.Arcs[i]
					e.SetArcDelay(int32(i), 0, a.Delay[0])
					e.SetArcDelay(int32(i), 1, a.Delay[1])
				}
			})
			e.Run()
			t0 = time.Now()
			e.Backward()
			stages = e.StageGradients()
		})
		bRT += time.Since(t0)
		curTNS = mgr.BaseTNS()
		if len(stages) == 0 {
			break
		}
		sort.Slice(stages, func(i, j int) bool { return stages[i].Grad < stages[j].Grad })
		maxMag := -stages[0].Grad
		if maxMag == 0 {
			break
		}

		blocked := map[netlist.CellID]bool{}
		committed := 0
		improvedAny := false
		for _, st := range stages {
			if committed >= cfg.MaxCandidatesPerRound {
				break
			}
			if -st.Grad < cfg.GradFrac*maxMag {
				break // ranked by magnitude; the rest are below threshold
			}
			c := netlist.CellID(st.Cell)
			if blocked[c] {
				continue
			}
			cur := d.Cells[c].LibCell
			ladder := lib.Siblings(cur)
			// estimate_eco pass: preview each drive on the session overlay
			// (cone-limited propagation over the frozen base) and pick the
			// best predicted TNS.
			bestTNS := curTNS
			var bestLib int32 = -1
			var bestDeltas []refsta.ArcDelta
			for _, alt := range ladder {
				if alt == cur {
					continue
				}
				deltas, err := ref.EstimateECO(c, alt)
				if err != nil {
					continue
				}
				res, err := sess.ApplyDeltas(deltas)
				if err != nil {
					panic("sizing: preview failed: " + err.Error())
				}
				if err := sess.Rollback(); err != nil {
					panic("sizing: rollback failed: " + err.Error())
				}
				if res.TNS > bestTNS {
					bestTNS = res.TNS
					bestLib = alt
					bestDeltas = deltas
				}
			}
			if bestLib < 0 {
				// No alternative improved TNS (paper §III-H would roll a
				// degrading commit back; the preview rejects it up front).
				continue
			}
			// Commit: the winning preview is re-applied and folded into the
			// base (bit-identical to the preview), and the reference engine
			// records the netlist change, kept current so later estimate_eco
			// calls see fresh loads and slews, as the host signoff tool would
			// in a live flow.
			if _, err := sess.ApplyDeltas(bestDeltas); err != nil {
				panic("sizing: commit preview failed: " + err.Error())
			}
			if _, err := ref.ResizeCell(c, bestLib); err != nil {
				if rbErr := sess.Rollback(); rbErr != nil {
					panic("sizing: rollback failed: " + rbErr.Error())
				}
				continue
			}
			ref.UpdateTimingIncremental()
			if _, err := sess.Commit(); err != nil {
				panic("sizing: commit failed: " + err.Error())
			}
			curTNS = bestTNS
			sized[c] = true
			committed++
			improvedAny = true
			for _, b := range neighborhood(d, c, cfg.BlockHops) {
				blocked[b] = true
			}
		}
		if !improvedAny {
			break
		}
	}

	// Signoff with the reference engine on the committed netlist.
	ref.UpdateTimingFull()
	return Result{
		WNS:           ref.WNS(),
		TNS:           ref.TNS(),
		NumViolations: ref.NumViolations(),
		CellsSized:    len(sized),
		BackwardTime:  bRT,
		Runtime:       time.Since(start),
	}
}

// BaselineConfig tunes the PrimeTime-style slack-driven sizer.
type BaselineConfig struct {
	MaxCommits int // total resize attempts budget
	MaxPasses  int // worst-endpoint passes
}

// DefaultBaselineConfig bounds the baseline comparably to INSTA-Size.
func DefaultBaselineConfig() BaselineConfig {
	return BaselineConfig{MaxCommits: 2500, MaxPasses: 400}
}

// BaselineSize emulates the reference tool's default timing-optimization
// loop: repeatedly expand the worst violating endpoint's critical path and
// upsize cells along it, keeping any change that improves that endpoint's
// slack without regressing WNS beyond tolerance. This is slack-local by
// construction — the contrast INSTA-Size's global gradients are measured
// against (it tends to touch many more cells for less TNS gain, as the
// paper's Table II baseline does).
func BaselineSize(ref *refsta.Engine, cfg BaselineConfig) Result {
	start := time.Now()
	sized := map[netlist.CellID]bool{}
	d := ref.D
	lib := ref.Lib
	commits := 0
	triedEndpoint := map[int32]bool{}

	for pass := 0; pass < cfg.MaxPasses && commits < cfg.MaxCommits; pass++ {
		// Worst violating endpoint not yet exhausted.
		slacks := ref.EndpointSlacks()
		worstEP := int32(-1)
		worstSlack := 0.0
		for i, s := range slacks {
			if s < worstSlack && !triedEndpoint[int32(i)] {
				worstSlack, worstEP = s, int32(i)
			}
		}
		if worstEP < 0 {
			break
		}
		path := ref.WorstPath(worstEP)
		improvedEndpoint := false
		for _, step := range path {
			if commits >= cfg.MaxCommits {
				break
			}
			arc := ref.Arcs[step.ArcID]
			if arc.Kind != refsta.CellArc {
				continue
			}
			c := arc.Cell
			up, ok := lib.Resize(d.Cells[c].LibCell, 1)
			if !ok {
				continue
			}
			before := ref.EndpointSlacks()[worstEP]
			old, err := ref.ResizeCell(c, up)
			if err != nil {
				continue
			}
			ref.UpdateTimingIncremental()
			commits++
			after := ref.EndpointSlacks()[worstEP]
			// Keep if the targeted endpoint improved. Collateral TNS damage
			// on other endpoints is invisible to this slack-local criterion —
			// exactly the locality flaw the paper attributes to the
			// reference tool's default engine (§III-I, Table II).
			if after > before+1e-9 {
				sized[c] = true
				improvedEndpoint = true
				continue
			}
			if _, err := ref.ResizeCell(c, old); err != nil {
				panic("sizing: baseline rollback failed: " + err.Error())
			}
			ref.UpdateTimingIncremental()
		}
		if !improvedEndpoint {
			triedEndpoint[worstEP] = true
		}
	}

	ref.UpdateTimingFull()
	return Result{
		WNS:           ref.WNS(),
		TNS:           ref.TNS(),
		NumViolations: ref.NumViolations(),
		CellsSized:    len(sized),
		Runtime:       time.Since(start),
	}
}
