package sizing

import (
	"math"
	"sort"
	"testing"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/refsta"
	"insta/internal/server"
)

func sizingSpec(seed int64) bench.Spec {
	return bench.Spec{
		Name: "sizetest", Seed: seed, Tech: liberty.TechASAP7(),
		Groups: 3, FFsPerGroup: 10, Layers: 6, Width: 10,
		CrossFrac: 0.12, NumPIs: 4, NumPOs: 4,
		Period: 1, Uncertainty: 12, FalsePaths: 2, Multicycles: 1, Die: 120,
	}
}

// buildSizing generates a design whose period is auto-tuned so that roughly
// 10% of endpoints violate.
func buildSizing(t testing.TB, seed int64) (*bench.Design, *refsta.Engine) {
	t.Helper()
	spec := sizingSpec(seed)
	spec.Period = 100000 // loose first pass
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	slacks := ref.EndpointSlacks()
	finite := make([]float64, 0, len(slacks))
	for _, s := range slacks {
		if !math.IsInf(s, 0) {
			finite = append(finite, s)
		}
	}
	sort.Float64s(finite)
	shift := finite[len(finite)/10] + 1
	b.Con.Clock.Period -= shift
	ref, err = refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumViolations() == 0 {
		t.Fatal("tuned design has no violations")
	}
	return b, ref
}

func TestNeighborhood(t *testing.T) {
	b, _ := buildSizing(t, 1)
	var c netlist.CellID = 5
	n0 := neighborhood(b.D, c, 0)
	if len(n0) != 1 || n0[0] != c {
		t.Errorf("0-hop neighbourhood = %v", n0)
	}
	n1 := neighborhood(b.D, c, 1)
	n3 := neighborhood(b.D, c, 3)
	if len(n1) <= 1 {
		t.Error("1-hop neighbourhood empty")
	}
	if len(n3) < len(n1) {
		t.Error("3-hop smaller than 1-hop")
	}
	in1 := map[netlist.CellID]bool{}
	for _, x := range n1 {
		in1[x] = true
	}
	for _, x := range n1 {
		_ = x
	}
	in3 := map[netlist.CellID]bool{}
	for _, x := range n3 {
		in3[x] = true
	}
	for x := range in1 {
		if !in3[x] {
			t.Error("3-hop neighbourhood does not contain 1-hop")
			break
		}
	}
}

func TestInstaSizeImprovesTNS(t *testing.T) {
	_, ref := buildSizing(t, 2)
	initialTNS := ref.TNS()
	initialVio := ref.NumViolations()
	tab := circuitops.Extract(ref)
	e, err := core.NewEngine(tab, core.Options{TopK: 4, Tau: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := InstaSize(ref, e, DefaultConfig())
	if res.TNS <= initialTNS {
		t.Errorf("INSTA-Size did not improve TNS: %v -> %v", initialTNS, res.TNS)
	}
	if res.CellsSized == 0 {
		t.Error("no cells sized")
	}
	if res.BackwardTime <= 0 {
		t.Error("backward time not recorded")
	}
	t.Logf("TNS %v -> %v, vio %d -> %d, sized %d",
		initialTNS, res.TNS, initialVio, res.NumViolations, res.CellsSized)
}

func TestBaselineSizeRuns(t *testing.T) {
	_, ref := buildSizing(t, 3)
	initialWNS := ref.WNS()
	cfg := DefaultBaselineConfig()
	cfg.MaxPasses = 10
	cfg.MaxCommits = 80
	res := BaselineSize(ref, cfg)
	if res.WNS < initialWNS-1e-6 {
		t.Errorf("baseline regressed WNS: %v -> %v", initialWNS, res.WNS)
	}
	if res.CellsSized == 0 {
		t.Skip("baseline found nothing to size on this seed")
	}
}

func TestInstaSizeBeatsBaselineEfficiency(t *testing.T) {
	// The paper's headline: INSTA-Size reaches better TNS with far fewer
	// sized cells. Run both flows from identical initial states.
	bI, refI := buildSizing(t, 4)
	tab := circuitops.Extract(refI)
	e, err := core.NewEngine(tab, core.Options{TopK: 4, Tau: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resI := InstaSize(refI, e, DefaultConfig())

	_, refB := buildSizing(t, 4) // fresh identical design
	cfg := DefaultBaselineConfig()
	resB := BaselineSize(refB, cfg)

	t.Logf("INSTA-Size: TNS=%.1f sized=%d | baseline: TNS=%.1f sized=%d",
		resI.TNS, resI.CellsSized, resB.TNS, resB.CellsSized)
	if resI.TNS < resB.TNS {
		t.Errorf("INSTA-Size TNS %v worse than baseline %v", resI.TNS, resB.TNS)
	}
	_ = bI
}

func TestApplyDeltasRoundTrip(t *testing.T) {
	_, ref := buildSizing(t, 5)
	tab := circuitops.Extract(ref)
	e, err := core.NewEngine(tab, core.Options{TopK: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	before := append([]float64(nil), e.Slacks()...)

	var comb netlist.CellID = -1
	var alt int32
	for i := range ref.D.Cells {
		if ref.D.Cells[i].Seq {
			continue
		}
		if a, ok := ref.Lib.Resize(ref.D.Cells[i].LibCell, 1); ok {
			comb, alt = netlist.CellID(i), a
			break
		}
	}
	if comb < 0 {
		t.Fatal("no resizable combinational cell found")
	}
	deltas, err := ref.EstimateECO(comb, alt)
	if err != nil {
		t.Fatal(err)
	}
	// Preview + rollback on a session must leave the base untouched — the
	// invariant the candidate loop in InstaSize rests on.
	mgr := server.NewManager(e, ref, server.Options{})
	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.ApplyDeltas(deltas)
	if err != nil {
		t.Fatal(err)
	}
	if res.TouchedArcs == 0 {
		t.Fatal("preview touched no arcs")
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	after := e.Slacks()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("ep %d changed after preview+rollback: %v vs %v", i, before[i], after[i])
		}
	}
	clean, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if clean.TNS != mgr.BaseTNS() || len(clean.Changed) != 0 {
		t.Fatalf("rolled-back session diverges from base: %+v", clean)
	}
}
