package sizing

// INSTA-Buffer: a gradient-guided buffer-insertion flow driven end-to-end
// through the serving layer's structural session API. Where InstaSize swaps
// drive strengths via annotation overlays, InstaBuffer edits the timing graph
// itself: each candidate splices a buffer into a heavily loaded side branch
// of a critical driver's output net (the driver sheds the branch and every
// other sink rides the reduced load), previewed by one localized
// re-levelization + cone re-propagation in the session's structural working
// set and committed by an engine swap — never a full rebuild.

import (
	"time"

	"insta/internal/netlist"
	"insta/internal/refsta"
	"insta/internal/server"
)

// BufferConfig tunes InstaBuffer.
type BufferConfig struct {
	// MaxBuffers is the total insertion budget.
	MaxBuffers int
	// MaxRounds bounds backward/rank/insert rounds.
	MaxRounds int
	// TopStages is how many gradient-ranked stages each round considers as
	// candidate drivers.
	TopStages int
	// BufCell names the buffer library cell to splice in.
	BufCell string
	// Frac is the insertion position along the wire (0 = at the driver);
	// smaller keeps less wire on the driver side, shedding more load.
	Frac float64
	// MinFanout skips driver nets below this sink count — buffering a
	// single-sink net only lengthens its one path.
	MinFanout int
}

// DefaultBufferConfig mirrors the serving defaults.
func DefaultBufferConfig() BufferConfig {
	return BufferConfig{MaxBuffers: 40, MaxRounds: 8, TopStages: 64, BufCell: "BUF_X4", Frac: 0.3, MinFanout: 2}
}

// BufferResult summarizes one buffering run. WNS/TNS are the committed INSTA
// base figures: inserted buffers have no instance in the signoff netlist, so
// the reference engine cannot re-time the buffered graph (the structural
// session's differential tests pin the committed figures to a cold compile of
// the edited tables instead).
type BufferResult struct {
	WNS       float64
	TNS       float64
	Inserted  int // buffers committed
	Previewed int // candidate insertions previewed
	Rounds    int
	Runtime   time.Duration
}

// InstaBuffer runs the flow against an existing manager: each round ranks
// stages by |timing gradient| (INSTA's backward kernel on the committed
// base), picks each critical driver's highest-capacitance side branch, and
// previews splicing cfg.BufCell into it through one structural session —
// EstimateBuffer prices the buffer's gate delay, EstimateBufferDriver the
// driver's re-annotation at reduced load, and the session's incremental
// re-levelization prices the result in every corner. Improvements commit
// (engine swap); everything else rolls back. Strictly TNS-greedy, like
// InstaSize.
func InstaBuffer(mgr *server.Manager, cfg BufferConfig) BufferResult {
	start := time.Now()
	ref := mgr.Ref()
	res := BufferResult{}
	sess, err := mgr.Create()
	if err != nil {
		panic("buffering: " + err.Error())
	}
	defer sess.Close()

	buffered := map[int32]bool{} // net arcs already split (ids are stable: insert-only commits never renumber)
	for round := 0; round < cfg.MaxRounds && res.Inserted < cfg.MaxBuffers; round++ {
		res.Rounds++
		insertedThisRound := false
		for _, st := range mgr.Gradients(cfg.TopStages) {
			if res.Inserted >= cfg.MaxBuffers {
				break
			}
			arc := candidateBranch(ref, netlist.CellID(st.Cell), cfg.MinFanout, buffered)
			if arc < 0 {
				continue
			}
			curTNS := mgr.BaseTNS()
			view, err := sess.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{
				{Op: "buffer", Arc: arc, Lib: cfg.BufCell, Frac: cfg.Frac},
			}})
			if err != nil {
				// Unbufferable target (e.g. estimate rejected it); don't retry.
				buffered[arc] = true
				continue
			}
			res.Previewed++
			if view.View.TNS > curTNS {
				if _, err := sess.Commit(); err != nil {
					panic("buffering: commit failed: " + err.Error())
				}
				buffered[arc] = true
				res.Inserted++
				insertedThisRound = true
			} else if err := sess.Rollback(); err != nil {
				panic("buffering: rollback failed: " + err.Error())
			}
		}
		if !insertedThisRound {
			break
		}
	}
	res.WNS = mgr.BaseWNS()
	res.TNS = mgr.BaseTNS()
	res.Runtime = time.Since(start)
	return res
}

// candidateBranch picks the buffer-insertion target for critical cell c: the
// highest-capacitance branch of its fan-out net with at least minFanout
// sinks, skipping already-buffered arcs. Returns -1 when c has no useful
// target.
func candidateBranch(ref *refsta.Engine, c netlist.CellID, minFanout int, buffered map[int32]bool) int32 {
	d := ref.D
	if int(c) < 0 || int(c) >= len(d.Cells) {
		return -1
	}
	best := int32(-1)
	bestC := 0.0
	for _, p := range d.Cells[c].Pins {
		n := d.Pins[p].Net
		if n == netlist.NoNet || d.Nets[n].Driver != p {
			continue // input pin, or not this cell's output
		}
		if len(d.Nets[n].Sinks) < minFanout {
			continue
		}
		for si := range d.Nets[n].Sinks {
			arc := ref.NetArc(n, si)
			if arc < 0 || buffered[arc] {
				continue
			}
			if bc := ref.Par.Nets[n].Branch[si].C; bc > bestC {
				bestC, best = bc, arc
			}
		}
	}
	return best
}
