// Package snap is the warm-start layer between extraction and propagation:
// a versioned, sectioned, checksummed binary container for the fully
// compiled timing state (core.State — levelized topology, SoA arc
// annotations, SP/EP attributes, clock arrival distributions, exception
// rows, fan-out CSR) plus the scenario derate blocks of a batched analysis.
// A snapshot reconstructs a ready-to-propagate core.Engine or batch.Engine
// without touching the original sources: no parsing, no reference signoff,
// no extraction, no levelization — boot from disk in milliseconds where the
// cold path takes seconds (see DESIGN.md §11 and BENCH_snap.json).
//
// File layout (all integers little-endian):
//
//	magic "INSTSNAP" (8 B)
//	version  u32
//	sections u32
//	section × sections:  id u32 | byteLen u64 | payload
//	crc32c   u32         (Castagnoli, over everything before it)
//
// Section payloads are raw slabs decoded with one copy each (codec.go).
// Readers skip sections with unknown ids, so new sections can be added
// without a version bump; a version bump marks an incompatible layout.
// Every integrity failure — short file, bad magic, unsupported version,
// checksum mismatch, truncated section, or a decoded state that fails
// core.State.Validate — surfaces as a *CorruptError matching ErrCorrupt and
// never a panic, so callers always fall back cleanly to the cold build.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"insta/internal/batch"
	"insta/internal/core"
)

// Format identity.
const (
	Magic   = "INSTSNAP"
	Version = 1
)

// headerLen is magic + version + section count.
const headerLen = 8 + 4 + 4

// Section ids. Meta and scenarios are structured; everything at slabBase and
// above is a raw slab of one core.State field (see stateSlabs).
const (
	secMeta      = 1
	secScenarios = 2
	slabBase     = 16

	// SecBlockModel carries one serialized hier.BlockModel (hier/persist.go).
	// Readers predating it skip the section like any unknown id; newer
	// readers surface it through Snapshot.Extra.
	SecBlockModel = 3
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel every integrity failure matches via errors.Is:
// callers gate the warm path on it and fall back to the cold build.
var ErrCorrupt = errors.New("snap: corrupt or incompatible snapshot")

// CorruptError carries the reason a snapshot was rejected.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "snap: corrupt snapshot: " + e.Reason }

// Is reports true for ErrCorrupt so errors.Is(err, snap.ErrCorrupt) works.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// Snapshot is a decoded snapshot: the compiled state, the scenario list
// recorded at write time (empty for single-corner snapshots), and the cache
// key it was stored under ("" when written outside a Cache).
type Snapshot struct {
	State     *core.State
	Scenarios []batch.Scenario
	Key       string
	Bytes     int64 // encoded size

	// Extra holds every section whose id is neither structured nor a known
	// state slab, in file order — payloads this reader has no schema for
	// (e.g. SecBlockModel sections, or sections from a newer minor
	// revision). They survive a canonical re-encode, so passing a file
	// through Decode/EncodeExtra never drops data it didn't understand.
	Extra []ExtraSection
}

// ExtraSection is one opaque section: an id outside this reader's schema and
// its raw payload.
type ExtraSection struct {
	ID      uint32
	Payload []byte
}

// Engine stands up a ready-to-propagate single-corner engine over the
// snapshot (see core.NewEngineFromState).
func (s *Snapshot) Engine(opt core.Options) (*core.Engine, error) {
	return core.NewEngineFromState(s.State, opt)
}

// Batch stands up a scenario-batched engine over the snapshot. A nil scns
// uses the scenario list recorded at write time.
func (s *Snapshot) Batch(scns []batch.Scenario, opt core.Options) (*batch.Engine, error) {
	if scns == nil {
		scns = s.Scenarios
	}
	return batch.NewFromState(s.State, scns, opt)
}

// slabRef binds one section id to one State slab; exactly one of the
// pointers is set. The same table drives encode and decode, so the two sides
// cannot drift.
type slabRef struct {
	id  uint32
	f64 *[]float64
	i32 *[]int32
	u8  *[]uint8
}

// stateSlabs enumerates every slab section of the format, in file order.
// Appending new entries (fresh ids) is a compatible change — old readers
// skip them; reusing or renumbering ids requires a Version bump.
func stateSlabs(st *core.State) []slabRef {
	return []slabRef{
		{id: 16, i32: &st.FaninStart},
		{id: 17, i32: &st.FaninArc},
		{id: 18, i32: &st.FaninFrom},
		{id: 19, u8: &st.FaninSense},
		{id: 20, f64: &st.ArcMean[0]},
		{id: 21, f64: &st.ArcMean[1]},
		{id: 22, f64: &st.ArcStd[0]},
		{id: 23, f64: &st.ArcStd[1]},
		{id: 24, u8: &st.ArcKind},
		{id: 25, i32: &st.ArcCell},
		{id: 26, i32: &st.ArcNet},
		{id: 27, i32: &st.ArcFrom},
		{id: 28, i32: &st.ArcTo},
		{id: 29, i32: &st.LvLevel},
		{id: 30, i32: &st.LvOrder},
		{id: 31, i32: &st.LvLevelStart},
		{id: 32, i32: &st.SpPin},
		{id: 33, i32: &st.SpNode},
		{id: 34, f64: &st.SpMean},
		{id: 35, f64: &st.SpStd},
		{id: 36, i32: &st.SpOfPin},
		{id: 37, i32: &st.EpPin},
		{id: 38, i32: &st.EpNode},
		{id: 39, f64: &st.EpBase[0]},
		{id: 40, f64: &st.EpBase[1]},
		{id: 41, f64: &st.EpHold[0]},
		{id: 42, f64: &st.EpHold[1]},
		{id: 43, i32: &st.EpOfPin},
		{id: 44, i32: &st.ClkParent},
		{id: 45, f64: &st.ClkCumVar},
		{id: 46, i32: &st.ClkDepth},
		{id: 47, i32: &st.ExcSP},
		{id: 48, i32: &st.ExcEP},
		{id: 49, u8: &st.ExcKind},
		{id: 50, i32: &st.ExcCycles},
		{id: 51, i32: &st.FoStart},
		{id: 52, i32: &st.FoAdj},
		{id: 53, i32: &st.FoArc},
	}
}

// appendSection appends one [id | byteLen | payload] frame.
func appendSection(dst []byte, id uint32, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// appendString appends a u32-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// Encode serializes the compiled state (plus an optional scenario list and
// cache key) into the snapshot byte format.
func Encode(st *core.State, scns []batch.Scenario, key string) []byte {
	return EncodeExtra(st, scns, key, nil)
}

// EncodeExtra is Encode plus opaque extra sections, framed canonically after
// the scenario section and before the state slabs — the position Decode
// captures them from, so Decode→EncodeExtra round-trips a canonical file
// byte-identically even when this reader has no schema for those sections.
func EncodeExtra(st *core.State, scns []batch.Scenario, key string, extra []ExtraSection) []byte {
	slabs := stateSlabs(st)

	// Meta section.
	var meta []byte
	meta = binary.LittleEndian.AppendUint64(meta, uint64(st.NumPins))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(st.NumLevels))
	meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(st.Period))
	meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(st.NSigma))
	meta = appendString(meta, st.Design)
	meta = appendString(meta, key)

	nSections := 1 + len(slabs) + len(extra)
	if len(scns) > 0 {
		nSections++
	}

	// Size the buffer exactly: header + framed sections + trailing crc.
	size := headerLen + 12 + len(meta) + 4
	if len(scns) > 0 {
		size += 12 + 4
		for _, s := range scns {
			size += 4 + len(s.Name) + 3*8
		}
	}
	for _, ex := range extra {
		size += 12 + len(ex.Payload)
	}
	for _, sl := range slabs {
		size += 12
		switch {
		case sl.f64 != nil:
			size += len(*sl.f64) * 8
		case sl.i32 != nil:
			size += len(*sl.i32) * 4
		default:
			size += len(*sl.u8)
		}
	}

	buf := make([]byte, 0, size)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nSections))
	buf = appendSection(buf, secMeta, meta)
	if len(scns) > 0 {
		var sb []byte
		sb = binary.LittleEndian.AppendUint32(sb, uint32(len(scns)))
		for _, s := range scns {
			sb = appendString(sb, s.Name)
			sb = binary.LittleEndian.AppendUint64(sb, math.Float64bits(s.DelayScale))
			sb = binary.LittleEndian.AppendUint64(sb, math.Float64bits(s.SigmaScale))
			sb = binary.LittleEndian.AppendUint64(sb, math.Float64bits(s.RCScale))
		}
		buf = appendSection(buf, secScenarios, sb)
	}
	for _, ex := range extra {
		buf = appendSection(buf, ex.ID, ex.Payload)
	}
	for _, sl := range slabs {
		hdr := len(buf)
		buf = binary.LittleEndian.AppendUint32(buf, sl.id)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		switch {
		case sl.f64 != nil:
			buf = appendF64s(buf, *sl.f64)
		case sl.i32 != nil:
			buf = appendI32s(buf, *sl.i32)
		default:
			buf = append(buf, *sl.u8...)
		}
		binary.LittleEndian.PutUint64(buf[hdr+4:], uint64(len(buf)-hdr-12))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf
}

// Write serializes st (plus optional scenarios and cache key) to w,
// returning the byte count.
func Write(w io.Writer, st *core.State, scns []batch.Scenario, key string) (int64, error) {
	n, err := w.Write(Encode(st, scns, key))
	return int64(n), err
}

// readString consumes a u32-length-prefixed string from b, returning the
// remainder.
func readString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, corruptf("truncated string")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(n) > uint64(len(b)) {
		return "", nil, corruptf("string length %d exceeds section", n)
	}
	return string(b[:n]), b[n:], nil
}

// Decode parses a snapshot buffer. Every failure is a *CorruptError
// (matching ErrCorrupt); the decoded state passed core.State.Validate, so
// it is safe to hand to the engine constructors.
func Decode(buf []byte) (*Snapshot, error) {
	if len(buf) < headerLen+4 {
		return nil, corruptf("short file: %d bytes", len(buf))
	}
	if string(buf[:8]) != Magic {
		return nil, corruptf("bad magic %q", buf[:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != Version {
		return nil, corruptf("unsupported version %d (want %d)", v, Version)
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, corruptf("checksum mismatch: computed %08x, stored %08x", got, want)
	}

	snap := &Snapshot{State: &core.State{}, Bytes: int64(len(buf))}
	st := snap.State
	byID := make(map[uint32]slabRef)
	for _, sl := range stateSlabs(st) {
		byID[sl.id] = sl
	}

	nSections := binary.LittleEndian.Uint32(buf[12:])
	off := headerLen
	metaSeen := false
	for i := uint32(0); i < nSections; i++ {
		if off+12 > len(body) {
			return nil, corruptf("truncated section header (%d of %d)", i, nSections)
		}
		id := binary.LittleEndian.Uint32(body[off:])
		blen := binary.LittleEndian.Uint64(body[off+4:])
		off += 12
		if blen > uint64(len(body)-off) {
			return nil, corruptf("section %d length %d exceeds file", id, blen)
		}
		payload := body[off : off+int(blen)]
		off += int(blen)

		switch {
		case id == secMeta:
			if len(payload) < 32 {
				return nil, corruptf("meta section too short: %d bytes", len(payload))
			}
			st.NumPins = int(int64(binary.LittleEndian.Uint64(payload)))
			st.NumLevels = int(int64(binary.LittleEndian.Uint64(payload[8:])))
			st.Period = math.Float64frombits(binary.LittleEndian.Uint64(payload[16:]))
			st.NSigma = math.Float64frombits(binary.LittleEndian.Uint64(payload[24:]))
			rest := payload[32:]
			var err error
			if st.Design, rest, err = readString(rest); err != nil {
				return nil, err
			}
			if snap.Key, _, err = readString(rest); err != nil {
				return nil, err
			}
			metaSeen = true
		case id == secScenarios:
			if len(payload) < 4 {
				return nil, corruptf("scenario section too short")
			}
			n := binary.LittleEndian.Uint32(payload)
			rest := payload[4:]
			for j := uint32(0); j < n; j++ {
				var s batch.Scenario
				var err error
				if s.Name, rest, err = readString(rest); err != nil {
					return nil, err
				}
				if len(rest) < 24 {
					return nil, corruptf("truncated scenario %d", j)
				}
				s.DelayScale = math.Float64frombits(binary.LittleEndian.Uint64(rest))
				s.SigmaScale = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
				s.RCScale = math.Float64frombits(binary.LittleEndian.Uint64(rest[16:]))
				rest = rest[24:]
				snap.Scenarios = append(snap.Scenarios, s)
			}
		default:
			sl, ok := byID[id]
			if !ok {
				// Unknown section: written by a newer minor revision (or a
				// structured id this reader has no schema for, like
				// SecBlockModel). Carried through opaquely instead of
				// dropped, so re-encoding preserves it.
				snap.Extra = append(snap.Extra, ExtraSection{
					ID: id, Payload: append([]byte(nil), payload...),
				})
				continue
			}
			switch {
			case sl.f64 != nil:
				if blen%8 != 0 {
					return nil, corruptf("section %d length %d not a float64 slab", id, blen)
				}
				*sl.f64 = decodeF64s(payload)
			case sl.i32 != nil:
				if blen%4 != 0 {
					return nil, corruptf("section %d length %d not an int32 slab", id, blen)
				}
				*sl.i32 = decodeI32s(payload)
			default:
				out := make([]uint8, len(payload))
				copy(out, payload)
				*sl.u8 = out
			}
		}
	}
	if off != len(body) {
		return nil, corruptf("%d trailing bytes after last section", len(body)-off)
	}
	if !metaSeen {
		return nil, corruptf("missing meta section")
	}
	// Second line of defense behind the checksum: a forged-but-checksummed
	// state must still be structurally sound before a kernel sees it.
	if err := st.Validate(); err != nil {
		return nil, corruptf("state validation: %v", err)
	}
	return snap, nil
}

// Read decodes a snapshot from r (reading it fully).
func Read(r io.Reader) (*Snapshot, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Open reads and decodes the snapshot at path. Integrity failures match
// ErrCorrupt; a missing file surfaces as the usual *PathError.
func Open(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}
