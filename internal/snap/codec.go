package snap

// Slab codec: the snapshot body is a sequence of length-prefixed
// little-endian slabs, one per structure-of-arrays field of the compiled
// state. On little-endian hosts (every platform this repo targets) a slab
// encodes and decodes as a single memcpy through a byte view of the backing
// array — no per-element loop, which is what keeps snap.Open allocation-lean
// and dominated by the file read. Big-endian hosts fall through to a
// per-element encoding/binary path producing byte-identical files.

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittle reports the native byte order, probed once at init.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f64Bytes aliases the float64 slab as bytes (native order, no copy).
func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// i32Bytes aliases the int32 slab as bytes (native order, no copy).
func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// appendF64s appends the slab little-endian.
func appendF64s(dst []byte, s []float64) []byte {
	if hostLittle {
		return append(dst, f64Bytes(s)...)
	}
	for _, v := range s {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// appendI32s appends the slab little-endian.
func appendI32s(dst []byte, s []int32) []byte {
	if hostLittle {
		return append(dst, i32Bytes(s)...)
	}
	for _, v := range s {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// decodeF64s decodes a little-endian float64 slab: one allocation plus one
// copy on little-endian hosts.
func decodeF64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	if hostLittle {
		copy(f64Bytes(out), b)
		return out
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// decodeI32s decodes a little-endian int32 slab.
func decodeI32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	if hostLittle {
		copy(i32Bytes(out), b)
		return out
	}
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}
