package snap

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"insta/internal/obs"
)

func TestCacheHitMissCorrupt(t *testing.T) {
	st := compileState(t, 9)
	c, err := NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	if s, err := c.Load("nope"); err != nil || s != nil {
		t.Fatalf("expected clean miss, got %v/%v", s, err)
	}
	path, n, err := c.Store("k1", st, testScenarios)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("stored %d bytes", n)
	}
	s, err := c.Load("k1")
	if err != nil || s == nil {
		t.Fatalf("expected hit, got %v/%v", s, err)
	}
	if s.Key != "k1" || s.State.Design != st.Design {
		t.Fatalf("hit returned key %q design %q", s.Key, s.State.Design)
	}

	// Corrupt the entry on disk: Load must return a typed error, remove the
	// file, and count it — the caller's cold-build fallback then repairs it.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("k1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}

	stats := c.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Corrupt != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestCacheEviction(t *testing.T) {
	st := compileState(t, 9)
	one := int64(len(Encode(st, nil, "")))
	// Budget for two entries; the third store evicts the least recently used.
	c, err := NewCache(t.TempDir(), 2*one+one/2)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i, key := range []string{"a", "b", "c"} {
		if _, _, err := c.Store(key, st, nil); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes so LRU order is unambiguous even on coarse clocks.
		os.Chtimes(c.Path(key), now.Add(time.Duration(i)*time.Second), now.Add(time.Duration(i)*time.Second))
	}
	c.evict(c.Path("c"))
	if s, err := c.Load("a"); err != nil || s != nil {
		t.Fatalf("oldest entry should be evicted, got %v/%v", s, err)
	}
	for _, key := range []string{"b", "c"} {
		if s, err := c.Load(key); err != nil || s == nil {
			t.Fatalf("entry %q should survive eviction: %v/%v", key, s, err)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestCacheConcurrentStoreLoad(t *testing.T) {
	st := compileState(t, 9)
	c, err := NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, _, err := c.Store("shared", st, testScenarios); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				s, err := c.Load("shared")
				if err != nil {
					t.Errorf("load: %v", err)
					return
				}
				// A concurrent reader may race the very first rename and
				// miss; it must never observe a partial file.
				if s != nil && s.State.NumPins != st.NumPins {
					t.Errorf("load observed wrong state: %d pins", s.State.NumPins)
					return
				}
			}
		}()
	}
	wg.Wait()
	// No temp droppings left behind.
	entries, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".snap") {
			t.Fatalf("stray file %q in cache dir", e.Name())
		}
	}
}

func TestCacheMetrics(t *testing.T) {
	st := compileState(t, 9)
	c, err := NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Register(reg)
	c.Load("missing")
	c.Store("k", st, nil)
	c.Load("k")
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"insta_snap_cache_hits_total 1",
		"insta_snap_cache_misses_total 1",
		"insta_snap_cache_evictions_total 0",
		"insta_snap_cache_corrupt_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestKeyForInputs(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	if err := os.WriteFile(a, []byte("netlist-1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("constraints"), 0o644); err != nil {
		t.Fatal(err)
	}
	k1, err := KeyForInputs([]string{"tech=n3"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyForInputs([]string{"tech=n3"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("key not deterministic")
	}
	// Content change → different key.
	if err := os.WriteFile(a, []byte("netlist-2"), 0o644); err != nil {
		t.Fatal(err)
	}
	k3, err := KeyForInputs([]string{"tech=n3"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("key insensitive to file content")
	}
	// Option change → different key.
	k4, err := KeyForInputs([]string{"tech=asap7"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k3 {
		t.Fatal("key insensitive to options")
	}
	// Missing file → error.
	if _, err := KeyForInputs(nil, filepath.Join(dir, "gone")); err == nil {
		t.Fatal("expected error for missing file")
	}

	if KeyForSpec("block-1") == KeyForSpec("block-2") {
		t.Fatal("spec keys collide")
	}
	if KeyForSpec("block-1") != KeyForSpec("block-1") {
		t.Fatal("spec key not deterministic")
	}
}

func TestSanitizeKey(t *testing.T) {
	c, err := NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Path("../../etc/passwd")
	if filepath.Dir(p) != c.Dir() {
		t.Fatalf("path escaped cache dir: %s", p)
	}
}
