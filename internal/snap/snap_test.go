package snap

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/refsta"
)

// buildTables generates a small design and extracts its tables (same preset
// shape as the batch test fixtures).
func buildTables(t testing.TB, seed int64) *circuitops.Tables {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "snaptest", Seed: seed, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 8, Layers: 4, Width: 8,
		CrossFrac: 0.1, NumPIs: 3, NumPOs: 3,
		Period: 1, Uncertainty: 10, Die: 80, VioFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return circuitops.Extract(ref)
}

func compileState(t testing.TB, seed int64) *core.State {
	t.Helper()
	st, err := core.Compile(buildTables(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

var testScenarios = []batch.Scenario{
	{Name: "ss", DelayScale: 1.18, SigmaScale: 1.25, RCScale: 1.10},
	{Name: "tt", DelayScale: 1.00, SigmaScale: 1.00, RCScale: 1.00},
	{Name: "ff", DelayScale: 0.86, SigmaScale: 0.90, RCScale: 0.92},
}

func TestRoundTrip(t *testing.T) {
	st := compileState(t, 7)
	buf := Encode(st, testScenarios, "deadbeef")
	s, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(st, s.State) {
		t.Fatal("decoded state differs from compiled state")
	}
	if !reflect.DeepEqual(testScenarios, s.Scenarios) {
		t.Fatalf("scenarios: got %+v", s.Scenarios)
	}
	if s.Key != "deadbeef" {
		t.Fatalf("key: got %q", s.Key)
	}
	if s.Bytes != int64(len(buf)) {
		t.Fatalf("bytes: got %d want %d", s.Bytes, len(buf))
	}
	// Re-encoding the decoded state must be byte-identical: the format is
	// canonical (fixed section order, no timestamps).
	if buf2 := Encode(s.State, s.Scenarios, s.Key); string(buf2) != string(buf) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestRoundTripNoScenariosNoKey(t *testing.T) {
	st := compileState(t, 8)
	s, err := Decode(Encode(st, nil, ""))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(s.Scenarios) != 0 || s.Key != "" {
		t.Fatalf("expected empty scenarios/key, got %d/%q", len(s.Scenarios), s.Key)
	}
	if !reflect.DeepEqual(st, s.State) {
		t.Fatal("decoded state differs from compiled state")
	}
}

// TestWarmColdBitIdentical is the warm-start contract: an engine restored
// from a snapshot produces bit-identical slacks, WNS/TNS, hold slacks and
// gradients to the cold-built engine, at any worker count — including the
// scenario-batched path.
func TestWarmColdBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 21} {
		tab := buildTables(t, seed)
		st, err := core.Compile(tab)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Decode(Encode(st, testScenarios, ""))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			opt := core.Options{TopK: 8, Hold: true, Workers: workers}

			cold, err := core.NewEngine(tab, opt)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := s.Engine(opt)
			if err != nil {
				t.Fatal(err)
			}
			cw, ww := cold.Run(), warm.Run()
			for i := range cw {
				if cw[i] != ww[i] {
					t.Fatalf("seed %d workers %d ep %d: warm slack %v != cold %v", seed, workers, i, ww[i], cw[i])
				}
			}
			if cold.WNS() != warm.WNS() || cold.TNS() != warm.TNS() {
				t.Fatalf("seed %d workers %d: warm WNS/TNS %v/%v != cold %v/%v",
					seed, workers, warm.WNS(), warm.TNS(), cold.WNS(), cold.TNS())
			}
			ch, wh := cold.EvalHoldSlacks(), warm.EvalHoldSlacks()
			for i := range ch {
				if ch[i] != wh[i] {
					t.Fatalf("seed %d workers %d ep %d: warm hold slack %v != cold %v", seed, workers, i, wh[i], ch[i])
				}
			}
			cold.Backward()
			warm.Backward()
			for arc := int32(0); int(arc) < cold.NumArcs(); arc++ {
				for rf := 0; rf < 2; rf++ {
					if cold.ArcGradMean(arc, rf) != warm.ArcGradMean(arc, rf) ||
						cold.ArcGradStd(arc, rf) != warm.ArcGradStd(arc, rf) {
						t.Fatalf("seed %d workers %d arc %d rf %d: gradient mismatch", seed, workers, arc, rf)
					}
				}
			}
			cold.Close()
			warm.Close()

			// Scenario-batched path (S=3).
			bcold, err := batch.New(tab, testScenarios, opt)
			if err != nil {
				t.Fatal(err)
			}
			bwarm, err := s.Batch(nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			bcold.Run()
			bwarm.Run()
			for sc := range testScenarios {
				cs, ws := bcold.Slacks(sc), bwarm.Slacks(sc)
				for i := range cs {
					if cs[i] != ws[i] {
						t.Fatalf("seed %d workers %d scenario %d ep %d: batched warm slack %v != cold %v",
							seed, workers, sc, i, ws[i], cs[i])
					}
				}
				if bcold.WNS(sc) != bwarm.WNS(sc) || bcold.TNS(sc) != bwarm.TNS(sc) {
					t.Fatalf("seed %d workers %d scenario %d: batched WNS/TNS mismatch", seed, workers, sc)
				}
			}
			bcold.Close()
			bwarm.Close()
		}
	}
}

// TestWarmColdBitIdenticalPresets runs the warm/cold differential over real
// bench presets — the configurations the tools actually serve — including
// the S=3 corners path. -short keeps it to the smallest preset.
func TestWarmColdBitIdenticalPresets(t *testing.T) {
	names := []struct {
		name string
		spec func(string) (bench.Spec, error)
	}{
		{"des", bench.IWLSSpec},
		{"block-5", bench.BlockSpec},
	}
	if testing.Short() {
		names = names[:1]
	}
	for _, tc := range names {
		spec, err := tc.spec(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bench.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tab := circuitops.Extract(ref)
		st, err := core.Compile(tab)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Decode(Encode(st, testScenarios, ""))
		if err != nil {
			t.Fatal(err)
		}
		opt := core.Options{TopK: 8, Workers: 4}

		cold, err := core.NewEngine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := s.Engine(opt)
		if err != nil {
			t.Fatal(err)
		}
		cw, ww := cold.Run(), warm.Run()
		for i := range cw {
			if cw[i] != ww[i] {
				t.Fatalf("%s ep %d: warm slack %v != cold %v", tc.name, i, ww[i], cw[i])
			}
		}
		if cold.WNS() != warm.WNS() || cold.TNS() != warm.TNS() {
			t.Fatalf("%s: warm WNS/TNS mismatch", tc.name)
		}
		cold.Backward()
		warm.Backward()
		for arc := int32(0); int(arc) < cold.NumArcs(); arc += 17 {
			for rf := 0; rf < 2; rf++ {
				if cold.ArcGradMean(arc, rf) != warm.ArcGradMean(arc, rf) {
					t.Fatalf("%s arc %d rf %d: gradient mismatch", tc.name, arc, rf)
				}
			}
		}
		cold.Close()
		warm.Close()

		bcold, err := batch.New(tab, testScenarios, opt)
		if err != nil {
			t.Fatal(err)
		}
		bwarm, err := s.Batch(nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		bcold.Run()
		bwarm.Run()
		for sc := range testScenarios {
			cs, ws := bcold.Slacks(sc), bwarm.Slacks(sc)
			for i := range cs {
				if cs[i] != ws[i] {
					t.Fatalf("%s scenario %d ep %d: batched warm slack mismatch", tc.name, sc, i)
				}
			}
		}
		bcold.Close()
		bwarm.Close()
	}
}

// TestExportState closes the save loop: an engine's exported state encodes,
// decodes and restores to an engine with identical results — including arc
// annotations mutated after construction (the serving daemon's committed
// ECOs).
func TestExportState(t *testing.T) {
	tab := buildTables(t, 11)
	opt := core.Options{TopK: 8, Workers: 2}
	e, err := core.NewEngine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d := e.ArcDelay(0, 0)
	d.Mean *= 1.25
	e.SetArcDelay(0, 0, d)
	want := e.Run()

	s, err := Decode(Encode(e.ExportState(), nil, ""))
	if err != nil {
		t.Fatal(err)
	}
	if s.State.Design != e.Design() {
		t.Fatalf("design: got %q want %q", s.State.Design, e.Design())
	}
	warm, err := s.Engine(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	got := warm.Run()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ep %d: restored slack %v != exported engine's %v", i, got[i], want[i])
		}
	}
}

// TestCorruption: every integrity failure is a typed error matching
// ErrCorrupt — truncation at any length, bad magic, bad version, any
// single flipped byte — and never a panic.
func TestCorruption(t *testing.T) {
	st := compileState(t, 5)
	buf := Encode(st, testScenarios, "k")

	expectCorrupt := func(name string, b []byte) {
		t.Helper()
		s, err := Decode(b)
		if err == nil {
			t.Fatalf("%s: decode succeeded on corrupt input", name)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: error %v does not match ErrCorrupt", name, err)
		}
		if s != nil {
			t.Fatalf("%s: non-nil snapshot alongside error", name)
		}
	}

	// Truncation at every prefix length across the header and a stride
	// through the body.
	for n := 0; n < len(buf); n++ {
		if n > 64 && n%977 != 0 {
			continue
		}
		expectCorrupt("truncated", buf[:n])
	}

	// Bad magic.
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	expectCorrupt("magic", bad)

	// Unsupported version.
	bad = append([]byte(nil), buf...)
	bad[8] = 99
	expectCorrupt("version", bad)

	// Any flipped byte must fail the checksum (or a later structural check).
	for off := 0; off < len(buf); off += 131 {
		bad = append([]byte(nil), buf...)
		bad[off] ^= 0x5A
		expectCorrupt("flip", bad)
	}
	// And flipping the checksum itself.
	bad = append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0x01
	expectCorrupt("crc", bad)

	// A forged section count with a recomputed checksum must still fail
	// structurally, not panic: drop the slab sections but keep the CRC valid.
	forged := append([]byte(nil), buf[:headerLen]...)
	forged = appendSection(forged, secMeta, nil)
	expectCorrupt("forged", forged)
}

func TestDecodeRejectsForgedValidCRC(t *testing.T) {
	// A state that passes the checksum but violates structural invariants
	// (fan-in CSR pointing out of range) must be rejected by Validate.
	st := compileState(t, 5)
	if len(st.FaninArc) == 0 {
		t.Skip("no arcs")
	}
	st.FaninArc[0] = int32(len(st.ArcFrom)) + 7 // out of range
	_, err := Decode(Encode(st, nil, ""))
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged state not rejected: %v", err)
	}
}

func FuzzSnapRoundTrip(f *testing.F) {
	st, err := core.Compile(func() *circuitops.Tables {
		b, err := bench.Generate(bench.Spec{
			Name: "fuzz", Seed: 1, Tech: liberty.TechN3(),
			Groups: 1, FFsPerGroup: 4, Layers: 2, Width: 4,
			CrossFrac: 0.1, NumPIs: 2, NumPOs: 2,
			Period: 1, Uncertainty: 10, Die: 40, VioFrac: 0.1,
		})
		if err != nil {
			f.Fatal(err)
		}
		ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
		if err != nil {
			f.Fatal(err)
		}
		return circuitops.Extract(ref)
	}())
	if err != nil {
		f.Fatal(err)
	}
	valid := Encode(st, testScenarios, "fuzz")
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	// Canonical file carrying sections this reader has no schema for: a
	// block-model payload and a synthetic future id.
	f.Add(EncodeExtra(st, testScenarios, "fuzz", []ExtraSection{
		{ID: SecBlockModel, Payload: []byte("opaque block model bytes")},
		{ID: 7001, Payload: []byte{0xDE, 0xAD, 0xBE, 0xEF}},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must never panic; on success the snapshot must re-encode
		// byte-identically (canonical format, unknown sections carried
		// through opaquely) and restore a working engine.
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		if got := EncodeExtra(s.State, s.Scenarios, s.Key, s.Extra); string(got) != string(data) {
			t.Fatal("accepted snapshot does not re-encode byte-identically")
		}
		e, err := s.Engine(core.Options{TopK: 2, Workers: 1})
		if err != nil {
			return // options-level rejection is fine; it must just not panic
		}
		e.Run()
		e.Close()
	})
}

// TestExtraSectionForwardCompat pins the forward-compatibility contract: a
// container carrying section types this reader has no schema for — the
// block-model section, or ids from a future minor version — decodes cleanly,
// leaves the structured content untouched, and re-encodes byte-identically
// through the canonical EncodeExtra framing (unknown data is carried, never
// dropped).
func TestExtraSectionForwardCompat(t *testing.T) {
	st := compileState(t, 11)
	extras := []ExtraSection{
		{ID: SecBlockModel, Payload: []byte("opaque block-model payload")},
		{ID: 7001, Payload: []byte{0xDE, 0xAD, 0xBE, 0xEF}},
	}
	buf := EncodeExtra(st, testScenarios, "fc", extras)
	s, err := Decode(buf)
	if err != nil {
		t.Fatalf("unknown sections must be skipped, not rejected: %v", err)
	}
	if len(s.Extra) != len(extras) {
		t.Fatalf("captured %d extra sections, want %d", len(s.Extra), len(extras))
	}
	for i, ex := range extras {
		if s.Extra[i].ID != ex.ID || !bytes.Equal(s.Extra[i].Payload, ex.Payload) {
			t.Fatalf("extra section %d not carried through intact", i)
		}
	}
	// The structured content decodes exactly as it would without the extras.
	if got, want := Encode(s.State, s.Scenarios, s.Key), Encode(st, testScenarios, "fc"); !bytes.Equal(got, want) {
		t.Fatal("unknown sections perturbed the structured content")
	}
	// Canonical re-encode round-trips the whole file byte-identically.
	if !bytes.Equal(EncodeExtra(s.State, s.Scenarios, s.Key, s.Extra), buf) {
		t.Fatal("re-encode with carried extras is not byte-identical")
	}
	// And a plain Encode of the same state is exactly the extras-free file.
	if bytes.Equal(Encode(s.State, s.Scenarios, s.Key), buf) {
		t.Fatal("extras-free encode unexpectedly matches the extras file")
	}
}
