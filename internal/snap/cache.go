package snap

// Content-addressed snapshot cache: snapshots are stored under
// <dir>/<key>.snap where key is a hash of everything the compiled state
// depends on (input file contents plus build-relevant options and the format
// version), so "same inputs" and "same snapshot" are the same statement and
// no invalidation protocol is needed — a changed netlist simply hashes to a
// different file. Writes go through a temp file in the same directory plus
// an atomic rename, so concurrent tool invocations sharing one
// -snapshot-dir never observe a partial snapshot; the worst race is two
// processes writing the same (identical) file, where last-rename wins. The
// cache is LRU-bounded by bytes using file mtimes as the recency clock
// (loads touch the file).

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/obs"
)

// Cache is a byte-bounded content-addressed snapshot store. All methods are
// safe for concurrent use within and across processes.
type Cache struct {
	dir      string
	maxBytes int64 // <= 0 means unbounded

	hits, misses, evictions, corrupt atomic.Int64
}

// NewCache opens (creating if needed) a snapshot cache under dir, bounded to
// maxBytes of snapshot files (<= 0 for unbounded).
func NewCache(dir string, maxBytes int64) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("snap: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// MaxBytes returns the configured byte bound (<= 0 for unbounded).
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// Path returns where the snapshot for key lives (whether or not it exists).
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, sanitizeKey(key)+".snap")
}

// sanitizeKey keeps cache filenames flat even for hand-made keys: path
// separators and dots cannot escape the cache directory.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
}

// Load returns the cached snapshot for key, or (nil, nil) on a clean miss.
// A corrupt cache entry is removed, counted, and returned as (nil, err) with
// err matching ErrCorrupt — callers log it and take the cold path; the next
// run's write-back repairs the cache.
func (c *Cache) Load(key string) (*Snapshot, error) {
	path := c.Path(key)
	buf, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	s, err := Decode(buf)
	if err != nil {
		c.corrupt.Add(1)
		os.Remove(path)
		return nil, err
	}
	c.hits.Add(1)
	now := time.Now()
	os.Chtimes(path, now, now) // LRU touch; best-effort
	return s, nil
}

// Store serializes st (plus optional scenarios) under key — atomically, via
// a temp file in the cache directory and a rename — then enforces the byte
// bound. Returns the final path and encoded size.
func (c *Cache) Store(key string, st *core.State, scns []batch.Scenario) (string, int64, error) {
	return c.StoreBytes(key, Encode(st, scns, key))
}

// StoreBytes stores an already-encoded snapshot buffer under key with the
// same atomic temp-file + rename + eviction discipline as Store. It is the
// write path for containers Encode doesn't produce directly (e.g. block-model
// sections via EncodeExtra).
func (c *Cache) StoreBytes(key string, buf []byte) (string, int64, error) {
	f, err := os.CreateTemp(c.dir, ".snap-*")
	if err != nil {
		return "", 0, err
	}
	tmp := f.Name()
	_, werr := f.Write(buf)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return "", 0, werr
	}
	path := c.Path(key)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	c.evict(path)
	return path, int64(len(buf)), nil
}

// evict removes oldest-touched snapshots until the cache fits maxBytes,
// never removing keep (the entry just written).
func (c *Cache) evict(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type file struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []file
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{filepath.Join(c.dir, e.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= c.maxBytes {
			return
		}
		if f.path == keep {
			continue
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			c.evictions.Add(1)
		}
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Evictions, Corrupt int64
}

// Stats returns the current counter values.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Corrupt:   c.corrupt.Load(),
	}
}

// Register exposes the cache counters on a metrics registry as
// insta_snap_cache_{hits,misses,evictions,corrupt}_total.
func (c *Cache) Register(reg *obs.Registry) {
	reg.Collector("insta_snap_cache", func(w io.Writer) {
		s := c.Stats()
		for _, row := range []struct {
			name string
			v    int64
		}{
			{"insta_snap_cache_hits_total", s.Hits},
			{"insta_snap_cache_misses_total", s.Misses},
			{"insta_snap_cache_evictions_total", s.Evictions},
			{"insta_snap_cache_corrupt_total", s.Corrupt},
		} {
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", row.name, row.name, row.v)
		}
	})
}

// KeyForInputs derives the content-addressed cache key: a hex SHA-256 over
// the snapshot format version, the given option strings (anything that
// changes the compiled state — e.g. the fallback tech library), and the
// *contents* of the given files. Identical inputs hash to the same key
// regardless of where the files live; any edit changes the key, so stale
// snapshots are unreachable rather than invalidated.
func KeyForInputs(opts []string, files ...string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "insta-snap-v%d\n", Version)
	for _, o := range opts {
		fmt.Fprintf(h, "opt:%d:%s\n", len(o), o)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		info, err := f.Stat()
		if err == nil {
			fmt.Fprintf(h, "file:%d\n", info.Size())
		}
		_, cerr := io.Copy(h, f)
		f.Close()
		if cerr != nil {
			return "", cerr
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// KeyForSpec derives the cache key for a generated preset: presets are pure
// functions of their spec string, so the spec plus the format version is the
// full content address.
func KeyForSpec(parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "insta-snap-v%d\n", Version)
	for _, p := range parts {
		fmt.Fprintf(h, "spec:%d:%s\n", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// KeyForPreset is the canonical key for a built-in benchmark spec, shared by
// every tool that boots presets (cmdutil boot helpers, the exp harnesses) so
// one snapshot serves them all. The %+v rendering is deterministic and covers
// every generation parameter including the tech library tables.
func KeyForPreset(spec bench.Spec) string {
	return KeyForSpec("preset", fmt.Sprintf("%+v", spec))
}
