// Package buffering prototypes INSTA-Buffer, the buffering direction the
// paper names as future work (§V): INSTA's timing gradients rank the
// interconnect arcs whose delay most hurts TNS; long high-gradient branches
// are split with a buffer at the wire midpoint, which cuts the quadratic
// Elmore term and isolates the driver from downstream capacitance. After a
// round of insertions the reference engine rebuilds (buffering changes the
// timing graph topology) and the round is kept only if signoff TNS improved.
package buffering

import (
	"fmt"
	"sort"
	"time"

	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/rc"
	"insta/internal/refsta"
	"insta/internal/sdc"
)

// Config tunes INSTA-Buffer.
type Config struct {
	// MinLen is the minimum branch wirelength (sites) worth buffering.
	MinLen float64
	// MaxPerRound bounds insertions per gradient round.
	MaxPerRound int
	// MaxRounds bounds rebuild rounds.
	MaxRounds int
	// BufferCell names the library cell to insert (footprint BUF).
	BufferCell string
	// TopK/Tau configure the INSTA engine rebuilt each round.
	TopK int
	Tau  float64
}

// DefaultConfig returns settings suitable for the generated designs.
func DefaultConfig() Config {
	return Config{
		MinLen:      25,
		MaxPerRound: 24,
		MaxRounds:   4,
		BufferCell:  "BUF_X4",
		TopK:        4,
		Tau:         0.01,
	}
}

// Result summarizes a buffering run.
type Result struct {
	WNSBefore, WNSAfter float64
	TNSBefore, TNSAfter float64
	BuffersInserted     int
	Rounds              int
	Runtime             time.Duration
}

// Run executes the gradient-guided buffering loop on the design behind con
// and par. It returns the rebuilt reference engine for the final netlist
// together with the result summary.
func Run(d *netlist.Design, lib *liberty.Library, con *sdc.Constraints, par *rc.Parasitics, cfg Config) (*refsta.Engine, Result, error) {
	start := time.Now()
	bufID, ok := lib.CellByName(cfg.BufferCell)
	if !ok {
		return nil, Result{}, fmt.Errorf("buffering: library cell %q not found", cfg.BufferCell)
	}
	bufCell := lib.Cell(bufID)
	if len(bufCell.Inputs) != 1 || len(bufCell.Outputs) != 1 {
		return nil, Result{}, fmt.Errorf("buffering: %q is not a single-input buffer", cfg.BufferCell)
	}

	ref, err := refsta.New(d, lib, con, par, refsta.DefaultConfig())
	if err != nil {
		return nil, Result{}, err
	}
	res := Result{WNSBefore: ref.WNS(), TNSBefore: ref.TNS()}
	prevTNS := res.TNSBefore
	total := 0

	for round := 0; round < cfg.MaxRounds; round++ {
		e, err := core.NewEngine(circuitops.Extract(ref), core.Options{TopK: cfg.TopK, Tau: cfg.Tau, Workers: 1})
		if err != nil {
			return nil, Result{}, err
		}
		e.Run()
		if e.TNS() >= 0 {
			break
		}
		e.Backward()
		grads := e.NetArcGradients()
		sort.Slice(grads, func(a, b int) bool { return grads[a].Grad < grads[b].Grad })

		inserted := 0
		for _, g := range grads {
			if inserted >= cfg.MaxPerRound {
				break
			}
			net := netlist.NetID(g.Net)
			sinkIdx := sinkIndexOf(d, net, netlist.PinID(g.To))
			if sinkIdx < 0 {
				continue
			}
			if par.Nets[net].Branch[sinkIdx].Len < cfg.MinLen {
				continue
			}
			insertBuffer(d, lib, par, bufID, net, sinkIdx, total)
			inserted++
			total++
		}
		if inserted == 0 {
			break
		}
		res.Rounds = round + 1

		// Rebuild the reference engine on the new topology.
		ref, err = refsta.New(d, lib, con, par, refsta.DefaultConfig())
		if err != nil {
			return nil, Result{}, err
		}
		if ref.TNS() <= prevTNS {
			// The round did not help; stop here (the paper's rollback would
			// undo it — we keep netlist surgery monotone and simply halt).
			break
		}
		prevTNS = ref.TNS()
	}

	res.WNSAfter = ref.WNS()
	res.TNSAfter = ref.TNS()
	res.BuffersInserted = total
	res.Runtime = time.Since(start)
	return ref, res, nil
}

func sinkIndexOf(d *netlist.Design, n netlist.NetID, sink netlist.PinID) int {
	for i, s := range d.Nets[n].Sinks {
		if s == sink {
			return i
		}
	}
	return -1
}

// insertBuffer splits net n's branch to sink index si with a buffer placed
// at the wire midpoint and rebuilds both nets' parasitics.
func insertBuffer(d *netlist.Design, lib *liberty.Library, par *rc.Parasitics, bufID int32, n netlist.NetID, si int, serial int) {
	sink := d.Nets[n].Sinks[si]
	bufCell := lib.Cell(bufID)

	dx, dy := d.PinPos(d.Nets[n].Driver)
	sx, sy := d.PinPos(sink)

	c := d.AddCell(fmt.Sprintf("insta_buf%d", serial), bufID, false)
	d.Cells[c].X = (dx + sx) / 2
	d.Cells[c].Y = (dy + sy) / 2
	d.Cells[c].Width = bufCell.Area
	in := d.AddPin(c, bufCell.Inputs[0], netlist.Input, false)
	out := d.AddPin(c, bufCell.Outputs[0], netlist.Output, false)

	d.DisconnectSink(n, sink)
	d.Connect(n, in)
	n2 := d.AddNet(fmt.Sprintf("insta_bufnet%d", serial), out)
	d.Connect(n2, sink)

	// Parasitics: grow the table for the new net, refresh both.
	par.Nets = append(par.Nets, rc.Net{})
	par.RebuildNet(d, n)
	par.RebuildNet(d, n2)
}
