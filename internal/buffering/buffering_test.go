package buffering

import (
	"testing"

	"insta/internal/bench"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/rc"
)

// genLongWireDesign builds a design whose timing is dominated by long
// unbuffered wires, the regime buffering pays off in.
func genLongWireDesign(t testing.TB, seed int64) *bench.Design {
	t.Helper()
	wire := rc.DefaultParams()
	wire.RPerUnit, wire.CPerUnit = 0.15, 0.15
	b, err := bench.Generate(bench.Spec{
		Name: "buftest", Seed: seed, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 10, Layers: 4, Width: 10,
		CrossFrac: 0.15, NumPIs: 4, NumPOs: 4,
		Period: 1, Uncertainty: 10, Die: 200, Wire: &wire,
		VioFrac: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestInstaBufferImprovesTNS(t *testing.T) {
	b := genLongWireDesign(t, 1)
	ref, res, err := Run(b.D, b.Lib, b.Con, b.Par, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BuffersInserted == 0 {
		t.Fatal("no buffers inserted on a long-wire design")
	}
	if res.TNSAfter < res.TNSBefore {
		t.Errorf("buffering degraded TNS: %v -> %v", res.TNSBefore, res.TNSAfter)
	}
	if res.TNSAfter == res.TNSBefore {
		t.Errorf("buffering had no effect: TNS %v with %d buffers", res.TNSAfter, res.BuffersInserted)
	}
	t.Logf("TNS %v -> %v with %d buffers in %d rounds",
		res.TNSBefore, res.TNSAfter, res.BuffersInserted, res.Rounds)

	// The final netlist must still validate and time cleanly.
	if err := b.D.Validate(); err != nil {
		t.Fatalf("post-buffering netlist invalid: %v", err)
	}
	if err := b.Par.Validate(b.D); err != nil {
		t.Fatalf("post-buffering parasitics invalid: %v", err)
	}
	if got := ref.TNS(); got != res.TNSAfter {
		t.Errorf("returned engine TNS %v != result %v", got, res.TNSAfter)
	}
}

func TestRunRejectsBadBufferCell(t *testing.T) {
	b := genLongWireDesign(t, 2)
	cfg := DefaultConfig()
	cfg.BufferCell = "NOPE_X1"
	if _, _, err := Run(b.D, b.Lib, b.Con, b.Par, cfg); err == nil {
		t.Error("unknown buffer cell accepted")
	}
	cfg.BufferCell = "NAND2_X1"
	if _, _, err := Run(b.D, b.Lib, b.Con, b.Par, cfg); err == nil {
		t.Error("multi-input cell accepted as buffer")
	}
}

func TestBufferInsertionSurgery(t *testing.T) {
	b := genLongWireDesign(t, 3)
	d := b.D
	// Find a multi-sink net and split its first sink.
	var net int32 = -1
	for i := range d.Nets {
		if len(d.Nets[i].Sinks) >= 2 && d.Pins[d.Nets[i].Driver].Cell >= 0 {
			net = int32(i)
			break
		}
	}
	if net < 0 {
		t.Skip("no multi-sink net")
	}
	bufID, _ := b.Lib.CellByName("BUF_X4")
	sink := d.Nets[net].Sinks[0]
	nSinksBefore := len(d.Nets[net].Sinks)
	nNetsBefore := len(d.Nets)

	insertBuffer(d, b.Lib, b.Par, bufID, netlist.NetID(net), 0, 999)

	if len(d.Nets[net].Sinks) != nSinksBefore {
		t.Errorf("sink count changed: %d -> %d (split sink replaced by buffer input)",
			nSinksBefore, len(d.Nets[net].Sinks))
	}
	if len(d.Nets) != nNetsBefore+1 {
		t.Errorf("net count %d, want %d", len(d.Nets), nNetsBefore+1)
	}
	// The detached sink now hangs off the new net.
	newNet := d.Pins[sink].Net
	if int(newNet) != nNetsBefore {
		t.Errorf("sink moved to net %d, want %d", newNet, nNetsBefore)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Par.Validate(d); err != nil {
		t.Fatal(err)
	}
}
