// Incremental machinery over a composed (stitched) base: topo edits on the
// flattened chip must recompile through the patched path and the incremental
// levelizer bit-identically to a cold rebuild — stitching introduces pin
// offsets, re-parented clock trees, and cross-block wire arcs that the
// per-block tests never exercise.
package hier

import (
	"reflect"
	"testing"

	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/levelize"
	"insta/internal/num"
	"insta/internal/topo"
)

// composedEdit builds the flattened chip-2x, an edit batch targeting its
// top-level wires (one buffer insertion, one annotation), and the applied
// result.
func composedEdit(t *testing.T) (flatTab *circuitops.Tables, prev *core.State, ops []topo.Op, res *topo.Result) {
	t.Helper()
	run := mustChipRun(t, "chip-2x", nil, core.Options{TopK: 8, Workers: 2}, nil)
	flatTab, _, err := ComposeFlat(run.Spec.Name, run.States, run.Spec.Wires)
	if err != nil {
		t.Fatal(err)
	}
	prev, err = core.Compile(flatTab)
	if err != nil {
		t.Fatal(err)
	}
	// The top-level wires are the last arcs ComposeFlat appends; editing them
	// exercises the cross-block seams specifically.
	nw := len(run.Spec.Wires)
	if nw < 2 {
		t.Fatalf("chip-2x has %d wires", nw)
	}
	wireA := int32(len(flatTab.Arcs) - nw)
	wireB := int32(len(flatTab.Arcs) - 1)
	bufD := [2]num.Dist{{Mean: 5, Std: 0.5}, {Mean: 5.25, Std: 0.5}}
	annD := [2]num.Dist{{Mean: 40, Std: 2}, {Mean: 41, Std: 2}}
	ops = []topo.Op{
		topo.InsertBuffer(wireA, -1, bufD, 0.5),
		topo.Annotate(wireB, annD),
	}
	res, err = topo.Apply(flatTab, ops)
	if err != nil {
		t.Fatal(err)
	}
	return flatTab, prev, ops, res
}

func TestComposedIncrementalPatch(t *testing.T) {
	_, prev, _, res := composedEdit(t)
	coldSt, err := core.Compile(res.Tables)
	if err != nil {
		t.Fatal(err)
	}
	patched, is, err := core.CompileIncrementalPatched(res.Tables, prev, res.Seeds, res.Changed, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("relevel: %+v", is)
	if patched.NumLevels != coldSt.NumLevels {
		t.Fatalf("patched %d levels, cold %d", patched.NumLevels, coldSt.NumLevels)
	}
	if !reflect.DeepEqual(patched.LvLevel, coldSt.LvLevel) {
		t.Fatal("patched levelization differs from cold compile")
	}
	opt := core.Options{TopK: 8, Workers: 2}
	slacks := func(st *core.State) []float64 {
		e, err := core.NewEngineFromState(st, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Run()
		return e.EvalSlacks()
	}
	if !reflect.DeepEqual(slacks(patched), slacks(coldSt)) {
		t.Fatal("patched-state slacks differ from cold compile")
	}
}

func TestComposedIncrementalCSRDirect(t *testing.T) {
	_, prev, _, res := composedEdit(t)
	coldSt, err := core.Compile(res.Tables)
	if err != nil {
		t.Fatal(err)
	}
	prevRes := &levelize.Result{
		Level:      prev.LvLevel,
		NumLevels:  prev.NumLevels,
		Order:      prev.LvOrder,
		LevelStart: prev.LvLevelStart,
	}
	inc, stats, err := levelize.IncrementalCSR(coldSt.NumPins,
		coldSt.FoStart, coldSt.FoAdj, coldSt.FaninStart, coldSt.FaninFrom,
		prevRes, res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("incremental CSR: %+v", stats)
	if inc.NumLevels != coldSt.NumLevels {
		t.Fatalf("incremental %d levels, cold %d", inc.NumLevels, coldSt.NumLevels)
	}
	if !reflect.DeepEqual(inc.Level, coldSt.LvLevel) {
		t.Fatal("incremental levels differ from full levelization")
	}
	if !reflect.DeepEqual(inc.Order, coldSt.LvOrder) ||
		!reflect.DeepEqual(inc.LevelStart, coldSt.LvLevelStart) {
		t.Fatal("incremental schedule differs from full levelization")
	}
	if stats.Region <= 0 || stats.Region >= coldSt.NumPins {
		t.Fatalf("relevel region %d of %d pins is not localized", stats.Region, coldSt.NumPins)
	}
}

func TestComposedTopoSession(t *testing.T) {
	_, prev, ops, res := composedEdit(t)
	opt := core.Options{TopK: 8, Workers: 2}
	e, err := core.NewEngineFromState(prev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	sess, err := topo.NewSession(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Same edit batch, through the session's in-place path this time.
	if _, err := sess.Apply(ops); err != nil {
		t.Fatal(err)
	}
	coldSt, err := core.Compile(res.Tables)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := core.NewEngineFromState(coldSt, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	ce.Run()
	if !reflect.DeepEqual(sess.Engine().EvalSlacks(), ce.EvalSlacks()) {
		t.Fatal("session slacks differ from cold rebuild of the composed edit")
	}
	if sess.Engine().WNS() != ce.WNS() || sess.Engine().TNS() != ce.TNS() {
		t.Fatalf("session WNS/TNS %v/%v != cold %v/%v",
			sess.Engine().WNS(), sess.Engine().TNS(), ce.WNS(), ce.TNS())
	}
}
