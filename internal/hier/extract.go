// Block timing-model extraction: reduce a compiled core.State to the
// boundary-to-boundary arcs, internal constraint summaries, and launch
// distributions of a BlockModel, per scenario.
//
// Two machines produce the numbers:
//
//   - A full engine run over the (scenario-scaled) block supplies the launch
//     arcs (worst internally-launched Top-K entry at each output) and the
//     internal-only endpoint slacks (the engine's slack evaluation replayed
//     with boundary startpoints filtered out).
//
//   - A per-input cone propagation supplies the thru and cons arcs: from
//     each boundary input, seeded at one transition with a zero arrival, the
//     worst RSS-composed path distribution to every reachable pin is pushed
//     level-by-level through the fan-in CSR using exactly the engine's
//     arithmetic (same unateness expansion, same keep-max rule with
//     keep-existing ties). Because the flat engine retains at most one entry
//     per unique startpoint, a Top-1 cone from a single source reproduces
//     the entry the flat engine would carry for that startpoint bit for bit
//     (modulo Top-K eviction, which only ever drops paths from the flat
//     side).
package hier

import (
	"fmt"
	"math"
	"sort"

	"insta/internal/batch"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/sdc"
)

// Extract reduces a compiled block to its interface timing model for the
// given scenario block (nil = nominal). opt supplies the engine
// configuration used for the launch/internal-slack extraction (TopK,
// Workers); hold analysis is block-internal and not part of the model.
func Extract(st *core.State, scns []batch.Scenario, opt core.Options) (*BlockModel, error) {
	scns = NormScenarios(scns)
	ins, outs := Boundary(st)
	if len(ins) == 0 && len(outs) == 0 {
		return nil, fmt.Errorf("hier: %s has no boundary pins", st.Design)
	}
	if opt.TopK < 1 {
		opt.TopK = 16
	}
	opt.Hold = false

	m := &BlockModel{
		Design:     st.Design,
		Hash:       StateHash(st, scns, opt.TopK),
		Period:     st.Period,
		NSigma:     st.NSigma,
		TopK:       opt.TopK,
		SourcePins: st.NumPins,
		SourceArcs: len(st.ArcFrom),
		Ins:        ins,
		Outs:       outs,
		EpPin:      append([]int32(nil), st.EpPin...),
	}

	// Boundary startpoint set (by SP index) for the internal/external split.
	boundarySP := make([]bool, len(st.SpPin))
	for i := range st.SpPin {
		boundarySP[i] = st.SpNode[i] == 0
	}
	exc, err := st.CompileExceptions()
	if err != nil {
		return nil, err
	}

	// Port endpoint requirements and boundary-pair exceptions
	// (scenario-independent: derates scale arcs, never required times).
	m.OutReq = make([]float64, len(outs)*2)
	for o, p := range outs {
		ei := st.EpOfPin[p]
		m.OutReq[o*2+0] = st.EpBase[0][ei]
		m.OutReq[o*2+1] = st.EpBase[1][ei]
	}
	for i, in := range ins {
		for o, p := range outs {
			adj := exc.Lookup(netlist.PinID(in.Pin), netlist.PinID(p))
			if adj.False || adj.Cycles > 0 {
				m.PortExc = append(m.PortExc, PortExc{
					In: int32(i), Out: int32(o),
					False: adj.False, Cycles: int32(adj.Cycles),
				})
			}
		}
	}

	sc := newConeScratch(st.NumPins)
	for _, scn := range scns {
		sst := scaleState(st, scn)
		sm, err := extractScenario(sst, scn, m, boundarySP, exc, sc, opt)
		if err != nil {
			return nil, err
		}
		m.Scen = append(m.Scen, *sm)
	}
	return m, nil
}

// extractScenario produces one scenario's model slabs from the scaled state.
func extractScenario(st *core.State, scn batch.Scenario, m *BlockModel,
	boundarySP []bool, exc *sdc.ExceptionTable, sc *coneScratch, opt core.Options) (*ScenarioModel, error) {

	nI, nO, nEP := len(m.Ins), len(m.Outs), len(st.EpPin)
	sm := &ScenarioModel{
		Scenario:    scn,
		ThruMean:    fill(nI*nO*4, math.Inf(-1)),
		ThruStd:     make([]float64, nI*nO*4),
		ConsMean:    fill(nI*2, math.Inf(-1)),
		ConsStd:     make([]float64, nI*2),
		ConsReq:     fill(nI*2, math.Inf(1)),
		ConsRawMean: fill(nI*2, math.Inf(-1)),
		ConsRawStd:  make([]float64, nI*2),
		ConsRawReq:  fill(nI*2, math.Inf(1)),
		LaunchMean:  fill(nO*2, math.Inf(-1)),
		LaunchStd:   make([]float64, nO*2),
		IntSlack:    make([]float64, nEP),
	}
	// Port endpoints are excluded from cons aggregation: their checks are
	// composed from thru arcs + OutReq/PortExc, so a wired output's phantom
	// check can be dropped exactly like flat drops its EP row.
	isPortEp := make(map[int32]bool, nO)
	for _, p := range m.Outs {
		isPortEp[p] = true
	}

	// Engine pass: launch arcs and internal-only slacks.
	e, err := core.NewEngineFromState(st, opt)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	e.Run()

	outIdx := make(map[int32]int, nO)
	for o, p := range m.Outs {
		outIdx[p] = o
		for rf := 0; rf < 2; rf++ {
			arr, mean, std, sps := e.TopEntries(rf, p)
			for kk := range arr {
				sp := sps[kk]
				if sp < 0 {
					break // queues are packed: empties trail
				}
				if boundarySP[sp] {
					continue
				}
				sm.LaunchMean[o*2+rf] = mean[kk]
				sm.LaunchStd[o*2+rf] = std[kk]
				break // entries are descending: first internal is worst
			}
		}
	}

	// Internal-only slack evaluation: the engine's slack loop with boundary
	// startpoints filtered out. These slacks never depend on boundary
	// arrivals, so they transfer into any composition unchanged.
	sm.WNSInt, sm.TNSInt = 0, 0
	for i := range st.EpPin {
		p := st.EpPin[i]
		best := math.Inf(1)
		for rf := 0; rf < 2; rf++ {
			arr, _, _, sps := e.TopEntries(rf, p)
			for kk := range arr {
				sp := sps[kk]
				if sp < 0 {
					break
				}
				if boundarySP[sp] {
					continue
				}
				adj := exc.Lookup(netlist.PinID(st.SpPin[sp]), netlist.PinID(p))
				if adj.False {
					continue
				}
				req := st.EpBase[rf][i] +
					float64(adj.CycleCount()-1)*st.Period +
					stCredit(st, st.SpNode[sp], st.EpNode[i])
				if s := req - arr[kk]; s < best {
					best = s
				}
			}
		}
		sm.IntSlack[i] = best
		if best < sm.WNSInt {
			sm.WNSInt = best
		}
		if best < 0 {
			sm.TNSInt += best
		}
	}

	// Cone passes: thru and cons arcs. Boundary-launched constraints fold
	// the CPPR credit of a root-launched path (lca(root, ·) is always the
	// root), which is constant per block.
	credit0 := 2 * st.NSigma * math.Sqrt(st.ClkCumVar[0])
	for i, in := range m.Ins {
		for r0 := 0; r0 < 2; r0++ {
			sc.run(st, in.Pin, r0)
			// Thru: the cone seeded at transition r0 yields the r0 slot of
			// every positive-unate arc and the (1-r0) slot of every
			// negative-unate arc.
			for o, p := range m.Outs {
				if mval, sval, ok := sc.at(r0, p); ok {
					k := thruIdx(nO, i, o, 0, r0)
					sm.ThruMean[k], sm.ThruStd[k] = mval, sval
				}
				if mval, sval, ok := sc.at(1-r0, p); ok {
					k := thruIdx(nO, i, o, 1, 1-r0)
					sm.ThruMean[k], sm.ThruStd[k] = mval, sval
				}
			}
			// Cons: worst boundary-launched constraint across every reached
			// internal (cell) endpoint, selected at a zero-variance boundary
			// input — the one compression step that can reorder paths
			// (DESIGN.md §16). The exception-aware variant mirrors a flat
			// check launched at this input; the raw variant mirrors a
			// cross-block check (no matching exceptions, zero shared clock).
			bestExc, bestRaw := math.Inf(1), math.Inf(1)
			for _, p := range sc.eps {
				if isPortEp[p] {
					continue
				}
				ei := st.EpOfPin[p]
				for er := 0; er < 2; er++ {
					mval, sval, ok := sc.at(er, p)
					if !ok {
						continue
					}
					worst := mval + st.NSigma*sval
					if qr := st.EpBase[er][ei]; qr-worst < bestRaw {
						bestRaw = qr - worst
						sm.ConsRawMean[i*2+r0] = mval
						sm.ConsRawStd[i*2+r0] = sval
						sm.ConsRawReq[i*2+r0] = qr
					}
					adj := exc.Lookup(netlist.PinID(in.Pin), netlist.PinID(p))
					if adj.False {
						continue
					}
					q := st.EpBase[er][ei] +
						float64(adj.CycleCount()-1)*st.Period +
						credit0
					if q-worst < bestExc {
						bestExc = q - worst
						sm.ConsMean[i*2+r0] = mval
						sm.ConsStd[i*2+r0] = sval
						sm.ConsReq[i*2+r0] = q
					}
				}
			}
		}
	}
	return sm, nil
}

func fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// coneScratch holds the epoch-stamped per-pin scratch of the cone
// propagation, reused across every (input, transition, scenario) run.
type coneScratch struct {
	mean, std [2][]float64
	stamp     []int32 // pin reached in epoch
	epoch     int32
	reach     []int32 // reached pins of the current run, level-sorted
	eps       []int32 // reached endpoint pins of the current run
	queue     []int32
}

func newConeScratch(n int) *coneScratch {
	sc := &coneScratch{stamp: make([]int32, n)}
	for rf := 0; rf < 2; rf++ {
		sc.mean[rf] = make([]float64, n)
		sc.std[rf] = make([]float64, n)
	}
	for i := range sc.stamp {
		sc.stamp[i] = -1
	}
	return sc
}

// at reads the cone arrival at pin p for transition rf; ok is false when no
// path from the source reaches (p, rf).
func (sc *coneScratch) at(rf int, p int32) (mean, std float64, ok bool) {
	if sc.stamp[p] != sc.epoch || math.IsInf(sc.mean[rf][p], -1) {
		return 0, 0, false
	}
	return sc.mean[rf][p], sc.std[rf][p], true
}

// run propagates the worst path distribution from source (seeded with a
// zero arrival at transition r0 only) through its fan-out cone, in level
// order, with the engine's exact per-contribution arithmetic.
func (sc *coneScratch) run(st *core.State, source int32, r0 int) {
	sc.epoch++
	sc.reach = sc.reach[:0]
	sc.eps = sc.eps[:0]
	sc.queue = sc.queue[:0]

	mark := func(p int32) {
		if sc.stamp[p] == sc.epoch {
			return
		}
		sc.stamp[p] = sc.epoch
		sc.mean[0][p], sc.mean[1][p] = math.Inf(-1), math.Inf(-1)
		sc.std[0][p], sc.std[1][p] = 0, 0
		sc.queue = append(sc.queue, p)
		if p != source {
			sc.reach = append(sc.reach, p)
			if st.EpOfPin[p] >= 0 {
				sc.eps = append(sc.eps, p)
			}
		}
	}
	mark(source)
	sc.mean[r0][source] = 0

	// Reachability sweep over the fan-out CSR. Startpoint pins freeze their
	// seeds in the engine (propagatePin early-returns), so the cone never
	// expands into one.
	for qi := 0; qi < len(sc.queue); qi++ {
		p := sc.queue[qi]
		for pos := st.FoStart[p]; pos < st.FoStart[p+1]; pos++ {
			t := st.FoAdj[pos]
			if st.SpOfPin[t] >= 0 {
				continue
			}
			mark(t)
		}
	}

	// Level-order relaxation: arcs only cross to strictly higher levels, so
	// sorting reached pins by level (intra-level order is immaterial) gives
	// a valid schedule without touching unreached pins.
	sort.Slice(sc.reach, func(a, b int) bool {
		pa, pb := sc.reach[a], sc.reach[b]
		if st.LvLevel[pa] != st.LvLevel[pb] {
			return st.LvLevel[pa] < st.LvLevel[pb]
		}
		return pa < pb
	})
	for _, p := range sc.reach {
		for rf := 0; rf < 2; rf++ {
			bestA := math.Inf(-1)
			bestM, bestS := math.Inf(-1), 0.0
			for pos := st.FaninStart[p]; pos < st.FaninStart[p+1]; pos++ {
				arc := st.FaninArc[pos]
				parent := st.FaninFrom[pos]
				if sc.stamp[parent] != sc.epoch {
					continue
				}
				am := st.ArcMean[rf][arc]
				as := st.ArcStd[rf][arc]
				inRFs, n := liberty.Unate(st.FaninSense[pos]).InRFs(rf)
				for ri := 0; ri < n; ri++ {
					pm := sc.mean[inRFs[ri]][parent]
					if math.IsInf(pm, -1) {
						continue
					}
					ps := sc.std[inRFs[ri]][parent]
					mv := pm + am
					sv := math.Sqrt(ps*ps + as*as)
					// Keep-max with keep-existing ties: InsertTopK's update
					// rule for an already-queued startpoint.
					if a := mv + st.NSigma*sv; a > bestA {
						bestA, bestM, bestS = a, mv, sv
					}
				}
			}
			sc.mean[rf][p], sc.std[rf][p] = bestM, bestS
		}
	}
}
