// Package hier is the hierarchical timing layer: block interface
// timing-model extraction and full-chip composition, following the interface
// timing-model literature (Li/Chen/Schlichtmann, "Timing Model Extraction
// for Sequential Circuits Considering Process Variations") carried through
// INSTA's POCV statistical moments.
//
// A compiled block (core.State) is reduced to a BlockModel: its boundary
// pins plus, per scenario,
//
//   - thru arcs    — compressed input-to-output path delay distributions
//     (one positive- and one negative-unate arc per boundary pair, so all
//     four rise/fall path classes are represented exactly),
//   - cons arcs    — the worst boundary-launched internal constraint per
//     input transition, folded into a (delay, required-time) pair,
//   - launch arcs  — the worst internally-launched arrival distribution per
//     output transition, and
//   - internal summaries — per-endpoint internal-launch-only slacks with
//     full exception and CPPR-credit handling, plus their WNS/TNS.
//
// Because POCV path composition is RSS (sigma = sqrt of summed variances), a
// single compressed arc carrying the summed mean and RSS'd sigma of a path
// composes *exactly* like the full chain for any boundary arrival; the model
// error comes only from path *selection* — the compressed arc commits to the
// path that is worst at a zero-variance boundary input, while the flat engine
// re-ranks per arrival. DESIGN.md §16 derives the resulting slack error
// bound: at most NSigma times the boundary arrival sigma per crossing.
//
// The composition engine (compose.go) stitches N block models plus
// top-level interconnect into a tiny circuitops.Tables/core.State and runs
// the ordinary flat engine over it; flat.go builds the equivalent flattened
// chip for the differential suites; persist.go serializes models through the
// internal/snap container keyed by the source state's content hash.
package hier

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"insta/internal/batch"
	"insta/internal/core"
	"insta/internal/snap"
)

// InPin is one boundary input: the pin id in the source block plus the
// block's original launch distribution (used when the input stays unwired in
// a composition).
type InPin struct {
	Pin       int32
	Mean, Std float64
}

// ScenarioModel holds one scenario's extracted arc values, laid out as flat
// slabs over the boundary (I inputs, O outputs, nEP block endpoints).
//
// Thru values are indexed by thruIdx(i, o, sense, rf): sense 0 is the
// positive-unate arc (output transition rf caused by input transition rf),
// sense 1 the negative-unate arc (caused by 1-rf). Cons and Launch are
// indexed per transition: in*2+rf and out*2+rf. A mean of -Inf (with sigma
// 0) marks "no path", exactly the engine's empty-queue sentinel; a ConsReq
// of +Inf marks "no constraint".
type ScenarioModel struct {
	Scenario batch.Scenario

	ThruMean, ThruStd []float64 // I*O*4

	// Cons come in two variants selected by how the input ends up wired in a
	// composition. The exception-aware variant (Cons*) folds the block's
	// (input, endpoint) exceptions and the root-launch CPPR credit — exactly
	// what a flat analysis applies when the input is a real startpoint
	// (unwired). The raw variant (ConsRaw*) folds neither: a wired input's
	// arrivals launch from another block, so block-local exceptions keyed on
	// the input pin never match and the cross-block CPPR credit is zero.
	// Both aggregate over internal (cell) endpoints only; port endpoints are
	// handled by OutReq/PortExc at composition time.
	ConsMean, ConsStd, ConsReq          []float64 // I*2
	ConsRawMean, ConsRawStd, ConsRawReq []float64 // I*2

	LaunchMean, LaunchStd []float64 // O*2

	// IntSlack is every block endpoint's internal-launch-only slack (full
	// exception and CPPR handling), independent of boundary arrivals and
	// therefore exact. WNSInt/TNSInt summarize it engine-style (floored at
	// zero / sum of negatives).
	IntSlack       []float64
	WNSInt, TNSInt float64
}

// BlockModel is the interface timing model of one block: boundary pins,
// per-scenario compressed arcs, and the content hash of the source state it
// was extracted from (the cache invalidation key — edit a block and exactly
// its model misses).
type BlockModel struct {
	Design         string
	Hash           string
	Period, NSigma float64
	TopK           int

	// Source dimensions, recorded for sanity checks at recovery time.
	SourcePins, SourceArcs int

	Ins   []InPin
	Outs  []int32 // boundary output pin ids in the source block
	EpPin []int32 // every block endpoint pin id, aligned with IntSlack

	// OutReq is each boundary output's endpoint base required time per
	// transition (O*2), scenario-independent like every required time. In a
	// composition an unwired output keeps its endpoint check (flat keeps the
	// port's EP row); a wired output loses it (flat drops the row — the path
	// continues into the next block).
	OutReq []float64

	// PortExc replicates the block's (boundary input, boundary output)
	// exception pairs so compositions can re-key them onto top-graph pins:
	// they apply exactly when the input is unwired (then it is the
	// startpoint, as in flat) and are inert otherwise.
	PortExc []PortExc

	Scen []ScenarioModel
}

// PortExc is one boundary-to-boundary exception: input index In, output
// index Out, with the compiled sdc adjustment.
type PortExc struct {
	In, Out int32
	False   bool
	Cycles  int32
}

// thruIdx locates one thru value: input i, output o, sense x (0 = positive
// unate, 1 = negative), output transition rf.
func thruIdx(nOuts, i, o, x, rf int) int { return ((i*nOuts+o)*2+x)*2 + rf }

// Thru returns the (mean, std) of the compressed i→o arc with sense x for
// output transition rf.
func (s *ScenarioModel) Thru(nOuts, i, o, x, rf int) (mean, std float64) {
	k := thruIdx(nOuts, i, o, x, rf)
	return s.ThruMean[k], s.ThruStd[k]
}

// Boundary infers a compiled block's boundary pins from its SP/EP tables:
// inputs are startpoints bound to the clock-tree root (ports — flop clock
// pins bind to leaf nodes), outputs are endpoints with an infinite hold
// requirement (only cell endpoints carry finite hold checks).
func Boundary(st *core.State) (ins []InPin, outs []int32) {
	for i := range st.SpPin {
		if st.SpNode[i] == 0 {
			ins = append(ins, InPin{Pin: st.SpPin[i], Mean: st.SpMean[i], Std: st.SpStd[i]})
		}
	}
	for i := range st.EpPin {
		if math.IsInf(st.EpHold[0][i], 1) && math.IsInf(st.EpHold[1][i], 1) {
			outs = append(outs, st.EpPin[i])
		}
	}
	return ins, outs
}

// NormScenarios normalizes a scenario list: nil or empty means the single
// nominal (all scales 1) scenario, so hashing and extraction agree on what
// "no scenarios" means.
func NormScenarios(scns []batch.Scenario) []batch.Scenario {
	if len(scns) == 0 {
		return []batch.Scenario{{Name: "nominal", DelayScale: 1, SigmaScale: 1, RCScale: 1}}
	}
	return scns
}

// StateHash content-addresses a model's inputs: the full compiled state (via
// its canonical snapshot encoding), the scenario block, and the extraction
// Top-K. Any block edit — an arc annotation, the netlist structure, an SP/EP
// attribute, a scenario derate — lands in the encoding and flips the hash,
// so re-extraction of an unchanged block hits the cache and an edited block
// invalidates exactly its own model.
func StateHash(st *core.State, scns []batch.Scenario, topK int) string {
	h := sha256.New()
	h.Write([]byte("insta-hier-model-v1\x00"))
	h.Write(snap.Encode(st, NormScenarios(scns), ""))
	var tk [8]byte
	binary.LittleEndian.PutUint64(tk[:], uint64(topK))
	h.Write(tk[:])
	return hex.EncodeToString(h.Sum(nil))
}

// scaleState returns st with its arc annotations scaled for one scenario —
// the exact multiplications of batch.ScaleTables applied to the compiled
// slabs (cell-arc means by DelayScale, net-arc means by RCScale, sigmas by
// SigmaScale), with every other slab shared. The nominal scenario returns st
// itself.
func scaleState(st *core.State, scn batch.Scenario) *core.State {
	if scn.DelayScale == 1 && scn.SigmaScale == 1 && scn.RCScale == 1 {
		return st
	}
	out := *st
	for rf := 0; rf < 2; rf++ {
		out.ArcMean[rf] = make([]float64, len(st.ArcMean[rf]))
		out.ArcStd[rf] = make([]float64, len(st.ArcStd[rf]))
		for i := range st.ArcMean[rf] {
			ms := scn.DelayScale
			if st.ArcKind[i] == 1 {
				ms = scn.RCScale
			}
			out.ArcMean[rf][i] = st.ArcMean[rf][i] * ms
			out.ArcStd[rf][i] = st.ArcStd[rf][i] * scn.SigmaScale
		}
	}
	return &out
}

// stLCA is the engine's clock-tree lowest-common-ancestor walk over a
// state's slabs (extraction computes CPPR credit without an engine).
func stLCA(st *core.State, a, b int32) int32 {
	for st.ClkDepth[a] > st.ClkDepth[b] {
		a = st.ClkParent[a]
	}
	for st.ClkDepth[b] > st.ClkDepth[a] {
		b = st.ClkParent[b]
	}
	for a != b {
		a = st.ClkParent[a]
		b = st.ClkParent[b]
	}
	return a
}

// stCredit is the engine's CPPR credit (2·nσ·sqrt of shared variance) over a
// state's slabs.
func stCredit(st *core.State, l, c int32) float64 {
	return 2 * st.NSigma * math.Sqrt(st.ClkCumVar[stLCA(st, l, c)])
}
