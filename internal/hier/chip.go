// Chip build harness: resolve a bench.ChipSpec into compiled block states,
// extract (or cache-load) one model per unique block, and assemble the Chip
// for composition — the shared front half of cmd/insta-hier, the correlate
// report, and the benchmark suites.
package hier

import (
	"fmt"
	"math"
	"sort"
	"time"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/snap"
)

// ChipRun is a resolved chip: per-instance compiled states and models plus
// the extraction/caching cost of getting there.
type ChipRun struct {
	Spec   bench.ChipSpec
	States []*core.State // per instance; repeated blocks share pointers
	Models []*BlockModel // per instance; repeated blocks share pointers
	Chip   *Chip

	CacheHits, CacheMisses int   // cache traffic (zero when no cache is given)
	Extracted              int   // unique models extracted this run
	ExtractNs              int64 // model extraction (cache misses only)
}

// BuildChip resolves spec: boot compiles each unique block preset once (boot
// is the caller's name→compiled-state path — cold generate or warm
// snapshot), and each unique state is extracted once, through cache when one
// is given: a model whose source-state content hash is already stored loads
// instead of re-extracting, and any block edit flips its hash so exactly
// that model misses.
func BuildChip(spec bench.ChipSpec, boot func(name string) (*core.State, error),
	scns []batch.Scenario, opt core.Options, cache *snap.Cache) (*ChipRun, error) {

	r := &ChipRun{
		Spec:   spec,
		States: make([]*core.State, len(spec.Blocks)),
		Models: make([]*BlockModel, len(spec.Blocks)),
	}
	states := make(map[string]*core.State)
	models := make(map[string]*BlockModel)
	for i, name := range spec.Blocks {
		st, ok := states[name]
		if !ok {
			var err error
			if st, err = boot(name); err != nil {
				return nil, fmt.Errorf("hier: boot %s: %w", name, err)
			}
			states[name] = st
		}
		r.States[i] = st
		m, ok := models[name]
		if !ok {
			var err error
			if m, err = obtainModel(st, scns, opt, cache, r); err != nil {
				return nil, fmt.Errorf("hier: extract %s: %w", name, err)
			}
			models[name] = m
		}
		r.Models[i] = m
	}
	r.Chip = &Chip{Name: spec.Name, Models: r.Models, Wires: spec.Wires}
	return r, nil
}

// obtainModel loads the state's model from cache or extracts (and stores) it.
func obtainModel(st *core.State, scns []batch.Scenario, opt core.Options,
	cache *snap.Cache, r *ChipRun) (*BlockModel, error) {

	topK := opt.TopK
	if topK < 1 {
		topK = 16
	}
	if cache != nil {
		hash := StateHash(st, scns, topK)
		if m, err := LoadModel(cache, hash); err == nil && m != nil {
			r.CacheHits++
			return m, nil
		}
		r.CacheMisses++
	}
	t0 := time.Now()
	m, err := Extract(st, scns, opt)
	if err != nil {
		return nil, err
	}
	r.Extracted++
	r.ExtractNs += time.Since(t0).Nanoseconds()
	if cache != nil {
		if _, err := SaveModel(cache, m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// RecoveredSlacks runs per-block recovery for scenario si of a finished
// analysis and concatenates the kept endpoints in fm's flat order, yielding
// a slack vector directly comparable to the flattened chip's EvalSlacks.
func (r *ChipRun) RecoveredSlacks(a *Analysis, si int, fm *FlatMap, opt core.Options) ([]float64, error) {
	var out []float64
	for inst := range r.States {
		sl, err := a.RecoverBlock(si, inst, r.States[inst], opt)
		if err != nil {
			return nil, err
		}
		for _, ei := range fm.EpKeep[inst] {
			out = append(out, sl[ei])
		}
	}
	return out, nil
}

// Deltas summarizes per-endpoint slack differences between two analyses of
// the same endpoints (typically flat vs hierarchical-recovered).
type Deltas struct {
	N        int     // finite pairs compared
	Max      float64 // max |delta|
	Mean     float64 // mean |delta|
	Q50      float64
	Q95      float64
	Q99      float64
	Disagree int // endpoints where only one side is violating
}

// DeltaStats compares two equally-ordered slack vectors, skipping endpoints
// unconstrained on both sides (+Inf slack).
func DeltaStats(a, b []float64) Deltas {
	var d Deltas
	var abs []float64
	for i := range a {
		if i >= len(b) {
			break
		}
		if math.IsInf(a[i], 1) && math.IsInf(b[i], 1) {
			continue
		}
		v := math.Abs(a[i] - b[i])
		abs = append(abs, v)
		d.Mean += v
		if v > d.Max {
			d.Max = v
		}
		if (a[i] < 0) != (b[i] < 0) {
			d.Disagree++
		}
	}
	d.N = len(abs)
	if d.N == 0 {
		return d
	}
	d.Mean /= float64(d.N)
	sort.Float64s(abs)
	q := func(p float64) float64 {
		k := int(p * float64(d.N-1))
		return abs[k]
	}
	d.Q50, d.Q95, d.Q99 = q(0.50), q(0.95), q(0.99)
	return d
}

// ScenarioBound evaluates the documented error bound for one composed
// scenario from observed data: NSigma times the worst boundary arrival sigma
// at any wired input of the top graph, once per instance (presets wire
// feed-forward, so a path crosses at most len(instances)-1 boundaries; the
// extra term covers the launch-selection step at the origin block).
func ScenarioBound(sr *ScenarioResult) float64 {
	x := sr.Index
	maxStd := 0.0
	for inst := range x.WiredIn {
		for j, wired := range x.WiredIn[inst] {
			if !wired {
				continue
			}
			for rf := 0; rf < 2; rf++ {
				_, _, std, sps := sr.Engine.TopEntries(rf, x.InPin(inst, j))
				for k := range sps {
					if sps[k] < 0 {
						break
					}
					if std[k] > maxStd {
						maxStd = std[k]
					}
				}
			}
		}
	}
	return ErrorBound(sr.Tab.NSigma, maxStd, len(x.Base))
}

// CompareScenario is one scenario's flat-vs-hierarchical comparison.
type CompareScenario struct {
	Name             string
	FlatWNS, FlatTNS float64 // flattened-chip ground truth
	HierWNS, HierTNS float64 // composed fast summary
	RecWNS, RecTNS   float64 // per-block recovery (flat semantics)
	Bound            float64 // model-error bound evaluated on this scenario
	Deltas           Deltas  // per-endpoint |flat - recovered|
}

// Compare is a full flat-vs-hierarchical differential over a chip run.
type Compare struct {
	Scen              []CompareScenario
	FlatPins, TopPins int
	FlatNs            int64 // flat path: scale + compile + propagate, all scenarios
	AnalyzeNs         int64 // hier path: compose + compile + propagate, all scenarios
	RecoverNs         int64 // per-block recovery, all scenarios
}

// CompareFlat flattens the chip, runs both analysis paths over every
// scenario, and reports WNS/TNS deltas, per-endpoint recovery accuracy, and
// wall time for each side.
func (r *ChipRun) CompareFlat(opt core.Options) (*Compare, error) {
	flatTab, fm, err := ComposeFlat(r.Spec.Name, r.States, r.Spec.Wires)
	if err != nil {
		return nil, err
	}
	opt.Hold = false
	t0 := time.Now()
	a, err := Analyze(r.Chip, opt)
	if err != nil {
		return nil, err
	}
	defer a.Close()
	c := &Compare{
		FlatPins:  flatTab.NumPins,
		AnalyzeNs: time.Since(t0).Nanoseconds(),
	}
	for si, sr := range a.Scen {
		c.TopPins = sr.Tab.NumPins
		t0 = time.Now()
		fst, err := core.Compile(batch.ScaleTables(flatTab, sr.Scenario))
		if err != nil {
			return nil, err
		}
		fe, err := core.NewEngineFromState(fst, opt)
		if err != nil {
			return nil, err
		}
		fe.Run()
		flatSl, flatWNS, flatTNS := fe.EvalSlacks(), fe.WNS(), fe.TNS()
		fe.Close()
		c.FlatNs += time.Since(t0).Nanoseconds()

		t0 = time.Now()
		rec, err := r.RecoveredSlacks(a, si, fm, opt)
		if err != nil {
			return nil, err
		}
		c.RecoverNs += time.Since(t0).Nanoseconds()
		cs := CompareScenario{
			Name:    sr.Scenario.Name,
			FlatWNS: flatWNS, FlatTNS: flatTNS,
			HierWNS: sr.WNS, HierTNS: sr.TNS,
			Bound:  ScenarioBound(sr),
			Deltas: DeltaStats(flatSl, rec),
		}
		for _, s := range rec {
			if s < cs.RecWNS {
				cs.RecWNS = s
			}
			if s < 0 {
				cs.RecTNS += s
			}
		}
		c.Scen = append(c.Scen, cs)
	}
	return c, nil
}

// ErrorBound is the documented model-error bound on any composed-path slack:
// nsigma times the worst boundary arrival sigma, once per block crossing
// (DESIGN.md §16). crossings is the longest chain of blocks a path can
// traverse; maxBoundaryStd the largest arrival sigma at any wired boundary
// input.
func ErrorBound(nsigma, maxBoundaryStd float64, crossings int) float64 {
	return nsigma * maxBoundaryStd * float64(crossings)
}
