// Full-chip composition: stitch N block models plus top-level interconnect
// into a composed circuitops.Tables/core.State orders of magnitude smaller
// than the flattened chip, and run the ordinary flat engine over it.
//
// Each instance contributes four pin groups to the top graph:
//
//	ins   — its boundary inputs (wire sinks; unwired ones keep the block's
//	        original launch distribution as a startpoint)
//	outs  — its boundary outputs (wire sources)
//	veps  — one virtual endpoint per input, carrying the block's worst
//	        boundary-launched internal constraint as (cons arc, required
//	        time); this is where cross-block paths are checked
//	vlps  — one virtual launch startpoint per output, driving the block's
//	        worst internally-launched arrival into the output
//
// plus the thru arc pairs in→out. The top graph has a single clock node with
// zero variance, so cross-block CPPR credit is zero by construction — the
// same assumption extraction folds into its constraint requirements
// (DESIGN.md §16 spells out when the two agree exactly).
//
// Per-block endpoint slacks are recovered on demand: RecoverBlock
// back-annotates the top engine's boundary arrivals onto the block as feeder
// startpoints and re-runs the flat engine over that one block, yielding the
// min of internal and boundary-launched slack per endpoint — the flat
// semantics, at one-block cost.
package hier

import (
	"fmt"
	"math"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/sdc"
)

// Chip is a composition request: one block model per instance plus the
// top-level interconnect. Wire ports index the models' Ins/Outs lists.
type Chip struct {
	Name   string
	Models []*BlockModel
	Wires  []bench.ChipWire
}

// TopIndex maps (instance, boundary port) to pin ids in the composed top
// graph and records which ports the interconnect drives.
type TopIndex struct {
	NumPins  int
	Base     []int32
	NumIns   []int
	NumOuts  []int
	WiredIn  [][]bool
	WiredOut [][]bool
}

// InPin returns the top-graph pin of instance inst's boundary input j.
func (x *TopIndex) InPin(inst, j int) int32 { return x.Base[inst] + int32(j) }

// OutPin returns the top-graph pin of instance inst's boundary output j.
func (x *TopIndex) OutPin(inst, j int) int32 {
	return x.Base[inst] + int32(x.NumIns[inst]+j)
}

// VepPin returns the virtual endpoint pin guarding instance inst's input j.
func (x *TopIndex) VepPin(inst, j int) int32 {
	return x.Base[inst] + int32(x.NumIns[inst]+x.NumOuts[inst]+j)
}

// VlpPin returns the virtual launch pin behind instance inst's output j.
func (x *TopIndex) VlpPin(inst, j int) int32 {
	return x.Base[inst] + int32(2*x.NumIns[inst]+x.NumOuts[inst]+j)
}

// validate checks the chip's models and wires are composable and returns the
// scenario count every model agrees on.
func (c *Chip) validate() (int, error) {
	if len(c.Models) == 0 {
		return 0, fmt.Errorf("hier: chip %q has no instances", c.Name)
	}
	m0 := c.Models[0]
	for i, m := range c.Models {
		if m == nil {
			return 0, fmt.Errorf("hier: chip %q instance %d has no model", c.Name, i)
		}
		if m.Period != m0.Period || m.NSigma != m0.NSigma {
			return 0, fmt.Errorf("hier: instance %d (%s) period/nsigma %v/%v != instance 0 (%s) %v/%v",
				i, m.Design, m.Period, m.NSigma, m0.Design, m0.Period, m0.NSigma)
		}
		if len(m.Scen) != len(m0.Scen) {
			return 0, fmt.Errorf("hier: instance %d has %d scenarios, instance 0 has %d",
				i, len(m.Scen), len(m0.Scen))
		}
		for s := range m.Scen {
			if m.Scen[s].Scenario != m0.Scen[s].Scenario {
				return 0, fmt.Errorf("hier: instance %d scenario %d %+v != instance 0 %+v",
					i, s, m.Scen[s].Scenario, m0.Scen[s].Scenario)
			}
		}
	}
	sink := make(map[[2]int]bool)
	for wi, w := range c.Wires {
		if w.FromInst < 0 || w.FromInst >= len(c.Models) || w.ToInst < 0 || w.ToInst >= len(c.Models) {
			return 0, fmt.Errorf("hier: wire %d instance out of range", wi)
		}
		if w.FromPort < 0 || w.FromPort >= len(c.Models[w.FromInst].Outs) {
			return 0, fmt.Errorf("hier: wire %d source port %d out of range", wi, w.FromPort)
		}
		if w.ToPort < 0 || w.ToPort >= len(c.Models[w.ToInst].Ins) {
			return 0, fmt.Errorf("hier: wire %d sink port %d out of range", wi, w.ToPort)
		}
		if w.Std < 0 {
			return 0, fmt.Errorf("hier: wire %d negative sigma", wi)
		}
		key := [2]int{w.ToInst, w.ToPort}
		if sink[key] {
			return 0, fmt.Errorf("hier: wire %d duplicates sink %d.%d", wi, w.ToInst, w.ToPort)
		}
		sink[key] = true
	}
	return len(m0.Scen), nil
}

// newTopIndex lays the instances out and marks the wired ports.
func (c *Chip) newTopIndex() *TopIndex {
	x := &TopIndex{
		Base:     make([]int32, len(c.Models)),
		NumIns:   make([]int, len(c.Models)),
		NumOuts:  make([]int, len(c.Models)),
		WiredIn:  make([][]bool, len(c.Models)),
		WiredOut: make([][]bool, len(c.Models)),
	}
	n := int32(0)
	for i, m := range c.Models {
		x.Base[i] = n
		x.NumIns[i], x.NumOuts[i] = len(m.Ins), len(m.Outs)
		x.WiredIn[i] = make([]bool, len(m.Ins))
		x.WiredOut[i] = make([]bool, len(m.Outs))
		n += int32(2*len(m.Ins) + 2*len(m.Outs))
	}
	x.NumPins = int(n)
	for _, w := range c.Wires {
		x.WiredIn[w.ToInst][w.ToPort] = true
		x.WiredOut[w.FromInst][w.FromPort] = true
	}
	return x
}

// ComposeTop stitches the chip's top graph for scenario index si: block
// models become launch/cons/thru arcs and virtual SP/EP rows, wires become
// net arcs with the scenario's RC and sigma derates (matching what the
// flattened chip's ScaleTables pass would do to them).
func ComposeTop(c *Chip, si int) (*circuitops.Tables, *TopIndex, error) {
	nScen, err := c.validate()
	if err != nil {
		return nil, nil, err
	}
	if si < 0 || si >= nScen {
		return nil, nil, fmt.Errorf("hier: scenario %d out of range (%d)", si, nScen)
	}
	x := c.newTopIndex()
	scn := c.Models[0].Scen[si].Scenario

	t := &circuitops.Tables{
		Design:     c.Name,
		NumPins:    x.NumPins,
		Period:     c.Models[0].Period,
		NSigma:     c.Models[0].NSigma,
		ClockNodes: []circuitops.ClockNodeRow{{Parent: -1, CumVar: 0}},
	}
	neg := math.Inf(-1)
	for i, m := range c.Models {
		sm := &m.Scen[si]
		nO := len(m.Outs)
		// Virtual launch pins: worst internally-launched arrival per output.
		// Unwired outputs keep their port endpoint check (OutReq), as flat
		// keeps the port's EP row — but only for boundary-launched paths:
		// internally-launched ones are covered exactly (exceptions, CPPR) by
		// the block's IntSlack, so the vlp's arrivals are masked off the
		// port check with a false-path row.
		for o := range m.Outs {
			outPin := x.OutPin(i, o)
			if !x.WiredOut[i][o] {
				t.EPs = append(t.EPs, circuitops.EPRow{
					Pin: outPin, CaptureNode: 0,
					BaseReqRise: m.OutReq[o*2+0], BaseReqFall: m.OutReq[o*2+1],
					HoldReqRise: math.Inf(1), HoldReqFall: math.Inf(1),
				})
			}
			lm := sm.LaunchMean[o*2 : o*2+2]
			ls := sm.LaunchStd[o*2 : o*2+2]
			if lm[0] == neg && lm[1] == neg {
				continue
			}
			vlp := x.VlpPin(i, o)
			t.SPs = append(t.SPs, circuitops.SPRow{Pin: vlp, ClockNode: 0})
			t.Arcs = append(t.Arcs, circuitops.ArcRow{
				From: vlp, To: outPin,
				Kind: 0, Sense: uint8(liberty.PositiveUnate), Cell: -1, Net: -1,
				MeanRise: lm[0], StdRise: ls[0],
				MeanFall: lm[1], StdFall: ls[1],
			})
			if !x.WiredOut[i][o] {
				t.Exceptions = append(t.Exceptions, circuitops.ExceptionRow{
					SPPin: vlp, EPPin: outPin, Kind: uint8(sdc.FalsePath),
				})
			}
		}
		// The block's boundary-pair exceptions, re-keyed onto top pins. They
		// bind by startpoint pin, so they apply exactly when the input is
		// unwired (it is then the startpoint, as in flat) and never match a
		// wired input's cross-block arrivals.
		for _, pe := range m.PortExc {
			sp, ep := x.InPin(i, int(pe.In)), x.OutPin(i, int(pe.Out))
			if pe.False {
				t.Exceptions = append(t.Exceptions, circuitops.ExceptionRow{
					SPPin: sp, EPPin: ep, Kind: uint8(sdc.FalsePath),
				})
			}
			if pe.Cycles > 0 {
				t.Exceptions = append(t.Exceptions, circuitops.ExceptionRow{
					SPPin: sp, EPPin: ep, Kind: uint8(sdc.Multicycle), Cycles: pe.Cycles,
				})
			}
		}
		for j, in := range m.Ins {
			// Unwired inputs keep the block's own launch distribution.
			if !x.WiredIn[i][j] {
				t.SPs = append(t.SPs, circuitops.SPRow{
					Pin: x.InPin(i, j), ClockNode: 0, Mean: in.Mean, Std: in.Std,
				})
			}
			// Cons arc + virtual endpoint: the block's worst
			// boundary-launched internal constraint per input transition —
			// exception-aware variant when the input is a real startpoint,
			// raw variant when a wire drives it cross-block.
			cm := sm.ConsMean[j*2 : j*2+2]
			cs := sm.ConsStd[j*2 : j*2+2]
			cq := sm.ConsReq[j*2 : j*2+2]
			if x.WiredIn[i][j] {
				cm = sm.ConsRawMean[j*2 : j*2+2]
				cs = sm.ConsRawStd[j*2 : j*2+2]
				cq = sm.ConsRawReq[j*2 : j*2+2]
			}
			if cm[0] > neg || cm[1] > neg {
				vep := x.VepPin(i, j)
				t.Arcs = append(t.Arcs, circuitops.ArcRow{
					From: x.InPin(i, j), To: vep,
					Kind: 0, Sense: uint8(liberty.PositiveUnate), Cell: -1, Net: -1,
					MeanRise: cm[0], StdRise: cs[0],
					MeanFall: cm[1], StdFall: cs[1],
				})
				t.EPs = append(t.EPs, circuitops.EPRow{
					Pin: vep, CaptureNode: 0,
					BaseReqRise: cq[0], BaseReqFall: cq[1],
					HoldReqRise: math.Inf(1), HoldReqFall: math.Inf(1),
				})
			}
			// Thru arcs: the positive/negative unate pair per boundary pair.
			for o := range m.Outs {
				for xx := 0; xx < 2; xx++ {
					mr, sr := sm.Thru(nO, j, o, xx, 0)
					mf, sf := sm.Thru(nO, j, o, xx, 1)
					if mr == neg && mf == neg {
						continue
					}
					sense := liberty.PositiveUnate
					if xx == 1 {
						sense = liberty.NegativeUnate
					}
					t.Arcs = append(t.Arcs, circuitops.ArcRow{
						From: x.InPin(i, j), To: x.OutPin(i, o),
						Kind: 0, Sense: uint8(sense), Cell: -1, Net: -1,
						MeanRise: mr, StdRise: sr,
						MeanFall: mf, StdFall: sf,
					})
				}
			}
		}
	}
	// Top-level interconnect, derated like any flattened net arc.
	for wi, w := range c.Wires {
		mean := w.Mean * scn.RCScale
		std := w.Std * scn.SigmaScale
		t.Arcs = append(t.Arcs, circuitops.ArcRow{
			From: x.OutPin(w.FromInst, w.FromPort), To: x.InPin(w.ToInst, w.ToPort),
			Kind: 1, Sense: uint8(liberty.PositiveUnate), Cell: -1, Net: int32(wi),
			MeanRise: mean, StdRise: std,
			MeanFall: mean, StdFall: std,
		})
	}
	return t, x, nil
}

// ScenarioResult is one scenario's composed-graph analysis.
type ScenarioResult struct {
	Scenario batch.Scenario
	Tab      *circuitops.Tables
	Index    *TopIndex
	Engine   *core.Engine

	// TopWNS/TopTNS summarize the virtual endpoints of the top graph (the
	// cross-block constraints); WNS/TNS fold in the blocks' internal
	// summaries. WNS is exact within the model error; TNS is an upper bound
	// on magnitude — an endpoint violated by both an internal and a
	// boundary-launched path contributes through both terms, where flat
	// analysis takes their min (DESIGN.md §16). The recovery path reports
	// flat-semantics slacks.
	TopWNS, TopTNS float64
	WNS, TNS       float64
}

// Analysis is a full hierarchical chip analysis: one composed top graph and
// engine per scenario.
type Analysis struct {
	Chip *Chip
	Scen []*ScenarioResult
}

// Analyze composes and propagates the chip's top graph for every scenario.
// The per-scenario engines stay live for boundary back-annotation
// (RecoverBlock); Close releases them.
func Analyze(c *Chip, opt core.Options) (*Analysis, error) {
	nScen, err := c.validate()
	if err != nil {
		return nil, err
	}
	if opt.TopK < 1 {
		opt.TopK = 16
	}
	opt.Hold = false
	a := &Analysis{Chip: c}
	for si := 0; si < nScen; si++ {
		sr, err := analyzeScenario(c, si, opt)
		if err != nil {
			a.Close()
			return nil, err
		}
		a.Scen = append(a.Scen, sr)
	}
	return a, nil
}

// analyzeScenario is one scenario's compose + compile + propagate + summary
// pass — the unit the hierarchical benchmark times.
func analyzeScenario(c *Chip, si int, opt core.Options) (*ScenarioResult, error) {
	tab, x, err := ComposeTop(c, si)
	if err != nil {
		return nil, err
	}
	st, err := core.Compile(tab)
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngineFromState(st, opt)
	if err != nil {
		return nil, err
	}
	e.Run()
	sr := &ScenarioResult{
		Scenario: c.Models[0].Scen[si].Scenario,
		Tab:      tab,
		Index:    x,
		Engine:   e,
		TopWNS:   e.WNS(),
		TopTNS:   e.TNS(),
	}
	// Fold in the blocks' internal summaries, skipping wired-out port
	// endpoints — flat analysis drops those EP rows entirely (the paths
	// continue into the next block), so their internal slacks are phantom
	// checks in a composition.
	sr.WNS, sr.TNS = sr.TopWNS, sr.TopTNS
	for inst, m := range c.Models {
		sm := &m.Scen[si]
		skip := make(map[int32]bool)
		for o, p := range m.Outs {
			if x.WiredOut[inst][o] {
				skip[p] = true
			}
		}
		for ei, s := range sm.IntSlack {
			if skip[m.EpPin[ei]] {
				continue
			}
			if s < sr.WNS {
				sr.WNS = s
			}
			if s < 0 {
				sr.TNS += s
			}
		}
	}
	return sr, nil
}

// Close releases every scenario engine.
func (a *Analysis) Close() {
	for _, sr := range a.Scen {
		if sr != nil && sr.Engine != nil {
			sr.Engine.Close()
		}
	}
}

// RecoverBlock back-annotates scenario si's boundary arrivals onto instance
// inst and re-runs the flat engine over that single block, returning every
// block endpoint's slack (aligned with the model's EpPin list). Wired inputs
// are re-seeded through feeder startpoints carrying the top engine's worst
// arrival entry per transition; unwired inputs keep their original
// startpoint rows, so input-keyed exceptions still apply exactly as they do
// in a flattened analysis. src must be the same compiled state the
// instance's model was extracted from.
func (a *Analysis) RecoverBlock(si, inst int, src *core.State, opt core.Options) ([]float64, error) {
	if si < 0 || si >= len(a.Scen) {
		return nil, fmt.Errorf("hier: scenario %d out of range (%d)", si, len(a.Scen))
	}
	if inst < 0 || inst >= len(a.Chip.Models) {
		return nil, fmt.Errorf("hier: instance %d out of range (%d)", inst, len(a.Chip.Models))
	}
	m := a.Chip.Models[inst]
	if src.NumPins != m.SourcePins || len(src.ArcFrom) != m.SourceArcs {
		return nil, fmt.Errorf("hier: state for %s has %d pins / %d arcs, model extracted from %d / %d",
			m.Design, src.NumPins, len(src.ArcFrom), m.SourcePins, m.SourceArcs)
	}
	sr := a.Scen[si]
	x := sr.Index

	tab := batch.ScaleTables(src.Tables(), sr.Scenario)
	wiredPins := make(map[int32]int, len(m.Ins)) // block pin -> boundary index
	var wired []int
	for j := range m.Ins {
		if x.WiredIn[inst][j] {
			wiredPins[m.Ins[j].Pin] = j
			wired = append(wired, j)
		}
	}
	// Drop the wired inputs' startpoint rows; their arrivals now come from
	// the top graph through feeder pins.
	sps := make([]circuitops.SPRow, 0, len(tab.SPs))
	for _, s := range tab.SPs {
		if _, ok := wiredPins[s.Pin]; ok {
			continue
		}
		sps = append(sps, s)
	}
	tab.SPs = sps
	for fi, j := range wired {
		feeder := int32(tab.NumPins + fi)
		row := circuitops.ArcRow{
			From: feeder, To: m.Ins[j].Pin,
			Kind: 0, Sense: uint8(liberty.PositiveUnate), Cell: -1, Net: -1,
		}
		for rf := 0; rf < 2; rf++ {
			_, mean, std, spsQ := sr.Engine.TopEntries(rf, x.InPin(inst, j))
			mv, sv := math.Inf(-1), 0.0
			if len(spsQ) > 0 && spsQ[0] >= 0 {
				mv, sv = mean[0], std[0]
			}
			if rf == 0 {
				row.MeanRise, row.StdRise = mv, sv
			} else {
				row.MeanFall, row.StdFall = mv, sv
			}
		}
		tab.Arcs = append(tab.Arcs, row)
		tab.SPs = append(tab.SPs, circuitops.SPRow{Pin: feeder, ClockNode: 0})
	}
	tab.NumPins += len(wired)

	st, err := core.Compile(tab)
	if err != nil {
		return nil, err
	}
	opt.Hold = false
	if opt.TopK < 1 {
		opt.TopK = m.TopK
	}
	e, err := core.NewEngineFromState(st, opt)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	e.Run()
	return e.EvalSlacks(), nil
}
