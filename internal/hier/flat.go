// Flattened-chip construction: the ground truth the hierarchical path is
// measured against. ComposeFlat builds the same multi-block chip as
// ComposeTop — same instances, same wires — as one flat circuitops.Tables,
// so the differential suites can compare per-endpoint slacks directly.
package hier

import (
	"fmt"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
)

// FlatMap relates the flattened chip back to its instances: pin offsets and,
// per instance, which block endpoint rows survived flattening (wired-out
// ports stop being endpoints once a wire drives through them) and where that
// instance's endpoints start in the flat EP order.
type FlatMap struct {
	PinBase []int32
	EpBase  []int
	EpKeep  [][]int32 // per instance: kept block endpoint indices, in order
}

// ComposeFlat flattens the chip: every instance's full tables are offset and
// concatenated under a fresh chip-level clock root, wired input ports lose
// their startpoint rows (the driving wire feeds them), wired output ports
// lose their endpoint rows, and the interconnect becomes ordinary net arcs.
// states must align with the instance list the models were extracted from —
// one compiled block state per instance (sharing pointers for repeated
// blocks is fine and cheap).
func ComposeFlat(name string, states []*core.State, wires []bench.ChipWire) (*circuitops.Tables, *FlatMap, error) {
	if len(states) == 0 {
		return nil, nil, fmt.Errorf("hier: flat chip %q has no instances", name)
	}
	for i, st := range states {
		if st == nil {
			return nil, nil, fmt.Errorf("hier: flat chip %q instance %d has no state", name, i)
		}
		if st.Period != states[0].Period || st.NSigma != states[0].NSigma {
			return nil, nil, fmt.Errorf("hier: instance %d period/nsigma differs from instance 0", i)
		}
	}

	// Wired ports by (instance, block pin id).
	type port struct {
		inst int
		pin  int32
	}
	wiredIn := make(map[port]bool)
	wiredOut := make(map[port]bool)
	tabs := make(map[*core.State]*circuitops.Tables)
	bounds := make([][2][]int32, len(states)) // per instance: ins pins, outs pins
	for i, st := range states {
		if tabs[st] == nil {
			tabs[st] = st.Tables()
		}
		ins, outs := Boundary(st)
		pins := make([]int32, len(ins))
		for j, in := range ins {
			pins[j] = in.Pin
		}
		bounds[i] = [2][]int32{pins, outs}
	}
	for wi, w := range wires {
		if w.FromInst < 0 || w.FromInst >= len(states) || w.ToInst < 0 || w.ToInst >= len(states) {
			return nil, nil, fmt.Errorf("hier: wire %d instance out of range", wi)
		}
		if w.FromPort < 0 || w.FromPort >= len(bounds[w.FromInst][1]) {
			return nil, nil, fmt.Errorf("hier: wire %d source port %d out of range", wi, w.FromPort)
		}
		if w.ToPort < 0 || w.ToPort >= len(bounds[w.ToInst][0]) {
			return nil, nil, fmt.Errorf("hier: wire %d sink port %d out of range", wi, w.ToPort)
		}
		wiredIn[port{w.ToInst, bounds[w.ToInst][0][w.ToPort]}] = true
		wiredOut[port{w.FromInst, bounds[w.FromInst][1][w.FromPort]}] = true
	}

	out := &circuitops.Tables{
		Design: name,
		Period: states[0].Period,
		NSigma: states[0].NSigma,
		// Fresh zero-variance chip root; every block clock tree hangs off it,
		// so cross-block CPPR credit is zero — the assumption the extracted
		// constraint requirements fold in (DESIGN.md §16).
		ClockNodes: []circuitops.ClockNodeRow{{Parent: -1, CumVar: 0}},
	}
	fm := &FlatMap{
		PinBase: make([]int32, len(states)),
		EpBase:  make([]int, len(states)),
		EpKeep:  make([][]int32, len(states)),
	}
	pinBase, cellBase, netBase := int32(0), int32(0), int32(0)
	for i, st := range states {
		tab := tabs[st]
		fm.PinBase[i] = pinBase
		fm.EpBase[i] = len(out.EPs)
		clkBase := int32(len(out.ClockNodes))

		for _, cn := range tab.ClockNodes {
			p := cn.Parent + clkBase
			if cn.Parent < 0 {
				p = 0 // block root re-parents under the chip root
			}
			out.ClockNodes = append(out.ClockNodes, circuitops.ClockNodeRow{Parent: p, CumVar: cn.CumVar})
		}
		maxCell, maxNet := int32(0), int32(0)
		for _, a := range tab.Arcs {
			r := a
			r.From += pinBase
			r.To += pinBase
			if r.Cell >= 0 {
				if r.Cell >= maxCell {
					maxCell = r.Cell + 1
				}
				r.Cell += cellBase
			}
			if r.Net >= 0 {
				if r.Net >= maxNet {
					maxNet = r.Net + 1
				}
				r.Net += netBase
			}
			out.Arcs = append(out.Arcs, r)
		}
		for _, s := range tab.SPs {
			if wiredIn[port{i, s.Pin}] {
				continue
			}
			r := s
			r.Pin += pinBase
			r.ClockNode += clkBase
			out.SPs = append(out.SPs, r)
		}
		for ei, e := range tab.EPs {
			if wiredOut[port{i, e.Pin}] {
				continue
			}
			r := e
			r.Pin += pinBase
			r.CaptureNode += clkBase
			out.EPs = append(out.EPs, r)
			fm.EpKeep[i] = append(fm.EpKeep[i], int32(ei))
		}
		for xi, x := range tab.Exceptions {
			if x.SPPin < 0 || x.EPPin < 0 {
				// An open ("any") exception would widen to cross-block paths
				// in the flat chip but stay block-local in the extracted
				// model; composable blocks must pin both ends.
				return nil, nil, fmt.Errorf("hier: instance %d exception %d has an open endpoint", i, xi)
			}
			r := x
			r.SPPin += pinBase
			r.EPPin += pinBase
			out.Exceptions = append(out.Exceptions, r)
		}
		pinBase += int32(st.NumPins)
		cellBase += maxCell
		netBase += maxNet
	}
	out.NumPins = int(pinBase)
	for wi, w := range wires {
		out.Arcs = append(out.Arcs, circuitops.ArcRow{
			From: fm.PinBase[w.FromInst] + bounds[w.FromInst][1][w.FromPort],
			To:   fm.PinBase[w.ToInst] + bounds[w.ToInst][0][w.ToPort],
			Kind: 1, Sense: uint8(liberty.PositiveUnate), Cell: -1, Net: netBase + int32(wi),
			MeanRise: w.Mean, StdRise: w.Std,
			MeanFall: w.Mean, StdFall: w.Std,
		})
	}
	return out, fm, nil
}
