// Block-model codec tests: structural round-trip through the SecBlockModel
// payload, cache-backed save/load, and a fuzzer holding DecodeModel
// panic-free on arbitrary bytes.
package hier

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"insta/internal/batch"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/snap"
)

// minimalTables is a 3-pin block — port startpoint, one cell arc, one net
// arc, port endpoint — small enough for fuzz seeding.
func minimalTables() *circuitops.Tables {
	inf := math.Inf(1)
	return &circuitops.Tables{
		Design: "mini", NumPins: 3, Period: 10, NSigma: 3,
		ClockNodes: []circuitops.ClockNodeRow{{Parent: -1, CumVar: 0}},
		SPs:        []circuitops.SPRow{{Pin: 0, ClockNode: 0}},
		EPs: []circuitops.EPRow{{
			Pin: 2, CaptureNode: 0,
			BaseReqRise: 8, BaseReqFall: 8,
			HoldReqRise: inf, HoldReqFall: inf,
		}},
		Arcs: []circuitops.ArcRow{
			{From: 0, To: 1, Kind: 0, Sense: uint8(liberty.PositiveUnate), Cell: -1, Net: -1,
				MeanRise: 1, StdRise: 0.1, MeanFall: 1.2, StdFall: 0.15},
			{From: 1, To: 2, Kind: 1, Sense: uint8(liberty.PositiveUnate), Cell: -1, Net: -1,
				MeanRise: 0.5, StdRise: 0.05, MeanFall: 0.5, StdFall: 0.05},
		},
	}
}

func testModel(tb testing.TB) *BlockModel {
	tb.Helper()
	st := bootBlock(tb, "des")
	m, err := Extract(st, batch.DefaultScenarios(), core.Options{TopK: 8, Workers: 2})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestModelRoundTrip(t *testing.T) {
	m := testModel(t)
	buf := EncodeModel(m)
	m2, err := DecodeModel(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("decoded model differs from original")
	}
	// Canonical: re-encode is byte-identical.
	if !bytes.Equal(buf, EncodeModel(m2)) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestModelDecodeRejects(t *testing.T) {
	m := testModel(t)
	buf := EncodeModel(m)
	if _, err := DecodeModel(append(buf, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeModel(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[0]++ // version
	if _, err := DecodeModel(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
}

func TestSaveLoadModel(t *testing.T) {
	cache, err := snap.NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t)
	if _, err := SaveModel(cache, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(cache, m.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("loaded model differs from saved model")
	}
	// Unknown hash is a clean miss, not an error.
	if got, err := LoadModel(cache, "0000"); err != nil || got != nil {
		t.Fatalf("unknown hash: model=%v err=%v (want clean miss)", got != nil, err)
	}
	// A mis-keyed entry (payload hash != requested hash) is an error.
	buf := snap.EncodeExtra(&core.State{Design: m.Design}, nil, modelKey("feed"),
		[]snap.ExtraSection{{ID: snap.SecBlockModel, Payload: EncodeModel(m)}})
	if _, _, err := cache.StoreBytes(modelKey("feed"), buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(cache, "feed"); err == nil {
		t.Error("mis-keyed cache entry not rejected")
	}
}

func FuzzDecodeModel(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeModel(&BlockModel{Design: "d", Hash: "h", Period: 1, NSigma: 3, TopK: 4}))
	st, err := core.Compile(minimalTables())
	if err == nil {
		if m, err := Extract(st, nil, core.Options{TopK: 2}); err == nil {
			f.Add(EncodeModel(m))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeModel(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode byte-identically (the format
		// has no redundancy and rejects trailing bytes).
		if !bytes.Equal(EncodeModel(m), data) {
			t.Fatal("accepted payload does not re-encode byte-identically")
		}
	})
}
