// Block-model persistence: a BlockModel serializes to one SecBlockModel
// section inside an ordinary internal/snap container (versioned, CRC'd, and
// skipped cleanly by readers that predate the section id), stored in a
// snap.Cache under a key derived from the source state's content hash — so
// editing a block invalidates exactly its own model and re-extracting an
// unchanged block is a cache hit.
package hier

import (
	"encoding/binary"
	"fmt"
	"math"

	"insta/internal/batch"
	"insta/internal/core"
	"insta/internal/snap"
)

// modelVersion is the SecBlockModel payload layout version.
const modelVersion = 1

// modelKey is the cache key a model with the given source hash lives under.
func modelKey(hash string) string { return "hiermodel-" + hash }

// EncodeModel serializes a block model into the SecBlockModel payload layout
// (little-endian, u32-length-prefixed strings, fixed-width slabs whose
// lengths are implied by the boundary dimensions).
func EncodeModel(m *BlockModel) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint16(b, modelVersion)
	b = appendModelString(b, m.Design)
	b = appendModelString(b, m.Hash)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Period))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.NSigma))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.TopK))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.SourcePins))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.SourceArcs))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Ins)))
	for _, in := range m.Ins {
		b = binary.LittleEndian.AppendUint32(b, uint32(in.Pin))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(in.Mean))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(in.Std))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Outs)))
	for _, p := range m.Outs {
		b = binary.LittleEndian.AppendUint32(b, uint32(p))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.EpPin)))
	for _, p := range m.EpPin {
		b = binary.LittleEndian.AppendUint32(b, uint32(p))
	}
	for _, v := range m.OutReq {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.PortExc)))
	for _, pe := range m.PortExc {
		b = binary.LittleEndian.AppendUint32(b, uint32(pe.In))
		b = binary.LittleEndian.AppendUint32(b, uint32(pe.Out))
		flag := byte(0)
		if pe.False {
			flag = 1
		}
		b = append(b, flag)
		b = binary.LittleEndian.AppendUint32(b, uint32(pe.Cycles))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Scen)))
	for si := range m.Scen {
		s := &m.Scen[si]
		b = appendModelString(b, s.Scenario.Name)
		for _, v := range []float64{s.Scenario.DelayScale, s.Scenario.SigmaScale, s.Scenario.RCScale} {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		for _, slab := range [][]float64{
			s.ThruMean, s.ThruStd,
			s.ConsMean, s.ConsStd, s.ConsReq,
			s.ConsRawMean, s.ConsRawStd, s.ConsRawReq,
			s.LaunchMean, s.LaunchStd,
			s.IntSlack,
		} {
			for _, v := range slab {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
			}
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.WNSInt))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.TNSInt))
	}
	return b
}

func appendModelString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// modelCursor is a bounds-checked reader over a SecBlockModel payload; every
// overrun surfaces as an error, never a panic, so DecodeModel is safe on
// arbitrary bytes.
type modelCursor struct {
	b   []byte
	err error
}

func (c *modelCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("hier: bad block model: "+format, args...)
	}
}

func (c *modelCursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.b) {
		c.fail("need %d bytes, have %d", n, len(c.b))
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *modelCursor) u16() uint16 {
	if b := c.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (c *modelCursor) u32() uint32 {
	if b := c.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (c *modelCursor) u64() uint64 {
	if b := c.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (c *modelCursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *modelCursor) str() string {
	n := c.u32()
	if uint64(n) > uint64(len(c.b)) {
		c.fail("string length %d exceeds payload", n)
		return ""
	}
	return string(c.take(int(n)))
}

// count reads an element count and sanity-checks it against the bytes left
// (each element consumes at least min bytes), so a forged header cannot
// trigger a huge allocation.
func (c *modelCursor) count(min int) int {
	n := c.u32()
	if c.err == nil && uint64(n)*uint64(min) > uint64(len(c.b)) {
		c.fail("count %d exceeds remaining payload", n)
	}
	if c.err != nil {
		return 0
	}
	return int(n)
}

func (c *modelCursor) f64slab(n int) []float64 {
	if c.err != nil {
		return nil
	}
	if n*8 > len(c.b) {
		c.fail("slab of %d floats exceeds remaining payload", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = c.f64()
	}
	return out
}

// DecodeModel parses a SecBlockModel payload.
func DecodeModel(payload []byte) (*BlockModel, error) {
	c := &modelCursor{b: payload}
	if v := c.u16(); c.err == nil && v != modelVersion {
		return nil, fmt.Errorf("hier: block model version %d (want %d)", v, modelVersion)
	}
	m := &BlockModel{
		Design:     c.str(),
		Hash:       c.str(),
		Period:     c.f64(),
		NSigma:     c.f64(),
		TopK:       int(c.u32()),
		SourcePins: int(c.u64()),
		SourceArcs: int(c.u64()),
	}
	nI := c.count(20)
	for i := 0; i < nI && c.err == nil; i++ {
		m.Ins = append(m.Ins, InPin{Pin: int32(c.u32()), Mean: c.f64(), Std: c.f64()})
	}
	nO := c.count(4)
	for i := 0; i < nO && c.err == nil; i++ {
		m.Outs = append(m.Outs, int32(c.u32()))
	}
	nEP := c.count(4)
	for i := 0; i < nEP && c.err == nil; i++ {
		m.EpPin = append(m.EpPin, int32(c.u32()))
	}
	m.OutReq = c.f64slab(nO * 2)
	nPE := c.count(13)
	for i := 0; i < nPE && c.err == nil; i++ {
		pe := PortExc{In: int32(c.u32()), Out: int32(c.u32())}
		if f := c.take(1); f != nil {
			pe.False = f[0] != 0
		}
		pe.Cycles = int32(c.u32())
		if c.err == nil {
			m.PortExc = append(m.PortExc, pe)
		}
	}
	// Each scenario's fixed-width body alone needs this many bytes, which
	// bounds the count a forged header can claim.
	perScen := 4 + 3*8 + 8*(8*nI*nO+12*nI+4*nO+nEP+2)
	nScen := c.count(perScen)
	for si := 0; si < nScen && c.err == nil; si++ {
		s := ScenarioModel{Scenario: batch.Scenario{
			Name: c.str(),
		}}
		s.Scenario.DelayScale = c.f64()
		s.Scenario.SigmaScale = c.f64()
		s.Scenario.RCScale = c.f64()
		s.ThruMean = c.f64slab(nI * nO * 4)
		s.ThruStd = c.f64slab(nI * nO * 4)
		s.ConsMean = c.f64slab(nI * 2)
		s.ConsStd = c.f64slab(nI * 2)
		s.ConsReq = c.f64slab(nI * 2)
		s.ConsRawMean = c.f64slab(nI * 2)
		s.ConsRawStd = c.f64slab(nI * 2)
		s.ConsRawReq = c.f64slab(nI * 2)
		s.LaunchMean = c.f64slab(nO * 2)
		s.LaunchStd = c.f64slab(nO * 2)
		s.IntSlack = c.f64slab(nEP)
		s.WNSInt = c.f64()
		s.TNSInt = c.f64()
		if c.err == nil {
			m.Scen = append(m.Scen, s)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if len(c.b) != 0 {
		return nil, fmt.Errorf("hier: bad block model: %d trailing bytes", len(c.b))
	}
	return m, nil
}

// SaveModel stores the model in the snapshot cache under its content-hash
// key, wrapped in a minimal snap container (so the file carries the format's
// magic, version, and CRC, and readers without the section id skip it
// cleanly).
func SaveModel(c *snap.Cache, m *BlockModel) (string, error) {
	key := modelKey(m.Hash)
	path, _, err := c.StoreBytes(key, ModelContainer(m))
	return path, err
}

// ModelContainer wraps a model in its standalone snap container — what
// SaveModel stores and what insta-extract -block-model writes to disk.
func ModelContainer(m *BlockModel) []byte {
	return snap.EncodeExtra(&core.State{Design: m.Design}, nil, modelKey(m.Hash),
		[]snap.ExtraSection{{ID: snap.SecBlockModel, Payload: EncodeModel(m)}})
}

// LoadModel fetches the model extracted from a source state with the given
// content hash; (nil, nil) is a clean miss. A cached file whose payload
// doesn't decode to a model with the requested hash is an error (matching
// what it is: a corrupt or mis-keyed entry).
func LoadModel(c *snap.Cache, hash string) (*BlockModel, error) {
	s, err := c.Load(modelKey(hash))
	if err != nil || s == nil {
		return nil, err
	}
	for _, ex := range s.Extra {
		if ex.ID != snap.SecBlockModel {
			continue
		}
		m, err := DecodeModel(ex.Payload)
		if err != nil {
			return nil, err
		}
		if m.Hash != hash {
			return nil, fmt.Errorf("hier: cached model hash %.12s… does not match requested %.12s…", m.Hash, hash)
		}
		return m, nil
	}
	return nil, fmt.Errorf("hier: cache entry %s has no block-model section", modelKey(hash))
}
