// Differential and cache tests for the hierarchical layer: the flattened
// chip (ComposeFlat + the ordinary engine) is the ground truth, and the
// hierarchical path — extract, compose, analyze, recover — must land within
// the documented model-error bound of it on every stitched preset.
package hier

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/refsta"
	"insta/internal/snap"
)

// blockStates caches compiled block presets across tests — block generation
// plus reference timing is by far the slowest part of the suite.
var blockStates = struct {
	sync.Mutex
	m map[string]*core.State
}{m: map[string]*core.State{}}

func bootBlock(tb testing.TB, name string) *core.State {
	tb.Helper()
	blockStates.Lock()
	defer blockStates.Unlock()
	if st, ok := blockStates.m[name]; ok {
		return st
	}
	spec, err := bench.ChipBlockSpec(name)
	if err != nil {
		tb.Fatal(err)
	}
	b, err := bench.Generate(spec)
	if err != nil {
		tb.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	st, err := core.Compile(circuitops.Extract(ref))
	if err != nil {
		tb.Fatal(err)
	}
	blockStates.m[name] = st
	return st
}

func mustChipRun(tb testing.TB, chip string, scns []batch.Scenario,
	opt core.Options, cache *snap.Cache) *ChipRun {
	tb.Helper()
	spec, err := bench.ChipSpecByName(chip)
	if err != nil {
		tb.Fatal(err)
	}
	run, err := BuildChip(spec, func(n string) (*core.State, error) {
		return bootBlock(tb, n), nil
	}, scns, opt, cache)
	if err != nil {
		tb.Fatal(err)
	}
	return run
}

// flatOracle runs the ordinary flat engine over the flattened chip for one
// scenario.
func flatOracle(tb testing.TB, flatTab *circuitops.Tables, scn batch.Scenario,
	opt core.Options) (slacks []float64, wns, tns float64) {
	tb.Helper()
	st, err := core.Compile(batch.ScaleTables(flatTab, scn))
	if err != nil {
		tb.Fatal(err)
	}
	e, err := core.NewEngineFromState(st, opt)
	if err != nil {
		tb.Fatal(err)
	}
	defer e.Close()
	e.Run()
	return e.EvalSlacks(), e.WNS(), e.TNS()
}

func summarize(slacks []float64) (wns, tns float64) {
	for _, s := range slacks {
		if s < wns {
			wns = s
		}
		if s < 0 {
			tns += s
		}
	}
	return wns, tns
}

func TestHierFlatDifferential(t *testing.T) {
	cases := []struct {
		chip string
		scns []batch.Scenario
	}{
		{"chip-2x", batch.DefaultScenarios()},
		{"chip-4x", nil},
	}
	opt := core.Options{TopK: 32, Workers: 2}
	for _, tc := range cases {
		t.Run(tc.chip, func(t *testing.T) {
			run := mustChipRun(t, tc.chip, tc.scns, opt, nil)
			flatTab, fm, err := ComposeFlat(run.Spec.Name, run.States, run.Spec.Wires)
			if err != nil {
				t.Fatal(err)
			}
			a, err := Analyze(run.Chip, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			for si, sr := range a.Scen {
				flatSl, flatWNS, flatTNS := flatOracle(t, flatTab, sr.Scenario, opt)
				rec, err := run.RecoveredSlacks(a, si, fm, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(rec) != len(flatSl) {
					t.Fatalf("%s: recovered %d endpoints, flat has %d",
						sr.Scenario.Name, len(rec), len(flatSl))
				}
				bound := ScenarioBound(sr) + 1e-6
				d := DeltaStats(flatSl, rec)
				if d.N == 0 {
					t.Fatalf("%s: no comparable endpoints", sr.Scenario.Name)
				}
				t.Logf("%s/%s: N=%d max=%.4g mean=%.4g q99=%.4g disagree=%d bound=%.4g",
					run.Spec.Name, sr.Scenario.Name, d.N, d.Max, d.Mean, d.Q99, d.Disagree, bound)
				if d.Max > bound {
					t.Errorf("%s: recovered slack delta %.6g exceeds model bound %.6g",
						sr.Scenario.Name, d.Max, bound)
				}
				recWNS, recTNS := summarize(rec)
				if diff := math.Abs(recWNS - flatWNS); diff > bound {
					t.Errorf("%s: recovered WNS %.6g vs flat %.6g (diff %.6g > bound %.6g)",
						sr.Scenario.Name, recWNS, flatWNS, diff, bound)
				}
				if diff := math.Abs(recTNS - flatTNS); diff > bound*float64(d.N) {
					t.Errorf("%s: recovered TNS %.6g vs flat %.6g (diff %.6g > %d*bound)",
						sr.Scenario.Name, recTNS, flatTNS, diff, d.N)
				}
				if diff := math.Abs(sr.WNS - flatWNS); diff > bound {
					t.Errorf("%s: fast summary WNS %.6g vs flat %.6g (diff %.6g > bound %.6g)",
						sr.Scenario.Name, sr.WNS, flatWNS, diff, bound)
				}
			}
		})
	}
}

// TestHierWorkerStability pins the bit-for-bit determinism of the composed
// analysis and the recovery path across worker counts.
func TestHierWorkerStability(t *testing.T) {
	scns := batch.DefaultScenarios()
	base := core.Options{TopK: 16}
	run := mustChipRun(t, "chip-2x", scns, base, nil)
	_, fm, err := ComposeFlat(run.Spec.Name, run.States, run.Spec.Wires)
	if err != nil {
		t.Fatal(err)
	}
	type shot struct {
		top [][]float64
		rec [][]float64
	}
	snapAt := func(workers int) shot {
		opt := base
		opt.Workers = workers
		a, err := Analyze(run.Chip, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		var s shot
		for si, sr := range a.Scen {
			s.top = append(s.top, sr.Engine.EvalSlacks())
			rec, err := run.RecoveredSlacks(a, si, fm, opt)
			if err != nil {
				t.Fatal(err)
			}
			s.rec = append(s.rec, rec)
		}
		return s
	}
	w1, w4 := snapAt(1), snapAt(4)
	for si := range w1.top {
		if !reflect.DeepEqual(w1.top[si], w4.top[si]) {
			t.Errorf("scenario %d: top-graph slacks differ between 1 and 4 workers", si)
		}
		if !reflect.DeepEqual(w1.rec[si], w4.rec[si]) {
			t.Errorf("scenario %d: recovered slacks differ between 1 and 4 workers", si)
		}
	}
}

// TestBlockModelCache proves the content-hash caching story: a second build
// of an unchanged chip is all hits, and perturbing a block's timing flips its
// hash into a clean miss — exactly one model invalidates.
func TestBlockModelCache(t *testing.T) {
	cache, err := snap.NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{TopK: 8, Workers: 2}
	run1 := mustChipRun(t, "chip-4x", nil, opt, cache)
	if run1.CacheMisses != 1 || run1.CacheHits != 0 {
		t.Fatalf("first build: %d misses / %d hits (want 1/0 — one unique block)",
			run1.CacheMisses, run1.CacheHits)
	}
	if run1.ExtractNs <= 0 {
		t.Fatal("first build recorded no extraction time")
	}
	run2 := mustChipRun(t, "chip-4x", nil, opt, cache)
	if run2.CacheMisses != 0 || run2.CacheHits != 1 {
		t.Fatalf("second build: %d misses / %d hits (want 0/1)",
			run2.CacheMisses, run2.CacheHits)
	}
	if run2.ExtractNs != 0 {
		t.Fatal("cache hit still spent extraction time")
	}
	if !reflect.DeepEqual(run1.Models[0], run2.Models[0]) {
		t.Fatal("cached model differs from extracted model")
	}

	// A block edit — here a 0.1% arc derate — must flip the hash, and the
	// perturbed state's model must be a clean miss while the original stays
	// cached.
	st := run1.States[0]
	pert := scaleState(st, batch.Scenario{DelayScale: 1.001, SigmaScale: 1, RCScale: 1})
	h0, h1 := StateHash(st, nil, 8), StateHash(pert, nil, 8)
	if h0 == h1 {
		t.Fatal("perturbed state hashes identically to original")
	}
	if m, err := LoadModel(cache, h1); err != nil || m != nil {
		t.Fatalf("perturbed hash: got model %v, err %v (want clean miss)", m != nil, err)
	}
	if m, err := LoadModel(cache, h0); err != nil || m == nil {
		t.Fatalf("original hash: got model %v, err %v (want hit)", m != nil, err)
	}
}

// TestBoundaryInference sanity-checks boundary detection on a real preset:
// primary inputs become boundary inputs, primary outputs boundary outputs.
func TestBoundaryInference(t *testing.T) {
	st := bootBlock(t, "des")
	ins, outs := Boundary(st)
	if len(ins) == 0 || len(outs) == 0 {
		t.Fatalf("des boundary: %d ins, %d outs", len(ins), len(outs))
	}
	for _, p := range outs {
		ei := st.EpOfPin[p]
		if ei < 0 {
			t.Fatalf("boundary output %d is not an endpoint", p)
		}
		if !math.IsInf(st.EpHold[0][ei], 1) || !math.IsInf(st.EpHold[1][ei], 1) {
			t.Fatalf("boundary output %d carries a hold check", p)
		}
	}
	seen := map[int32]bool{}
	for _, in := range ins {
		if seen[in.Pin] {
			t.Fatalf("duplicate boundary input %d", in.Pin)
		}
		seen[in.Pin] = true
	}
}
