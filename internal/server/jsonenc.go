package server

// Pooled, compact JSON encoding for the serving hot path. writeJSON used to
// run encoding/json's reflective Encoder per request; the steady-state
// responses, though, are built from a tiny vocabulary — maps with string
// keys, strings, numbers, bools and float64 slices — that can be appended
// into a pooled byte buffer with zero per-request allocations once the
// buffer has grown to the response size.
//
// The encoding is byte-identical to compact encoding/json output for every
// shape handled natively (FuzzPooledEncoder holds the encoder to that):
// strings are HTML-escaped ('<', '>', '&', U+2028, U+2029, invalid UTF-8 →
// U+FFFD), map keys are sorted, and floats use encoding/json's exact format
// selection ('e' for |v| < 1e-6 or >= 1e21, with the exponent's leading
// zero stripped). Shapes outside the vocabulary — the struct-valued fields
// of cold endpoints — fall back to json.Marshal, trading allocations for
// coverage on paths that don't matter for the allocation budget.

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"sync"
	"unicode/utf8"
)

// jsonEnc is one pooled encoder: the output buffer plus a key-sorting
// scratch, both retained across requests.
type jsonEnc struct {
	buf  []byte
	keys []string
}

// takeKeys detaches the key-sorting scratch for one map encode. Detaching —
// rather than handing out e.keys directly — is what makes nested maps safe:
// a nested map encode inside an outer map's value loop must not reuse (and
// truncate) the backing array the outer loop is still ranging over. The
// outermost map of a response gets the retained scratch at zero cost; a
// nested map sees nil and grows its own small slice.
func (e *jsonEnc) takeKeys() []string {
	keys := e.keys
	e.keys = nil
	return keys[:0]
}

// putKeys returns a scratch after a map encode. The outermost map's putKeys
// runs last, so the retained scratch is the top-level one.
func (e *jsonEnc) putKeys(keys []string) { e.keys = keys[:0] }

var encPool = sync.Pool{
	New: func() any { return &jsonEnc{buf: make([]byte, 0, 4096)} },
}

const hexDigits = "0123456789abcdef"

// appendValue appends v's compact JSON encoding to b. The error mirrors
// encoding/json: unsupported float values (NaN, ±Inf) refuse to encode.
func (e *jsonEnc) appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...), nil
	case bool:
		if x {
			return append(b, "true"...), nil
		}
		return append(b, "false"...), nil
	case string:
		return appendJSONString(b, x), nil
	case int:
		return strconv.AppendInt(b, int64(x), 10), nil
	case int32:
		return strconv.AppendInt(b, int64(x), 10), nil
	case int64:
		return strconv.AppendInt(b, x, 10), nil
	case uint64:
		return strconv.AppendUint(b, x, 10), nil
	case float64:
		return appendJSONFloat(b, x)
	case []float64:
		b = append(b, '[')
		var err error
		for i, f := range x {
			if i > 0 {
				b = append(b, ',')
			}
			if b, err = appendJSONFloat(b, f); err != nil {
				return b, err
			}
		}
		return append(b, ']'), nil
	case []string:
		b = append(b, '[')
		for i, s := range x {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, s)
		}
		return append(b, ']'), nil
	case []any:
		b = append(b, '[')
		var err error
		for i, el := range x {
			if i > 0 {
				b = append(b, ',')
			}
			if b, err = e.appendValue(b, el); err != nil {
				return b, err
			}
		}
		return append(b, ']'), nil
	case map[string]any:
		keys := e.takeKeys()
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = append(b, '{')
		var err error
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, k)
			b = append(b, ':')
			if b, err = e.appendValue(b, x[k]); err != nil {
				e.putKeys(keys)
				return b, err
			}
		}
		e.putKeys(keys)
		return append(b, '}'), nil
	case map[string]string:
		keys := e.takeKeys()
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = append(b, '{')
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, k)
			b = append(b, ':')
			b = appendJSONString(b, x[k])
		}
		e.putKeys(keys)
		return append(b, '}'), nil
	case map[string]float64:
		keys := e.takeKeys()
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = append(b, '{')
		var err error
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, k)
			b = append(b, ':')
			if b, err = appendJSONFloat(b, x[k]); err != nil {
				e.putKeys(keys)
				return b, err
			}
		}
		e.putKeys(keys)
		return append(b, '}'), nil
	default:
		raw, err := json.Marshal(v)
		if err != nil {
			return b, err
		}
		return append(b, raw...), nil
	}
}

// appendJSONFloat appends f exactly as encoding/json's floatEncoder does:
// shortest representation, 'e' format only outside [1e-6, 1e21), and the
// exponent's redundant leading zero ("e-09") dropped ("e-9").
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return b, &json.UnsupportedValueError{Str: strconv.FormatFloat(f, 'g', -1, 64)}
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// jsonSafe reports whether byte c passes through encoding/json's
// HTML-escaping string encoder unescaped.
func jsonSafe(c byte) bool {
	return c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}

// appendJSONString appends s as an HTML-escaped JSON string, byte-identical
// to encoding/json's appendString with escapeHTML on.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe(c) {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == 0x2028 || c == 0x2029 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
