// Package server is the serving layer over one signoff-initialized INSTA
// engine: a session manager that hands out copy-on-write ECO sessions
// (core.Overlay views over the frozen propagated base) and the HTTP/JSON
// front end cmd/insta-served mounts on it.
//
// Concurrency model. The base engine's propagated state is the shared
// snapshot. Session evaluations only read it (their writes land in private
// overlays), so they run under the manager's read lock — fully parallel
// across sessions, serialized per session by the session's own mutex.
// Anything that mutates the base — a session commit, a gradient pass, an
// Exclusive caller — takes the write lock, draining every in-flight
// evaluation first. Commits bump an epoch; a session created against an
// older epoch transparently rebases (re-derives its overlay against the new
// base, keeping its recorded arc deltas) on its next use, which gives every
// session sequential-application semantics: committing N sessions in any
// order lands the same state as applying their delta batches one after
// another.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"insta/internal/batch"
	"insta/internal/core"
	"insta/internal/netlist"
	"insta/internal/num"
	"insta/internal/obs"
	"insta/internal/refsta"
	"insta/internal/snap"
	"insta/internal/topo"
)

// Errors the HTTP layer maps to status codes.
var (
	ErrTooManySessions = errors.New("server: session admission cap reached")
	ErrSessionClosed   = errors.New("server: session closed")
	ErrNoRefEngine     = errors.New("server: resize ECOs need a reference engine")
	ErrNoCorners       = errors.New("server: multi-corner queries need a -corners engine")
	ErrNoSnapshots     = errors.New("server: snapshot save needs a -snapshot-dir cache")
	ErrUnknownScenario = errors.New("server: unknown scenario")
	// ErrStructuralConflict: the base was committed (annotation or structural)
	// after this session started structural edits, or structurally replaced
	// after annotation edits. The session's working engines were seeded from a
	// base that no longer exists, so there is nothing to merge against —
	// rollback and re-apply.
	ErrStructuralConflict = errors.New("server: base changed under this session's edits; rollback and retry")
	// ErrPendingAnnotations: a structural edit on a session holding
	// uncommitted overlay annotations — the topo working set is derived from
	// the committed base, so those deltas would silently vanish. Commit or
	// roll back first.
	ErrPendingAnnotations = errors.New("server: session has uncommitted annotation ECOs; commit or roll back before structural edits")
)

// Options tunes the session manager.
type Options struct {
	// MaxSessions is the admission cap: Create fails once this many sessions
	// are live, so overload degrades by rejecting. <= 0 selects 64.
	MaxSessions int
	// TTL is the idle lifetime a Sweep call uses to evict abandoned
	// sessions. <= 0 selects 5 minutes.
	TTL time.Duration
	// Batch, when non-nil, adds multi-corner serving: every session carries a
	// scenario-batched overlay alongside its nominal one, so each what-if is
	// priced in every corner with one cone re-propagation, and commits fold
	// into the batched base the same way. The manager owns Run/epoch
	// handling; the caller owns Close.
	Batch *batch.Engine
	// ManifestDir, when non-empty, writes one obs run manifest per session
	// commit under this directory (WNS/TNS before/after, session id, eco
	// count) so the serving trajectory stays attributable offline.
	ManifestDir string
	// Design names the served design in commit manifests and log lines.
	Design string
	// Snapshots, when non-nil, enables POST /admin/snapshot (persist the
	// committed base state under Boot.Key) and exposes the cache counters on
	// /metrics.
	Snapshots *snap.Cache
	// Boot records how the daemon obtained its engine state, reported on
	// /healthz and used as the snapshot save key.
	Boot *BootInfo
}

// BootInfo is the boot provenance /healthz reports: whether the daemon
// warm-started from a snapshot or cold-built, under which content address,
// and how long that took.
type BootInfo struct {
	Mode        string  `json:"mode"` // "warm" or "cold"
	SnapshotKey string  `json:"snapshot_key,omitempty"`
	SnapLoadMS  float64 `json:"snap_load_ms,omitempty"`
	ColdBuildMS float64 `json:"cold_build_ms,omitempty"`
}

// Counters is a snapshot of the manager's lifetime counters.
type Counters struct {
	Created   int64
	Rejected  int64
	Evicted   int64
	Commits   int64
	Rollbacks int64
	ECOs      int64 // ECO batches evaluated
}

// Manager owns the base engine and the live session set.
type Manager struct {
	e   *core.Engine
	ref *refsta.Engine // nil disables resize-form ECOs and pin names
	be  *batch.Engine  // nil disables multi-corner serving
	opt Options

	// mu is the base-state lock: RLock for overlay evaluation, Lock for
	// anything that mutates the base engine(s). epoch/baseWNS/baseTNS and the
	// per-scenario base metrics are guarded by it.
	mu      sync.RWMutex
	epoch   uint64
	baseWNS float64
	baseTNS float64
	baseScn []ScenarioView // committed per-scenario + merged figures (be != nil)

	// Structural-ECO state, guarded by mu. topoGen bumps on every structural
	// commit (the base engine objects are replaced, not just re-annotated);
	// remapHist records each commit's arc remap so annotation sessions opened
	// against older structure can re-key their deltas lazily; baseRemap is the
	// composed extraction→current arc remap (nil while identity), through
	// which estimate_eco deltas — always in extraction space — are translated;
	// ownsBase marks base engines installed by a structural commit (closed on
	// the next swap; the boot engines stay caller-owned).
	topoGen   uint64
	remapHist []remapGen
	baseRemap []int32
	extArcs   int // boot engine arc count: the domain of baseRemap
	ownsBase  bool

	// smu guards the session table only. Lock ordering: smu may be taken
	// while holding neither lock or after mu; never take mu or a session's
	// mutex while holding smu.
	smu      sync.Mutex
	sessions map[string]*Session
	nextID   uint64

	created, rejected, evicted   atomic.Int64
	commits, rollbacks, ecoTotal atomic.Int64
	topoEdits, topoInserted      atomic.Int64
	topoRemoved, topoCommits     atomic.Int64
	topoConflicts                atomic.Int64
	relevelHist                  *obs.Histogram // levels re-levelized per structural batch

	// Lock-free mirrors of epoch/topoGen, stored at each bump while mu is
	// held. The flight recorder stamps both onto every completed request;
	// reading the mu-guarded fields there would make request completion
	// block behind long structural commits.
	epochA   atomic.Uint64
	topoGenA atomic.Uint64

	// live is the live-session gauge, maintained at the table mutation
	// points (Create/remove) so readers — /healthz, /metrics, the flight
	// recorder path — never take smu just to count sessions.
	live obs.Gauge

	log *slog.Logger
}

// remapGen is one structural commit's arc remap: old-current → new-current ids
// over the pre-commit arc count, nil when the commit only appended arcs.
type remapGen struct {
	gen   uint64
	remap []int32
}

// relevelBounds buckets the per-batch re-levelized level span — the locality
// signal of incremental re-levelization (a design-deep edit re-levels
// hundreds, a leaf edit a handful).
var relevelBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// NewManager wraps an initialized engine. If e has not been propagated yet
// (no slack state), the manager runs the one-time full evaluation here; the
// base is frozen afterwards. ref, when non-nil, provides estimate_eco
// resolution for resize-form ECOs and design names for reports.
func NewManager(e *core.Engine, ref *refsta.Engine, opt Options) *Manager {
	if opt.MaxSessions <= 0 {
		opt.MaxSessions = 64
	}
	if opt.TTL <= 0 {
		opt.TTL = 5 * time.Minute
	}
	e.Run()
	m := &Manager{
		e:           e,
		ref:         ref,
		be:          opt.Batch,
		opt:         opt,
		sessions:    make(map[string]*Session),
		extArcs:     e.NumArcs(),
		relevelHist: obs.NewHistogram(relevelBounds),
		log:         slog.Default(),
	}
	m.baseWNS, m.baseTNS = e.WNS(), e.TNS()
	if m.be != nil {
		m.be.Run()
		m.baseScn = scenarioBaseViews(m.be)
	}
	return m
}

// scenarioBaseViews snapshots the batched engine's committed figures: one row
// per scenario plus a trailing "merged" row (per-endpoint worst corner).
func scenarioBaseViews(be *batch.Engine) []ScenarioView {
	v := be.Merged()
	out := make([]ScenarioView, 0, len(v.PerScenario)+1)
	for _, m := range v.PerScenario {
		out = append(out, ScenarioView{Name: m.Name, WNS: m.WNS, TNS: m.TNS, Violations: m.Violations})
	}
	out = append(out, ScenarioView{Name: "merged", WNS: v.WNS, TNS: v.TNS, Violations: v.Violations})
	return out
}

// SetLogger replaces the manager's structured logger (slog.Default() until
// then). Session lifecycle events log at Debug, commits at Info.
func (m *Manager) SetLogger(l *slog.Logger) { m.log = l }

// debugLog reports whether Debug-level lines would be emitted. Hot paths
// check it before calling Debug: assembling the variadic attribute list
// allocates even when the handler drops the record, and the serving steady
// state is held to zero allocations per request.
func (m *Manager) debugLog() bool {
	return m.log.Enabled(context.Background(), slog.LevelDebug)
}

// Engine returns the base engine. Callers must not mutate it outside
// Exclusive.
func (m *Manager) Engine() *core.Engine { return m.e }

// Ref returns the reference engine, or nil.
func (m *Manager) Ref() *refsta.Engine { return m.ref }

// Batch returns the scenario-batched engine, or nil when the server was
// started single-corner. Callers must not mutate it outside Exclusive.
func (m *Manager) Batch() *batch.Engine { return m.be }

// Snapshots returns the snapshot cache, or nil when snapshot saving is
// disabled.
func (m *Manager) Snapshots() *snap.Cache { return m.opt.Snapshots }

// Boot returns the boot provenance, or nil when the caller didn't record it.
func (m *Manager) Boot() *BootInfo { return m.opt.Boot }

// SaveSnapshot exports the committed base state — the engine's current arc
// annotations over the shared compiled skeleton, plus the batched engine's
// scenario list on multi-corner servers — and stores it in the snapshot
// cache under the boot key, so the next daemon start warm-boots into the
// ECO'd state rather than the original extraction. The export runs under the
// base read lock: sessions keep evaluating, while commits wait for the write
// to finish (the snapshot is a consistent epoch, never a torn one).
func (m *Manager) SaveSnapshot() (path string, size int64, key string, err error) {
	c := m.opt.Snapshots
	if c == nil || m.opt.Boot == nil || m.opt.Boot.SnapshotKey == "" {
		return "", 0, "", ErrNoSnapshots
	}
	key = m.opt.Boot.SnapshotKey
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := m.e.ExportState()
	var scns []batch.Scenario
	if m.be != nil {
		scns = m.be.Scenarios()
	}
	path, size, err = c.Store(key, st, scns)
	return path, size, key, err
}

// Corners reports the committed per-scenario figures (nil when
// single-corner). The last row is the merged view.
func (m *Manager) Corners() []ScenarioView {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]ScenarioView(nil), m.baseScn...)
}

// BaseScenarioSlacks returns the committed endpoint slacks of one scenario,
// or the per-endpoint worst across scenarios for "merged".
func (m *Manager) BaseScenarioSlacks(name string) ([]float64, error) {
	return m.BaseScenarioSlacksInto(name, nil)
}

// BaseScenarioSlacksInto is the allocation-free form of BaseScenarioSlacks:
// dst is grown only when too small and returned filled.
func (m *Manager) BaseScenarioSlacksInto(name string, dst []float64) ([]float64, error) {
	if m.be == nil {
		return nil, ErrNoCorners
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if name == "merged" {
		return m.be.MergedSlacksInto(dst), nil
	}
	s := m.be.ScenarioIndex(name)
	if s < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScenario, name)
	}
	return m.be.SlacksInto(s, dst), nil
}

// Epoch returns the current base epoch (bumped on every commit).
func (m *Manager) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// BaseWNS and BaseTNS report the committed base figures.
func (m *Manager) BaseWNS() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.baseWNS
}

func (m *Manager) BaseTNS() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.baseTNS
}

// BaseSlacks returns a copy of the committed endpoint slacks.
func (m *Manager) BaseSlacks() []float64 {
	return m.BaseSlacksInto(nil)
}

// BaseSlacksInto copies the committed endpoint slacks into dst, growing it
// only when too small, and returns the filled slice — the allocation-free
// serving read.
func (m *Manager) BaseSlacksInto(dst []float64) []float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	base := m.e.Slacks()
	if cap(dst) < len(base) {
		dst = make([]float64, len(base))
	}
	dst = dst[:len(base)]
	copy(dst, base)
	return dst
}

// TopoCounters is a snapshot of the structural-ECO lifetime counters.
type TopoCounters struct {
	Edits     int64 // structural op batches applied
	Inserted  int64 // buffers spliced in
	Removed   int64 // buffers removed
	Commits   int64 // structural commits (base engine swaps)
	Conflicts int64 // edits/commits refused for a moved base
}

// TopoCountersSnapshot snapshots the structural-ECO counters.
func (m *Manager) TopoCountersSnapshot() TopoCounters {
	return TopoCounters{
		Edits:     m.topoEdits.Load(),
		Inserted:  m.topoInserted.Load(),
		Removed:   m.topoRemoved.Load(),
		Commits:   m.topoCommits.Load(),
		Conflicts: m.topoConflicts.Load(),
	}
}

// RelevelHist returns the histogram of levels re-levelized per structural
// batch, for /metrics exposition.
func (m *Manager) RelevelHist() *obs.Histogram { return m.relevelHist }

// TopoGen returns the structural generation (bumped on every structural
// commit; the epoch bumps too, so TopoGen only matters to callers that care
// whether the engine *objects* were replaced).
func (m *Manager) TopoGen() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.topoGen
}

// composedRemapSince folds the remaps of every structural commit after gen
// into one old→current arc remap (-1 = removed), or nil when ids survived
// unchanged. Caller holds at least m.mu.RLock.
func (m *Manager) composedRemapSince(gen uint64) []int32 {
	var acc []int32
	for _, g := range m.remapHist {
		if g.gen <= gen || g.remap == nil {
			continue
		}
		if acc == nil {
			acc = append([]int32(nil), g.remap...)
			continue
		}
		for i, cur := range acc {
			if cur >= 0 {
				acc[i] = g.remap[cur]
			}
		}
	}
	return acc
}

// refArcLocked translates an extraction-space arc id (the reference engine's
// space) to the current committed engine's space, or -1 if a structural
// commit removed the arc. Caller holds at least m.mu.RLock.
func (m *Manager) refArcLocked(a int32) int32 {
	if m.baseRemap == nil {
		return a
	}
	return m.baseRemap[a]
}

// curToRefLocked inverts refArcLocked: the extraction arc that became current
// arc a, or -1 for arcs that only exist post-edit (inserted buffers). Caller
// holds at least m.mu.RLock. Linear in the extraction arc count; only
// resolution paths for structural requests take it.
func (m *Manager) curToRefLocked(a int32) int32 {
	if m.baseRemap == nil {
		return a
	}
	for i, cur := range m.baseRemap {
		if cur == a {
			return int32(i)
		}
	}
	return -1
}

// Counters snapshots the lifetime counters.
func (m *Manager) Counters() Counters {
	return Counters{
		Created:   m.created.Load(),
		Rejected:  m.rejected.Load(),
		Evicted:   m.evicted.Load(),
		Commits:   m.commits.Load(),
		Rollbacks: m.rollbacks.Load(),
		ECOs:      m.ecoTotal.Load(),
	}
}

// NumSessions returns the live session count, read from the maintained gauge
// rather than by locking the session table.
func (m *Manager) NumSessions() int {
	return int(m.live.Value())
}

// LiveGauge returns the live-session gauge for metrics registration.
func (m *Manager) LiveGauge() *obs.Gauge { return &m.live }

// EpochFast returns the base epoch from its lock-free mirror — for
// per-request telemetry stamping, where Epoch()'s RLock would serialize
// against long commits.
func (m *Manager) EpochFast() uint64 { return m.epochA.Load() }

// TopoGenFast is EpochFast for the structural generation.
func (m *Manager) TopoGenFast() uint64 { return m.topoGenA.Load() }

// MaxSessions returns the admission cap Create enforces.
func (m *Manager) MaxSessions() int { return m.opt.MaxSessions }

// Create opens a new session against the current base, or fails with
// ErrTooManySessions at the admission cap.
func (m *Manager) Create() (*Session, error) {
	// The overlays must bind to the engines of one consistent epoch: hold the
	// read lock across the reads (a structural commit swaps m.e/m.be).
	m.mu.RLock()
	epoch, topoGen := m.epoch, m.topoGen
	e, be := m.e, m.be
	m.mu.RUnlock()

	m.smu.Lock()
	defer m.smu.Unlock()
	if len(m.sessions) >= m.opt.MaxSessions {
		m.rejected.Add(1)
		return nil, ErrTooManySessions
	}
	m.nextID++
	s := &Session{
		m:       m,
		ID:      fmt.Sprintf("s%d", m.nextID),
		ov:      core.NewOverlay(e),
		epoch:   epoch,
		topoGen: topoGen,
	}
	if be != nil {
		s.bov = batch.NewOverlay(be)
	}
	s.touch()
	m.sessions[s.ID] = s
	m.live.Inc()
	m.created.Add(1)
	if m.debugLog() {
		m.log.Debug("session created", "session", s.ID, "epoch", epoch)
	}
	return s, nil
}

// Get returns the live session with the given id, or nil.
func (m *Manager) Get(id string) *Session {
	m.smu.Lock()
	defer m.smu.Unlock()
	return m.sessions[id]
}

// SessionIDs returns the live session ids, sorted.
func (m *Manager) SessionIDs() []string {
	m.smu.Lock()
	defer m.smu.Unlock()
	out := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// remove unlinks id from the table and reports whether it was present.
func (m *Manager) remove(id string) bool {
	m.smu.Lock()
	defer m.smu.Unlock()
	if _, ok := m.sessions[id]; !ok {
		return false
	}
	delete(m.sessions, id)
	m.live.Dec()
	return true
}

// Sweep closes every session idle longer than the manager TTL and returns
// how many it evicted. cmd/insta-served runs this on a ticker.
func (m *Manager) Sweep(now time.Time) int {
	cutoff := now.Add(-m.opt.TTL).UnixNano()
	m.smu.Lock()
	var idle []*Session
	for _, s := range m.sessions {
		if s.lastUsed.Load() < cutoff {
			idle = append(idle, s)
		}
	}
	m.smu.Unlock()
	for _, s := range idle {
		if s.Close() {
			m.evicted.Add(1)
			if m.debugLog() {
				m.log.Debug("session evicted", "session", s.ID)
			}
		}
	}
	return len(idle)
}

// CloseAll closes every live session (shutdown drain).
func (m *Manager) CloseAll() {
	m.smu.Lock()
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.smu.Unlock()
	for _, s := range live {
		s.Close()
	}
}

// Close releases the engines the manager itself installed through structural
// commits; the boot engines stay caller-owned. Call after CloseAll at
// shutdown (or in tests that commit structural edits).
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.ownsBase {
		return
	}
	m.e.Close()
	if m.be != nil {
		m.be.Close()
	}
	m.ownsBase = false
}

// Exclusive runs fn with exclusive access to the base engine — no session
// evaluates concurrently — and bumps the epoch afterwards so live sessions
// rebase against whatever fn changed. This is the hook in-process clients
// (the sizing driver) use for base mutations that bypass the session API,
// e.g. a full delay resync.
func (m *Manager) Exclusive(fn func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn()
	m.epoch++
	m.epochA.Store(m.epoch)
	m.baseWNS, m.baseTNS = m.e.WNS(), m.e.TNS()
	if m.be != nil {
		m.baseScn = scenarioBaseViews(m.be)
	}
}

// StageGrad is one cell's timing gradient, most negative first in Gradients'
// output (the INSTA-Size ranking signal).
type StageGrad struct {
	Cell int32   `json:"cell"`
	Name string  `json:"name,omitempty"`
	Grad float64 `json:"grad"`
}

// Gradients runs the backward pass on the committed base and returns the top
// stages by gradient magnitude (top <= 0 returns all). The pass writes the
// engine's gradient tensors, so it takes the write lock; the forward state
// is untouched, so sessions do not rebase.
func (m *Manager) Gradients(top int) []StageGrad {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.e.Backward()
	stages := m.e.StageGradients()
	// Deterministic ranking: gradient magnitude, cell id on ties.
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].Grad != stages[j].Grad {
			return stages[i].Grad < stages[j].Grad
		}
		return stages[i].Cell < stages[j].Cell
	})
	if top > 0 && len(stages) > top {
		stages = stages[:top]
	}
	out := make([]StageGrad, len(stages))
	for i, st := range stages {
		out[i] = StageGrad{Cell: st.Cell, Grad: st.Grad}
		if m.ref != nil {
			out[i].Name = m.ref.D.Cells[st.Cell].Name
		}
	}
	return out
}

// ResizeReq is one resize-form ECO: swap the named cell instance to the
// named library cell. Resolved through the reference engine's estimate_eco.
type ResizeReq struct {
	Cell string `json:"cell"`
	Lib  string `json:"lib"`
}

// ArcECO is one raw arc re-annotation (the in-process / pre-resolved form).
type ArcECO struct {
	Arc  int32    `json:"arc"`
	Rise num.Dist `json:"rise"`
	Fall num.Dist `json:"fall"`
}

// ECORequest is one what-if batch: resizes resolved via estimate_eco, raw
// arc deltas, or both. The batch is validated before any of it is applied.
type ECORequest struct {
	Resizes []ResizeReq `json:"resizes,omitempty"`
	Arcs    []ArcECO    `json:"arcs,omitempty"`
}

// EndpointSlack is one changed endpoint in an ECO result. Slacks are clamped
// to ±1e30 for JSON (untimed endpoints are +Inf internally).
type EndpointSlack struct {
	Endpoint int     `json:"endpoint"`
	Pin      string  `json:"pin,omitempty"`
	Slack    float64 `json:"slack"`
	Base     float64 `json:"base_slack"`
}

// ScenarioView is one corner's figures in a multi-corner result; the last
// entry of a Scenarios list is always the "merged" row (per-endpoint worst
// corner). Deltas are against the committed base of the same scenario.
type ScenarioView struct {
	Name       string  `json:"name"`
	WNS        float64 `json:"wns"`
	TNS        float64 `json:"tns"`
	DeltaWNS   float64 `json:"delta_wns,omitempty"`
	DeltaTNS   float64 `json:"delta_tns,omitempty"`
	Violations int     `json:"violations,omitempty"`
}

// ECOResult is the session's view after an evaluation (or the committed base
// after Commit). Scenarios is present when the server runs multi-corner: one
// row per corner plus the merged row, each priced by the same cone
// re-propagation that produced the nominal figures.
type ECOResult struct {
	WNS         float64         `json:"wns"`
	TNS         float64         `json:"tns"`
	DeltaWNS    float64         `json:"delta_wns"`
	DeltaTNS    float64         `json:"delta_tns"`
	Changed     []EndpointSlack `json:"changed,omitempty"`
	Scenarios   []ScenarioView  `json:"scenarios,omitempty"`
	TouchedArcs int             `json:"touched_arcs"`
	OverlayPins int             `json:"overlay_pins"`
	Epoch       uint64          `json:"epoch"`
	Committed   bool            `json:"committed,omitempty"`
}

type resolvedResize struct {
	cell netlist.CellID
	lib  int32
}

// TopoOp is one structural edit in a topo batch. Arc ids are in the session's
// current working space: identical to the committed engine's ids until the
// session's first structural batch, and tracked through the new_arcs ranges
// the topo responses report after that.
//
//   - "buffer":   splice a buffer into net arc Arc at position Frac (0 =
//     driver, default 0.5); Lib names the buffer cell (default BUF_X4) and the
//     gate delay comes from the reference engine's frozen-slew estimate.
//   - "unbuffer": remove the buffer whose cell arc is Arc, restoring the
//     through-wire.
//   - "repower":  swap instance Cell to library cell Lib; resolved to arc
//     re-annotations via estimate_eco and replayed into the signoff netlist
//     on commit.
//   - "move":     place instance Cell at (X, Y); resolved to wire/driver arc
//     re-annotations via the frozen-slew move estimate, replayed on commit.
//   - "annotate": set arc Arc's delay to Rise/Fall directly.
type TopoOp struct {
	Op   string   `json:"op"`
	Arc  int32    `json:"arc,omitempty"`
	Cell string   `json:"cell,omitempty"`
	Lib  string   `json:"lib,omitempty"`
	Frac float64  `json:"frac,omitempty"`
	X    float64  `json:"x,omitempty"`
	Y    float64  `json:"y,omitempty"`
	Rise num.Dist `json:"rise,omitempty"`
	Fall num.Dist `json:"fall,omitempty"`
}

// TopoRequest is one structural edit batch, validated and applied atomically.
type TopoRequest struct {
	Ops []TopoOp `json:"ops"`
}

// TopoResult reports one structural batch: the session's post-edit timing view
// plus the batch's structural footprint. NewArcs is the session-space id range
// [lo, hi) of arcs this batch appended (each inserted buffer contributes its
// cell arc then its output net arc, in op order).
type TopoResult struct {
	View          *ECOResult `json:"view"`
	Inserted      int        `json:"inserted"`
	Removed       int        `json:"removed"`
	Annotated     int        `json:"annotated"`
	NewPins       int        `json:"new_pins"`
	NewArcs       [2]int     `json:"new_arcs"`
	RelevelLevels int        `json:"relevel_levels"`
	RelevelRegion int        `json:"relevel_region"`
	Edits         int        `json:"edits"` // cumulative structural batches this session
}

// Session is one copy-on-write what-if view. All methods are safe for
// concurrent use; calls on one session serialize on its mutex, while calls
// on different sessions share the base under the manager's read lock.
type Session struct {
	m  *Manager
	ID string

	lastUsed atomic.Int64 // unix nanos of the last touch

	mu      sync.Mutex
	ov      *core.Overlay
	bov     *batch.Overlay // nil when the server runs single-corner
	epoch   uint64
	topoGen uint64        // structural generation the overlays bind to
	ts      *topo.Session // non-nil once the session holds structural edits
	resizes []resolvedResize // netlist changes to replay on commit
	moves   []resolvedMove
	closed  bool
	ecoN    int
}

type resolvedMove struct {
	cell netlist.CellID
	x, y float64
}

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// rebaseLocked re-derives the overlay against the current base if a commit
// happened since this session last evaluated. Caller holds s.mu and at least
// m.mu.RLock.
//
// Two rebase shapes exist. An annotation commit keeps the engine objects, so
// the overlay re-derives in place (Rebase). A structural commit replaced them,
// so the overlay re-binds to the new engines with its recorded deltas re-keyed
// through the commits' arc remaps (RebaseStructural) — bit-identical to having
// recorded the deltas against the new base from the start. A session that
// itself holds structural edits cannot rebase: its working engines were seeded
// from a base that no longer exists, so it conflicts instead.
func (s *Session) rebaseLocked() error {
	m := s.m
	if s.topoGen != m.topoGen {
		if s.ts != nil {
			m.topoConflicts.Add(1)
			return ErrStructuralConflict
		}
		remap := m.composedRemapSince(s.topoGen)
		s.ov.RebaseStructural(m.e, remap)
		s.ov.Propagate()
		if s.bov != nil {
			s.bov.RebaseStructural(m.be, remap)
			s.bov.Propagate()
		}
		s.topoGen = m.topoGen
		s.epoch = m.epoch
		return nil
	}
	if s.epoch == m.epoch {
		return nil
	}
	if s.ts != nil {
		// An annotation commit moved the base under this session's seeded
		// engines; their figures are against dead state.
		m.topoConflicts.Add(1)
		return ErrStructuralConflict
	}
	s.ov.Rebase()
	s.ov.Propagate()
	if s.bov != nil {
		s.bov.Rebase()
		s.bov.Propagate()
	}
	s.epoch = m.epoch
	return nil
}

// jsonSlack clamps ±Inf (untimed endpoints) to representable JSON numbers.
func jsonSlack(v float64) float64 {
	if math.IsInf(v, 1) {
		return 1e30
	}
	if math.IsInf(v, -1) {
		return -1e30
	}
	return v
}

// resultLocked builds the session's current view. Caller holds s.mu and at
// least m.mu.RLock.
func (s *Session) resultLocked() *ECOResult {
	m := s.m
	if s.ts != nil {
		return s.topoResultLocked()
	}
	st := s.ov.Stats()
	res := &ECOResult{
		WNS:         s.ov.WNS(),
		TNS:         s.ov.TNS(),
		TouchedArcs: st.TouchedArcs,
		OverlayPins: st.OverlayPins,
		Epoch:       s.epoch,
	}
	res.DeltaWNS = res.WNS - m.baseWNS
	res.DeltaTNS = res.TNS - m.baseTNS
	if s.bov != nil {
		res.Scenarios = s.scenarioViewsLocked()
	}
	base := m.e.Slacks()
	eps := m.e.Endpoints()
	for _, ep := range s.ov.ChangedEndpointsView() {
		es := EndpointSlack{
			Endpoint: int(ep),
			Slack:    jsonSlack(s.ov.Slack(ep)),
			Base:     jsonSlack(base[ep]),
		}
		if m.ref != nil {
			es.Pin = m.ref.D.Pins[eps[ep]].Name
		}
		res.Changed = append(res.Changed, es)
	}
	return res
}

// scenarioViewsLocked prices the session's overlay in every corner: one row
// per scenario with ΔWNS/ΔTNS against that scenario's committed base, plus
// the merged row. Caller holds s.mu and at least m.mu.RLock.
func (s *Session) scenarioViewsLocked() []ScenarioView {
	m := s.m
	out := make([]ScenarioView, 0, len(m.baseScn))
	for i, b := range m.baseScn {
		var wns, tns float64
		if b.Name == "merged" {
			wns, tns = s.bov.MergedWNS(), s.bov.MergedTNS()
		} else {
			wns, tns = s.bov.WNS(i), s.bov.TNS(i)
		}
		out = append(out, ScenarioView{
			Name:     b.Name,
			WNS:      wns,
			TNS:      tns,
			DeltaWNS: wns - b.WNS,
			DeltaTNS: tns - b.TNS,
		})
	}
	return out
}

// topoResultLocked builds the view of a session holding structural edits from
// its seeded working engines. Endpoint indices are stable across structural
// edits (startpoints and endpoints can never be spliced), so Changed is the
// per-endpoint diff against the committed base. OverlayPins reports the pin
// count of the last re-levelized region — the structural analogue of the
// overlay's recompute footprint. Caller holds s.mu and at least m.mu.RLock.
func (s *Session) topoResultLocked() *ECOResult {
	m := s.m
	eng := s.ts.Engine()
	st := s.ts.Stats()
	res := &ECOResult{
		WNS:         eng.WNS(),
		TNS:         eng.TNS(),
		TouchedArcs: st.Inserted*2 + st.Removed*2 + st.Annotated,
		OverlayPins: st.Relevel.Region,
		Epoch:       s.epoch,
	}
	res.DeltaWNS = res.WNS - m.baseWNS
	res.DeltaTNS = res.TNS - m.baseTNS
	if be := s.ts.Batch(); be != nil {
		out := make([]ScenarioView, 0, len(m.baseScn))
		for i, b := range m.baseScn {
			var wns, tns float64
			if b.Name == "merged" {
				v := be.Merged()
				wns, tns = v.WNS, v.TNS
			} else {
				wns, tns = be.WNS(i), be.TNS(i)
			}
			out = append(out, ScenarioView{
				Name: b.Name, WNS: wns, TNS: tns,
				DeltaWNS: wns - b.WNS, DeltaTNS: tns - b.TNS,
			})
		}
		res.Scenarios = out
	}
	base := m.e.Slacks()
	cur := eng.Slacks()
	eps := m.e.Endpoints()
	for i := range cur {
		if cur[i] == base[i] {
			continue
		}
		es := EndpointSlack{
			Endpoint: i,
			Slack:    jsonSlack(cur[i]),
			Base:     jsonSlack(base[i]),
		}
		if m.ref != nil {
			es.Pin = m.ref.D.Pins[eps[i]].Name
		}
		res.Changed = append(res.Changed, es)
	}
	return res
}

// applyArcLocked mirrors one arc re-annotation into both overlays (the
// batched overlay takes the same nominal units; scenarios see them through
// their scale factors).
func (s *Session) applyArcLocked(arc int32, rise, fall num.Dist) {
	s.ov.SetArcDelay(arc, 0, rise)
	s.ov.SetArcDelay(arc, 1, fall)
	if s.bov != nil {
		s.bov.SetArcDelay(arc, 0, rise.Mean, rise.Std)
		s.bov.SetArcDelay(arc, 1, fall.Mean, fall.Std)
	}
}

// propagateLocked re-propagates both overlays after a delta batch.
func (s *Session) propagateLocked() {
	s.ov.Propagate()
	if s.bov != nil {
		s.bov.Propagate()
	}
}

// ApplyECO validates and applies one what-if batch to the session's overlay,
// re-propagates the affected cones, and returns the session's new view
// (ΔWNS/ΔTNS plus every endpoint whose slack the overlay re-derived). The
// base engine is untouched. On a validation error nothing is applied.
func (s *Session) ApplyECO(req ECORequest) (*ECOResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.touch()
	m := s.m
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := s.rebaseLocked(); err != nil {
		return nil, err
	}

	// Resolve and validate the whole batch before applying any of it.
	type resolved struct {
		deltas []refsta.ArcDelta
		rz     resolvedResize
	}
	resolvedRz := make([]resolved, 0, len(req.Resizes))
	for _, rz := range req.Resizes {
		if m.ref == nil {
			return nil, ErrNoRefEngine
		}
		c, ok := m.ref.D.CellByName(rz.Cell)
		if !ok {
			return nil, fmt.Errorf("server: unknown cell %q", rz.Cell)
		}
		lib, ok := m.ref.Lib.CellByName(rz.Lib)
		if !ok {
			return nil, fmt.Errorf("server: unknown library cell %q", rz.Lib)
		}
		deltas, err := m.ref.EstimateECO(c, lib)
		if err != nil {
			return nil, fmt.Errorf("server: estimate_eco %s -> %s: %w", rz.Cell, rz.Lib, err)
		}
		resolvedRz = append(resolvedRz, resolved{deltas: deltas, rz: resolvedResize{cell: c, lib: lib}})
	}
	arcLimit := m.e.NumArcs()
	if s.ts != nil {
		arcLimit = len(s.ts.Tables().Arcs)
	}
	for _, a := range req.Arcs {
		if a.Arc < 0 || int(a.Arc) >= arcLimit {
			return nil, fmt.Errorf("server: arc %d out of range [0,%d)", a.Arc, arcLimit)
		}
	}

	if s.ts != nil {
		// Annotation ECOs landing on a session that already holds structural
		// edits fold into the structural working set, so the one cone re-prop
		// prices them against the edited topology.
		deltas := make([]topo.Delta, 0, len(req.Arcs)+4*len(resolvedRz))
		for _, r := range resolvedRz {
			for _, dl := range r.deltas {
				if a := s.tsArcFromRefLocked(dl.ArcID); a >= 0 {
					deltas = append(deltas, topo.Delta{Arc: a, Delay: dl.Delay})
				}
			}
			s.resizes = append(s.resizes, r.rz)
		}
		for _, a := range req.Arcs {
			ta := s.tsArcLocked(a.Arc)
			if ta < 0 {
				return nil, fmt.Errorf("server: arc %d was removed by a structural edit", a.Arc)
			}
			deltas = append(deltas, topo.Delta{Arc: ta, Delay: [2]num.Dist{a.Rise, a.Fall}})
		}
		if err := s.ts.Annotate(deltas); err != nil {
			return nil, err
		}
	} else {
		for _, r := range resolvedRz {
			for _, dl := range r.deltas {
				// estimate_eco speaks extraction arc ids; a structural commit
				// may have moved (or removed) them in the served engine.
				if a := m.refArcLocked(dl.ArcID); a >= 0 {
					s.applyArcLocked(a, dl.Delay[0], dl.Delay[1])
				}
			}
			s.resizes = append(s.resizes, r.rz)
		}
		for _, a := range req.Arcs {
			s.applyArcLocked(a.Arc, a.Rise, a.Fall)
		}
		s.propagateLocked()
	}
	s.ecoN++
	m.ecoTotal.Add(1)
	if m.debugLog() {
		m.log.Debug("eco applied", "session", s.ID, "eco", s.ecoN,
			"resizes", len(req.Resizes), "arcs", len(req.Arcs))
	}
	return s.resultLocked(), nil
}

// ApplyDeltas is the in-process fast path ApplyECO's arc form reduces to:
// annotate pre-computed estimate_eco deltas and re-propagate. The sizing
// driver uses it to preview candidates without JSON round-trips.
func (s *Session) ApplyDeltas(deltas []refsta.ArcDelta) (*ECOResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.touch()
	m := s.m
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := s.rebaseLocked(); err != nil {
		return nil, err
	}
	if s.ts != nil {
		tds := make([]topo.Delta, 0, len(deltas))
		for _, dl := range deltas {
			if a := s.tsArcFromRefLocked(dl.ArcID); a >= 0 {
				tds = append(tds, topo.Delta{Arc: a, Delay: dl.Delay})
			}
		}
		if err := s.ts.Annotate(tds); err != nil {
			return nil, err
		}
	} else {
		for _, dl := range deltas {
			if a := m.refArcLocked(dl.ArcID); a >= 0 {
				s.applyArcLocked(a, dl.Delay[0], dl.Delay[1])
			}
		}
		s.propagateLocked()
	}
	s.ecoN++
	m.ecoTotal.Add(1)
	return s.resultLocked(), nil
}

// tsArcLocked maps a committed-engine arc id into the structural session's
// current space (-1 = removed by an edit). Arcs the session itself appended
// (ids past the remap) pass through unchanged, as does everything when the
// session holds no structural edits. Caller holds s.mu.
func (s *Session) tsArcLocked(a int32) int32 {
	if s.ts == nil {
		return a
	}
	r := s.ts.Remap()
	if r == nil || int(a) >= len(r) {
		return a
	}
	return r[a]
}

// sessionToRefLocked inverts the full id chain: a session-current arc id back
// to the extraction-space id the reference engine speaks, or -1 when the arc
// only exists post-edit (an inserted buffer's arcs) and so has no signoff
// counterpart to estimate from. Caller holds s.mu and at least m.mu.RLock.
func (s *Session) sessionToRefLocked(a int32) int32 {
	cur := a
	if s.ts != nil {
		if r := s.ts.Remap(); r != nil {
			cur = -1
			for i, v := range r {
				if v == a {
					cur = int32(i)
					break
				}
			}
			if cur < 0 {
				return -1
			}
		}
	}
	ref := s.m.curToRefLocked(cur)
	if ref < 0 || s.m.ref == nil || int(ref) >= s.m.ref.NumArcs() {
		return -1
	}
	return ref
}

// tsArcFromRefLocked maps an extraction-space arc id (estimate_eco output)
// into the structural session's current space, or -1 when some structural
// edit — committed or session-local — removed it.
func (s *Session) tsArcFromRefLocked(ref int32) int32 {
	cur := s.m.refArcLocked(ref)
	if cur < 0 {
		return -1
	}
	return s.tsArcLocked(cur)
}

// resolveTopoLocked validates one structural batch and resolves its ops into
// topo.Ops (delays priced by the reference engine's frozen-slew estimators)
// plus the netlist changes to replay on commit. Nothing is applied. Caller
// holds s.mu and at least m.mu.RLock.
func (s *Session) resolveTopoLocked(req TopoRequest) ([]topo.Op, []resolvedResize, []resolvedMove, error) {
	m := s.m
	arcLimit := int32(m.e.NumArcs())
	if s.ts != nil {
		arcLimit = int32(len(s.ts.Tables().Arcs))
	}
	ops := make([]topo.Op, 0, len(req.Ops))
	var rzs []resolvedResize
	var mvs []resolvedMove
	for i, op := range req.Ops {
		switch op.Op {
		case "buffer":
			if m.ref == nil {
				return nil, nil, nil, ErrNoRefEngine
			}
			if op.Arc < 0 || op.Arc >= arcLimit {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: arc %d out of range [0,%d)", i, op.Arc, arcLimit)
			}
			libName := op.Lib
			if libName == "" {
				libName = "BUF_X4"
			}
			lib, ok := m.ref.Lib.CellByName(libName)
			if !ok {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: unknown library cell %q", i, libName)
			}
			frac := op.Frac
			if frac == 0 {
				frac = 0.5
			}
			ref := s.sessionToRefLocked(op.Arc)
			if ref < 0 {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: arc %d has no signoff counterpart to estimate from", i, op.Arc)
			}
			d, err := m.ref.EstimateBuffer(ref, lib, frac)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: %w", i, err)
			}
			// Inserted buffers have no design instance, so the spliced cell
			// arc carries no cell id (gradients skip it).
			ops = append(ops, topo.InsertBuffer(op.Arc, -1, d, frac))
			// The driver sheds the sink-side wire and pin for the buffer's
			// input cap: re-annotate its cell arcs at the reduced load (this
			// is the half of buffering that helps — every other sink of the
			// net rides the faster driver). At most one buffered branch per
			// driver per batch: a second would claim the same driver arcs.
			dds, err := m.ref.EstimateBufferDriver(ref, lib, frac)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: %w", i, err)
			}
			for _, dl := range dds {
				if a := s.tsArcFromRefLocked(dl.ArcID); a >= 0 {
					ops = append(ops, topo.Annotate(a, dl.Delay))
				}
			}
		case "unbuffer":
			if op.Arc < 0 || op.Arc >= arcLimit {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: arc %d out of range [0,%d)", i, op.Arc, arcLimit)
			}
			ops = append(ops, topo.RemoveBuffer(op.Arc))
		case "repower":
			if m.ref == nil {
				return nil, nil, nil, ErrNoRefEngine
			}
			c, ok := m.ref.D.CellByName(op.Cell)
			if !ok {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: unknown cell %q", i, op.Cell)
			}
			lib, ok := m.ref.Lib.CellByName(op.Lib)
			if !ok {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: unknown library cell %q", i, op.Lib)
			}
			deltas, err := m.ref.EstimateECO(c, lib)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: estimate_eco %s -> %s: %w", i, op.Cell, op.Lib, err)
			}
			for _, dl := range deltas {
				if a := s.tsArcFromRefLocked(dl.ArcID); a >= 0 {
					ops = append(ops, topo.Annotate(a, dl.Delay))
				}
			}
			rzs = append(rzs, resolvedResize{cell: c, lib: lib})
		case "move":
			if m.ref == nil {
				return nil, nil, nil, ErrNoRefEngine
			}
			c, ok := m.ref.D.CellByName(op.Cell)
			if !ok {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: unknown cell %q", i, op.Cell)
			}
			deltas, err := m.ref.EstimateMove(c, op.X, op.Y)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: estimate_move %s: %w", i, op.Cell, err)
			}
			for _, dl := range deltas {
				if a := s.tsArcFromRefLocked(dl.ArcID); a >= 0 {
					ops = append(ops, topo.Annotate(a, dl.Delay))
				}
			}
			mvs = append(mvs, resolvedMove{cell: c, x: op.X, y: op.Y})
		case "annotate":
			if op.Arc < 0 || op.Arc >= arcLimit {
				return nil, nil, nil, fmt.Errorf("server: topo op %d: arc %d out of range [0,%d)", i, op.Arc, arcLimit)
			}
			ops = append(ops, topo.Annotate(op.Arc, [2]num.Dist{op.Rise, op.Fall}))
		default:
			return nil, nil, nil, fmt.Errorf("server: topo op %d: unknown op %q", i, op.Op)
		}
	}
	return ops, rzs, mvs, nil
}

// ApplyTopo validates and applies one structural edit batch — buffer
// insertions/removals, repowers, moves, raw annotations — to the session's
// structural working set, re-levelizing and re-propagating only the edited
// cone, and returns the post-edit view. The committed base is untouched until
// Commit. The batch is atomic: on any error the session is exactly as it was.
//
// The first structural batch converts the session: it must hold no
// uncommitted annotation ECOs (ErrPendingAnnotations), and from then on every
// evaluation runs against the session's own seeded engines; a commit to the
// base by any other session conflicts it (ErrStructuralConflict).
func (s *Session) ApplyTopo(req TopoRequest) (*TopoResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if len(req.Ops) == 0 {
		return nil, errors.New("server: empty topo batch")
	}
	s.touch()
	m := s.m
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := s.rebaseLocked(); err != nil {
		return nil, err
	}
	if s.ts == nil && s.ov.Stats().TouchedArcs > 0 {
		return nil, ErrPendingAnnotations
	}
	ops, rzs, mvs, err := s.resolveTopoLocked(req)
	if err != nil {
		return nil, err
	}
	created := false
	if s.ts == nil {
		ts, err := topo.NewSession(m.e, m.be)
		if err != nil {
			return nil, err
		}
		ts.SetTracer(m.e.Tracer())
		s.ts = ts
		created = true
	}
	res, err := s.ts.Apply(ops)
	if err != nil {
		if created {
			s.ts.Close()
			s.ts = nil
		}
		return nil, err
	}
	s.resizes = append(s.resizes, rzs...)
	s.moves = append(s.moves, mvs...)
	st := s.ts.Stats()
	m.topoEdits.Add(1)
	m.topoInserted.Add(int64(res.Inserted))
	m.topoRemoved.Add(int64(res.Removed))
	m.relevelHist.Observe(float64(st.Relevel.LevelsSpan))
	finalArcs := len(s.ts.Tables().Arcs)
	tr := &TopoResult{
		View:          s.topoResultLocked(),
		Inserted:      res.Inserted,
		Removed:       res.Removed,
		Annotated:     res.Annotated,
		NewPins:       res.NewPins,
		NewArcs:       [2]int{finalArcs - 2*res.Inserted, finalArcs},
		RelevelLevels: st.Relevel.LevelsSpan,
		RelevelRegion: st.Relevel.Region,
		Edits:         st.Edits,
	}
	if m.debugLog() {
		m.log.Debug("topo applied", "session", s.ID, "edits", st.Edits,
			"inserted", res.Inserted, "removed", res.Removed,
			"annotated", res.Annotated, "relevel_levels", st.Relevel.LevelsSpan,
			"relevel_region", st.Relevel.Region)
	}
	return tr, nil
}

// Result returns the session's current view without applying anything
// (rebasing first if the base moved).
func (s *Session) Result() (*ECOResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.touch()
	s.m.mu.RLock()
	defer s.m.mu.RUnlock()
	if err := s.rebaseLocked(); err != nil {
		return nil, err
	}
	return s.resultLocked(), nil
}

// Slacks returns the session's full endpoint slack view: the committed base
// slacks with the overlay's re-derived endpoints applied on top.
func (s *Session) Slacks() ([]float64, error) {
	return s.SlacksInto(nil)
}

// SlacksInto is the allocation-free form of Slacks: the view is written into
// dst (grown only when too small) and the filled slice returned. Callers own
// dst; per-request reuse through a pool keeps the serving steady state free
// of per-call allocations.
func (s *Session) SlacksInto(dst []float64) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.touch()
	s.m.mu.RLock()
	defer s.m.mu.RUnlock()
	if err := s.rebaseLocked(); err != nil {
		return nil, err
	}
	base := s.m.e.Slacks()
	if s.ts != nil {
		base = s.ts.Engine().Slacks()
	}
	if cap(dst) < len(base) {
		dst = make([]float64, len(base))
	}
	dst = dst[:len(base)]
	copy(dst, base)
	if s.ts == nil {
		for _, ep := range s.ov.ChangedEndpointsView() {
			dst[ep] = s.ov.Slack(ep)
		}
	}
	return dst, nil
}

// ScenarioSlacks returns the session's full endpoint slack view in one
// scenario ("merged" = per-endpoint worst corner): the scenario's committed
// base slacks with the overlay's re-derived endpoints applied on top.
func (s *Session) ScenarioSlacks(name string) ([]float64, error) {
	return s.ScenarioSlacksInto(name, nil)
}

// ScenarioSlacksInto is the allocation-free form of ScenarioSlacks: the view
// is written into dst (grown only when too small) and the filled slice
// returned.
func (s *Session) ScenarioSlacksInto(name string, dst []float64) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.bov == nil {
		return nil, ErrNoCorners
	}
	s.touch()
	m := s.m
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := s.rebaseLocked(); err != nil {
		return nil, err
	}
	if s.ts != nil {
		be := s.ts.Batch()
		if name == "merged" {
			return be.MergedSlacksInto(dst), nil
		}
		sc := be.ScenarioIndex(name)
		if sc < 0 {
			return nil, fmt.Errorf("%w: %q", ErrUnknownScenario, name)
		}
		return be.SlacksInto(sc, dst), nil
	}
	if name == "merged" {
		out := m.be.MergedSlacksInto(dst)
		for _, ep := range s.bov.ChangedEndpointsView() {
			out[ep] = s.bov.MergedSlack(ep)
		}
		return out, nil
	}
	sc := m.be.ScenarioIndex(name)
	if sc < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScenario, name)
	}
	out := m.be.SlacksInto(sc, dst)
	for _, ep := range s.bov.ChangedEndpointsView() {
		out[ep] = s.bov.Slack(sc, ep)
	}
	return out, nil
}

// Commit folds the session's recorded arc deltas into the base engine
// (incremental propagation, full slack re-evaluation), replays its resizes
// into the reference netlist, bumps the epoch, and leaves the session open
// and empty against the new base. Commit order across sessions defines the
// sequential-application order; each commit is bit-identical to applying the
// session's deltas on whatever base it lands on.
func (s *Session) Commit() (*ECOResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.touch()
	m := s.m
	t0 := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.ts != nil {
		return s.commitStructuralLocked(t0)
	}
	if s.topoGen != m.topoGen {
		// A structural commit replaced the engine objects under this
		// annotation session: re-bind (re-keying recorded deltas through the
		// commits' arc remaps) before folding them in.
		remap := m.composedRemapSince(s.topoGen)
		s.ov.RebaseStructural(m.e, remap)
		if s.bov != nil {
			s.bov.RebaseStructural(m.be, remap)
		}
		s.topoGen = m.topoGen
	}
	prevWNS, prevTNS := m.baseWNS, m.baseTNS
	s.ov.Commit()
	if s.bov != nil {
		s.bov.Commit()
	}
	if len(s.resizes) > 0 {
		for _, rz := range s.resizes {
			// Already validated by ApplyECO; a failure here means another
			// session committed a conflicting footprint change — skip the
			// netlist replay, the timing deltas are already in.
			_, _ = m.ref.ResizeCell(rz.cell, rz.lib)
		}
		m.ref.UpdateTimingIncremental()
		s.resizes = s.resizes[:0]
	}
	m.epoch++
	m.epochA.Store(m.epoch)
	m.baseWNS, m.baseTNS = m.e.WNS(), m.e.TNS()
	res := &ECOResult{
		WNS:       m.baseWNS,
		TNS:       m.baseTNS,
		Epoch:     m.epoch,
		Committed: true,
	}
	if m.be != nil {
		prev := m.baseScn
		m.baseScn = scenarioBaseViews(m.be)
		res.Scenarios = make([]ScenarioView, len(m.baseScn))
		for i, v := range m.baseScn {
			v.DeltaWNS = v.WNS - prev[i].WNS
			v.DeltaTNS = v.TNS - prev[i].TNS
			res.Scenarios[i] = v
		}
	}
	s.epoch = m.epoch
	m.commits.Add(1)
	m.log.Info("session committed", "session", s.ID, "ecos", s.ecoN,
		"epoch", m.epoch, "wns", m.baseWNS, "tns", m.baseTNS,
		"duration", time.Since(t0))
	if m.opt.ManifestDir != "" {
		man := &obs.Manifest{
			Tool:      "insta-served-commit",
			Design:    m.opt.Design,
			StartedAt: t0,
			WallMS:    float64(time.Since(t0).Nanoseconds()) / 1e6,
			Pins:      m.e.NumPins(),
			Arcs:      m.e.NumArcs(),
			Endpoints: len(m.e.Endpoints()),
			Levels:    m.e.NumLevels(),
			TopK:      m.e.TopK(),
			Workers:   m.e.Pool().Workers(),
			WNSBefore: prevWNS,
			TNSBefore: prevTNS,
			WNSAfter:  m.baseWNS,
			TNSAfter:  m.baseTNS,
		}
		if m.be != nil {
			for _, scn := range m.be.Scenarios() {
				man.Scenarios = append(man.Scenarios, scn.Name)
			}
		}
		man.AddExtra("session", s.ID)
		man.AddExtra("ecos", s.ecoN)
		man.AddExtra("epoch", m.epoch)
		if path, err := obs.WriteManifest(m.opt.ManifestDir, man); err != nil {
			m.log.Warn("commit manifest write failed", "err", err)
		} else {
			m.log.Debug("commit manifest written", "path", path)
		}
	}
	return res, nil
}

// commitStructuralLocked commits a session's structural working set: the
// manager swaps its base engines for the session's seeded ones (the sequel
// bit-identical to a cold compile of the edited netlist), records the arc
// remap so annotation sessions opened against the old structure can re-key,
// replays the session's repowers/moves into the signoff netlist, and bumps
// both the epoch and the structural generation. Caller holds s.mu and
// m.mu.Lock (every in-flight evaluation has drained).
func (s *Session) commitStructuralLocked(t0 time.Time) (*ECOResult, error) {
	m := s.m
	sp := m.e.Tracer().StartArg("structural-commit", "edits", int64(s.ts.Stats().Edits))
	defer sp.End()
	if s.epoch != m.epoch {
		// Someone committed after this session's last edit; the working set
		// was seeded from a base that no longer exists.
		m.topoConflicts.Add(1)
		return nil, ErrStructuralConflict
	}
	d, err := s.ts.Detach()
	if err != nil {
		return nil, err
	}
	prevWNS, prevTNS := m.baseWNS, m.baseTNS
	oldE, oldBe := m.e, m.be
	m.e = d.Engine
	if d.Batch != nil {
		m.be = d.Batch
	}
	if m.ownsBase {
		// Engines installed by an earlier structural commit: nothing else can
		// reference them once every overlay rebases, and Close only stops the
		// scheduler pool — the tensors stay readable for overlays that rebase
		// lazily later.
		oldE.Close()
		if oldBe != nil && d.Batch != nil {
			oldBe.Close()
		}
	}
	m.ownsBase = true
	m.topoGen++
	m.topoGenA.Store(m.topoGen)
	m.remapHist = append(m.remapHist, remapGen{gen: m.topoGen, remap: d.Remap})
	m.baseRemap = composeArcRemap(m.baseRemap, d.Remap, m.extArcs)
	// Replay repowers and moves into the signoff netlist so later estimate_eco
	// calls price against fresh loads and placement. Inserted buffers have no
	// netlist counterpart: the reference stays the estimation oracle over the
	// original instances (documented limitation).
	if m.ref != nil && (len(s.resizes) > 0 || len(s.moves) > 0) {
		for _, rz := range s.resizes {
			_, _ = m.ref.ResizeCell(rz.cell, rz.lib)
		}
		for _, mv := range s.moves {
			_, _, _ = m.ref.MoveCell(mv.cell, mv.x, mv.y)
		}
		m.ref.UpdateTimingIncremental()
	}
	s.resizes = s.resizes[:0]
	s.moves = s.moves[:0]
	m.epoch++
	m.epochA.Store(m.epoch)
	m.baseWNS, m.baseTNS = m.e.WNS(), m.e.TNS()
	res := &ECOResult{
		WNS:       m.baseWNS,
		TNS:       m.baseTNS,
		DeltaWNS:  m.baseWNS - prevWNS,
		DeltaTNS:  m.baseTNS - prevTNS,
		Epoch:     m.epoch,
		Committed: true,
	}
	if m.be != nil {
		prev := m.baseScn
		m.baseScn = scenarioBaseViews(m.be)
		res.Scenarios = make([]ScenarioView, len(m.baseScn))
		for i, v := range m.baseScn {
			v.DeltaWNS = v.WNS - prev[i].WNS
			v.DeltaTNS = v.TNS - prev[i].TNS
			res.Scenarios[i] = v
		}
	}
	// Re-bind this session's overlays to the engines it just installed. It
	// holds no overlay deltas (structural sessions reject them), so the
	// rebase is a pure re-point.
	s.ov.RebaseStructural(m.e, nil)
	if s.bov != nil {
		s.bov.RebaseStructural(m.be, nil)
	}
	s.ts = nil // detached: the manager owns the working set now
	s.epoch = m.epoch
	s.topoGen = m.topoGen
	m.commits.Add(1)
	m.topoCommits.Add(1)
	m.log.Info("structural commit", "session", s.ID,
		"edits", d.Stats.Edits, "inserted", d.Stats.Inserted,
		"removed", d.Stats.Removed, "annotated", d.Stats.Annotated,
		"new_pins", d.Stats.NewPins, "epoch", m.epoch, "topo_gen", m.topoGen,
		"wns", m.baseWNS, "tns", m.baseTNS, "duration", time.Since(t0))
	if m.opt.ManifestDir != "" {
		man := &obs.Manifest{
			Tool:      "insta-served-commit",
			Design:    m.opt.Design,
			StartedAt: t0,
			WallMS:    float64(time.Since(t0).Nanoseconds()) / 1e6,
			Pins:      m.e.NumPins(),
			Arcs:      m.e.NumArcs(),
			Endpoints: len(m.e.Endpoints()),
			Levels:    m.e.NumLevels(),
			TopK:      m.e.TopK(),
			Workers:   m.e.Pool().Workers(),
			WNSBefore: prevWNS,
			TNSBefore: prevTNS,
			WNSAfter:  m.baseWNS,
			TNSAfter:  m.baseTNS,
		}
		man.AddExtra("session", s.ID)
		man.AddExtra("structural", true)
		man.AddExtra("inserted", d.Stats.Inserted)
		man.AddExtra("removed", d.Stats.Removed)
		man.AddExtra("epoch", m.epoch)
		if path, err := obs.WriteManifest(m.opt.ManifestDir, man); err != nil {
			m.log.Warn("commit manifest write failed", "err", err)
		} else if m.debugLog() {
			m.log.Debug("commit manifest written", "path", path)
		}
	}
	return res, nil
}

// composeArcRemap folds one structural commit's remap (old-current → new
// ids, nil = identity) into the composed extraction→current remap. n is the
// extraction arc count, the domain of the composed remap.
func composeArcRemap(prev, next []int32, n int) []int32 {
	if next == nil {
		return prev
	}
	if prev == nil {
		prev = make([]int32, n)
		for i := range prev {
			prev[i] = int32(i)
		}
	}
	for i, cur := range prev {
		if cur >= 0 {
			prev[i] = next[cur]
		}
	}
	return prev
}

// Rollback discards the session's uncommitted deltas — annotation and
// structural alike — re-syncing it to the current base. The session stays
// open.
func (s *Session) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.touch()
	m := s.m
	m.mu.RLock()
	defer m.mu.RUnlock()
	if s.ts != nil {
		s.ts.Close()
		s.ts = nil
	}
	s.ov.Reset()
	if s.bov != nil {
		s.bov.Reset()
	}
	if s.topoGen != m.topoGen {
		// The base engines were structurally replaced; re-point the emptied
		// overlays (no deltas survive a reset, so no remap needed).
		s.ov.RebaseStructural(m.e, nil)
		if s.bov != nil {
			s.bov.RebaseStructural(m.be, nil)
		}
		s.topoGen = m.topoGen
	}
	s.resizes = s.resizes[:0]
	s.moves = s.moves[:0]
	s.epoch = m.epoch
	m.rollbacks.Add(1)
	return nil
}

// Close discards the session and unlinks it from the manager. It reports
// whether this call was the one that closed it.
func (s *Session) Close() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	if s.ts != nil {
		s.ts.Close()
		s.ts = nil
	}
	s.ov.Reset()
	if s.bov != nil {
		s.bov.Reset()
	}
	return s.m.remove(s.ID)
}

// ECOCount returns how many batches this session has evaluated.
func (s *Session) ECOCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ecoN
}
