package server

// Fuzz differential for the pooled JSON encoder: for every value shape the
// serving layer emits, appendValue must produce byte-for-byte what
// encoding/json's Marshal produces (compact, HTML-escaped, sorted map keys,
// shortest-float) — the /metrics-style byte-stability contract extended to
// every JSON response. The fuzzer drives the pooled path end to end, so
// buffer recycling through encPool is exercised under arbitrary inputs too.

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func FuzzPooledEncoder(f *testing.F) {
	f.Add("hello", 1.5, int64(-3), true, "k")
	f.Add("<script>&\"\\  ", 1e21, int64(0), false, "")
	f.Add("\x00\x1f\x7f\xff", 1e-7, int64(math.MaxInt64), true, "a\xc3\x28b")
	f.Add("wns", -0.0, int64(42), false, "slack")
	f.Fuzz(func(t *testing.T, s string, fl float64, n int64, b bool, k string) {
		vals := []any{
			nil, b, s, n, fl,
			[]float64{fl, -fl, 0},
			[]string{s, k},
			[]any{s, fl, n, b, nil},
			map[string]any{k: s, "x": fl, "n": n},
			map[string]string{k: s, "x": k},
			map[string]float64{k: fl, "x": -fl},
			// Nested maps: the inner encode must not clobber the outer map's
			// key-sorting scratch mid-iteration (keys sorting after the nested
			// value used to be corrupted — the /healthz "load"/"latency_s"
			// shape).
			map[string]any{
				"a": map[string]float64{k: fl, "q": -fl},
				"m": map[string]any{"z": s, "b": n, k: b},
				"x": s, "y": fl, "z": n,
			},
			map[string]any{k: map[string]string{"j": s}, "tail": s},
		}
		for _, v := range vals {
			want, werr := json.Marshal(v)
			e := encPool.Get().(*jsonEnc)
			got, gerr := e.appendValue(e.buf[:0], v)
			if (werr != nil) != (gerr != nil) {
				t.Fatalf("%#v: error mismatch: encoding/json=%v pooled=%v", v, werr, gerr)
			}
			if werr == nil && !bytes.Equal(got, want) {
				t.Fatalf("%#v: pooled %q != encoding/json %q", v, got, want)
			}
			e.buf = got[:0]
			encPool.Put(e)
		}
	})
}
