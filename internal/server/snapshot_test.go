package server_test

// Warm-boot serving tests: /admin/snapshot persists the committed base state
// through the snapshot cache, /healthz reports the boot provenance, and a
// daemon restarted from the saved snapshot reproduces the ECO'd base
// bit-identically — the serve-side half of internal/snap.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insta/internal/core"
	"insta/internal/server"
	"insta/internal/snap"
)

func TestAdminSnapshotDisabled(t *testing.T) {
	mgr, _ := newTestManager(t, "block-5", 8, 2, server.Options{})
	srv := httptest.NewServer(server.New(mgr, "block-5").Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("snapshot save without a cache: got %d, want 501", resp.StatusCode)
	}
}

func TestAdminSnapshotSaveAndWarmReboot(t *testing.T) {
	cache, err := snap.NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	boot := &server.BootInfo{Mode: "cold", SnapshotKey: "serve-key", ColdBuildMS: 12}
	mgr, _ := newTestManager(t, "block-5", 8, 2, server.Options{Snapshots: cache, Boot: boot})
	srv := httptest.NewServer(server.New(mgr, "block-5").Handler())
	defer srv.Close()
	client := srv.Client()

	// /healthz reports the boot provenance.
	hr, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Boot *server.BootInfo `json:"boot"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Boot == nil || health.Boot.Mode != "cold" || health.Boot.SnapshotKey != "serve-key" {
		t.Fatalf("healthz boot section wrong: %+v", health.Boot)
	}

	// Mutate the committed base through an ECO commit so the snapshot holds
	// state the original extraction does not.
	var sess struct {
		ID string `json:"id"`
	}
	pr, err := client.Post(srv.URL+"/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(pr.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	e := mgr.Engine()
	rise, fall := e.ArcDelay(0, 0), e.ArcDelay(0, 1)
	rise.Mean *= 1.5
	fall.Mean *= 1.5
	body, _ := json.Marshal(server.ECORequest{Arcs: []server.ArcECO{{Arc: 0, Rise: rise, Fall: fall}}})
	er, err := client.Post(srv.URL+"/session/"+sess.ID+"/eco", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	er.Body.Close()
	cr, err := client.Post(srv.URL+"/session/"+sess.ID+"/commit", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("commit failed: %d", cr.StatusCode)
	}

	sr, err := client.Post(srv.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var saved struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
		Key   string `json:"key"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&saved); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK || saved.Key != "serve-key" || saved.Bytes <= 0 {
		t.Fatalf("snapshot save: status %d, %+v", sr.StatusCode, saved)
	}

	// Warm reboot: the saved snapshot reproduces the ECO'd base exactly.
	snp, err := cache.Load("serve-key")
	if err != nil || snp == nil {
		t.Fatalf("reload saved snapshot: %v/%v", snp, err)
	}
	e2, err := core.NewEngineFromState(snp.State, core.Options{TopK: 8, Workers: 2, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e2.Run()
	if e2.WNS() != mgr.BaseWNS() || e2.TNS() != mgr.BaseTNS() {
		t.Fatalf("warm reboot diverged: snapshot WNS/TNS %v/%v, live base %v/%v",
			e2.WNS(), e2.TNS(), mgr.BaseWNS(), mgr.BaseTNS())
	}

	// The cache counters show up on /metrics when a cache is configured.
	mr, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "insta_snap_cache_hits_total") {
		t.Fatalf("metrics missing snapshot cache counters:\n%s", metrics)
	}
}
