package server_test

// Serving-layer tests for structural ECO sessions: the POST /session/{id}/topo
// route, structural preview/commit/rollback semantics against the manager's
// epoch/generation machinery, the rollback-after-failed-commit byte-identity
// guarantee, and snapshot survival of structural edits.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/server"
	"insta/internal/snap"
)

// firstNetArc returns the lowest net-arc id of the setup's extraction tables
// (arc kind 1 = net arc), the natural buffer-insertion target.
func firstNetArc(t *testing.T, s *exp.Setup, skip int) int32 {
	t.Helper()
	for i := range s.Tab.Arcs {
		if s.Tab.Arcs[i].Kind == 1 {
			if skip == 0 {
				return int32(i)
			}
			skip--
		}
	}
	t.Fatal("no net arc in tables")
	return -1
}

// TestTopoHTTPBufferLifecycle drives the structural route over the wire:
// insert a buffer, read the structural footprint, commit, then remove the
// same buffer from a fresh session using the reported new-arc ids.
func TestTopoHTTPBufferLifecycle(t *testing.T) {
	mgr, s := newTestManager(t, "des", 8, 2, server.Options{})
	defer mgr.Close()
	srv := httptest.NewServer(server.New(mgr, "des").Handler())
	defer srv.Close()
	c := srv.Client()

	code, m := postJSON(t, c, srv.URL+"/session", nil)
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var id string
	json.Unmarshal(m["id"], &id)

	// Empty batch is a 400.
	code, _ = postJSON(t, c, srv.URL+"/session/"+id+"/topo", server.TopoRequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("empty topo batch: %d, want 400", code)
	}

	arc := firstNetArc(t, s, 0)
	code, m = postJSON(t, c, srv.URL+"/session/"+id+"/topo", server.TopoRequest{
		Ops: []server.TopoOp{{Op: "buffer", Arc: arc, Frac: 0.4}},
	})
	if code != http.StatusOK {
		t.Fatalf("topo buffer: %d %v", code, m)
	}
	var res server.TopoResult
	buf, _ := json.Marshal(m)
	if err := json.Unmarshal(buf, &res); err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.NewPins != 2 || res.Edits != 1 {
		t.Fatalf("insert footprint: %+v", res)
	}
	if res.NewArcs[1]-res.NewArcs[0] != 2 {
		t.Fatalf("new_arcs %v, want a 2-arc range", res.NewArcs)
	}
	if res.View == nil || res.View.Epoch != mgr.Epoch() {
		t.Fatalf("topo view missing or stale: %+v", res.View)
	}
	if res.RelevelRegion <= 0 {
		t.Fatalf("relevel region %d, want > 0", res.RelevelRegion)
	}

	// The base is untouched until commit.
	if got := mgr.Engine().NumArcs(); got != len(s.Tab.Arcs) {
		t.Fatalf("preview mutated the base: %d arcs, want %d", got, len(s.Tab.Arcs))
	}

	epoch0 := mgr.Epoch()
	code, m = postJSON(t, c, srv.URL+"/session/"+id+"/commit", nil)
	if code != http.StatusOK {
		t.Fatalf("structural commit: %d %v", code, m)
	}
	if mgr.Epoch() != epoch0+1 || mgr.TopoGen() != 1 {
		t.Fatalf("epoch %d topoGen %d after structural commit", mgr.Epoch(), mgr.TopoGen())
	}
	if got := mgr.Engine().NumArcs(); got != len(s.Tab.Arcs)+2 {
		t.Fatalf("committed base has %d arcs, want %d", got, len(s.Tab.Arcs)+2)
	}

	// Structural counters and the re-levelization histogram are on /metrics.
	resp, err := c.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	sb.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"insta_topo_edits_total 1\n",
		"insta_topo_buffers_inserted_total 1\n",
		"insta_topo_commits_total 1\n",
		"insta_base_topo_gen 1\n",
		"insta_topo_relevel_levels_count 1\n",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, sb.String())
		}
	}

	// Remove the committed buffer from a fresh session: its cell arc id is
	// the first id of the reported new-arc range (stable across the commit —
	// an insert-only batch never renumbers).
	code, m = postJSON(t, c, srv.URL+"/session", nil)
	if code != http.StatusCreated {
		t.Fatalf("create 2: %d", code)
	}
	var id2 string
	json.Unmarshal(m["id"], &id2)
	code, m = postJSON(t, c, srv.URL+"/session/"+id2+"/topo", server.TopoRequest{
		Ops: []server.TopoOp{{Op: "unbuffer", Arc: int32(res.NewArcs[0])}},
	})
	if code != http.StatusOK {
		t.Fatalf("topo unbuffer: %d %v", code, m)
	}
	var res2 server.TopoResult
	buf, _ = json.Marshal(m)
	json.Unmarshal(buf, &res2)
	if res2.Removed != 1 {
		t.Fatalf("unbuffer footprint: %+v", res2)
	}
	// Roll the removal back over the wire; the session stays usable.
	if code, m = postJSON(t, c, srv.URL+"/session/"+id2+"/rollback", nil); code != http.StatusOK {
		t.Fatalf("rollback: %d %v", code, m)
	}
	code, _ = postJSON(t, c, srv.URL+"/session/"+id2+"/topo", server.TopoRequest{
		Ops: []server.TopoOp{{Op: "buffer", Arc: firstNetArc(t, s, 1)}},
	})
	if code != http.StatusOK {
		t.Fatalf("topo after rollback: %d", code)
	}
}

// TestTopoPreviewCommitBitIdentical pins the structural commit guarantee at
// the serving layer: the committed base's slack vector is byte-for-byte the
// previewed one (the commit installs the session's working engine, it does
// not re-derive anything).
func TestTopoPreviewCommitBitIdentical(t *testing.T) {
	mgr, s := newTestManager(t, "des", 8, 2, server.Options{})
	defer mgr.Close()
	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	cl := bench.Changelist(s.B, 7, 1)
	res, err := sess.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{
		{Op: "buffer", Arc: firstNetArc(t, s, 0), Frac: 0.3},
		{Op: "repower", Cell: s.B.D.Cells[cl[0].Cell].Name, Lib: s.B.Lib.Cell(cl[0].NewLib).Name},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Annotated == 0 {
		t.Fatalf("mixed batch footprint: %+v", res)
	}
	preview, err := sess.Slacks()
	if err != nil {
		t.Fatal(err)
	}
	previewWNS := res.View.WNS

	com, err := sess.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if !com.Committed || com.WNS != previewWNS {
		t.Fatalf("committed WNS %v, preview %v", com.WNS, previewWNS)
	}
	base := mgr.Engine().Slacks()
	if len(base) != len(preview) {
		t.Fatalf("endpoint count changed: %d vs %d", len(base), len(preview))
	}
	for i := range base {
		if base[i] != preview[i] {
			t.Fatalf("endpoint %d: committed %v, previewed %v", i, base[i], preview[i])
		}
	}

	// The session stays open against the new base and can keep editing.
	if _, err := sess.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{
		{Op: "buffer", Arc: firstNetArc(t, s, 2)},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestTopoRollbackAfterFailedStructuralCommit is the failed-commit atomicity
// guarantee: when a structural commit loses the race (another session
// committed first), the base state the manager serves is byte-identical
// before the failed commit, after it, and after the session rolls back — the
// losing session never leaks a partial swap.
func TestTopoRollbackAfterFailedStructuralCommit(t *testing.T) {
	mgr, s := newTestManager(t, "des", 8, 2, server.Options{})
	defer mgr.Close()

	sA, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sA.Close()
	if _, err := sA.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{
		{Op: "buffer", Arc: firstNetArc(t, s, 0)},
	}}); err != nil {
		t.Fatal(err)
	}

	// A competing annotation session commits, moving the base under sA.
	sB, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sB.Close()
	if _, err := sB.ApplyDeltas(arcDeltas(mgr.Engine(), 0, 97, 1.07)); err != nil {
		t.Fatal(err)
	}
	if _, err := sB.Commit(); err != nil {
		t.Fatal(err)
	}

	encode := func() []byte {
		return snap.Encode(mgr.Engine().ExportState(), nil, "k")
	}
	before := encode()

	if _, err := sA.Commit(); !errors.Is(err, server.ErrStructuralConflict) {
		t.Fatalf("conflicted structural commit: err %v, want ErrStructuralConflict", err)
	}
	if got := encode(); !bytes.Equal(got, before) {
		t.Fatal("failed structural commit mutated the base state")
	}
	if err := sA.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := encode(); !bytes.Equal(got, before) {
		t.Fatal("rollback after failed structural commit mutated the base state")
	}
	if tc := mgr.TopoCountersSnapshot(); tc.Conflicts == 0 {
		t.Fatal("conflict not counted")
	}

	// The rolled-back session re-applies against the moved base and commits.
	if _, err := sA.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{
		{Op: "buffer", Arc: firstNetArc(t, s, 0)},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sA.Commit(); err != nil {
		t.Fatal(err)
	}
	if mgr.TopoGen() != 1 {
		t.Fatalf("topoGen %d after retry commit, want 1", mgr.TopoGen())
	}
}

// TestTopoPendingAnnotationsRejected: a session holding uncommitted overlay
// annotations cannot start structural edits (they would be priced against the
// wrong base); rolling back clears the block. Once structural, annotation
// ECOs fold into the structural working set instead of the overlay.
func TestTopoPendingAnnotationsRejected(t *testing.T) {
	mgr, s := newTestManager(t, "des", 8, 2, server.Options{})
	defer mgr.Close()
	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.ApplyDeltas(arcDeltas(mgr.Engine(), 0, 131, 1.02)); err != nil {
		t.Fatal(err)
	}
	req := server.TopoRequest{Ops: []server.TopoOp{{Op: "buffer", Arc: firstNetArc(t, s, 0)}}}
	if _, err := sess.ApplyTopo(req); !errors.Is(err, server.ErrPendingAnnotations) {
		t.Fatalf("topo on dirty session: err %v, want ErrPendingAnnotations", err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ApplyTopo(req); err != nil {
		t.Fatal(err)
	}

	// Annotation ECO on the structural session folds into the working set.
	res, err := sess.ApplyDeltas(arcDeltas(mgr.Engine(), 1, 131, 1.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.TouchedArcs == 0 {
		t.Fatal("annotation on structural session touched nothing")
	}
}

// TestTopoStructuralCommitRebasesAnnotationSessions: annotation sessions
// opened before a structural commit keep working afterwards — their recorded
// deltas survive the engine swap (re-keyed through the commit's remap) and
// both the estimate_eco path and their own commit land on the new base.
func TestTopoStructuralCommitRebasesAnnotationSessions(t *testing.T) {
	mgr, s := newTestManager(t, "des", 8, 2, server.Options{})
	defer mgr.Close()

	sAnn, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sAnn.Close()
	deltas := arcDeltas(mgr.Engine(), 0, 97, 1.05)
	if _, err := sAnn.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}

	sTopo, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sTopo.Close()
	if _, err := sTopo.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{
		{Op: "buffer", Arc: firstNetArc(t, s, 0)},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sTopo.Commit(); err != nil {
		t.Fatal(err)
	}

	// sAnn transparently rebases onto the swapped engines.
	res, err := sAnn.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != mgr.Epoch() {
		t.Fatalf("rebased session epoch %d, manager %d", res.Epoch, mgr.Epoch())
	}
	if res.TouchedArcs != len(deltas) {
		t.Fatalf("rebased session kept %d deltas, want %d", res.TouchedArcs, len(deltas))
	}
	if _, err := sAnn.Commit(); err != nil {
		t.Fatal(err)
	}

	// estimate_eco resolution still works against the structurally edited
	// base (extraction ids translate through the composed remap).
	sNew, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sNew.Close()
	ecos := resizeECOs(s, 13, 1)
	if _, err := sNew.ApplyECO(ecos[0]); err != nil {
		t.Fatal(err)
	}
}

// TestTopoSnapshotSurvivesStructuralCommit: POST /admin/snapshot after a
// structural commit persists the edited topology — a cold engine stood up
// from the stored state reproduces the committed slack vector exactly.
func TestTopoSnapshotSurvivesStructuralCommit(t *testing.T) {
	cache, err := snap.NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mgr, s := newTestManager(t, "des", 8, 2, server.Options{
		Snapshots: cache,
		Boot:      &server.BootInfo{Mode: "cold", SnapshotKey: "topo-test"},
	})
	defer mgr.Close()

	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Two batches: same-net buffer ops would claim the same driver arcs in
	// one batch, and multi-batch sessions must commit whole.
	if _, err := sess.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{
		{Op: "buffer", Arc: firstNetArc(t, s, 0), Frac: 0.6},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ApplyTopo(server.TopoRequest{Ops: []server.TopoOp{
		{Op: "buffer", Arc: firstNetArc(t, s, 3)},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Commit(); err != nil {
		t.Fatal(err)
	}

	if _, _, _, err := mgr.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	snp, err := cache.Load("topo-test")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.NewEngineFromState(snp.State, core.Options{TopK: 8, Workers: 2, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e2.Run()

	if e2.NumArcs() != mgr.Engine().NumArcs() || e2.NumPins() != mgr.Engine().NumPins() {
		t.Fatalf("warm-boot shape %d arcs/%d pins, committed %d/%d",
			e2.NumArcs(), e2.NumPins(), mgr.Engine().NumArcs(), mgr.Engine().NumPins())
	}
	want := mgr.Engine().Slacks()
	got := e2.Slacks()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("endpoint %d: warm-boot slack %v, committed %v", i, got[i], want[i])
		}
	}
}
