package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insta/internal/core"
	"insta/internal/obs"
	"insta/internal/server"
)

// latBounds mirrors the server's latency bucket bounds for the byte-compat
// expectation below.
var latBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 13,
}

func emptyHistExposition(name string) string {
	return emptyHistExpositionBounds(name, latBounds)
}

func emptyHistExpositionBounds(name string, bounds []float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
	for _, b := range bounds {
		fmt.Fprintf(&sb, "%s_bucket{le=\"%g\"} 0\n", name, b)
	}
	fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} 0\n", name)
	fmt.Fprintf(&sb, "%s_sum 0\n", name)
	fmt.Fprintf(&sb, "%s_count 0\n", name)
	return sb.String()
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(buf)
}

// TestMetricsByteCompat pins the /metrics exposition byte-for-byte on a fresh
// server: the obs-registry rewrite must render the exact same bytes the
// pre-obs hand-rolled writer produced (scrape names, label format, family
// order, %g float formatting), with later additions append-only in family
// order (insta_admission_rejects_total). The first scrape is fully
// deterministic because a request is only counted after its handler returns.
func TestMetricsByteCompat(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{})
	srv := httptest.NewServer(server.New(mgr, "des").Handler())
	defer srv.Close()

	_, body := getBody(t, srv.URL+"/metrics")
	want := "# TYPE insta_requests_total counter\n" +
		emptyHistExposition("insta_request_seconds") +
		emptyHistExposition("insta_eco_seconds") +
		"# TYPE insta_admission_rejects_total counter\n" +
		"insta_admission_rejects_total 0\n" +
		"# TYPE insta_inflight gauge\n" +
		"insta_inflight 0\n" +
		"# TYPE insta_sessions gauge\n" +
		"insta_sessions_live 0\n" +
		"insta_sessions_created_total 0\n" +
		"insta_sessions_rejected_total 0\n" +
		"insta_sessions_evicted_total 0\n" +
		"insta_commits_total 0\n" +
		"insta_rollbacks_total 0\n" +
		"insta_eco_batches_total 0\n" +
		"insta_base_epoch 0\n" +
		fmt.Sprintf("insta_base_wns_ps %g\n", mgr.BaseWNS()) +
		fmt.Sprintf("insta_base_tns_ps %g\n", mgr.BaseTNS()) +
		"# TYPE insta_topo gauge\n" +
		"insta_topo_edits_total 0\n" +
		"insta_topo_buffers_inserted_total 0\n" +
		"insta_topo_buffers_removed_total 0\n" +
		"insta_topo_commits_total 0\n" +
		"insta_topo_conflicts_total 0\n" +
		"insta_base_topo_gen 0\n" +
		emptyHistExpositionBounds("insta_topo_relevel_levels",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	if body != want {
		t.Fatalf("fresh /metrics exposition drifted from the pre-obs bytes:\ngot:\n%s\nwant:\n%s", body, want)
	}

	// After traffic, the request counters render with the route/code label
	// format and sorted series.
	if _, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	_, body = getBody(t, srv.URL+"/metrics")
	for _, want := range []string{
		"insta_requests_total{route=\"healthz\",code=\"200\"} 1\n",
		"insta_requests_total{route=\"metrics\",code=\"200\"} 1\n",
		"insta_request_seconds_count 2\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("post-traffic /metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHealthzLatencyQuantiles checks the interpolated-quantile surface: after
// at least one observed request, /healthz reports ordered p50/p95/p99.
func TestHealthzLatencyQuantiles(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{})
	srv := httptest.NewServer(server.New(mgr, "des").Handler())
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	_, body := getBody(t, srv.URL+"/healthz")
	var h struct {
		Latency map[string]float64 `json:"latency_s"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Latency == nil {
		t.Fatal("healthz missing latency_s after observed requests")
	}
	p50, p95, p99 := h.Latency["p50"], h.Latency["p95"], h.Latency["p99"]
	if p50 <= 0 || p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles not ordered: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
}

// TestDebugTraceAndPprof exercises the opt-in debug surface: /debug/pprof/ is
// mounted and /debug/trace?dur= captures a windowed Chrome trace containing
// the engine spans recorded while the window was open, then restores the
// tracer's disabled state.
func TestDebugTraceAndPprof(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{})
	tr := obs.NewTracer()
	tr.Disable() // the trace window enables it on demand
	mgr.Engine().SetTracer(tr)
	s := server.New(mgr, "des")
	s.EnableDebug(tr)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if code, _ := getBody(t, srv.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: status %d", code)
	}

	type result struct {
		code int
		body string
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/debug/trace?dur=500ms")
		if err != nil {
			ch <- result{}
			return
		}
		defer resp.Body.Close()
		buf, _ := io.ReadAll(resp.Body)
		ch <- result{resp.StatusCode, string(buf)}
	}()
	// Wait for the capture window to open, then generate engine spans inside
	// it.
	deadline := time.Now().Add(5 * time.Second)
	for !tr.Enabled() {
		if time.Now().After(deadline) {
			t.Fatal("trace window never enabled the tracer")
		}
		time.Sleep(time.Millisecond)
	}
	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.ApplyDeltas(arcDeltas(mgr.Engine(), 0, 97, 1.05)); err != nil {
		t.Fatal(err)
	}

	res := <-ch
	if res.code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", res.code)
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(res.body), &f); err != nil {
		t.Fatalf("/debug/trace body is not Chrome trace JSON: %v\n%s", err, res.body)
	}
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		names[ev.Name] = true
	}
	if !names[core.KernelOverlay] {
		t.Fatalf("trace window missed the %q span; got names %v", core.KernelOverlay, names)
	}
	if tr.Enabled() {
		t.Fatal("trace window left the tracer enabled")
	}
}

// TestCommitManifestWritten checks the serving manifest satellite: with
// Options.ManifestDir set, every session commit writes one JSON manifest
// carrying the before/after figures and the session id.
func TestCommitManifestWritten(t *testing.T) {
	dir := t.TempDir()
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{ManifestDir: dir, Design: "des"})
	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.ApplyDeltas(arcDeltas(mgr.Engine(), 0, 97, 1.10)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "insta-served-commit-des-*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one commit manifest, got %v (err %v)", matches, err)
	}
	buf, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if m.Tool != "insta-served-commit" || m.Design != "des" {
		t.Fatalf("manifest identity wrong: %+v", m)
	}
	if m.Extra["session"] != sess.ID {
		t.Fatalf("manifest session = %v, want %s", m.Extra["session"], sess.ID)
	}
	if m.Pins == 0 || m.Workers == 0 {
		t.Fatalf("manifest shape not filled: %+v", m)
	}
}
