package server

import (
	"context"
	"log/slog"
	"net/http"
)

// Drain is the daemon's graceful-shutdown path, shared by cmd/insta-served
// and the fleet's rolling snapshot-swap: stop accepting new connections,
// finish every in-flight request within ctx's budget, persist the committed
// base through the snapshot cache when one is configured (so ECOs committed
// this run survive into the next boot), and release the live sessions.
//
// The returned error is http.Server.Shutdown's: nil when every in-flight
// request completed inside the budget, ctx's error when the budget ran out
// first. The snapshot save and session release run either way — a drain that
// times out must still not leak state.
func Drain(ctx context.Context, httpSrv *http.Server, mgr *Manager, log *slog.Logger) error {
	if log == nil {
		log = slog.Default()
	}
	err := httpSrv.Shutdown(ctx)
	if err != nil {
		log.Warn("drain incomplete", "err", err)
	}
	// Persist the committed base so a warm restart serves the ECO'd state.
	// Best-effort: a server without a cache (or without a boot key) skips it.
	if mgr.Snapshots() != nil && mgr.Boot() != nil && mgr.Boot().SnapshotKey != "" {
		if path, size, key, serr := mgr.SaveSnapshot(); serr != nil {
			log.Warn("drain snapshot save failed", "err", serr)
		} else {
			log.Info("drain snapshot saved", "path", path, "bytes", size, "key", shorten(key))
		}
	}
	mgr.CloseAll()
	return err
}

// shorten trims a content-address key for log lines.
func shorten(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
