package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"insta/internal/obs"
)

// Info describes the served design for /healthz.
type Info struct {
	Design    string   `json:"design"`
	Pins      int      `json:"pins"`
	Arcs      int      `json:"arcs"`
	Endpoints int      `json:"endpoints"`
	Levels    int      `json:"levels"`
	TopK      int      `json:"top_k"`
	Workers   int      `json:"workers"`
	Corners   []string `json:"corners,omitempty"` // multi-corner servers only
}

// Server is the HTTP front end over a Manager.
type Server struct {
	mgr   *Manager
	info  Info
	met   *metrics
	mux   *http.ServeMux
	start time.Time
	log   *slog.Logger

	// Request observability, all optional and nil-tolerant on the hot path:
	// tr opens a "serve-<route>" span per work request (joined to the
	// caller's trace via the Traceparent header), fr records every work
	// request into the flight-recorder ring, slo feeds the burn-rate
	// tracker. Wire via EnableTracing/EnableFlightRecorder/EnableSLO before
	// serving.
	tr  *obs.Tracer
	fr  *obs.FlightRecorder
	slo *obs.SLOTracker
}

// New builds the HTTP layer. The design name is the only field the manager
// cannot derive itself; everything else in Info is filled from the engine.
func New(mgr *Manager, design string) *Server {
	e := mgr.Engine()
	s := &Server{
		mgr: mgr,
		info: Info{
			Design:    design,
			Pins:      e.NumPins(),
			Arcs:      e.NumArcs(),
			Endpoints: len(e.Endpoints()),
			Levels:    e.NumLevels(),
			TopK:      e.TopK(),
			Workers:   e.Pool().Workers(),
		},
		start: time.Now(),
		log:   slog.Default(),
	}
	s.met = newMetrics(mgr)
	if be := mgr.Batch(); be != nil {
		for _, scn := range be.Scenarios() {
			s.info.Corners = append(s.info.Corners, scn.Name)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	mux.HandleFunc("GET /slacks", s.route("slacks", s.handleSlacks))
	mux.HandleFunc("GET /gradients", s.route("gradients", s.handleGradients))
	mux.HandleFunc("POST /session", s.route("session-create", s.handleCreate))
	mux.HandleFunc("GET /session/{id}", s.route("session-get", s.withSession(s.handleGet)))
	mux.HandleFunc("GET /session/{id}/slacks", s.route("session-slacks", s.withSession(s.handleSessionSlacks)))
	mux.HandleFunc("DELETE /session/{id}", s.route("session-delete", s.withSession(s.handleDelete)))
	mux.HandleFunc("POST /session/{id}/eco", s.route("eco", s.withSession(s.handleECO)))
	mux.HandleFunc("POST /session/{id}/topo", s.route("topo", s.withSession(s.handleTopo)))
	mux.HandleFunc("POST /session/{id}/commit", s.route("commit", s.withSession(s.handleCommit)))
	mux.HandleFunc("POST /session/{id}/rollback", s.route("rollback", s.withSession(s.handleRollback)))
	mux.HandleFunc("POST /admin/snapshot", s.route("admin-snapshot", s.handleSnapshot))
	s.mux = mux
	return s
}

// Manager returns the session manager the server fronts.
func (s *Server) Manager() *Manager { return s.mgr }

// Handler returns the root handler to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// SetLogger replaces the request logger (slog.Default() until then).
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// EnableTracing attaches the request span tracer: every work request gets a
// "serve-<route>" root span joined to the caller's trace when a Traceparent
// header arrives (the distributed-tracing hook the fleet router drives), and
// handlers find the span in the request context for sub-spans. A disabled
// tracer costs one branch per request; pass the same tracer to EnableDebug
// so /debug/trace?dur= windows capture request spans too.
func (s *Server) EnableTracing(tr *obs.Tracer) { s.tr = tr }

// EnableFlightRecorder attaches the always-on request ring: every completed
// work request is recorded (trace id, route, status, latency, epoch/topoGen),
// and anomalies pin their span trees. Dumped by GET /debug/flightrecorder
// (mounted by EnableDebug).
func (s *Server) EnableFlightRecorder(fr *obs.FlightRecorder) { s.fr = fr }

// FlightRecorder returns the attached recorder, or nil.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.fr }

// EnableSLO attaches the burn-rate tracker, feeds it every work request, and
// exports its gauges (insta_slo_burn_rate_<window>, objective, budget) on
// /metrics. /healthz grows an "slo" section. Call once, before serving.
func (s *Server) EnableSLO(t *obs.SLOTracker) {
	s.slo = t
	t.RegisterMetrics(s.met.reg, "insta")
}

// SLO returns the attached tracker, or nil.
func (s *Server) SLO() *obs.SLOTracker { return s.slo }

// EnableDebug mounts the profiling surface: the net/http/pprof handlers under
// /debug/pprof/ and, when tr is non-nil, GET /debug/trace?dur=SECONDS — a
// windowed capture that enables the tracer for the requested duration
// (default 1s, capped at 60s) and streams the spans recorded in that window
// as Chrome trace_event JSON. Call before serving; the debug surface is
// opt-in so embedded/test servers don't expose it by accident.
func (s *Server) EnableDebug(tr *obs.Tracer) {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	// Flight-recorder dump: the always-on request ring plus pinned
	// anomalies. 501 when no recorder is attached, so the route shape is
	// stable across configurations.
	s.mux.HandleFunc("GET /debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		if s.fr == nil {
			writeErr(w, http.StatusNotImplemented, errors.New("server: no flight recorder attached"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = s.fr.WriteJSON(w)
	})
	if tr == nil {
		return
	}
	s.mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		dur := time.Second
		if v := r.URL.Query().Get("dur"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				// Bare numbers are seconds, the curl-friendly spelling.
				if n := intQuery(r, "dur", 0); n > 0 {
					d, err = time.Duration(n)*time.Second, nil
				}
			}
			if err != nil || d <= 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad dur %q", v))
				return
			}
			dur = d
		}
		if dur > time.Minute {
			dur = time.Minute
		}
		mark := tr.Mark()
		wasEnabled := tr.Enabled()
		tr.Enable()
		select {
		case <-time.After(dur):
		case <-r.Context().Done():
		}
		if !wasEnabled {
			tr.Disable()
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", "attachment; filename=insta-trace.json")
		_ = tr.WriteChromeTraceSince(w, mark)
	})
}

// statusWriter captures the response code for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// route wraps a handler with latency/count instrumentation under a stable
// route label (patterns with wildcards would explode the label space),
// request tracing + flight-recorder + SLO bookkeeping when enabled, and
// structured request logging: successes at Debug so production log volume is
// opt-in via the level, error statuses at Warn. The span name is precomputed
// so the disabled-observability path allocates nothing beyond the baseline.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	work := name != "healthz" && name != "metrics"
	spanName := "serve-" + name
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		var sc obs.SpanContext
		var sp *obs.Span
		if work {
			s.met.inflight.Inc()
			if s.tr != nil || s.fr != nil {
				sc, _ = obs.ParseTraceparent(r.Header.Get("Traceparent"))
				sp = s.tr.StartRemote(spanName, sc)
				if sp != nil {
					sc = sp.Context()
					r = r.WithContext(obs.WithSpan(r.Context(), sp))
				} else if sc.Trace.IsZero() && s.fr != nil {
					sc.Trace = obs.NewTraceID()
				}
				if tp := obs.Traceparent(sc); tp != "" {
					sw.Header().Set("Traceparent", tp)
				}
			}
		}
		t0 := time.Now()
		h(sw, r)
		d := time.Since(t0)
		if work {
			s.met.inflight.Dec()
			sp.End()
			now := t0.Add(d)
			if s.fr != nil {
				s.fr.Record(obs.ReqRecord{
					Trace:   sc.Trace,
					Route:   name,
					Replica: -1,
					Status:  int32(sw.code),
					ServeNs: int64(d),
					TotalNs: int64(d),
					Epoch:   s.mgr.EpochFast(),
					TopoGen: s.mgr.TopoGenFast(),
					Unix:    now.UnixNano(),
				})
			}
			s.slo.Record(d, sw.code >= 500, now)
		}
		s.met.observe(name, sw.code, d)
		level := slog.LevelDebug
		if sw.code >= 400 {
			level = slog.LevelWarn
		}
		s.log.LogAttrs(r.Context(), level, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", name),
			slog.Int("status", sw.code),
			slog.Duration("duration", d),
		)
	}
}

// withSession resolves {id} or answers 404.
func (s *Server) withSession(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess := s.mgr.Get(r.PathValue("id"))
		if sess == nil {
			writeErr(w, http.StatusNotFound, errors.New("server: no such session"))
			return
		}
		h(w, r, sess)
	}
}

// writeJSON emits v as compact JSON through a pooled encoder: once a
// buffer in the pool has grown to the steady-state response size, the
// serialization itself costs no per-request allocations (see jsonenc.go).
// On an encoding error the status line is still sent with an empty body,
// matching the old json.Encoder behavior whose error was discarded after
// WriteHeader.
func writeJSON(w http.ResponseWriter, code int, v any) {
	e := encPool.Get().(*jsonEnc)
	b, err := e.appendValue(e.buf[:0], v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err == nil {
		b = append(b, '\n')
		_, _ = w.Write(b)
	}
	e.buf = b[:0]
	encPool.Put(e)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errCode maps session-layer errors to HTTP statuses.
func errCode(err error) int {
	switch {
	case errors.Is(err, ErrTooManySessions):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, ErrNoRefEngine), errors.Is(err, ErrNoCorners), errors.Is(err, ErrNoSnapshots):
		return http.StatusNotImplemented
	case errors.Is(err, ErrUnknownScenario):
		return http.StatusNotFound
	case errors.Is(err, ErrStructuralConflict), errors.Is(err, ErrPendingAnnotations):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// Inflight reports how many work requests (anything but the /healthz and
// /metrics probes) are currently inside a handler, read from the
// insta_inflight gauge.
func (s *Server) Inflight() int64 { return int64(s.met.inflight.Value()) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := s.mgr.NumSessions()
	max := s.mgr.MaxSessions()
	resp := map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
		"design":   s.info,
		"sessions": live,
		"epoch":    s.mgr.Epoch(),
		// The live-load section a fleet router keys admission and hedging
		// decisions off. Append-only: existing fields above never change shape.
		"load": map[string]any{
			"live_sessions": live,
			"max_sessions":  max,
			"headroom":      max - live,
			"inflight":      int(s.Inflight()),
		},
	}
	if bi := s.mgr.Boot(); bi != nil {
		resp["boot"] = bi
	}
	if s.slo != nil {
		resp["slo"] = s.slo.Snapshot(time.Now())
	}
	if s.fr != nil {
		resp["flight_recorder"] = map[string]any{
			"size":            s.fr.Size(),
			"total":           s.fr.Total(),
			"pin_threshold_s": s.fr.PinThreshold().Seconds(),
		}
	}
	if s.met.latency.Count() > 0 {
		resp["latency_s"] = map[string]float64{
			"p50": s.met.latency.Quantile(0.50),
			"p95": s.met.latency.Quantile(0.95),
			"p99": s.met.latency.Quantile(0.99),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w)
}

// slackBufPool recycles the per-request endpoint slack buffers of the two
// slack endpoints, so the steady-state read path reuses one full-design
// float64 slice instead of allocating it per request.
var slackBufPool = sync.Pool{New: func() any { return new([]float64) }}

// handleSlacks reports the committed base timing; ?worst=N adds the N worst
// endpoints with their pins, ?scenario=<name|merged> switches the slack set
// to one corner of the batched engine (multi-corner servers only).
func (s *Server) handleSlacks(w http.ResponseWriter, r *http.Request) {
	bufp := slackBufPool.Get().(*[]float64)
	defer func() { slackBufPool.Put(bufp) }()
	slacks := s.mgr.BaseSlacksInto((*bufp)[:0])
	*bufp = slacks[:0]
	resp := map[string]any{
		"wns":       s.mgr.BaseWNS(),
		"tns":       s.mgr.BaseTNS(),
		"endpoints": len(slacks),
		"epoch":     s.mgr.Epoch(),
	}
	if scn := r.URL.Query().Get("scenario"); scn != "" {
		var err error
		if slacks, err = s.mgr.BaseScenarioSlacksInto(scn, slacks[:0]); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
		*bufp = slacks[:0]
		wns, tns := 0.0, 0.0
		for _, sl := range slacks {
			if sl < 0 {
				tns += sl
				if sl < wns {
					wns = sl
				}
			}
		}
		resp["scenario"], resp["wns"], resp["tns"] = scn, wns, tns
	}
	if corners := s.mgr.Corners(); corners != nil {
		resp["corners"] = corners
	}
	viol := 0
	for _, sl := range slacks {
		if sl < 0 {
			viol++
		}
	}
	resp["violations"] = viol
	if n := intQuery(r, "worst", 0); n > 0 {
		idx := make([]int, len(slacks))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return slacks[idx[a]] < slacks[idx[b]] })
		if n > len(idx) {
			n = len(idx)
		}
		worst := make([]EndpointSlack, 0, n)
		ref := s.mgr.Ref()
		eps := s.mgr.Engine().Endpoints()
		for _, i := range idx[:n] {
			es := EndpointSlack{Endpoint: i, Slack: jsonSlack(slacks[i]), Base: jsonSlack(slacks[i])}
			if ref != nil {
				es.Pin = ref.D.Pins[eps[i]].Name
			}
			worst = append(worst, es)
		}
		resp["worst"] = worst
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGradients(w http.ResponseWriter, r *http.Request) {
	top := intQuery(r, "top", 32)
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":  s.mgr.Epoch(),
		"stages": s.mgr.Gradients(top),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Create()
	if err != nil {
		// A full admission cap is load, not breakage: answer 503 with a
		// Retry-After hint so pool clients back off and retry instead of
		// treating the replica as broken, and count it separately.
		if errors.Is(err, ErrTooManySessions) {
			s.met.admissionRejects.Inc()
			w.Header().Set("Retry-After", "1")
		}
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": sess.ID, "epoch": s.mgr.Epoch()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, sess *Session) {
	res, err := sess.Result()
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": sess.ID, "ecos": sess.ECOCount(), "view": res})
}

// handleSessionSlacks reports the session's full slack view. Default is the
// nominal engine; ?scenario=<name|merged> selects a corner of the batched
// view, priced through the session's uncommitted deltas.
func (s *Server) handleSessionSlacks(w http.ResponseWriter, r *http.Request, sess *Session) {
	scn := r.URL.Query().Get("scenario")
	bufp := slackBufPool.Get().(*[]float64)
	defer func() { slackBufPool.Put(bufp) }()
	var (
		slacks []float64
		err    error
	)
	if scn == "" {
		slacks, err = sess.SlacksInto((*bufp)[:0])
	} else {
		slacks, err = sess.ScenarioSlacksInto(scn, (*bufp)[:0])
	}
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	*bufp = slacks[:0]
	wns, tns, viol := 0.0, 0.0, 0
	for i, sl := range slacks {
		slacks[i] = jsonSlack(sl)
		if sl < 0 {
			viol++
			tns += sl
			if sl < wns {
				wns = sl
			}
		}
	}
	resp := map[string]any{
		"id":         sess.ID,
		"wns":        wns,
		"tns":        tns,
		"violations": viol,
		"slacks":     slacks,
	}
	if scn != "" {
		resp["scenario"] = scn
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot persists the committed base state to the snapshot cache so
// the next daemon start warm-boots into it. 501 when the daemon runs without
// -snapshot-dir.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	path, size, key, err := s.mgr.SaveSnapshot()
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	s.log.Info("snapshot saved", "path", path, "bytes", size, "epoch", s.mgr.Epoch())
	writeJSON(w, http.StatusOK, map[string]any{
		"path":  path,
		"bytes": size,
		"key":   key,
		"epoch": s.mgr.Epoch(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, sess *Session) {
	sess.Close()
	writeJSON(w, http.StatusOK, map[string]string{"closed": sess.ID})
}

func (s *Server) handleECO(w http.ResponseWriter, r *http.Request, sess *Session) {
	var req ECORequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Resizes) == 0 && len(req.Arcs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("server: empty ECO batch"))
		return
	}
	res, err := sess.ApplyECO(req)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleTopo applies one structural edit batch to the session (buffer
// insert/remove, repower, move, raw annotate). 409 when the session holds
// uncommitted annotation ECOs or the base moved under its structural edits.
func (s *Server) handleTopo(w http.ResponseWriter, r *http.Request, sess *Session) {
	var req TopoRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("server: empty topo batch"))
		return
	}
	res, err := sess.ApplyTopo(req)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request, sess *Session) {
	res, err := sess.Commit()
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request, sess *Session) {
	if err := sess.Rollback(); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rolled_back": sess.ID, "epoch": s.mgr.Epoch()})
}

func intQuery(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	var n int
	for _, c := range v {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	return n
}
