package server

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"insta/internal/obs"
)

// latBounds are the latency histogram bucket upper bounds in seconds,
// log-spaced from 100µs to ~13s — session ECO evals land in the low
// milliseconds on block-size designs, full commits a decade above.
var latBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 13,
}

// metrics is the serving telemetry, built on the shared obs registry: request
// counters and latency histograms are stored series, while the session
// lifecycle gauges and the engine's kernel telemetry render live through
// collectors. Family registration order fixes the /metrics exposition order,
// which server_test.go pins byte-for-byte against the pre-obs output.
type metrics struct {
	reg              *obs.Registry
	requests         *obs.CounterVec
	latency          *obs.Histogram // all routes
	ecoLat           *obs.Histogram // POST /session/{id}/eco only
	admissionRejects *obs.Counter   // session creates refused at the cap
	inflight         *obs.Gauge     // work requests currently inside a handler
}

func newMetrics(m *Manager) *metrics {
	reg := obs.NewRegistry()
	mt := &metrics{
		reg:              reg,
		requests:         reg.CounterVec("insta_requests_total", "route", "code"),
		latency:          reg.Histogram("insta_request_seconds", latBounds),
		ecoLat:           reg.Histogram("insta_eco_seconds", latBounds),
		admissionRejects: reg.Counter("insta_admission_rejects_total"),
		inflight:         reg.Gauge("insta_inflight"),
	}
	reg.Collector("insta_sessions", func(w io.Writer) {
		c := m.Counters()
		fmt.Fprintf(w, "# TYPE insta_sessions gauge\n")
		fmt.Fprintf(w, "insta_sessions_live %d\n", m.NumSessions())
		fmt.Fprintf(w, "insta_sessions_created_total %d\n", c.Created)
		fmt.Fprintf(w, "insta_sessions_rejected_total %d\n", c.Rejected)
		fmt.Fprintf(w, "insta_sessions_evicted_total %d\n", c.Evicted)
		fmt.Fprintf(w, "insta_commits_total %d\n", c.Commits)
		fmt.Fprintf(w, "insta_rollbacks_total %d\n", c.Rollbacks)
		fmt.Fprintf(w, "insta_eco_batches_total %d\n", c.ECOs)
		fmt.Fprintf(w, "insta_base_epoch %d\n", m.Epoch())
		fmt.Fprintf(w, "insta_base_wns_ps %g\n", m.BaseWNS())
		fmt.Fprintf(w, "insta_base_tns_ps %g\n", m.BaseTNS())
	})
	reg.Collector("insta_kernel", func(w io.Writer) {
		stats := m.Engine().Pool().Stats()
		if stats == nil {
			return
		}
		fmt.Fprintf(w, "# TYPE insta_kernel gauge\n")
		for _, p := range stats.Snapshot() {
			fmt.Fprintf(w, "insta_kernel_launches_total{kernel=%q} %d\n", p.Kernel, p.Launches)
			fmt.Fprintf(w, "insta_kernel_spans_total{kernel=%q} %d\n", p.Kernel, p.Spans)
			fmt.Fprintf(w, "insta_kernel_wall_seconds_total{kernel=%q} %g\n", p.Kernel, p.Wall.Seconds())
		}
	})
	reg.Collector("insta_topo", func(w io.Writer) {
		t := m.TopoCountersSnapshot()
		fmt.Fprintf(w, "# TYPE insta_topo gauge\n")
		fmt.Fprintf(w, "insta_topo_edits_total %d\n", t.Edits)
		fmt.Fprintf(w, "insta_topo_buffers_inserted_total %d\n", t.Inserted)
		fmt.Fprintf(w, "insta_topo_buffers_removed_total %d\n", t.Removed)
		fmt.Fprintf(w, "insta_topo_commits_total %d\n", t.Commits)
		fmt.Fprintf(w, "insta_topo_conflicts_total %d\n", t.Conflicts)
		fmt.Fprintf(w, "insta_base_topo_gen %d\n", m.TopoGen())
		m.RelevelHist().WritePrometheus(w, "insta_topo_relevel_levels")
	})
	// Snapshot cache counters render last so the exposition order of the
	// families above stays byte-stable for servers without a cache.
	if c := m.opt.Snapshots; c != nil {
		c.Register(reg)
	}
	return mt
}

func (mt *metrics) observe(route string, code int, d time.Duration) {
	sec := d.Seconds()
	mt.requests.With(route, strconv.Itoa(code)).Inc()
	mt.latency.Observe(sec)
	if route == "eco" {
		mt.ecoLat.Observe(sec)
	}
}

// write renders the full exposition: request counts by route and status, the
// latency histograms, session lifecycle counters, and the engine's kernel
// telemetry when kernel stats are enabled.
func (mt *metrics) write(w io.Writer) {
	mt.reg.WritePrometheus(w)
}
