package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latBounds are the latency histogram bucket upper bounds in seconds,
// log-spaced from 100µs to ~13s — session ECO evals land in the low
// milliseconds on block-size designs, full commits a decade above.
var latBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 13,
}

// histogram is a fixed-bound latency histogram. Cheap enough to guard with a
// mutex: one observation per HTTP request.
type histogram struct {
	mu     sync.Mutex
	counts []int64 // len(latBounds)+1; last is the overflow bucket
	sum    float64
	n      int64
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latBounds, seconds)
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make([]int64, len(latBounds)+1)
	}
	h.counts[i]++
	h.sum += seconds
	h.n++
	h.mu.Unlock()
}

// quantile returns an upper-bound estimate of the q-quantile (the bucket
// boundary the q-th observation falls under).
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			if i < len(latBounds) {
				return latBounds[i]
			}
			return latBounds[len(latBounds)-1]
		}
	}
	return latBounds[len(latBounds)-1]
}

// reqKey identifies one request-counter series.
type reqKey struct {
	route string
	code  int
}

// metrics aggregates the serving telemetry /metrics renders.
type metrics struct {
	mu       sync.Mutex
	requests map[reqKey]int64

	latency histogram // all routes
	ecoLat  histogram // POST /session/{id}/eco only
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[reqKey]int64)}
}

func (mt *metrics) observe(route string, code int, d time.Duration) {
	sec := d.Seconds()
	mt.mu.Lock()
	mt.requests[reqKey{route, code}]++
	mt.mu.Unlock()
	mt.latency.observe(sec)
	if route == "eco" {
		mt.ecoLat.observe(sec)
	}
}

// write renders the telemetry in the Prometheus text exposition format:
// request counts by route and status, the latency histogram, session
// lifecycle counters, and the engine's kernel telemetry (spans, launches and
// wall time per kernel tag) when kernel stats are enabled.
func (mt *metrics) write(w io.Writer, m *Manager) {
	mt.mu.Lock()
	keys := make([]reqKey, 0, len(mt.requests))
	for k := range mt.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# TYPE insta_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "insta_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, mt.requests[k])
	}
	mt.mu.Unlock()

	writeHist := func(name string, h *histogram) {
		h.mu.Lock()
		defer h.mu.Unlock()
		counts := h.counts
		if counts == nil {
			counts = make([]int64, len(latBounds)+1)
		}
		fmt.Fprintf(w, "# TYPE %s_seconds histogram\n", name)
		var cum int64
		for i, b := range latBounds {
			cum += counts[i]
			fmt.Fprintf(w, "%s_seconds_bucket{le=\"%g\"} %d\n", name, b, cum)
		}
		cum += counts[len(latBounds)]
		fmt.Fprintf(w, "%s_seconds_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_seconds_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_seconds_count %d\n", name, h.n)
	}
	writeHist("insta_request", &mt.latency)
	writeHist("insta_eco", &mt.ecoLat)

	c := m.Counters()
	fmt.Fprintf(w, "# TYPE insta_sessions gauge\n")
	fmt.Fprintf(w, "insta_sessions_live %d\n", m.NumSessions())
	fmt.Fprintf(w, "insta_sessions_created_total %d\n", c.Created)
	fmt.Fprintf(w, "insta_sessions_rejected_total %d\n", c.Rejected)
	fmt.Fprintf(w, "insta_sessions_evicted_total %d\n", c.Evicted)
	fmt.Fprintf(w, "insta_commits_total %d\n", c.Commits)
	fmt.Fprintf(w, "insta_rollbacks_total %d\n", c.Rollbacks)
	fmt.Fprintf(w, "insta_eco_batches_total %d\n", c.ECOs)
	fmt.Fprintf(w, "insta_base_epoch %d\n", m.Epoch())
	fmt.Fprintf(w, "insta_base_wns_ps %g\n", m.BaseWNS())
	fmt.Fprintf(w, "insta_base_tns_ps %g\n", m.BaseTNS())

	if stats := m.Engine().Pool().Stats(); stats != nil {
		fmt.Fprintf(w, "# TYPE insta_kernel gauge\n")
		for _, p := range stats.Snapshot() {
			fmt.Fprintf(w, "insta_kernel_launches_total{kernel=%q} %d\n", p.Kernel, p.Launches)
			fmt.Fprintf(w, "insta_kernel_spans_total{kernel=%q} %d\n", p.Kernel, p.Spans)
			fmt.Fprintf(w, "insta_kernel_wall_seconds_total{kernel=%q} %g\n", p.Kernel, p.Wall.Seconds())
		}
	}
}
