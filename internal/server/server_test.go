package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/refsta"
	"insta/internal/server"
)

// testSetup caches one built design per preset across tests in this package —
// generation plus reference signoff dominates test wall time.
var (
	setupMu    sync.Mutex
	setupCache = map[string]*exp.Setup{}
)

func buildSetup(t testing.TB, preset string) *exp.Setup {
	t.Helper()
	setupMu.Lock()
	defer setupMu.Unlock()
	if s, ok := setupCache[preset]; ok {
		return s
	}
	spec, err := bench.BlockSpec(preset)
	if err != nil {
		if spec, err = bench.IWLSSpec(preset); err != nil {
			t.Fatalf("unknown preset %q", preset)
		}
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	setupCache[preset] = s
	return s
}

// newTestManager builds a manager over a fresh engine on the cached design.
// The returned setup's reference engine is shared across tests of the same
// preset, so tests that commit resizes should use distinct presets or accept
// the netlist drift (timing state is re-derived per engine regardless).
func newTestManager(t testing.TB, preset string, topK, workers int, mopt server.Options) (*server.Manager, *exp.Setup) {
	t.Helper()
	s := buildSetup(t, preset)
	e, err := core.NewEngine(s.Tab, core.Options{TopK: topK, Workers: workers, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return server.NewManager(e, s.Ref, mopt), s
}

// resizeECOs converts a deterministic changelist into resize-form ECO
// requests (cell/lib names, the HTTP wire format).
func resizeECOs(s *exp.Setup, seed int64, n int) []server.ECORequest {
	cl := bench.Changelist(s.B, seed, n)
	out := make([]server.ECORequest, 0, len(cl))
	for _, r := range cl {
		out = append(out, server.ECORequest{Resizes: []server.ResizeReq{{
			Cell: s.B.D.Cells[r.Cell].Name,
			Lib:  s.B.Lib.Cell(r.NewLib).Name,
		}}})
	}
	return out
}

// arcDeltas returns a deterministic scattered arc perturbation restricted to
// arcs ≡ start (mod stride), so distinct starts give disjoint arc sets whose
// fan-out cones still overlap heavily.
func arcDeltas(e *core.Engine, start, stride int32, meanScale float64) []refsta.ArcDelta {
	var out []refsta.ArcDelta
	for arc := start; arc < int32(e.NumArcs()); arc += stride {
		var dl refsta.ArcDelta
		dl.ArcID = arc
		for rf := 0; rf < 2; rf++ {
			d := e.ArcDelay(arc, rf)
			d.Mean *= meanScale
			dl.Delay[rf] = d
		}
		out = append(out, dl)
	}
	return out
}

func applyAll(e *core.Engine, deltas []refsta.ArcDelta) {
	for _, dl := range deltas {
		e.SetArcDelay(dl.ArcID, 0, dl.Delay[0])
		e.SetArcDelay(dl.ArcID, 1, dl.Delay[1])
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := client.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil && err != io.EOF {
		t.Fatalf("%s: decode: %v", url, err)
	}
	return resp.StatusCode, m
}

// TestServeSessionLifecycle drives the full HTTP surface: create, what-if
// eval, commit, rollback, delete, the read-only endpoints, and the error
// statuses.
func TestServeSessionLifecycle(t *testing.T) {
	mgr, s := newTestManager(t, "des", 8, 2, server.Options{})
	srv := httptest.NewServer(server.New(mgr, "des").Handler())
	defer srv.Close()
	c := srv.Client()

	// healthz
	resp, err := c.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	// create
	code, m := postJSON(t, c, srv.URL+"/session", nil)
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var id string
	json.Unmarshal(m["id"], &id)
	if id == "" {
		t.Fatal("create returned no id")
	}

	// what-if eval: a real resize by name
	ecos := resizeECOs(s, 31, 4)
	code, m = postJSON(t, c, srv.URL+"/session/"+id+"/eco", ecos[0])
	if code != 200 {
		t.Fatalf("eco: %d %v", code, m)
	}
	var touched int
	json.Unmarshal(m["touched_arcs"], &touched)
	if touched == 0 {
		t.Fatal("eco touched no arcs")
	}

	// base unchanged until commit
	if got := mgr.Epoch(); got != 0 {
		t.Fatalf("epoch moved before commit: %d", got)
	}

	// commit bumps the epoch
	code, m = postJSON(t, c, srv.URL+"/session/"+id+"/commit", nil)
	if code != 200 {
		t.Fatalf("commit: %d %v", code, m)
	}
	if got := mgr.Epoch(); got != 1 {
		t.Fatalf("epoch after commit = %d, want 1", got)
	}

	// slacks endpoint reflects the committed base
	resp, err = c.Get(srv.URL + "/slacks?worst=3")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("slacks: %v", err)
	}
	var sl struct {
		Endpoints int                    `json:"endpoints"`
		Epoch     uint64                 `json:"epoch"`
		Worst     []server.EndpointSlack `json:"worst"`
	}
	json.NewDecoder(resp.Body).Decode(&sl)
	resp.Body.Close()
	if sl.Endpoints == 0 || sl.Epoch != 1 || len(sl.Worst) != 3 {
		t.Fatalf("slacks payload: %+v", sl)
	}
	if sl.Worst[0].Pin == "" {
		t.Fatal("worst endpoint missing pin name")
	}

	// rollback leaves the session open and empty
	code, m = postJSON(t, c, srv.URL+"/session/"+id+"/eco", ecos[1])
	if code != 200 {
		t.Fatalf("eco2: %d %v", code, m)
	}
	code, _ = postJSON(t, c, srv.URL+"/session/"+id+"/rollback", nil)
	if code != 200 {
		t.Fatalf("rollback: %d", code)
	}
	sess := mgr.Get(id)
	res, err := sess.Result()
	if err != nil || res.TouchedArcs != 0 {
		t.Fatalf("post-rollback view: %+v err=%v", res, err)
	}

	// gradients
	resp, err = c.Get(srv.URL + "/gradients?top=5")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("gradients: %v", err)
	}
	var gr struct {
		Stages []server.StageGrad `json:"stages"`
	}
	json.NewDecoder(resp.Body).Decode(&gr)
	resp.Body.Close()
	if len(gr.Stages) == 0 || gr.Stages[0].Name == "" {
		t.Fatalf("gradients payload: %+v", gr.Stages)
	}

	// error statuses
	code, _ = postJSON(t, c, srv.URL+"/session/nope/eco", ecos[2])
	if code != http.StatusNotFound {
		t.Fatalf("unknown session: %d", code)
	}
	code, _ = postJSON(t, c, srv.URL+"/session/"+id+"/eco", server.ECORequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	code, _ = postJSON(t, c, srv.URL+"/session/"+id+"/eco",
		server.ECORequest{Resizes: []server.ResizeReq{{Cell: "no_such_cell", Lib: "x"}}})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown cell: %d", code)
	}

	// delete, then the id is gone
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/session/"+id, nil)
	resp, err = c.Do(req)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	resp, _ = c.Get(srv.URL + "/session/" + id)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still resolves: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// metrics renders the request counters and kernel section header
	resp, err = c.Get(srv.URL + "/metrics")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"insta_requests_total", "insta_eco_seconds_count", "insta_sessions_live", "insta_commits_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServeECONeverFullPropagates is the ISSUE acceptance criterion on a
// block-2-size preset: session ECO evaluations (and commits) must run only
// cone-limited kernels — the full forward kernel's span count is frozen
// after the one-time initialization.
func TestServeECONeverFullPropagates(t *testing.T) {
	s := buildSetup(t, "block-2")
	e, err := core.NewEngine(s.Tab, core.Options{TopK: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stats := e.EnableKernelStats()
	mgr := server.NewManager(e, s.Ref, server.Options{})
	fwd0 := stats.KernelSpans(core.KernelForward)
	if fwd0 == 0 {
		t.Fatal("init ran no forward spans")
	}

	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, req := range resizeECOs(s, 57, 6) {
		res, err := sess.ApplyECO(req)
		if err != nil {
			t.Fatal(err)
		}
		changed += len(res.Changed)
	}
	if changed == 0 {
		t.Fatal("ECO batches changed no endpoints — vacuous")
	}
	if _, err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := stats.KernelSpans(core.KernelForward); got != fwd0 {
		t.Fatalf("session ECO path ran a full propagate: forward spans %d -> %d", fwd0, got)
	}
	if ov := stats.KernelSpans(core.KernelOverlay); ov == 0 || ov >= fwd0 {
		t.Fatalf("overlay spans %d not cone-limited (one full propagate = %d)", ov, fwd0)
	}
}

// TestServeConcurrentSessionsBitIdentical is the satellite -race stress: 8
// goroutines run disjoint-arc (but overlapping-cone) ECO batches in private
// sessions, verify each preview against a private twin engine while no
// commits are in flight, then commit concurrently in arbitrary order. The
// final committed base must be bit-identical to a fresh full propagate of
// all deltas.
func TestServeConcurrentSessionsBitIdentical(t *testing.T) {
	const n = 8
	mgr, s := newTestManager(t, "block-5", 6, 4, server.Options{})
	e := mgr.Engine()

	deltas := make([][]refsta.ArcDelta, n)
	for g := 0; g < n; g++ {
		deltas[g] = arcDeltas(e, int32(3*g+1), 17*n, 1.0+0.02*float64(g+1))
	}

	var evalWG, commitWG sync.WaitGroup
	errs := make(chan error, n)
	previews := make([]*server.ECOResult, n)
	sessions := make([]*server.Session, n)

	// Phase 1: concurrent evaluation, no commits — every preview must match
	// a twin engine carrying only that session's deltas.
	for g := 0; g < n; g++ {
		evalWG.Add(1)
		go func(g int) {
			defer evalWG.Done()
			sess, err := mgr.Create()
			if err != nil {
				errs <- err
				return
			}
			sessions[g] = sess
			// Split the batch in two to exercise repeated incremental evals.
			half := len(deltas[g]) / 2
			if _, err := sess.ApplyDeltas(deltas[g][:half]); err != nil {
				errs <- err
				return
			}
			res, err := sess.ApplyDeltas(deltas[g][half:])
			if err != nil {
				errs <- err
				return
			}
			previews[g] = res
		}(g)
	}
	evalWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for g := 0; g < n; g++ {
		twin, err := core.NewEngine(s.Tab, core.Options{TopK: 6, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		applyAll(twin, deltas[g])
		want := twin.Run()
		view, err := sessions[g].Slacks()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if view[i] != want[i] {
				twin.Close()
				t.Fatalf("session %d ep %d: preview %v != twin %v", g, i, view[i], want[i])
			}
		}
		if previews[g].TNS != twin.TNS() {
			twin.Close()
			t.Fatalf("session %d: preview TNS %v != twin %v", g, previews[g].TNS, twin.TNS())
		}
		twin.Close()
	}

	// Phase 2: concurrent commits in arbitrary order. Arc sets are disjoint,
	// so the final annotation state is order-independent and must equal
	// sequential application of all batches.
	errs2 := make(chan error, n)
	for g := 0; g < n; g++ {
		commitWG.Add(1)
		go func(g int) {
			defer commitWG.Done()
			if _, err := sessions[g].Commit(); err != nil {
				errs2 <- err
			}
		}(g)
	}
	commitWG.Wait()
	close(errs2)
	for err := range errs2 {
		t.Fatal(err)
	}

	twin, err := core.NewEngine(s.Tab, core.Options{TopK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	for g := 0; g < n; g++ {
		applyAll(twin, deltas[g])
	}
	want := twin.Run()
	got := e.Slacks()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("committed ep %d: %v != sequential %v", i, got[i], want[i])
		}
	}
	if e.WNS() != twin.WNS() || e.TNS() != twin.TNS() {
		t.Fatalf("committed WNS/TNS %v/%v != sequential %v/%v", e.WNS(), e.TNS(), twin.WNS(), twin.TNS())
	}
	if mgr.Epoch() != n {
		t.Fatalf("epoch = %d, want %d", mgr.Epoch(), n)
	}
}

// TestServeRebaseSequentialSemantics pins the deterministic two-session
// interleaving: B evaluates, A commits, B's next evaluation sees A's commit
// (rebase), and B's commit lands sequential application of both.
func TestServeRebaseSequentialSemantics(t *testing.T) {
	mgr, s := newTestManager(t, "des", 6, 2, server.Options{})
	e := mgr.Engine()

	dA := arcDeltas(e, 2, 61, 1.15)
	dB := arcDeltas(e, 5, 67, 0.9)

	a, _ := mgr.Create()
	b, _ := mgr.Create()
	if _, err := b.ApplyDeltas(dB); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyDeltas(dA); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	// B's view is stale; any read rebases it over A's commit.
	resB, err := b.Result()
	if err != nil {
		t.Fatal(err)
	}
	if resB.Epoch != 1 {
		t.Fatalf("B did not rebase: epoch %d", resB.Epoch)
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	twin, err := core.NewEngine(s.Tab, core.Options{TopK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	applyAll(twin, dA)
	applyAll(twin, dB)
	want := twin.Run()
	got := e.Slacks()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ep %d: %v != sequential %v", i, got[i], want[i])
		}
	}
}

// TestServeAdmissionAndTTL covers the overload and eviction paths.
func TestServeAdmissionAndTTL(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 4, 1, server.Options{MaxSessions: 2, TTL: time.Nanosecond})
	s1, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err = mgr.Create(); err != nil {
		t.Fatal(err)
	}
	if _, err = mgr.Create(); err != server.ErrTooManySessions {
		t.Fatalf("over cap: %v", err)
	}

	// HTTP surface: the cap maps to 503.
	srv := httptest.NewServer(server.New(mgr, "des").Handler())
	defer srv.Close()
	code, _ := postJSON(t, srv.Client(), srv.URL+"/session", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create over cap: %d", code)
	}

	// Both sessions are idle beyond the 1ns TTL.
	time.Sleep(time.Millisecond)
	if n := mgr.Sweep(time.Now()); n != 2 {
		t.Fatalf("sweep evicted %d, want 2", n)
	}
	if mgr.NumSessions() != 0 {
		t.Fatalf("sessions after sweep: %d", mgr.NumSessions())
	}
	if err := s1.Rollback(); err != server.ErrSessionClosed {
		t.Fatalf("evicted session usable: %v", err)
	}
	c := mgr.Counters()
	if c.Evicted != 2 || c.Rejected != 2 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestServeLoadSmoke is the ci.sh load check: 100 concurrent ECO requests
// over 10 sessions against a live HTTP server, zero errors.
func TestServeLoadSmoke(t *testing.T) {
	mgr, s := newTestManager(t, "des", 6, 4, server.Options{MaxSessions: 32})
	srv := httptest.NewServer(server.New(mgr, "des").Handler())
	defer srv.Close()
	c := srv.Client()

	const sessions = 10
	const perSession = 10
	reqs := resizeECOs(s, 83, sessions*perSession)

	ids := make([]string, sessions)
	for i := range ids {
		code, m := postJSON(t, c, srv.URL+"/session", nil)
		if code != http.StatusCreated {
			t.Fatalf("create %d: %d", i, code)
		}
		json.Unmarshal(m["id"], &ids[i])
	}

	var wg sync.WaitGroup
	errCount := make(chan string, sessions*perSession)
	for i := 0; i < sessions*perSession; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i%sessions]
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(reqs[i])
			resp, err := c.Post(srv.URL+"/session/"+id+"/eco", "application/json", &buf)
			if err != nil {
				errCount <- err.Error()
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errCount <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	close(errCount)
	for msg := range errCount {
		t.Errorf("eco request failed: %s", msg)
	}
	if t.Failed() {
		t.Fatalf("load smoke saw errors")
	}

	// Every session holds a consistent preview; spot-check one at random.
	id := ids[rand.Intn(sessions)]
	if _, err := mgr.Get(id).Result(); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Counters().ECOs; got != sessions*perSession {
		t.Fatalf("eco batches counted %d, want %d", got, sessions*perSession)
	}
}

// TestServeGradientsMatchDirectBackward pins the /gradients ranking to the
// engine's own backward pass.
func TestServeGradientsMatchDirectBackward(t *testing.T) {
	mgr, s := newTestManager(t, "des", 6, 2, server.Options{})
	got := mgr.Gradients(10)
	if len(got) == 0 {
		t.Fatal("no gradient stages")
	}

	twin, err := core.NewEngine(s.Tab, core.Options{TopK: 6, Workers: 1, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	twin.Run()
	twin.Backward()
	stages := twin.StageGradients()
	if len(stages) == 0 {
		t.Fatal("twin has no stages")
	}
	best := stages[0]
	for _, st := range stages {
		if st.Grad < best.Grad || (st.Grad == best.Grad && st.Cell < best.Cell) {
			best = st
		}
	}
	if got[0].Cell != best.Cell || got[0].Grad != best.Grad {
		t.Fatalf("top gradient (%d, %v) != twin (%d, %v)", got[0].Cell, got[0].Grad, best.Cell, best.Grad)
	}
}
