package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"insta/internal/batch"
	"insta/internal/core"
	"insta/internal/server"
)

// newCornerManager builds a manager serving both the nominal engine and a
// scenario-batched engine over the same extraction.
func newCornerManager(t testing.TB, preset string, topK, workers int) (*server.Manager, *batch.Engine) {
	t.Helper()
	s := buildSetup(t, preset)
	opt := core.Options{TopK: topK, Workers: workers}
	e, err := core.NewEngine(s.Tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	be, err := batch.New(s.Tab, batch.DefaultScenarios(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(be.Close)
	return server.NewManager(e, s.Ref, server.Options{Batch: be}), be
}

// TestServeMultiCornerPreviewMatchesCommit: a session's per-scenario preview
// — priced by one batched cone re-propagation — must be bit-identical to the
// committed base and to an independent batched engine carrying the same
// nominal deltas.
func TestServeMultiCornerPreviewMatchesCommit(t *testing.T) {
	mgr, be := newCornerManager(t, "des", 8, 2)
	s := buildSetup(t, "des")

	deltas := arcDeltas(mgr.Engine(), 3, 41, 1.25)
	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.ApplyDeltas(deltas)
	if err != nil {
		t.Fatal(err)
	}
	S := be.NumScenarios()
	if len(res.Scenarios) != S+1 || res.Scenarios[S].Name != "merged" {
		t.Fatalf("scenario views malformed: %+v", res.Scenarios)
	}

	// Preview slacks per scenario, captured before commit.
	previews := make([][]float64, S)
	for i, scn := range be.Scenarios() {
		if previews[i], err = sess.ScenarioSlacks(scn.Name); err != nil {
			t.Fatal(err)
		}
	}
	prevMerged, err := sess.ScenarioSlacks("merged")
	if err != nil {
		t.Fatal(err)
	}

	// Independent batched twin with the same nominal deltas.
	twin, err := batch.New(s.Tab, batch.DefaultScenarios(), core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	for _, dl := range deltas {
		twin.SetArcDelay(dl.ArcID, 0, dl.Delay[0].Mean, dl.Delay[0].Std)
		twin.SetArcDelay(dl.ArcID, 1, dl.Delay[1].Mean, dl.Delay[1].Std)
	}
	twin.Run()
	for sidx := 0; sidx < S; sidx++ {
		want := twin.Slacks(sidx)
		for i := range want {
			if previews[sidx][i] != want[i] {
				t.Fatalf("scenario %d ep %d: preview %v != twin %v", sidx, i, previews[sidx][i], want[i])
			}
		}
		if res.Scenarios[sidx].WNS != twin.WNS(sidx) || res.Scenarios[sidx].TNS != twin.TNS(sidx) {
			t.Fatalf("scenario %d view WNS/TNS %v/%v != twin %v/%v", sidx,
				res.Scenarios[sidx].WNS, res.Scenarios[sidx].TNS, twin.WNS(sidx), twin.TNS(sidx))
		}
	}
	tm := twin.Merged()
	if res.Scenarios[S].WNS != tm.WNS || res.Scenarios[S].TNS != tm.TNS {
		t.Fatalf("merged view %v/%v != twin %v/%v", res.Scenarios[S].WNS, res.Scenarios[S].TNS, tm.WNS, tm.TNS)
	}

	// Commit: the batched base must land exactly on the preview.
	cres, err := sess.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Scenarios) != S+1 {
		t.Fatalf("commit scenario views malformed: %+v", cres.Scenarios)
	}
	for sidx := 0; sidx < S; sidx++ {
		got := be.Slacks(sidx)
		for i := range got {
			if got[i] != previews[sidx][i] {
				t.Fatalf("scenario %d ep %d: committed %v != preview %v", sidx, i, got[i], previews[sidx][i])
			}
		}
	}
	mergedNow := be.Merged().Slacks
	for i := range mergedNow {
		if mergedNow[i] != prevMerged[i] {
			t.Fatalf("merged ep %d: committed %v != preview %v", i, mergedNow[i], prevMerged[i])
		}
	}
}

// TestServeMultiCornerRebase: after another session commits, a stale
// session's scenario view must rebase to sequential-application semantics.
func TestServeMultiCornerRebase(t *testing.T) {
	mgr, be := newCornerManager(t, "des", 6, 2)
	s := buildSetup(t, "des")
	e := mgr.Engine()

	dA := arcDeltas(e, 2, 73, 1.2)
	dB := arcDeltas(e, 7, 79, 0.85)

	a, _ := mgr.Create()
	b, _ := mgr.Create()
	if _, err := b.ApplyDeltas(dB); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyDeltas(dA); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	// B's next scenario read rebases over A's commit.
	view, err := b.ScenarioSlacks("ss")
	if err != nil {
		t.Fatal(err)
	}

	twin, err := batch.New(s.Tab, batch.DefaultScenarios(), core.Options{TopK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	for _, dl := range dA {
		twin.SetArcDelay(dl.ArcID, 0, dl.Delay[0].Mean, dl.Delay[0].Std)
		twin.SetArcDelay(dl.ArcID, 1, dl.Delay[1].Mean, dl.Delay[1].Std)
	}
	for _, dl := range dB {
		twin.SetArcDelay(dl.ArcID, 0, dl.Delay[0].Mean, dl.Delay[0].Std)
		twin.SetArcDelay(dl.ArcID, 1, dl.Delay[1].Mean, dl.Delay[1].Std)
	}
	twin.Run()
	ss := twin.ScenarioIndex("ss")
	want := twin.Slacks(ss)
	for i := range want {
		if view[i] != want[i] {
			t.Fatalf("rebased ss ep %d: %v != sequential %v", i, view[i], want[i])
		}
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	got := be.Slacks(ss)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("committed ss ep %d: %v != sequential %v", i, got[i], want[i])
		}
	}
}

// TestServeMultiCornerHTTP drives the scenario query surface over HTTP,
// including the single-corner 501 and unknown-scenario 404 paths.
func TestServeMultiCornerHTTP(t *testing.T) {
	mgr, _ := newCornerManager(t, "des", 6, 1)
	srv := httptest.NewServer(server.New(mgr, "des").Handler())
	defer srv.Close()
	c := srv.Client()

	// healthz lists the corners.
	resp, err := c.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v", err)
	}
	var hz struct {
		Design server.Info `json:"design"`
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if len(hz.Design.Corners) != 3 || hz.Design.Corners[0] != "ss" {
		t.Fatalf("healthz corners: %+v", hz.Design.Corners)
	}

	// Base slacks per scenario and merged.
	for _, scn := range []string{"ss", "tt", "ff", "merged"} {
		resp, err := c.Get(srv.URL + "/slacks?scenario=" + scn)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("slacks?scenario=%s: %v %d", scn, err, resp.StatusCode)
		}
		var sl struct {
			Scenario string                `json:"scenario"`
			Corners  []server.ScenarioView `json:"corners"`
		}
		json.NewDecoder(resp.Body).Decode(&sl)
		resp.Body.Close()
		if sl.Scenario != scn || len(sl.Corners) != 4 {
			t.Fatalf("slacks payload for %s: %+v", scn, sl)
		}
	}
	resp, _ = c.Get(srv.URL + "/slacks?scenario=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scenario: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Session scenario slacks.
	code, m := postJSON(t, c, srv.URL+"/session", nil)
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var id string
	json.Unmarshal(m["id"], &id)
	resp, err = c.Get(srv.URL + "/session/" + id + "/slacks?scenario=merged")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("session slacks: %v %d", err, resp.StatusCode)
	}
	var ssl struct {
		Scenario string    `json:"scenario"`
		Slacks   []float64 `json:"slacks"`
	}
	json.NewDecoder(resp.Body).Decode(&ssl)
	resp.Body.Close()
	if ssl.Scenario != "merged" || len(ssl.Slacks) == 0 {
		t.Fatalf("session slacks payload: scenario=%q n=%d", ssl.Scenario, len(ssl.Slacks))
	}

	// A single-corner server answers scenario queries with 501.
	mono, _ := newTestManager(t, "des", 6, 1, server.Options{})
	msrv := httptest.NewServer(server.New(mono, "des").Handler())
	defer msrv.Close()
	resp, _ = msrv.Client().Get(msrv.URL + "/slacks?scenario=ss")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("single-corner scenario query: %d", resp.StatusCode)
	}
	resp.Body.Close()
}
