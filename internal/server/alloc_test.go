package server_test

// Allocation-discipline unit test for the serving read path (DESIGN.md §12):
// once a session is warm, reading its full slack vector into a caller-owned
// buffer must not allocate — the overlay patch walk uses the no-copy changed
// endpoint view and the base copy grows the destination at most once.
// bench_gc_test.go measures the same path on a block preset under the
// INSTA_GC_GATE harness; this keeps the invariant in the fast tier-1 set.

import (
	"testing"

	"insta/internal/server"
)

func TestSessionSlacksReadAllocFree(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 6, 2, server.Options{})
	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	deltas := arcDeltas(mgr.Engine(), 3, 37, 1.15)
	if _, err := sess.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}

	buf, err := sess.SlacksInto(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 {
		t.Fatal("empty slack vector — test design is vacuous")
	}
	a := testing.AllocsPerRun(20, func() {
		buf, err = sess.SlacksInto(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if a > 0.5 {
		t.Errorf("warm session slacks read: %.1f allocs/op, want 0", a)
	}
}
