package server_test

// SIGTERM-drain coverage: the behavior cmd/insta-served (and the fleet's
// rolling snapshot-swap) rely on was only ever exercised by hand. These tests
// pin the three contractual pieces against a real http.Server: an in-flight
// request is allowed to complete before Drain returns, new connections are
// refused afterwards, and a committed session survives the restart via the
// snapshot path.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"insta/internal/core"
	"insta/internal/server"
	"insta/internal/snap"
)

// getJSON decodes url's JSON response into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: decode: %v", url, err)
	}
}

// startHTTP serves the handler on a real loopback listener (httptest.Server
// hides the *http.Server Shutdown needs).
func startHTTP(t *testing.T, h http.Handler) (*http.Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(lis)
	return srv, "http://" + lis.Addr().String()
}

// TestDrainInFlightCompletes holds the base engine's write lock so a /slacks
// read is pinned mid-handler, then drains: Drain must wait for that request
// (not cut the connection), the request must finish 200, and once Drain
// returns the listener must refuse new connections.
func TestDrainInFlightCompletes(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{})
	httpSrv, url := startHTTP(t, server.New(mgr, "des").Handler())

	// Pin the base write lock: the in-flight read below blocks on RLock until
	// we release it, giving a deterministic "request still running" window.
	entered := make(chan struct{})
	release := make(chan struct{})
	exclDone := make(chan struct{})
	go func() {
		mgr.Exclusive(func() {
			close(entered)
			<-release
		})
		close(exclDone)
	}()
	<-entered

	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Get(url + "/slacks")
		if err != nil {
			inflight <- err
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- &net.AddrError{Err: resp.Status, Addr: url}
			return
		}
		inflight <- nil
	}()
	// Let the request reach the handler and park on the read lock.
	time.Sleep(100 * time.Millisecond)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- server.Drain(ctx, httpSrv, mgr, nil)
	}()

	// Drain must not return while the request is still blocked inside its
	// handler.
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a request still in flight", err)
	case <-time.After(200 * time.Millisecond):
	}

	close(release)
	<-exclDone
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request did not complete cleanly: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain did not complete after the in-flight request: %v", err)
	}

	// The listener is closed: new requests are refused at the connection.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("post-drain request succeeded; want connection refused")
	}
}

// TestDrainSavesCommittedSnapshot commits an ECO through a session, drains,
// and boots a fresh engine from the snapshot the drain saved: the committed
// figures must survive the restart bit-identically.
func TestDrainSavesCommittedSnapshot(t *testing.T) {
	cache, err := snap.NewCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	boot := &server.BootInfo{Mode: "cold", SnapshotKey: "drain-key"}
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{Snapshots: cache, Boot: boot})
	httpSrv, _ := startHTTP(t, server.New(mgr, "des").Handler())

	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ApplyDeltas(arcDeltas(mgr.Engine(), 0, 97, 1.25)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	wantWNS, wantTNS := mgr.BaseWNS(), mgr.BaseTNS()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Drain(ctx, httpSrv, mgr, nil); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if mgr.NumSessions() != 0 {
		t.Fatalf("drain left %d live sessions", mgr.NumSessions())
	}

	snp, err := cache.Load("drain-key")
	if err != nil || snp == nil {
		t.Fatalf("drain did not persist the snapshot: %v/%v", snp, err)
	}
	e2, err := core.NewEngineFromState(snp.State, core.Options{TopK: 8, Workers: 2, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e2.Run()
	if e2.WNS() != wantWNS || e2.TNS() != wantTNS {
		t.Fatalf("restart from drain snapshot diverged: got WNS/TNS %v/%v, committed %v/%v",
			e2.WNS(), e2.TNS(), wantWNS, wantTNS)
	}
}

// TestHealthzLoadSection pins the append-only live-load fields the fleet
// router keys admission and hedging off: live session count, the max-sessions
// cap, remaining headroom, and the in-flight work-request count (which must
// exclude the /healthz probe itself).
func TestHealthzLoadSection(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{MaxSessions: 5})
	httpSrv, url := startHTTP(t, server.New(mgr, "des").Handler())
	defer httpSrv.Close()

	sess, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var h struct {
		Sessions int `json:"sessions"`
		Load     struct {
			Live     int `json:"live_sessions"`
			Max      int `json:"max_sessions"`
			Headroom int `json:"headroom"`
			Inflight int `json:"inflight"`
		} `json:"load"`
	}
	getJSON(t, url+"/healthz", &h)
	if h.Sessions != 1 || h.Load.Live != 1 || h.Load.Max != 5 || h.Load.Headroom != 4 {
		t.Fatalf("healthz load section wrong: %+v", h)
	}
	if h.Load.Inflight != 0 {
		t.Fatalf("healthz probe counted itself as in-flight load: %+v", h.Load)
	}
}

// TestAdmissionRejectRetryAfter drives session creates past the cap: the
// rejection must be a 503 carrying a Retry-After hint and must show up in the
// insta_admission_rejects_total counter, so fleet retry/backoff can tell
// "full" from "broken".
func TestAdmissionRejectRetryAfter(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{MaxSessions: 1})
	httpSrv, url := startHTTP(t, server.New(mgr, "des").Handler())
	defer httpSrv.Close()

	code, _ := postJSON(t, http.DefaultClient, url+"/session", nil)
	if code != http.StatusCreated {
		t.Fatalf("first create: %d", code)
	}
	resp, err := http.Post(url+"/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap create: got %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("over-cap 503 carries no Retry-After header")
	}
	_, body := getBody(t, url+"/metrics")
	if want := "insta_admission_rejects_total 1\n"; !strings.Contains(body, want) {
		t.Fatalf("metrics missing %q:\n%s", want, body)
	}
}
