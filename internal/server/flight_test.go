package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"insta/internal/obs"
	"insta/internal/server"
)

// newObsServer stands up a server with the full request-observability stack:
// enabled tracer, flight recorder, SLO tracker, debug surface.
func newObsServer(t *testing.T) (*httptest.Server, *server.Server, *obs.Tracer, *obs.FlightRecorder, *obs.SLOTracker) {
	t.Helper()
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{})
	s := server.New(mgr, "des")
	tr := obs.NewTracer()
	fr := obs.NewFlightRecorder(obs.FlightRecorderOptions{Size: 64, PinThreshold: time.Hour, Tracer: tr})
	slo := obs.NewSLOTracker(obs.SLOOptions{Objective: 100 * time.Millisecond, ErrorBudget: 0.01})
	s.EnableTracing(tr)
	s.EnableFlightRecorder(fr)
	s.EnableSLO(slo)
	s.EnableDebug(tr)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, s, tr, fr, slo
}

// TestServeJoinsRemoteTrace pins the replica half of distributed tracing: a
// request arriving with a traceparent header serves under that trace, echoes
// the context back, and its serve span parents to the remote span id.
func TestServeJoinsRemoteTrace(t *testing.T) {
	srv, _, tr, fr, _ := newObsServer(t)

	remote := obs.SpanContext{Trace: obs.NewTraceID(), Span: 0xabcdef01}
	req, _ := http.NewRequest("GET", srv.URL+"/slacks", nil)
	req.Header.Set("Traceparent", obs.Traceparent(remote))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	echo := resp.Header.Get("Traceparent")
	sc, ok := obs.ParseTraceparent(echo)
	if !ok || sc.Trace != remote.Trace {
		t.Fatalf("Traceparent echo %q should carry the caller's trace %s", echo, remote.Trace)
	}
	if sc.Span == remote.Span {
		t.Fatal("echoed span id should be the serve span, not the caller's")
	}

	spans := tr.TraceSpans(remote.Trace)
	if len(spans) != 1 || spans[0].Name != "serve-slacks" || spans[0].Parent != remote.Span {
		t.Fatalf("serve span should join the remote trace under the remote parent, got %+v", spans)
	}

	// The flight recorder saw the request under the same trace.
	recs := fr.Snapshot()
	if len(recs) != 1 || recs[0].Trace != remote.Trace || recs[0].Route != "slacks" || recs[0].Status != 200 {
		t.Fatalf("flight record = %+v, want the traced slacks request", recs)
	}
}

// TestServeMintsTraceWithoutHeader pins that bare requests still get identity:
// the recorder path mints a TraceID and echoes it, so every request is
// addressable even when no router fronted it.
func TestServeMintsTraceWithoutHeader(t *testing.T) {
	srv, _, _, fr, _ := newObsServer(t)
	resp, err := http.Get(srv.URL + "/slacks")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sc, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("bare request should still get a minted Traceparent, got %q", resp.Header.Get("Traceparent"))
	}
	recs := fr.Snapshot()
	if len(recs) != 1 || recs[0].Trace != sc.Trace {
		t.Fatalf("flight record trace %v should match the echoed %v", recs, sc.Trace)
	}
	// Probe routes stay unrecorded and unechoed.
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.Header.Get("Traceparent") != "" {
		t.Fatal("/healthz must not mint trace ids")
	}
	if got := fr.Total(); got != 1 {
		t.Fatalf("probe routes must not hit the recorder, total = %d", got)
	}
}

// TestFlightRecorderEndpointAndHealthzSLO exercises the dump endpoint and the
// healthz slo/flight_recorder sections end to end, including error pinning.
func TestFlightRecorderEndpointAndHealthzSLO(t *testing.T) {
	srv, _, _, _, _ := newObsServer(t)

	// One OK read + one 404 session get (an error the recorder pins: 404 is
	// not >= 500, so actually NOT pinned — only recorded).
	if r, err := http.Get(srv.URL + "/slacks"); err == nil {
		r.Body.Close()
	}
	r2, err := http.Post(srv.URL+"/session/nope/eco", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()

	resp, err := http.Get(srv.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Size   int `json:"size"`
		Total  int `json:"total"`
		Recent []struct {
			Route  string `json:"route"`
			Status int    `json:"status"`
			Trace  string `json:"trace"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Size != 64 || dump.Total != 2 || len(dump.Recent) != 2 {
		t.Fatalf("dump = %+v, want 2 records in a 64-ring", dump)
	}
	if dump.Recent[0].Route != "slacks" || dump.Recent[1].Route != "eco" || dump.Recent[1].Status != 404 {
		t.Fatalf("recent = %+v", dump.Recent)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health struct {
		SLO []struct {
			Window string  `json:"window"`
			Total  uint64  `json:"total"`
			Burn   float64 `json:"burn_rate"`
		} `json:"slo"`
		FR struct {
			Size  int `json:"size"`
			Total int `json:"total"`
		} `json:"flight_recorder"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if len(health.SLO) != 2 || health.SLO[0].Window != "5m" || health.SLO[1].Window != "1h" {
		t.Fatalf("healthz slo = %+v, want 5m + 1h windows", health.SLO)
	}
	if health.SLO[0].Total != 2 {
		t.Fatalf("slo should have counted both work requests, got %+v", health.SLO[0])
	}
	if health.FR.Size != 64 || health.FR.Total != 2 {
		t.Fatalf("healthz flight_recorder = %+v", health.FR)
	}

	// The SLO gauges render on /metrics.
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	mb, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"insta_slo_burn_rate_5m", "insta_slo_burn_rate_1h", "insta_slo_objective_seconds 0.1", "insta_inflight"} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestFlightRecorderPinsServerError pins the anomaly path through the real
// HTTP stack: a 503 (admission cap) captures a pinned record with the
// request's span tree.
func TestFlightRecorderPinsServerError(t *testing.T) {
	mgr, _ := newTestManager(t, "des", 8, 2, server.Options{MaxSessions: 1})
	s := server.New(mgr, "des")
	tr := obs.NewTracer()
	fr := obs.NewFlightRecorder(obs.FlightRecorderOptions{Size: 16, PinThreshold: time.Hour, Tracer: tr})
	s.EnableTracing(tr)
	s.EnableFlightRecorder(fr)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if r, err := http.Post(srv.URL+"/session", "", nil); err == nil {
		r.Body.Close()
	}
	r2, err := http.Post(srv.URL+"/session", "", nil) // cap hit -> 503
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second create = %d, want 503", r2.StatusCode)
	}

	pinned := fr.Pinned()
	if len(pinned) != 1 || pinned[0].Rec.Status != 503 || pinned[0].Rec.Route != "session-create" {
		t.Fatalf("pinned = %+v, want the 503 create", pinned)
	}
	if len(pinned[0].Spans) == 0 || pinned[0].Spans[0].Name != "serve-session-create" {
		t.Fatalf("pinned anomaly should carry its span tree, got %+v", pinned[0].Spans)
	}
}

// TestInflightGaugeAndLiveSessions pins the satellite gauges: insta_inflight
// returns to zero at rest and insta_sessions_live tracks create/delete
// through the maintained gauge.
func TestInflightGaugeAndLiveSessions(t *testing.T) {
	srv, s, _, _, _ := newObsServer(t)
	if s.Inflight() != 0 {
		t.Fatalf("Inflight at rest = %d", s.Inflight())
	}
	r, err := http.Post(srv.URL+"/session", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if n := s.Manager().NumSessions(); n != 1 {
		t.Fatalf("NumSessions = %d after create, want 1", n)
	}
	req, _ := http.NewRequest("DELETE", srv.URL+"/session/"+created.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if n := s.Manager().NumSessions(); n != 0 {
		t.Fatalf("NumSessions = %d after delete, want 0", n)
	}
	if s.Inflight() != 0 {
		t.Fatalf("Inflight after traffic = %d, want 0", s.Inflight())
	}
}
