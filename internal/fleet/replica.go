package fleet

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Health is the router's last decoded view of one replica's /healthz — the
// load fields internal/server exposes for exactly this consumer.
type Health struct {
	OK           bool      `json:"ok"`
	LiveSessions int       `json:"live_sessions"`
	MaxSessions  int       `json:"max_sessions"`
	Headroom     int       `json:"headroom"`
	Inflight     int       `json:"inflight"`
	Epoch        uint64    `json:"epoch"`
	CheckedAt    time.Time `json:"-"`
	Err          string    `json:"err,omitempty"`
}

// Replica is one backend daemon as the pool sees it: a swappable base URL,
// two orthogonal state bits, and the per-replica admission gate.
//
// The two bits are deliberately independent:
//
//   - healthy is owned by the health-check loop — it falls after
//     Options.UnreadyAfter consecutive probe failures and rises again on the
//     first success, so a crashed or wedged replica is re-admitted the moment
//     it recovers.
//   - draining is owned by RollingSwap — a draining replica is still healthy
//     and still serves its resident sessions; it only stops receiving *new*
//     sessions so its population can run down to zero.
//
// New sessions require healthy && !draining. Requests for existing sessions
// always route to the home replica regardless of either bit: a session's
// state lives nowhere else, so diverting it could only turn a maybe-failure
// into a certain one.
type Replica struct {
	ID    int
	idStr string // preformatted metric label

	url atomic.Value // string; swapped when a respawned backend moves ports

	healthy  atomic.Bool
	draining atomic.Bool
	fails    atomic.Int32

	// slots is the per-replica in-flight admission gate (nil = unlimited);
	// inflight counts admitted session-scoped requests either way, which is
	// what RollingSwap polls to know the replica is quiescent.
	slots    chan struct{}
	inflight atomic.Int64

	requests atomic.Int64 // proxied requests (all routes)
	errors   atomic.Int64 // attempts that died on transport errors

	hmu    sync.Mutex
	health Health
}

func newReplica(id int, url string, perInflight int) *Replica {
	r := &Replica{ID: id, idStr: strconv.Itoa(id)}
	r.url.Store(url)
	if perInflight > 0 {
		r.slots = make(chan struct{}, perInflight)
	}
	return r
}

// URL returns the replica's current base URL ("http://host:port").
func (r *Replica) URL() string { return r.url.Load().(string) }

// SetURL repoints the replica — used when a swapped backend comes back on a
// different address. Ring position and identity are unchanged.
func (r *Replica) SetURL(u string) { r.url.Store(u) }

// Healthy reports whether the health-check loop currently trusts the replica.
func (r *Replica) Healthy() bool { return r.healthy.Load() }

// Draining reports whether a rolling swap is running the replica down.
func (r *Replica) Draining() bool { return r.draining.Load() }

// Ready reports whether the replica may receive new sessions.
func (r *Replica) Ready() bool { return r.healthy.Load() && !r.draining.Load() }

// Inflight returns the number of admitted session-scoped requests currently
// proxied to this replica.
func (r *Replica) Inflight() int64 { return r.inflight.Load() }

// Health returns the last health-check snapshot.
func (r *Replica) Health() Health {
	r.hmu.Lock()
	defer r.hmu.Unlock()
	return r.health
}

func (r *Replica) setHealth(h Health) {
	h.CheckedAt = time.Now()
	r.hmu.Lock()
	r.health = h
	r.hmu.Unlock()
}

// sessionFull reports whether the replica's own session-admission cap is
// exhausted per its last health report — the create path redraws keys past
// full replicas instead of burning a round trip on a certain 503.
func (r *Replica) sessionFull() bool {
	r.hmu.Lock()
	defer r.hmu.Unlock()
	return r.health.OK && r.health.MaxSessions > 0 && r.health.Headroom <= 0
}

// state renders the replica's combined condition for /healthz.
func (r *Replica) state() string {
	switch {
	case r.draining.Load():
		return "draining"
	case !r.healthy.Load():
		return "unready"
	default:
		return "ready"
	}
}
