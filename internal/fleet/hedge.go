package fleet

// Request hedging for the idempotent base reads (GET /slacks, /gradients).
// The committed base is byte-identical on every replica booted from the same
// snapshot, so a read can be answered anywhere — which makes the classic
// tail-cutting move legal: send to one replica, and if it hasn't answered
// within a delay derived from the observed p95, send a second copy to a
// *different* replica and take whichever answers first. The straggler's
// response is discarded and its connection cancelled. Hedges are bounded to
// one per request and fire only past the p95, so steady-state load inflation
// stays under ~5% while the p99/p999 collapses toward the median of the
// second-fastest replica.

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// latTracker is a fixed 256-entry ring of recent read latencies; p95 over the
// ring sets the hedge delay. A ring (not a histogram) keeps the estimate
// adaptive: 256 samples of history is enough to be stable and small enough to
// forget a load shift within a few hundred requests.
type latTracker struct {
	mu   sync.Mutex
	ring [256]time.Duration
	n    int // total observations
}

func newLatTracker() *latTracker { return &latTracker{} }

func (t *latTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.n&255] = d
	t.n++
	t.mu.Unlock()
}

// p95 returns the 95th percentile of the ring, or 0 with fewer than 8
// samples (callers fall back to HedgeMin while the estimate warms up).
func (t *latTracker) p95() time.Duration {
	t.mu.Lock()
	n := t.n
	if n > 256 {
		n = 256
	}
	if n < 8 {
		t.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, t.ring[:n])
	t.mu.Unlock()
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	return buf[(n*95)/100]
}

// hedgeDelay is the current hedge trigger: observed read p95 clamped into
// [HedgeMin, HedgeMax].
func (p *Pool) hedgeDelay() time.Duration {
	d := p.readLat.p95()
	if d < p.opt.HedgeMin {
		d = p.opt.HedgeMin
	}
	if d > p.opt.HedgeMax {
		d = p.opt.HedgeMax
	}
	return d
}

// pickRead returns the next ready replica for a base read, round-robin,
// skipping exclude (the hedge's primary). Draining replicas still serve
// reads — the base is committed state, unaffected by the drain — but are
// deprioritized so the drain isn't slowed; they are used only when no
// non-draining replica is ready.
func (p *Pool) pickRead(exclude *Replica) *Replica {
	n := uint64(len(p.replicas))
	start := p.rr.Add(1)
	var drainFallback *Replica
	for i := uint64(0); i < n; i++ {
		r := p.replicas[(start+i)%n]
		if r == exclude || !r.Healthy() {
			continue
		}
		if r.Draining() {
			if drainFallback == nil {
				drainFallback = r
			}
			continue
		}
		return r
	}
	return drainFallback
}

// readResult is one completed hedge attempt.
type readResult struct {
	resp   *http.Response
	rep    *Replica
	cancel func()
	hedged bool
	err    error
}

// hedgedRead serves one idempotent base read. The primary attempt goes out
// immediately; a hedge fires to a different replica if the primary neither
// answers nor errors within hedgeDelay. A primary *error* fails over
// immediately instead of waiting (that path counts as a retry, not a hedge).
// First successful response wins; the loser is cancelled and drained.
func (p *Pool) hedgedRead(w http.ResponseWriter, r *http.Request, primary *Replica) {
	path := r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	m := metaFrom(r.Context())
	results := make(chan readResult, 2)
	launch := func(rep *Replica, hedged bool) {
		// Detached context: the loser must be cancellable independently of
		// the client request, and a straggler must not be killed by the
		// winner finishing first. reapReads owns cleanup either way.
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.URL()+path, nil)
		if err != nil {
			cancel()
			results <- readResult{rep: rep, hedged: hedged, err: err}
			return
		}
		// Each racing attempt is its own span under the request's root, so a
		// stitched trace shows the hedge race: two read-attempt spans sharing
		// one trace id, each parenting its replica's serve span. The loser's
		// span ends when its response (or error) lands, which may be after
		// the root has ended — the tracer is append-only, so that is fine.
		asp := m.span().ChildArg("read-attempt", "replica", int64(rep.ID))
		if tp := tpFor(asp, m.context()); tp != "" {
			req.Header.Set("Traceparent", tp)
		}
		p.met.requests.With(rep.idStr).Inc()
		rep.requests.Add(1)
		resp, err := p.client.Do(req)
		asp.End()
		if err != nil {
			cancel()
			rep.errors.Add(1)
			p.met.errors.With(rep.idStr).Inc()
			results <- readResult{rep: rep, hedged: hedged, err: err}
			return
		}
		results <- readResult{resp: resp, rep: rep, cancel: cancel, hedged: hedged}
	}

	t0 := time.Now()
	launched := 1
	go launch(primary, false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	canHedge := !p.opt.DisableHedge && len(p.replicas) > 1
	if canHedge {
		hedgeTimer = time.NewTimer(p.hedgeDelay())
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	fireSecond := func(isHedge bool) {
		second := p.pickRead(primary)
		if second == nil {
			if isHedge {
				return
			}
			// Failover with no alternative replica: retry the primary itself.
			second = primary
		}
		if isHedge {
			p.met.hedgeFires.Inc()
		} else {
			p.met.retries.Inc()
		}
		launched++
		go launch(second, true)
	}

	var winner readResult
	var lastErr error
	done := 0
	for winner.resp == nil && done < launched {
		select {
		case res := <-results:
			done++
			if res.err != nil {
				lastErr = res.err
				// Immediate failover: don't sit out the hedge delay when the
				// primary is already known dead.
				if launched == 1 {
					fireSecond(false)
				}
				continue
			}
			winner = res
		case <-hedgeC:
			hedgeC = nil
			if launched == 1 {
				fireSecond(true)
			}
		case <-r.Context().Done():
			// Client went away; the detached attempt contexts outlive it only
			// until the drain goroutine below reaps them.
			go reapReads(results, launched-done)
			writeProxyErr(w, http.StatusServiceUnavailable, r.Context().Err())
			return
		}
	}
	if winner.resp == nil {
		writeProxyErr(w, http.StatusBadGateway, lastErr)
		return
	}
	// Reap the loser (if any attempt is still outstanding) off-path.
	if done < launched {
		go reapReads(results, launched-done)
	}
	if winner.hedged {
		p.met.hedgeWins.Inc()
	}
	m.place(winner.rep)
	copyResponse(w, winner.resp)
	winner.cancel()
	p.readLat.observe(time.Since(t0))
	p.met.latency.Observe(time.Since(t0).Seconds())
}

// reapReads drains n outstanding attempt results, closing bodies and
// cancelling contexts so hedged losers don't leak connections.
func reapReads(results <-chan readResult, n int) {
	for i := 0; i < n; i++ {
		res := <-results
		if res.resp != nil {
			io.Copy(io.Discard, res.resp.Body)
			res.resp.Body.Close()
		}
		if res.cancel != nil {
			res.cancel()
		}
	}
}
