package fleet_test

// Distributed-tracing tests for the router (DESIGN.md §15): trace identity
// minted or joined at the front door, propagated to every downstream attempt
// (including both sides of a hedge race), recorded in the flight recorder,
// and exported as one stitched Chrome trace.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/fleet"
	"insta/internal/obs"
	"insta/internal/server"
)

// spansNamed filters a trace snapshot by span name.
func spansNamed(spans []obs.SpanView, name string) []obs.SpanView {
	var out []obs.SpanView
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// TestHedgeSharesTraceDistinctSpans pins the hedge-race tracing contract: the
// winning and losing attempts of one hedged base read carry the SAME trace id
// with DISTINCT span ids, both parented to the request's root span, and the
// stitched export contains both. Run under -race in ci.sh step 4: the loser's
// span ends on a goroutine that can outlive the request handler.
func TestHedgeSharesTraceDistinctSpans(t *testing.T) {
	tr := obs.NewTracer()
	opt := fastOpts()
	opt.Tracer = tr
	_, stubs, _, base := newStubFleet(t, 2, opt)
	// Both replicas slow on base reads: the hedge fires at HedgeMin (5ms) and
	// both attempts run to completion, so both spans land.
	for _, s := range stubs {
		s.baseDelay.Store(int64(30 * time.Millisecond))
	}

	resp, err := http.Get(base + "/slacks")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged read: status %d", resp.StatusCode)
	}
	sc, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("router did not echo a Traceparent, got %q", resp.Header.Get("Traceparent"))
	}

	// The loser finishes after the response is written; wait for its span.
	var attempts []obs.SpanView
	eventually(t, 2*time.Second, "both hedge attempt spans to land", func() bool {
		attempts = spansNamed(tr.TraceSpans(sc.Trace), "read-attempt")
		return len(attempts) == 2
	})
	if attempts[0].Span == attempts[1].Span {
		t.Fatalf("hedge attempts must have distinct span ids, both %016x", attempts[0].Span)
	}
	if attempts[0].Trace != sc.Trace || attempts[1].Trace != sc.Trace {
		t.Fatalf("attempts carry traces %s / %s, want the request's %s",
			attempts[0].Trace, attempts[1].Trace, sc.Trace)
	}
	roots := spansNamed(tr.TraceSpans(sc.Trace), "route-slacks")
	if len(roots) != 1 {
		t.Fatalf("want one root span, got %d", len(roots))
	}
	for _, a := range attempts {
		if a.Parent != roots[0].Span {
			t.Fatalf("attempt parent %016x, want root %016x", a.Parent, roots[0].Span)
		}
	}
	if attempts[0].ArgKey != "replica" || attempts[1].ArgKey != "replica" ||
		attempts[0].ArgVal == attempts[1].ArgVal {
		t.Fatalf("attempts should target distinct replicas, got %s=%d and %s=%d",
			attempts[0].ArgKey, attempts[0].ArgVal, attempts[1].ArgKey, attempts[1].ArgVal)
	}

	// The stitched export endpoint serves the same tree as Chrome trace JSON.
	sr, err := http.Get(base + "/debug/trace/" + sc.Trace.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&f); err != nil {
		t.Fatalf("stitched export is not Chrome trace JSON: %v", err)
	}
	gotAttempts := 0
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Name == "read-attempt" {
			gotAttempts++
		}
	}
	if gotAttempts != 2 {
		t.Fatalf("stitched export has %d read-attempt events, want 2", gotAttempts)
	}

	met := metricsText(t, base)
	if !strings.Contains(met, "fleet_hedge_fires_total 1") {
		t.Fatalf("hedge should have fired once: %q", grepMetric(met, "fleet_hedge_fires_total"))
	}
}

// traceSink is a minimal replica that records the Traceparent header of every
// request it serves.
type traceSink struct {
	mu  sync.Mutex
	got []string
}

func (ts *traceSink) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeStubJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "sessions": 0, "epoch": 1,
			"load": map[string]any{"live_sessions": 0, "max_sessions": 0, "headroom": 1 << 20, "inflight": 0},
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		ts.mu.Lock()
		ts.got = append(ts.got, r.Header.Get("Traceparent"))
		ts.mu.Unlock()
		if r.Method == http.MethodPost && r.URL.Path == "/session" {
			writeStubJSON(w, http.StatusCreated, map[string]any{"id": "s1", "epoch": 1})
			return
		}
		writeStubJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

func (ts *traceSink) received() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]string(nil), ts.got...)
}

// TestTraceIDsPropagateWithoutTracer pins ids-only mode: with no router
// tracer, a caller's trace id still reaches the replica and the echo, so
// cross-process correlation works even with spans off.
func TestTraceIDsPropagateWithoutTracer(t *testing.T) {
	sink := &traceSink{}
	lr, err := fleet.NewLocalReplica(sink.handler())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lr.Close() })
	opt := fastOpts()
	opt.DisableHedge = true
	p, err := fleet.New([]string{lr.URL()}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	rt := httptest.NewServer(p.Handler())
	t.Cleanup(rt.Close)

	caller := obs.SpanContext{Trace: obs.NewTraceID(), Span: 0x1234}
	req, _ := http.NewRequest(http.MethodGet, rt.URL+"/slacks", nil)
	req.Header.Set("Traceparent", obs.Traceparent(caller))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	echo, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || echo.Trace != caller.Trace {
		t.Fatalf("echo %q should carry the caller's trace %s", resp.Header.Get("Traceparent"), caller.Trace)
	}
	var down obs.SpanContext
	for _, tp := range sink.received() {
		if sc, ok := obs.ParseTraceparent(tp); ok {
			down = sc
		}
	}
	if down.Trace != caller.Trace {
		t.Fatalf("replica received trace %s, want the caller's %s", down.Trace, caller.Trace)
	}
	// Without a header, the router mints: a fresh request gets a nonzero id.
	r2, err := http.Get(rt.URL + "/slacks")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	minted, ok := obs.ParseTraceparent(r2.Header.Get("Traceparent"))
	if !ok || minted.Trace.IsZero() || minted.Trace == caller.Trace {
		t.Fatalf("router should mint a fresh trace, got %q", r2.Header.Get("Traceparent"))
	}
}

// TestFleetObsEndpoints covers the router's observability surface over stubs:
// the flight recorder retains routed requests with shard and replica facts,
// /debug/fleet aggregates a live scrape with skew and SLO, /healthz carries
// the slo section, and /metrics renders the new gauges.
func TestFleetObsEndpoints(t *testing.T) {
	opt := fastOpts()
	opt.Tracer = obs.NewTracer()
	opt.DisableHedge = true
	_, _, _, base := newStubFleet(t, 2, opt)

	fid := createSession(t, base)
	if code := do(t, http.MethodGet, base+"/session/"+fid+"/slacks", nil); code != http.StatusOK {
		t.Fatalf("session read: status %d", code)
	}
	if code := do(t, http.MethodGet, base+"/slacks", nil); code != http.StatusOK {
		t.Fatalf("base read: status %d", code)
	}

	var dump struct {
		Size   int `json:"size"`
		Total  int `json:"total"`
		Recent []struct {
			Route   string `json:"route"`
			Shard   string `json:"shard"`
			Replica int32  `json:"replica"`
			Status  int32  `json:"status"`
			Trace   string `json:"trace"`
			TotalNs int64  `json:"total_ns"`
		} `json:"recent"`
	}
	resp, err := http.Get(base + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dump.Total != 3 || len(dump.Recent) != 3 {
		t.Fatalf("flight recorder total = %d (%d recent), want 3 routed requests", dump.Total, len(dump.Recent))
	}
	byRoute := map[string]int{}
	for _, rec := range dump.Recent {
		byRoute[rec.Route]++
		if rec.Status != 200 && rec.Status != 201 {
			t.Fatalf("record %+v not ok", rec)
		}
		if len(rec.Trace) != 32 {
			t.Fatalf("record trace %q not a 32-hex id", rec.Trace)
		}
	}
	if byRoute["session-create"] != 1 || byRoute["session-slacks"] != 1 || byRoute["slacks"] != 1 {
		t.Fatalf("recorded routes %v", byRoute)
	}
	for _, rec := range dump.Recent {
		if rec.Route == "session-slacks" && (rec.Shard == "" || rec.Replica < 0) {
			t.Fatalf("session-scoped record should carry shard+replica: %+v", rec)
		}
	}

	var fd struct {
		Replicas []struct {
			ID  int    `json:"id"`
			Err string `json:"err"`
		} `json:"replicas"`
		Scraped int `json:"scraped"`
		Skew    struct {
			SessionsMax float64 `json:"sessions_max"`
		} `json:"skew"`
		SLO []struct {
			Window string `json:"window"`
		} `json:"slo"`
		FR struct {
			Size int `json:"size"`
		} `json:"flight_recorder"`
	}
	fr, err := http.Get(base + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(fr.Body).Decode(&fd); err != nil {
		t.Fatal(err)
	}
	fr.Body.Close()
	if len(fd.Replicas) != 2 || fd.Scraped != 2 {
		t.Fatalf("/debug/fleet scraped %d of %d replicas", fd.Scraped, len(fd.Replicas))
	}
	if fd.Skew.SessionsMax < 1 {
		t.Fatalf("session skew should see the one live session: %+v", fd.Skew)
	}
	if len(fd.SLO) != 2 || fd.FR.Size == 0 {
		t.Fatalf("/debug/fleet missing slo/flight_recorder sections: %+v", fd)
	}

	var hz struct {
		SLO []struct {
			Window string `json:"window"`
			Total  uint64 `json:"total"`
		} `json:"slo"`
	}
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if len(hz.SLO) != 2 || hz.SLO[0].Total != 3 {
		t.Fatalf("healthz slo = %+v, want both windows counting 3 requests", hz.SLO)
	}

	met := metricsText(t, base)
	for _, want := range []string{"fleet_inflight 0", "fleet_admission_waiting 0", "fleet_slo_burn_rate_5m", "fleet_slo_burn_rate_1h", "fleet_slo_objective_seconds"} {
		if !strings.Contains(met, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// delayReads wraps a replica handler, slowing GET /slacks so the router's
// hedge fires against real servers.
func delayReads(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/slacks" {
			time.Sleep(d)
		}
		h.ServeHTTP(w, r)
	})
}

// TestStitchedFleetTrace is the tentpole's acceptance test: one request
// through the router, hedged across two REAL replicas, yields one stitched
// Chrome trace in which the router's root and attempt spans and both
// replicas' serve spans share a single trace id and connect into one tree.
func TestStitchedFleetTrace(t *testing.T) {
	spec, err := bench.BlockSpec("des")
	if err != nil {
		if spec, err = bench.IWLSSpec("des"); err != nil {
			t.Fatalf("unknown preset: %v", err)
		}
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	routerTr := obs.NewTracer()
	var urls []string
	var repTracers []*obs.Tracer
	for i := 0; i < 2; i++ {
		e, err := core.NewEngine(s.Tab, core.Options{TopK: 8, Workers: 2, Tau: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		mgr := server.NewManager(e, s.Ref, server.Options{MaxSessions: 16})
		srv := server.New(mgr, "des")
		repTr := obs.NewTracer()
		srv.EnableTracing(repTr)
		repTracers = append(repTracers, repTr)
		lr, err := fleet.NewLocalReplica(delayReads(srv.Handler(), 30*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lr.Close() })
		urls = append(urls, lr.URL())
	}
	opt := fastOpts()
	opt.Tracer = routerTr
	p, err := fleet.New(urls, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	for i, tr := range repTracers {
		p.AddTraceStream(fmt.Sprintf("replica-%d", i), tr)
	}
	rt := httptest.NewServer(p.Handler())
	t.Cleanup(rt.Close)

	resp, err := http.Get(rt.URL + "/slacks")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged read: status %d", resp.StatusCode)
	}
	sc, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatal("no Traceparent echo")
	}

	streams := append([]obs.StitchStream{{Name: "router", Tracer: routerTr}},
		obs.StitchStream{Name: "replica-0", Tracer: repTracers[0]},
		obs.StitchStream{Name: "replica-1", Tracer: repTracers[1]})
	var stitched []obs.StitchedSpan
	eventually(t, 5*time.Second, "both serve spans and both attempts to land", func() bool {
		stitched = obs.CollectTrace(sc.Trace, streams...)
		serves, atts := 0, 0
		for _, sp := range stitched {
			switch sp.Name {
			case "serve-slacks":
				serves++
			case "read-attempt":
				atts++
			}
		}
		return serves == 2 && atts == 2
	})

	// One connected tree: every serve span's parent is one of the router's
	// attempt spans, and the attempts parent to the single root.
	attemptIDs := map[uint64]bool{}
	var rootID uint64
	for _, sp := range stitched {
		switch sp.Name {
		case "read-attempt":
			attemptIDs[sp.Span] = true
		case "route-slacks":
			rootID = sp.Span
		}
		if sp.Trace != sc.Trace {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.Trace, sc.Trace)
		}
	}
	if rootID == 0 || len(attemptIDs) != 2 {
		t.Fatalf("want one root and two attempts, got root=%016x attempts=%d", rootID, len(attemptIDs))
	}
	for _, sp := range stitched {
		switch sp.Name {
		case "serve-slacks":
			if !attemptIDs[sp.Parent] {
				t.Fatalf("replica serve span parents to %016x, not a router attempt", sp.Parent)
			}
		case "read-attempt":
			if sp.Parent != rootID {
				t.Fatalf("attempt parents to %016x, want root %016x", sp.Parent, rootID)
			}
		}
	}

	// The router endpoint exports the same tree as one Chrome trace file with
	// three named process streams.
	er, err := http.Get(rt.URL + "/debug/trace/" + sc.Trace.String())
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(er.Body).Decode(&f); err != nil {
		t.Fatalf("stitched endpoint export: %v", err)
	}
	pids := map[int]bool{}
	serves := 0
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
			if ev.Name == "serve-slacks" {
				serves++
			}
		}
	}
	if len(pids) != 3 || serves != 2 {
		t.Fatalf("stitched file: %d process streams (want 3), %d serve spans (want 2)", len(pids), serves)
	}
}
