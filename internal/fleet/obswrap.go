package fleet

// Request observability at the router (DESIGN.md §15): every routed request
// gets a W3C traceparent — joined from the caller's header when present,
// minted otherwise — that is propagated to each downstream attempt so the
// replicas' serve spans stitch into one tree with the router's. The wrapper
// also feeds the always-on flight recorder and the SLO burn-rate tracker with
// one record per completed request: route, shard key, chosen replica,
// admission wait vs total time, and status.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"insta/internal/obs"
)

var (
	errFlightOff  = errors.New("fleet: flight recorder disabled")
	errBadTraceID = errors.New("fleet: bad trace id (want 32 hex digits)")
)

// reqMeta rides the request context from the obsWrap entry point through the
// handlers, collecting the placement facts only they know: the session shard
// key, the replica that served it, and the admission queue wait. All mutators
// are nil-safe so helper paths without a wrapper (health probes, swaps) can
// share the same code.
type reqMeta struct {
	sc      obs.SpanContext // trace context minted or joined at entry
	sp      *obs.Span       // router root span (nil when tracing is off)
	shard   string
	replica int32
	queueNs int64
}

type metaKey struct{}

func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(metaKey{}).(*reqMeta)
	return m
}

func (m *reqMeta) span() *obs.Span {
	if m == nil {
		return nil
	}
	return m.sp
}

func (m *reqMeta) context() obs.SpanContext {
	if m == nil {
		return obs.SpanContext{}
	}
	return m.sc
}

func (m *reqMeta) place(rep *Replica) {
	if m != nil && rep != nil {
		m.replica = int32(rep.ID)
	}
}

func (m *reqMeta) setShard(key string) {
	if m != nil {
		m.shard = key
	}
}

func (m *reqMeta) addQueue(d time.Duration) {
	if m != nil {
		m.queueNs += int64(d)
	}
}

// tpFor picks the traceparent to send downstream: the given span's context
// when the tracer is live (so the replica's serve span parents to this
// attempt), else the request-level context (so replicas still join the same
// trace when router spans are off).
func tpFor(sp *obs.Span, sc obs.SpanContext) string {
	if c := sp.Context(); !c.Trace.IsZero() {
		return obs.Traceparent(c)
	}
	return obs.Traceparent(sc)
}

// statusCapture records the status code a handler wrote.
type statusCapture struct {
	http.ResponseWriter
	code int
}

func (w *statusCapture) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusCapture) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// obsWrap is the router's per-route observability shell: trace identity in,
// Traceparent echo out, one flight-recorder record and one SLO sample per
// completed request. Probe routes (/healthz, /metrics) are not wrapped —
// pollers would otherwise dominate the recorder window.
func (p *Pool) obsWrap(route string, h http.HandlerFunc) http.HandlerFunc {
	spanName := "route-" + route
	return func(w http.ResponseWriter, r *http.Request) {
		sc, _ := obs.ParseTraceparent(r.Header.Get("Traceparent"))
		sp := p.tr.StartRemote(spanName, sc)
		if sp != nil {
			sc = sp.Context()
		} else if sc.Trace.IsZero() {
			sc.Trace = obs.NewTraceID()
		}
		if tp := obs.Traceparent(sc); tp != "" {
			w.Header().Set("Traceparent", tp)
		}
		m := &reqMeta{sc: sc, sp: sp, replica: -1}
		sw := &statusCapture{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r.WithContext(context.WithValue(r.Context(), metaKey{}, m)))
		d := time.Since(t0)
		sp.End()
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		now := t0.Add(d)
		if p.fr != nil {
			p.fr.Record(obs.ReqRecord{
				Trace:   sc.Trace,
				Route:   route,
				Shard:   m.shard,
				Replica: m.replica,
				Status:  int32(code),
				QueueNs: m.queueNs,
				ServeNs: int64(d) - m.queueNs,
				TotalNs: int64(d),
				Unix:    now.UnixNano(),
			})
		}
		p.slo.Record(d, code >= 500, now)
	}
}

// handleFlightRecorder dumps the router's request ring and pinned anomalies.
func (p *Pool) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if p.fr == nil {
		writeProxyErr(w, http.StatusNotImplemented, errFlightOff)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = p.fr.WriteJSON(w)
}

// handleStitchedTrace exports one request's merged span tree as a Chrome
// trace_event file: the router's stream plus any registered replica streams
// (AddTraceStream — inproc mode wires every replica tracer). In spawn/attach
// modes only the router stream is local, so the export shows the routing half;
// replica-side spans live in the replica processes' own /debug/trace surface.
func (p *Pool) handleStitchedTrace(w http.ResponseWriter, r *http.Request) {
	trace, ok := obs.ParseTraceID(r.PathValue("trace"))
	if !ok {
		writeProxyErr(w, http.StatusBadRequest, errBadTraceID)
		return
	}
	streams := append([]obs.StitchStream{{Name: "router", Tracer: p.tr}}, p.streams...)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", "attachment; filename=\"trace-"+trace.String()+".json\"")
	_ = obs.WriteStitchedChromeTrace(w, trace, streams...)
}

// handleDebugFleet is the fleet-wide operator view: a live parallel scrape of
// every replica's /healthz (not the health loop's cached copy — an operator
// chasing an incident wants now, not one probe period ago), the router's SLO
// burn rates and recorder state, and per-shard skew over live sessions and
// epochs. Session-count skew exposes placement imbalance; epoch skew exposes
// replicas serving different committed bases after a partial swap.
func (p *Pool) handleDebugFleet(w http.ResponseWriter, r *http.Request) {
	type repScrape struct {
		ID       int    `json:"id"`
		URL      string `json:"url"`
		State    string `json:"state"`
		Inflight int64  `json:"inflight"` // router-side admitted requests
		Sessions int    `json:"live_sessions"`
		Epoch    uint64 `json:"epoch"`
		Err      string `json:"err,omitempty"`
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	views := make([]repScrape, len(p.replicas))
	var wg sync.WaitGroup
	for i, rep := range p.replicas {
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			v := repScrape{ID: rep.ID, URL: rep.URL(), State: rep.state(), Inflight: rep.inflight.Load()}
			if h, err := fetchHealthz(ctx, p.client, rep.URL()); err != nil {
				v.Err = err.Error()
			} else {
				v.Sessions, v.Epoch = h.LiveSessions, h.Epoch
			}
			views[i] = v
		}(i, rep)
	}
	wg.Wait()

	minS, maxS, sumS, n := 0, 0, 0, 0
	var minE, maxE uint64
	for _, v := range views {
		if v.Err != "" {
			continue
		}
		if n == 0 || v.Sessions < minS {
			minS = v.Sessions
		}
		if v.Sessions > maxS {
			maxS = v.Sessions
		}
		if n == 0 || v.Epoch < minE {
			minE = v.Epoch
		}
		if v.Epoch > maxE {
			maxE = v.Epoch
		}
		sumS += v.Sessions
		n++
	}
	mean := 0.0
	if n > 0 {
		mean = float64(sumS) / float64(n)
	}
	resp := map[string]any{
		"replicas":       views,
		"scraped":        n,
		"hedge_delay_ms": float64(p.hedgeDelay().Nanoseconds()) / 1e6,
		"slo":            p.slo.Snapshot(time.Now()),
		"skew": map[string]any{
			"sessions_min":  minS,
			"sessions_max":  maxS,
			"sessions_mean": mean,
			"epoch_min":     minE,
			"epoch_max":     maxE,
		},
	}
	if p.fr != nil {
		resp["flight_recorder"] = map[string]any{
			"size":            p.fr.Size(),
			"total":           p.fr.Total(),
			"pin_threshold_s": p.fr.PinThreshold().Seconds(),
			"pinned":          len(p.fr.Pinned()),
		}
	}
	b, _ := json.Marshal(resp)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(b, '\n'))
}

// EnableDebug mounts the router's profiling surface under /debug/pprof/.
// The trace and flight-recorder endpoints are always mounted (buildMux); the
// pprof handlers are opt-in because they expose process internals.
func (p *Pool) EnableDebug() {
	p.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	p.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	p.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	p.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	p.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
