// Package fleet turns N insta-served replicas into one timing service behind
// a single HTTP front door (see DESIGN.md §13).
//
// The problem it solves is stateful routing under load: ECO sessions are
// copy-on-write overlays resident in exactly one replica's memory, so every
// request for a session must reach the replica that created it, while the
// stateless read surface (/slacks, /gradients — the committed base is
// byte-identical on every replica booted from the same snapshot) can go
// anywhere. The pool answers with:
//
//   - consistent hashing of router-minted session keys, embedded in the
//     fleet-visible session ID ("<key>.<localID>") so the home replica is
//     re-derivable from the ID alone (ring.go);
//   - per-replica and global in-flight admission caps on session-scoped
//     work, queued up to Options.AdmissionWait and then refused with
//     503 + Retry-After — on a loaded box this converts the kernel's
//     processor-sharing queueing (every request slow) into FIFO-like
//     queueing (most requests fast, tail bounded), which is where the
//     fleet's p99 win comes from on few-core hosts (bench_fleet_test.go);
//   - hedged idempotent reads: a second attempt to a different replica
//     after a p95-derived delay, first response wins (hedge.go);
//   - bounded retry with backoff on connection errors (proxy.go);
//   - health-checked membership — a replica is unready after
//     Options.UnreadyAfter consecutive /healthz failures and re-admitted on
//     the first success (health.go);
//   - rolling snapshot-swap deploys that drain one replica at a time with
//     zero dropped sessions (swap.go).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"insta/internal/obs"
)

// Options tunes the pool. The zero value is serviceable: health checks every
// 500ms, two strikes to unready, no admission caps, hedging on.
type Options struct {
	// Health checking.
	HealthInterval time.Duration // probe period (default 500ms)
	HealthTimeout  time.Duration // per-probe budget (default 2s)
	UnreadyAfter   int           // consecutive failures before unready (default 2)

	// Admission control over session-scoped requests. Zero = unlimited.
	PerReplicaInflight int           // cap per replica
	GlobalInflight     int           // cap across the fleet
	AdmissionWait      time.Duration // max queue wait before 503 (default 2s)

	// Hedging of idempotent base reads.
	DisableHedge bool
	HedgeMin     time.Duration // floor on the hedge delay (default 1ms)
	HedgeMax     time.Duration // ceiling on the hedge delay (default 100ms)

	// Retry of proxied requests on connection errors.
	MaxRetries   int           // extra attempts after the first (default 2)
	RetryBackoff time.Duration // base backoff, doubled per retry (default 2ms)

	// Placement.
	VirtualNodes int // ring vnodes per replica (default 64)
	CreateProbes int // key redraws before giving up (default 4×replicas)

	// Swap restarts one replica's backend on a fresh snapshot; the replica is
	// fully drained when called and may come back on a new URL (r.SetURL).
	// Nil disables POST /admin/swap and RollingSwap.
	Swap func(ctx context.Context, r *Replica) error

	DrainPoll time.Duration // swap drain/ready poll period (default 20ms)

	// Observability (DESIGN.md §15). The router mints W3C traceparent ids for
	// every routed request, records each into an always-on flight recorder,
	// and tracks SLO burn rates over the recorded outcomes. The span tracer is
	// optional (nil = spans off, trace ids still minted and propagated).
	Tracer             *obs.Tracer   // router-side span tracer (nil = ids only)
	FlightRecorderSize int           // request ring entries (0 = 4096, < 0 disables)
	PinThreshold       time.Duration // anomaly latency pin threshold (default 250ms)
	SLOObjective       time.Duration // latency objective for burn rates (default 100ms)
	SLOErrorBudget     float64       // error budget fraction (default 0.01)

	Logger *slog.Logger
}

func (o *Options) withDefaults(nReplicas int) Options {
	v := *o
	if v.HealthInterval <= 0 {
		v.HealthInterval = 500 * time.Millisecond
	}
	if v.HealthTimeout <= 0 {
		v.HealthTimeout = 2 * time.Second
	}
	if v.UnreadyAfter <= 0 {
		v.UnreadyAfter = 2
	}
	if v.AdmissionWait <= 0 {
		v.AdmissionWait = 2 * time.Second
	}
	if v.HedgeMin <= 0 {
		v.HedgeMin = time.Millisecond
	}
	if v.HedgeMax <= 0 {
		v.HedgeMax = 100 * time.Millisecond
	}
	if v.MaxRetries < 0 {
		v.MaxRetries = 0
	} else if v.MaxRetries == 0 {
		v.MaxRetries = 2
	}
	if v.RetryBackoff <= 0 {
		v.RetryBackoff = 2 * time.Millisecond
	}
	if v.VirtualNodes <= 0 {
		v.VirtualNodes = 64
	}
	if v.CreateProbes <= 0 {
		v.CreateProbes = 4 * nReplicas
	}
	if v.DrainPoll <= 0 {
		v.DrainPoll = 20 * time.Millisecond
	}
	if v.Logger == nil {
		v.Logger = slog.Default()
	}
	return v
}

var (
	// ErrNoReplicas rejects an empty pool.
	ErrNoReplicas = errors.New("fleet: no replicas")
	// ErrNoSwap reports a swap request on a pool built without Options.Swap.
	ErrNoSwap = errors.New("fleet: no swap function configured")
	// errAdmission reports an admission queue timeout.
	errAdmission = errors.New("fleet: admission queue full")
)

// Pool is the replica fleet plus its routing, health and admission state.
type Pool struct {
	opt      Options
	replicas []*Replica
	ring     *ring
	met      *fleetMetrics
	mux      *http.ServeMux
	client   *http.Client
	log      *slog.Logger
	start    time.Time

	tr      *obs.Tracer         // router span stream (may be nil)
	fr      *obs.FlightRecorder // always-on request ring (nil when disabled)
	slo     *obs.SLOTracker
	streams []obs.StitchStream // extra span streams for stitched export (inproc replicas)

	global  chan struct{} // fleet-wide admission gate (nil = unlimited)
	readLat *latTracker   // read-path latency ring feeding the hedge delay
	rr      atomic.Uint64 // round-robin cursor for read placement
	keyCtr  atomic.Uint64 // session key mint counter
	keySalt uint64

	swapMu sync.Mutex // serializes rolling swaps

	stop     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
	draining atomic.Bool // router-level drain: new work refused
}

// New builds a pool over the given replica base URLs ("http://host:port").
// Each replica is health-checked once synchronously so the pool starts with a
// real readiness view, then watched on Options.HealthInterval.
func New(urls []string, opt Options) (*Pool, error) {
	if len(urls) == 0 {
		return nil, ErrNoReplicas
	}
	o := (&opt).withDefaults(len(urls))
	p := &Pool{
		opt:   o,
		ring:  newRing(len(urls), o.VirtualNodes),
		met:   newFleetMetrics(),
		log:   o.Logger,
		start: time.Now(),
		stop:  make(chan struct{}),
		// Pool-private transport: generous idle connections per replica so
		// steady-state proxying reuses sockets instead of dialing.
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}},
		readLat: newLatTracker(),
		keySalt: hash64(urls[0] + "|fleet-salt"),
	}
	if o.GlobalInflight > 0 {
		p.global = make(chan struct{}, o.GlobalInflight)
	}
	p.tr = o.Tracer
	if o.FlightRecorderSize >= 0 {
		p.fr = obs.NewFlightRecorder(obs.FlightRecorderOptions{
			Size: o.FlightRecorderSize, PinThreshold: o.PinThreshold, Tracer: p.tr,
		})
	}
	p.slo = obs.NewSLOTracker(obs.SLOOptions{Objective: o.SLOObjective, ErrorBudget: o.SLOErrorBudget})
	p.slo.RegisterMetrics(p.met.reg, "fleet")
	for i, u := range urls {
		r := newReplica(i, u, o.PerReplicaInflight)
		p.replicas = append(p.replicas, r)
		p.checkOnce(r)
	}
	p.met.registerCollectors(p)
	p.buildMux()
	for _, r := range p.replicas {
		p.wg.Add(1)
		go p.healthLoop(r)
	}
	return p, nil
}

// Replicas returns the pool's replicas in ring-index order.
func (p *Pool) Replicas() []*Replica { return p.replicas }

// Metrics returns the pool's obs registry (mounted at /metrics by Handler).
func (p *Pool) Metrics() *obs.Registry { return p.met.reg }

// Tracer returns the router's span tracer (nil when Options.Tracer was nil).
func (p *Pool) Tracer() *obs.Tracer { return p.tr }

// FlightRecorder returns the router's request recorder (nil when disabled).
func (p *Pool) FlightRecorder() *obs.FlightRecorder { return p.fr }

// SLO returns the router's burn-rate tracker.
func (p *Pool) SLO() *obs.SLOTracker { return p.slo }

// AddTraceStream registers an extra span stream for the stitched trace export
// (GET /debug/trace/{trace}) — in inproc mode the router wires each replica's
// tracer here so one request's full router+replica tree exports as one file.
func (p *Pool) AddTraceStream(name string, tr *obs.Tracer) {
	if tr != nil {
		p.streams = append(p.streams, obs.StitchStream{Name: name, Tracer: tr})
	}
}

// SetDraining flips the router-level drain bit: once set, new requests are
// refused with 503 while in-flight ones complete. cmd/insta-router sets it on
// SIGTERM before shutting the listener down.
func (p *Pool) SetDraining(v bool) { p.draining.Store(v) }

// Close stops the health loops and releases the pool's connections. It does
// not touch the replicas themselves — their lifecycle (process, listener)
// belongs to the caller.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.wg.Wait()
	p.client.CloseIdleConnections()
}

// nextKey mints a fresh session routing key: a counter mixed through a
// 64-bit finalizer, formatted as 16 hex digits. Deterministic per pool run
// (so tests can reason about it) yet well spread on the ring.
func (p *Pool) nextKey() string {
	x := p.keyCtr.Add(1) ^ p.keySalt
	// splitmix64 finalizer: full-avalanche mixing of the counter.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	const hexd = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexd[x&0xF]
		x >>= 4
	}
	return string(b[:])
}

// admit acquires the global then the per-replica in-flight slot for one
// session-scoped request, queueing up to AdmissionWait for each. The returned
// release must be called exactly once. Global-before-replica cannot deadlock
// (slot holders are always executing and release in finite time); it can
// head-of-line block a global slot behind one busy replica, which is accepted
// — the configurations this pool ships with keep per-replica ≥ global/N.
func (p *Pool) admit(ctx context.Context, rep *Replica) (func(), error) {
	m := metaFrom(ctx)
	t0 := time.Now()
	sp := m.span().Child("admit")
	var timer *time.Timer
	deadline := func() <-chan time.Time {
		if timer == nil {
			timer = time.NewTimer(p.opt.AdmissionWait)
		}
		return timer.C
	}
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		sp.End()
		m.addQueue(time.Since(t0))
	}()
	if p.global != nil {
		select {
		case p.global <- struct{}{}:
		default:
			p.met.admissionWaiting.Inc()
			select {
			case p.global <- struct{}{}:
				p.met.admissionWaiting.Dec()
			case <-deadline():
				p.met.admissionWaiting.Dec()
				p.met.admissionTimeouts.Inc()
				return nil, errAdmission
			case <-ctx.Done():
				p.met.admissionWaiting.Dec()
				return nil, ctx.Err()
			}
		}
	}
	if rep.slots != nil {
		select {
		case rep.slots <- struct{}{}:
		default:
			p.met.admissionWaiting.Inc()
			select {
			case rep.slots <- struct{}{}:
				p.met.admissionWaiting.Dec()
			case <-deadline():
				p.met.admissionWaiting.Dec()
				if p.global != nil {
					<-p.global
				}
				p.met.admissionTimeouts.Inc()
				return nil, errAdmission
			case <-ctx.Done():
				p.met.admissionWaiting.Dec()
				if p.global != nil {
					<-p.global
				}
				return nil, ctx.Err()
			}
		}
	}
	rep.inflight.Add(1)
	p.met.inflight.Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			rep.inflight.Add(-1)
			p.met.inflight.Dec()
			if rep.slots != nil {
				<-rep.slots
			}
			if p.global != nil {
				<-p.global
			}
		})
	}, nil
}

// fleetMetrics is the router's Prometheus surface, one obs.Registry.
type fleetMetrics struct {
	reg               *obs.Registry
	requests          *obs.CounterVec // fleet_replica_requests_total{replica}
	errors            *obs.CounterVec // fleet_replica_errors_total{replica}
	hedgeFires        *obs.Counter
	hedgeWins         *obs.Counter
	retries           *obs.Counter
	unready           *obs.CounterVec // fleet_unready_transitions_total{replica}
	admissionTimeouts *obs.Counter
	sessionsCreated   *obs.Counter
	createRedraws     *obs.Counter
	swaps             *obs.Counter
	latency           *obs.Histogram
	inflight          *obs.Gauge // admitted session-scoped requests in flight
	admissionWaiting  *obs.Gauge // requests currently queued at the admission gate
}

// latBounds mirrors the serving layer's request-latency buckets.
var latBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

func newFleetMetrics() *fleetMetrics {
	reg := obs.NewRegistry()
	return &fleetMetrics{
		reg:               reg,
		requests:          reg.CounterVec("fleet_replica_requests_total", "replica"),
		errors:            reg.CounterVec("fleet_replica_errors_total", "replica"),
		hedgeFires:        reg.Counter("fleet_hedge_fires_total"),
		hedgeWins:         reg.Counter("fleet_hedge_wins_total"),
		retries:           reg.Counter("fleet_retries_total"),
		unready:           reg.CounterVec("fleet_unready_transitions_total", "replica"),
		admissionTimeouts: reg.Counter("fleet_admission_timeouts_total"),
		sessionsCreated:   reg.Counter("fleet_sessions_created_total"),
		createRedraws:     reg.Counter("fleet_create_redraws_total"),
		swaps:             reg.Counter("fleet_rolling_swaps_total"),
		latency:           reg.Histogram("fleet_request_seconds", latBounds),
		inflight:          reg.Gauge("fleet_inflight"),
		admissionWaiting:  reg.Gauge("fleet_admission_waiting"),
	}
}

// registerCollectors adds the live-state gauges that render from the pool
// rather than stored counters. fleet_inflight and fleet_admission_waiting are
// real gauges maintained by admit/release, not per-scrape snapshot loops.
func (m *fleetMetrics) registerCollectors(p *Pool) {
	m.reg.Collector("fleet_replicas_ready", func(w io.Writer) {
		n := 0
		for _, r := range p.replicas {
			if r.Ready() {
				n++
			}
		}
		fmt.Fprintf(w, "# TYPE fleet_replicas_ready gauge\n")
		fmt.Fprintf(w, "fleet_replicas_ready %d\n", n)
	})
}
