package fleet

// The router's HTTP surface: the same endpoint shapes as one insta-served
// daemon, so a client (or the loadgen) cannot tell a fleet from a single
// replica apart from the session IDs. Session-scoped routes resolve the home
// replica from the ID's embedded key, pass admission, and proxy with bounded
// retry; base reads go through the hedger (hedge.go); /healthz and /metrics
// are answered by the router itself.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// maxBodyBytes caps a buffered proxy body; ECO batches are KBs, so 16 MiB is
// a generous sanity bound, not a tuning knob.
const maxBodyBytes = 16 << 20

var (
	bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	copyPool = sync.Pool{New: func() any { b := make([]byte, 32<<10); return &b }}
)

func (p *Pool) buildMux() {
	mux := http.NewServeMux()
	p.mux = mux
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.HandleFunc("GET /debug/flightrecorder", p.handleFlightRecorder)
	mux.HandleFunc("GET /debug/fleet", p.handleDebugFleet)
	mux.HandleFunc("GET /debug/trace/{trace}", p.handleStitchedTrace)
	// Work routes run inside the observability shell (trace identity, flight
	// recorder, SLO) with the drain gate inside it, so refusals are recorded.
	mux.HandleFunc("GET /slacks", p.obsWrap("slacks", p.gate(p.handleRead)))
	mux.HandleFunc("GET /gradients", p.obsWrap("gradients", p.gate(p.handleRead)))
	mux.HandleFunc("POST /session", p.obsWrap("session-create", p.gate(p.handleCreate)))
	mux.HandleFunc("GET /session/{id}", p.obsWrap("session-get", p.gate(p.proxySession(""))))
	mux.HandleFunc("DELETE /session/{id}", p.obsWrap("session-delete", p.gate(p.proxySession(""))))
	mux.HandleFunc("GET /session/{id}/slacks", p.obsWrap("session-slacks", p.gate(p.proxySession("/slacks"))))
	mux.HandleFunc("POST /session/{id}/eco", p.obsWrap("eco", p.gate(p.proxySession("/eco"))))
	mux.HandleFunc("POST /session/{id}/topo", p.obsWrap("topo", p.gate(p.proxySession("/topo"))))
	mux.HandleFunc("POST /session/{id}/commit", p.obsWrap("commit", p.gate(p.proxySession("/commit"))))
	mux.HandleFunc("POST /session/{id}/rollback", p.obsWrap("rollback", p.gate(p.proxySession("/rollback"))))
	mux.HandleFunc("POST /admin/swap", p.obsWrap("swap", p.handleSwap))
}

// Handler returns the router's root handler.
func (p *Pool) Handler() http.Handler { return p.mux }

// gate refuses new work while the router itself is draining (SIGTERM).
func (p *Pool) gate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeProxyErr(w, http.StatusServiceUnavailable, errors.New("fleet: router draining"))
			return
		}
		h(w, r)
	}
}

// handleCreate places a new session by key redraw: mint a key, hash it to its
// home replica, and — if that replica is unready, draining, session-full or
// over its in-flight cap — mint a *new* key and try again, up to
// Options.CreateProbes times. Redrawing (rather than walking the ring)
// keeps hash(key)→replica exact forever; see ring.go.
func (p *Pool) handleCreate(w http.ResponseWriter, r *http.Request) {
	var lastStatus int
	var lastBody []byte
	var lastErr error
	for probe := 0; probe < p.opt.CreateProbes; probe++ {
		key := p.nextKey()
		rep := p.replicas[p.ring.owner(key)]
		if !rep.Ready() || rep.sessionFull() {
			p.met.createRedraws.Inc()
			continue
		}
		release, err := p.admit(r.Context(), rep)
		if err != nil {
			if errors.Is(err, errAdmission) {
				// This replica's lane is saturated; a redrawn key may land on
				// an idle one.
				p.met.createRedraws.Inc()
				lastErr = err
				continue
			}
			writeProxyErr(w, http.StatusServiceUnavailable, err)
			return
		}
		status, body, err := p.doBuffered(r.Context(), rep, http.MethodPost, "/session", nil, "")
		release()
		if err != nil {
			rep.errors.Add(1)
			p.met.errors.With(rep.idStr).Inc()
			p.met.createRedraws.Inc()
			lastErr = err
			continue
		}
		if status == http.StatusCreated {
			var cr struct {
				ID    string `json:"id"`
				Epoch uint64 `json:"epoch"`
			}
			if err := json.Unmarshal(body, &cr); err != nil || cr.ID == "" {
				writeProxyErr(w, http.StatusBadGateway, errors.New("fleet: malformed create response"))
				return
			}
			p.met.sessionsCreated.Inc()
			m := metaFrom(r.Context())
			m.setShard(key)
			m.place(rep)
			writeCreated(w, key+"."+cr.ID, cr.Epoch, rep.ID)
			return
		}
		// Replica-side refusal (admission cap raced the health view, etc.):
		// remember it and redraw.
		lastStatus, lastBody = status, body
		p.met.createRedraws.Inc()
	}
	if lastStatus != 0 {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(lastStatus)
		_, _ = w.Write(lastBody)
		return
	}
	if lastErr == nil {
		lastErr = errors.New("fleet: no ready replica for new session")
	}
	w.Header().Set("Retry-After", "1")
	writeProxyErr(w, http.StatusServiceUnavailable, lastErr)
}

func writeCreated(w http.ResponseWriter, fid string, epoch uint64, replica int) {
	b, _ := json.Marshal(map[string]any{"id": fid, "epoch": epoch, "replica": replica})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write(append(b, '\n'))
}

// proxySession routes a session-scoped request to the session's home replica:
// split the fleet ID, hash the key, admit, forward with the path rewritten to
// the replica-local ID. Existing sessions route to their owner even when it
// is unready or draining — the state lives nowhere else.
func (p *Pool) proxySession(tail string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key, local, ok := splitFID(r.PathValue("id"))
		if !ok {
			writeProxyErr(w, http.StatusNotFound, errors.New("fleet: malformed session id (want <key>.<local>)"))
			return
		}
		rep := p.replicas[p.ring.owner(key)]
		m := metaFrom(r.Context())
		m.setShard(key)
		m.place(rep)
		release, err := p.admit(r.Context(), rep)
		if err != nil {
			w.Header().Set("Retry-After", "1")
			writeProxyErr(w, http.StatusServiceUnavailable, err)
			return
		}
		defer release()
		p.forward(w, r, rep, "/session/"+local+tail)
	}
}

// handleRead serves the idempotent base reads through the hedger.
func (p *Pool) handleRead(w http.ResponseWriter, r *http.Request) {
	primary := p.pickRead(nil)
	if primary == nil {
		w.Header().Set("Retry-After", "1")
		writeProxyErr(w, http.StatusServiceUnavailable, errors.New("fleet: no ready replicas"))
		return
	}
	p.hedgedRead(w, r, primary)
}

// forward proxies one request to rep with bounded retry: up to MaxRetries
// extra attempts, backoff doubling from RetryBackoff, and a method-aware
// retry predicate (see retriable). The request body is buffered once so
// retries can replay it.
func (p *Pool) forward(w http.ResponseWriter, r *http.Request, rep *Replica, path string) {
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	var body []byte
	if r.Body != nil && r.ContentLength != 0 {
		buf := bodyPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer bodyPool.Put(buf)
		if _, err := io.Copy(buf, io.LimitReader(r.Body, maxBodyBytes+1)); err != nil {
			writeProxyErr(w, http.StatusBadRequest, err)
			return
		}
		if buf.Len() > maxBodyBytes {
			writeProxyErr(w, http.StatusRequestEntityTooLarge, errors.New("fleet: request body too large"))
			return
		}
		body = buf.Bytes()
	}
	m := metaFrom(r.Context())
	t0 := time.Now()
	attempts := 1 + p.opt.MaxRetries
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			backoff := p.opt.RetryBackoff << (a - 1)
			select {
			case <-time.After(backoff):
			case <-r.Context().Done():
				writeProxyErr(w, http.StatusServiceUnavailable, r.Context().Err())
				return
			}
			p.met.retries.Inc()
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, rep.URL()+path, rd)
		if err != nil {
			writeProxyErr(w, http.StatusBadGateway, err)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		asp := m.span().ChildArg("proxy-attempt", "attempt", int64(a))
		if tp := tpFor(asp, m.context()); tp != "" {
			req.Header.Set("Traceparent", tp)
		}
		p.met.requests.With(rep.idStr).Inc()
		rep.requests.Add(1)
		resp, err := p.client.Do(req)
		asp.End()
		if err == nil {
			copyResponse(w, resp)
			p.met.latency.Observe(time.Since(t0).Seconds())
			return
		}
		rep.errors.Add(1)
		p.met.errors.With(rep.idStr).Inc()
		lastErr = err
		if r.Context().Err() != nil || !retriable(r.Method, err) {
			break
		}
	}
	writeProxyErr(w, http.StatusBadGateway, lastErr)
}

// doBuffered performs one request and returns the status and fully read body
// — the create path's helper, where the response is small and must be parsed.
func (p *Pool) doBuffered(ctx context.Context, rep *Replica, method, path string, body io.Reader, contentType string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, rep.URL()+path, body)
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	m := metaFrom(ctx)
	asp := m.span().ChildArg("create-attempt", "replica", int64(rep.ID))
	if tp := tpFor(asp, m.context()); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	p.met.requests.With(rep.idStr).Inc()
	rep.requests.Add(1)
	resp, err := p.client.Do(req)
	asp.End()
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// retriable decides whether a transport error is safe to retry. Connection
// errors on GETs always are (the read is idempotent). Everything else —
// POST /eco, /commit, DELETE — retries only when the error proves the request
// never left the router (a dial failure): a mid-flight connection loss on a
// mutation may have executed on the replica, and replaying it could apply an
// ECO twice.
func retriable(method string, err error) bool {
	var ue *url.Error
	if !errors.As(err, &ue) {
		return false
	}
	if ue.Timeout() {
		return false
	}
	var oe *net.OpError
	isOp := errors.As(err, &oe)
	conn := isOp ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
	if !conn {
		return false
	}
	if method == http.MethodGet {
		return true
	}
	return isOp && oe.Op == "dial"
}

// copyResponse streams the replica's response through, preserving the status
// and the headers that matter to clients.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "Content-Length", "Retry-After", "Content-Disposition"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	bp := copyPool.Get().(*[]byte)
	_, _ = io.CopyBuffer(w, resp.Body, *bp)
	copyPool.Put(bp)
}

func writeProxyErr(w http.ResponseWriter, code int, err error) {
	msg := "fleet: unknown error"
	if err != nil {
		msg = err.Error()
	}
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(b, '\n'))
}

// handleHealthz aggregates the fleet's state: per-replica condition and load,
// plus the router's own view (ready count, hedge delay, drain bit). 503 when
// no replica can take work, so an upstream balancer can see "down".
func (p *Pool) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type repView struct {
		ID           int    `json:"id"`
		URL          string `json:"url"`
		State        string `json:"state"`
		LiveSessions int    `json:"live_sessions"`
		MaxSessions  int    `json:"max_sessions"`
		Headroom     int    `json:"headroom"`
		Inflight     int64  `json:"inflight"` // router-side admitted requests
		Epoch        uint64 `json:"epoch"`
		Err          string `json:"err,omitempty"`
	}
	ready := 0
	views := make([]repView, 0, len(p.replicas))
	for _, rep := range p.replicas {
		h := rep.Health()
		if rep.Ready() {
			ready++
		}
		views = append(views, repView{
			ID: rep.ID, URL: rep.URL(), State: rep.state(),
			LiveSessions: h.LiveSessions, MaxSessions: h.MaxSessions,
			Headroom: h.Headroom, Inflight: rep.inflight.Load(),
			Epoch: h.Epoch, Err: h.Err,
		})
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case ready == 0:
		status, code = "down", http.StatusServiceUnavailable
	case ready < len(p.replicas):
		status = "degraded"
	}
	resp := map[string]any{
		"status":         status,
		"uptime_s":       time.Since(p.start).Seconds(),
		"ready":          ready,
		"replicas":       views,
		"hedge_delay_ms": float64(p.hedgeDelay().Nanoseconds()) / 1e6,
		"draining":       p.draining.Load(),
	}
	if p.slo != nil {
		resp["slo"] = p.slo.Snapshot(time.Now())
	}
	if p.fr != nil {
		resp["flight_recorder"] = map[string]any{
			"size":            p.fr.Size(),
			"total":           p.fr.Total(),
			"pin_threshold_s": p.fr.PinThreshold().Seconds(),
		}
	}
	b, _ := json.Marshal(resp)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(b, '\n'))
}

func (p *Pool) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p.met.reg.WritePrometheus(w)
}

// handleSwap runs a rolling snapshot-swap across the fleet (swap.go). 501
// when the pool was built without a swap function.
func (p *Pool) handleSwap(w http.ResponseWriter, r *http.Request) {
	rep, err := p.RollingSwap(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrNoSwap) {
			code = http.StatusNotImplemented
		}
		writeProxyErr(w, code, err)
		return
	}
	b, _ := json.Marshal(rep)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(b, '\n'))
}
