package fleet

// LocalReplica hosts one replica backend in-process on a real loopback
// listener: the zero-dependency backend for tests, benchmarks and
// cmd/insta-router's inproc mode. The handler is swappable at runtime, which
// is what makes rolling swaps testable without process churn — Options.Swap
// drains the old server.Manager and installs a fresh one behind the same URL.

import (
	"net"
	"net/http"
	"sync/atomic"
)

// LocalReplica is an in-process HTTP backend with an atomically swappable
// handler.
type LocalReplica struct {
	lis net.Listener
	srv *http.Server
	h   atomic.Value // http.Handler
}

// NewLocalReplica serves h on a fresh loopback port.
func NewLocalReplica(h http.Handler) (*LocalReplica, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l := &LocalReplica{lis: lis}
	l.h.Store(&handlerBox{h})
	l.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		l.h.Load().(*handlerBox).h.ServeHTTP(w, r)
	})}
	go func() { _ = l.srv.Serve(lis) }()
	return l, nil
}

// handlerBox keeps atomic.Value happy when different concrete handler types
// are stored across swaps.
type handlerBox struct{ h http.Handler }

// URL returns the replica's base URL.
func (l *LocalReplica) URL() string { return "http://" + l.lis.Addr().String() }

// SetHandler atomically replaces the served handler; in-flight requests
// finish on the old one.
func (l *LocalReplica) SetHandler(h http.Handler) { l.h.Store(&handlerBox{h}) }

// Close shuts the listener down immediately.
func (l *LocalReplica) Close() error { return l.srv.Close() }
