package fleet

// Child-process backend: cmd/insta-router's spawn mode runs each replica as
// a real insta-served process sharing one -snapshot-dir, so the first child
// cold-builds and writes the snapshot and the other N-1 (plus every respawn)
// boot warm from disk in milliseconds. Stop sends SIGTERM — the daemon's
// drain path persists its committed base before exiting — and escalates to
// SIGKILL only past the grace budget.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// Proc is one spawned insta-served child.
type Proc struct {
	Bin  string
	Args []string // full args including -addr
	Addr string   // host:port the child listens on

	cmd  *exec.Cmd
	done chan error // closed result of cmd.Wait
}

// SpawnProc starts bin with args (which must include -addr pointing at addr)
// and waits until its /healthz answers 200 or readyTimeout passes (the child
// is killed on timeout). stdout/stderr pass through to the parent's.
func SpawnProc(ctx context.Context, bin string, args []string, addr string, readyTimeout time.Duration) (*Proc, error) {
	p := &Proc{Bin: bin, Args: args, Addr: addr}
	if err := p.start(ctx, readyTimeout); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Proc) start(ctx context.Context, readyTimeout time.Duration) error {
	cmd := exec.Command(p.Bin, p.Args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fleet: spawn %s: %w", p.Bin, err)
	}
	p.cmd = cmd
	p.done = make(chan error, 1)
	go func() { p.done <- cmd.Wait() }()

	deadline := time.Now().Add(readyTimeout)
	client := &http.Client{Timeout: time.Second}
	for {
		select {
		case err := <-p.done:
			return fmt.Errorf("fleet: replica %s exited during boot: %v", p.Addr, err)
		case <-ctx.Done():
			_ = p.Stop(0)
			return ctx.Err()
		default:
		}
		resp, err := client.Get(p.URL() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			_ = p.Stop(0)
			return fmt.Errorf("fleet: replica %s not ready after %s", p.Addr, readyTimeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// URL returns the child's base URL.
func (p *Proc) URL() string { return "http://" + p.Addr }

// Stop terminates the child: SIGTERM, wait up to grace for the daemon's own
// drain to finish, then SIGKILL. A non-positive grace kills immediately.
func (p *Proc) Stop(grace time.Duration) error {
	if p.cmd == nil || p.cmd.Process == nil {
		return nil
	}
	if grace > 0 {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-p.done:
			return nil
		case <-time.After(grace):
		}
	}
	_ = p.cmd.Process.Kill()
	<-p.done
	return nil
}

// Restart stops the child and boots a fresh one on the same address with the
// same args — the swap primitive for spawn mode (with a shared -snapshot-dir
// the respawn warm-boots into the latest committed snapshot).
func (p *Proc) Restart(ctx context.Context, grace, readyTimeout time.Duration) error {
	if err := p.Stop(grace); err != nil {
		return err
	}
	return p.start(ctx, readyTimeout)
}
