package fleet

// Health checking: one goroutine per replica polls GET /healthz on
// Options.HealthInterval and decodes the load section internal/server
// publishes for exactly this consumer. Readiness is asymmetric by design —
// slow to fall (UnreadyAfter consecutive failures, so one dropped probe
// during a GC pause doesn't flap the replica out), instant to rise (the
// first success re-admits it, so recovery latency is one probe period).

import (
	"context"
	"encoding/json"
	"net/http"
	"time"
)

// healthzLoad mirrors the wire shape of the replica /healthz fields the
// router consumes.
type healthzLoad struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	Epoch    uint64 `json:"epoch"`
	Load     struct {
		LiveSessions int `json:"live_sessions"`
		MaxSessions  int `json:"max_sessions"`
		Headroom     int `json:"headroom"`
		Inflight     int `json:"inflight"`
	} `json:"load"`
}

func (p *Pool) healthLoop(r *Replica) {
	defer p.wg.Done()
	tick := time.NewTicker(p.opt.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.checkOnce(r)
		}
	}
}

// checkOnce probes r once and folds the outcome into its readiness state.
// Returns whether the probe succeeded.
func (p *Pool) checkOnce(r *Replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.opt.HealthTimeout)
	defer cancel()
	h, err := fetchHealthz(ctx, p.client, r.URL())
	if err != nil {
		r.setHealth(Health{OK: false, Err: err.Error()})
		fails := r.fails.Add(1)
		if int(fails) >= p.opt.UnreadyAfter && r.healthy.Swap(false) {
			p.met.unready.With(r.idStr).Inc()
			p.log.Warn("fleet: replica unready", "replica", r.ID, "url", r.URL(), "err", err)
		}
		return false
	}
	r.fails.Store(0)
	r.setHealth(h)
	if !r.healthy.Swap(true) {
		p.log.Info("fleet: replica ready", "replica", r.ID, "url", r.URL(),
			"sessions", h.LiveSessions, "epoch", h.Epoch)
	}
	return true
}

// fetchHealthz performs one /healthz probe and maps it into a Health.
func fetchHealthz(ctx context.Context, client *http.Client, baseURL string) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, &statusError{code: resp.StatusCode}
	}
	var hz healthzLoad
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return Health{}, err
	}
	return Health{
		OK:           true,
		LiveSessions: hz.Load.LiveSessions,
		MaxSessions:  hz.Load.MaxSessions,
		Headroom:     hz.Load.Headroom,
		Inflight:     hz.Load.Inflight,
		Epoch:        hz.Epoch,
	}, nil
}

// statusError is a non-2xx health probe.
type statusError struct{ code int }

func (e *statusError) Error() string { return "fleet: healthz status " + http.StatusText(e.code) }
