package fleet_test

// End-to-end over real backends: two genuine server.Manager replicas built
// from the same design, fronted by the pool. What the stub tests cannot
// check — that the proxied wire shapes are the real serving layer's, that a
// base read through the router is byte-identical to one straight off a
// replica, and that a full session lifecycle (create → ECO preview → session
// slacks → rollback → delete) survives the fleet ID rewrite.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/fleet"
	"insta/internal/server"
)

func TestFleetOverRealServers(t *testing.T) {
	spec, err := bench.BlockSpec("des")
	if err != nil {
		if spec, err = bench.IWLSSpec("des"); err != nil {
			t.Fatalf("unknown preset: %v", err)
		}
	}
	s, err := exp.Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	var urls []string
	for i := 0; i < 2; i++ {
		e, err := core.NewEngine(s.Tab, core.Options{TopK: 8, Workers: 2, Tau: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		mgr := server.NewManager(e, s.Ref, server.Options{MaxSessions: 16})
		lr, err := fleet.NewLocalReplica(server.New(mgr, "des").Handler())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lr.Close() })
		urls = append(urls, lr.URL())
	}
	p, err := fleet.New(urls, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	rt := httptest.NewServer(p.Handler())
	t.Cleanup(rt.Close)

	// A base read through the router must be byte-identical to one straight
	// off a replica — the proxy streams, it does not re-encode.
	direct := getBodyBytes(t, urls[0]+"/slacks")
	routed := getBodyBytes(t, rt.URL+"/slacks")
	if !bytes.Equal(direct, routed) {
		t.Fatalf("routed base read differs from direct read:\ndirect: %.200s\nrouted: %.200s", direct, routed)
	}

	// Full session lifecycle through the fleet ID rewrite, with a real
	// resize-form ECO resolved via the reference netlist.
	fid := createSession(t, rt.URL)
	cl := bench.Changelist(s.B, 7, 1)
	eco := server.ECORequest{Resizes: []server.ResizeReq{{
		Cell: s.B.D.Cells[cl[0].Cell].Name,
		Lib:  s.B.Lib.Cell(cl[0].NewLib).Name,
	}}}
	body, _ := json.Marshal(eco)
	if code := do(t, http.MethodPost, rt.URL+"/session/"+fid+"/eco", body); code != http.StatusOK {
		t.Fatalf("eco through router: status %d", code)
	}
	var sl struct {
		WNS        float64 `json:"wns"`
		Violations int     `json:"violations"`
		Slacks     []any   `json:"slacks"`
	}
	resp, err := http.Get(rt.URL + "/session/" + fid + "/slacks")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session slacks through router: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sl.Slacks) == 0 {
		t.Fatal("session slacks empty through router")
	}
	if code := do(t, http.MethodPost, rt.URL+"/session/"+fid+"/rollback", nil); code != http.StatusOK {
		t.Fatalf("rollback through router: status %d", code)
	}
	if code := do(t, http.MethodDelete, rt.URL+"/session/"+fid, nil); code != http.StatusOK {
		t.Fatalf("delete through router: status %d", code)
	}

	// The replicas end the test with no resident sessions. Health() is the
	// cached last probe, which may predate the delete — wait for a probe
	// that has seen it.
	for _, r := range p.Replicas() {
		eventually(t, time.Second, "replica session count to drain", func() bool {
			h := r.Health()
			return !h.OK || h.LiveSessions == 0
		})
	}
}

func getBodyBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
