package fleet_test

// Behavior tests for the pool against stub replicas: a stub implements just
// enough of the insta-served surface (create/session routes that 404 for
// sessions they don't own, /healthz with the load section) that misrouting,
// dropped sessions and admission bugs all turn into visible status codes.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"insta/internal/fleet"
)

// stubBackend emulates one insta-served replica.
type stubBackend struct {
	mu       sync.Mutex
	sessions map[string]bool
	next     int
	created  int

	max       int          // session cap (0 = unlimited)
	gen       int          // generation marker, bumped by swaps
	baseDelay atomic.Int64 // ns sleep on GET /slacks and /gradients
	sessDelay atomic.Int64 // ns sleep on session-scoped routes
	healthErr atomic.Bool  // /healthz answers 500

	h http.Handler
}

func newStub(max, gen int) *stubBackend {
	s := &stubBackend{sessions: make(map[string]bool), max: max, gen: gen}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.healthErr.Load() {
			http.Error(w, "unhealthy", http.StatusInternalServerError)
			return
		}
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		head := s.max - n
		if s.max == 0 {
			head = 1 << 20
		}
		writeStubJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "sessions": n, "epoch": s.gen,
			"load": map[string]any{
				"live_sessions": n, "max_sessions": s.max,
				"headroom": head, "inflight": 0,
			},
		})
	})
	mux.HandleFunc("POST /session", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.max > 0 && len(s.sessions) >= s.max {
			w.Header().Set("Retry-After", "1")
			writeStubJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "too many sessions"})
			return
		}
		s.next++
		s.created++
		id := fmt.Sprintf("s%d", s.next)
		s.sessions[id] = true
		writeStubJSON(w, http.StatusCreated, map[string]any{"id": id, "epoch": s.gen})
	})
	read := func(w http.ResponseWriter, r *http.Request) {
		if d := s.baseDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		writeStubJSON(w, http.StatusOK, map[string]any{"wns": -1.0, "gen": s.gen})
	}
	mux.HandleFunc("GET /slacks", read)
	mux.HandleFunc("GET /gradients", read)
	sess := func(close bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if d := s.sessDelay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			id := r.PathValue("id")
			s.mu.Lock()
			ok := s.sessions[id]
			if ok && close {
				delete(s.sessions, id)
			}
			s.mu.Unlock()
			if !ok {
				writeStubJSON(w, http.StatusNotFound, map[string]any{"error": "no such session"})
				return
			}
			writeStubJSON(w, http.StatusOK, map[string]any{"id": id, "gen": s.gen})
		}
	}
	mux.HandleFunc("GET /session/{id}", sess(false))
	mux.HandleFunc("DELETE /session/{id}", sess(true))
	mux.HandleFunc("GET /session/{id}/slacks", sess(false))
	mux.HandleFunc("POST /session/{id}/eco", sess(false))
	mux.HandleFunc("POST /session/{id}/commit", sess(false))
	mux.HandleFunc("POST /session/{id}/rollback", sess(false))
	s.h = mux
	return s
}

func (s *stubBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

func (s *stubBackend) liveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *stubBackend) createdCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.created
}

func writeStubJSON(w http.ResponseWriter, code int, v any) {
	b, _ := json.Marshal(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(b, '\n'))
}

// fastOpts are pool options tuned for test wall-time: 10ms health period so
// readiness transitions land within a few tens of ms.
func fastOpts() fleet.Options {
	return fleet.Options{
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		UnreadyAfter:   2,
		DrainPoll:      5 * time.Millisecond,
		HedgeMin:       5 * time.Millisecond,
		HedgeMax:       20 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	}
}

// newStubFleet stands up n stub replicas behind a pool and an HTTP router.
func newStubFleet(t *testing.T, n int, opt fleet.Options) (*fleet.Pool, []*stubBackend, []*fleet.LocalReplica, string) {
	t.Helper()
	stubs := make([]*stubBackend, n)
	locals := make([]*fleet.LocalReplica, n)
	urls := make([]string, n)
	for i := range stubs {
		stubs[i] = newStub(0, 1)
		lr, err := fleet.NewLocalReplica(stubs[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lr.Close() })
		locals[i] = lr
		urls[i] = lr.URL()
	}
	p, err := fleet.New(urls, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	rt := httptest.NewServer(p.Handler())
	t.Cleanup(rt.Close)
	return p, stubs, locals, rt.URL
}

func createSession(t *testing.T, base string) string {
	t.Helper()
	fid, code := tryCreate(t, base)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return fid
}

func tryCreate(t *testing.T, base string) (string, int) {
	t.Helper()
	resp, err := http.Post(base+"/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&cr)
	return cr.ID, resp.StatusCode
}

func do(t *testing.T, method, url string, body []byte) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return -1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// grepMetric returns the exposition lines mentioning substr, for failure
// messages.
func grepMetric(met, substr string) string {
	var out []string
	for _, ln := range strings.Split(met, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionAffinity pins the tentpole routing property: every request for
// a session reaches the replica holding it. The stubs 404 for sessions they
// don't own, so a single misroute fails loudly.
func TestSessionAffinity(t *testing.T) {
	_, stubs, _, base := newStubFleet(t, 3, fastOpts())
	var fids []string
	for i := 0; i < 30; i++ {
		fid := createSession(t, base)
		if !strings.Contains(fid, ".") {
			t.Fatalf("fleet session id %q lacks the routing key", fid)
		}
		fids = append(fids, fid)
	}
	for _, fid := range fids {
		for rep := 0; rep < 3; rep++ { // repeated requests must stay home
			if code := do(t, http.MethodGet, base+"/session/"+fid, nil); code != http.StatusOK {
				t.Fatalf("session %s misrouted: status %d", fid, code)
			}
		}
		if code := do(t, http.MethodPost, base+"/session/"+fid+"/eco", []byte("{}")); code != http.StatusOK {
			t.Fatalf("eco on %s misrouted: status %d", fid, code)
		}
	}
	spread := 0
	for _, s := range stubs {
		if s.createdCount() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("30 sessions all landed on one replica — ring not spreading")
	}
	for _, fid := range fids {
		if code := do(t, http.MethodDelete, base+"/session/"+fid, nil); code != http.StatusOK {
			t.Fatalf("delete %s: status %d", fid, code)
		}
	}
}

// TestMalformedSessionID: an ID without an embedded routing key is
// unroutable and must 404 at the router, not panic or hit a random replica.
func TestMalformedSessionID(t *testing.T) {
	_, _, _, base := newStubFleet(t, 2, fastOpts())
	if code := do(t, http.MethodGet, base+"/session/nokey", nil); code != http.StatusNotFound {
		t.Fatalf("malformed id: status %d, want 404", code)
	}
}

// TestCreateAvoidsUnready: a replica that never passed a health check
// receives no sessions; creates redraw their keys past it.
func TestCreateAvoidsUnready(t *testing.T) {
	opt := fastOpts()
	stubs := []*stubBackend{newStub(0, 1), newStub(0, 1), newStub(0, 1)}
	stubs[1].healthErr.Store(true) // down before the pool ever sees it
	var urls []string
	for _, s := range stubs {
		lr, err := fleet.NewLocalReplica(s)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lr.Close() })
		urls = append(urls, lr.URL())
	}
	p, err := fleet.New(urls, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	rt := httptest.NewServer(p.Handler())
	t.Cleanup(rt.Close)

	for i := 0; i < 20; i++ {
		createSession(t, rt.URL)
	}
	if n := stubs[1].createdCount(); n != 0 {
		t.Fatalf("unready replica received %d sessions", n)
	}

	// Recovery: the first passing probe re-admits it, and creates reach it
	// again (keys are redrawn until one lands there).
	stubs[1].healthErr.Store(false)
	eventually(t, 2*time.Second, "replica 1 ready", func() bool { return p.Replicas()[1].Ready() })
	eventually(t, 2*time.Second, "replica 1 receives sessions", func() bool {
		createSession(t, rt.URL)
		return stubs[1].createdCount() > 0
	})
}

// TestUnreadyAfterConsecutiveFailures: readiness needs UnreadyAfter strikes,
// then recovers on the first success; transitions are counted.
func TestUnreadyAfterConsecutiveFailures(t *testing.T) {
	p, stubs, _, base := newStubFleet(t, 2, fastOpts())
	eventually(t, time.Second, "both ready", func() bool {
		return p.Replicas()[0].Ready() && p.Replicas()[1].Ready()
	})
	stubs[0].healthErr.Store(true)
	eventually(t, 2*time.Second, "replica 0 unready", func() bool { return !p.Replicas()[0].Ready() })
	if !strings.Contains(metricsText(t, base), `fleet_unready_transitions_total{replica="0"} 1`) {
		t.Fatal("unready transition not counted")
	}
	stubs[0].healthErr.Store(false)
	eventually(t, 2*time.Second, "replica 0 re-admitted", func() bool { return p.Replicas()[0].Ready() })
}

// TestAdmissionTimeout: with a global in-flight cap of 1 and a short queue
// budget, a second session-scoped request behind a slow one is refused with
// 503 + Retry-After and counted, instead of queueing without bound.
func TestAdmissionTimeout(t *testing.T) {
	opt := fastOpts()
	opt.GlobalInflight = 1
	opt.AdmissionWait = 30 * time.Millisecond
	p, stubs, _, base := newStubFleet(t, 1, opt)
	_ = p
	fid := createSession(t, base)
	stubs[0].sessDelay.Store(int64(400 * time.Millisecond))

	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(base + "/session/" + fid + "/slacks")
			if err != nil {
				codes <- -1
				return
			}
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				codes <- -2
				resp.Body.Close()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
		time.Sleep(20 * time.Millisecond) // let the first one occupy the slot
	}
	got := []int{<-codes, <-codes}
	ok200, rej := 0, 0
	for _, c := range got {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusServiceUnavailable:
			rej++
		case -2:
			t.Fatal("admission 503 without Retry-After")
		}
	}
	if ok200 != 1 || rej != 1 {
		t.Fatalf("want one 200 and one 503, got %v", got)
	}
	if !strings.Contains(metricsText(t, base), "fleet_admission_timeouts_total 1") {
		t.Fatal("admission timeout not counted")
	}
	stubs[0].sessDelay.Store(0)
}

// TestHedgedReadCutsStraggler: with one replica sleeping 300ms on base
// reads, every read must still finish fast — the hedge fires after the
// p95-derived delay and the fast replica's answer wins.
func TestHedgedReadCutsStraggler(t *testing.T) {
	p, stubs, _, base := newStubFleet(t, 2, fastOpts())
	_ = p
	stubs[0].baseDelay.Store(int64(300 * time.Millisecond))
	for i := 0; i < 20; i++ {
		t0 := time.Now()
		if code := do(t, http.MethodGet, base+"/slacks", nil); code != http.StatusOK {
			t.Fatalf("read %d: status %d", i, code)
		}
		if d := time.Since(t0); d > 200*time.Millisecond {
			t.Fatalf("read %d took %v — hedge did not rescue it", i, d)
		}
	}
	met := metricsText(t, base)
	if !strings.Contains(met, "fleet_hedge_fires_total") || strings.Contains(met, "fleet_hedge_fires_total 0\n") {
		t.Fatalf("no hedges fired:\n%s", grepMetric(met, "fleet_hedge"))
	}
	if strings.Contains(met, "fleet_hedge_wins_total 0\n") {
		t.Fatalf("hedges fired but never won:\n%s", grepMetric(met, "fleet_hedge"))
	}
}

// TestReadFailoverOnDeadReplica: a replica that dies between health probes
// (probe period cranked to 1h) costs a read one failed attempt, not an
// error: the router fails over to the live replica immediately.
func TestReadFailoverOnDeadReplica(t *testing.T) {
	opt := fastOpts()
	opt.HealthInterval = time.Hour // freeze the readiness view
	opt.DisableHedge = true        // isolate the failover path
	p, _, locals, base := newStubFleet(t, 2, opt)
	if !p.Replicas()[0].Healthy() || !p.Replicas()[1].Healthy() {
		t.Fatal("replicas not healthy after construction")
	}
	locals[0].Close()
	for i := 0; i < 10; i++ {
		if code := do(t, http.MethodGet, base+"/slacks", nil); code != http.StatusOK {
			t.Fatalf("read %d: status %d, want failover to live replica", i, code)
		}
	}
	if !strings.Contains(metricsText(t, base), "fleet_retries_total") {
		t.Fatal("retries family missing")
	}
	if strings.Contains(metricsText(t, base), "fleet_retries_total 0\n") {
		t.Fatal("dead-replica reads never failed over")
	}
}

// TestRollingSwapZeroDroppedSessions is the deploy story end to end: workers
// churn sessions through the router while every replica is drained and its
// handler swapped for a new generation. Zero session-scoped failures and
// all replicas on the new generation afterwards.
func TestRollingSwapZeroDroppedSessions(t *testing.T) {
	opt := fastOpts()
	var swapped atomic.Int32
	var localsRef []*fleet.LocalReplica
	opt.Swap = func(ctx context.Context, r *fleet.Replica) error {
		localsRef[r.ID].SetHandler(newStub(0, 2))
		swapped.Add(1)
		return nil
	}
	_, _, locals, base := newStubFleet(t, 3, opt)
	localsRef = locals

	stop := make(chan struct{})
	var drops, errs atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fid, code := tryCreate(t, base)
				if code != http.StatusCreated {
					errs.Add(1)
					continue
				}
				for op := 0; op < 3; op++ {
					if c := do(t, http.MethodGet, base+"/session/"+fid+"/slacks", nil); c != http.StatusOK {
						drops.Add(1)
					}
				}
				if c := do(t, http.MethodDelete, base+"/session/"+fid, nil); c != http.StatusOK {
					drops.Add(1)
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let load build
	rep, err := swapViaAdmin(t, base)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("rolling swap: %v", err)
	}
	if rep.Swapped != 3 || swapped.Load() != 3 {
		t.Fatalf("swapped %d/%d replicas: %+v", rep.Swapped, swapped.Load(), rep)
	}
	if d := drops.Load(); d != 0 {
		t.Fatalf("%d session-scoped requests dropped during rolling swap", d)
	}
	if e := errs.Load(); e != 0 {
		t.Fatalf("%d creates failed during rolling swap", e)
	}
	// Every replica serves the new generation now.
	for i := 0; i < 3; i++ {
		var out struct {
			Gen int `json:"gen"`
		}
		resp, err := http.Get(locals[i].URL() + "/slacks")
		if err != nil {
			t.Fatal(err)
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if out.Gen != 2 {
			t.Fatalf("replica %d still on generation %d after swap", i, out.Gen)
		}
	}
	if !strings.Contains(metricsText(t, base), "fleet_rolling_swaps_total 3") {
		t.Fatal("swap counter wrong")
	}
}

// swapViaAdmin triggers POST /admin/swap and decodes the report.
func swapViaAdmin(t *testing.T, base string) (*fleet.SwapReport, error) {
	t.Helper()
	resp, err := http.Post(base+"/admin/swap", "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("swap status %d: %s", resp.StatusCode, b)
	}
	var rep fleet.SwapReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// TestRouterHealthzAggregation: the router's /healthz reflects per-replica
// state and degrades when a replica drops out.
func TestRouterHealthzAggregation(t *testing.T) {
	p, stubs, _, base := newStubFleet(t, 2, fastOpts())
	var hz struct {
		Status   string `json:"status"`
		Ready    int    `json:"ready"`
		Replicas []struct {
			State string `json:"state"`
		} `json:"replicas"`
	}
	getHZ := func() {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
	}
	getHZ()
	if hz.Status != "ok" || hz.Ready != 2 || len(hz.Replicas) != 2 {
		t.Fatalf("healthy fleet healthz wrong: %+v", hz)
	}
	stubs[0].healthErr.Store(true)
	eventually(t, 2*time.Second, "degraded", func() bool { return !p.Replicas()[0].Ready() })
	getHZ()
	if hz.Status != "degraded" || hz.Ready != 1 {
		t.Fatalf("degraded fleet healthz wrong: %+v", hz)
	}
}

// TestRouterDrainGate: once the router drains (SIGTERM path), new work is
// refused with 503 + Retry-After while probes keep answering.
func TestRouterDrainGate(t *testing.T) {
	pool, _, _, base := newStubFleet(t, 1, fastOpts())
	pool.SetDraining(true)
	resp, err := http.Post(base+"/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining router create: status %d, Retry-After %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code := do(t, http.MethodGet, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("draining router healthz: %d", code)
	}
}
