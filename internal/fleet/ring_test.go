package fleet

import "testing"

// TestRingStableOwnership pins the core routing invariant: ownership is a
// pure function of the key and the fleet size — two independently built
// rings agree, and the answer never changes across calls. Fleet session IDs
// outlive router restarts, so this is a wire-compatibility property, not an
// implementation detail.
func TestRingStableOwnership(t *testing.T) {
	a := newRing(4, 64)
	b := newRing(4, 64)
	for i := 0; i < 1000; i++ {
		key := (&Pool{keySalt: 12345}).nextKey()
		if a.owner(key) != b.owner(key) {
			t.Fatalf("rings disagree on %q: %d vs %d", key, a.owner(key), b.owner(key))
		}
		if a.owner(key) != a.owner(key) {
			t.Fatalf("ring unstable on %q", key)
		}
	}
}

// TestRingDistribution checks virtual nodes do their job: minted keys spread
// across a 4-replica ring with no replica further than 2× from its fair
// share (64 vnodes keeps real imbalance within a few percent; the bound here
// is loose so the test never flakes on a new key schedule).
func TestRingDistribution(t *testing.T) {
	rg := newRing(4, 64)
	p := &Pool{keySalt: hash64("dist-test")}
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[rg.owner(p.nextKey())]++
	}
	for rep, c := range counts {
		if c < n/8 || c > n/2 {
			t.Fatalf("replica %d owns %d/%d keys — ring badly imbalanced: %v", rep, c, n, counts)
		}
	}
}

// TestRingOwnerCoversRange exercises the wrap-around: keys hashing past the
// highest ring point must map to the lowest point's owner, not panic or
// fall off the end.
func TestRingOwnerCoversRange(t *testing.T) {
	rg := newRing(3, 8)
	for i := 0; i < 10000; i++ {
		key := (&Pool{keySalt: uint64(i)}).nextKey()
		if o := rg.owner(key); o < 0 || o > 2 {
			t.Fatalf("owner(%q) = %d out of range", key, o)
		}
	}
}

func TestSplitFID(t *testing.T) {
	cases := []struct {
		fid, key, local string
		ok              bool
	}{
		{"f3a09b12.s4", "f3a09b12", "s4", true},
		{"abc.s1.extra", "abc", "s1.extra", true}, // split at the first dot
		{"nodot", "", "", false},
		{".s4", "", "", false},
		{"abc.", "", "", false},
		{"", "", "", false},
	}
	for _, c := range cases {
		key, local, ok := splitFID(c.fid)
		if ok != c.ok || key != c.key || local != c.local {
			t.Fatalf("splitFID(%q) = %q, %q, %v; want %q, %q, %v",
				c.fid, key, local, ok, c.key, c.local, c.ok)
		}
	}
}

// TestNextKeyUnique guards the mint: 16 hex digits, no repeats within a run.
func TestNextKeyUnique(t *testing.T) {
	p := &Pool{keySalt: hash64("unique")}
	seen := make(map[string]bool, 10000)
	for i := 0; i < 10000; i++ {
		k := p.nextKey()
		if len(k) != 16 {
			t.Fatalf("key %q: want 16 hex digits", k)
		}
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
}
