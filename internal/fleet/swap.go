package fleet

// Rolling snapshot-swap: restart every replica on a new snapshot, one at a
// time, without dropping a single session. The sequence per replica:
//
//  1. mark it draining — new sessions divert to redrawn keys elsewhere,
//     while its resident sessions keep being served in place;
//  2. wait until it is quiescent: the router's admitted in-flight count hits
//     zero AND the replica's own /healthz reports zero live sessions (the
//     load fields added for exactly this — the replica itself knows when its
//     last session closed, the router only knows what it routed);
//  3. call Options.Swap, which restarts the backend (process SIGTERM+respawn,
//     in-process handler swap, ...) on the new snapshot — the backend's own
//     drain path persists its committed base first (server.Drain);
//  4. wait for the health check to pass again, then clear draining.
//
// Zero dropped sessions falls out of step 2: no session-scoped request can
// be in flight or arrive later for a replica with no live sessions, because
// sessions are created on, and permanently routed to, exactly one replica.
// The guarantee assumes sessions close in bounded time (clients DELETE them,
// or the replica's idle TTL sweeps them); RollingSwap otherwise waits until
// ctx expires and reports the stall.

import (
	"context"
	"fmt"
	"time"
)

// SwapReport summarizes one rolling swap.
type SwapReport struct {
	Replicas int       `json:"replicas"`
	Swapped  int       `json:"swapped"`
	DrainMS  []float64 `json:"drain_ms"` // per-replica quiescence wait
	TotalMS  float64   `json:"total_ms"`
}

// RollingSwap drains and swaps every replica in turn. On error (or ctx
// expiry) the partially swapped fleet keeps serving — replicas already
// swapped stay swapped, the failing replica's draining bit is cleared so it
// rejoins placement, and the report says how far the roll got.
func (p *Pool) RollingSwap(ctx context.Context) (*SwapReport, error) {
	if p.opt.Swap == nil {
		return nil, ErrNoSwap
	}
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	t0 := time.Now()
	report := &SwapReport{Replicas: len(p.replicas)}
	for _, r := range p.replicas {
		r.draining.Store(true)
		d0 := time.Now()
		if err := p.awaitQuiescent(ctx, r); err != nil {
			r.draining.Store(false)
			report.TotalMS = msSince(t0)
			return report, fmt.Errorf("fleet: drain replica %d: %w", r.ID, err)
		}
		report.DrainMS = append(report.DrainMS, msSince(d0))
		p.log.Info("fleet: swapping replica", "replica", r.ID, "drained_ms", msSince(d0))
		if err := p.opt.Swap(ctx, r); err != nil {
			r.draining.Store(false)
			report.TotalMS = msSince(t0)
			return report, fmt.Errorf("fleet: swap replica %d: %w", r.ID, err)
		}
		if err := p.awaitReady(ctx, r); err != nil {
			r.draining.Store(false)
			report.TotalMS = msSince(t0)
			return report, fmt.Errorf("fleet: replica %d not ready after swap: %w", r.ID, err)
		}
		r.draining.Store(false)
		report.Swapped++
		p.met.swaps.Inc()
	}
	report.TotalMS = msSince(t0)
	return report, nil
}

// awaitQuiescent polls until r has no admitted in-flight requests and
// reports no live sessions.
func (p *Pool) awaitQuiescent(ctx context.Context, r *Replica) error {
	for {
		if r.inflight.Load() == 0 && p.checkOnce(r) {
			h := r.Health()
			if h.OK && h.LiveSessions == 0 && h.Inflight == 0 {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(p.opt.DrainPoll):
		}
	}
}

// awaitReady polls until r's health check passes on its (possibly new) URL.
func (p *Pool) awaitReady(ctx context.Context, r *Replica) error {
	for {
		if p.checkOnce(r) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(p.opt.DrainPoll):
		}
	}
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }
