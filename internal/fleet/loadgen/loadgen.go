// Package loadgen is a closed-loop load generator for the serving surface —
// one insta-served daemon or a fleet router, which expose the same API. A
// fixed number of workers each keep exactly one request outstanding
// (closed-loop: the next request starts when the previous response lands),
// cycling through a weighted mix of session-scoped ECO previews,
// session-scoped slack reads and stateless base reads, with sessions closed
// and recreated every SessionOps operations so placement and drain paths see
// churn rather than a static population.
//
// Closed-loop matters for what the numbers mean: with concurrency C, the
// offered load self-regulates to the service rate, so latency quantiles
// measure queueing under a fixed multiprogramming level — the regime the
// fleet's admission control is designed for — rather than open-loop overload
// collapse. Latencies are recorded allocation-free per worker
// (bench.LatencyRecorder) and merged for fleet-level p50/p99/p999.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"insta/internal/bench"
	"insta/internal/obs"
)

// Op kinds in the mix.
const (
	opECO         = iota // POST /session/{id}/eco
	opSessionRead        // GET /session/{id}/slacks
	opBaseRead           // GET /slacks
)

// Mix weighs the op kinds; zero values fall back to 8/1/1 (ECO-dominant,
// matching an optimizer inner loop that previews constantly and reads
// occasionally).
type Mix struct {
	ECO         int
	SessionRead int
	BaseRead    int
}

// Options configures one run.
type Options struct {
	Concurrency int           // workers, each with one request outstanding (default 4)
	Ops         int           // total ops across all workers (default 100)
	SessionOps  int           // session-scoped ops per session before close+recreate (default 10)
	Mix         Mix           // op mix weights
	Bodies      [][]byte      // ECO request bodies, cycled per worker (required when Mix.ECO > 0)
	Timeout     time.Duration // per-request budget (default 30s)
}

// slowN bounds the per-run (and per-worker) slowest-request capture.
const slowN = 8

// SlowRequest identifies one of the slowest successful requests of a run by
// its distributed trace ID — the handle for pulling the stitched Chrome trace
// from the router's GET /debug/trace/{trace} endpoint after the run, while
// the span streams are still in the tracer rings. Only requests whose
// response carried a Traceparent echo are eligible (a bare daemon with
// observability disabled returns none).
type SlowRequest struct {
	Us    int64  `json:"us"`
	Route string `json:"route"`
	Trace string `json:"trace"`
}

// Report is one run's outcome.
type Report struct {
	Ops             int     `json:"ops"`
	Errors          int     `json:"errors"`
	DroppedSessions int     `json:"dropped_sessions"`
	SessionsCreated int     `json:"sessions_created"`
	SessionsClosed  int     `json:"sessions_closed"`
	CreateRetries   int     `json:"create_retries"`
	WallMS          float64 `json:"wall_ms"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	P50Us           int64   `json:"p50_us"`
	P99Us           int64   `json:"p99_us"`
	P999Us          int64   `json:"p999_us"`
	// Base-read-only quantiles, the hedging target.
	ReadP50Us  int64 `json:"read_p50_us"`
	ReadP99Us  int64 `json:"read_p99_us"`
	ReadP999Us int64 `json:"read_p999_us"`
	// Slowest holds the run's slowN slowest successful requests (latency
	// descending) with their trace IDs, so a bench report doubles as a
	// worklist for post-hoc stitched-trace debugging.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// worker is one closed-loop client.
type worker struct {
	id      int
	base    string
	client  *http.Client
	opt     *Options
	pattern []int
	lat     *bench.LatencyRecorder
	readLat *bench.LatencyRecorder
	slow    []SlowRequest // worker-local top-slowN by latency, unordered

	sid     string // current fleet/daemon session ID ("" = none)
	sessOps int

	errors          atomic.Int64
	dropped         atomic.Int64
	sessionsCreated int
	sessionsClosed  int
	createRetries   int
}

// Run drives the generator against baseURL until the op budget is spent or
// ctx is cancelled (cancellation is a normal end: the report covers the ops
// completed so far — how the rolling-swap bench bounds its load phase). The
// error is non-nil only for configuration problems; request failures are
// counted in the report instead.
func Run(ctx context.Context, baseURL string, opt Options) (*Report, error) {
	o := opt
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Ops <= 0 {
		o.Ops = 100
	}
	if o.SessionOps <= 0 {
		o.SessionOps = 10
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Mix.ECO == 0 && o.Mix.SessionRead == 0 && o.Mix.BaseRead == 0 {
		o.Mix = Mix{ECO: 8, SessionRead: 1, BaseRead: 1}
	}
	if o.Mix.ECO > 0 && len(o.Bodies) == 0 {
		return nil, errors.New("loadgen: Mix.ECO > 0 needs Options.Bodies")
	}
	pattern := buildPattern(o.Mix)

	client := &http.Client{
		Timeout: o.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        2 * o.Concurrency,
			MaxIdleConnsPerHost: 2 * o.Concurrency,
		},
	}
	defer client.CloseIdleConnections()

	perWorker := o.Ops / o.Concurrency
	if perWorker == 0 {
		perWorker = 1
	}
	workers := make([]*worker, o.Concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := range workers {
		w := &worker{
			id: i, base: baseURL, client: client, opt: &o, pattern: pattern,
			lat:     bench.NewLatencyRecorder(perWorker + 1),
			readLat: bench.NewLatencyRecorder(perWorker + 1),
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(ctx, perWorker)
		}()
	}
	wg.Wait()
	wall := time.Since(t0)

	rep := &Report{WallMS: float64(wall.Nanoseconds()) / 1e6}
	lat := bench.NewLatencyRecorder(o.Concurrency * (perWorker + 1))
	readLat := bench.NewLatencyRecorder(o.Concurrency * (perWorker + 1))
	for _, w := range workers {
		lat.Merge(w.lat)
		readLat.Merge(w.readLat)
		rep.Errors += int(w.errors.Load())
		rep.DroppedSessions += int(w.dropped.Load())
		rep.SessionsCreated += w.sessionsCreated
		rep.SessionsClosed += w.sessionsClosed
		rep.CreateRetries += w.createRetries
		rep.Slowest = append(rep.Slowest, w.slow...)
	}
	sort.Slice(rep.Slowest, func(a, b int) bool { return rep.Slowest[a].Us > rep.Slowest[b].Us })
	if len(rep.Slowest) > slowN {
		rep.Slowest = rep.Slowest[:slowN]
	}
	rep.Ops = lat.Count()
	if wall > 0 {
		rep.OpsPerSec = float64(rep.Ops) / wall.Seconds()
	}
	rep.P50Us = lat.QuantileUs(0.50)
	rep.P99Us = lat.QuantileUs(0.99)
	rep.P999Us = lat.QuantileUs(0.999)
	rep.ReadP50Us = readLat.QuantileUs(0.50)
	rep.ReadP99Us = readLat.QuantileUs(0.99)
	rep.ReadP999Us = readLat.QuantileUs(0.999)
	return rep, nil
}

// buildPattern unrolls the mix weights into a repeating op schedule,
// interleaved (e.g. 8/1/1 → eco×8, sread, bread) so every worker exercises
// all kinds throughout the run rather than in phases.
func buildPattern(m Mix) []int {
	var p []int
	for i := 0; i < m.ECO; i++ {
		p = append(p, opECO)
	}
	for i := 0; i < m.SessionRead; i++ {
		p = append(p, opSessionRead)
	}
	for i := 0; i < m.BaseRead; i++ {
		p = append(p, opBaseRead)
	}
	return p
}

func (w *worker) run(ctx context.Context, ops int) {
	bodyIdx := w.id // stagger body schedules across workers
	for i := 0; i < ops; i++ {
		if ctx.Err() != nil {
			break
		}
		kind := w.pattern[i%len(w.pattern)]
		if kind != opBaseRead && w.sid == "" {
			if !w.createSession(ctx) {
				if ctx.Err() != nil {
					break
				}
				w.errors.Add(1)
				continue
			}
		}
		var (
			method, path, route string
			body                []byte
		)
		switch kind {
		case opECO:
			method, path, route = http.MethodPost, "/session/"+w.sid+"/eco", "eco"
			body = w.opt.Bodies[bodyIdx%len(w.opt.Bodies)]
			bodyIdx++
		case opSessionRead:
			method, path, route = http.MethodGet, "/session/"+w.sid+"/slacks", "session-slacks"
		case opBaseRead:
			method, path, route = http.MethodGet, "/slacks", "slacks"
		}
		t0 := time.Now()
		code, trace, err := w.do(ctx, method, path, body)
		d := time.Since(t0)
		if err != nil || code != http.StatusOK {
			if ctx.Err() != nil {
				// Cancellation is a normal end of run, not a failure.
				break
			}
			w.errors.Add(1)
			if kind != opBaseRead {
				// A session-scoped failure after a successful create is a
				// dropped session — the routed replica lost or refused state
				// it owned. This is the rolling-swap gate's zero.
				w.dropped.Add(1)
				w.closeSession(ctx) // best-effort; forget it either way
			}
			continue
		}
		w.lat.Record(d)
		w.noteSlow(d, route, trace)
		if kind == opBaseRead {
			w.readLat.Record(d)
		}
		if kind != opBaseRead {
			w.sessOps++
			if w.sessOps >= w.opt.SessionOps {
				w.closeSession(ctx)
			}
		}
	}
	w.closeSession(ctx)
}

// createSession opens a session, honoring 503 + Retry-After with a short
// bounded backoff (the admission contract) before giving up.
func (w *worker) createSession(ctx context.Context) bool {
	for attempt := 0; attempt < 3; attempt++ {
		if ctx.Err() != nil {
			return false
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/session", nil)
		if err != nil {
			return false
		}
		resp, err := w.client.Do(req)
		if err != nil {
			return false
		}
		if resp.StatusCode == http.StatusCreated {
			var cr struct {
				ID string `json:"id"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&cr)
			resp.Body.Close()
			if derr != nil || cr.ID == "" {
				return false
			}
			w.sid = cr.ID
			w.sessOps = 0
			w.sessionsCreated++
			return true
		}
		io.Copy(io.Discard, resp.Body)
		retryable := resp.StatusCode == http.StatusServiceUnavailable
		ra := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if !retryable {
			return false
		}
		w.createRetries++
		// Honor the Retry-After hint, capped at 100ms — the generator's job
		// is to keep offering load, not to be a polite production client.
		backoff := 50 * time.Millisecond
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			backoff = 100 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(backoff):
		}
	}
	return false
}

// closeSession deletes the current session (counted even on failure — the
// worker has forgotten it either way).
func (w *worker) closeSession(ctx context.Context) {
	if w.sid == "" {
		return
	}
	// Use a detached short context so end-of-run cleanup still lands after
	// ctx is cancelled — leaking sessions would wedge a later drain.
	dctx, cancel := context.WithTimeout(context.Background(), w.opt.Timeout)
	defer cancel()
	if ctx.Err() == nil {
		dctx = ctx
	}
	code, _, err := w.do(dctx, http.MethodDelete, "/session/"+w.sid, nil)
	if err == nil && code == http.StatusOK {
		w.sessionsClosed++
	}
	w.sid = ""
	w.sessOps = 0
}

// do issues one request and returns the status plus the trace ID echoed in
// the response's Traceparent header ("" when the target runs with
// observability off).
func (w *worker) do(ctx context.Context, method, path string, body []byte) (int, string, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, rd)
	if err != nil {
		return 0, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	var trace string
	if sc, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent")); ok {
		trace = sc.Trace.String()
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, trace, nil
}

// noteSlow keeps the worker's slowN slowest successful traced requests,
// replacing the current minimum when a slower one lands.
func (w *worker) noteSlow(d time.Duration, route, trace string) {
	if trace == "" {
		return
	}
	s := SlowRequest{Us: d.Microseconds(), Route: route, Trace: trace}
	if len(w.slow) < slowN {
		w.slow = append(w.slow, s)
		return
	}
	mi := 0
	for i := 1; i < len(w.slow); i++ {
		if w.slow[i].Us < w.slow[mi].Us {
			mi = i
		}
	}
	if s.Us > w.slow[mi].Us {
		w.slow[mi] = s
	}
}

// EncodeECOBodies marshals ECO requests once up front so the measured loop
// replays precomputed bytes.
func EncodeECOBodies(reqs []any) ([][]byte, error) {
	out := make([][]byte, 0, len(reqs))
	for i, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("loadgen: body %d: %w", i, err)
		}
		out = append(out, b)
	}
	return out, nil
}
