package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeDaemon implements the serving surface shape the generator drives.
type fakeDaemon struct {
	mu       sync.Mutex
	sessions map[string]bool
	next     int
	ecoN     atomic.Int64
	sreadN   atomic.Int64
	breadN   atomic.Int64
	delay    time.Duration
}

func newFakeDaemon(delay time.Duration) (*fakeDaemon, *httptest.Server) {
	d := &fakeDaemon{sessions: make(map[string]bool), delay: delay}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /session", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		d.next++
		id := fmt.Sprintf("s%d", d.next)
		d.sessions[id] = true
		d.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"id": id})
	})
	withSess := func(counter *atomic.Int64, close bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if d.delay > 0 {
				time.Sleep(d.delay)
			}
			id := r.PathValue("id")
			d.mu.Lock()
			ok := d.sessions[id]
			if ok && close {
				delete(d.sessions, id)
			}
			d.mu.Unlock()
			if !ok {
				http.Error(w, "no such session", http.StatusNotFound)
				return
			}
			if counter != nil {
				counter.Add(1)
			}
			json.NewEncoder(w).Encode(map[string]any{"id": id})
		}
	}
	mux.HandleFunc("POST /session/{id}/eco", withSess(&d.ecoN, false))
	mux.HandleFunc("GET /session/{id}/slacks", withSess(&d.sreadN, false))
	mux.HandleFunc("DELETE /session/{id}", withSess(nil, true))
	mux.HandleFunc("GET /slacks", func(w http.ResponseWriter, r *http.Request) {
		if d.delay > 0 {
			time.Sleep(d.delay)
		}
		d.breadN.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"wns": -1.0})
	})
	return d, httptest.NewServer(mux)
}

func (d *fakeDaemon) liveSessions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sessions)
}

// TestRunMixAndAccounting: the full mix lands on all three endpoint kinds,
// every op is recorded, sessions churn every SessionOps and none leak.
func TestRunMixAndAccounting(t *testing.T) {
	d, srv := newFakeDaemon(0)
	defer srv.Close()
	rep, err := Run(context.Background(), srv.URL, Options{
		Concurrency: 4,
		Ops:         200,
		SessionOps:  5,
		Mix:         Mix{ECO: 3, SessionRead: 1, BaseRead: 1},
		Bodies:      [][]byte{[]byte(`{}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 200 {
		t.Fatalf("ops %d, want 200", rep.Ops)
	}
	if rep.Errors != 0 || rep.DroppedSessions != 0 {
		t.Fatalf("clean run reported errors=%d dropped=%d", rep.Errors, rep.DroppedSessions)
	}
	if d.ecoN.Load() == 0 || d.sreadN.Load() == 0 || d.breadN.Load() == 0 {
		t.Fatalf("mix skipped a kind: eco=%d sread=%d bread=%d",
			d.ecoN.Load(), d.sreadN.Load(), d.breadN.Load())
	}
	if rep.SessionsCreated < 4 {
		t.Fatalf("sessions created %d: churn not happening", rep.SessionsCreated)
	}
	if rep.SessionsClosed != rep.SessionsCreated {
		t.Fatalf("created %d but closed %d sessions", rep.SessionsCreated, rep.SessionsClosed)
	}
	if d.liveSessions() != 0 {
		t.Fatalf("%d sessions leaked on the daemon", d.liveSessions())
	}
	if rep.P50Us <= 0 || rep.P99Us < rep.P50Us {
		t.Fatalf("bad quantiles: %+v", rep)
	}
	if rep.ReadP50Us <= 0 {
		t.Fatalf("base-read quantiles missing: %+v", rep)
	}
}

// TestRunCancellation: ctx cancel ends the run early and cleanly (no error
// inflation from torn requests), with sessions still released.
func TestRunCancellation(t *testing.T) {
	d, srv := newFakeDaemon(5 * time.Millisecond)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(40 * time.Millisecond)
		cancel()
	}()
	rep, err := Run(ctx, srv.URL, Options{
		Concurrency: 2,
		Ops:         100000, // far more than fits in the window
		Mix:         Mix{BaseRead: 0, ECO: 1, SessionRead: 1},
		Bodies:      [][]byte{[]byte(`{}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Ops >= 100000 {
		t.Fatalf("cancelled run did %d ops", rep.Ops)
	}
	if rep.DroppedSessions != 0 {
		t.Fatalf("cancellation counted as %d dropped sessions", rep.DroppedSessions)
	}
	if d.liveSessions() != 0 {
		t.Fatalf("%d sessions leaked after cancellation", d.liveSessions())
	}
}

// TestRunNeedsBodies: an ECO mix without bodies is a configuration error.
func TestRunNeedsBodies(t *testing.T) {
	if _, err := Run(context.Background(), "http://127.0.0.1:1", Options{Mix: Mix{ECO: 1}}); err == nil {
		t.Fatal("want configuration error for ECO mix without bodies")
	}
}
