package fleet

// Consistent hashing for session placement. The ring maps a session *key* (a
// short random token the router mints at create time) to its home replica;
// the fleet-visible session ID embeds the key — "<key>.<localID>" — so every
// later request re-derives the same home replica from the ID alone, with no
// routing table to replicate or age out.
//
// Membership is fixed for the life of the pool (replicas restart in place and
// keep their ring position), so the usual consistent-hashing concern —
// minimal movement under membership churn — does not apply. What the ring
// buys here is (a) a uniform, stateless key→replica map and (b) *key-redraw
// probing*: when the owner of a freshly minted key is unready, draining or
// full, the router simply mints a new key and rehashes, rather than walking
// to the ring successor. Redrawing keeps the placement invariant exact —
// hash(key) always names the home replica, forever — whereas successor
// probing would make placement depend on the readiness snapshot at create
// time, which a later request cannot reconstruct.

import (
	"sort"
	"strconv"
)

// ringPoint is one virtual node: a hash position owned by a replica index.
type ringPoint struct {
	h   uint64
	rep int
}

type ring struct {
	points []ringPoint
}

// newRing builds a ring of n replicas with vnodes virtual nodes each.
// Virtual nodes smooth the arc-length (and so the key-load) imbalance of a
// small fleet: with 64 vnodes per replica, a 4-replica fleet's per-replica
// share stays within a few percent of 1/4.
func newRing(n, vnodes int) *ring {
	pts := make([]ringPoint, 0, n*vnodes)
	for rep := 0; rep < n; rep++ {
		for v := 0; v < vnodes; v++ {
			h := hash64("replica-" + strconv.Itoa(rep) + "#" + strconv.Itoa(v))
			pts = append(pts, ringPoint{h: h, rep: rep})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].h != pts[b].h {
			return pts[a].h < pts[b].h
		}
		return pts[a].rep < pts[b].rep
	})
	return &ring{points: pts}
}

// owner returns the replica index owning key: the first ring point clockwise
// from hash(key), wrapping at the top.
func (rg *ring) owner(key string) int {
	h := hash64(key)
	pts := rg.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].h >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].rep
}

// hash64 is FNV-1a over s — stable across processes (routing must agree
// between a router restart and the IDs already handed to clients), cheap, and
// good enough spread for a ring fed with random keys.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// splitFID splits a fleet session ID "<key>.<localID>" into its routing key
// and the replica-local session ID.
func splitFID(fid string) (key, local string, ok bool) {
	for i := 0; i < len(fid); i++ {
		if fid[i] == '.' {
			key, local = fid[:i], fid[i+1:]
			if key == "" || local == "" {
				return "", "", false
			}
			return key, local, true
		}
	}
	return "", "", false
}
