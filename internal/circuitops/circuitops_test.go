package circuitops

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"insta/internal/bench"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/refsta"
)

func extractTiny(t testing.TB) (*refsta.Engine, *Tables) {
	t.Helper()
	spec := bench.Spec{
		Name: "xtract", Seed: 11, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 5, Layers: 3, Width: 5,
		CrossFrac: 0.1, NumPIs: 2, NumPOs: 2,
		Period: 900, Uncertainty: 10, FalsePaths: 2, Multicycles: 1, Die: 80,
	}
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, Extract(e)
}

func TestExtractShapes(t *testing.T) {
	e, tab := extractTiny(t)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Arcs) != e.NumArcs() {
		t.Errorf("arcs = %d, want %d", len(tab.Arcs), e.NumArcs())
	}
	if len(tab.SPs) != len(e.Startpoints()) || len(tab.EPs) != len(e.Endpoints()) {
		t.Error("SP/EP counts mismatch")
	}
	if tab.NSigma != 3.0 || tab.Period != 900 {
		t.Errorf("header: nsigma=%v period=%v", tab.NSigma, tab.Period)
	}
	// Arc annotations must match the engine's.
	for i, a := range e.Arcs {
		r := tab.Arcs[i]
		if r.MeanRise != a.Delay[0].Mean || r.StdFall != a.Delay[1].Std {
			t.Fatalf("arc %d annotation mismatch", i)
		}
	}
	// 2 false paths + 1 multicycle expand to 3 atomic rows.
	if len(tab.Exceptions) != 3 {
		t.Errorf("exception rows = %d, want 3", len(tab.Exceptions))
	}
}

func TestExtractClockVariance(t *testing.T) {
	e, tab := extractTiny(t)
	ct := e.D.Clock
	if len(tab.ClockNodes) != ct.NumNodes() {
		t.Fatalf("clock nodes = %d, want %d", len(tab.ClockNodes), ct.NumNodes())
	}
	// Cumulative variance must match the tree's own accounting: for each
	// node, CommonVar(n, n) equals the extracted CumVar.
	for _, s := range tab.SPs {
		if s.ClockNode == ct.Root() {
			continue
		}
		want := ct.CommonVar(s.ClockNode, s.ClockNode)
		got := tab.ClockNodes[s.ClockNode].CumVar
		if diff := want - got; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("node %d cumvar %v, want %v", s.ClockNode, got, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	_, tab := extractTiny(t)
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, back) {
		t.Error("round trip not identical")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "#wrong\tv1\n",
		"bad pins":   "#insta-circuitops\tv1\ndesign\tx\npins\tnope\n",
		"truncated":  "#insta-circuitops\tv1\ndesign\tx\npins\t4\nperiod\t1\nnsigma\t3\narcs\t2\n0\t1\t0\t0\t-1\t-1\t1\t0\t1\t0\n",
		"bad field":  "#insta-circuitops\tv1\ndesign\tx\npins\t4\nperiod\t1\nnsigma\t3\narcs\t1\n0\t1\t0\t0\t-1\t-1\tNOPE\t0\t1\t0\nsps\t0\neps\t0\nclocknodes\t1\n-1\t0\nexceptions\t0\n",
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadRejectsSemanticErrors(t *testing.T) {
	_, tab := extractTiny(t)
	tab.Arcs[0].From = int32(tab.NumPins) + 5
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("out-of-range arc accepted by Read validation")
	}
}

func TestCompileExceptions(t *testing.T) {
	e, tab := extractTiny(t)
	exc, err := tab.CompileExceptions()
	if err != nil {
		t.Fatal(err)
	}
	// Every extracted row must be honoured by the compiled table.
	for _, r := range tab.Exceptions {
		if r.SPPin < 0 || r.EPPin < 0 {
			continue
		}
		adj := exc.Lookup(pin(r.SPPin), pin(r.EPPin))
		switch r.Kind {
		case 0:
			if !adj.False {
				t.Errorf("false path %d->%d lost", r.SPPin, r.EPPin)
			}
		case 1:
			if adj.CycleCount() != int(r.Cycles) {
				t.Errorf("multicycle %d->%d lost", r.SPPin, r.EPPin)
			}
		}
	}
	_ = e
}

func TestValidateCatchesNegativeSigma(t *testing.T) {
	_, tab := extractTiny(t)
	tab.Arcs[3].StdRise = -1
	if err := tab.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
}

func pin(i int32) netlist.PinID { return netlist.PinID(i) }
