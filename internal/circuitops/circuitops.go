// Package circuitops is the extraction boundary between the reference
// signoff engine and INSTA, playing the role of the CircuitOps tabular
// format the paper extracts from PrimeTime with custom TCL (§III-A, Fig. 2):
// per-arc variational delay attributes with rise/fall and unateness, SP/EP
// attributes (launch clock distributions, per-startpoint-compatible required
// times), the propagated clock network table used for CPPR credit, and the
// timing exceptions. Tables round-trip through a TSV encoding.
package circuitops

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"insta/internal/netlist"
	"insta/internal/refsta"
	"insta/internal/sdc"
)

// ArcRow is the extracted annotation of one timing arc. Arc ids are the
// extraction order and are shared with the reference engine, so estimate_eco
// deltas can be re-annotated onto INSTA's graph directly.
type ArcRow struct {
	From, To          int32 // pin ids
	Kind              uint8 // 0 = cell arc, 1 = net arc
	Sense             uint8 // liberty.Unate
	Cell              int32 // owning cell for cell arcs, -1 for net arcs
	Net               int32 // net id for net arcs, -1 for cell arcs
	MeanRise, StdRise float64
	MeanFall, StdFall float64
}

// SPRow describes one timing startpoint.
type SPRow struct {
	Pin       int32
	ClockNode int32 // launch clock tree node (root for primary inputs)
	Mean, Std float64
}

// EPRow describes one timing endpoint. BaseReq is the single-cycle setup
// required time with zero CPPR credit:
// period + earlyCaptureClock - setup - uncertainty - externalMargin.
// HoldReq is the hold requirement with zero credit:
// lateCaptureClock + hold + holdUncertainty (+Inf for unchecked endpoints).
type EPRow struct {
	Pin         int32
	CaptureNode int32
	BaseReqRise float64
	BaseReqFall float64
	HoldReqRise float64
	HoldReqFall float64
}

// ClockNodeRow is one node of the propagated clock network: its parent and
// the accumulated root→node delay variance, which is all CPPR credit needs.
type ClockNodeRow struct {
	Parent int32 // -1 at the root
	CumVar float64
}

// ExceptionRow is one atomic exception: SPPin/EPPin of -1 means "any".
type ExceptionRow struct {
	SPPin, EPPin int32
	Kind         uint8 // sdc.ExceptionKind
	Cycles       int32
}

// Tables is the full extraction of one design.
type Tables struct {
	Design     string
	NumPins    int
	Period     float64
	NSigma     float64
	Arcs       []ArcRow
	SPs        []SPRow
	EPs        []EPRow
	ClockNodes []ClockNodeRow
	Exceptions []ExceptionRow
}

// Extract pulls the INSTA initialization tables out of a reference engine,
// the equivalent of the paper's multi-threaded TCL extraction.
func Extract(e *refsta.Engine) *Tables {
	t := &Tables{
		Design:  e.D.Name,
		NumPins: e.D.NumPins(),
		Period:  e.Con.Clock.Period,
		NSigma:  e.Cfg.NSigma,
	}
	t.Arcs = make([]ArcRow, len(e.Arcs))
	for i, a := range e.Arcs {
		row := ArcRow{
			From: int32(a.From), To: int32(a.To),
			Kind: uint8(a.Kind), Sense: uint8(a.Sense),
			Cell: int32(a.Cell), Net: int32(a.Net),
			MeanRise: a.Delay[0].Mean, StdRise: a.Delay[0].Std,
			MeanFall: a.Delay[1].Mean, StdFall: a.Delay[1].Std,
		}
		t.Arcs[i] = row
	}
	for i, p := range e.Startpoints() {
		var mean, std float64
		if e.D.Pins[p].IsClock {
			node, _ := e.D.Clock.SinkOf(p)
			d := e.D.Clock.Arrival(node)
			mean, std = d.Mean, d.Std
		} else {
			d := e.Con.InputDelay[p]
			mean, std = d.Mean, d.Std
		}
		t.SPs = append(t.SPs, SPRow{Pin: int32(p), ClockNode: e.SPNode[i], Mean: mean, Std: std})
	}
	for i, p := range e.Endpoints() {
		node := e.EPNode[i]
		early := 0.0
		if e.D.Clock != nil {
			early = e.D.Clock.Arrival(node).EarlyCorner(e.Cfg.NSigma)
		}
		ext := 0.0
		if e.D.Pins[p].Cell == netlist.NoCell {
			ext = e.Con.OutputDelay[p]
		}
		base := t.Period + early - e.Con.Clock.Uncertainty - ext
		row := EPRow{
			Pin:         int32(p),
			CaptureNode: node,
			BaseReqRise: base - e.EPSetup[i][0],
			BaseReqFall: base - e.EPSetup[i][1],
			HoldReqRise: math.Inf(1),
			HoldReqFall: math.Inf(1),
		}
		if pin := &e.D.Pins[p]; pin.Cell != netlist.NoCell {
			lc := e.Lib.Cell(e.D.Cells[pin.Cell].LibCell)
			late := 0.0
			if e.D.Clock != nil {
				late = e.D.Clock.Arrival(node).Corner(e.Cfg.NSigma)
			}
			row.HoldReqRise = late + lc.Hold[0] + e.Con.Clock.HoldUncertainty
			row.HoldReqFall = late + lc.Hold[1] + e.Con.Clock.HoldUncertainty
		}
		t.EPs = append(t.EPs, row)
	}
	if ct := e.D.Clock; ct != nil {
		cum := make([]float64, ct.NumNodes())
		for i := 0; i < ct.NumNodes(); i++ {
			v := ct.Edge[i].Std * ct.Edge[i].Std
			if p := ct.Parent[i]; p >= 0 {
				v += cum[p]
			}
			cum[i] = v
			t.ClockNodes = append(t.ClockNodes, ClockNodeRow{Parent: ct.Parent[i], CumVar: v})
		}
	} else {
		t.ClockNodes = []ClockNodeRow{{Parent: -1, CumVar: 0}}
	}
	for _, ex := range e.Con.Exceptions {
		froms := ex.From
		tos := ex.To
		if len(froms) == 0 {
			froms = []netlist.PinID{-1}
		}
		if len(tos) == 0 {
			tos = []netlist.PinID{-1}
		}
		for _, f := range froms {
			for _, to := range tos {
				t.Exceptions = append(t.Exceptions, ExceptionRow{
					SPPin: int32(f), EPPin: int32(to),
					Kind: uint8(ex.Kind), Cycles: int32(ex.Cycles),
				})
			}
		}
	}
	return t
}

// CompileExceptions rebuilds the O(1) exception lookup from the extracted
// rows, reusing the sdc compiler.
func (t *Tables) CompileExceptions() (*sdc.ExceptionTable, error) {
	con := sdc.New(sdc.Clock{Period: t.Period})
	for _, r := range t.Exceptions {
		ex := sdc.Exception{Kind: sdc.ExceptionKind(r.Kind), Cycles: int(r.Cycles)}
		if r.SPPin >= 0 {
			ex.From = []netlist.PinID{netlist.PinID(r.SPPin)}
		}
		if r.EPPin >= 0 {
			ex.To = []netlist.PinID{netlist.PinID(r.EPPin)}
		}
		con.Exceptions = append(con.Exceptions, ex)
	}
	return con.Compile()
}

// Validate performs structural checks on the tables.
func (t *Tables) Validate() error {
	for i, a := range t.Arcs {
		if a.From < 0 || int(a.From) >= t.NumPins || a.To < 0 || int(a.To) >= t.NumPins {
			return fmt.Errorf("circuitops: arc %d pins out of range", i)
		}
		if a.StdRise < 0 || a.StdFall < 0 {
			return fmt.Errorf("circuitops: arc %d negative sigma", i)
		}
	}
	for i, n := range t.ClockNodes {
		if n.Parent >= int32(i) {
			return fmt.Errorf("circuitops: clock node %d has non-preceding parent %d", i, n.Parent)
		}
		if n.CumVar < 0 {
			return fmt.Errorf("circuitops: clock node %d negative variance", i)
		}
	}
	nClk := int32(len(t.ClockNodes))
	for i, s := range t.SPs {
		if s.Pin < 0 || int(s.Pin) >= t.NumPins || s.ClockNode < 0 || s.ClockNode >= nClk {
			return fmt.Errorf("circuitops: sp %d out of range", i)
		}
	}
	for i, e := range t.EPs {
		if e.Pin < 0 || int(e.Pin) >= t.NumPins || e.CaptureNode < 0 || e.CaptureNode >= nClk {
			return fmt.Errorf("circuitops: ep %d out of range", i)
		}
	}
	return nil
}

// Write serializes the tables as a line-oriented TSV document.
func (t *Tables) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#insta-circuitops\tv1\n")
	fmt.Fprintf(bw, "design\t%s\n", t.Design)
	fmt.Fprintf(bw, "pins\t%d\n", t.NumPins)
	fmt.Fprintf(bw, "period\t%.17g\n", t.Period)
	fmt.Fprintf(bw, "nsigma\t%.17g\n", t.NSigma)
	fmt.Fprintf(bw, "arcs\t%d\n", len(t.Arcs))
	for _, a := range t.Arcs {
		fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\t%d\t%.17g\t%.17g\t%.17g\t%.17g\n",
			a.From, a.To, a.Kind, a.Sense, a.Cell, a.Net,
			a.MeanRise, a.StdRise, a.MeanFall, a.StdFall)
	}
	fmt.Fprintf(bw, "sps\t%d\n", len(t.SPs))
	for _, s := range t.SPs {
		fmt.Fprintf(bw, "%d\t%d\t%.17g\t%.17g\n", s.Pin, s.ClockNode, s.Mean, s.Std)
	}
	fmt.Fprintf(bw, "eps\t%d\n", len(t.EPs))
	for _, e := range t.EPs {
		fmt.Fprintf(bw, "%d\t%d\t%.17g\t%.17g\t%.17g\t%.17g\n",
			e.Pin, e.CaptureNode, e.BaseReqRise, e.BaseReqFall, e.HoldReqRise, e.HoldReqFall)
	}
	fmt.Fprintf(bw, "clocknodes\t%d\n", len(t.ClockNodes))
	for _, n := range t.ClockNodes {
		fmt.Fprintf(bw, "%d\t%.17g\n", n.Parent, n.CumVar)
	}
	fmt.Fprintf(bw, "exceptions\t%d\n", len(t.Exceptions))
	for _, x := range t.Exceptions {
		fmt.Fprintf(bw, "%d\t%d\t%d\t%d\n", x.SPPin, x.EPPin, x.Kind, x.Cycles)
	}
	return bw.Flush()
}

// Read parses a TSV document produced by Write.
func Read(r io.Reader) (*Tables, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Tables{}
	line := func() ([]string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.ErrUnexpectedEOF
		}
		return strings.Split(sc.Text(), "\t"), nil
	}
	hdr, err := line()
	if err != nil {
		return nil, err
	}
	if len(hdr) != 2 || hdr[0] != "#insta-circuitops" || hdr[1] != "v1" {
		return nil, fmt.Errorf("circuitops: bad header %v", hdr)
	}
	expectKey := func(key string) (string, error) {
		f, err := line()
		if err != nil {
			return "", err
		}
		if len(f) != 2 || f[0] != key {
			return "", fmt.Errorf("circuitops: expected %q line, got %v", key, f)
		}
		return f[1], nil
	}
	if t.Design, err = expectKey("design"); err != nil {
		return nil, err
	}
	s, err := expectKey("pins")
	if err != nil {
		return nil, err
	}
	if t.NumPins, err = strconv.Atoi(s); err != nil {
		return nil, fmt.Errorf("circuitops: pins: %w", err)
	}
	if s, err = expectKey("period"); err != nil {
		return nil, err
	}
	if t.Period, err = strconv.ParseFloat(s, 64); err != nil {
		return nil, fmt.Errorf("circuitops: period: %w", err)
	}
	if s, err = expectKey("nsigma"); err != nil {
		return nil, err
	}
	if t.NSigma, err = strconv.ParseFloat(s, 64); err != nil {
		return nil, fmt.Errorf("circuitops: nsigma: %w", err)
	}

	count := func(key string) (int, error) {
		s, err := expectKey(key)
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("circuitops: bad %s count %q", key, s)
		}
		return n, nil
	}
	n, err := count("arcs")
	if err != nil {
		return nil, err
	}
	t.Arcs = make([]ArcRow, n)
	for i := 0; i < n; i++ {
		f, err := line()
		if err != nil {
			return nil, err
		}
		if len(f) != 10 {
			return nil, fmt.Errorf("circuitops: arc row %d has %d fields", i, len(f))
		}
		a := &t.Arcs[i]
		var k, sen int64
		if err := parseAll(f,
			pInt32(&a.From), pInt32(&a.To), pInt64(&k), pInt64(&sen), pInt32(&a.Cell), pInt32(&a.Net),
			pFloat(&a.MeanRise), pFloat(&a.StdRise), pFloat(&a.MeanFall), pFloat(&a.StdFall)); err != nil {
			return nil, fmt.Errorf("circuitops: arc row %d: %w", i, err)
		}
		a.Kind, a.Sense = uint8(k), uint8(sen)
	}
	if n, err = count("sps"); err != nil {
		return nil, err
	}
	t.SPs = make([]SPRow, n)
	for i := 0; i < n; i++ {
		f, err := line()
		if err != nil {
			return nil, err
		}
		s := &t.SPs[i]
		if err := parseAll(f, pInt32(&s.Pin), pInt32(&s.ClockNode), pFloat(&s.Mean), pFloat(&s.Std)); err != nil {
			return nil, fmt.Errorf("circuitops: sp row %d: %w", i, err)
		}
	}
	if n, err = count("eps"); err != nil {
		return nil, err
	}
	t.EPs = make([]EPRow, n)
	for i := 0; i < n; i++ {
		f, err := line()
		if err != nil {
			return nil, err
		}
		e := &t.EPs[i]
		if err := parseAll(f, pInt32(&e.Pin), pInt32(&e.CaptureNode),
			pFloat(&e.BaseReqRise), pFloat(&e.BaseReqFall),
			pFloat(&e.HoldReqRise), pFloat(&e.HoldReqFall)); err != nil {
			return nil, fmt.Errorf("circuitops: ep row %d: %w", i, err)
		}
	}
	if n, err = count("clocknodes"); err != nil {
		return nil, err
	}
	t.ClockNodes = make([]ClockNodeRow, n)
	for i := 0; i < n; i++ {
		f, err := line()
		if err != nil {
			return nil, err
		}
		c := &t.ClockNodes[i]
		if err := parseAll(f, pInt32(&c.Parent), pFloat(&c.CumVar)); err != nil {
			return nil, fmt.Errorf("circuitops: clock row %d: %w", i, err)
		}
	}
	if n, err = count("exceptions"); err != nil {
		return nil, err
	}
	t.Exceptions = make([]ExceptionRow, n)
	for i := 0; i < n; i++ {
		f, err := line()
		if err != nil {
			return nil, err
		}
		x := &t.Exceptions[i]
		var k int64
		if err := parseAll(f, pInt32(&x.SPPin), pInt32(&x.EPPin), pInt64(&k), pInt32(&x.Cycles)); err != nil {
			return nil, fmt.Errorf("circuitops: exception row %d: %w", i, err)
		}
		x.Kind = uint8(k)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type fieldParser func(string) error

func pInt32(dst *int32) fieldParser {
	return func(s string) error {
		v, err := strconv.ParseInt(s, 10, 32)
		*dst = int32(v)
		return err
	}
}

func pInt64(dst *int64) fieldParser {
	return func(s string) error {
		v, err := strconv.ParseInt(s, 10, 64)
		*dst = v
		return err
	}
}

func pFloat(dst *float64) fieldParser {
	return func(s string) error {
		v, err := strconv.ParseFloat(s, 64)
		*dst = v
		return err
	}
}

func parseAll(fields []string, parsers ...fieldParser) error {
	if len(fields) != len(parsers) {
		return fmt.Errorf("got %d fields, want %d", len(fields), len(parsers))
	}
	for i, p := range parsers {
		if err := p(fields[i]); err != nil {
			return fmt.Errorf("field %d %q: %w", i, fields[i], err)
		}
	}
	return nil
}
