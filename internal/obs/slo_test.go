package obs

import (
	"strings"
	"testing"
	"time"
)

// TestSLOBurnRateFixture is the deterministic burn-rate-math fixture: 1000
// requests with 100 bad against a 10% budget burn at exactly 1.0.
func TestSLOBurnRateFixture(t *testing.T) {
	s := NewSLOTracker(SLOOptions{Objective: time.Millisecond, ErrorBudget: 0.1})
	now := time.Unix(1_000_000, 0)
	for i := 0; i < 900; i++ {
		s.Record(100*time.Microsecond, false, now)
	}
	for i := 0; i < 50; i++ {
		s.Record(5*time.Millisecond, false, now) // objective breach = bad
	}
	for i := 0; i < 50; i++ {
		s.Record(100*time.Microsecond, true, now) // outright failure = bad
	}
	for _, w := range []time.Duration{5 * time.Minute, time.Hour} {
		br := s.Burn(w, now)
		if br.Total != 1000 || br.Bad != 100 {
			t.Fatalf("%v window: total/bad = %d/%d, want 1000/100", w, br.Total, br.Bad)
		}
		if br.BadFraction != 0.1 || br.Burn != 1.0 {
			t.Fatalf("%v window: frac %g burn %g, want 0.1 / 1.0", w, br.BadFraction, br.Burn)
		}
	}
}

// TestSLOWindowSeparation pins that old badness ages out of the short window
// while the long window still sees it.
func TestSLOWindowSeparation(t *testing.T) {
	s := NewSLOTracker(SLOOptions{Objective: time.Millisecond, ErrorBudget: 0.1})
	t0 := time.Unix(2_000_000, 0)
	for i := 0; i < 10; i++ {
		s.Record(time.Microsecond, true, t0) // 10 bad at t0
	}
	later := t0.Add(10 * time.Minute)
	for i := 0; i < 10; i++ {
		s.Record(time.Microsecond, false, later) // 10 good 10m later
	}
	short := s.Burn(5*time.Minute, later)
	long := s.Burn(time.Hour, later)
	if short.Bad != 0 || short.Total != 10 {
		t.Fatalf("5m window should only see the recent good traffic: %+v", short)
	}
	if long.Bad != 10 || long.Total != 20 {
		t.Fatalf("1h window should see everything: %+v", long)
	}
	if long.Burn != 5.0 { // 10/20 = 0.5 bad fraction over 0.1 budget
		t.Fatalf("1h burn = %g, want 5.0", long.Burn)
	}
}

// TestSLOWheelRecycling pins that a wheel slot reused after a full revolution
// drops its stale counts instead of double-counting.
func TestSLOWheelRecycling(t *testing.T) {
	s := NewSLOTracker(SLOOptions{
		Objective: time.Millisecond, ErrorBudget: 0.5,
		Windows: []time.Duration{10 * time.Second}, Granularity: time.Second,
	})
	t0 := time.Unix(3_000_000, 0)
	s.Record(time.Microsecond, true, t0)
	// Two full revolutions later the same slot is reused.
	t1 := t0.Add(40 * time.Second)
	s.Record(time.Microsecond, false, t1)
	br := s.Burn(10*time.Second, t1)
	if br.Total != 1 || br.Bad != 0 {
		t.Fatalf("stale slot leaked into window: %+v", br)
	}
}

func TestSLORecordAllocFree(t *testing.T) {
	s := NewSLOTracker(SLOOptions{})
	now := time.Now()
	allocs := testing.AllocsPerRun(10000, func() { s.Record(50*time.Millisecond, false, now) })
	if allocs != 0 {
		t.Fatalf("SLOTracker.Record allocates %.2f/op, want 0", allocs)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLOTracker
	s.Record(time.Second, true, time.Now())
	if br := s.Burn(time.Minute, time.Now()); br.Total != 0 {
		t.Fatal("nil tracker must be inert")
	}
	if s.Snapshot(time.Now()) != nil || s.Objective() != 0 {
		t.Fatal("nil tracker must be inert")
	}
	s.RegisterMetrics(NewRegistry(), "x")
}

func TestSLORegisterMetrics(t *testing.T) {
	s := NewSLOTracker(SLOOptions{Objective: 100 * time.Millisecond, ErrorBudget: 0.01})
	reg := NewRegistry()
	s.RegisterMetrics(reg, "insta")
	now := time.Now()
	for i := 0; i < 10; i++ {
		s.Record(time.Millisecond, i == 0, now) // 1 bad of 10 = 0.1 frac = burn 10
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE insta_slo_burn_rate_5m gauge",
		"insta_slo_burn_rate_5m 10\n",
		"insta_slo_burn_rate_1h 10\n",
		"insta_slo_objective_seconds 0.1\n",
		"insta_slo_error_budget 0.01\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestShortDur(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Minute:  "5m",
		time.Hour:        "1h",
		30 * time.Second: "30s",
		90 * time.Minute: "90m",
	}
	for d, want := range cases {
		if got := shortDur(d); got != want {
			t.Errorf("shortDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestGauges(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_depth")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(2.5)
	if v := g.Value(); v != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", v)
	}
	g.Set(7)
	gv := reg.GaugeVec("test_labeled", "shard")
	gv.With("a").Set(1.25)
	gv.With("b").Inc()
	reg.GaugeFunc("test_fn", func() float64 { return 42 })
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	want := "# TYPE test_depth gauge\ntest_depth 7\n" +
		"# TYPE test_labeled gauge\ntest_labeled{shard=\"a\"} 1.25\ntest_labeled{shard=\"b\"} 1\n" +
		"# TYPE test_fn gauge\ntest_fn 42\n"
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestGaugeAllocFree(t *testing.T) {
	g := &Gauge{}
	allocs := testing.AllocsPerRun(10000, func() { g.Inc(); g.Dec() })
	if allocs != 0 {
		t.Fatalf("Gauge Inc/Dec allocates %.2f/op, want 0", allocs)
	}
}
