package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is the always-on request black box: a fixed-size ring of
// per-request records cheap enough to leave recording under full serving
// load. Record is allocation-free — one mutex acquisition and a struct copy
// into preallocated storage — so it sits on the hot path unconditionally,
// unlike the span tracer which is opt-in.
//
// Anomaly capture: a request that errors (status >= 500, or 0 = transport
// failure) or breaches the pin latency threshold is copied into a separate
// small pinned ring together with its full span tree (when a tracer is
// attached and enabled), preserving the evidence after the main window rolls.
// Pinning allocates, but anomalies are rare by definition.

// ReqRecord is one completed request as retained by the recorder.
type ReqRecord struct {
	Trace   TraceID `json:"trace"`
	Route   string  `json:"route"`
	Shard   string  `json:"shard,omitempty"`   // router: the consistent-hash key
	Replica int32   `json:"replica"`           // router: owning replica id; -1 = none/local
	Status  int32   `json:"status"`            // HTTP status; 0 = transport error
	QueueNs int64   `json:"queue_ns"`          // admission wait
	ServeNs int64   `json:"serve_ns"`          // handler/upstream time
	TotalNs int64   `json:"total_ns"`          // queue + serve
	Epoch   uint64  `json:"epoch"`             // timing epoch at completion
	TopoGen uint64  `json:"topo_gen,omitempty"`
	Unix    int64   `json:"unix_ns"`           // completion time, ns since Unix epoch
}

// bad reports whether the record is an error for anomaly and SLO purposes.
func (r *ReqRecord) bad() bool { return r.Status == 0 || r.Status >= 500 }

// PinnedRequest is one captured anomaly: the record plus its span tree as of
// pin time (nil when no tracer was attached or it was disabled).
type PinnedRequest struct {
	Rec   ReqRecord  `json:"rec"`
	Spans []SpanView `json:"spans,omitempty"`
}

// FlightRecorderOptions configures NewFlightRecorder. The zero value is
// usable: 4096-entry ring, 250 ms pin threshold, 32 pin slots, no tracer.
type FlightRecorderOptions struct {
	Size         int           // ring entries; <= 0 means 4096
	PinThreshold time.Duration // latency at/above which a request pins; <= 0 means 250 ms
	PinCapacity  int           // pinned-anomaly ring entries; <= 0 means 32
	Tracer       *Tracer       // span source for pinned anomalies (optional)
}

// FlightRecorder holds the ring. Construct with NewFlightRecorder; methods
// are safe for concurrent use and safe on a nil receiver (no-op), so serving
// layers wire it unconditionally.
type FlightRecorder struct {
	pinNs atomic.Int64
	tr    *Tracer

	mu     sync.Mutex
	ring   []ReqRecord
	n      uint64 // total records ever; ring[(n-1) % len] is the newest
	pinned []PinnedRequest
	pinN   uint64 // total pins ever
}

// NewFlightRecorder returns a recorder with the given options.
func NewFlightRecorder(opt FlightRecorderOptions) *FlightRecorder {
	if opt.Size <= 0 {
		opt.Size = 4096
	}
	if opt.PinThreshold <= 0 {
		opt.PinThreshold = 250 * time.Millisecond
	}
	if opt.PinCapacity <= 0 {
		opt.PinCapacity = 32
	}
	f := &FlightRecorder{
		tr:     opt.Tracer,
		ring:   make([]ReqRecord, opt.Size),
		pinned: make([]PinnedRequest, 0, opt.PinCapacity),
	}
	f.pinNs.Store(int64(opt.PinThreshold))
	return f
}

// SetPinThreshold adjusts the anomaly latency threshold at runtime.
func (f *FlightRecorder) SetPinThreshold(d time.Duration) {
	if f != nil {
		f.pinNs.Store(int64(d))
	}
}

// PinThreshold returns the current anomaly latency threshold.
func (f *FlightRecorder) PinThreshold() time.Duration {
	if f == nil {
		return 0
	}
	return time.Duration(f.pinNs.Load())
}

// Record appends one request to the ring. Zero allocations on the normal
// path; the pin path (error or threshold breach) allocates to copy the span
// tree. Safe on nil.
func (f *FlightRecorder) Record(rec ReqRecord) {
	if f == nil {
		return
	}
	pin := rec.bad() || rec.TotalNs >= f.pinNs.Load()
	f.mu.Lock()
	f.ring[f.n%uint64(len(f.ring))] = rec
	f.n++
	f.mu.Unlock()
	if pin {
		f.pin(rec)
	}
}

// pin captures an anomalous request with its span tree. The tracer snapshot
// happens outside f.mu (TraceSpans takes the tracer's own lock); the pinned
// ring overwrites oldest-first once full.
func (f *FlightRecorder) pin(rec ReqRecord) {
	p := PinnedRequest{Rec: rec, Spans: f.tr.TraceSpans(rec.Trace)}
	f.mu.Lock()
	if len(f.pinned) < cap(f.pinned) {
		f.pinned = append(f.pinned, p)
	} else if cap(f.pinned) > 0 {
		f.pinned[f.pinN%uint64(cap(f.pinned))] = p
	}
	f.pinN++
	f.mu.Unlock()
}

// Total returns how many requests have been recorded since construction.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Size returns the ring capacity.
func (f *FlightRecorder) Size() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Snapshot returns the retained records, oldest first.
func (f *FlightRecorder) Snapshot() []ReqRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	size := uint64(len(f.ring))
	count := f.n
	if count > size {
		count = size
	}
	out := make([]ReqRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, f.ring[(f.n-count+i)%size])
	}
	return out
}

// Pinned returns the captured anomalies, oldest first.
func (f *FlightRecorder) Pinned() []PinnedRequest {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]PinnedRequest, 0, len(f.pinned))
	if f.pinN > uint64(cap(f.pinned)) && cap(f.pinned) > 0 {
		// Ring has wrapped: oldest entry is at pinN % cap.
		start := f.pinN % uint64(cap(f.pinned))
		for i := uint64(0); i < uint64(len(f.pinned)); i++ {
			out = append(out, f.pinned[(start+i)%uint64(len(f.pinned))])
		}
		return out
	}
	return append(out, f.pinned...)
}

// flightDump is the /debug/flightrecorder JSON shape.
type flightDump struct {
	Size         int             `json:"size"`
	Total        uint64          `json:"total"`
	PinThreshold float64         `json:"pin_threshold_s"`
	Recent       []ReqRecord     `json:"recent"`
	Pinned       []PinnedRequest `json:"pinned,omitempty"`
}

// WriteJSON dumps the recorder state (recent ring + pinned anomalies) as
// JSON — the payload behind /debug/flightrecorder.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	if f == nil {
		_, err := io.WriteString(w, `{"size":0,"total":0,"recent":[]}`)
		return err
	}
	d := flightDump{
		Size:         f.Size(),
		Total:        f.Total(),
		PinThreshold: f.PinThreshold().Seconds(),
		Recent:       f.Snapshot(),
		Pinned:       f.Pinned(),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&d)
}
