package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the single metrics surface: counters, gauges and fixed-bound
// histograms registered once, rendered in the Prometheus text exposition
// format from one place, in registration order. The serving layer's /metrics
// is one Registry; the engine's kernel telemetry (sched.Stats) plugs in
// through a Collector so dynamic series render from the same writer.
type Registry struct {
	mu    sync.Mutex
	parts []renderable
	names map[string]bool
}

// renderable is one registered family in exposition order.
type renderable interface {
	render(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register panics on duplicate family names — metric registration happens at
// construction time, so a collision is a programming error worth failing
// loudly on, matching what a real Prometheus client library does.
func (r *Registry) register(name string, p renderable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric family %q", name))
	}
	r.names[name] = true
	r.parts = append(r.parts, p)
}

// WritePrometheus renders every registered family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	parts := append([]renderable(nil), r.parts...)
	r.mu.Unlock()
	for _, p := range parts {
		p.render(w)
	}
}

// Counter is a monotonically increasing integer series.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

type counterPart struct {
	name string
	c    *Counter
}

func (p *counterPart) render(w io.Writer) {
	fmt.Fprintf(w, "# TYPE %s counter\n", p.name)
	fmt.Fprintf(w, "%s %d\n", p.name, p.c.Value())
}

// Counter registers and returns a single unlabeled counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(name, &counterPart{name: name, c: c})
	return c
}

// CounterVec is a counter family with a fixed label set; series are created
// on first use and render sorted by label values.
type CounterVec struct {
	name   string
	labels []string

	mu     sync.Mutex
	series map[string]*Counter // key: label values joined by \x00
}

// With returns (creating if needed) the series for the given label values,
// which must match the declared label count.
func (cv *CounterVec) With(values ...string) *Counter {
	if len(values) != len(cv.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", cv.name, len(cv.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c := cv.series[key]
	if c == nil {
		c = &Counter{}
		cv.series[key] = c
	}
	return c
}

func (cv *CounterVec) render(w io.Writer) {
	cv.mu.Lock()
	keys := make([]string, 0, len(cv.series))
	for k := range cv.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# TYPE %s counter\n", cv.name)
	for _, k := range keys {
		values := strings.Split(k, "\x00")
		var sb strings.Builder
		for i, l := range cv.labels {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%s=%q", l, values[i])
		}
		fmt.Fprintf(w, "%s{%s} %d\n", cv.name, sb.String(), cv.series[k].Value())
	}
	cv.mu.Unlock()
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	cv := &CounterVec{name: name, labels: labels, series: make(map[string]*Counter)}
	r.register(name, cv)
	return cv
}

// Gauge is a settable instantaneous value (in-flight depth, live sessions,
// burn rates). Stored as float64 bits in an atomic word so Inc/Dec from
// request paths never take a lock.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; contention is per-request, not per-pin).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type gaugePart struct {
	name string
	g    *Gauge
}

func (p *gaugePart) render(w io.Writer) {
	fmt.Fprintf(w, "# TYPE %s gauge\n", p.name)
	fmt.Fprintf(w, "%s %g\n", p.name, p.g.Value())
}

// Gauge registers and returns a single unlabeled gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.register(name, &gaugePart{name: name, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time — for
// values already maintained elsewhere (SLO burn rates, ring occupancy).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.register(name, &gaugeFuncPart{name: name, fn: fn})
}

type gaugeFuncPart struct {
	name string
	fn   func() float64
}

func (p *gaugeFuncPart) render(w io.Writer) {
	fmt.Fprintf(w, "# TYPE %s gauge\n", p.name)
	fmt.Fprintf(w, "%s %g\n", p.name, p.fn())
}

// GaugeVec is a gauge family with a fixed label set; series are created on
// first use and render sorted by label values.
type GaugeVec struct {
	name   string
	labels []string

	mu     sync.Mutex
	series map[string]*Gauge
}

// With returns (creating if needed) the series for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(gv.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", gv.name, len(gv.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	gv.mu.Lock()
	defer gv.mu.Unlock()
	g := gv.series[key]
	if g == nil {
		g = &Gauge{}
		gv.series[key] = g
	}
	return g
}

func (gv *GaugeVec) render(w io.Writer) {
	gv.mu.Lock()
	keys := make([]string, 0, len(gv.series))
	for k := range gv.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# TYPE %s gauge\n", gv.name)
	for _, k := range keys {
		values := strings.Split(k, "\x00")
		var sb strings.Builder
		for i, l := range gv.labels {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%s=%q", l, values[i])
		}
		fmt.Fprintf(w, "%s{%s} %g\n", gv.name, sb.String(), gv.series[k].Value())
	}
	gv.mu.Unlock()
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	gv := &GaugeVec{name: name, labels: labels, series: make(map[string]*Gauge)}
	r.register(name, gv)
	return gv
}

// Collector registers a callback rendered in place at its registration
// position — the escape hatch for series derived from live state (session
// counts, kernel telemetry) rather than stored in the registry.
func (r *Registry) Collector(name string, fn func(io.Writer)) {
	r.register(name, collectorPart(fn))
}

type collectorPart func(io.Writer)

func (p collectorPart) render(w io.Writer) { p(w) }

// Histogram is a fixed-bound histogram: counts per bucket (upper-bound
// inclusive), a sum, and an overflow bucket. Cheap enough to guard with a
// mutex — observations are one per HTTP request or per committed run, never
// per pin.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is the overflow bucket
	sum    float64
	n      int64
}

// NewHistogram returns a histogram over the given ascending bucket upper
// bounds. The slice is retained.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Histogram registers a histogram rendered under the given family name (use
// the full name including unit suffix, e.g. "insta_request_seconds").
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, &histogramPart{name: name, h: h})
	return h
}

type histogramPart struct {
	name string
	h    *Histogram
}

func (p *histogramPart) render(w io.Writer) { p.h.WritePrometheus(w, p.name) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the observation count.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket holding the q-th observation, the same estimator
// Prometheus's histogram_quantile applies: the target rank q·n is located in
// the cumulative distribution and mapped linearly between the bucket's lower
// and upper bound. A single 0.3 ms observation in the (0.25 ms, 0.5 ms]
// bucket therefore reports p50 = 0.375 ms — the bucket's midpoint — rather
// than the 0.5 ms upper bound the pre-obs implementation returned.
// Observations in the overflow bucket clamp to the highest bound. Returns 0
// with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// WritePrometheus renders the histogram in the text exposition format under
// the given family name: cumulative _bucket series, _sum and _count.
func (h *Histogram) WritePrometheus(w io.Writer, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n)
}
