package obs

import (
	"sync/atomic"
	"time"
)

// Trace context: the cross-process identity layer over the span tracer.
//
// The tracer's span ids are process-local int64s — cheap to mint, meaningless
// outside the process. Crossing the router→replica HTTP boundary needs stable
// identifiers, so each span also projects to a *wire id*: a 64-bit mix of the
// tracer's per-process seed and the local id, deterministic within a process
// and (probabilistically) unique across the fleet. A request's identity is a
// 128-bit TraceID minted once at the edge; TraceID + wire id travel in a
// W3C-style traceparent header:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-01
//
// A replica parses the header, opens its serve span with StartRemote, and the
// stitched exporter (stitch.go) later joins both processes' span streams into
// one connected tree keyed by the shared TraceID.

// TraceID is a 128-bit request identity, hex-encoded as 32 characters on the
// wire. The zero value means "no trace".
type TraceID [2]uint64

// IsZero reports whether t is the absent trace id.
func (t TraceID) IsZero() bool { return t[0] == 0 && t[1] == 0 }

// String returns the 32-character lowercase hex form.
func (t TraceID) String() string {
	var b [32]byte
	putHex64(b[:16], t[0])
	putHex64(b[16:], t[1])
	return string(b[:])
}

// MarshalJSON renders the trace id as its 32-hex string, the form recorded in
// flight-recorder dumps and bench reports.
func (t TraceID) MarshalJSON() ([]byte, error) {
	var b [34]byte
	b[0] = '"'
	putHex64(b[1:17], t[0])
	putHex64(b[17:33], t[1])
	b[33] = '"'
	return b[:], nil
}

// UnmarshalJSON parses the 32-hex string form.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	if len(b) == 34 && b[0] == '"' && b[33] == '"' {
		hi, ok1 := parseHex64(string(b[1:17]))
		lo, ok2 := parseHex64(string(b[17:33]))
		if ok1 && ok2 {
			*t = TraceID{hi, lo}
			return nil
		}
	}
	*t = TraceID{}
	return nil
}

// ParseTraceID parses the 32-character hex form. Returns false on malformed
// input or the all-zero id.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	hi, ok1 := parseHex64(s[:16])
	lo, ok2 := parseHex64(s[16:])
	id := TraceID{hi, lo}
	if !ok1 || !ok2 || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// SpanContext is the cross-process coordinate of one span: the request's
// TraceID plus the span's wire id. The zero value means "no context".
type SpanContext struct {
	Trace TraceID
	Span  uint64
}

// IsZero reports whether sc carries no trace.
func (sc SpanContext) IsZero() bool { return sc.Trace.IsZero() }

// traceIDState seeds NewTraceID: a per-process random-ish base (boot time
// through the splitmix64 finalizer) plus an atomic counter, so concurrent
// mints never collide within a process and two processes booted apart in time
// diverge immediately.
var (
	traceCtr  atomic.Uint64
	traceSeed = mix64(uint64(time.Now().UnixNano()) ^ 0x6a09e667f3bcc908)
)

// NewTraceID mints a fresh non-zero trace id.
func NewTraceID() TraceID {
	c := traceCtr.Add(1)
	id := TraceID{mix64(traceSeed ^ c), mix64(c*0x9e3779b97f4a7c15 + traceSeed)}
	if id.IsZero() {
		id[1] = 1
	}
	return id
}

// Traceparent renders sc as a W3C traceparent header value
// (version 00, sampled flag set). Empty string for the zero context — callers
// can unconditionally set-if-nonempty.
func Traceparent(sc SpanContext) string {
	if sc.Trace.IsZero() {
		return ""
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	putHex64(b[3:19], sc.Trace[0])
	putHex64(b[19:35], sc.Trace[1])
	b[35] = '-'
	putHex64(b[36:52], sc.Span)
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value. Only version 00 with a
// non-zero trace id is accepted; the trailing flags byte is tolerated but
// ignored (this engine always records). Allocation-free.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	hi, ok1 := parseHex64(s[3:19])
	lo, ok2 := parseHex64(s[19:35])
	sp, ok3 := parseHex64(s[36:52])
	sc := SpanContext{Trace: TraceID{hi, lo}, Span: sp}
	if !ok1 || !ok2 || !ok3 || sc.Trace.IsZero() {
		return SpanContext{}, false
	}
	return sc, true
}

const hexDigits = "0123456789abcdef"

// putHex64 writes v as 16 lowercase hex characters into dst.
func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// parseHex64 parses exactly 16 lowercase-or-uppercase hex characters.
func parseHex64(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// mix64 is the splitmix64 finalizer — the same full-avalanche mix the fleet
// uses for key redraws, reused here to spread sequential ids over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
