package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Stitched trace export: joining span streams from several processes (the
// router and every replica a request touched) into one connected tree keyed
// by a shared TraceID.
//
// Within a process, parent links are local span ids; across processes they
// are wire ids carried in traceparent headers and recorded by StartRemote.
// CollectTrace resolves both into wire-id space and converts each tracer's
// epoch-relative timestamps to absolute time, so WriteStitchedChromeTrace can
// emit one Chrome trace_event file where a hedged read renders as a router
// span with two replica subtrees racing underneath it.

// SpanView is one completed span in cross-process (wire-id) coordinates.
type SpanView struct {
	Name   string        `json:"name"`
	Trace  TraceID       `json:"trace"`
	Span   uint64        `json:"span"`             // wire id, non-zero
	Parent uint64        `json:"parent,omitempty"` // wire id of parent (local or remote); 0 = root
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	ArgKey string        `json:"arg_key,omitempty"`
	ArgVal int64         `json:"arg_val,omitempty"`
}

// TraceSpans returns the completed spans belonging to the given trace, in
// wire-id coordinates with absolute timestamps. Nil for a nil tracer or the
// zero trace id (engine-internal spans carry the zero trace and are not a
// trace in this sense).
func (t *Tracer) TraceSpans(trace TraceID) []SpanView {
	if t == nil || trace.IsZero() {
		return nil
	}
	recs := t.snapshot(0)
	var out []SpanView
	for _, r := range recs {
		if r.trace != trace {
			continue
		}
		out = append(out, t.viewOf(r))
	}
	return out
}

// viewOf converts one record to wire coordinates. A span with a local parent
// links to that parent's wire id; a root span with a remote parent links to
// it; otherwise Parent is 0.
func (t *Tracer) viewOf(r spanRecord) SpanView {
	parent := r.remote
	if r.parent != 0 {
		parent = t.wireID(r.parent)
	}
	return SpanView{
		Name:   r.name,
		Trace:  r.trace,
		Span:   t.wireID(r.id),
		Parent: parent,
		Start:  t.epoch.Add(r.start),
		Dur:    r.dur,
		ArgKey: r.argKey,
		ArgVal: r.argVal,
	}
}

// StitchStream is one process's contribution to a stitched export: a display
// name ("router", "replica-2") and its tracer.
type StitchStream struct {
	Name   string
	Tracer *Tracer
}

// StitchedSpan is a SpanView tagged with the stream it came from.
type StitchedSpan struct {
	Stream string `json:"stream"`
	SpanView
}

// CollectTrace gathers every span of the given trace across the streams,
// sorted by start time. This is the stitching primitive: the result is one
// flat span set in a single wire-id namespace, parent links resolving across
// process boundaries wherever a traceparent header crossed them.
func CollectTrace(trace TraceID, streams ...StitchStream) []StitchedSpan {
	var out []StitchedSpan
	for _, st := range streams {
		for _, v := range st.Tracer.TraceSpans(trace) {
			out = append(out, StitchedSpan{Stream: st.Name, SpanView: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// WriteStitchedChromeTrace exports one request's stitched trace as Chrome
// trace_event JSON: each stream renders as its own process (with a
// process_name metadata record), spans as ph:"X" complete events carrying the
// trace/span/parent wire ids in args. Complete events sidestep the B/E
// nesting rules, which cross-process clock skew would otherwise violate.
// Timestamps are microseconds relative to the earliest span in the trace.
func WriteStitchedChromeTrace(w io.Writer, trace TraceID, streams ...StitchStream) error {
	spans := CollectTrace(trace, streams...)
	if _, err := fmt.Fprintf(w, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	pidOf := map[string]int{}
	for _, st := range streams {
		if _, ok := pidOf[st.Name]; ok {
			continue
		}
		pid := len(pidOf) + 1
		pidOf[st.Name] = pid
		if err := emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%q}}`, pid, st.Name); err != nil {
			return err
		}
	}
	var t0 time.Time
	if len(spans) > 0 {
		t0 = spans[0].Start
	}
	for _, s := range spans {
		extra := ""
		if s.ArgKey != "" {
			extra = fmt.Sprintf(`,%q:%d`, s.ArgKey, s.ArgVal)
		}
		if err := emit(`{"name":%q,"ph":"X","pid":%d,"tid":1,"ts":%.3f,"dur":%.3f,"args":{"trace":%q,"span":"%016x","parent":"%016x"%s}}`,
			s.Name, pidOf[s.Stream], float64(s.Start.Sub(t0).Nanoseconds())/1e3,
			float64(s.Dur.Nanoseconds())/1e3, trace.String(), s.Span, s.Parent, extra); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, `],"displayTimeUnit":"ms","otherData":{"trace":%q}}`, trace.String())
	return err
}
