package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLOTracker: rolling multi-window burn-rate monitoring in the style of the
// SRE-workbook multiwindow alerts. The objective is a latency bound ("p99 of
// session work under X") plus an error budget (the fraction of requests
// allowed to miss it — by exceeding the objective or by failing outright).
// The burn rate over a window is
//
//	burn = bad_fraction(window) / error_budget
//
// so 1.0 means "spending the budget exactly as fast as allowed", 10 means
// "the monthly budget gone in 3 days". Tracking two windows (default 5m and
// 1h) separates fast burn (page) from slow burn (ticket) and de-flaps the
// short window.
//
// Implementation: a time wheel of fixed buckets covering the longest window.
// Record is allocation-free — bucket index arithmetic plus two integer adds
// under a mutex — so it can sit next to the flight recorder on every request.

// SLOOptions configures NewSLOTracker. The zero value is usable: 100 ms
// objective, 1% error budget, 5m/1h windows, 10 s buckets.
type SLOOptions struct {
	Objective   time.Duration   // per-request latency objective; <= 0 means 100 ms
	ErrorBudget float64         // allowed bad fraction in (0, 1]; <= 0 means 0.01
	Windows     []time.Duration // burn windows, ascending; empty means {5m, 1h}
	Granularity time.Duration   // bucket width; <= 0 means longest window / 360
}

// BurnRate is one window's burn state.
type BurnRate struct {
	Window      string  `json:"window"` // "5m", "1h"
	Total       uint64  `json:"total"`
	Bad         uint64  `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	Burn        float64 `json:"burn_rate"` // BadFraction / ErrorBudget
}

// sloBucket is one wheel slot: the absolute bucket index it currently holds
// counts for, plus totals. A slot is live only while its idx matches the
// queried time range — stale slots (no traffic for a full wheel revolution)
// are skipped at read time and recycled at write time.
type sloBucket struct {
	idx        int64
	total, bad uint64
}

// SLOTracker holds the wheel. Construct with NewSLOTracker; methods are safe
// for concurrent use and safe on nil (no-op / zero results).
type SLOTracker struct {
	objectiveNs int64
	budget      float64
	windows     []time.Duration
	widthNs     int64

	mu    sync.Mutex
	wheel []sloBucket
}

// NewSLOTracker returns a tracker with the given options.
func NewSLOTracker(opt SLOOptions) *SLOTracker {
	if opt.Objective <= 0 {
		opt.Objective = 100 * time.Millisecond
	}
	if opt.ErrorBudget <= 0 || opt.ErrorBudget > 1 {
		opt.ErrorBudget = 0.01
	}
	if len(opt.Windows) == 0 {
		opt.Windows = []time.Duration{5 * time.Minute, time.Hour}
	}
	longest := opt.Windows[len(opt.Windows)-1]
	for _, w := range opt.Windows {
		if w > longest {
			longest = w
		}
	}
	if opt.Granularity <= 0 {
		opt.Granularity = longest / 360
		if opt.Granularity < time.Second {
			opt.Granularity = time.Second
		}
	}
	n := int(longest/opt.Granularity) + 2 // +1 partial head, +1 partial tail
	s := &SLOTracker{
		objectiveNs: int64(opt.Objective),
		budget:      opt.ErrorBudget,
		windows:     append([]time.Duration(nil), opt.Windows...),
		widthNs:     int64(opt.Granularity),
		wheel:       make([]sloBucket, n),
	}
	for i := range s.wheel {
		s.wheel[i].idx = -1
	}
	return s
}

// Objective returns the latency objective.
func (s *SLOTracker) Objective() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.objectiveNs)
}

// ErrorBudget returns the allowed bad fraction.
func (s *SLOTracker) ErrorBudget() float64 {
	if s == nil {
		return 0
	}
	return s.budget
}

// Record counts one request: bad when it failed outright or exceeded the
// latency objective. Allocation-free. Safe on nil.
func (s *SLOTracker) Record(total time.Duration, failed bool, now time.Time) {
	if s == nil {
		return
	}
	bad := failed || int64(total) > s.objectiveNs
	idx := now.UnixNano() / s.widthNs
	s.mu.Lock()
	b := &s.wheel[idx%int64(len(s.wheel))]
	if b.idx != idx {
		b.idx, b.total, b.bad = idx, 0, 0
	}
	b.total++
	if bad {
		b.bad++
	}
	s.mu.Unlock()
}

// Burn returns the burn state over one window ending at now.
func (s *SLOTracker) Burn(window time.Duration, now time.Time) BurnRate {
	if s == nil {
		return BurnRate{}
	}
	nowIdx := now.UnixNano() / s.widthNs
	minIdx := nowIdx - int64(window/time.Duration(s.widthNs))
	br := BurnRate{Window: shortDur(window)}
	s.mu.Lock()
	for i := range s.wheel {
		b := &s.wheel[i]
		if b.idx > minIdx && b.idx <= nowIdx {
			br.Total += b.total
			br.Bad += b.bad
		}
	}
	s.mu.Unlock()
	if br.Total > 0 {
		br.BadFraction = float64(br.Bad) / float64(br.Total)
		br.Burn = br.BadFraction / s.budget
	}
	return br
}

// Snapshot returns the burn state of every configured window ending at now.
func (s *SLOTracker) Snapshot(now time.Time) []BurnRate {
	if s == nil {
		return nil
	}
	out := make([]BurnRate, 0, len(s.windows))
	for _, w := range s.windows {
		out = append(out, s.Burn(w, now))
	}
	return out
}

// RegisterMetrics exports the tracker as gauges on reg under the given
// prefix: <prefix>_slo_burn_rate_<window>, plus the static objective and
// budget for dashboard math.
func (s *SLOTracker) RegisterMetrics(reg *Registry, prefix string) {
	if s == nil || reg == nil {
		return
	}
	for _, w := range s.windows {
		w := w
		reg.GaugeFunc(prefix+"_slo_burn_rate_"+shortDur(w), func() float64 {
			return s.Burn(w, time.Now()).Burn
		})
	}
	reg.GaugeFunc(prefix+"_slo_objective_seconds", func() float64 {
		return s.Objective().Seconds()
	})
	reg.GaugeFunc(prefix+"_slo_error_budget", func() float64 { return s.budget })
}

// shortDur renders a window as the conventional SRE label: "5m", "1h", "30s".
func shortDur(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}
