package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"testing"
)

// latBounds mirrors the serving layer's request-latency buckets so the
// quantile pins below exercise the exact bucket geometry the bug report
// referenced (single 0.3 ms observation reporting p50 = 0.5 ms).
var latBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 13,
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

// TestQuantileInterpolates pins the satellite fix: a single 0.3 ms sample
// falls in the (0.25 ms, 0.5 ms] bucket, and p50 must interpolate inside the
// bucket — rank 0.5 of 1 observation maps halfway to the lower half of the
// bucket, 0.25ms + 0.25ms*0.5 = 0.375 ms — not the 0.5 ms upper bound the old
// implementation returned.
func TestQuantileInterpolates(t *testing.T) {
	h := NewHistogram(latBounds)
	h.Observe(0.0003)
	approx(t, h.Quantile(0.5), 0.000375, 1e-12, "p50 of single 0.3ms sample")
	if up := h.Quantile(1.0); up != 0.0005 {
		t.Fatalf("p100 = %g, want bucket upper bound 0.0005", up)
	}
}

func TestQuantileKnownDistribution(t *testing.T) {
	// 10 observations in (0.001, 0.0025]: ranks spread linearly across the
	// bucket. p50 -> rank 5 of 10 -> halfway through the bucket.
	h := NewHistogram(latBounds)
	for i := 0; i < 10; i++ {
		h.Observe(0.002)
	}
	approx(t, h.Quantile(0.5), 0.001+(0.0025-0.001)*0.5, 1e-12, "p50 uniform bucket")
	approx(t, h.Quantile(0.1), 0.001+(0.0025-0.001)*0.1, 1e-12, "p10 uniform bucket")

	// Split across two buckets: 5 fast (first bucket), 5 slow. p50 lands at
	// the boundary of the fast bucket; p90 interpolates 80% into the slow one.
	h2 := NewHistogram([]float64{0.001, 0.01})
	for i := 0; i < 5; i++ {
		h2.Observe(0.0005)
	}
	for i := 0; i < 5; i++ {
		h2.Observe(0.005)
	}
	approx(t, h2.Quantile(0.5), 0.001, 1e-12, "p50 at bucket boundary")
	approx(t, h2.Quantile(0.9), 0.001+(0.01-0.001)*0.8, 1e-12, "p90 split buckets")
}

func TestQuantileEdges(t *testing.T) {
	h := NewHistogram(latBounds)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	// Overflow observations clamp to the highest bound.
	h.Observe(100)
	if got := h.Quantile(0.5); got != latBounds[len(latBounds)-1] {
		t.Fatalf("overflow quantile = %g, want %g", got, latBounds[len(latBounds)-1])
	}
}

// TestHistogramPrometheusFormat pins the exposition bytes the serving layer
// depends on staying scrape-compatible: cumulative buckets with %g bounds,
// +Inf, _sum, _count.
func TestHistogramPrometheusFormat(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1})
	h.Observe(0.3)
	h.Observe(0.7)
	h.Observe(5) // overflow
	var buf bytes.Buffer
	h.WritePrometheus(&buf, "x_seconds")
	want := "# TYPE x_seconds histogram\n" +
		"x_seconds_bucket{le=\"0.5\"} 1\n" +
		"x_seconds_bucket{le=\"1\"} 2\n" +
		"x_seconds_bucket{le=\"+Inf\"} 3\n" +
		"x_seconds_sum 6\n" +
		"x_seconds_count 3\n"
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestRegistryRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	cv := r.CounterVec("b_total", "route", "code")
	h := r.Histogram("c_seconds", []float64{1})
	c.Add(2)
	cv.With("/v1/eco", "200").Inc()
	cv.With("/healthz", "200").Add(3)
	h.Observe(0.5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	want := "# TYPE a_total counter\n" +
		"a_total 2\n" +
		"# TYPE b_total counter\n" +
		"b_total{route=\"/healthz\",code=\"200\"} 3\n" +
		"b_total{route=\"/v1/eco\",code=\"200\"} 1\n" +
		"# TYPE c_seconds histogram\n" +
		"c_seconds_bucket{le=\"1\"} 1\n" +
		"c_seconds_bucket{le=\"+Inf\"} 1\n" +
		"c_seconds_sum 0.5\n" +
		"c_seconds_count 1\n"
	if out != want {
		t.Fatalf("registry render mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total")
}

func TestCollectorRendersInPlace(t *testing.T) {
	r := NewRegistry()
	r.Counter("first_total").Inc()
	r.Collector("live_gauge", func(w io.Writer) {
		fmt.Fprintf(w, "# TYPE live_gauge gauge\nlive_gauge 7\n")
	})
	r.Counter("last_total").Add(9)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := "# TYPE first_total counter\n" +
		"first_total 1\n" +
		"# TYPE live_gauge gauge\n" +
		"live_gauge 7\n" +
		"# TYPE last_total counter\n" +
		"last_total 9\n"
	if buf.String() != want {
		t.Fatalf("collector render mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}
