package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriteManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer()
	sp := tr.Start("forward")
	sp.End()

	m := &Manifest{
		Tool:      "insta-sta",
		Design:    "block-2",
		StartedAt: time.Unix(0, 1234567890).UTC(),
		WallMS:    42.5,
		Pins:      1000,
		Workers:   8,
		WNSAfter:  -12.5,
		TNSAfter:  -300,
	}
	m.FillPhases(tr)
	m.AddExtra("ecos", 3)

	path, err := WriteManifest(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "insta-sta-block-2-") || !strings.HasSuffix(base, ".json") {
		t.Fatalf("unexpected manifest filename %q", base)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if got.Tool != "insta-sta" || got.Design != "block-2" || got.WNSAfter != -12.5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.Phases) != 1 || got.Phases[0].Name != "forward" {
		t.Fatalf("phases not filled: %+v", got.Phases)
	}
	if got.Extra["ecos"] != float64(3) {
		t.Fatalf("extra not preserved: %+v", got.Extra)
	}
}

func TestManifestFilenameSanitized(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{Tool: "insta sta", Design: "a/b:c", StartedAt: time.Unix(1, 0)}
	path, err := WriteManifest(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if strings.ContainsAny(base, " /:") {
		t.Fatalf("filename not sanitized: %q", base)
	}
}

func TestManifestDirEnvOverride(t *testing.T) {
	t.Setenv("INSTA_MANIFEST_DIR", "/tmp/x")
	if got := ManifestDir(); got != "/tmp/x" {
		t.Fatalf("ManifestDir with env = %q", got)
	}
	t.Setenv("INSTA_MANIFEST_DIR", "")
	if got := ManifestDir(); got != DefaultManifestDir {
		t.Fatalf("ManifestDir default = %q", got)
	}
}
