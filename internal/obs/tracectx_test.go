package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: TraceID{0x0123456789abcdef, 0xfedcba9876543210}, Span: 0xdeadbeefcafef00d}
	h := Traceparent(sc)
	want := "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01"
	if h != want {
		t.Fatalf("Traceparent = %q, want %q", h, want)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v", h, got, ok, sc)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"00-0123456789abcdeffedcba9876543210-deadbeefcafef00d",      // missing flags
		"01-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01",   // wrong version
		"00-00000000000000000000000000000000-deadbeefcafef00d-01",   // zero trace
		"00-0123456789abcdeffedcba987654321g-deadbeefcafef00d-01",   // bad hex
		"00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01-x", // trailing junk
	}
	for _, c := range cases {
		if _, ok := ParseTraceparent(c); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", c)
		}
	}
	// Zero context renders empty, so callers can set-if-nonempty.
	if h := Traceparent(SpanContext{}); h != "" {
		t.Errorf("Traceparent(zero) = %q, want empty", h)
	}
}

func TestParseTraceparentAllocFree(t *testing.T) {
	h := Traceparent(SpanContext{Trace: NewTraceID(), Span: 42})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := ParseTraceparent(h); !ok {
			t.Fatal("parse failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseTraceparent allocates %.1f/op, want 0", allocs)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned zero")
		}
		if seen[id] {
			t.Fatalf("duplicate TraceID %s after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestTraceIDStringParse(t *testing.T) {
	id := NewTraceID()
	s := id.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 32 lowercase hex chars", s)
	}
	got, ok := ParseTraceID(s)
	if !ok || got != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, got, ok)
	}
	if _, ok := ParseTraceID("short"); ok {
		t.Error("ParseTraceID accepted malformed input")
	}
}

func TestStartRemoteJoinsTrace(t *testing.T) {
	tr := NewTracer()
	remote := SpanContext{Trace: NewTraceID(), Span: 0x1234}
	sp := tr.StartRemote("serve", remote)
	if sp == nil {
		t.Fatal("StartRemote returned nil on enabled tracer")
	}
	sc := sp.Context()
	if sc.Trace != remote.Trace {
		t.Fatalf("span trace %s, want %s", sc.Trace, remote.Trace)
	}
	if sc.Span == 0 || sc.Span == remote.Span {
		t.Fatalf("span wire id %x should be fresh and non-zero", sc.Span)
	}
	child := sp.Child("encode")
	if cc := child.Context(); cc.Trace != remote.Trace || cc.Span == sc.Span {
		t.Fatalf("child context %+v should inherit trace with distinct wire id", cc)
	}
	child.End()
	sp.End()

	views := tr.TraceSpans(remote.Trace)
	if len(views) != 2 {
		t.Fatalf("TraceSpans = %d spans, want 2", len(views))
	}
	byName := map[string]SpanView{}
	for _, v := range views {
		byName[v.Name] = v
	}
	if byName["serve"].Parent != remote.Span {
		t.Errorf("serve parent %x, want remote %x", byName["serve"].Parent, remote.Span)
	}
	if byName["encode"].Parent != byName["serve"].Span {
		t.Errorf("encode parent %x, want serve %x", byName["encode"].Parent, byName["serve"].Span)
	}
}

func TestStartTraceMintsFreshTrace(t *testing.T) {
	tr := NewTracer()
	a, b := tr.StartTrace("req-a"), tr.StartTrace("req-b")
	ca, cb := a.Context(), b.Context()
	if ca.Trace.IsZero() || cb.Trace.IsZero() || ca.Trace == cb.Trace {
		t.Fatalf("StartTrace must mint distinct trace ids, got %s / %s", ca.Trace, cb.Trace)
	}
	a.End()
	b.End()
	// Plain Start spans stay outside any trace.
	sp := tr.Start("engine-internal")
	if !sp.Context().IsZero() {
		t.Error("plain Start span should carry the zero trace")
	}
	sp.End()
	if got := tr.TraceSpans(ca.Trace); len(got) != 1 || got[0].Name != "req-a" {
		t.Fatalf("TraceSpans(a) = %+v, want just req-a", got)
	}
	if got := tr.TraceSpans(TraceID{}); got != nil {
		t.Fatal("TraceSpans(zero) must return nil, not the untraced spans")
	}
}

func TestStartRemoteDisabledAndNil(t *testing.T) {
	var nilT *Tracer
	if sp := nilT.StartRemote("x", SpanContext{}); sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	tr := NewTracer()
	tr.Disable()
	if sp := tr.StartRemote("x", SpanContext{Trace: NewTraceID()}); sp != nil {
		t.Fatal("disabled tracer must return nil span")
	}
	var nilSp *Span
	if !nilSp.Context().IsZero() {
		t.Fatal("nil span context must be zero")
	}
}
