package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// traceEvent mirrors the Chrome trace_event fields the export emits.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// span builds a toy nested trace: a root with two phases, one of which has
// per-level children — the same shape a spanned engine run produces.
func buildToyTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer()
	run := tr.Start("run")
	fwd := run.Child("forward")
	for l := 0; l < 3; l++ {
		lv := fwd.ChildArg("level", "level", int64(l))
		lv.End()
	}
	fwd.End()
	slack := run.Child("slack")
	slack.End()
	run.End()
	return tr
}

// TestChromeTraceWellFormed is the golden export test: the emitted JSON must
// parse, every event must carry valid ph/ts fields, and the B/E pairs must
// nest properly per tid (LIFO by name, monotonically non-decreasing ts).
func TestChromeTraceWellFormed(t *testing.T) {
	tr := buildToyTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	// 6 spans -> 12 events.
	if len(f.TraceEvents) != 12 {
		t.Fatalf("want 12 events (6 spans as B/E pairs), got %d", len(f.TraceEvents))
	}
	stacks := map[int64][]string{} // tid -> open span names
	lastTs := map[int64]float64{}
	levelArgs := 0
	for i, ev := range f.TraceEvents {
		if ev.Ph != "B" && ev.Ph != "E" {
			t.Fatalf("event %d: bad ph %q", i, ev.Ph)
		}
		if ev.Ts < 0 {
			t.Fatalf("event %d: negative ts %g", i, ev.Ts)
		}
		if ev.Ts < lastTs[ev.Tid] {
			t.Fatalf("event %d (%s %s): ts %g goes backwards on tid %d (last %g)",
				i, ev.Ph, ev.Name, ev.Ts, ev.Tid, lastTs[ev.Tid])
		}
		lastTs[ev.Tid] = ev.Ts
		switch ev.Ph {
		case "B":
			stacks[ev.Tid] = append(stacks[ev.Tid], ev.Name)
			if v, ok := ev.Args["level"]; ok {
				levelArgs++
				if _, isNum := v.(float64); !isNum {
					t.Fatalf("event %d: level arg is %T, want number", i, v)
				}
			}
		case "E":
			st := stacks[ev.Tid]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q with empty stack on tid %d", i, ev.Name, ev.Tid)
			}
			if top := st[len(st)-1]; top != ev.Name {
				t.Fatalf("event %d: E %q does not match open span %q (improper nesting)", i, ev.Name, top)
			}
			stacks[ev.Tid] = st[:len(st)-1]
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("tid %d: %d unclosed spans: %v", tid, len(st), st)
		}
	}
	if levelArgs != 3 {
		t.Fatalf("want 3 level args, got %d", levelArgs)
	}
}

// TestChromeTraceConcurrentRootsSeparateTids pins the track assignment:
// concurrent root spans must land on distinct tids so their B/E pairs never
// interleave on one stack.
func TestChromeTraceConcurrentRootsSeparateTids(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("eco-a")
	b := tr.Start("eco-b") // overlaps a
	b.End()
	a.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int64{}
	for _, ev := range f.TraceEvents {
		tids[ev.Name] = ev.Tid
	}
	if tids["eco-a"] == tids["eco-b"] {
		t.Fatalf("overlapping roots share tid %d", tids["eco-a"])
	}
}

// TestDisabledTracerZeroAllocs is the overhead contract: a nil tracer and a
// disabled tracer must allocate nothing per span — the Start/End pairs
// compiled into the engine kernels are free when tracing is off.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		sp := nilTr.StartArg("forward", "levels", 12)
		c := sp.ChildArg("level", "level", 3)
		c.End()
		sp.End()
	}); n != 0 {
		t.Fatalf("nil tracer: %v allocs per span pair, want 0", n)
	}

	tr := NewTracer()
	tr.Disable()
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("forward")
		c := sp.Child("level")
		c.End()
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled tracer: %v allocs per span pair, want 0", n)
	}
	if tr.NumSpans() != 0 {
		t.Fatalf("disabled tracer recorded %d spans", tr.NumSpans())
	}
}

func TestTracerMarkWindows(t *testing.T) {
	tr := NewTracer()
	tr.Start("before").End()
	mark := tr.Mark()
	tr.Start("after").End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTraceSince(&buf, mark); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Contains(s, "before") || !strings.Contains(s, "after") {
		t.Fatalf("windowed export wrong:\n%s", s)
	}
}

func TestTracerTotalsAndTree(t *testing.T) {
	tr := buildToyTrace(t)
	totals := tr.Totals()
	byName := map[string]PhaseTotal{}
	for _, pt := range totals {
		byName[pt.Name] = pt
	}
	if byName["level"].Count != 3 {
		t.Fatalf("level count = %d, want 3", byName["level"].Count)
	}
	if byName["run"].Count != 1 || byName["forward"].Count != 1 {
		t.Fatalf("unexpected totals: %+v", totals)
	}
	var buf bytes.Buffer
	tr.WriteTree(&buf)
	out := buf.String()
	for _, want := range []string{"run", "forward", "level", "×3", "slack"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "request")
	if root == nil {
		t.Fatal("Start with tracer in ctx returned nil span")
	}
	_, child := Start(ctx, "eco")
	if child == nil {
		t.Fatal("Start with span in ctx returned nil child")
	}
	child.End()
	root.End()
	if tr.NumSpans() != 2 {
		t.Fatalf("want 2 spans, got %d", tr.NumSpans())
	}
	// Disabled tracer: ctx passes through unchanged, span nil.
	tr.Disable()
	ctx2 := WithTracer(context.Background(), tr)
	got, sp := Start(ctx2, "request")
	if sp != nil || got != ctx2 {
		t.Fatal("disabled tracer must return nil span and the same ctx")
	}
}

func TestSpanDurations(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("sleep")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	totals := tr.Totals()
	if len(totals) != 1 || totals[0].Wall < time.Millisecond {
		t.Fatalf("sleep span too short: %+v", totals)
	}
}
