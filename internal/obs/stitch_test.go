package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestStitchTwoProcesses models a hedged request crossing a process boundary:
// a router tracer with a root span and two attempt children, two replica
// tracers each serving one attempt with the attempt's wire id as remote
// parent. The stitched collection must form one connected tree under the
// shared trace id.
func TestStitchTwoProcesses(t *testing.T) {
	router := NewTracer()
	repA, repB := NewTracer(), NewTracer()

	root := router.StartTrace("route-read")
	trace := root.Context().Trace

	att1 := root.ChildArg("read-attempt", "replica", 0)
	srvA := repA.StartRemote("serve-read", att1.Context())
	srvA.Child("encode").End()
	srvA.End()
	att1.End()

	att2 := root.ChildArg("read-attempt", "replica", 1)
	srvB := repB.StartRemote("serve-read", att2.Context())
	srvB.End()
	att2.End()
	root.End()

	spans := CollectTrace(trace,
		StitchStream{Name: "router", Tracer: router},
		StitchStream{Name: "replica-0", Tracer: repA},
		StitchStream{Name: "replica-1", Tracer: repB},
	)
	if len(spans) != 6 {
		t.Fatalf("stitched %d spans, want 6", len(spans))
	}
	// Every span's parent must resolve within the set (except the one root),
	// across process boundaries.
	byWire := map[uint64]StitchedSpan{}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %q carries trace %s, want %s", s.Name, s.Trace, trace)
		}
		if s.Span == 0 {
			t.Fatalf("span %q has zero wire id", s.Name)
		}
		if _, dup := byWire[s.Span]; dup {
			t.Fatalf("duplicate wire id %x", s.Span)
		}
		byWire[s.Span] = s
	}
	roots := 0
	for _, s := range spans {
		if s.Parent == 0 {
			roots++
			continue
		}
		p, ok := byWire[s.Parent]
		if !ok {
			t.Fatalf("span %q (stream %s) parent %x not in stitched set", s.Name, s.Stream, s.Parent)
		}
		if s.Stream != "router" && p.Stream == s.Stream && s.Name == "serve-read" {
			t.Fatalf("replica serve span should parent into the router stream, got %s", p.Stream)
		}
	}
	if roots != 1 {
		t.Fatalf("stitched tree has %d roots, want 1", roots)
	}

	// The Chrome export is valid JSON naming every stream as a process and
	// carrying the trace id on every event.
	var sb strings.Builder
	if err := WriteStitchedChromeTrace(&sb, trace,
		StitchStream{Name: "router", Tracer: router},
		StitchStream{Name: "replica-0", Tracer: repA},
		StitchStream{Name: "replica-1", Tracer: repB},
	); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("stitched export is not valid JSON: %v\n%s", err, sb.String())
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			args := ev["args"].(map[string]any)
			if args["trace"] != trace.String() {
				t.Fatalf("event %v missing trace id arg", ev)
			}
		}
	}
	if meta != 3 || complete != 6 {
		t.Fatalf("export has %d metadata + %d complete events, want 3 + 6", meta, complete)
	}
}

// TestStitchSkipsForeignTraces pins that stitching is per-trace: spans of
// other requests and untraced engine spans never leak into an export.
func TestStitchSkipsForeignTraces(t *testing.T) {
	tr := NewTracer()
	a := tr.StartTrace("req-a")
	a.End()
	b := tr.StartTrace("req-b")
	b.End()
	tr.Start("engine").End()

	spans := CollectTrace(a.Context().Trace, StitchStream{Name: "p", Tracer: tr})
	if len(spans) != 1 || spans[0].Name != "req-a" {
		t.Fatalf("CollectTrace leaked foreign spans: %+v", spans)
	}
}
