package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderOptions{Size: 4, PinThreshold: time.Hour})
	for i := 0; i < 10; i++ {
		fr.Record(ReqRecord{Route: "read", Status: 200, TotalNs: int64(i)})
	}
	if fr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", fr.Total())
	}
	snap := fr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot = %d records, want 4", len(snap))
	}
	for i, r := range snap {
		if want := int64(6 + i); r.TotalNs != want {
			t.Fatalf("snap[%d].TotalNs = %d, want %d (oldest-first window)", i, r.TotalNs, want)
		}
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderOptions{Size: 8, PinThreshold: time.Hour})
	fr.Record(ReqRecord{Status: 200, TotalNs: 7})
	snap := fr.Snapshot()
	if len(snap) != 1 || snap[0].TotalNs != 7 {
		t.Fatalf("Snapshot = %+v, want the single record", snap)
	}
}

func TestFlightRecorderPinsAnomalies(t *testing.T) {
	tr := NewTracer()
	fr := NewFlightRecorder(FlightRecorderOptions{Size: 4, PinThreshold: time.Millisecond, PinCapacity: 2, Tracer: tr})

	sp := tr.StartTrace("route-eco")
	sp.Child("admit").End()
	sp.End()
	trace := sp.Context().Trace

	// Fast + OK: not pinned.
	fr.Record(ReqRecord{Status: 200, TotalNs: 1000})
	// Slow: pinned with span tree.
	fr.Record(ReqRecord{Trace: trace, Route: "eco", Status: 200, TotalNs: int64(5 * time.Millisecond)})
	// Error: pinned (no spans for the zero trace).
	fr.Record(ReqRecord{Route: "read", Status: 503, TotalNs: 10})
	// Transport failure (status 0): pinned.
	fr.Record(ReqRecord{Route: "read", Status: 0, TotalNs: 10})

	pinned := fr.Pinned()
	if len(pinned) != 2 {
		t.Fatalf("Pinned = %d entries, want 2 (capacity-bounded, oldest evicted)", len(pinned))
	}
	// Oldest (the slow eco) was evicted by the two errors.
	if pinned[0].Rec.Status != 503 || pinned[1].Rec.Status != 0 {
		t.Fatalf("pinned order wrong: %+v", pinned)
	}

	// Re-check span capture with room: fresh recorder, same tracer.
	fr2 := NewFlightRecorder(FlightRecorderOptions{Size: 4, PinThreshold: time.Millisecond, Tracer: tr})
	fr2.Record(ReqRecord{Trace: trace, Route: "eco", Status: 200, TotalNs: int64(5 * time.Millisecond)})
	p2 := fr2.Pinned()
	if len(p2) != 1 || len(p2[0].Spans) != 2 {
		t.Fatalf("pinned anomaly should capture its 2-span tree, got %+v", p2)
	}
}

func TestFlightRecorderRecordAllocFree(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderOptions{Size: 1024, PinThreshold: time.Hour})
	rec := ReqRecord{Trace: NewTraceID(), Route: "read", Shard: "k", Status: 200, TotalNs: 100, ServeNs: 100}
	allocs := testing.AllocsPerRun(10000, func() { fr.Record(rec) })
	if allocs != 0 {
		t.Fatalf("FlightRecorder.Record allocates %.2f/op on the normal path, want 0", allocs)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(ReqRecord{})
	if fr.Total() != 0 || fr.Snapshot() != nil || fr.Pinned() != nil || fr.Size() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	var sb strings.Builder
	if err := fr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("nil dump not valid JSON: %s", sb.String())
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderOptions{Size: 4, PinThreshold: time.Millisecond})
	fr.Record(ReqRecord{Trace: NewTraceID(), Route: "read", Status: 200, TotalNs: 10})
	fr.Record(ReqRecord{Route: "eco", Status: 500, TotalNs: 99})
	var sb strings.Builder
	if err := fr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Size   int `json:"size"`
		Total  int `json:"total"`
		Recent []struct {
			Trace string `json:"trace"`
			Route string `json:"route"`
		} `json:"recent"`
		Pinned []struct {
			Rec struct {
				Status int `json:"status"`
			} `json:"rec"`
		} `json:"pinned"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &dump); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, sb.String())
	}
	if dump.Size != 4 || dump.Total != 2 || len(dump.Recent) != 2 {
		t.Fatalf("dump = %+v", dump)
	}
	if len(dump.Recent[0].Trace) != 32 {
		t.Fatalf("trace id should render as 32-hex, got %q", dump.Recent[0].Trace)
	}
	if len(dump.Pinned) != 1 || dump.Pinned[0].Rec.Status != 500 {
		t.Fatalf("pinned = %+v, want the 500", dump.Pinned)
	}
}
