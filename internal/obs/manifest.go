package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// DefaultManifestDir is where run manifests land relative to the working
// directory unless INSTA_MANIFEST_DIR overrides it — results/manifests/ at
// the repo root, next to the BENCH_*.json trajectories the manifests make
// attributable.
const DefaultManifestDir = "results/manifests"

// Manifest is the JSON record of one run: a CLI invocation, or one session
// commit on the serving daemon. The schema is append-only — downstream
// tooling diffs manifests across PRs, so fields are only ever added.
type Manifest struct {
	Tool      string    `json:"tool"`
	Design    string    `json:"design,omitempty"`
	Git       string    `json:"git,omitempty"`
	StartedAt time.Time `json:"started_at"`
	WallMS    float64   `json:"wall_ms"`

	// Engine shape.
	Pins      int `json:"pins,omitempty"`
	Arcs      int `json:"arcs,omitempty"`
	Endpoints int `json:"endpoints,omitempty"`
	Levels    int `json:"levels,omitempty"`

	// Configuration.
	TopK      int      `json:"top_k,omitempty"`
	Workers   int      `json:"workers,omitempty"`
	Grain     int      `json:"grain,omitempty"`
	Scenarios []string `json:"scenarios,omitempty"`

	// Timing figures, in ps. Before/after bracket whatever the run changed
	// (an ECO commit, a sizing pass); single-evaluation runs fill only After.
	WNSBefore float64 `json:"wns_before,omitempty"`
	TNSBefore float64 `json:"tns_before,omitempty"`
	WNSAfter  float64 `json:"wns_after,omitempty"`
	TNSAfter  float64 `json:"tns_after,omitempty"`

	// Boot provenance: how the run obtained its compiled state (see
	// internal/snap). "warm" runs loaded a snapshot in SnapLoadMS; "cold"
	// runs paid the full parse+signoff+extract+compile ColdBuildMS and wrote
	// the snapshot back when a cache was configured.
	BootMode    string  `json:"boot_mode,omitempty"`
	SnapshotKey string  `json:"snapshot_key,omitempty"`
	SnapLoadMS  float64 `json:"snap_load_ms,omitempty"`
	ColdBuildMS float64 `json:"cold_build_ms,omitempty"`

	// Allocator/collector footprint over the process lifetime at manifest
	// close (FillGC): collection count, cumulative stop-the-world pause and
	// cumulative bytes allocated. Optional and append-only like every
	// manifest field; BENCH_gc.json holds the per-operation view, these give
	// a production run's coarse whole-process counterpart.
	NumGC        uint32  `json:"num_gc,omitempty"`
	GCPauseMS    float64 `json:"gc_pause_ms,omitempty"`
	AllocTotalMB float64 `json:"alloc_total_mb,omitempty"`

	// Phase rollup from the tracer (FillPhases), heaviest first.
	Phases []PhaseEntry `json:"phases,omitempty"`

	// Extra carries tool-specific keys (eco counts, session ids, correlation
	// figures) without schema churn.
	Extra map[string]any `json:"extra,omitempty"`
}

// PhaseEntry is one phase's share of a run in a manifest.
type PhaseEntry struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Count  int64   `json:"count"`
}

// FillGC snapshots the runtime's allocator and collector counters into the
// manifest. ReadMemStats is a stop-the-world point, so call this once at
// manifest close, never inside a measured loop.
func (m *Manifest) FillGC() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.NumGC = ms.NumGC
	m.GCPauseMS = float64(ms.PauseTotalNs) / 1e6
	m.AllocTotalMB = float64(ms.TotalAlloc) / 1e6
}

// FillPhases populates the manifest's phase rollup from the tracer's span
// totals. Nil-safe on a nil tracer (no-op).
func (m *Manifest) FillPhases(t *Tracer) {
	for _, pt := range t.Totals() {
		m.Phases = append(m.Phases, PhaseEntry{
			Name:   pt.Name,
			WallMS: float64(pt.Wall.Nanoseconds()) / 1e6,
			Count:  pt.Count,
		})
	}
}

// AddExtra sets one tool-specific key.
func (m *Manifest) AddExtra(key string, v any) {
	if m.Extra == nil {
		m.Extra = make(map[string]any)
	}
	m.Extra[key] = v
}

// gitDescribe caches the one git invocation per process.
var gitDescribe struct {
	once bool
	val  string
}

// GitDescribe returns `git describe --always --dirty` for the working
// directory, or "" when git (or a repository) is unavailable. The value is
// cached for the process lifetime.
func GitDescribe() string {
	if gitDescribe.once {
		return gitDescribe.val
	}
	gitDescribe.once = true
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err == nil {
		gitDescribe.val = strings.TrimSpace(string(out))
	}
	return gitDescribe.val
}

// ManifestDir resolves the manifest output directory: INSTA_MANIFEST_DIR when
// set, else DefaultManifestDir.
func ManifestDir() string {
	if dir := os.Getenv("INSTA_MANIFEST_DIR"); dir != "" {
		return dir
	}
	return DefaultManifestDir
}

// WriteManifest fills Git (when unset), stamps the filename with the tool,
// design and start time, and writes the manifest as indented JSON under dir
// (created if needed). It returns the file path.
func WriteManifest(dir string, m *Manifest) (string, error) {
	if m.Git == "" {
		m.Git = GitDescribe()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := m.Tool
	if m.Design != "" {
		name += "-" + m.Design
	}
	// Nanosecond stamp keeps concurrent commit manifests collision-free
	// without coordination.
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.json", sanitize(name), m.StartedAt.UnixNano()))
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitize keeps manifest filenames shell-friendly.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
