// Package obs is INSTA's unified telemetry layer: a hierarchical span tracer
// with Chrome trace_event export, one Prometheus-style metrics registry, and
// run manifests — the instrumentation the paper's runtime claims (§IV-A ties
// propagation cost to level count and per-level span width) are validated
// against.
//
// Everything here is dependency-light by design: the tracer and registry are
// importable from the innermost kernels (core, batch, sched) without pulling
// in HTTP, flag or file-system machinery, and the *disabled* tracer costs one
// predictable branch per call with zero allocations — cheap enough to leave
// the Start/End pairs compiled into every hot path permanently.
//
// Span model. A Tracer hands out Spans; a Span hands out children. Methods on
// a nil *Tracer and a nil *Span are no-ops, and a disabled tracer returns nil
// spans, so call sites never guard:
//
//	sp := e.tracer.Start("forward")         // nil-safe, zero-alloc when off
//	ls := sp.ChildArg("level", "level", 7)  // nested span with one argument
//	ls.End()
//	sp.End()
//
// Completed spans accumulate in the tracer and export as Chrome trace_event
// JSON (chrome://tracing, Perfetto) with properly nested B/E pairs, or as a
// plain-text tree with per-node share of the root's wall time.
package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds the tracer's retained span count so an accidentally
// always-on tracer under serving traffic degrades by dropping spans, not by
// exhausting memory. A full-graph propagate on the deepest bench preset emits
// a few thousand spans; one million covers minutes of traced serving.
const maxSpans = 1 << 20

// spanRecord is one completed span as retained by the tracer.
type spanRecord struct {
	id     int64
	parent int64 // 0 = root
	name   string
	start  time.Duration // since tracer epoch
	dur    time.Duration
	argKey string // "" = no argument
	argVal int64
	trace  TraceID // zero for spans outside any request trace
	remote uint64  // wire id of a remote parent (StartRemote); 0 = none
}

// Tracer collects spans. The zero value is not usable; construct with
// NewTracer. All methods are safe for concurrent use and safe on a nil
// receiver (the disabled fast path).
type Tracer struct {
	enabled atomic.Bool
	nextID  atomic.Int64
	epoch   time.Time
	seed    uint64 // per-process wire-id seed (see wireID)

	mu      sync.Mutex
	spans   []spanRecord
	dropped int64
}

// NewTracer returns an enabled tracer. Use Disable for a tracer that is wired
// in but dormant until a debug endpoint (or a flag) switches it on.
func NewTracer() *Tracer {
	t := &Tracer{epoch: time.Now(), seed: mix64(uint64(time.Now().UnixNano()) ^ traceCtr.Add(1)<<17)}
	t.enabled.Store(true)
	return t
}

// wireID projects a process-local span id to its cross-process wire id: the
// tracer seed and local id through one splitmix64 round. Deterministic per
// tracer, so exports can resolve parent links without storing the wire id per
// span. Never zero (zero means "no span" on the wire).
func (t *Tracer) wireID(id int64) uint64 {
	w := mix64(t.seed ^ uint64(id))
	if w == 0 {
		w = 1
	}
	return w
}

// Epoch returns the tracer's time origin; span starts are offsets from it.
// The stitched exporter uses it to place spans from different processes on
// one absolute timeline.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Enable switches span recording on. Safe on nil (no-op).
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled.Store(true)
	}
}

// Disable switches span recording off: Start returns nil spans until Enable.
// Spans already started keep recording through their End. Safe on nil.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// Enabled reports whether the tracer is recording. False on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Start opens a root span. Returns nil — and allocates nothing — when the
// tracer is nil or disabled.
func (t *Tracer) Start(name string) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Span{tr: t, id: t.nextID.Add(1), name: name, start: time.Since(t.epoch)}
}

// StartArg is Start with one integer argument attached (rendered under
// "args" in the Chrome export). The fixed-arity form keeps the disabled path
// free of variadic slice allocations.
func (t *Tracer) StartArg(name, key string, val int64) *Span {
	sp := t.Start(name)
	if sp != nil {
		sp.argKey, sp.argVal = key, val
	}
	return sp
}

// StartRemote opens a root span joined to a request trace: the span adopts
// sc.Trace (minting a fresh TraceID when sc is zero — the edge case where
// this process *is* the edge) and records sc.Span as its remote parent, so
// the stitched export can hang this process's subtree under the caller's
// attempt span. Returns nil when the tracer is nil or disabled, like Start.
func (t *Tracer) StartRemote(name string, sc SpanContext) *Span {
	sp := t.Start(name)
	if sp != nil {
		if sc.Trace.IsZero() {
			sc.Trace = NewTraceID()
		}
		sp.trace, sp.remote = sc.Trace, sc.Span
	}
	return sp
}

// StartTrace opens a root span under a freshly minted TraceID — StartRemote
// with no remote parent, for edge processes minting request identity.
func (t *Tracer) StartTrace(name string) *Span {
	return t.StartRemote(name, SpanContext{})
}

// Mark returns a watermark identifying the current end of the span buffer;
// WriteChromeTraceSince(w, mark) exports only spans completed after it. The
// serving layer's /debug/trace uses this to window a capture without
// discarding spans an always-on -trace run is accumulating.
func (t *Tracer) Mark() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset discards all completed spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.dropped = 0
	t.mu.Unlock()
}

// NumSpans returns the completed span count.
func (t *Tracer) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded at the retention cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one in-flight or completed timing span. A nil *Span is the disabled
// span: every method is a no-op, so instrumented code never branches on the
// tracer state.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	name   string
	start  time.Duration
	argKey string
	argVal int64
	trace  TraceID
	remote uint64
}

// Context returns the span's cross-process coordinate: the trace it belongs
// to plus its wire id, ready to serialize with Traceparent. Zero for a nil
// span or a span outside any request trace, so callers can fall through to
// minting their own TraceID.
func (s *Span) Context() SpanContext {
	if s == nil || s.trace.IsZero() {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.tr.wireID(s.id)}
}

// Child opens a nested span. The child inherits the parent's trace
// membership. Returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	return &Span{tr: t, id: t.nextID.Add(1), parent: s.id, name: name, start: time.Since(t.epoch), trace: s.trace}
}

// ChildArg is Child with one integer argument.
func (s *Span) ChildArg(name, key string, val int64) *Span {
	c := s.Child(name)
	if c != nil {
		c.argKey, c.argVal = key, val
	}
	return c
}

// End completes the span, appending it to the tracer. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	rec := spanRecord{
		id:     s.id,
		parent: s.parent,
		name:   s.name,
		start:  s.start,
		dur:    time.Since(t.epoch) - s.start,
		argKey: s.argKey,
		argVal: s.argVal,
		trace:  s.trace,
		remote: s.remote,
	}
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// spanTree is the reconstructed hierarchy over a snapshot of span records:
// children (indices into recs) keyed by parent id, plus the root list. A span
// whose parent was never completed (dropped, or outside a capture window) is
// promoted to a root so exports never lose it.
type spanTree struct {
	recs     []spanRecord
	children map[int64][]int
	roots    []int
}

func buildTree(recs []spanRecord) *spanTree {
	tr := &spanTree{recs: recs, children: make(map[int64][]int, len(recs))}
	byID := make(map[int64]bool, len(recs))
	for _, r := range recs {
		byID[r.id] = true
	}
	for i, r := range recs {
		if r.parent != 0 && byID[r.parent] {
			tr.children[r.parent] = append(tr.children[r.parent], i)
		} else {
			tr.roots = append(tr.roots, i)
		}
	}
	sortByStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			if recs[idx[a]].start != recs[idx[b]].start {
				return recs[idx[a]].start < recs[idx[b]].start
			}
			return recs[idx[a]].id < recs[idx[b]].id
		})
	}
	sortByStart(tr.roots)
	for _, c := range tr.children {
		sortByStart(c)
	}
	return tr
}

// snapshot copies the completed spans from mark onward.
func (t *Tracer) snapshot(mark int) []spanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if mark < 0 || mark > len(t.spans) {
		mark = 0
	}
	return append([]spanRecord(nil), t.spans[mark:]...)
}

// WriteChromeTrace exports every completed span as Chrome trace_event JSON —
// loadable in chrome://tracing or https://ui.perfetto.dev. Spans become
// nested B/E ("duration begin/end") pairs; each root span tree gets its own
// tid so concurrent operations (parallel ECO sessions) render as separate
// tracks instead of interleaving illegally on one stack.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceSince(w, 0)
}

// WriteChromeTraceSince exports the spans completed after mark (see Mark).
func (t *Tracer) WriteChromeTraceSince(w io.Writer, mark int) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	tree := buildTree(t.snapshot(mark))
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	// DFS per root: B at span start, children in start order, E at span end.
	// ts/dur are microseconds (the trace_event unit), emitted with nanosecond
	// resolution.
	var walk func(idx int, tid int64) error
	walk = func(idx int, tid int64) error {
		r := tree.recs[idx]
		args := ""
		if r.argKey != "" {
			args = fmt.Sprintf(`,"args":{%q:%d}`, r.argKey, r.argVal)
		}
		if err := emit(`{"name":%q,"ph":"B","pid":1,"tid":%d,"ts":%.3f%s}`,
			r.name, tid, float64(r.start.Nanoseconds())/1e3, args); err != nil {
			return err
		}
		for _, c := range tree.children[r.id] {
			if err := walk(c, tid); err != nil {
				return err
			}
		}
		return emit(`{"name":%q,"ph":"E","pid":1,"tid":%d,"ts":%.3f}`,
			r.name, tid, float64((r.start + r.dur).Nanoseconds())/1e3)
	}
	for _, root := range tree.roots {
		if err := walk(root, tree.recs[root].id); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `],"displayTimeUnit":"ms"}`)
	return err
}

// WriteTree renders the completed spans as an indented text tree: duration,
// share of the parent's wall time, and the span argument when present.
// Sibling spans with the same name (per-level kernel spans) are folded into
// one line with a count, keeping deep propagations readable.
func (t *Tracer) WriteTree(w io.Writer) {
	if t == nil {
		return
	}
	tree := buildTree(t.snapshot(0))
	var walk func(indices []int, depth int, parentDur time.Duration)
	walk = func(indices []int, depth int, parentDur time.Duration) {
		type fold struct {
			dur      time.Duration
			count    int
			children []int
		}
		order := []string{}
		folded := map[string]*fold{}
		for _, idx := range indices {
			r := tree.recs[idx]
			f := folded[r.name]
			if f == nil {
				f = &fold{}
				folded[r.name] = f
				order = append(order, r.name)
			}
			f.dur += r.dur
			f.count++
			f.children = append(f.children, tree.children[r.id]...)
		}
		for _, name := range order {
			f := folded[name]
			share := ""
			if parentDur > 0 {
				share = fmt.Sprintf(" %5.1f%%", 100*float64(f.dur)/float64(parentDur))
			}
			count := ""
			if f.count > 1 {
				count = fmt.Sprintf(" ×%d", f.count)
			}
			fmt.Fprintf(w, "%s%-*s %12s%s%s\n",
				strings.Repeat("  ", depth), 24-2*depth, name,
				f.dur.Round(time.Microsecond), share, count)
			if len(f.children) > 0 {
				walk(f.children, depth+1, f.dur)
			}
		}
	}
	walk(tree.roots, 0, 0)
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d spans dropped at the %d-span retention cap)\n", d, maxSpans)
	}
}

// PhaseTotal is one span name's aggregate across the whole trace.
type PhaseTotal struct {
	Name  string        `json:"name"`
	Wall  time.Duration `json:"wall_ns"`
	Count int64         `json:"count"`
}

// Totals aggregates completed spans by name, heaviest first — the per-phase
// rollup run manifests embed. Only top-level time is attributed: a span's
// children overlap it, so totals are reported per name, not summed across
// nesting levels.
func (t *Tracer) Totals() []PhaseTotal {
	if t == nil {
		return nil
	}
	recs := t.snapshot(0)
	agg := map[string]*PhaseTotal{}
	order := []string{}
	for _, r := range recs {
		p := agg[r.name]
		if p == nil {
			p = &PhaseTotal{Name: r.name}
			agg[r.name] = p
			order = append(order, r.name)
		}
		p.Wall += r.dur
		p.Count++
	}
	out := make([]PhaseTotal, 0, len(order))
	for _, name := range order {
		out = append(out, *agg[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ctxKey keys the span/tracer context plumbing.
type ctxKey int

const (
	ctxSpan ctxKey = iota
	ctxTracer
)

// WithTracer returns a context carrying the tracer, for request paths that
// propagate context instead of engine handles.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxTracer, t)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxSpan).(*Span)
	return sp
}

// WithSpan returns a context carrying sp, so obs.Start(ctx, ...) nests under
// it. No-op (returns ctx) when sp is nil.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxSpan, sp)
}

// Start opens a span as a child of the context's span — or as a root of the
// context's tracer when no span is present — and returns the derived context.
// With neither in ctx (or a disabled tracer) it returns ctx unchanged and a
// nil span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		sp := parent.Child(name)
		if sp == nil {
			return ctx, nil
		}
		return context.WithValue(ctx, ctxSpan, sp), sp
	}
	if t, _ := ctx.Value(ctxTracer).(*Tracer); t != nil {
		if sp := t.Start(name); sp != nil {
			return context.WithValue(ctx, ctxSpan, sp), sp
		}
	}
	return ctx, nil
}
