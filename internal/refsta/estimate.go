package refsta

// Frozen-slew estimation for structural ECOs (buffer insertion and cell
// moves), the topo-session counterparts of EstimateECO: each predicts arc
// delay annotations without committing anything to the design, parasitics or
// timing state, so they are safe to call while the engine is shared read-only
// across serving sessions.

import (
	"fmt"
	"math"

	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/num"
	"insta/internal/rc"
)

// EstimateBuffer predicts, with slews frozen at their current values, the
// gate delay of a buffer (library cell bufLib) inserted on net arc arcID at
// fractional position frac along the branch (0 = at the driver, 1 = at the
// sink). The input slew is the driver's current slew degraded across the
// driver-side wire fraction; the output load is the sink-side wire fraction
// plus the sink pin capacitance. The returned distributions are what a topo
// InsertBuffer op should carry as its cell-arc delay; the op itself splits
// the existing wire annotation frac/(1-frac).
func (e *Engine) EstimateBuffer(arcID int32, bufLib int32, frac float64) ([2]num.Dist, error) {
	var out [2]num.Dist
	if arcID < 0 || int(arcID) >= len(e.Arcs) {
		return out, fmt.Errorf("refsta: estimate_buffer: arc %d out of range [0,%d)", arcID, len(e.Arcs))
	}
	a := &e.Arcs[arcID]
	if a.Kind != NetArc {
		return out, fmt.Errorf("refsta: estimate_buffer: arc %d is not a net arc", arcID)
	}
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return out, fmt.Errorf("refsta: estimate_buffer: position %v outside [0,1]", frac)
	}
	if bufLib < 0 || int(bufLib) >= len(e.Lib.Cells) {
		return out, fmt.Errorf("refsta: estimate_buffer: library cell %d out of range", bufLib)
	}
	lc := e.Lib.Cell(bufLib)
	if len(lc.Arcs) != 1 || lc.Arcs[0].Sense != liberty.PositiveUnate {
		return out, fmt.Errorf("refsta: estimate_buffer: library cell %s is not a buffer", lc.Name)
	}
	la := &lc.Arcs[0]
	branch := e.Par.Nets[a.Net].Branch[a.SinkIdx]
	load := (1-frac)*branch.C + e.pinCap(a.To)
	for rf := 0; rf < 2; rf++ {
		s := e.Par.DegradeSlew(e.slew[rf][a.From], frac*a.Delay[rf].Mean)
		out[rf] = num.Dist{Mean: la.Delay[rf].Lookup(s, load), Std: la.Sigma[rf].Lookup(s, load)}
	}
	return out, nil
}

// EstimateBufferDriver predicts, with slews frozen, the driver-side cell arc
// re-annotations that accompany a buffer insertion on net arc arcID at frac:
// the driver sheds the sink-side wire fraction and the sink pin, seeing the
// buffer's input capacitance instead, so its cell arcs re-evaluate at the
// reduced load. This is the half of buffering that *improves* timing — every
// other sink of the net rides the faster driver for free. Returns no deltas
// when the driver is a primary input (no cell arcs to re-annotate).
func (e *Engine) EstimateBufferDriver(arcID int32, bufLib int32, frac float64) ([]ArcDelta, error) {
	if arcID < 0 || int(arcID) >= len(e.Arcs) {
		return nil, fmt.Errorf("refsta: estimate_buffer_driver: arc %d out of range [0,%d)", arcID, len(e.Arcs))
	}
	a := &e.Arcs[arcID]
	if a.Kind != NetArc {
		return nil, fmt.Errorf("refsta: estimate_buffer_driver: arc %d is not a net arc", arcID)
	}
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return nil, fmt.Errorf("refsta: estimate_buffer_driver: position %v outside [0,1]", frac)
	}
	if bufLib < 0 || int(bufLib) >= len(e.Lib.Cells) {
		return nil, fmt.Errorf("refsta: estimate_buffer_driver: library cell %d out of range", bufLib)
	}
	lc := e.Lib.Cell(bufLib)
	if len(lc.Inputs) != 1 {
		return nil, fmt.Errorf("refsta: estimate_buffer_driver: library cell %s is not a buffer", lc.Name)
	}
	d := e.D
	drv := d.Nets[a.Net].Driver
	if d.Pins[drv].Cell == netlist.NoCell {
		return nil, nil
	}
	branch := e.Par.Nets[a.Net].Branch[a.SinkIdx]
	capDelta := lc.PinCap[lc.Inputs[0]] - (1-frac)*branch.C - e.pinCap(a.To)
	newLoad := e.load[drv] + capDelta
	dlc := e.Lib.Cell(d.Cells[d.Pins[drv].Cell].LibCell)
	var deltas []ArcDelta
	for _, ai := range e.fanin[drv] {
		da := &e.Arcs[ai]
		if da.Kind != CellArc {
			continue
		}
		la := &dlc.Arcs[da.LibArc]
		var delta ArcDelta
		delta.ArcID = ai
		for rf := 0; rf < 2; rf++ {
			s := e.frozenWorstSlew(da, rf)
			delta.Delay[rf] = num.Dist{Mean: la.Delay[rf].Lookup(s, newLoad), Std: la.Sigma[rf].Lookup(s, newLoad)}
		}
		deltas = append(deltas, delta)
	}
	return deltas, nil
}

// movedPinPos returns pin p's position under the hypothesis that cell c sits
// at (x, y); pins not owned by c keep their current position.
func (e *Engine) movedPinPos(p netlist.PinID, c netlist.CellID, x, y float64) (float64, float64) {
	if e.D.Pins[p].Cell == c {
		return x, y
	}
	return e.D.PinPos(p)
}

// movedBranch recomputes branch s of net n from hypothetical geometry —
// rc.RebuildNet's math without touching the shared Parasitics.
func (e *Engine) movedBranch(n netlist.NetID, s int, c netlist.CellID, x, y float64) rc.Branch {
	net := &e.D.Nets[n]
	dx, dy := e.movedPinPos(net.Driver, c, x, y)
	sx, sy := e.movedPinPos(net.Sinks[s], c, x, y)
	p := e.Par.Params
	l := math.Abs(sx-dx) + math.Abs(sy-dy) + p.MinLen
	return rc.Branch{Len: l, R: p.RPerUnit * l, C: p.CPerUnit * l}
}

// NetArc resolves the net arc id feeding branch sinkIdx of net n, or -1 —
// the id buffering clients hand to structural sessions as insertion targets.
func (e *Engine) NetArc(n netlist.NetID, sinkIdx int) int32 {
	return e.netArcOf(n, sinkIdx)
}

// netArcOf resolves the net arc id for branch sinkIdx of net n.
func (e *Engine) netArcOf(n netlist.NetID, sinkIdx int) int32 {
	sink := e.D.Nets[n].Sinks[sinkIdx]
	for _, ai := range e.fanin[sink] {
		a := &e.Arcs[ai]
		if a.Kind == NetArc && a.Net == n && int(a.SinkIdx) == sinkIdx {
			return ai
		}
	}
	return -1
}

// EstimateMove predicts, with slews frozen, the arc delay annotations that
// would result from placing cell c at (x, y): the wire arcs of every net
// touching c (Elmore over the new Manhattan lengths) and the cell arcs of
// every driver whose capacitive load shifts with the wire — c's own output
// arcs and the fan-in drivers into c. Like EstimateECO this mutates nothing;
// the design, parasitics and timing state are read-only throughout.
func (e *Engine) EstimateMove(c netlist.CellID, x, y float64) ([]ArcDelta, error) {
	d := e.D
	if int(c) < 0 || int(c) >= len(d.Cells) {
		return nil, fmt.Errorf("refsta: estimate_move: cell %d out of range", c)
	}
	if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
		return nil, fmt.Errorf("refsta: estimate_move: position (%v,%v) not finite", x, y)
	}
	touched := map[netlist.NetID]bool{}
	for _, p := range d.Cells[c].Pins {
		if n := d.Pins[p].Net; n != netlist.NoNet {
			touched[n] = true
		}
	}
	var deltas []ArcDelta
	for n := range touched {
		net := &d.Nets[n]
		var capDelta float64
		for s := range net.Sinks {
			old := e.Par.Nets[n].Branch[s]
			nb := e.movedBranch(n, s, c, x, y)
			capDelta += nb.C - old.C
			if nb.Len == old.Len {
				continue // branch geometry unaffected by the move
			}
			ai := e.netArcOf(n, s)
			if ai < 0 {
				continue
			}
			mean := nb.R * (nb.C/2 + e.pinCap(net.Sinks[s]))
			dd := num.Dist{Mean: mean, Std: e.Par.Params.WireSigmaFrac * mean}
			deltas = append(deltas, ArcDelta{ArcID: ai, Delay: [2]num.Dist{dd, dd}})
		}
		if capDelta == 0 {
			continue
		}
		drv := net.Driver
		if d.Pins[drv].Cell == netlist.NoCell {
			continue // primary-input driver has no cell arcs to re-estimate
		}
		newLoad := e.load[drv] + capDelta
		dlc := e.Lib.Cell(d.Cells[d.Pins[drv].Cell].LibCell)
		for _, ai := range e.fanin[drv] {
			a := &e.Arcs[ai]
			if a.Kind != CellArc {
				continue
			}
			la := &dlc.Arcs[a.LibArc]
			var delta ArcDelta
			delta.ArcID = ai
			for rf := 0; rf < 2; rf++ {
				s := e.frozenWorstSlew(a, rf)
				delta.Delay[rf] = num.Dist{Mean: la.Delay[rf].Lookup(s, newLoad), Std: la.Sigma[rf].Lookup(s, newLoad)}
			}
			deltas = append(deltas, delta)
		}
	}
	return deltas, nil
}

// MoveCell commits a placement change of cell c: updates the design, rebuilds
// the parasitics of every net touching c, and marks the affected cones dirty.
// Returns the previous location so callers can roll back. Follow with an
// update-timing call.
func (e *Engine) MoveCell(c netlist.CellID, x, y float64) (oldX, oldY float64, err error) {
	d := e.D
	if int(c) < 0 || int(c) >= len(d.Cells) {
		return 0, 0, fmt.Errorf("refsta: move_cell: cell %d out of range", c)
	}
	oldX, oldY = d.Cells[c].X, d.Cells[c].Y
	d.Cells[c].X, d.Cells[c].Y = x, y
	nets := make([]netlist.NetID, 0, 4)
	seen := map[netlist.NetID]bool{}
	for _, p := range d.Cells[c].Pins {
		if n := d.Pins[p].Net; n != netlist.NoNet && !seen[n] {
			seen[n] = true
			nets = append(nets, n)
		}
	}
	e.RefreshNetParasitics(nets)
	return oldX, oldY, nil
}
