package refsta

import (
	"math"
	"testing"
)

func TestEstimateBufferMatchesTableLookup(t *testing.T) {
	m, e := newMiniEngine(t)
	buf, _ := m.lib.CellByName("BUF_X4")
	var arc int32 = -1
	for i := range e.Arcs {
		if e.Arcs[i].Kind == NetArc {
			arc = int32(i)
			break
		}
	}
	a := &e.Arcs[arc]
	d, err := e.EstimateBuffer(arc, buf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lc := e.Lib.Cell(buf)
	la := &lc.Arcs[0]
	branch := e.Par.Nets[a.Net].Branch[a.SinkIdx]
	load := 0.5*branch.C + e.pinCap(a.To)
	for rf := 0; rf < 2; rf++ {
		s := e.Par.DegradeSlew(e.slew[rf][a.From], 0.5*a.Delay[rf].Mean)
		if want := la.Delay[rf].Lookup(s, load); d[rf].Mean != want {
			t.Fatalf("rf %d mean %v, want %v", rf, d[rf].Mean, want)
		}
		if d[rf].Std < 0 || math.IsNaN(d[rf].Std) {
			t.Fatalf("rf %d bad sigma %v", rf, d[rf].Std)
		}
	}

	// Invalid inputs are rejected.
	if _, err := e.EstimateBuffer(-1, buf, 0.5); err == nil {
		t.Fatal("bad arc accepted")
	}
	if _, err := e.EstimateBuffer(arc, buf, 1.5); err == nil {
		t.Fatal("bad frac accepted")
	}
	inv, _ := m.lib.CellByName("INV_X1")
	if _, err := e.EstimateBuffer(arc, inv, 0.5); err == nil {
		t.Fatal("non-buffer library cell accepted")
	}
	for i := range e.Arcs {
		if e.Arcs[i].Kind == CellArc {
			if _, err := e.EstimateBuffer(int32(i), buf, 0.5); err == nil {
				t.Fatal("cell arc accepted")
			}
			break
		}
	}
}

func TestEstimateMoveMatchesCommittedMove(t *testing.T) {
	m, e := newMiniEngine(t)
	d := e.D
	c := m.inv1
	nx, ny := d.Cells[c].X+17, d.Cells[c].Y+9

	deltas, err := e.EstimateMove(c, nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) == 0 {
		t.Fatal("move predicted no arc changes")
	}

	// Estimation must not have touched shared state.
	if d.Cells[c].X != nx-17 || d.Cells[c].Y != ny-9 {
		t.Fatal("EstimateMove moved the cell")
	}

	// Commit the same move; every predicted *net* arc annotation must match
	// the committed one exactly (wire Elmore does not depend on slew, so the
	// frozen-slew estimate is exact for wires).
	if _, _, err := e.MoveCell(c, nx, ny); err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingIncremental()
	netArcs := 0
	for _, del := range deltas {
		a := &e.Arcs[del.ArcID]
		if a.Kind != NetArc {
			continue
		}
		netArcs++
		for rf := 0; rf < 2; rf++ {
			if got := a.Delay[rf]; got != del.Delay[rf] {
				t.Fatalf("net arc %d rf %d: committed %v, predicted %v", del.ArcID, rf, got, del.Delay[rf])
			}
		}
	}
	if netArcs == 0 {
		t.Fatal("no net arcs in the predicted set")
	}
}

func TestEstimateMoveRollsBack(t *testing.T) {
	m, e := newMiniEngine(t)
	wnsBefore := e.WNS()
	c := m.inv2
	ox, oy, err := e.MoveCell(c, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingIncremental()
	if _, _, err := e.MoveCell(c, ox, oy); err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingIncremental()
	if got := e.WNS(); got != wnsBefore {
		t.Fatalf("WNS %v after move+rollback, want %v", got, wnsBefore)
	}
}

func TestEstimateMoveNoOpAtCurrentLocation(t *testing.T) {
	m, e := newMiniEngine(t)
	d := e.D
	c := m.inv1
	deltas, err := e.EstimateMove(c, d.Cells[c].X, d.Cells[c].Y)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("in-place move predicted %d arc changes", len(deltas))
	}
}
