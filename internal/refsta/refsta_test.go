package refsta

import (
	"math"
	"strings"
	"testing"

	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/num"
	"insta/internal/rc"
	"insta/internal/sdc"
)

// miniDesign builds a small design exercising launch/capture clocking, CPPR
// branch sharing, inversion, and primary IO:
//
//	clock tree: root -- bA -- {la1 (ff1), la2 (ff2)}
//	                 \- bB -- {lb1 (ff3)}
//	data: ff1.Q -> inv1 -> ff2.D      (same clock branch: large CPPR credit)
//	      ff1.Q -> inv2 -> ff3.D      (cross branch: root-only credit)
//	      pi a -> buf1 -> ff1.D
//	      ff2.Q -> z ; ff3.Q -> z2    (primary outputs)
//
// All cells sit at the origin so both data paths have identical parasitics.
type mini struct {
	d                               *netlist.Design
	lib                             *liberty.Library
	con                             *sdc.Constraints
	par                             *rc.Parasitics
	ff1, ff2, ff3, inv1, inv2, buf1 netlist.CellID
}

func buildMini(t testing.TB) *mini {
	t.Helper()
	lib := liberty.NewSynthetic(liberty.TechN3())
	d := netlist.New("mini")

	dffID, _ := lib.CellByName("DFF_X1")
	invID, _ := lib.CellByName("INV_X1")
	bufID, _ := lib.CellByName("BUF_X1")

	addDFF := func(name string) (c netlist.CellID, dPin, cpPin, qPin netlist.PinID) {
		c = d.AddCell(name, dffID, true)
		dPin = d.AddPin(c, "D", netlist.Input, false)
		cpPin = d.AddPin(c, "CP", netlist.Input, true)
		qPin = d.AddPin(c, "Q", netlist.Output, false)
		return
	}
	addInv := func(name string, id int32) (c netlist.CellID, a, y netlist.PinID) {
		c = d.AddCell(name, id, false)
		a = d.AddPin(c, "A", netlist.Input, false)
		y = d.AddPin(c, "Y", netlist.Output, false)
		return
	}

	ff1, ff1d, ff1cp, ff1q := addDFF("ff1")
	ff2, ff2d, ff2cp, ff2q := addDFF("ff2")
	ff3, ff3d, ff3cp, ff3q := addDFF("ff3")
	inv1, inv1a, inv1y := addInv("inv1", invID)
	inv2, inv2a, inv2y := addInv("inv2", invID)
	buf1, buf1a, buf1y := addInv("buf1", bufID)

	a := d.AddPort("a", netlist.Input)
	z := d.AddPort("z", netlist.Output)
	z2 := d.AddPort("z2", netlist.Output)

	d.Connect(d.AddNet("na", a), buf1a)
	d.Connect(d.AddNet("nb", buf1y), ff1d)
	d.Connect(d.AddNet("nq1", ff1q), inv1a, inv2a)
	d.Connect(d.AddNet("n1", inv1y), ff2d)
	d.Connect(d.AddNet("n2", inv2y), ff3d)
	d.Connect(d.AddNet("nz", ff2q), z)
	d.Connect(d.AddNet("nz2", ff3q), z2)

	ct := netlist.NewClockTree(num.Dist{Mean: 0, Std: 0})
	bA := ct.AddNode(ct.Root(), num.Dist{Mean: 30, Std: 2})
	bB := ct.AddNode(ct.Root(), num.Dist{Mean: 30, Std: 2})
	la1 := ct.AddNode(bA, num.Dist{Mean: 10, Std: 1})
	la2 := ct.AddNode(bA, num.Dist{Mean: 10, Std: 1})
	lb1 := ct.AddNode(bB, num.Dist{Mean: 10, Std: 1})
	ct.BindSink(ff1cp, la1)
	ct.BindSink(ff2cp, la2)
	ct.BindSink(ff3cp, lb1)
	if err := ct.Finalize(); err != nil {
		t.Fatal(err)
	}
	d.Clock = ct

	con := sdc.New(sdc.Clock{Name: "clk", Period: 110, Uncertainty: 5})
	con.InputDelay[a] = num.Dist{Mean: 20, Std: 1}
	con.InputSlew[a] = 10
	con.OutputDelay[z] = 10
	con.OutputDelay[z2] = 10
	con.OutputLoad[z] = 2
	con.OutputLoad[z2] = 2

	par := rc.FromPlacement(d, rc.DefaultParams())
	return &mini{d: d, lib: lib, con: con, par: par,
		ff1: ff1, ff2: ff2, ff3: ff3, inv1: inv1, inv2: inv2, buf1: buf1}
}

func newMiniEngine(t testing.TB) (*mini, *Engine) {
	m := buildMini(t)
	e, err := New(m.d, m.lib, m.con, m.par, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, e
}

func epOf(t testing.TB, e *Engine, pinName string) int32 {
	t.Helper()
	p, ok := e.D.PinByName(pinName)
	if !ok {
		t.Fatalf("pin %s not found", pinName)
	}
	i := e.EPIndexOf(p)
	if i < 0 {
		t.Fatalf("pin %s is not an endpoint", pinName)
	}
	return i
}

func TestEngineBasics(t *testing.T) {
	_, e := newMiniEngine(t)
	if got := len(e.Startpoints()); got != 4 { // 3 FF clocks + 1 PI
		t.Errorf("startpoints = %d, want 4", got)
	}
	if got := len(e.Endpoints()); got != 5 { // 3 FF D + 2 PO
		t.Errorf("endpoints = %d, want 5", got)
	}
	for i, s := range e.EndpointSlacks() {
		if math.IsInf(s, 0) || math.IsNaN(s) {
			t.Errorf("endpoint %d slack = %v", i, s)
		}
	}
	if e.TNS() > e.WNS() {
		t.Errorf("TNS %v should be <= WNS %v", e.TNS(), e.WNS())
	}
	if e.WNS() > 0 {
		t.Errorf("WNS must be <= 0, got %v", e.WNS())
	}
	if (e.TNS() < 0) != (e.NumViolations() > 0) {
		t.Error("TNS and violation count disagree")
	}
}

func TestLoadAnnotation(t *testing.T) {
	m, e := newMiniEngine(t)
	q := m.d.CellPin(m.ff1, "Q")
	net := m.d.Pins[q].Net
	inv := m.lib.Cell(m.d.Cells[m.inv1].LibCell)
	want := e.Par.Nets[net].WireCap() + 2*inv.PinCap["A"]
	if got := e.Load(q); math.Abs(got-want) > 1e-9 {
		t.Errorf("load(ff1/Q) = %v, want %v", got, want)
	}
	// Output port load honoured.
	q2 := m.d.CellPin(m.ff2, "Q")
	net2 := m.d.Pins[q2].Net
	want2 := e.Par.Nets[net2].WireCap() + 2 // OutputLoad[z] = 2
	if got := e.Load(q2); math.Abs(got-want2) > 1e-9 {
		t.Errorf("load(ff2/Q) = %v, want %v", got, want2)
	}
}

func TestCPPRCreditSeparatesBranches(t *testing.T) {
	m, e := newMiniEngine(t)
	// Identical data paths; ff2 shares clock branch bA with the launcher,
	// ff3 shares only the (zero-variance) root. Slack difference must equal
	// the credit difference: 2*3*sqrt(4) - 0 = 12.
	slacks := e.EndpointSlacks()
	s2 := slacks[epOf(t, e, "ff2/D")]
	s3 := slacks[epOf(t, e, "ff3/D")]
	if diff := s2 - s3; math.Abs(diff-12) > 1e-9 {
		t.Errorf("slack(ff2/D) - slack(ff3/D) = %v, want 12 (CPPR credit)", diff)
	}
	_ = m
}

func TestInversionUnateness(t *testing.T) {
	m, e := newMiniEngine(t)
	// At inv1/Y, the rise arrival must equal the fall arrival at inv1/A plus
	// the annotated fall->rise arc delay (negative unate inverter).
	aPin := m.d.CellPin(m.inv1, "A")
	yPin := m.d.CellPin(m.inv1, "Y")
	aArr := e.Arrivals(liberty.Fall, aPin)
	yArr := e.Arrivals(liberty.Rise, yPin)
	if len(aArr) != 1 || len(yArr) != 1 {
		t.Fatalf("unexpected arrival counts: %d, %d", len(aArr), len(yArr))
	}
	var cellArc *Arc
	for i := range e.Arcs {
		a := &e.Arcs[i]
		if a.Kind == CellArc && a.From == aPin && a.To == yPin {
			cellArc = a
		}
	}
	if cellArc == nil {
		t.Fatal("inv1 arc not found")
	}
	want := aArr[0].Dist.Add(cellArc.Delay[liberty.Rise])
	if math.Abs(yArr[0].Dist.Mean-want.Mean) > 1e-9 || math.Abs(yArr[0].Dist.Std-want.Std) > 1e-9 {
		t.Errorf("inv1/Y rise arrival %+v, want %+v", yArr[0].Dist, want)
	}
	if yArr[0].SP != aArr[0].SP {
		t.Error("startpoint lost through inverter")
	}
}

func TestArrivalStartpointTracking(t *testing.T) {
	m, e := newMiniEngine(t)
	// ff2/D is reachable only from ff1's clock pin.
	dPin := m.d.CellPin(m.ff2, "D")
	arr := e.Arrivals(liberty.Rise, dPin)
	if len(arr) != 1 {
		t.Fatalf("ff2/D arrivals = %d, want 1", len(arr))
	}
	cp := m.d.CellPin(m.ff1, "CP")
	if e.SPs[arr[0].SP] != cp {
		t.Errorf("ff2/D startpoint = %v, want ff1/CP", e.SPs[arr[0].SP])
	}
	// ff1/D is reachable only from port a.
	dPin1 := m.d.CellPin(m.ff1, "D")
	arr1 := e.Arrivals(liberty.Rise, dPin1)
	aPort, _ := m.d.PinByName("a")
	if len(arr1) != 1 || e.SPs[arr1[0].SP] != aPort {
		t.Errorf("ff1/D startpoints wrong: %+v", arr1)
	}
}

func TestFalsePathUntimesEndpoint(t *testing.T) {
	m := buildMini(t)
	cp := m.d.CellPin(m.ff1, "CP")
	d3 := m.d.CellPin(m.ff3, "D")
	m.con.Exceptions = []sdc.Exception{{Kind: sdc.FalsePath, From: []netlist.PinID{cp}, To: []netlist.PinID{d3}}}
	e, err := New(m.d, m.lib, m.con, m.par, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := e.EndpointSlacks()[epOf(t, e, "ff3/D")]
	if !math.IsInf(s, 1) {
		t.Errorf("false-pathed endpoint slack = %v, want +Inf", s)
	}
	// Sibling endpoint unaffected.
	if math.IsInf(e.EndpointSlacks()[epOf(t, e, "ff2/D")], 0) {
		t.Error("ff2/D should still be timed")
	}
}

func TestMulticycleAddsPeriods(t *testing.T) {
	m := buildMini(t)
	base, err := New(m.d, m.lib, m.con, m.par, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sBase := base.EndpointSlacks()[epOf(t, base, "ff3/D")]

	m2 := buildMini(t)
	cp := m2.d.CellPin(m2.ff1, "CP")
	d3 := m2.d.CellPin(m2.ff3, "D")
	m2.con.Exceptions = []sdc.Exception{{Kind: sdc.Multicycle, From: []netlist.PinID{cp}, To: []netlist.PinID{d3}, Cycles: 2}}
	e, err := New(m2.d, m2.lib, m2.con, m2.par, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := e.EndpointSlacks()[epOf(t, e, "ff3/D")]
	if math.Abs(s-(sBase+110)) > 1e-9 {
		t.Errorf("multicycle slack = %v, want base %v + one period 110", s, sBase)
	}
}

func TestIncrementalMatchesFullAfterResize(t *testing.T) {
	m, e := newMiniEngine(t)
	newLib, ok := m.lib.Resize(m.d.Cells[m.inv1].LibCell, 2) // X1 -> X4
	if !ok {
		t.Fatal("resize target not found")
	}
	if _, err := e.ResizeCell(m.inv1, newLib); err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingIncremental()
	incr := e.EndpointSlacks()
	if e.LastFullUpdate {
		t.Error("incremental update flagged as full")
	}

	e.UpdateTimingFull()
	full := e.EndpointSlacks()
	for i := range full {
		if math.Abs(full[i]-incr[i]) > 1e-9 {
			t.Errorf("ep %d: incremental %v != full %v", i, incr[i], full[i])
		}
	}
}

func TestIncrementalNoopWhenClean(t *testing.T) {
	_, e := newMiniEngine(t)
	before := e.EndpointSlacks()
	e.UpdateTimingIncremental() // nothing dirty
	after := e.EndpointSlacks()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("no-op incremental changed slacks")
		}
	}
}

func TestResizeActuallyChangesTiming(t *testing.T) {
	m, e := newMiniEngine(t)
	before := e.EndpointSlacks()[epOf(t, e, "ff2/D")]
	newLib, _ := m.lib.Resize(m.d.Cells[m.inv1].LibCell, 2)
	_, err := e.ResizeCell(m.inv1, newLib)
	if err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingIncremental()
	after := e.EndpointSlacks()[epOf(t, e, "ff2/D")]
	if before == after {
		t.Error("resize had no timing effect")
	}
}

func TestResizeRollback(t *testing.T) {
	m, e := newMiniEngine(t)
	orig := e.EndpointSlacks()
	newLib, _ := m.lib.Resize(m.d.Cells[m.inv1].LibCell, 1)
	old, err := e.ResizeCell(m.inv1, newLib)
	if err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingIncremental()
	if _, err := e.ResizeCell(m.inv1, old); err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingIncremental()
	back := e.EndpointSlacks()
	for i := range orig {
		if math.Abs(orig[i]-back[i]) > 1e-9 {
			t.Errorf("ep %d: slack not restored after rollback: %v vs %v", i, orig[i], back[i])
		}
	}
}

func TestResizeAcrossFootprintsRejected(t *testing.T) {
	m, e := newMiniEngine(t)
	nandID, _ := m.lib.CellByName("NAND2_X1")
	if _, err := e.ResizeCell(m.inv1, nandID); err == nil {
		t.Error("cross-footprint resize accepted")
	}
	if _, err := e.EstimateECO(m.inv1, nandID); err == nil {
		t.Error("cross-footprint estimate accepted")
	}
}

func TestEstimateECOApproximatesCommit(t *testing.T) {
	m, e := newMiniEngine(t)
	newLib, _ := m.lib.Resize(m.d.Cells[m.inv1].LibCell, 2)
	deltas, err := e.EstimateECO(m.inv1, newLib)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) == 0 {
		t.Fatal("no deltas returned")
	}
	if _, err := e.ResizeCell(m.inv1, newLib); err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingFull()
	for _, dl := range deltas {
		got := e.Arcs[dl.ArcID].Delay
		for rf := 0; rf < 2; rf++ {
			// The frozen-slew estimate deviates from the committed
			// recomputation exactly because neighbour slews shift — the
			// paper's Fig. 8 error source — but it must stay in the right
			// ballpark to drive optimization.
			if rel := math.Abs(got[rf].Mean-dl.Delay[rf].Mean) / math.Max(got[rf].Mean, 1); rel > 0.25 {
				t.Errorf("arc %d rf %d: estimate %v vs commit %v", dl.ArcID, rf, dl.Delay[rf].Mean, got[rf].Mean)
			}
		}
	}
}

func TestEstimateECOAffectedSet(t *testing.T) {
	m, e := newMiniEngine(t)
	newLib, _ := m.lib.Resize(m.d.Cells[m.inv1].LibCell, 1)
	deltas, err := e.EstimateECO(m.inv1, newLib)
	if err != nil {
		t.Fatal(err)
	}
	// Expected affected arcs: inv1's cell arc, the net arc into inv1/A, and
	// ff1's CP->Q arc (driver load change). Not inv2's arc.
	kinds := map[string]bool{}
	for _, dl := range deltas {
		a := e.Arcs[dl.ArcID]
		switch {
		case a.Kind == CellArc && a.Cell == m.inv1:
			kinds["own"] = true
		case a.Kind == NetArc && a.To == m.d.CellPin(m.inv1, "A"):
			kinds["faninNet"] = true
		case a.Kind == CellArc && a.Cell == m.ff1:
			kinds["driver"] = true
		case a.Kind == CellArc && a.Cell == m.inv2:
			t.Error("inv2 arc must not be in the affected set")
		}
	}
	for _, k := range []string{"own", "faninNet", "driver"} {
		if !kinds[k] {
			t.Errorf("affected set missing %s arc", k)
		}
	}
}

func TestWorstPathTracesToStartpoint(t *testing.T) {
	_, e := newMiniEngine(t)
	// Find the worst endpoint and trace it.
	slacks := e.EndpointSlacks()
	worst := 0
	for i, s := range slacks {
		if s < slacks[worst] {
			worst = i
		}
	}
	steps := e.WorstPath(int32(worst))
	if len(steps) == 0 {
		t.Fatal("empty path")
	}
	// First step's pin is the endpoint itself.
	if steps[0].Pin != e.EPs[worst] {
		t.Errorf("path head pin %v, want endpoint %v", steps[0].Pin, e.EPs[worst])
	}
	// Path must be connected and end at a startpoint.
	for i := 0; i < len(steps)-1; i++ {
		if e.Arcs[steps[i].ArcID].From != steps[i+1].Pin {
			t.Fatalf("path disconnected at step %d", i)
		}
	}
	last := e.Arcs[steps[len(steps)-1].ArcID].From
	if e.SPIndexOf(last) < 0 {
		t.Errorf("path does not end at a startpoint (ends at %s)", e.D.Pins[last].Name)
	}
}

func TestDeterminism(t *testing.T) {
	_, e1 := newMiniEngine(t)
	_, e2 := newMiniEngine(t)
	s1, s2 := e1.EndpointSlacks(), e2.EndpointSlacks()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("non-deterministic slack at ep %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestPOEndpointUsesOutputDelay(t *testing.T) {
	m := buildMini(t)
	e1, err := New(m.d, m.lib, m.con, m.par, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s1 := e1.EndpointSlacks()[epOf(t, e1, "z")]

	m2 := buildMini(t)
	zPin, _ := m2.d.PinByName("z")
	m2.con.OutputDelay[zPin] = 30 // was 10: 20ps tighter
	e2, err := New(m2.d, m2.lib, m2.con, m2.par, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2 := e2.EndpointSlacks()[epOf(t, e2, "z")]
	if math.Abs((s1-s2)-20) > 1e-9 {
		t.Errorf("output delay tightening: slack moved %v, want 20", s1-s2)
	}
}

func TestHoldAnalysisMini(t *testing.T) {
	m, e := newMiniEngine(t)
	if e.HoldEnabled() {
		t.Fatal("hold enabled before request")
	}
	e.EnableHoldAnalysis()
	hs := e.HoldSlacks()
	// FF data endpoints carry finite hold slacks; primary outputs are
	// unchecked.
	for i, ep := range e.Endpoints() {
		isPO := e.D.Pins[ep].Cell == netlist.NoCell
		if isPO && !math.IsInf(hs[i], 1) {
			t.Errorf("PO endpoint %d has hold slack %v", i, hs[i])
		}
		if !isPO && math.IsInf(hs[i], 0) {
			t.Errorf("FF endpoint %d has no hold slack", i)
		}
	}
	// Hold incremental must match full after a resize.
	newLib, _ := m.lib.Resize(m.d.Cells[m.inv1].LibCell, 2)
	if _, err := e.ResizeCell(m.inv1, newLib); err != nil {
		t.Fatal(err)
	}
	e.UpdateTimingIncremental()
	incr := e.HoldSlacks()
	e.UpdateTimingFull()
	full := e.HoldSlacks()
	for i := range full {
		if math.IsInf(full[i], 1) && math.IsInf(incr[i], 1) {
			continue
		}
		if math.Abs(full[i]-incr[i]) > 1e-9 {
			t.Errorf("hold ep %d: incremental %v != full %v", i, incr[i], full[i])
		}
	}
}

func TestHoldEarlyNotAboveLate(t *testing.T) {
	m, e := newMiniEngine(t)
	e.EnableHoldAnalysis()
	d := m.d.CellPin(m.ff2, "D")
	for rf := 0; rf < 2; rf++ {
		late := e.Arrivals(rf, d)
		early := e.EarlyArrivals(rf, d)
		if len(late) != len(early) {
			t.Fatalf("rf %d: SP sets differ between early and late", rf)
		}
		for i := range late {
			if early[i].Dist.EarlyCorner(3) > late[i].Dist.Corner(3)+1e-9 {
				t.Fatalf("rf %d sp %d: early corner above late corner", rf, i)
			}
		}
	}
}

func TestReportTiming(t *testing.T) {
	_, e := newMiniEngine(t)
	var buf strings.Builder
	e.ReportTiming(&buf, 2)
	text := buf.String()
	for _, want := range []string{"report_timing", "Path 1", "Endpoint:", "Startpoint:", "(cell)", "(net)"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// Worst endpoints ordered by slack.
	worst := e.WorstEndpoints(3)
	slacks := e.EndpointSlacks()
	for i := 1; i < len(worst); i++ {
		if slacks[worst[i-1]] > slacks[worst[i]] {
			t.Fatal("WorstEndpoints not ordered")
		}
	}
}

func TestSlackHistogram(t *testing.T) {
	_, e := newMiniEngine(t)
	var buf strings.Builder
	e.SlackHistogram(&buf, 8)
	text := buf.String()
	if !strings.Contains(text, "slack histogram (5 endpoints") {
		t.Errorf("unexpected header:\n%s", text)
	}
	if !strings.Contains(text, "#") {
		t.Error("histogram has no bars")
	}
	// Degenerate inputs must not panic.
	e.SlackHistogram(&buf, 0)
}
