package refsta

import (
	"fmt"

	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/num"
)

// ArcDelta is one re-annotated arc delay produced by EstimateECO: the arc id
// (shared with the circuitops extraction and therefore with INSTA's graph)
// and its predicted post-change delay distributions.
type ArcDelta struct {
	ArcID int32
	Delay [2]num.Dist
}

// affectedArcs enumerates the arcs whose delay annotation a resize of cell c
// touches under the frozen-slew estimate_eco assumption:
//
//  1. c's own cell arcs (new timing tables),
//  2. the net arcs driving c's input pins (new pin capacitance),
//  3. the cell arcs of each fan-in driver (its load changed).
//
// Exactly the paper's "neighbouring cells remain unchanged" locality.
func (e *Engine) affectedArcs(c netlist.CellID) []int32 {
	var out []int32
	seen := make(map[int32]bool)
	add := func(ai int32) {
		if !seen[ai] {
			seen[ai] = true
			out = append(out, ai)
		}
	}
	d := e.D
	for _, p := range d.Cells[c].Pins {
		pin := &d.Pins[p]
		if pin.Dir == netlist.Output {
			for _, ai := range e.fanin[p] {
				add(ai) // the cell's own arcs
			}
			continue
		}
		if pin.IsClock {
			continue // clock pins are fed by the ideal clock tree
		}
		for _, ai := range e.fanin[p] {
			add(ai) // fan-in net arc into this input pin
			drv := e.Arcs[ai].From
			if d.Pins[drv].Cell == netlist.NoCell {
				continue // primary-input driver has no cell arcs
			}
			for _, dai := range e.fanin[drv] {
				add(dai) // fan-in driver's cell arcs (load change)
			}
		}
	}
	return out
}

// EstimateECO predicts, without committing anything and with all slews
// frozen at their current values, the arc delay annotations that would
// result from swapping cell c to library cell newLib. This is the engine's
// equivalent of PrimeTime's estimate_eco (paper §III-H, Fig. 7).
func (e *Engine) EstimateECO(c netlist.CellID, newLib int32) ([]ArcDelta, error) {
	d := e.D
	oldLib := d.Cells[c].LibCell
	oc, nc := e.Lib.Cell(oldLib), e.Lib.Cell(newLib)
	if oc.Footprint != nc.Footprint {
		return nil, fmt.Errorf("refsta: estimate_eco across footprints %s -> %s", oc.Footprint, nc.Footprint)
	}
	deltas := make([]ArcDelta, 0, 8)
	for _, ai := range e.affectedArcs(c) {
		a := &e.Arcs[ai]
		var delta ArcDelta
		delta.ArcID = ai
		switch {
		case a.Kind == CellArc && a.Cell == c:
			// The resized cell's own arcs: new tables, same load and slews.
			la := &nc.Arcs[a.LibArc]
			load := e.load[a.To]
			for rf := 0; rf < 2; rf++ {
				s := e.frozenWorstSlew(a, rf)
				delta.Delay[rf] = num.Dist{Mean: la.Delay[rf].Lookup(s, load), Std: la.Sigma[rf].Lookup(s, load)}
			}
		case a.Kind == NetArc:
			// Fan-in net arc: sink pin capacitance changes.
			newCap := nc.PinCap[d.LocalPinName(a.To)]
			dd := e.Par.BranchDelay(a.Net, int(a.SinkIdx), newCap)
			delta.Delay[0], delta.Delay[1] = dd, dd
		default:
			// Fan-in driver's cell arc: load changes by the pin-cap delta of
			// the sink it drives into cell c.
			newLoad := e.load[a.To] + e.loadDelta(a.To, c, oc, nc)
			dlc := e.Lib.Cell(d.Cells[a.Cell].LibCell)
			la := &dlc.Arcs[a.LibArc]
			for rf := 0; rf < 2; rf++ {
				s := e.frozenWorstSlew(a, rf)
				delta.Delay[rf] = num.Dist{Mean: la.Delay[rf].Lookup(s, newLoad), Std: la.Sigma[rf].Lookup(s, newLoad)}
			}
		}
		deltas = append(deltas, delta)
	}
	return deltas, nil
}

// frozenWorstSlew returns the current worst input slew feeding arc a for
// output transition rf (the estimate_eco frozen-slew assumption).
func (e *Engine) frozenWorstSlew(a *Arc, rf int) float64 {
	inRFs, n := a.Sense.InRFs(rf)
	s := e.slew[inRFs[0]][a.From]
	for i := 1; i < n; i++ {
		if v := e.slew[inRFs[i]][a.From]; v > s {
			s = v
		}
	}
	return s
}

// loadDelta computes how driver pin drv's load changes when cell c swaps
// from oc to nc: the pin-cap difference summed over the sinks of drv's net
// that belong to c.
func (e *Engine) loadDelta(drv netlist.PinID, c netlist.CellID, oc, nc *liberty.Cell) float64 {
	d := e.D
	net := d.Pins[drv].Net
	var delta float64
	for _, s := range d.Nets[net].Sinks {
		if d.Pins[s].Cell == c {
			name := d.LocalPinName(s)
			delta += nc.PinCap[name] - oc.PinCap[name]
		}
	}
	return delta
}

// ResizeCell commits a library swap of cell c and marks the affected cone
// dirty. Call UpdateTimingIncremental (or Full) afterwards to refresh
// timing. It returns the previous library cell id so callers can roll back.
func (e *Engine) ResizeCell(c netlist.CellID, newLib int32) (oldLib int32, err error) {
	d := e.D
	oldLib = d.Cells[c].LibCell
	if oldLib == newLib {
		return oldLib, nil
	}
	oc, nc := e.Lib.Cell(oldLib), e.Lib.Cell(newLib)
	if oc.Footprint != nc.Footprint {
		return oldLib, fmt.Errorf("refsta: resize across footprints %s -> %s", oc.Footprint, nc.Footprint)
	}
	for _, ai := range e.affectedArcs(c) {
		e.MarkDirty(e.Arcs[ai].To)
	}
	d.Cells[c].LibCell = newLib
	if d.Cells[c].Seq {
		// Setup requirement may differ between drive strengths.
		lcNew := e.Lib.Cell(newLib)
		dp := d.CellPin(c, lcNew.DataPin)
		if i, ok := e.epIndex[dp]; ok {
			e.EPSetup[i] = lcNew.Setup
		}
	}
	return oldLib, nil
}

// RefreshNetParasitics rebuilds parasitics for the given nets from current
// placement and marks their cones dirty. The placer calls this after moving
// cells; follow with an update-timing call.
func (e *Engine) RefreshNetParasitics(nets []netlist.NetID) {
	for _, n := range nets {
		e.Par.RebuildNet(e.D, n)
		net := &e.D.Nets[n]
		// Driver's own fan-in arcs see a new load; sinks see new wire delay.
		e.MarkDirty(net.Driver)
		for _, s := range net.Sinks {
			e.MarkDirty(s)
		}
	}
}
