// Package refsta is the reference signoff STA engine of this reproduction —
// the role Synopsys PrimeTime plays in the paper. It performs NLDM delay
// calculation with slew propagation, POCV statistical arrival propagation
// with *exact* (unbounded) unique-startpoint tracking for CPPR, endpoint
// slack/WNS/TNS computation with timing exceptions, incremental
// update-timing, and estimate_eco-style local delay estimation.
//
// INSTA (internal/core) initializes from this engine via the circuitops
// extraction and is validated against its endpoint slacks, exactly as the
// paper validates against PrimeTime (Table I, Figs. 6-8).
package refsta

import (
	"fmt"
	"math"

	"insta/internal/levelize"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/num"
	"insta/internal/rc"
	"insta/internal/sdc"
)

// ArcKind distinguishes cell timing arcs from interconnect arcs.
type ArcKind uint8

// Arc kinds.
const (
	CellArc ArcKind = iota
	NetArc
)

// Arc is one annotated timing arc of the graph.
type Arc struct {
	From, To netlist.PinID
	Kind     ArcKind
	Sense    liberty.Unate

	// Cell arcs: owning cell and the index of the liberty arc within the
	// library cell (stable across drive swaps of the same footprint).
	Cell   netlist.CellID
	LibArc int32
	// Net arcs: net and sink index.
	Net     netlist.NetID
	SinkIdx int32

	// Annotated delay per *output* transition (Rise/Fall).
	Delay [2]num.Dist
}

// Config holds engine knobs.
type Config struct {
	NSigma    float64 // POCV corner multiplier; the paper uses 3.0
	ClockSlew float64 // transition at flip-flop clock pins, ps
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{NSigma: 3.0, ClockSlew: 15}
}

// spArr is one startpoint-resolved arrival entry.
type spArr struct {
	sp   int32 // startpoint index into Engine.SPs
	dist num.Dist
}

// Engine is a fully elaborated timing analysis session on one design.
type Engine struct {
	D   *netlist.Design
	Lib *liberty.Library
	Con *sdc.Constraints
	Par *rc.Parasitics
	Exc *sdc.ExceptionTable
	Cfg Config

	Arcs   []Arc
	fanin  [][]int32 // per pin: arc ids terminating at the pin
	fanout [][]int32 // per pin: arc ids originating at the pin
	Lv     *levelize.Result

	// Startpoints and endpoints.
	SPs     []netlist.PinID // flip-flop clock pins, then primary inputs
	SPNode  []int32         // clock tree node per SP (root for primary inputs)
	spIndex map[netlist.PinID]int32
	EPs     []netlist.PinID // flip-flop D pins, then primary outputs
	epIndex map[netlist.PinID]int32
	EPSetup [][2]float64 // setup requirement per EP per data transition
	EPNode  []int32      // capture clock node per EP

	// Per-pin analysis state.
	load    []float64    // capacitive load seen by each driver pin, fF
	slew    [2][]float64 // worst transition per pin per rf, ps
	arr     [2][][]spArr // exact SP-resolved arrivals per pin per rf, sorted by sp
	isSP    []bool
	spOfPin []int32 // SP index for source pins, -1 otherwise

	epSlack []float64 // per EP, +Inf when fully excepted/unreached

	// Hold analysis state (nil until EnableHoldAnalysis).
	arrMin      [2][][]spArr // early SP-resolved arrivals
	epHoldSlack []float64
	EPHold      [][2]float64 // hold requirement per EP per data transition

	dirty map[netlist.PinID]bool // pins whose fan-in annotation changed since last update

	// Cached stats from the last update.
	LastFullUpdate bool
}

// New builds an engine: constructs the timing graph, levelizes it, computes
// loads, and runs a full timing update.
func New(d *netlist.Design, lib *liberty.Library, con *sdc.Constraints, par *rc.Parasitics, cfg Config) (*Engine, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := par.Validate(d); err != nil {
		return nil, err
	}
	exc, err := con.Compile()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		D: d, Lib: lib, Con: con, Par: par, Exc: exc, Cfg: cfg,
		spIndex: make(map[netlist.PinID]int32),
		epIndex: make(map[netlist.PinID]int32),
		dirty:   make(map[netlist.PinID]bool),
	}
	if err := e.buildGraph(); err != nil {
		return nil, err
	}
	if err := e.identifyEndpoints(); err != nil {
		return nil, err
	}
	n := d.NumPins()
	e.load = make([]float64, n)
	e.slew[0] = make([]float64, n)
	e.slew[1] = make([]float64, n)
	e.arr[0] = make([][]spArr, n)
	e.arr[1] = make([][]spArr, n)
	e.epSlack = make([]float64, len(e.EPs))
	e.UpdateTimingFull()
	return e, nil
}

// buildGraph enumerates net and cell arcs and levelizes the pin graph.
func (e *Engine) buildGraph() error {
	d := e.D
	n := d.NumPins()
	e.fanin = make([][]int32, n)
	e.fanout = make([][]int32, n)
	add := func(a Arc) {
		id := int32(len(e.Arcs))
		e.Arcs = append(e.Arcs, a)
		e.fanin[a.To] = append(e.fanin[a.To], id)
		e.fanout[a.From] = append(e.fanout[a.From], id)
	}
	// Net arcs.
	for ni := range d.Nets {
		net := &d.Nets[ni]
		for si, sink := range net.Sinks {
			add(Arc{
				From: net.Driver, To: sink, Kind: NetArc,
				Sense: liberty.PositiveUnate, Cell: netlist.NoCell,
				Net: netlist.NetID(ni), SinkIdx: int32(si),
			})
		}
	}
	// Cell arcs.
	for ci := range d.Cells {
		cell := &d.Cells[ci]
		lc := e.Lib.Cell(cell.LibCell)
		for ai := range lc.Arcs {
			la := &lc.Arcs[ai]
			from := d.CellPin(netlist.CellID(ci), la.From)
			to := d.CellPin(netlist.CellID(ci), la.To)
			if from == netlist.NoPin || to == netlist.NoPin {
				return fmt.Errorf("refsta: cell %s missing pin for arc %s->%s", cell.Name, la.From, la.To)
			}
			add(Arc{
				From: from, To: to, Kind: CellArc, Sense: la.Sense,
				Cell: netlist.CellID(ci), LibArc: int32(ai), Net: netlist.NoNet,
			})
		}
	}
	lvArcs := make([]levelize.Arc, len(e.Arcs))
	for i, a := range e.Arcs {
		lvArcs[i] = levelize.Arc{From: int32(a.From), To: int32(a.To)}
	}
	lv, err := levelize.Levelize(n, lvArcs)
	if err != nil {
		return err
	}
	e.Lv = lv
	return nil
}

// identifyEndpoints enumerates startpoints (FF clock pins, primary inputs)
// and endpoints (FF data pins, primary outputs) with their clock bindings.
func (e *Engine) identifyEndpoints() error {
	d := e.D
	e.isSP = make([]bool, d.NumPins())
	e.spOfPin = make([]int32, d.NumPins())
	for i := range e.spOfPin {
		e.spOfPin[i] = -1
	}
	addSP := func(p netlist.PinID, node int32) {
		idx := int32(len(e.SPs))
		e.SPs = append(e.SPs, p)
		e.SPNode = append(e.SPNode, node)
		e.spIndex[p] = idx
		e.isSP[p] = true
		e.spOfPin[p] = idx
	}
	addEP := func(p netlist.PinID, node int32, setup [2]float64) {
		idx := int32(len(e.EPs))
		e.EPs = append(e.EPs, p)
		e.EPNode = append(e.EPNode, node)
		e.EPSetup = append(e.EPSetup, setup)
		e.epIndex[p] = idx
	}
	for ci := range d.Cells {
		cell := &d.Cells[ci]
		if !cell.Seq {
			continue
		}
		lc := e.Lib.Cell(cell.LibCell)
		cp := d.CellPin(netlist.CellID(ci), lc.ClockPin)
		dp := d.CellPin(netlist.CellID(ci), lc.DataPin)
		if cp == netlist.NoPin || dp == netlist.NoPin {
			return fmt.Errorf("refsta: sequential cell %s lacks %s/%s pins", cell.Name, lc.ClockPin, lc.DataPin)
		}
		node, ok := d.Clock.SinkOf(cp)
		if !ok {
			return fmt.Errorf("refsta: clock pin %s not bound to clock tree", d.Pins[cp].Name)
		}
		addSP(cp, node)
		addEP(dp, node, lc.Setup)
	}
	for _, p := range d.PortIns {
		addSP(p, e.rootNode())
	}
	for _, p := range d.PortOuts {
		addEP(p, e.rootNode(), [2]float64{0, 0})
	}
	if len(e.EPs) == 0 {
		return fmt.Errorf("refsta: design %s has no timing endpoints", d.Name)
	}
	return nil
}

func (e *Engine) rootNode() int32 {
	if e.D.Clock != nil {
		return e.D.Clock.Root()
	}
	return 0
}

// NumArcs returns the timing arc count.
func (e *Engine) NumArcs() int { return len(e.Arcs) }

// Endpoints returns the endpoint pin list (FF data pins, then primary outputs).
func (e *Engine) Endpoints() []netlist.PinID { return e.EPs }

// Startpoints returns the startpoint pin list (FF clock pins, then primary inputs).
func (e *Engine) Startpoints() []netlist.PinID { return e.SPs }

// SPIndexOf returns the startpoint index of pin p, or -1.
func (e *Engine) SPIndexOf(p netlist.PinID) int32 {
	if i, ok := e.spIndex[p]; ok {
		return i
	}
	return -1
}

// EPIndexOf returns the endpoint index of pin p, or -1.
func (e *Engine) EPIndexOf(p netlist.PinID) int32 {
	if i, ok := e.epIndex[p]; ok {
		return i
	}
	return -1
}

// Slew returns the worst propagated transition at pin p for transition rf.
func (e *Engine) Slew(rf int, p netlist.PinID) float64 { return e.slew[rf][p] }

// Load returns the capacitive load annotated at driver pin p.
func (e *Engine) Load(p netlist.PinID) float64 { return e.load[p] }

// credit returns the CPPR common-path credit between launch SP index sp and
// the capture node of EP index ep: 2*NSigma*sqrt(shared clock variance).
func (e *Engine) credit(sp, ep int32) float64 {
	if e.D.Clock == nil {
		return 0
	}
	common := e.D.Clock.CommonVar(e.SPNode[sp], e.EPNode[ep])
	return 2 * e.Cfg.NSigma * math.Sqrt(common)
}

// earlyClockAt returns the early-corner capture clock arrival at EP index ep.
func (e *Engine) earlyClockAt(ep int32) float64 {
	if e.D.Clock == nil {
		return 0
	}
	return e.D.Clock.Arrival(e.EPNode[ep]).EarlyCorner(e.Cfg.NSigma)
}
