package refsta

import (
	"math"
	"testing"

	"insta/internal/liberty"
)

func TestPinSlacksEndpointsMatchSlack(t *testing.T) {
	_, e := newMiniEngine(t)
	ps := e.PinSlacks()
	slacks := e.EndpointSlacks()
	for i, ep := range e.Endpoints() {
		want := slacks[i]
		got := math.Min(ps[ep][liberty.Rise], ps[ep][liberty.Fall])
		if math.IsInf(want, 1) {
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("ep %d pin slack %v != endpoint slack %v", i, got, want)
		}
	}
}

func TestPinSlacksBoundedByWNS(t *testing.T) {
	// No pin's slack can be below the design WNS: the worst path through any
	// pin ends at some endpoint whose slack is >= WNS.
	_, e := newMiniEngine(t)
	ps := e.PinSlacks()
	wns := e.WNS()
	for p := range ps {
		for rf := 0; rf < 2; rf++ {
			if math.IsInf(ps[p][rf], 0) {
				continue
			}
			if ps[p][rf] < wns-1e-6 {
				t.Fatalf("pin %d rf %d slack %v below WNS %v", p, rf, ps[p][rf], wns)
			}
		}
	}
}

func TestPinSlacksSourcesTimed(t *testing.T) {
	// Startpoints that reach a timed endpoint must have finite slack.
	m, e := newMiniEngine(t)
	ps := e.PinSlacks()
	cp := m.d.CellPin(m.ff1, "CP")
	if math.IsInf(ps[cp][liberty.Rise], 0) && math.IsInf(ps[cp][liberty.Fall], 0) {
		t.Error("launching flop clock pin has no propagated slack")
	}
}

func TestNetSlack(t *testing.T) {
	m, e := newMiniEngine(t)
	ps := e.PinSlacks()
	ns := NetSlack(e, ps)
	if len(ns) != len(m.d.Nets) {
		t.Fatalf("net slack count %d != nets %d", len(ns), len(m.d.Nets))
	}
	// The net driven by ff1/Q must carry the min of the driver's two slacks.
	q := m.d.CellPin(m.ff1, "Q")
	net := m.d.Pins[q].Net
	want := math.Min(ps[q][0], ps[q][1])
	if ns[net] != want {
		t.Errorf("net slack %v, want %v", ns[net], want)
	}
}
