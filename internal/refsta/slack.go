package refsta

import (
	"math"

	"insta/internal/netlist"
	"insta/internal/num"
)

// computeSlacks evaluates every endpoint's setup slack:
//
//	slack(ep, rf, sp) = m*T + earlyClk(capture) + credit(sp, ep)
//	                    - setup[rf] - uncertainty - arrivalCorner(ep, rf, sp)
//
// minimized over data transitions and startpoints, honouring false-path and
// multicycle exceptions per (startpoint, endpoint) pair. Endpoints with no
// timed arrival get +Inf slack.
func (e *Engine) computeSlacks() {
	T := e.Con.Clock.Period
	U := e.Con.Clock.Uncertainty
	for i := range e.EPs {
		ep := e.EPs[i]
		epIdx := int32(i)
		slack := math.Inf(1)
		earlyClk := e.earlyClockAt(epIdx)
		extMargin := 0.0
		if e.D.Pins[ep].Cell == netlist.NoCell {
			extMargin = e.Con.OutputDelay[ep]
		}
		for rf := 0; rf < 2; rf++ {
			setup := e.EPSetup[i][rf]
			for _, entry := range e.arr[rf][ep] {
				spPin := e.SPs[entry.sp]
				adj := e.Exc.Lookup(spPin, ep)
				if adj.False {
					continue
				}
				m := float64(adj.CycleCount())
				req := m*T + earlyClk + e.credit(entry.sp, epIdx) - setup - U - extMargin
				if s := req - entry.dist.Corner(e.Cfg.NSigma); s < slack {
					slack = s
				}
			}
		}
		e.epSlack[i] = slack
	}
}

// EndpointSlacks returns the per-endpoint setup slack, aligned with
// Endpoints(). Untimed endpoints carry +Inf.
func (e *Engine) EndpointSlacks() []float64 {
	out := make([]float64, len(e.epSlack))
	copy(out, e.epSlack)
	return out
}

// WNS returns the worst negative slack (0 when nothing violates).
func (e *Engine) WNS() float64 {
	w := 0.0
	for _, s := range e.epSlack {
		if s < w {
			w = s
		}
	}
	return w
}

// TNS returns the total negative slack: the sum of negative endpoint slacks.
func (e *Engine) TNS() float64 {
	t := 0.0
	for _, s := range e.epSlack {
		if s < 0 {
			t += s
		}
	}
	return t
}

// NumViolations counts endpoints with negative slack.
func (e *Engine) NumViolations() int {
	n := 0
	for _, s := range e.epSlack {
		if s < 0 {
			n++
		}
	}
	return n
}

// SPArrival is an exported startpoint-resolved arrival entry.
type SPArrival struct {
	SP   int32 // startpoint index into Startpoints()
	Dist num.Dist
}

// Arrivals returns the startpoint-resolved arrival entries at pin p for
// transition rf, sorted by startpoint index.
func (e *Engine) Arrivals(rf int, p netlist.PinID) []SPArrival {
	in := e.arr[rf][p]
	out := make([]SPArrival, len(in))
	for i, a := range in {
		out[i] = SPArrival{SP: a.sp, Dist: a.dist}
	}
	return out
}

// WorstArrivalCorner returns the maximum corner arrival at pin p for
// transition rf, or -Inf when the pin has no arrival.
func (e *Engine) WorstArrivalCorner(rf int, p netlist.PinID) float64 {
	w := math.Inf(-1)
	for _, a := range e.arr[rf][p] {
		if c := a.dist.Corner(e.Cfg.NSigma); c > w {
			w = c
		}
	}
	return w
}

// PathStep is one arc on a traced critical path.
type PathStep struct {
	ArcID int32
	Pin   netlist.PinID // the To pin of the step
	RF    int
}

// WorstPath traces the data path of endpoint index ep's worst slack back to
// its startpoint, returning the steps endpoint-first. It returns nil when the
// endpoint has no timed arrival. The trace follows, at each pin, the fan-in
// arc whose shifted parent arrival reproduces the pin's stored arrival for
// the critical startpoint — the standard reference-tool path expansion.
func (e *Engine) WorstPath(ep int32) []PathStep {
	p := e.EPs[ep]
	T := e.Con.Clock.Period
	U := e.Con.Clock.Uncertainty
	earlyClk := e.earlyClockAt(ep)
	extMargin := 0.0
	if e.D.Pins[p].Cell == netlist.NoCell {
		extMargin = e.Con.OutputDelay[p]
	}

	bestSlack := math.Inf(1)
	bestRF, bestSP := -1, int32(-1)
	for rf := 0; rf < 2; rf++ {
		for _, entry := range e.arr[rf][p] {
			adj := e.Exc.Lookup(e.SPs[entry.sp], p)
			if adj.False {
				continue
			}
			m := float64(adj.CycleCount())
			req := m*T + earlyClk + e.credit(entry.sp, ep) - e.EPSetup[ep][rf] - U - extMargin
			if s := req - entry.dist.Corner(e.Cfg.NSigma); s < bestSlack {
				bestSlack, bestRF, bestSP = s, rf, entry.sp
			}
		}
	}
	if bestRF < 0 {
		return nil
	}

	var steps []PathStep
	cur, rf, sp := p, bestRF, bestSP
	for !e.isSP[cur] {
		found := false
		var pickArc int32
		var pickRF int
		bestCorner := math.Inf(-1)
		for _, ai := range e.fanin[cur] {
			a := &e.Arcs[ai]
			inRFs, n := a.Sense.InRFs(rf)
			for i := 0; i < n; i++ {
				prf := inRFs[i]
				if d, ok := lookupSP(e.arr[prf][a.From], sp); ok {
					c := d.Add(a.Delay[rf]).Corner(e.Cfg.NSigma)
					if c > bestCorner {
						bestCorner, pickArc, pickRF, found = c, ai, prf, true
					}
				}
			}
		}
		if !found {
			break
		}
		steps = append(steps, PathStep{ArcID: pickArc, Pin: cur, RF: rf})
		cur, rf = e.Arcs[pickArc].From, pickRF
	}
	return steps
}

func lookupSP(entries []spArr, sp int32) (d num.Dist, ok bool) {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case entries[mid].sp < sp:
			lo = mid + 1
		case entries[mid].sp > sp:
			hi = mid
		default:
			return entries[mid].dist, true
		}
	}
	return d, false
}
