package refsta

import (
	"math"

	"insta/internal/liberty"
	"insta/internal/netlist"
)

// PinSlacks computes the classic graph-based per-pin worst slack: required
// times are seeded at endpoints from their evaluated slacks (so CPPR and
// exceptions are already folded in) and propagated backward as
// req(p) = min over fanout arcs (req(to) - delay), while arrivals use the
// worst corner per pin. The result, indexed by pin, is what slack-driven
// net weighting consumes (DREAMPlace 4.0's criticality source). Pins with no
// timed fanout cone carry +Inf.
func (e *Engine) PinSlacks() [][2]float64 {
	n := e.D.NumPins()
	req := [2][]float64{make([]float64, n), make([]float64, n)}
	for rf := 0; rf < 2; rf++ {
		for i := range req[rf] {
			req[rf][i] = math.Inf(1)
		}
	}
	// Seed endpoints: required corner = arrival corner + slack.
	for i, ep := range e.EPs {
		s := e.epSlack[i]
		if math.IsInf(s, 1) {
			continue
		}
		for rf := 0; rf < 2; rf++ {
			if a := e.WorstArrivalCorner(rf, ep); !math.IsInf(a, -1) {
				req[rf][ep] = a + s
			}
		}
	}
	// Backward sweep in reverse level order.
	for li := len(e.Lv.Order) - 1; li >= 0; li-- {
		p := netlist.PinID(e.Lv.Order[li])
		for _, ai := range e.fanout[p] {
			a := &e.Arcs[ai]
			for outRF := 0; outRF < 2; outRF++ {
				r := req[outRF][a.To]
				if math.IsInf(r, 1) {
					continue
				}
				cand := r - a.Delay[outRF].Corner(e.Cfg.NSigma)
				inRFs, nn := a.Sense.InRFs(outRF)
				for i := 0; i < nn; i++ {
					if cand < req[inRFs[i]][p] {
						req[inRFs[i]][p] = cand
					}
				}
			}
		}
	}
	out := make([][2]float64, n)
	for p := 0; p < n; p++ {
		for rf := 0; rf < 2; rf++ {
			a := e.WorstArrivalCorner(rf, netlist.PinID(p))
			if math.IsInf(a, -1) || math.IsInf(req[rf][p], 1) {
				out[p][rf] = math.Inf(1)
				continue
			}
			out[p][rf] = req[rf][p] - a
		}
	}
	return out
}

// NetSlack reduces PinSlacks output to one worst slack per net, taken at the
// driver pin over both transitions.
func NetSlack(e *Engine, pinSlacks [][2]float64) []float64 {
	out := make([]float64, len(e.D.Nets))
	for i := range e.D.Nets {
		drv := e.D.Nets[i].Driver
		s := pinSlacks[drv][liberty.Rise]
		if f := pinSlacks[drv][liberty.Fall]; f < s {
			s = f
		}
		out[i] = s
	}
	return out
}
