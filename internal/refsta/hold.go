package refsta

// Hold (early/min-delay) analysis. The paper's INSTA handles the late/setup
// check (WNS/TNS are setup metrics); a production signoff engine also checks
// hold: the earliest data arrival at a flop must not race past the capture
// edge. This extension mirrors the late machinery with min-merge early
// arrivals:
//
//	holdSlack(ep, rf, sp) = earlyArrival(ep, rf, sp) corner
//	                      - (lateCaptureClock + hold[rf] + holdUncertainty)
//	                      + credit(sp, ep)
//
// minimized over data transitions and startpoints. The early corner of a
// distribution is mean - nSigma*sigma; launch arrivals seed from the same
// clock distributions; false paths are honoured (multicycle does not move
// the hold check, the standard single-cycle-hold convention).

import (
	"math"

	"insta/internal/netlist"
	"insta/internal/num"
)

// enableHold turns on early-arrival propagation. It must be called before
// the next UpdateTimingFull; New-created engines have it off so the setup
// experiments pay nothing for it.
func (e *Engine) enableHold() {
	if e.arrMin[0] != nil {
		return
	}
	n := e.D.NumPins()
	e.arrMin[0] = make([][]spArr, n)
	e.arrMin[1] = make([][]spArr, n)
	e.epHoldSlack = make([]float64, len(e.EPs))
	e.EPHold = make([][2]float64, len(e.EPs))
	for i, p := range e.EPs {
		pin := &e.D.Pins[p]
		if pin.Cell == netlist.NoCell {
			continue // primary outputs carry no hold check here
		}
		lc := e.Lib.Cell(e.D.Cells[pin.Cell].LibCell)
		e.EPHold[i] = lc.Hold
	}
}

// EnableHoldAnalysis switches on hold checking and refreshes timing.
func (e *Engine) EnableHoldAnalysis() {
	e.enableHold()
	e.UpdateTimingFull()
}

// HoldEnabled reports whether early-arrival propagation is active.
func (e *Engine) HoldEnabled() bool { return e.arrMin[0] != nil }

// initSourcePinMin seeds the early arrival at a timing source.
func (e *Engine) initSourcePinMin(p netlist.PinID) {
	pin := &e.D.Pins[p]
	sp := e.spOfPin[p]
	var d num.Dist
	if pin.IsClock {
		node, _ := e.D.Clock.SinkOf(p)
		d = e.D.Clock.Arrival(node)
	} else {
		d = e.Con.InputDelay[p]
	}
	for rf := 0; rf < 2; rf++ {
		e.arrMin[rf][p] = []spArr{{sp: sp, dist: d}}
	}
}

// mergeArrivalsMin merges fan-in contributions keeping, per startpoint, the
// minimum-early-corner arrival distribution.
func (e *Engine) mergeArrivalsMin(p netlist.PinID, rf int) []spArr {
	var merged []spArr
	nSigma := e.Cfg.NSigma
	for _, ai := range e.fanin[p] {
		a := &e.Arcs[ai]
		inRFs, n := a.Sense.InRFs(rf)
		for i := 0; i < n; i++ {
			parent := e.arrMin[inRFs[i]][a.From]
			if len(parent) == 0 {
				continue
			}
			merged = mergeShiftedMin(merged, parent, a.Delay[rf], nSigma)
		}
	}
	return merged
}

// mergeShiftedMin is mergeShifted's early twin: on equal startpoints the
// smaller early corner wins.
func mergeShiftedMin(dst, src []spArr, delay num.Dist, nSigma float64) []spArr {
	if len(dst) == 0 {
		out := make([]spArr, len(src))
		for i, s := range src {
			out[i] = spArr{sp: s.sp, dist: s.dist.Add(delay)}
		}
		return out
	}
	out := make([]spArr, 0, len(dst)+len(src))
	i, j := 0, 0
	for i < len(dst) && j < len(src) {
		switch {
		case dst[i].sp < src[j].sp:
			out = append(out, dst[i])
			i++
		case dst[i].sp > src[j].sp:
			out = append(out, spArr{sp: src[j].sp, dist: src[j].dist.Add(delay)})
			j++
		default:
			cand := src[j].dist.Add(delay)
			if cand.EarlyCorner(nSigma) < dst[i].dist.EarlyCorner(nSigma) {
				out = append(out, spArr{sp: src[j].sp, dist: cand})
			} else {
				out = append(out, dst[i])
			}
			i++
			j++
		}
	}
	out = append(out, dst[i:]...)
	for ; j < len(src); j++ {
		out = append(out, spArr{sp: src[j].sp, dist: src[j].dist.Add(delay)})
	}
	return out
}

// processPinMin updates early arrivals at p; returns true when they changed.
// Arc delays were already re-annotated by the late pass.
func (e *Engine) processPinMin(p netlist.PinID) bool {
	changed := false
	for rf := 0; rf < 2; rf++ {
		merged := e.mergeArrivalsMin(p, rf)
		if !spArrEqual(merged, e.arrMin[rf][p]) {
			e.arrMin[rf][p] = merged
			changed = true
		}
	}
	return changed
}

// computeHoldSlacks evaluates hold slack at flip-flop data endpoints.
// Primary outputs keep +Inf (no hold check against the external world here).
func (e *Engine) computeHoldSlacks() {
	if !e.HoldEnabled() {
		return
	}
	hu := e.Con.Clock.HoldUncertainty
	for i := range e.EPs {
		ep := e.EPs[i]
		if e.D.Pins[ep].Cell == netlist.NoCell {
			e.epHoldSlack[i] = math.Inf(1)
			continue
		}
		captureLate := 0.0
		if e.D.Clock != nil {
			captureLate = e.D.Clock.Arrival(e.EPNode[i]).Corner(e.Cfg.NSigma)
		}
		slack := math.Inf(1)
		for rf := 0; rf < 2; rf++ {
			req := captureLate + e.EPHold[i][rf] + hu
			for _, entry := range e.arrMin[rf][ep] {
				adj := e.Exc.Lookup(e.SPs[entry.sp], ep)
				if adj.False {
					continue
				}
				s := entry.dist.EarlyCorner(e.Cfg.NSigma) - req + e.credit(entry.sp, int32(i))
				if s < slack {
					slack = s
				}
			}
		}
		e.epHoldSlack[i] = slack
	}
}

// HoldSlacks returns the per-endpoint hold slack (EnableHoldAnalysis first);
// +Inf marks unchecked endpoints.
func (e *Engine) HoldSlacks() []float64 {
	out := make([]float64, len(e.epHoldSlack))
	copy(out, e.epHoldSlack)
	return out
}

// HoldWNS returns the worst negative hold slack (0 when clean).
func (e *Engine) HoldWNS() float64 {
	w := 0.0
	for _, s := range e.epHoldSlack {
		if s < w {
			w = s
		}
	}
	return w
}

// HoldTNS returns the total negative hold slack.
func (e *Engine) HoldTNS() float64 {
	t := 0.0
	for _, s := range e.epHoldSlack {
		if s < 0 {
			t += s
		}
	}
	return t
}

// EarlyArrivals returns the startpoint-resolved early arrivals at pin p.
func (e *Engine) EarlyArrivals(rf int, p netlist.PinID) []SPArrival {
	in := e.arrMin[rf][p]
	out := make([]SPArrival, len(in))
	for i, a := range in {
		out[i] = SPArrival{SP: a.sp, Dist: a.dist}
	}
	return out
}
