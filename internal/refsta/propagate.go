package refsta

import (
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/num"
)

// pinCap returns the input capacitance presented by load pin p: the library
// pin cap for cell pins, the external load for primary outputs.
func (e *Engine) pinCap(p netlist.PinID) float64 {
	pin := &e.D.Pins[p]
	if pin.Cell == netlist.NoCell {
		return e.Con.OutputLoad[p]
	}
	lc := e.Lib.Cell(e.D.Cells[pin.Cell].LibCell)
	return lc.PinCap[e.D.LocalPinName(p)]
}

// computeLoads annotates every driver pin with its total capacitive load:
// wire capacitance plus sink pin capacitances.
func (e *Engine) computeLoads() {
	for ni := range e.D.Nets {
		net := &e.D.Nets[ni]
		c := e.Par.Nets[ni].WireCap()
		for _, s := range net.Sinks {
			c += e.pinCap(s)
		}
		e.load[net.Driver] = c
	}
}

// computeArcDelay annotates arc a's delay distributions and returns them.
// Cell arcs use NLDM lookups at the From pin's current worst slew and the To
// pin's load; net arcs use Elmore branch delay.
func (e *Engine) computeArcDelay(a *Arc) {
	if a.Kind == NetArc {
		d := e.Par.BranchDelay(a.Net, int(a.SinkIdx), e.pinCap(a.To))
		a.Delay[liberty.Rise] = d
		a.Delay[liberty.Fall] = d
		return
	}
	lc := e.Lib.Cell(e.D.Cells[a.Cell].LibCell)
	la := &lc.Arcs[a.LibArc]
	load := e.load[a.To]
	for outRF := 0; outRF < 2; outRF++ {
		inRFs, n := a.Sense.InRFs(outRF)
		// The annotated arc delay is taken at the worst (largest) input slew
		// among the transitions that can cause this output transition —
		// graph-based analysis convention.
		worstSlew := e.slew[inRFs[0]][a.From]
		for i := 1; i < n; i++ {
			if s := e.slew[inRFs[i]][a.From]; s > worstSlew {
				worstSlew = s
			}
		}
		a.Delay[outRF] = num.Dist{
			Mean: la.Delay[outRF].Lookup(worstSlew, load),
			Std:  la.Sigma[outRF].Lookup(worstSlew, load),
		}
	}
}

// outSlewOf returns the slew candidate arc a contributes to its To pin for
// output transition rf, using already-annotated delay for net arcs.
func (e *Engine) outSlewOf(a *Arc, rf int) float64 {
	if a.Kind == NetArc {
		return e.Par.DegradeSlew(e.slew[rf][a.From], a.Delay[rf].Mean)
	}
	lc := e.Lib.Cell(e.D.Cells[a.Cell].LibCell)
	la := &lc.Arcs[a.LibArc]
	inRFs, n := a.Sense.InRFs(rf)
	worstSlew := e.slew[inRFs[0]][a.From]
	for i := 1; i < n; i++ {
		if s := e.slew[inRFs[i]][a.From]; s > worstSlew {
			worstSlew = s
		}
	}
	return la.OutSlew[rf].Lookup(worstSlew, e.load[a.To])
}

// initSourcePin seeds slew and arrival at a timing source (primary input or
// flip-flop clock pin). Returns false if p is not a source.
func (e *Engine) initSourcePin(p netlist.PinID) bool {
	pin := &e.D.Pins[p]
	switch {
	case pin.IsClock:
		node, _ := e.D.Clock.SinkOf(p)
		launch := e.D.Clock.Arrival(node)
		sp := e.spOfPin[p]
		for rf := 0; rf < 2; rf++ {
			e.slew[rf][p] = e.Cfg.ClockSlew
			e.arr[rf][p] = []spArr{{sp: sp, dist: launch}}
		}
		return true
	case pin.Cell == netlist.NoCell && pin.Dir == netlist.Input:
		d := e.Con.InputDelay[p]
		s := e.Con.InputSlew[p]
		if s == 0 {
			s = e.Cfg.ClockSlew
		}
		sp := e.spOfPin[p]
		for rf := 0; rf < 2; rf++ {
			e.slew[rf][p] = s
			e.arr[rf][p] = []spArr{{sp: sp, dist: d}}
		}
		return true
	}
	return false
}

// processPin recomputes fan-in arc delays, worst slews and SP-resolved
// arrivals at pin p. It returns true when any propagated value changed.
func (e *Engine) processPin(p netlist.PinID) bool {
	if e.isSP[p] {
		// Source values are constant after init.
		return false
	}
	changed := false
	for _, ai := range e.fanin[p] {
		a := &e.Arcs[ai]
		old := a.Delay
		e.computeArcDelay(a)
		if a.Delay != old {
			changed = true
		}
	}
	for rf := 0; rf < 2; rf++ {
		// Worst slew.
		var worst float64
		for _, ai := range e.fanin[p] {
			if s := e.outSlewOf(&e.Arcs[ai], rf); s > worst {
				worst = s
			}
		}
		if worst != e.slew[rf][p] {
			e.slew[rf][p] = worst
			changed = true
		}
		// SP-resolved arrival merge.
		merged := e.mergeArrivals(p, rf)
		if !spArrEqual(merged, e.arr[rf][p]) {
			e.arr[rf][p] = merged
			changed = true
		}
	}
	return changed
}

// mergeArrivals merges all fan-in arc contributions at (p, rf), keeping per
// startpoint the maximum-corner arrival distribution — the exact version of
// the paper's Top-K unique-startpoint merge.
func (e *Engine) mergeArrivals(p netlist.PinID, rf int) []spArr {
	var merged []spArr
	nSigma := e.Cfg.NSigma
	for _, ai := range e.fanin[p] {
		a := &e.Arcs[ai]
		inRFs, n := a.Sense.InRFs(rf)
		for i := 0; i < n; i++ {
			parent := e.arr[inRFs[i]][a.From]
			if len(parent) == 0 {
				continue
			}
			merged = mergeShifted(merged, parent, a.Delay[rf], nSigma)
		}
	}
	return merged
}

// mergeShifted merges src (shifted by delay) into dst; both are sorted by sp.
// On equal sp the larger corner value wins. The result is a fresh slice when
// dst must grow; dst is never aliased with src.
func mergeShifted(dst, src []spArr, delay num.Dist, nSigma float64) []spArr {
	if len(dst) == 0 {
		out := make([]spArr, len(src))
		for i, s := range src {
			out[i] = spArr{sp: s.sp, dist: s.dist.Add(delay)}
		}
		return out
	}
	out := make([]spArr, 0, len(dst)+len(src))
	i, j := 0, 0
	for i < len(dst) && j < len(src) {
		switch {
		case dst[i].sp < src[j].sp:
			out = append(out, dst[i])
			i++
		case dst[i].sp > src[j].sp:
			out = append(out, spArr{sp: src[j].sp, dist: src[j].dist.Add(delay)})
			j++
		default:
			cand := src[j].dist.Add(delay)
			if cand.Corner(nSigma) > dst[i].dist.Corner(nSigma) {
				out = append(out, spArr{sp: src[j].sp, dist: cand})
			} else {
				out = append(out, dst[i])
			}
			i++
			j++
		}
	}
	out = append(out, dst[i:]...)
	for ; j < len(src); j++ {
		out = append(out, spArr{sp: src[j].sp, dist: src[j].dist.Add(delay)})
	}
	return out
}

func spArrEqual(a, b []spArr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// UpdateTimingFull recomputes loads, delays, slews, arrivals and endpoint
// slacks over the whole design, the equivalent of a from-scratch
// update_timing in the reference tool.
func (e *Engine) UpdateTimingFull() {
	e.computeLoads()
	hold := e.HoldEnabled()
	for _, p := range e.Lv.Order {
		pid := netlist.PinID(p)
		if e.initSourcePin(pid) {
			if hold {
				e.initSourcePinMin(pid)
			}
			continue
		}
		e.processPin(pid)
		if hold {
			e.processPinMin(pid)
		}
	}
	e.computeSlacks()
	e.computeHoldSlacks()
	e.dirty = make(map[netlist.PinID]bool)
	e.LastFullUpdate = true
}

// MarkDirty flags pin p for re-evaluation on the next incremental update.
// Resize and parasitic-change operations call this internally.
func (e *Engine) MarkDirty(p netlist.PinID) { e.dirty[p] = true }

// UpdateTimingIncremental re-propagates only the cone of influence of pins
// marked dirty since the last update, in level order, stopping wavefronts
// whose values converge — the selective re-propagation PrimeTime performs on
// incremental update_timing. Loads are recomputed (cheap) to absorb pin-cap
// changes. Endpoint slacks are refreshed.
func (e *Engine) UpdateTimingIncremental() {
	if len(e.dirty) == 0 {
		return
	}
	e.computeLoads()
	// Bucket the worklist by level.
	buckets := make([][]netlist.PinID, e.Lv.NumLevels)
	inQueue := make(map[netlist.PinID]bool, len(e.dirty)*4)
	push := func(p netlist.PinID) {
		if !inQueue[p] {
			inQueue[p] = true
			l := e.Lv.Level[p]
			buckets[l] = append(buckets[l], p)
		}
	}
	for p := range e.dirty {
		push(p)
	}
	hold := e.HoldEnabled()
	for l := 0; l < len(buckets); l++ {
		for i := 0; i < len(buckets[l]); i++ { // fanouts are always deeper, so buckets never grow behind the cursor
			p := buckets[l][i]
			changed := e.processPin(p)
			if hold && !e.isSP[p] && e.processPinMin(p) {
				changed = true
			}
			if changed {
				for _, ai := range e.fanout[p] {
					push(e.Arcs[ai].To)
				}
			}
		}
	}
	e.computeSlacks()
	e.computeHoldSlacks()
	e.dirty = make(map[netlist.PinID]bool)
	e.LastFullUpdate = false
}
