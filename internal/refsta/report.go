package refsta

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"insta/internal/liberty"
	"insta/internal/netlist"
)

// WorstEndpoints returns up to n endpoint indexes ordered by ascending
// slack (worst first), skipping untimed endpoints.
func (e *Engine) WorstEndpoints(n int) []int32 {
	type item struct {
		i int32
		s float64
	}
	items := make([]item, 0, len(e.epSlack))
	for i, s := range e.epSlack {
		if math.IsInf(s, 0) {
			continue
		}
		items = append(items, item{int32(i), s})
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].s != items[b].s {
			return items[a].s < items[b].s
		}
		return items[a].i < items[b].i
	})
	if n > len(items) {
		n = len(items)
	}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = items[i].i
	}
	return out
}

// ReportTiming writes a report_timing-style summary of the n worst
// endpoints: the full data path of each, with per-stage incremental delay
// and cumulative arrival corners.
func (e *Engine) ReportTiming(w io.Writer, n int) {
	fmt.Fprintf(w, "report_timing: %d endpoints, WNS %.2f ps, TNS %.2f ps, %d violating\n",
		len(e.EPs), e.WNS(), e.TNS(), e.NumViolations())
	for rank, ep := range e.WorstEndpoints(n) {
		fmt.Fprintf(w, "\nPath %d:\n", rank+1)
		e.FormatPath(w, ep)
	}
}

// FormatPath writes endpoint index ep's worst path, startpoint first.
func (e *Engine) FormatPath(w io.Writer, ep int32) {
	steps := e.WorstPath(ep)
	epPin := e.EPs[ep]
	slack := e.epSlack[ep]
	fmt.Fprintf(w, "  Endpoint:   %s (slack %.2f ps)\n", e.D.Pins[epPin].Name, slack)
	if len(steps) == 0 {
		fmt.Fprintf(w, "  (untimed)\n")
		return
	}
	spPin := e.Arcs[steps[len(steps)-1].ArcID].From
	fmt.Fprintf(w, "  Startpoint: %s\n", e.D.Pins[spPin].Name)
	fmt.Fprintf(w, "  %-36s %6s %10s %12s\n", "pin", "edge", "incr(ps)", "arrival(ps)")

	// Walk startpoint-first.
	spIdx := e.spOfPin[spPin]
	if launch, ok := lookupSP(e.arr[steps[len(steps)-1].RF][spPin], spIdx); ok {
		_ = launch
	}
	for i := len(steps) - 1; i >= 0; i-- {
		st := steps[i]
		a := &e.Arcs[st.ArcID]
		incr := a.Delay[st.RF].Corner(e.Cfg.NSigma)
		arrStr := "-"
		if d, ok := lookupSP(e.arr[st.RF][st.Pin], e.criticalSPOf(ep)); ok {
			arrStr = fmt.Sprintf("%.2f", d.Corner(e.Cfg.NSigma))
		}
		kind := "net"
		if a.Kind == CellArc {
			kind = "cell"
		}
		fmt.Fprintf(w, "  %-36s %6s %10.2f %12s  (%s)\n",
			e.D.Pins[st.Pin].Name, liberty.RFName(st.RF), incr, arrStr, kind)
	}
}

// criticalSPOf returns the startpoint index of endpoint ep's worst slack.
func (e *Engine) criticalSPOf(ep int32) int32 {
	p := e.EPs[ep]
	T := e.Con.Clock.Period
	U := e.Con.Clock.Uncertainty
	earlyClk := e.earlyClockAt(ep)
	ext := 0.0
	if e.D.Pins[p].Cell == netlist.NoCell {
		ext = e.Con.OutputDelay[p]
	}
	bestSlack := math.Inf(1)
	bestSP := int32(-1)
	for rf := 0; rf < 2; rf++ {
		for _, entry := range e.arr[rf][p] {
			adj := e.Exc.Lookup(e.SPs[entry.sp], p)
			if adj.False {
				continue
			}
			m := float64(adj.CycleCount())
			req := m*T + earlyClk + e.credit(entry.sp, ep) - e.EPSetup[ep][rf] - U - ext
			if s := req - entry.dist.Corner(e.Cfg.NSigma); s < bestSlack {
				bestSlack, bestSP = s, entry.sp
			}
		}
	}
	return bestSP
}

// SlackHistogram writes a text histogram of the timed endpoint slacks in
// `bins` equal-width buckets, the quick design-health view interactive
// timing shells print.
func (e *Engine) SlackHistogram(w io.Writer, bins int) {
	var vals []float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range e.epSlack {
		if math.IsInf(s, 0) {
			continue
		}
		vals = append(vals, s)
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if len(vals) == 0 || bins < 1 {
		fmt.Fprintf(w, "slack histogram: no timed endpoints\n")
		return
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, s := range vals {
		b := int((s - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	fmt.Fprintf(w, "slack histogram (%d endpoints, %.1f .. %.1f ps):\n", len(vals), lo, hi)
	for b := 0; b < bins; b++ {
		barLen := 0
		if max > 0 {
			barLen = counts[b] * 50 / max
		}
		marker := " "
		if lo+float64(b)*width < 0 && lo+float64(b+1)*width >= 0 {
			marker = "0"
		}
		fmt.Fprintf(w, "  %9.1f %s|%-50s| %d\n",
			lo+float64(b)*width, marker, strings.Repeat("#", barLen), counts[b])
	}
}
