package core

import (
	"math"

	"insta/internal/liberty"
)

// Propagate runs the forward kernel: level-synchronous Top-K statistical
// arrival propagation with unique startpoints (Algorithms 1 and 2). Pins
// within a level are independent and are distributed over the engine's
// persistent scheduler pool by atomic chunk claiming — the goroutine
// analogue of one CUDA thread per output pin (Fig. 3).
func (e *Engine) Propagate() {
	sp := e.tracer.StartArg(kForward, "levels", int64(e.lv.NumLevels))
	for _, g := range e.levelPlan() {
		lsp := sp.ChildArg("level", "level", int64(g.lo))
		if g.hi == g.lo+1 {
			pins := e.lv.Nodes(g.lo)
			e.kern(kForward, g.lo, len(pins), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					e.propagatePin(pins[i])
				}
			})
		} else {
			// Fused narrow levels: g.spans <= the pool's serial cutoff, so
			// this launch is one inline chunk ([0, g.spans) on the caller) and
			// the level-order walk below preserves inter-level dependencies.
			e.kern(kForward, g.lo, g.spans, func(lo, hi int) {
				for l := g.lo; l < g.hi; l++ {
					for _, p := range e.lv.Nodes(l) {
						e.propagatePin(p)
					}
				}
			})
		}
		lsp.End()
	}
	sp.End()
	if e.hold != nil {
		e.propagateHold()
	}
}

// propagatePin recomputes pin p's Top-K queues for both transitions.
func (e *Engine) propagatePin(p int32) {
	if sp := e.spOfPin[p]; sp >= 0 {
		e.initStartpoint(p, sp)
		return
	}
	k := e.opt.TopK
	lo, hi := e.faninStart[p], e.faninStart[p+1]
	for rf := 0; rf < 2; rf++ {
		b := e.base(rf, p)
		arr := e.topArr[b : b+k]
		mean := e.topMean[b : b+k]
		std := e.topStd[b : b+k]
		sps := e.topSP[b : b+k]
		clearQueue(arr, sps)

		// Vectorized fast path for single-fan-in pins (the paper handles
		// "input pins" on the CPU without a kernel: one parent each).
		if hi-lo == 1 && liberty.Unate(e.faninSense[lo]) != liberty.NonUnate {
			e.shiftCopy(rf, lo, arr, mean, std, sps)
			continue
		}

		for pos := lo; pos < hi; pos++ {
			arc := e.faninArc[pos]
			parent := e.faninFrom[pos]
			am := e.arcMean[rf][arc]
			as := e.arcStd[rf][arc]
			inRFs, n := liberty.Unate(e.faninSense[pos]).InRFs(rf)
			for ri := 0; ri < n; ri++ {
				pb := e.base(inRFs[ri], parent)
				for kk := 0; kk < k; kk++ {
					psp := e.topSP[pb+kk]
					if psp == noSP {
						break // queues are packed: empties trail
					}
					m := e.topMean[pb+kk] + am
					pstd := e.topStd[pb+kk]
					// sigma <= pstd+as bounds the arrival from above;
					// rejecting against the queue minimum here skips the
					// sqrt for the bulk of contributions.
					if m+e.nSigma*(pstd+as) <= arr[k-1] {
						continue
					}
					s := math.Sqrt(pstd*pstd + as*as)
					a := m + e.nSigma*s
					InsertTopK(arr, mean, std, sps, a, m, s, psp)
				}
			}
		}
	}
}

// initStartpoint seeds a startpoint pin's queues with its launch arrival
// distribution (clock network arrival or input delay).
func (e *Engine) initStartpoint(p, sp int32) {
	k := e.opt.TopK
	for rf := 0; rf < 2; rf++ {
		b := e.base(rf, p)
		clearQueue(e.topArr[b:b+k], e.topSP[b:b+k])
		e.topMean[b] = e.spMean[sp]
		e.topStd[b] = e.spStd[sp]
		e.topArr[b] = e.spMean[sp] + e.nSigma*e.spStd[sp]
		e.topSP[b] = sp
	}
}

// shiftCopy implements the single-parent fast path: shift the parent's whole
// queue by the arc delay. RSS composition can reorder entries with different
// mean/sigma trade-offs, so a near-sorted insertion sort restores descending
// order.
func (e *Engine) shiftCopy(rf int, pos int32, arr, mean, std []float64, sps []int32) {
	arc := e.faninArc[pos]
	parent := e.faninFrom[pos]
	inRFs, _ := liberty.Unate(e.faninSense[pos]).InRFs(rf)
	prf := inRFs[0]
	am := e.arcMean[rf][arc]
	as := e.arcStd[rf][arc]
	pb := e.base(prf, parent)
	k := len(arr)
	n := 0
	for kk := 0; kk < k; kk++ {
		psp := e.topSP[pb+kk]
		if psp == noSP {
			break
		}
		m := e.topMean[pb+kk] + am
		s := math.Sqrt(e.topStd[pb+kk]*e.topStd[pb+kk] + as*as)
		arr[n] = m + e.nSigma*s
		mean[n] = m
		std[n] = s
		sps[n] = psp
		n++
	}
	// Insertion sort (descending by arrival); input is nearly sorted.
	for i := 1; i < n; i++ {
		a, m, s, sp := arr[i], mean[i], std[i], sps[i]
		j := i - 1
		for j >= 0 && arr[j] < a {
			arr[j+1], mean[j+1], std[j+1], sps[j+1] = arr[j], mean[j], std[j], sps[j]
			j--
		}
		arr[j+1], mean[j+1], std[j+1], sps[j+1] = a, m, s, sp
	}
}

func clearQueue(arr []float64, sps []int32) {
	for i := range arr {
		arr[i] = math.Inf(-1)
		sps[i] = noSP
	}
}

// InsertTopK is Algorithm 2: maintain a descending fixed-size list of
// arrival distributions keyed by unique startpoints. Step 1 updates an
// existing startpoint in place (bubbling it up to restore order); Step 2
// inserts a new startpoint by shifting if it beats the current minimum.
// Exported so internal/batch's scenario-batched kernels share the exact
// queue arithmetic (its differential tests assert per-scenario bit-identity
// against this engine). Empty slots carry sp == -1 and arr == -Inf.
func InsertTopK(arr, mean, std []float64, sps []int32, a, m, s float64, sp int32) {
	k := len(arr)
	// Fast reject: a contribution at or below the current minimum can change
	// nothing — if its startpoint is already queued that entry is at least
	// arr[k-1] >= a, and if it is not queued it cannot displace anything.
	if a <= arr[k-1] {
		return
	}
	// Step 1: startpoint uniqueness check.
	for j := 0; j < k; j++ {
		if sps[j] == noSP {
			break
		}
		if sps[j] != sp {
			continue
		}
		if a <= arr[j] {
			return // existing entry dominates
		}
		arr[j], mean[j], std[j] = a, m, s
		// Bubble up: the increased value may beat entries above it.
		for j > 0 && arr[j-1] < arr[j] {
			arr[j-1], arr[j] = arr[j], arr[j-1]
			mean[j-1], mean[j] = mean[j], mean[j-1]
			std[j-1], std[j] = std[j], std[j-1]
			sps[j-1], sps[j] = sps[j], sps[j-1]
			j--
		}
		return
	}
	// Step 2: new startpoint; insert if it beats the smallest entry.
	if a <= arr[k-1] {
		return
	}
	j := k - 1
	for j > 0 && arr[j-1] < a {
		arr[j], mean[j], std[j], sps[j] = arr[j-1], mean[j-1], std[j-1], sps[j-1]
		j--
	}
	arr[j], mean[j], std[j], sps[j] = a, m, s, sp
}

// TopEntries returns pin p's Top-K arrival entries for transition rf as
// (arrival, mean, std, sp) quadruples, for inspection and testing.
func (e *Engine) TopEntries(rf int, p int32) (arr, mean, std []float64, sps []int32) {
	k := e.opt.TopK
	b := e.base(rf, p)
	return e.topArr[b : b+k], e.topMean[b : b+k], e.topStd[b : b+k], e.topSP[b : b+k]
}
