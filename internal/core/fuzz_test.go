package core

import (
	"math"
	"testing"
)

// FuzzInsertTopK drives Algorithm 2's queue insert with byte-decoded
// (arrival, startpoint) streams and checks every invariant the propagation
// kernels rely on against the brute-force oracle:
//
//   - the kept arrivals equal "max per startpoint, then K largest";
//   - entries are in descending arrival order;
//   - startpoints are unique;
//   - empty slots are packed at the tail (-Inf arrival, noSP marker).
//
// Bytes decode two per insert: arrival = b0 (a coarse grid that makes
// duplicate keys and displacement ties common), sp = b1 % 10.
func FuzzInsertTopK(f *testing.F) {
	// Algorithm-2 edge cases as seeds.
	// Duplicate SP update: same startpoint arrives twice, larger second.
	f.Add(uint8(3), []byte{10, 1, 20, 1})
	// Duplicate SP with a smaller second arrival (must be ignored).
	f.Add(uint8(3), []byte{20, 1, 10, 1})
	// Displacement at k-1: full queue, new sp lands exactly above the min.
	f.Add(uint8(2), []byte{30, 1, 10, 2, 20, 3})
	// Bubble-up: in-place update that must rise past two entries.
	f.Add(uint8(3), []byte{30, 1, 20, 2, 10, 3, 40, 3})
	// Saturating duplicates across a tiny queue.
	f.Add(uint8(1), []byte{5, 0, 9, 1, 7, 0, 9, 2, 1, 1})

	f.Fuzz(func(t *testing.T, kByte uint8, data []byte) {
		k := 1 + int(kByte)%8
		arr := make([]float64, k)
		mean := make([]float64, k)
		std := make([]float64, k)
		sps := make([]int32, k)
		clearQueue(arr, sps)

		var fed []qEntry
		for i := 0; i+1 < len(data); i += 2 {
			a := float64(data[i])
			sp := int32(data[i+1] % 10)
			fed = append(fed, qEntry{arr: a, sp: sp})
			InsertTopK(arr, mean, std, sps, a, a, 0, sp)
		}

		// Invariant: packed empties trailing.
		n := k
		for i := 0; i < k; i++ {
			if sps[i] == noSP {
				n = i
				break
			}
		}
		for i := n; i < k; i++ {
			if sps[i] != noSP || !math.IsInf(arr[i], -1) {
				t.Fatalf("slot %d after first empty not cleared: arr=%v sp=%d",
					i, arr[i], sps[i])
			}
		}
		// Invariant: descending order, unique startpoints.
		seen := make(map[int32]bool, n)
		for i := 0; i < n; i++ {
			if i > 0 && arr[i-1] < arr[i] {
				t.Fatalf("ascending pair at %d: %v < %v", i-1, arr[i-1], arr[i])
			}
			if seen[sps[i]] {
				t.Fatalf("duplicate startpoint %d", sps[i])
			}
			seen[sps[i]] = true
		}
		// Oracle: arrivals must match brute force exactly. (At equal arrivals
		// the kept sp may differ from the oracle's tie-break, so only the
		// values are compared.)
		want := bruteTopK(fed, k)
		if len(want) != n {
			t.Fatalf("kept %d entries, oracle kept %d", n, len(want))
		}
		for i := 0; i < n; i++ {
			if arr[i] != want[i].arr {
				t.Fatalf("slot %d: arr %v, oracle %v", i, arr[i], want[i].arr)
			}
		}
	})
}
