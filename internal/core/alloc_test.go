package core

// Allocation-discipline unit tests (DESIGN.md §12): the serving hot paths —
// an overlay ECO preview over a warm cone and an incremental forward
// re-propagation — must settle at zero heap allocations per operation once
// their scratch and freelists are populated. These run on the small
// generated test design so they stay in the fast tier-1 set; bench_gc_test.go
// measures the same paths on a real block preset and writes BENCH_gc.json.

import "testing"

// allocEps absorbs a one-off allocation AllocsPerRun may attribute to the
// harness itself (a timer tick landing a pooled object, a map rehash on the
// first measured run) without letting a real per-op allocation through.
const allocEps = 0.5

func TestOverlayPreviewAllocFree(t *testing.T) {
	h := buildHarness(t, testSpec(81))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()

	deltas := perturb(e, 3, 37, 1.2, 1.1)
	o := NewOverlay(e)
	preview := func() {
		applyToOverlay(o, deltas)
		_ = o.WNS()
	}
	preview() // warm: populates the pin overlay set, scratch and freelists
	if a := testing.AllocsPerRun(20, preview); a > allocEps {
		t.Errorf("warm overlay preview: %.1f allocs/op, want 0", a)
	}
}

func TestIncrementalPropagateAllocFree(t *testing.T) {
	h := buildHarness(t, testSpec(82))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()

	// Two alternating annotations so every measured op walks a real changed
	// cone instead of converging at the first level.
	arc := int32(3)
	arcs := []int32{arc}
	d0 := e.ArcDelay(arc, 0)
	d1 := d0
	d1.Mean *= 1.3
	flip := false
	reprop := func() {
		d := d0
		if flip {
			d = d1
		}
		flip = !flip
		e.SetArcDelay(arc, 0, d)
		e.PropagateIncremental(arcs)
	}
	reprop()
	reprop() // warm both cone shapes
	if a := testing.AllocsPerRun(20, reprop); a > allocEps {
		t.Errorf("warm incremental re-prop: %.1f allocs/op, want 0", a)
	}
}
