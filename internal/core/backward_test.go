package core

import (
	"math"
	"sort"
	"testing"

	"insta/internal/liberty"
	"insta/internal/num"
)

// tighten shifts all endpoint required times so that roughly the requested
// fraction of endpoints violate, making gradient tests robust to generator
// seed variance.
func tighten(t *testing.T, h *harness, frac float64) {
	t.Helper()
	e, err := NewEngine(h.tab, Options{TopK: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	slacks := e.Run()
	finite := make([]float64, 0, len(slacks))
	for _, s := range slacks {
		if !math.IsInf(s, 0) {
			finite = append(finite, s)
		}
	}
	if len(finite) == 0 {
		t.Fatal("no timed endpoints")
	}
	sort.Float64s(finite)
	shift := finite[int(float64(len(finite))*frac)] + 1
	for i := range h.tab.EPs {
		h.tab.EPs[i].BaseReqRise -= shift
		h.tab.EPs[i].BaseReqFall -= shift
	}
}

// k1Loss evaluates the differentiable-mode loss on a TopK=1 engine: the TNS
// over k=0 entries, which is exactly what Backward's endpoint seeding uses.
func k1Loss(e *Engine) float64 {
	e.Run()
	return e.TNS()
}

func TestBackwardGradientSigns(t *testing.T) {
	h := buildHarness(t, testSpec(31))
	tighten(t, h, 0.1)
	e, err := NewEngine(h.tab, Options{TopK: 1, Tau: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	e.Backward()
	anyNonZero := false
	for arc := int32(0); arc < int32(e.NumArcs()); arc++ {
		g := e.TimingGradient(arc)
		if g > 1e-12 {
			t.Fatalf("arc %d has positive timing gradient %v (increasing delay cannot raise TNS)", arc, g)
		}
		if g != 0 {
			anyNonZero = true
		}
		for rf := 0; rf < 2; rf++ {
			if gs := e.ArcGradStd(arc, rf); gs > 1e-12 {
				t.Fatalf("arc %d rf %d positive sigma gradient %v", arc, rf, gs)
			}
		}
	}
	if !anyNonZero {
		t.Fatal("no arc received gradient despite violations")
	}
	if e.NumViolations() == 0 {
		t.Fatal("test design has no violations; gradients untestable")
	}
}

func TestBackwardFiniteDifferenceMean(t *testing.T) {
	h := buildHarness(t, testSpec(32))
	tighten(t, h, 0.1)
	e, err := NewEngine(h.tab, Options{TopK: 1, Tau: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	e.Backward()

	const hstep = 0.05
	checked := 0
	for arc := int32(0); arc < int32(e.NumArcs()) && checked < 12; arc++ {
		for rf := 0; rf < 2; rf++ {
			g := e.ArcGradMean(arc, rf)
			if math.Abs(g) < 0.25 {
				continue // skip near-zero / heavily split gradients
			}
			orig := e.ArcDelay(arc, rf)
			e.SetArcDelay(arc, rf, num.Dist{Mean: orig.Mean + hstep, Std: orig.Std})
			up := k1Loss(e)
			e.SetArcDelay(arc, rf, num.Dist{Mean: orig.Mean - hstep, Std: orig.Std})
			dn := k1Loss(e)
			e.SetArcDelay(arc, rf, orig)
			e.Run()
			fd := (up - dn) / (2 * hstep)
			if math.Abs(fd-g) > 0.15*math.Abs(g)+0.05 {
				t.Errorf("arc %d rf %d: fd %v vs grad %v", arc, rf, fd, g)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no arcs with significant gradient found")
	}
	// Restore clean state for other assertions.
	e.Run()
}

func TestBackwardFiniteDifferenceStd(t *testing.T) {
	h := buildHarness(t, testSpec(33))
	tighten(t, h, 0.1)
	e, err := NewEngine(h.tab, Options{TopK: 1, Tau: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	e.Backward()
	const hstep = 0.02
	checked := 0
	for arc := int32(0); arc < int32(e.NumArcs()) && checked < 6; arc++ {
		for rf := 0; rf < 2; rf++ {
			g := e.ArcGradStd(arc, rf)
			if math.Abs(g) < 0.4 {
				continue
			}
			orig := e.ArcDelay(arc, rf)
			if orig.Std < 2*hstep {
				continue
			}
			e.SetArcDelay(arc, rf, num.Dist{Mean: orig.Mean, Std: orig.Std + hstep})
			up := k1Loss(e)
			e.SetArcDelay(arc, rf, num.Dist{Mean: orig.Mean, Std: orig.Std - hstep})
			dn := k1Loss(e)
			e.SetArcDelay(arc, rf, orig)
			e.Run()
			fd := (up - dn) / (2 * hstep)
			if math.Abs(fd-g) > 0.2*math.Abs(g)+0.1 {
				t.Errorf("arc %d rf %d: sigma fd %v vs grad %v", arc, rf, fd, g)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no arcs with significant sigma gradient in this design")
	}
}

func TestBackwardZeroWhenNoViolations(t *testing.T) {
	h := buildHarness(t, testSpec(34))
	// Stretch the period far beyond any arrival: no violations, no gradient.
	for i := range h.tab.EPs {
		h.tab.EPs[i].BaseReqRise += 1e6
		h.tab.EPs[i].BaseReqFall += 1e6
	}
	e, _ := NewEngine(h.tab, Options{TopK: 1, Workers: 1})
	e.Run()
	if e.NumViolations() != 0 {
		t.Fatal("expected no violations")
	}
	e.Backward()
	for arc := int32(0); arc < int32(e.NumArcs()); arc++ {
		if e.TimingGradient(arc) != 0 {
			t.Fatalf("arc %d has gradient without violations", arc)
		}
	}
}

func TestStageGradients(t *testing.T) {
	h := buildHarness(t, testSpec(35))
	tighten(t, h, 0.1)
	e, _ := NewEngine(h.tab, Options{TopK: 1, Tau: 0.01, Workers: 1})
	e.Run()
	e.Backward()
	stages := e.StageGradients()
	if len(stages) == 0 {
		t.Fatal("no stage gradients")
	}
	numCells := h.b.D.NumCells()
	seen := map[int32]bool{}
	for _, s := range stages {
		if s.Cell < 0 || int(s.Cell) >= numCells {
			t.Fatalf("stage cell %d out of range", s.Cell)
		}
		if s.Grad > 1e-12 {
			t.Fatalf("stage %d positive gradient %v", s.Cell, s.Grad)
		}
		if seen[s.Cell] {
			t.Fatalf("stage %d duplicated", s.Cell)
		}
		seen[s.Cell] = true
	}
}

func TestNetArcGradients(t *testing.T) {
	h := buildHarness(t, testSpec(36))
	tighten(t, h, 0.1)
	e, _ := NewEngine(h.tab, Options{TopK: 1, Tau: 0.01, Workers: 1})
	e.Run()
	e.Backward()
	nets := e.NetArcGradients()
	if len(nets) == 0 {
		t.Fatal("no net arc gradients")
	}
	for _, g := range nets {
		if !e.ArcIsNet(g.Arc) {
			t.Fatalf("arc %d reported as net arc but isn't", g.Arc)
		}
		if g.Grad >= 0 {
			t.Fatalf("net arc %d gradient %v not negative", g.Arc, g.Grad)
		}
		if f, to := e.ArcEndpoints(g.Arc); f != g.From || to != g.To {
			t.Fatalf("net arc %d endpoint mismatch", g.Arc)
		}
	}
}

func TestBackwardSubcriticalPathsGetGradientWithLargeTau(t *testing.T) {
	// With a large temperature, merge points spread gradient across inputs,
	// so strictly more arcs receive gradient than with a cold temperature.
	h := buildHarness(t, testSpec(37))
	tighten(t, h, 0.1)
	count := func(tau float64) int {
		e, _ := NewEngine(h.tab, Options{TopK: 1, Tau: tau, Workers: 1})
		e.Run()
		e.Backward()
		n := 0
		for arc := int32(0); arc < int32(e.NumArcs()); arc++ {
			if math.Abs(e.TimingGradient(arc)) > 1e-9 {
				n++
			}
		}
		return n
	}
	cold, hot := count(0.001), count(50)
	if hot <= cold {
		t.Errorf("hot tau should spread gradient to more arcs: cold=%d hot=%d", cold, hot)
	}
}

func TestGradientIdentifiesCriticalCell(t *testing.T) {
	// The stage with the largest |gradient| must lie on a violating path:
	// speeding it up must improve (raise) TNS.
	h := buildHarness(t, testSpec(38))
	tighten(t, h, 0.1)
	e, _ := NewEngine(h.tab, Options{TopK: 1, Tau: 0.01, Workers: 1})
	e.Run()
	base := e.TNS()
	e.Backward()
	stages := e.StageGradients()
	var worst StageGradient
	for _, s := range stages {
		if s.Grad < worst.Grad {
			worst = s
		}
	}
	// Speed up every arc of that cell by 5%.
	for arc := int32(0); arc < int32(e.NumArcs()); arc++ {
		isOwn := !e.ArcIsNet(arc) && e.ArcCell(arc) == worst.Cell
		if !isOwn {
			continue
		}
		for rf := 0; rf < 2; rf++ {
			d := e.ArcDelay(arc, rf)
			e.SetArcDelay(arc, rf, num.Dist{Mean: 0.95 * d.Mean, Std: d.Std})
		}
	}
	e.Run()
	if e.TNS() <= base {
		t.Errorf("speeding up the top-gradient cell did not improve TNS: %v -> %v", base, e.TNS())
	}
	_ = liberty.Rise
}

func TestWNSWeights(t *testing.T) {
	h := buildHarness(t, testSpec(43))
	tighten(t, h, 0.1)
	e, _ := NewEngine(h.tab, Options{TopK: 1, Tau: 0.01, Workers: 1})
	e.Run()
	w := e.WNSWeights(5)
	var sum float64
	worstI, worstW := -1, 0.0
	for i, v := range w {
		if v < 0 {
			t.Fatalf("negative weight at %d", i)
		}
		sum += v
		if v > worstW {
			worstI, worstW = i, v
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	// The heaviest weight must sit on the worst endpoint.
	slacks := e.Slacks()
	for i, s := range slacks {
		if s < slacks[worstI]-1e-9 {
			t.Fatalf("endpoint %d (slack %v) worse than weighted-worst %d (%v)", i, s, worstI, slacks[worstI])
		}
	}
}

func TestWNSWeightsNoViolations(t *testing.T) {
	h := buildHarness(t, testSpec(44))
	for i := range h.tab.EPs {
		h.tab.EPs[i].BaseReqRise += 1e6
		h.tab.EPs[i].BaseReqFall += 1e6
	}
	e, _ := NewEngine(h.tab, Options{TopK: 1, Workers: 1})
	e.Run()
	for i, v := range e.WNSWeights(5) {
		if v != 0 {
			t.Fatalf("weight %d nonzero without violations", i)
		}
	}
}

func TestBackwardWeightedWNSFiniteDifference(t *testing.T) {
	// Verify d(softWNS)/d(arc mean) against finite differences.
	h := buildHarness(t, testSpec(45))
	tighten(t, h, 0.1)
	e, _ := NewEngine(h.tab, Options{TopK: 1, Tau: 0.001, Workers: 1})
	e.Run()
	const tauWNS = 8.0
	softWNS := func() float64 {
		e.Run()
		var minS float64 = math.Inf(1)
		var ss []float64
		for i := range e.Endpoints() {
			s, rf := e.k0Slack(i)
			if rf < 0 {
				continue
			}
			ss = append(ss, s)
			if s < minS {
				minS = s
			}
		}
		var sum float64
		for _, s := range ss {
			sum += math.Exp((minS - s) / tauWNS)
		}
		return minS - tauWNS*math.Log(sum) // note: -tau*logsumexp(-s/tau)
	}
	e.Run()
	e.BackwardWeighted(e.WNSWeights(tauWNS))

	const hstep = 0.05
	checked := 0
	for arc := int32(0); arc < int32(e.NumArcs()) && checked < 8; arc++ {
		for rf := 0; rf < 2; rf++ {
			g := e.ArcGradMean(arc, rf)
			if math.Abs(g) < 0.2 {
				continue
			}
			orig := e.ArcDelay(arc, rf)
			e.SetArcDelay(arc, rf, num.Dist{Mean: orig.Mean + hstep, Std: orig.Std})
			up := softWNS()
			e.SetArcDelay(arc, rf, num.Dist{Mean: orig.Mean - hstep, Std: orig.Std})
			dn := softWNS()
			e.SetArcDelay(arc, rf, orig)
			e.Run()
			fd := (up - dn) / (2 * hstep)
			if math.Abs(fd-g) > 0.2*math.Abs(g)+0.05 {
				t.Errorf("arc %d rf %d: wns fd %v vs grad %v", arc, rf, fd, g)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no arcs with significant WNS gradient")
	}
}

func TestBackwardParallelApproximatesSerial(t *testing.T) {
	// The parallel backward uses atomic float adds whose accumulation order
	// is nondeterministic; gradients must agree with the serial pass to
	// floating-point accumulation noise.
	h := buildHarness(t, testSpec(46))
	tighten(t, h, 0.1)
	es, _ := NewEngine(h.tab, Options{TopK: 1, Tau: 0.5, Workers: 1})
	ep, _ := NewEngine(h.tab, Options{TopK: 1, Tau: 0.5, Workers: 4})
	es.Run()
	es.Backward()
	ep.Run()
	ep.Backward()
	for arc := int32(0); arc < int32(es.NumArcs()); arc++ {
		gs, gp := es.TimingGradient(arc), ep.TimingGradient(arc)
		if math.Abs(gs-gp) > 1e-9*(1+math.Abs(gs)) {
			t.Fatalf("arc %d: serial %v vs parallel %v", arc, gs, gp)
		}
	}
}
